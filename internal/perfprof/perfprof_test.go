package perfprof

import (
	"math"
	"strings"
	"testing"
)

func sampleResults() []Result {
	return []Result{
		{"g1", "A", 1.0}, {"g1", "B", 2.0}, {"g1", "C", 4.0},
		{"g2", "A", 3.0}, {"g2", "B", 1.5}, {"g2", "C", 3.0},
		{"g3", "A", 1.0}, {"g3", "B", 1.0}, {"g3", "C", 10.0},
	}
}

func TestComputeRatios(t *testing.T) {
	p := Compute(sampleResults())
	if len(p.Instances) != 3 || len(p.Schemes) != 3 {
		t.Fatalf("sizes: %d instances, %d schemes", len(p.Instances), len(p.Schemes))
	}
	// g1 best is A(1.0): ratios A=1, B=2, C=4.
	if p.Ratios["A"][0] != 1 || p.Ratios["B"][0] != 2 || p.Ratios["C"][0] != 4 {
		t.Errorf("g1 ratios: %v %v %v", p.Ratios["A"][0], p.Ratios["B"][0], p.Ratios["C"][0])
	}
	// g2 best is B(1.5): A ratio 2.
	if p.Ratios["A"][1] != 2 {
		t.Errorf("g2 A ratio = %v", p.Ratios["A"][1])
	}
}

func TestFractionAndWin(t *testing.T) {
	p := Compute(sampleResults())
	// A is best on g1 and tied-best on g3: 2/3.
	if w := p.WinFraction("A"); math.Abs(w-2.0/3) > 1e-12 {
		t.Errorf("WinFraction(A) = %v", w)
	}
	// B: best on g2, tied on g3 → 2/3; within factor 2 everywhere → 1.
	if f := p.Fraction("B", 2.01); f != 1 {
		t.Errorf("Fraction(B, 2) = %v", f)
	}
	// C never best.
	if w := p.WinFraction("C"); w != 0 {
		t.Errorf("WinFraction(C) = %v", w)
	}
	if f := p.Fraction("missing", 10); f != 0 {
		t.Errorf("missing scheme fraction = %v", f)
	}
}

func TestBest(t *testing.T) {
	p := Compute(sampleResults())
	best := p.Best(2.4)
	if best != "A" && best != "B" {
		t.Errorf("Best = %q", best)
	}
}

func TestMissingResultsAreFailures(t *testing.T) {
	p := Compute([]Result{
		{"g1", "A", 1.0},
		{"g1", "B", 2.0},
		{"g2", "B", 1.0},
		// A has no g2 result.
	})
	if !math.IsInf(p.Ratios["A"][1], 1) {
		t.Errorf("missing result ratio = %v, want +inf", p.Ratios["A"][1])
	}
	if f := p.Fraction("A", 1e9); f != 0.5 {
		t.Errorf("A fraction with failure = %v", f)
	}
}

func TestNonPositiveTimesIgnored(t *testing.T) {
	p := Compute([]Result{
		{"g1", "A", 0}, // invalid
		{"g1", "B", 1.0},
	})
	if !math.IsInf(p.Ratios["A"][0], 1) {
		t.Error("zero time should count as failure")
	}
}

func TestRenderAndCSV(t *testing.T) {
	p := Compute(sampleResults())
	xs := DefaultXs()
	if xs[0] != 1.0 || xs[len(xs)-1] != 2.4 {
		t.Errorf("DefaultXs = %v", xs)
	}
	table := p.Render(xs)
	if !strings.Contains(table, "scheme") || !strings.Contains(table, "A") {
		t.Errorf("Render missing content:\n%s", table)
	}
	csv := p.CSV(xs)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 { // header + 3 schemes
		t.Errorf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scheme,1") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestSeries(t *testing.T) {
	p := Compute(sampleResults())
	ys := p.Series("A", []float64{1, 2, 4})
	if len(ys) != 3 {
		t.Fatalf("series length %d", len(ys))
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Error("profile curve must be non-decreasing")
		}
	}
	if ys[2] != 1 {
		t.Errorf("A within 4x everywhere, got %v", ys[2])
	}
}
