// Package perfprof implements Dolan–Moré performance profiles, the
// presentation the paper uses for its relative-performance figures
// (§8.1, citing Dolan & Moré 2002): for each scheme s, the curve point
// (x, y) says that on a fraction y of the test cases, s was within a
// factor x of the best scheme on that case.
package perfprof

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Result is one (instance, scheme) timing.
type Result struct {
	// Instance names the test case (graph).
	Instance string
	// Scheme names the algorithm variant ("MSA-1P", ...).
	Scheme string
	// Seconds is the measured runtime; must be positive to count.
	Seconds float64
}

// Profile is a computed performance profile.
type Profile struct {
	// Schemes in first-seen order.
	Schemes []string
	// Ratios[s][i] is scheme s's runtime divided by the best runtime on
	// instance i (math.Inf(1) when the scheme failed/was not run).
	Ratios map[string][]float64
	// Instances in first-seen order.
	Instances []string
}

// Compute builds a profile from raw results. Schemes missing a result
// on some instance are treated as failed there (ratio = +inf), per
// Dolan–Moré.
func Compute(results []Result) *Profile {
	p := &Profile{Ratios: map[string][]float64{}}
	instIdx := map[string]int{}
	for _, r := range results {
		if _, ok := instIdx[r.Instance]; !ok {
			instIdx[r.Instance] = len(p.Instances)
			p.Instances = append(p.Instances, r.Instance)
		}
		if _, ok := p.Ratios[r.Scheme]; !ok {
			p.Schemes = append(p.Schemes, r.Scheme)
		}
		p.Ratios[r.Scheme] = nil // placeholder; filled below
	}
	n := len(p.Instances)
	times := map[string][]float64{}
	for _, s := range p.Schemes {
		t := make([]float64, n)
		for i := range t {
			t[i] = math.Inf(1)
		}
		times[s] = t
	}
	for _, r := range results {
		if r.Seconds > 0 {
			times[r.Scheme][instIdx[r.Instance]] = r.Seconds
		}
	}
	best := make([]float64, n)
	for i := range best {
		best[i] = math.Inf(1)
		for _, s := range p.Schemes {
			if times[s][i] < best[i] {
				best[i] = times[s][i]
			}
		}
	}
	for _, s := range p.Schemes {
		ratios := make([]float64, n)
		for i := range ratios {
			if math.IsInf(best[i], 1) {
				ratios[i] = math.Inf(1)
			} else {
				ratios[i] = times[s][i] / best[i]
			}
		}
		p.Ratios[s] = ratios
	}
	return p
}

// Fraction returns the fraction of instances on which scheme is within
// factor x of the best.
func (p *Profile) Fraction(scheme string, x float64) float64 {
	ratios, ok := p.Ratios[scheme]
	if !ok || len(ratios) == 0 {
		return 0
	}
	count := 0
	for _, r := range ratios {
		if r <= x {
			count++
		}
	}
	return float64(count) / float64(len(ratios))
}

// WinFraction returns Fraction(scheme, 1): how often the scheme is the
// (tied-)best. The paper reads its profiles this way ("MSA-1P ...
// outperforming all other algorithms for 65% of the test cases").
func (p *Profile) WinFraction(scheme string) float64 {
	return p.Fraction(scheme, 1.0000001) // tolerate float jitter on ties
}

// Best returns the scheme with the highest win fraction, ties broken by
// area under the curve up to xMax.
func (p *Profile) Best(xMax float64) string {
	best, bestWin, bestArea := "", -1.0, -1.0
	for _, s := range p.Schemes {
		win := p.WinFraction(s)
		area := 0.0
		for x := 1.0; x <= xMax; x += 0.05 {
			area += p.Fraction(s, x)
		}
		if win > bestWin || (win == bestWin && area > bestArea) {
			best, bestWin, bestArea = s, win, area
		}
	}
	return best
}

// Series samples the profile curve of a scheme at the given x values.
func (p *Profile) Series(scheme string, xs []float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = p.Fraction(scheme, x)
	}
	return ys
}

// DefaultXs returns the sampling grid the paper's plots use
// (1.0 … 2.4).
func DefaultXs() []float64 {
	var xs []float64
	for x := 1.0; x <= 2.4001; x += 0.1 {
		xs = append(xs, math.Round(x*10)/10)
	}
	return xs
}

// Render formats the profile as an aligned text table: one row per
// scheme, one column per x sample — the textual analogue of Figures 8,
// 9, 12, 13, 16.
func (p *Profile) Render(xs []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "scheme")
	for _, x := range xs {
		fmt.Fprintf(&b, " %6.2f", x)
	}
	b.WriteByte('\n')
	schemes := append([]string(nil), p.Schemes...)
	sort.SliceStable(schemes, func(i, j int) bool {
		return p.WinFraction(schemes[i]) > p.WinFraction(schemes[j])
	})
	for _, s := range schemes {
		fmt.Fprintf(&b, "%-14s", s)
		for _, y := range p.Series(s, xs) {
			fmt.Fprintf(&b, " %6.3f", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV formats the profile as comma-separated series for plotting.
func (p *Profile) CSV(xs []float64) string {
	var b strings.Builder
	b.WriteString("scheme")
	for _, x := range xs {
		fmt.Fprintf(&b, ",%g", x)
	}
	b.WriteByte('\n')
	for _, s := range p.Schemes {
		b.WriteString(s)
		for _, y := range p.Series(s, xs) {
			fmt.Fprintf(&b, ",%g", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
