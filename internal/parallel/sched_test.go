package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// coverOnce drives a scheduling function over n indices and fails the
// test unless every index was visited exactly once and every reported
// tid was in range. Run under -race in CI, this is also the data-race
// check on the claim/steal paths.
func coverOnce(t *testing.T, n, threads int, run func(fn func(lo, hi, tid int))) {
	t.Helper()
	hits := make([]int32, n)
	run(func(lo, hi, tid int) {
		if tid < 0 || tid >= Threads(threads) {
			t.Errorf("tid %d out of range [0,%d)", tid, Threads(threads))
		}
		if lo > hi || lo < 0 || hi > n {
			t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times (n=%d threads=%d)", i, h, n, threads)
		}
	}
}

func TestForEachChunkedCoversAll(t *testing.T) {
	f := func(nRaw uint16, threadsRaw, grainRaw uint8) bool {
		n := int(nRaw % 3000)
		threads := int(threadsRaw%8) + 1
		grain := int(grainRaw%100) + 1
		hits := make([]int32, n)
		ForEachChunked(n, threads, grain, nil, nil, func(lo, hi, tid int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestForEachChunkedAdversarial covers the degenerate shapes: empty,
// fewer items than workers, a single mega-item, and item counts that do
// not divide the worker count.
func TestForEachChunkedAdversarial(t *testing.T) {
	called := false
	ForEachChunked(0, 4, 16, nil, nil, func(lo, hi, tid int) { called = true })
	ForEachChunked(-3, 4, 16, nil, nil, func(lo, hi, tid int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
	for _, tc := range []struct{ n, threads, grain int }{
		{1, 8, 64},  // single mega-row: exactly one block
		{3, 8, 1},   // n < threads: some workers start empty and must steal or retire
		{7, 4, 2},   // uneven split
		{100, 3, 7}, // non-dividing grain
		{65, 2, 64}, // one block per worker plus a remainder
	} {
		coverOnce(t, tc.n, tc.threads, func(fn func(lo, hi, tid int)) {
			ForEachChunked(tc.n, tc.threads, tc.grain, nil, nil, fn)
		})
	}
}

func TestForEachPartitionCoversAll(t *testing.T) {
	for _, tc := range []struct {
		name    string
		bounds  []int
		threads int
	}{
		{"empty-bounds", []int{}, 4},
		{"single-empty", []int{0, 0}, 4},
		{"one-part", []int{0, 10}, 4},
		{"uniform", []int{0, 5, 10, 15, 20}, 3},
		{"skewed", []int{0, 1, 2, 50, 51, 100}, 4},
		{"with-empty-parts", []int{0, 0, 3, 3, 3, 9, 9}, 2},
		{"more-parts-than-threads", []int{0, 2, 4, 6, 8, 10, 12, 14, 16}, 2},
		{"fewer-items-than-threads", []int{0, 1, 2, 3}, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := 0
			if len(tc.bounds) > 0 {
				n = tc.bounds[len(tc.bounds)-1]
			}
			coverOnce(t, n, tc.threads, func(fn func(lo, hi, tid int)) {
				ForEachPartition(tc.bounds, tc.threads, nil, nil, fn)
			})
		})
	}
}

// TestForEachPartitionSkipsEmpty pins that zero-width partitions never
// reach the callback (kernels index scratch by block and must not see
// lo == hi).
func TestForEachPartitionSkipsEmpty(t *testing.T) {
	for _, threads := range []int{1, 4} {
		ForEachPartition([]int{0, 0, 0, 5, 5}, threads, nil, nil, func(lo, hi, tid int) {
			if lo >= hi {
				t.Errorf("empty partition [%d,%d) reached fn", lo, hi)
			}
		})
	}
}

// TestSchedStatsAccounting checks the telemetry invariants: claimed
// blocks add up to the work handed out, steals only appear on the
// chunked scheduler, and busy time is recorded.
func TestSchedStatsAccounting(t *testing.T) {
	work := func(lo, hi, tid int) {
		// Enough work for Busy to register on coarse clocks.
		s := 0
		for i := lo; i < hi; i++ {
			for k := 0; k < 2000; k++ {
				s += k ^ i
			}
		}
		_ = s
	}

	var st SchedStats
	st.Reset(4)
	ForEachBlockStats(256, 4, 16, &st, nil, work)
	if got, want := st.Claimed(), 16; got != want {
		t.Errorf("block: claimed = %d, want %d", got, want)
	}
	if st.Stolen() != 0 {
		t.Errorf("block: stolen = %d, want 0", st.Stolen())
	}
	if st.Busy() <= 0 {
		t.Error("block: no busy time recorded")
	}

	st.Reset(4)
	ForEachPartition([]int{0, 64, 128, 192, 256}, 4, &st, nil, work)
	if got, want := st.Claimed(), 4; got != want {
		t.Errorf("partition: claimed = %d, want %d", got, want)
	}

	// Chunked blocks can exceed n/grain: the even initial split and
	// half-range steals cut ranges at non-grain boundaries.
	st.Reset(2)
	ForEachChunked(256, 2, 16, &st, nil, work)
	if got := st.Claimed(); got < 16 || got > 16+8 {
		t.Errorf("chunked: claimed = %d, want ~16", got)
	}

	// Accumulation across passes without Reset (a two-phase execution).
	before := st.Claimed()
	ForEachChunked(256, 2, 16, &st, nil, work)
	if st.Claimed() < before+16 {
		t.Errorf("stats did not accumulate: %d after second pass, want ≥ %d", st.Claimed(), before+16)
	}
}

// TestForEachChunkedStealsUnderSkew plants all the cost in the lowest
// indices (one worker's initial deque) — the mechanism the fallback
// scheduler exists for. Steal timing depends on the host's real
// parallelism, so coverage is asserted strictly while the steal count
// is only reported.
func TestForEachChunkedStealsUnderSkew(t *testing.T) {
	const n = 1 << 10
	var st SchedStats
	st.Reset(4)
	var total atomic.Int64
	ForEachChunked(n, 4, 8, &st, nil, func(lo, hi, tid int) {
		for i := lo; i < hi; i++ {
			cost := 1
			if i < n/4 {
				cost = 400 // the first worker's quarter is 400× heavier
			}
			s := 0
			for k := 0; k < cost*100; k++ {
				s += k
			}
			total.Add(int64(s & 1))
		}
	})
	if got, min := st.Claimed(), n/8; got < min {
		t.Fatalf("claimed = %d, want ≥ %d", got, min)
	}
	t.Logf("steals under planted skew: %d, imbalance %.2f", st.Stolen(), st.Imbalance())
}

func TestSchedStatsImbalance(t *testing.T) {
	var st SchedStats
	if st.Imbalance() != 0 {
		t.Error("empty stats should report 0 imbalance")
	}
	// All four workers participated; one did all the work.
	st.Workers = []WorkerStats{
		{Busy: 4 * time.Millisecond, Claimed: 4},
		{Busy: 0, Claimed: 1}, {Busy: 0, Claimed: 1}, {Busy: 0, Claimed: 1},
	}
	if got := st.Imbalance(); got != 4 {
		t.Errorf("one-of-four imbalance = %v, want 4", got)
	}
	st.Workers = []WorkerStats{{Busy: time.Millisecond, Claimed: 2}, {Busy: time.Millisecond, Claimed: 2}}
	if got := st.Imbalance(); got != 1 {
		t.Errorf("balanced imbalance = %v, want 1", got)
	}
	// Serial fallback: only tid 0 ever received blocks. That is a
	// deliberate narrow pass, not imbalance.
	st.Workers = []WorkerStats{{Busy: 4 * time.Millisecond, Claimed: 4}, {}, {}, {}}
	if got := st.Imbalance(); got != 1 {
		t.Errorf("serial-fallback imbalance = %v, want 1", got)
	}
}

func TestSchedSummaryRecord(t *testing.T) {
	var sum SchedSummary
	var st SchedStats
	st.Workers = []WorkerStats{{Busy: 3 * time.Millisecond, Claimed: 5, Stolen: 2}, {Busy: time.Millisecond, Claimed: 3}}
	sum.Record(st)
	sum.Record(st)
	if sum.Passes != 2 || sum.BlocksClaimed != 16 || sum.BlocksStolen != 4 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Busy != 8*time.Millisecond {
		t.Errorf("busy = %v, want 8ms", sum.Busy)
	}
	if sum.WorstImbalance != 1.5 {
		t.Errorf("worst imbalance = %v, want 1.5", sum.WorstImbalance)
	}
}

// TestPrefixSumParallelBoundary exercises the serial/parallel cutoff at
// length cutoff−1, cutoff, and cutoff+1 — the sizes where the old block
// math produced blocks far smaller than a scheduling step is worth.
func TestPrefixSumParallelBoundary(t *testing.T) {
	for _, n := range []int{prefixCutoff - 1, prefixCutoff, prefixCutoff + 1} {
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			v := int64((i*31 + 7) % 13)
			a[i], b[i] = v, v
		}
		t1 := PrefixSum(a)
		t2 := PrefixSumParallel(b, 8)
		if t1 != t2 {
			t.Fatalf("n=%d: total %d != %d", n, t2, t1)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: prefix differs at %d", n, i)
			}
		}
	}
}

// TestPrefixBlockMath pins the satellite fix: just above the cutoff the
// block count must come from n/blk (few, large blocks), not from
// threads*4 (many undersized blocks).
func TestPrefixBlockMath(t *testing.T) {
	n := prefixCutoff + 1
	threads := 8
	nblk := threads * 4
	blk := (n + nblk - 1) / nblk
	if blk < prefixMinBlock {
		blk = prefixMinBlock
	}
	nblk = (n + blk - 1) / blk
	if blk < prefixMinBlock {
		t.Fatalf("block size %d below floor %d", blk, prefixMinBlock)
	}
	if nblk > (n+prefixMinBlock-1)/prefixMinBlock {
		t.Fatalf("nblk %d exceeds what n=%d supports at floor %d", nblk, n, prefixMinBlock)
	}
}
