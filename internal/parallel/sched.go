package parallel

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file grows the fixed-grain block scheduler of parallel.go into a
// small scheduling subsystem (DESIGN.md §9):
//
//   - ForEachBlockStats: the PR-1 fixed-grain scheduler, now with
//     opt-in per-worker telemetry.
//   - ForEachPartition: variable-width partitions precomputed by the
//     caller (typically equal-cost row partitions from a plan-time
//     flops profile), claimed dynamically.
//   - ForEachChunked: per-worker deques with back-half stealing — the
//     skew-absorbing fallback for callers without a cost profile.
//
// All three report into an optional *SchedStats so load imbalance is
// measurable instead of guessed.

// WorkerStats is one worker's share of a scheduled parallel pass.
type WorkerStats struct {
	// Busy is the time the worker spent inside the caller's function
	// (claim/steal overhead and idle spinning excluded).
	Busy time.Duration
	// Claimed counts the blocks the worker executed, regardless of how
	// it obtained them (shared counter, partition queue, own deque, or
	// a previously stolen range).
	Claimed int
	// Stolen counts successful steal events (ForEachChunked only): each
	// event transfers the back half of a victim's remaining range.
	Stolen int
}

// SchedStats is per-call scheduler telemetry, filled when a scheduling
// function is given a non-nil stats target. Workers accumulate across
// passes until Reset, so a multi-pass execution (symbolic + numeric +
// compaction) aggregates naturally. Not safe for concurrent use by
// multiple scheduled passes at once.
type SchedStats struct {
	// Workers holds one entry per worker id; index = tid.
	Workers []WorkerStats
}

// Reset clears the stats and sizes them for a worker count.
func (s *SchedStats) Reset(threads int) {
	s.Workers = s.Workers[:0]
	s.ensure(threads)
}

// ensure grows Workers to at least threads entries, preserving counts.
func (s *SchedStats) ensure(threads int) {
	for len(s.Workers) < threads {
		s.Workers = append(s.Workers, WorkerStats{})
	}
}

// record folds one worker's pass-local counters into its slot.
func (s *SchedStats) record(tid int, busy time.Duration, claimed, stolen int) {
	w := &s.Workers[tid]
	w.Busy += busy
	w.Claimed += claimed
	w.Stolen += stolen
}

// Busy returns the summed busy time across workers.
func (s SchedStats) Busy() time.Duration {
	var total time.Duration
	for _, w := range s.Workers {
		total += w.Busy
	}
	return total
}

// Claimed returns the total number of executed blocks.
func (s SchedStats) Claimed() int {
	n := 0
	for _, w := range s.Workers {
		n += w.Claimed
	}
	return n
}

// Stolen returns the total number of steal events.
func (s SchedStats) Stolen() int {
	n := 0
	for _, w := range s.Workers {
		n += w.Stolen
	}
	return n
}

// Imbalance is the load-imbalance factor: the busiest worker's time
// divided by the mean busy time over the workers that executed at
// least one block. 1.0 is perfect balance; the participant count is
// the worst case (one participant did everything). Workers that never
// received a block do not count against balance — a pass the
// scheduler deliberately ran narrow (serial fallback, fewer blocks
// than workers) is not imbalance. Returns 0 when nothing was
// recorded.
func (s SchedStats) Imbalance() float64 {
	var max, total time.Duration
	participants := 0
	for _, w := range s.Workers {
		if w.Claimed == 0 {
			continue
		}
		participants++
		total += w.Busy
		if w.Busy > max {
			max = w.Busy
		}
	}
	if participants == 0 || total == 0 {
		return 0
	}
	mean := float64(total) / float64(participants)
	return float64(max) / mean
}

// Clone returns a deep copy safe to retain after the next Reset.
func (s SchedStats) Clone() SchedStats {
	return SchedStats{Workers: append([]WorkerStats(nil), s.Workers...)}
}

// SchedSummary accumulates SchedStats across many executions — the
// serving-layer view (Session.Stats) of scheduler health. Not
// concurrency-safe; callers aggregate under their own lock.
type SchedSummary struct {
	// Passes counts the recorded executions.
	Passes uint64
	// Busy is the summed worker busy time over all recorded executions.
	Busy time.Duration
	// BlocksClaimed is the total number of executed blocks.
	BlocksClaimed uint64
	// BlocksStolen is the total number of steal events.
	BlocksStolen uint64
	// WorstImbalance is the highest per-execution Imbalance observed.
	WorstImbalance float64
}

// Record folds one execution's stats into the summary.
func (s *SchedSummary) Record(st SchedStats) {
	s.Passes++
	s.Busy += st.Busy()
	s.BlocksClaimed += uint64(st.Claimed())
	s.BlocksStolen += uint64(st.Stolen())
	if im := st.Imbalance(); im > s.WorstImbalance {
		s.WorstImbalance = im
	}
}

// ForEachBlockStats is ForEachBlock with optional telemetry (when stats
// is non-nil, each worker's busy time and claimed-block count are
// recorded, costing two clock reads per block) and optional cooperative
// cancellation: when cancel is non-nil and becomes latched, workers
// stop claiming new blocks — a canceled pass wastes at most one
// in-flight block per worker. A worker panic is captured, latches the
// (possibly internal) cancel token so siblings quiesce, and is
// re-raised on the calling goroutine as a *PanicError after all
// workers park; on the serial path panics propagate unchanged.
func ForEachBlockStats(n, threads, grain int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
	threads = Threads(threads)
	if grain < 1 {
		grain = DefaultGrain
	}
	if n <= 0 {
		return
	}
	if stats != nil {
		stats.ensure(threads)
	}
	if threads == 1 || n <= grain {
		runSerialBlocks(n, grain, stats, cancel, fn)
		return
	}
	// The parallel path lives in its own function so its escaping
	// coordination state (counter, trap, wait group) is never
	// heap-allocated on the serial fast path above.
	forEachBlockParallel(n, threads, grain, stats, cancel, fn)
}

// forEachBlockParallel is ForEachBlockStats' multi-worker path.
func forEachBlockParallel(n, threads, grain int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
	if cancel == nil {
		cancel = new(CancelToken)
	}
	var trap panicTrap
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer func() {
				if r := recover(); r != nil {
					trap.capture(tid, cancel, r)
				}
				wg.Done()
			}()
			var busy time.Duration
			claimed := 0
			for !cancel.Canceled() {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					break
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				claimed++
				if stats != nil {
					t0 := time.Now()
					fn(lo, hi, tid)
					busy += time.Since(t0)
				} else {
					fn(lo, hi, tid)
				}
			}
			if stats != nil {
				stats.record(tid, busy, claimed, 0)
			}
		}(t)
	}
	wg.Wait()
	trap.rethrow()
}

// runSerialBlocks is the shared single-worker path: blocks of grain
// items run inline on the calling goroutine as tid 0, in order. cancel
// is polled between blocks; panics propagate to the caller unchanged
// (there is no sibling to quiesce).
//
//mspgemm:hotpath
func runSerialBlocks(n, grain int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
	var busy time.Duration
	claimed := 0
	for lo := 0; lo < n && !cancel.Canceled(); lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		claimed++
		if stats != nil {
			t0 := time.Now()
			fn(lo, hi, 0)
			busy += time.Since(t0)
		} else {
			fn(lo, hi, 0)
		}
	}
	if stats != nil {
		stats.record(0, busy, claimed, 0)
	}
}

// ForEachPartition runs fn over the variable-width partitions described
// by bounds: partition j covers [bounds[j], bounds[j+1]), and bounds
// must be non-decreasing. Partitions are claimed dynamically from an
// atomic counter, so callers may provide more partitions than workers
// (scheduling slack) and empty partitions are skipped without a call.
// This is the executor for plan-time equal-cost partitions: the caller
// did the load balancing when it laid out bounds; the scheduler only
// hands partitions out. cancel and panic containment follow the
// ForEachBlockStats contract (cancellation polled per partition claim).
func ForEachPartition(bounds []int, threads int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
	nparts := len(bounds) - 1
	if nparts <= 0 {
		return
	}
	threads = Threads(threads)
	if stats != nil {
		stats.ensure(threads)
	}
	if threads == 1 || nparts == 1 {
		var busy time.Duration
		claimed := 0
		for j := 0; j < nparts && !cancel.Canceled(); j++ {
			lo, hi := bounds[j], bounds[j+1]
			if lo >= hi {
				continue
			}
			claimed++
			if stats != nil {
				t0 := time.Now()
				fn(lo, hi, 0)
				busy += time.Since(t0)
			} else {
				fn(lo, hi, 0)
			}
		}
		if stats != nil {
			stats.record(0, busy, claimed, 0)
		}
		return
	}
	forEachPartitionParallel(bounds, nparts, threads, stats, cancel, fn)
}

// forEachPartitionParallel is ForEachPartition's multi-worker path,
// split out so the serial path stays allocation-free.
func forEachPartitionParallel(bounds []int, nparts, threads int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
	if cancel == nil {
		cancel = new(CancelToken)
	}
	var trap panicTrap
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer func() {
				if r := recover(); r != nil {
					trap.capture(tid, cancel, r)
				}
				wg.Done()
			}()
			var busy time.Duration
			claimed := 0
			for !cancel.Canceled() {
				j := int(next.Add(1)) - 1
				if j >= nparts {
					break
				}
				lo, hi := bounds[j], bounds[j+1]
				if lo >= hi {
					continue
				}
				claimed++
				if stats != nil {
					t0 := time.Now()
					fn(lo, hi, tid)
					busy += time.Since(t0)
				} else {
					fn(lo, hi, tid)
				}
			}
			if stats != nil {
				stats.record(tid, busy, claimed, 0)
			}
		}(t)
	}
	wg.Wait()
	trap.rethrow()
}

// wsRange is one worker's remaining index range packed into a single
// atomic word (lo in the high 32 bits, hi in the low 32), padded to a
// cache line so owners popping and thieves stealing do not false-share.
type wsRange struct {
	r atomic.Uint64
	_ [56]byte
}

func packRange(lo, hi int) uint64 { return uint64(lo)<<32 | uint64(uint32(hi)) }

func unpackRange(v uint64) (lo, hi int) { return int(v >> 32), int(uint32(v)) }

// popFront claims up to grain items from the front of a range. The
// owner and thieves race through CAS, so the pop is safe from any
// goroutine.
//
//mspgemm:hotpath
func popFront(r *wsRange, grain int) (lo, hi int, ok bool) {
	for {
		v := r.r.Load()
		l, h := unpackRange(v)
		if l >= h {
			return 0, 0, false
		}
		nl := l + grain
		if nl > h {
			nl = h
		}
		if r.r.CompareAndSwap(v, packRange(nl, h)) {
			return l, nl, true
		}
	}
}

// stealInto moves the back half of the largest victim range into the
// caller's (empty) slot. Returns false only after a full scan of the
// other workers found every range empty — at that point all remaining
// work has been claimed by someone, so the caller can retire.
//
//mspgemm:hotpath
func stealInto(ranges []wsRange, tid int) bool {
	for {
		bestIdx, bestSize := -1, 0
		for v := range ranges {
			if v == tid {
				continue
			}
			lo, hi := unpackRange(ranges[v].r.Load())
			if hi-lo > bestSize {
				bestIdx, bestSize = v, hi-lo
			}
		}
		if bestIdx < 0 || bestSize == 0 {
			return false
		}
		victim := &ranges[bestIdx]
		v := victim.r.Load()
		lo, hi := unpackRange(v)
		if lo >= hi {
			continue // raced to empty; rescan
		}
		mid := lo + (hi-lo)/2 // victim keeps [lo, mid), thief takes [mid, hi)
		if victim.r.CompareAndSwap(v, packRange(lo, mid)) {
			ranges[tid].r.Store(packRange(mid, hi))
			return true
		}
		// CAS lost to the owner or another thief; rescan. Total
		// remaining work only shrinks, so this terminates.
	}
}

// ForEachChunked runs fn over [0, n) with work stealing: each worker
// starts with an equal contiguous range, pops grain-sized blocks from
// its front, and — when dry — steals the back half of the largest
// remaining victim range. Compared to ForEachBlockStats this keeps
// initial locality (each worker owns a contiguous span) while still
// absorbing cost skew no fixed grain can predict; compared to
// ForEachPartition it needs no cost profile. n must fit in 32 bits
// (larger n falls back to the fixed-grain scheduler). cancel and panic
// containment follow the ForEachBlockStats contract (cancellation
// polled per pop/steal).
func ForEachChunked(n, threads, grain int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
	threads = Threads(threads)
	if grain < 1 {
		grain = DefaultGrain
	}
	if n <= 0 {
		return
	}
	if n >= 1<<31 {
		ForEachBlockStats(n, threads, grain, stats, cancel, fn)
		return
	}
	if stats != nil {
		stats.ensure(threads)
	}
	if threads == 1 || n <= grain {
		runSerialBlocks(n, grain, stats, cancel, fn)
		return
	}
	forEachChunkedParallel(n, threads, grain, stats, cancel, fn)
}

// forEachChunkedParallel is ForEachChunked's multi-worker path, split
// out so the serial path stays allocation-free.
func forEachChunkedParallel(n, threads, grain int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
	if cancel == nil {
		cancel = new(CancelToken)
	}
	var trap panicTrap
	ranges := make([]wsRange, threads)
	for t := 0; t < threads; t++ {
		ranges[t].r.Store(packRange(n*t/threads, n*(t+1)/threads))
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer func() {
				if r := recover(); r != nil {
					trap.capture(tid, cancel, r)
				}
				wg.Done()
			}()
			var busy time.Duration
			claimed, stolen := 0, 0
			self := &ranges[tid]
			for !cancel.Canceled() {
				lo, hi, ok := popFront(self, grain)
				if !ok {
					if !stealInto(ranges, tid) {
						break
					}
					stolen++
					continue
				}
				claimed++
				if stats != nil {
					t0 := time.Now()
					fn(lo, hi, tid)
					busy += time.Since(t0)
				} else {
					fn(lo, hi, tid)
				}
			}
			if stats != nil {
				stats.record(tid, busy, claimed, stolen)
			}
		}(t)
	}
	wg.Wait()
	trap.rethrow()
}
