package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachBlockCoversAll(t *testing.T) {
	f := func(nRaw uint16, threadsRaw, grainRaw uint8) bool {
		n := int(nRaw % 2000)
		threads := int(threadsRaw%8) + 1
		grain := int(grainRaw%100) + 1
		hits := make([]int32, n)
		ForEachBlock(n, threads, grain, func(lo, hi, tid int) {
			if tid < 0 || tid >= threads {
				panic("tid out of range")
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForEachBlockEmpty(t *testing.T) {
	called := false
	ForEachBlock(0, 4, 16, func(lo, hi, tid int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
	ForEachBlock(-5, 4, 16, func(lo, hi, tid int) { called = true })
	if called {
		t.Error("fn called for negative n")
	}
}

func TestForEachRow(t *testing.T) {
	var sum atomic.Int64
	ForEachRow(100, 3, 7, func(i, _ int) {
		sum.Add(int64(i))
	})
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
}

func TestThreads(t *testing.T) {
	if Threads(0) != runtime.GOMAXPROCS(0) {
		t.Error("Threads(0) should be GOMAXPROCS")
	}
	if Threads(-3) != runtime.GOMAXPROCS(0) {
		t.Error("Threads(negative) should be GOMAXPROCS")
	}
	if Threads(5) != 5 {
		t.Error("Threads(5) should be 5")
	}
}

func TestPrefixSum(t *testing.T) {
	counts := []int64{3, 0, 2, 5, 0}
	total := PrefixSum(counts)
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	want := []int64{0, 3, 3, 5, 10}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if PrefixSum(nil) != 0 {
		t.Error("empty prefix sum should be 0")
	}
}

func TestPrefixSumParallelMatchesSerial(t *testing.T) {
	f := func(seed uint16) bool {
		n := 40000 + int(seed)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			v := int64((i*2654435761 + int(seed)) % 97)
			a[i], b[i] = v, v
		}
		t1 := PrefixSum(a)
		t2 := PrefixSumParallel(b, 4)
		if t1 != t2 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestForEachBlockSingleThreadOrdering(t *testing.T) {
	// threads == 1 must run inline, in order (kernels rely on this for
	// clean profiling).
	var order []int
	ForEachBlock(10, 1, 3, func(lo, hi, tid int) {
		if tid != 0 {
			t.Fatal("tid != 0 in single-thread mode")
		}
		order = append(order, lo)
	})
	want := []int{0, 3, 6, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
