package parallel

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Fault containment at the scheduler layer (DESIGN.md §15). Two
// concerns live here because they share one mechanism:
//
//   - cooperative cancellation: a CancelToken is polled at every block
//     claim, so a canceled execution stops within one block's worth of
//     work per worker instead of running the pass to completion;
//   - panic isolation: every parallel worker runs under recover; the
//     first panic latches the pass's cancel token so sibling workers
//     quiesce at their next claim, and the captured panic is re-raised
//     on the calling goroutine as a *PanicError once all workers have
//     parked.
//
// The caller above the scheduler (the engine drivers, then
// Plan.ExecuteOnOpts) turns the latched token into a typed error and
// the re-raised PanicError into a KernelPanicError.

// CancelToken is a lock-free cooperative cancellation flag shared
// between an execution and its scheduled workers. Cancel may be called
// from any goroutine, any number of times; workers observe it at block
// boundaries (one atomic load per claim). A nil token never reads
// canceled, so callers without a cancellation source pass nil for
// free.
//
//mspgemm:nilsafe
type CancelToken struct {
	flag atomic.Bool
}

// Cancel latches the token. Idempotent, safe from any goroutine, and a
// no-op on a nil token — panic capture latches whatever token the pass
// was scheduled with, including none.
func (t *CancelToken) Cancel() {
	if t == nil {
		return
	}
	t.flag.Store(true)
}

// Canceled reports whether the token is latched; false on a nil token.
func (t *CancelToken) Canceled() bool { return t != nil && t.flag.Load() }

// PanicError is a worker panic captured by a scheduling function and
// re-raised (via panic) on the calling goroutine after every worker
// has parked. Value and Stack are from the worker that panicked first;
// later sibling panics, if any, are dropped.
type PanicError struct {
	// Worker is the panicking worker's tid.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking worker's stack at recovery.
	Stack []byte
}

// Error implements error, so recover sites can treat the re-raised
// panic uniformly.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker %d panicked: %v", e.Worker, e.Value)
}

// panicTrap collects the first worker panic of one scheduled pass.
type panicTrap struct {
	first atomic.Pointer[PanicError]
}

// capture records r as worker tid's panic (first capture wins) and
// latches cancel so sibling workers stop claiming blocks.
func (p *panicTrap) capture(tid int, cancel *CancelToken, r any) {
	pe := &PanicError{Worker: tid, Value: r, Stack: debug.Stack()}
	p.first.CompareAndSwap(nil, pe)
	cancel.Cancel()
}

// rethrow re-raises the captured panic, if any, on the caller.
func (p *panicTrap) rethrow() {
	if pe := p.first.Load(); pe != nil {
		panic(pe)
	}
}
