// Package parallel provides the shared-memory execution layer the masked
// SpGEMM kernels run on: a dynamically load-balanced row scheduler and
// parallel prefix sums.
//
// The paper parallelizes strictly across rows — "our algorithms do not
// parallelize the formation of individual rows as ... there is plenty of
// coarse-grained parallelism across rows" (§3). Dynamic chunk scheduling
// addresses the load imbalance challenge (§2.2): workers claim fixed-size
// blocks of rows from an atomic counter, so a few heavy rows cannot
// serialize the computation.
package parallel

import (
	"runtime"
)

// DefaultGrain is the default number of rows claimed per scheduling
// step. Small enough to balance skewed degree distributions (R-MAT), big
// enough to amortize the atomic fetch-add.
const DefaultGrain = 64

// Threads normalizes a requested thread count: values < 1 mean
// GOMAXPROCS.
func Threads(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEachBlock runs fn over [0, n) split into blocks of at most grain
// items, dynamically scheduled over the given number of worker
// goroutines. fn receives the block bounds and the worker id in
// [0, threads), which kernels use to index per-thread scratch state.
// With threads == 1 everything runs on the calling goroutine, making
// single-threaded profiles clean and deterministic. For telemetry use
// ForEachBlockStats; for skew-absorbing alternatives see
// ForEachPartition and ForEachChunked (sched.go).
func ForEachBlock(n, threads, grain int, fn func(lo, hi, tid int)) {
	ForEachBlockStats(n, threads, grain, nil, nil, fn)
}

// ForEachRow runs fn once per index in [0, n) with dynamic block
// scheduling; a convenience wrapper over ForEachBlock.
func ForEachRow(n, threads, grain int, fn func(i, tid int)) {
	ForEachBlock(n, threads, grain, func(lo, hi, tid int) {
		for i := lo; i < hi; i++ {
			fn(i, tid)
		}
	})
}

// PrefixSum replaces counts with its exclusive prefix sum in place and
// returns the total. counts must have one slot per row plus NO sentinel;
// after the call counts[i] is the starting offset of row i's output and
// the return value is the grand total.
func PrefixSum(counts []int64) int64 {
	var sum int64
	for i := range counts {
		c := counts[i]
		counts[i] = sum
		sum += c
	}
	return sum
}

// prefixCutoff is the slice length below which PrefixSumParallel runs
// the serial scan: the two extra passes and goroutine handoffs only pay
// off past tens of thousands of elements.
const prefixCutoff = 1 << 15

// prefixMinBlock floors the per-worker block size of the parallel
// prefix sum. Just above the cutoff, dividing n into threads*4 blocks
// would produce blocks so small that scheduling overhead dominates the
// adds; a floored block size derives the block count from n instead,
// using fewer blocks (and workers) on barely-parallel sizes.
const prefixMinBlock = 1 << 12

// PrefixSumParallel computes the same exclusive prefix sum with a
// two-pass block algorithm when the slice is large enough to benefit.
// Falls back to the serial scan below the cutoff.
func PrefixSumParallel(counts []int64, threads int) int64 {
	threads = Threads(threads)
	n := len(counts)
	if threads == 1 || n < prefixCutoff {
		return PrefixSum(counts)
	}
	nblk := threads * 4
	blk := (n + nblk - 1) / nblk
	if blk < prefixMinBlock {
		blk = prefixMinBlock
	}
	nblk = (n + blk - 1) / blk
	sums := make([]int64, nblk)
	ForEachRow(nblk, threads, 1, func(b, _ int) {
		lo, hi := b*blk, (b+1)*blk
		if hi > n {
			hi = n
		}
		var s int64
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		sums[b] = s
	})
	total := PrefixSum(sums)
	ForEachRow(nblk, threads, 1, func(b, _ int) {
		lo, hi := b*blk, (b+1)*blk
		if hi > n {
			hi = n
		}
		run := sums[b]
		for i := lo; i < hi; i++ {
			c := counts[i]
			counts[i] = run
			run += c
		}
	})
	return total
}
