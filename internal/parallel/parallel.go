// Package parallel provides the shared-memory execution layer the masked
// SpGEMM kernels run on: a dynamically load-balanced row scheduler and
// parallel prefix sums.
//
// The paper parallelizes strictly across rows — "our algorithms do not
// parallelize the formation of individual rows as ... there is plenty of
// coarse-grained parallelism across rows" (§3). Dynamic chunk scheduling
// addresses the load imbalance challenge (§2.2): workers claim fixed-size
// blocks of rows from an atomic counter, so a few heavy rows cannot
// serialize the computation.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default number of rows claimed per scheduling
// step. Small enough to balance skewed degree distributions (R-MAT), big
// enough to amortize the atomic fetch-add.
const DefaultGrain = 64

// Threads normalizes a requested thread count: values < 1 mean
// GOMAXPROCS.
func Threads(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEachBlock runs fn over [0, n) split into blocks of at most grain
// items, dynamically scheduled over the given number of worker
// goroutines. fn receives the block bounds and the worker id in
// [0, threads), which kernels use to index per-thread scratch state.
// With threads == 1 everything runs on the calling goroutine, making
// single-threaded profiles clean and deterministic.
func ForEachBlock(n, threads, grain int, fn func(lo, hi, tid int)) {
	threads = Threads(threads)
	if grain < 1 {
		grain = DefaultGrain
	}
	if n <= 0 {
		return
	}
	if threads == 1 || n <= grain {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi, tid)
			}
		}(t)
	}
	wg.Wait()
}

// ForEachRow runs fn once per index in [0, n) with dynamic block
// scheduling; a convenience wrapper over ForEachBlock.
func ForEachRow(n, threads, grain int, fn func(i, tid int)) {
	ForEachBlock(n, threads, grain, func(lo, hi, tid int) {
		for i := lo; i < hi; i++ {
			fn(i, tid)
		}
	})
}

// PrefixSum replaces counts with its exclusive prefix sum in place and
// returns the total. counts must have one slot per row plus NO sentinel;
// after the call counts[i] is the starting offset of row i's output and
// the return value is the grand total.
func PrefixSum(counts []int64) int64 {
	var sum int64
	for i := range counts {
		c := counts[i]
		counts[i] = sum
		sum += c
	}
	return sum
}

// PrefixSumParallel computes the same exclusive prefix sum with a
// two-pass block algorithm when the slice is large enough to benefit.
// Falls back to the serial scan below the cutoff.
func PrefixSumParallel(counts []int64, threads int) int64 {
	const cutoff = 1 << 15
	threads = Threads(threads)
	n := len(counts)
	if threads == 1 || n < cutoff {
		return PrefixSum(counts)
	}
	nblk := threads * 4
	blk := (n + nblk - 1) / nblk
	sums := make([]int64, nblk)
	ForEachRow(nblk, threads, 1, func(b, _ int) {
		lo, hi := b*blk, (b+1)*blk
		if hi > n {
			hi = n
		}
		var s int64
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		sums[b] = s
	})
	total := PrefixSum(sums)
	ForEachRow(nblk, threads, 1, func(b, _ int) {
		lo, hi := b*blk, (b+1)*blk
		if hi > n {
			hi = n
		}
		run := sums[b]
		for i := lo; i < hi; i++ {
			c := counts[i]
			counts[i] = run
			run += c
		}
	})
	return total
}
