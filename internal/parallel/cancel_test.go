package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

// schedulers enumerates the three scheduling functions behind one
// uniform signature so the cancellation and panic contracts are pinned
// on all of them.
func schedulers() map[string]func(n, threads, grain int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
	return map[string]func(n, threads, grain int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)){
		"block": ForEachBlockStats,
		"partition": func(n, threads, grain int, stats *SchedStats, cancel *CancelToken, fn func(lo, hi, tid int)) {
			bounds := make([]int, 0, n/grain+2)
			for lo := 0; lo <= n; lo += grain {
				bounds = append(bounds, lo)
			}
			if bounds[len(bounds)-1] != n {
				bounds = append(bounds, n)
			}
			ForEachPartition(bounds, threads, stats, cancel, fn)
		},
		"chunked": ForEachChunked,
	}
}

// TestCancelPreLatchedRunsNothing pins the fast path: a token latched
// before the call means no block ever reaches fn, serial or parallel.
func TestCancelPreLatchedRunsNothing(t *testing.T) {
	for name, sched := range schedulers() {
		for _, threads := range []int{1, 4} {
			tok := new(CancelToken)
			tok.Cancel()
			ran := atomic.Int32{}
			sched(1024, threads, 16, nil, tok, func(lo, hi, tid int) { ran.Add(1) })
			if ran.Load() != 0 {
				t.Errorf("%s/threads=%d: %d blocks ran after pre-latched cancel", name, threads, ran.Load())
			}
		}
	}
}

// TestCancelMidRunStopsEarly latches the token from inside the first
// executed block and checks the pass stops long before covering the
// index space: each worker may finish its in-flight block, but no
// worker claims past the latch plus one racing claim.
func TestCancelMidRunStopsEarly(t *testing.T) {
	const n = 1 << 16
	for name, sched := range schedulers() {
		for _, threads := range []int{1, 4} {
			tok := new(CancelToken)
			var covered atomic.Int64
			sched(n, threads, 8, nil, tok, func(lo, hi, tid int) {
				covered.Add(int64(hi - lo))
				tok.Cancel()
			})
			// Worst case: every worker had one claim in flight when the
			// token latched, plus one racing claim each. That is far
			// below half the index space.
			if got := covered.Load(); got >= n/2 {
				t.Errorf("%s/threads=%d: covered %d of %d indices after mid-run cancel", name, threads, got, n)
			}
		}
	}
}

// TestNilTokenCanceled pins the nil-token convenience: callers without
// a cancellation source pass nil and never observe cancellation.
func TestNilTokenCanceled(t *testing.T) {
	var tok *CancelToken
	if tok.Canceled() {
		t.Error("nil token reads canceled")
	}
}

// TestWorkerPanicRethrownAsPanicError injects a panic into one block of
// a parallel pass and checks (a) the calling goroutine observes a
// *PanicError carrying the worker id, value, and stack, and (b) the
// latch quiesced siblings — the pass did not run to completion. The
// non-panicking blocks dwell until the latch lands (bounded spin) so
// quiescence is observable regardless of scheduler interleaving.
func TestWorkerPanicRethrownAsPanicError(t *testing.T) {
	const n = 1 << 16
	for name, sched := range schedulers() {
		var covered atomic.Int64
		var pe *PanicError
		tok := new(CancelToken)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: worker panic not re-raised", name)
				}
				var ok bool
				if pe, ok = r.(*PanicError); !ok {
					t.Fatalf("%s: re-raised %T, want *PanicError", name, r)
				}
			}()
			sched(n, 4, 8, nil, tok, func(lo, hi, tid int) {
				if lo == 0 {
					panic("injected")
				}
				for i := 0; i < 1e7 && !tok.Canceled(); i++ {
				}
				covered.Add(int64(hi - lo))
			})
		}()
		if pe.Value != "injected" {
			t.Errorf("%s: panic value = %v", name, pe.Value)
		}
		if pe.Worker < 0 || pe.Worker >= 4 {
			t.Errorf("%s: worker id %d out of range", name, pe.Worker)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("%s: no stack captured", name)
		}
		if !errors.As(error(pe), &pe) {
			t.Errorf("%s: PanicError does not satisfy error", name)
		}
		if got := covered.Load(); got >= n-8 {
			t.Errorf("%s: siblings ran the full pass (%d of %d) despite the panic latch", name, got, n)
		}
	}
}

// TestWorkerPanicLatchesCallerToken checks a caller-provided token is
// the one latched on panic, so layers above the scheduler can read the
// interruption without their own channel.
func TestWorkerPanicLatchesCallerToken(t *testing.T) {
	tok := new(CancelToken)
	func() {
		defer func() { _ = recover() }()
		ForEachBlockStats(4096, 4, 8, nil, tok, func(lo, hi, tid int) {
			panic("boom")
		})
	}()
	if !tok.Canceled() {
		t.Error("caller token not latched by worker panic")
	}
}

// TestSerialPanicPropagatesRaw pins the serial path: with one worker
// there is no goroutine hop, so the panic value arrives unchanged (the
// recover site upstream normalizes both shapes).
func TestSerialPanicPropagatesRaw(t *testing.T) {
	defer func() {
		if r := recover(); r != "raw" {
			t.Errorf("serial panic = %v, want raw string", r)
		}
	}()
	ForEachBlockStats(10, 1, 4, nil, nil, func(lo, hi, tid int) {
		panic("raw")
	})
}
