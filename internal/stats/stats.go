// Package stats computes the structural matrix properties the paper's
// analysis reasons about: degree distributions (the skew that separates
// R-MAT from Erdős-Rényi workloads), matrix bandwidth β(A) (the §4.2
// memory-model assumption "β(A) > Z"), and masked-work summaries
// (Figure 1's wasted-flops argument). The mspgemm-app CLI surfaces
// these for any input.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/sparse"
)

// MatrixStats summarizes one sparse matrix's structure.
type MatrixStats struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// NNZ is the stored entry count.
	NNZ int64
	// Density is nnz / (rows·cols).
	Density float64
	// MinDegree and MaxDegree bound the row sizes.
	MinDegree, MaxDegree int
	// MeanDegree is the average row size.
	MeanDegree float64
	// MedianDegree is the median row size.
	MedianDegree int
	// DegreeP99 is the 99th-percentile row size; the skew indicator.
	DegreeP99 int
	// EmptyRows counts rows with no entries (hypersparsity signal).
	EmptyRows int
	// Bandwidth is β(A): the smallest k with A_ij = 0 for |i−j| > k
	// (§4.2's matrix bandwidth).
	Bandwidth int
	// Symmetric reports pattern symmetry (square matrices only).
	Symmetric bool
}

// Collect computes MatrixStats in one pass plus a transpose for the
// symmetry check.
func Collect[T any](a *sparse.CSR[T]) MatrixStats {
	s := MatrixStats{Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ(), MinDegree: math.MaxInt}
	if a.Rows == 0 || a.Cols == 0 {
		s.MinDegree = 0
		return s
	}
	s.Density = float64(s.NNZ) / (float64(a.Rows) * float64(a.Cols))
	degrees := make([]int, a.Rows)
	for i := 0; i < a.Rows; i++ {
		d := a.RowNNZ(i)
		degrees[i] = d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.EmptyRows++
		}
		for _, j := range a.Row(i) {
			if bw := int(j) - i; bw > s.Bandwidth {
				s.Bandwidth = bw
			} else if bw = i - int(j); bw > s.Bandwidth {
				s.Bandwidth = bw
			}
		}
	}
	s.MeanDegree = float64(s.NNZ) / float64(a.Rows)
	sort.Ints(degrees)
	s.MedianDegree = degrees[len(degrees)/2]
	s.DegreeP99 = degrees[(len(degrees)*99)/100]
	if a.Rows == a.Cols {
		s.Symmetric = sparse.PatternEqual(a.PatternView(), sparse.TransposePattern(a.PatternView()))
	}
	return s
}

// Write renders the stats as an aligned key-value block.
func (s MatrixStats) Write(w io.Writer) {
	fmt.Fprintf(w, "  shape        %d x %d\n", s.Rows, s.Cols)
	fmt.Fprintf(w, "  nnz          %d (density %.3g)\n", s.NNZ, s.Density)
	fmt.Fprintf(w, "  degree       min %d / median %d / mean %.2f / p99 %d / max %d\n",
		s.MinDegree, s.MedianDegree, s.MeanDegree, s.DegreeP99, s.MaxDegree)
	fmt.Fprintf(w, "  empty rows   %d\n", s.EmptyRows)
	fmt.Fprintf(w, "  bandwidth    %d\n", s.Bandwidth)
	fmt.Fprintf(w, "  symmetric    %v\n", s.Symmetric)
}

// DegreeHistogram buckets row degrees into powers of two: bucket k
// counts rows with degree in [2^k, 2^(k+1)) (bucket 0 additionally
// holds degree-0 rows at index -1 semantics folded into bucket 0).
func DegreeHistogram[T any](a *sparse.CSR[T]) []int64 {
	var hist []int64
	bump := func(b int) {
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	for i := 0; i < a.Rows; i++ {
		d := a.RowNNZ(i)
		b := 0
		for d > 1 {
			d >>= 1
			b++
		}
		bump(b)
	}
	return hist
}

// WriteSchedStats renders one execution's scheduler telemetry
// (parallel.SchedStats, collected under Options.CollectSchedStats) as
// an aligned per-worker table plus the aggregate imbalance factor —
// the diagnostic view of the load-balance skew this package's degree
// statistics predict.
// The share column decomposes the imbalance factor: each worker's
// fraction of total busy time, where every participant at 1/P reads
// imbalance 1.00 and one worker hoarding the row mass shows up
// directly. This is the same max-busy / mean-busy signal the online
// calibration loop feeds back per plan (DESIGN.md §14).
func WriteSchedStats(w io.Writer, st parallel.SchedStats) {
	fmt.Fprintf(w, "  %-8s %12s %7s %10s %8s\n", "worker", "busy", "share", "claimed", "stolen")
	total := st.Busy()
	for tid, ws := range st.Workers {
		share := 0.0
		if total > 0 {
			share = float64(ws.Busy) / float64(total)
		}
		fmt.Fprintf(w, "  %-8d %12s %6.1f%% %10d %8d\n", tid, ws.Busy, 100*share, ws.Claimed, ws.Stolen)
	}
	fmt.Fprintf(w, "  total busy %s over %d blocks (%d stolen), imbalance %.2f\n",
		total, st.Claimed(), st.Stolen(), st.Imbalance())
}

// WriteFaultStats renders a session's fault-containment counters
// (maskedspgemm.FaultStats, DESIGN.md §15) as an aligned key-value
// block. The keys are the same wire names the /stats endpoint exposes
// (exec_canceled, kernel_panics, executors_discarded), so text
// dashboards and JSON consumers grep for one vocabulary.
func WriteFaultStats(w io.Writer, fs maskedspgemm.FaultStats) {
	fmt.Fprintf(w, "  %-20s %d\n", "exec_canceled", fs.ExecCanceled)
	fmt.Fprintf(w, "  %-20s %d\n", "kernel_panics", fs.KernelPanics)
	fmt.Fprintf(w, "  %-20s %d\n", "executors_discarded", fs.ExecutorsDiscarded)
}

// MaskedWork summarizes Figure 1's argument for one masked product:
// how much of the unmasked flop count actually lands on the mask.
type MaskedWork struct {
	// Flops is the unmasked multiply–add count of A·B.
	Flops int64
	// OnMask is the count landing on admitted positions.
	OnMask int64
	// Wasted is the fraction a mask-oblivious algorithm throws away.
	Wasted float64
	// MaskCoverage is nnz(C) / nnz(M): how much of the mask receives a
	// value ("mask may contain entries for which the multiplication
	// does not produce an output").
	MaskCoverage float64
}

// AnalyzeMaskedWork measures the work split of C = M ⊙ (A·B).
func AnalyzeMaskedWork[T any](mask *sparse.Pattern, a, b *sparse.CSR[T], outNNZ int64) MaskedWork {
	w := MaskedWork{
		Flops:  core.Flops(a, b),
		OnMask: core.MaskedFlops(mask, a, b, false),
	}
	if w.Flops > 0 {
		w.Wasted = 1 - float64(w.OnMask)/float64(w.Flops)
	}
	if mask.NNZ() > 0 {
		w.MaskCoverage = float64(outNNZ) / float64(mask.NNZ())
	}
	return w
}
