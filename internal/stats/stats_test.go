package stats

import (
	"bytes"
	"strings"
	"testing"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/sparse"
)

func TestCollectKnownMatrix(t *testing.T) {
	// Tridiagonal 5x5: bandwidth 1, symmetric, degrees 2,3,3,3,2.
	m, _ := sparse.FromRows(5, 5, map[int]map[int]float64{
		0: {0: 1, 1: 1},
		1: {0: 1, 1: 1, 2: 1},
		2: {1: 1, 2: 1, 3: 1},
		3: {2: 1, 3: 1, 4: 1},
		4: {3: 1, 4: 1},
	})
	s := Collect(m)
	if s.Bandwidth != 1 {
		t.Errorf("bandwidth = %d, want 1", s.Bandwidth)
	}
	if !s.Symmetric {
		t.Error("tridiagonal pattern is symmetric")
	}
	if s.MinDegree != 2 || s.MaxDegree != 3 || s.MedianDegree != 3 {
		t.Errorf("degrees: %+v", s)
	}
	if s.EmptyRows != 0 {
		t.Errorf("empty rows = %d", s.EmptyRows)
	}
	if s.NNZ != 13 {
		t.Errorf("nnz = %d", s.NNZ)
	}
}

func TestCollectAsymmetricAndEmpty(t *testing.T) {
	m, _ := sparse.FromRows(4, 4, map[int]map[int]float64{0: {3: 1}})
	s := Collect(m)
	if s.Symmetric {
		t.Error("matrix is asymmetric")
	}
	if s.EmptyRows != 3 {
		t.Errorf("empty rows = %d", s.EmptyRows)
	}
	if s.Bandwidth != 3 {
		t.Errorf("bandwidth = %d, want 3", s.Bandwidth)
	}
	empty := sparse.NewCSR[float64](0, 0)
	se := Collect(empty)
	if se.NNZ != 0 || se.MinDegree != 0 {
		t.Errorf("empty stats: %+v", se)
	}
}

func TestWrite(t *testing.T) {
	m := gen.Grid2D(8, 8)
	var buf bytes.Buffer
	Collect(m).Write(&buf)
	out := buf.String()
	for _, want := range []string{"shape", "nnz", "degree", "bandwidth", "symmetric    true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Write output missing %q:\n%s", want, out)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	m, _ := sparse.FromRows(4, 16, map[int]map[int]float64{
		0: {0: 1},                                           // degree 1 → bucket 0
		1: {0: 1, 1: 1, 2: 1},                               // degree 3 → bucket 1
		2: {0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1, 7: 1}, // 8 → bucket 3
	})
	hist := DegreeHistogram(m)
	// Row 3 is empty (degree 0 → bucket 0). hist[0] = 2 (deg 0 and 1).
	if hist[0] != 2 || hist[1] != 1 || hist[3] != 1 {
		t.Errorf("hist = %v", hist)
	}
	// R-MAT should populate high buckets; ER should not.
	rmat := gen.RMATSymmetric(gen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 1})
	er := gen.Symmetrize(gen.ErdosRenyi(512, 8, 2))
	if len(DegreeHistogram(rmat)) <= len(DegreeHistogram(er)) {
		t.Error("R-MAT histogram should have a longer tail than ER")
	}
}

func TestAnalyzeMaskedWork(t *testing.T) {
	a, _ := sparse.FromRows(2, 2, map[int]map[int]float64{0: {0: 1, 1: 1}, 1: {1: 1}})
	b, _ := sparse.FromRows(2, 2, map[int]map[int]float64{0: {0: 1}, 1: {0: 1, 1: 1}})
	mask, _ := sparse.FromRows(2, 2, map[int]map[int]float64{0: {0: 1}})
	w := AnalyzeMaskedWork(mask.PatternView(), a, b, 1)
	if w.Flops != 5 || w.OnMask != 2 {
		t.Fatalf("work = %+v", w)
	}
	if w.Wasted < 0.59 || w.Wasted > 0.61 {
		t.Errorf("wasted = %v, want 0.6", w.Wasted)
	}
	if w.MaskCoverage != 1 {
		t.Errorf("coverage = %v", w.MaskCoverage)
	}
}

func TestWriteSchedStats(t *testing.T) {
	st := parallel.SchedStats{Workers: []parallel.WorkerStats{
		{Busy: 3 * time.Millisecond, Claimed: 10, Stolen: 1},
		{Busy: time.Millisecond, Claimed: 4},
	}}
	var buf bytes.Buffer
	WriteSchedStats(&buf, st)
	out := buf.String()
	for _, want := range []string{"worker", "claimed", "14 blocks", "(1 stolen)", "imbalance 1.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestWriteSchedStatsGolden pins the full rendering — the per-worker
// share column decomposing the imbalance factor, and the aggregate
// line whose "imbalance %.2f" tail external tooling greps for. The
// worker busy times are 3:1, so shares are 75%/25% and the imbalance
// (max busy / mean busy) is 1.50.
func TestWriteSchedStatsGolden(t *testing.T) {
	st := parallel.SchedStats{Workers: []parallel.WorkerStats{
		{Busy: 3 * time.Millisecond, Claimed: 10, Stolen: 1},
		{Busy: time.Millisecond, Claimed: 4},
	}}
	var buf bytes.Buffer
	WriteSchedStats(&buf, st)
	want := "" +
		"  worker           busy   share    claimed   stolen\n" +
		"  0                 3ms   75.0%         10        1\n" +
		"  1                 1ms   25.0%          4        0\n" +
		"  total busy 4ms over 14 blocks (1 stolen), imbalance 1.50\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteSchedStats rendering drifted.\ngot:\n%swant:\n%s", got, want)
	}
}

// TestWriteFaultStatsGolden pins the fault-counter rendering byte for
// byte: the keys must stay the /stats wire names, since operators grep
// the same vocabulary across the text and JSON surfaces.
func TestWriteFaultStatsGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteFaultStats(&buf, maskedspgemm.FaultStats{ExecCanceled: 3, KernelPanics: 1, ExecutorsDiscarded: 4})
	want := "" +
		"  exec_canceled        3\n" +
		"  kernel_panics        1\n" +
		"  executors_discarded  4\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteFaultStats rendering drifted.\ngot:\n%swant:\n%s", got, want)
	}
	buf.Reset()
	WriteFaultStats(&buf, maskedspgemm.FaultStats{})
	want = "" +
		"  exec_canceled        0\n" +
		"  kernel_panics        0\n" +
		"  executors_discarded  0\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteFaultStats zero rendering drifted.\ngot:\n%swant:\n%s", got, want)
	}
}

// TestWriteSchedStatsGoldenIdle pins the degenerate cases the share
// division must survive: an idle worker set renders 0% shares and
// imbalance 0.
func TestWriteSchedStatsGoldenIdle(t *testing.T) {
	st := parallel.SchedStats{Workers: []parallel.WorkerStats{{}, {}}}
	var buf bytes.Buffer
	WriteSchedStats(&buf, st)
	want := "" +
		"  worker           busy   share    claimed   stolen\n" +
		"  0                  0s    0.0%          0        0\n" +
		"  1                  0s    0.0%          0        0\n" +
		"  total busy 0s over 0 blocks (0 stolen), imbalance 0.00\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteSchedStats idle rendering drifted.\ngot:\n%swant:\n%s", got, want)
	}
}
