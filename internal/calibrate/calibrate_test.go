package calibrate

import (
	"math"
	"testing"
	"time"

	"maskedspgemm/internal/core"
)

// TestFitScale pins the least-squares-through-origin math on exact
// inputs: t = 3x recovers 3 regardless of scale mix, and degenerate
// inputs report unfitted (0).
func TestFitScale(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
		want float64
	}{
		{"exact", []float64{1, 2, 10}, []float64{3, 6, 30}, 3},
		{"noisy", []float64{1, 1}, []float64{2, 4}, 3},
		{"single", []float64{5}, []float64{10}, 2},
		{"empty", nil, nil, 0},
		{"mismatched", []float64{1}, []float64{1, 2}, 0},
		{"zero-x", []float64{0, 0}, []float64{1, 2}, 0},
		{"negative-fit", []float64{1, 2}, []float64{-3, -6}, 0},
	}
	for _, c := range cases {
		got := fitScale(c.x, c.y)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: fitScale = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFitProducesNormalizedCoeffs runs the real micro-benchmark on a
// reduced workload and checks the structural contract: MSA is exactly
// 1.0, every family holds a positive coefficient, and the wall bound
// holds (with slack for the workload in flight when it expires).
func TestFitProducesNormalizedCoeffs(t *testing.T) {
	cfg := Config{N: 512, Reps: 2, MaxDuration: 10 * time.Second}
	res := Fit(cfg)
	if res.Coeffs.IsZero() {
		t.Fatalf("Fit returned uncalibrated coeffs; samples %v", res.Samples)
	}
	if res.Coeffs[core.FamMSA] != 1.0 {
		t.Errorf("MSA coefficient = %v, want exactly 1.0 (normalization anchor)", res.Coeffs[core.FamMSA])
	}
	for f := core.Family(0); f < core.NumFamilies; f++ {
		c := res.Coeffs[f]
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			t.Errorf("family %v: coefficient %v not positive finite", f, c)
		}
	}
	if res.Samples[core.FamMSA] == 0 {
		t.Errorf("MSA fitted from 0 samples")
	}
	if res.Elapsed > cfg.MaxDuration+5*time.Second {
		t.Errorf("fit ran %v, far beyond the %v bound", res.Elapsed, cfg.MaxDuration)
	}
}

// TestFitHonorsDeadline: an already-expired budget must return fast
// and uncalibrated — the startup path can never wedge a server boot.
func TestFitHonorsDeadline(t *testing.T) {
	start := time.Now()
	res := Fit(Config{N: 4096, MaxDuration: time.Nanosecond})
	if !res.Coeffs.IsZero() {
		t.Errorf("expected uncalibrated result under an expired budget, got %v", res.Coeffs)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("expired-budget fit took %v", elapsed)
	}
}

// BenchmarkCalibrate times one full startup fit — the latency a
// -calibrate=startup server boot pays before serving. Run by the CI
// bench smoke.
func BenchmarkCalibrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Fit(Config{N: 512})
		if res.Coeffs.IsZero() {
			b.Fatal("calibration produced no coefficients")
		}
	}
}
