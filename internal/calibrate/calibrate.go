// Package calibrate fits the per-family cost-model coefficients on
// the local host (DESIGN.md §14). The §9/§10 RowCost estimators are
// structural constants tuned on one machine; the paper's own §5
// family crossovers shift with cache geometry, so a model that is
// right about *shape* can still be wrong about *scale* per family —
// and scale errors move the Hybrid crossovers and the equal-cost
// partition bounds. The startup micro-benchmark runs each accumulator
// family over small synthetic workloads, regresses the measured wall
// times against the uncalibrated model's predicted costs (least
// squares through the origin), and returns one multiplicative
// coefficient per family, normalized so MSA stays 1.0 — selection and
// partitioning compare costs, so only relative scale matters.
package calibrate

import (
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
)

// Defaults for Config's zero values.
const (
	// DefaultN is the workload dimension of the micro-benchmark
	// matrices: big enough that per-row model terms dominate fixed
	// overheads, small enough that the whole fit stays in the
	// DefaultMaxDuration envelope.
	DefaultN = 2048
	// DefaultReps is the timed repetitions per workload; the fit uses
	// the best (smallest) time, the standard noise floor estimator.
	DefaultReps = 3
	// DefaultMaxDuration bounds the whole fit's wall time. The budget
	// is checked between timed workloads: families not reached before
	// it expires keep coefficient 1.0 (the literal relative scale).
	DefaultMaxDuration = 2 * time.Second
	// DefaultSeed seeds the synthetic workload generators.
	DefaultSeed = 0x5eed
)

// defaultDegrees are the ER degrees swept per family: two operating
// points per family give the through-origin fit a slope, not just an
// offset.
var defaultDegrees = []int{4, 16}

// Config tunes Fit. The zero value means every default.
type Config struct {
	// N is the workload dimension; <= 0 means DefaultN.
	N int
	// Degrees are the ER degrees swept per family; empty means
	// {4, 16}.
	Degrees []int
	// Reps is the timed repetitions per workload (best-of); <= 0
	// means DefaultReps.
	Reps int
	// MaxDuration bounds the fit's wall time; <= 0 means
	// DefaultMaxDuration.
	MaxDuration time.Duration
	// Seed seeds the synthetic generators; 0 means DefaultSeed.
	Seed uint64
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = DefaultN
	}
	if len(c.Degrees) == 0 {
		c.Degrees = defaultDegrees
	}
	if c.Reps <= 0 {
		c.Reps = DefaultReps
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = DefaultMaxDuration
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// Result is one completed fit.
type Result struct {
	// Coeffs is the fitted coefficient array, normalized so FamMSA is
	// 1.0; families the wall budget did not reach (or whose fit
	// degenerated) hold 1.0, the literal relative scale. The zero
	// value — returned only when even MSA could not be fitted — means
	// the host stays uncalibrated.
	Coeffs core.CostCoeffs
	// Elapsed is the fit's wall time.
	Elapsed time.Duration
	// Samples counts the workloads fitted per family.
	Samples [core.NumFamilies]int
}

// Fit runs the startup micro-benchmark and returns the fitted
// coefficients. It is synchronous and bounded by cfg.MaxDuration;
// sessions run it once at construction, off the request path.
func Fit(cfg Config) Result {
	cfg = cfg.withDefaults()
	start := time.Now()
	deadline := start.Add(cfg.MaxDuration)
	sr := semiring.PlusTimes[float64]{}

	var res Result
	var raw [core.NumFamilies]float64
	for f := core.Family(0); f < core.NumFamilies; f++ {
		var xs, ts []float64
		for wi, degree := range cfg.Degrees {
			if time.Now().After(deadline) {
				break
			}
			a := gen.ErdosRenyi(cfg.N, degree, cfg.Seed+uint64(wi)*7919)
			// Self-mask (the graph workloads' C = L ⊙ (L·L) shape):
			// every family prices the same structural inputs.
			mask := &a.Pattern
			opt := core.Options{
				Algorithm:      core.AlgoHybrid,
				HybridFamilies: core.Families(f),
				Threads:        1,
				Schedule:       core.SchedFixedGrain,
			}
			plan, err := core.NewPlan[float64](sr, mask, a, a, opt, nil)
			if err != nil {
				continue
			}
			best := time.Duration(-1)
			for r := 0; r < cfg.Reps; r++ {
				t0 := time.Now()
				if _, err := plan.Execute(a, a); err != nil {
					best = -1
					break
				}
				if d := time.Since(t0); best < 0 || d < best {
					best = d
				}
				if time.Now().After(deadline) {
					break
				}
			}
			if best < 0 {
				continue
			}
			x := core.PredictedRowCost(mask, a, a, f, core.Options{})
			if x <= 0 {
				continue
			}
			xs = append(xs, x)
			ts = append(ts, float64(best.Nanoseconds()))
		}
		res.Samples[f] = len(xs)
		raw[f] = fitScale(xs, ts)
	}
	res.Elapsed = time.Since(start)

	// Normalize by MSA: selection compares families, so only relative
	// scale matters, and keeping MSA at exactly 1.0 makes "calibrated
	// but every family measured proportional to its model" an identity.
	msa := raw[core.FamMSA]
	if msa <= 0 {
		return Result{Elapsed: res.Elapsed, Samples: res.Samples}
	}
	for f := range res.Coeffs {
		if raw[f] > 0 {
			res.Coeffs[f] = raw[f] / msa
		} else {
			res.Coeffs[f] = 1
		}
	}
	return res
}

// fitScale fits t ≈ c·x through the origin by least squares:
// c = Σxᵢtᵢ / Σxᵢ². Returns 0 for degenerate inputs (no samples, or
// a non-positive fit), which Fit treats as "unfitted".
func fitScale(x, t []float64) float64 {
	if len(x) == 0 || len(x) != len(t) {
		return 0
	}
	var xt, xx float64
	for i := range x {
		xt += x[i] * t[i]
		xx += x[i] * x[i]
	}
	if xx <= 0 || xt <= 0 {
		return 0
	}
	return xt / xx
}
