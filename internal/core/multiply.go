package core

import (
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// MaskedSpGEMM computes C = M ⊙ (A·B) — or C = ¬M ⊙ (A·B) when
// opt.Complement is set — over the given semiring, dispatching through
// the scheme registry to the algorithm and phase strategy selected in
// opt. The mask's values are never read; only its pattern matters
// (§2). Output rows are always sorted by column index.
//
// This is the one-shot form: it builds a Plan, executes it once, and
// discards it. Iterative callers (k-truss, betweenness, served
// traffic) should hold a Plan — and share an Executor — so the
// per-structure analysis and the accumulator workspaces are paid once.
func MaskedSpGEMM[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) (*sparse.CSR[T], error) {
	// The one-shot result must outlive the call, so pooled output is
	// never meaningful here — clear it in case a plan-oriented Options
	// value is reused for a one-shot call.
	opt.ReuseOutput = false
	p, err := NewPlan(sr, mask, a, b, opt, nil)
	if err != nil {
		return nil, err
	}
	return p.Execute(a, b)
}
