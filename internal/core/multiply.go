package core

import (
	"fmt"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// MaskedSpGEMM computes C = M ⊙ (A·B) — or C = ¬M ⊙ (A·B) when
// opt.Complement is set — over the given semiring, dispatching to the
// algorithm and phase strategy selected in opt. The mask's values are
// never read; only its pattern matters (§2). Output rows are always
// sorted by column index.
func MaskedSpGEMM[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) (*sparse.CSR[T], error) {
	if err := validate(mask, a, b); err != nil {
		return nil, err
	}
	opt.normalize()
	if opt.Complement {
		switch opt.Algorithm {
		case AlgoMSA, AlgoMSAEpoch:
			// The epoch variant has no complement form; fall back to MSAC.
			return multiplyMSAComplement(sr, mask, a, b, opt), nil
		case AlgoHash:
			return multiplyHashComplement(sr, mask, a, b, opt), nil
		case AlgoHeap, AlgoHeapDot:
			// NInspect is always 0 for complemented masks (§5.5).
			return multiplyHeapComplement(sr, mask, a, b, opt), nil
		case AlgoInner:
			return multiplyInnerComplement(sr, mask, a, b, opt), nil
		case AlgoSaxpyThenMask:
			return multiplySaxpyThenMask(sr, mask, a, b, opt)
		case AlgoDotTranspose:
			return multiplyDotBaseline(sr, mask, a, b, opt), nil
		case AlgoMCA:
			return nil, fmt.Errorf("core: MCA does not support complemented masks (§5.4)")
		case AlgoHybrid:
			return nil, fmt.Errorf("core: Hybrid does not support complemented masks (use MSA or Hash)")
		default:
			return nil, fmt.Errorf("core: unknown algorithm %v", opt.Algorithm)
		}
	}
	switch opt.Algorithm {
	case AlgoMSA:
		return multiplyMSA(sr, mask, a, b, opt), nil
	case AlgoMSAEpoch:
		return multiplyMSAEpoch(sr, mask, a, b, opt), nil
	case AlgoHash:
		return multiplyHash(sr, mask, a, b, opt), nil
	case AlgoMCA:
		return multiplyMCA(sr, mask, a, b, opt), nil
	case AlgoHeap:
		return multiplyHeap(sr, mask, a, b, opt, 1), nil
	case AlgoHeapDot:
		return multiplyHeap(sr, mask, a, b, opt, heapInspectInf), nil
	case AlgoInner:
		return multiplyInner(sr, mask, a, b, opt, nil), nil
	case AlgoSaxpyThenMask:
		return multiplySaxpyThenMask(sr, mask, a, b, opt)
	case AlgoDotTranspose:
		return multiplyDotBaseline(sr, mask, a, b, opt), nil
	case AlgoHybrid:
		return multiplyHybrid(sr, mask, a, b, opt), nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", opt.Algorithm)
	}
}

// SupportsComplement reports whether the algorithm implements
// complemented masks. MCA does not (§5.4: the compressed index space
// is defined by the mask's nonzeros); Hybrid does not because a
// complemented mask always favors the push side of its cost model.
func SupportsComplement(a Algorithm) bool { return a != AlgoMCA && a != AlgoHybrid }
