package core

import (
	"maskedspgemm/internal/faultinject"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/sparse"
)

// The execution engine shared by every algorithm family. An algorithm
// contributes two row kernels — numeric and symbolic — and the engine
// supplies the one-phase and two-phase drivers around them (§6):
//
//   - One-phase: output rows are written into a pre-sized scratch slab
//     (for plain masks, the mask's own CSR layout — nnz(C_i*) ≤
//     nnz(M_i*) — which is exactly the paper's observation that the mask
//     approximates the output structure), then compacted with a prefix
//     sum.
//   - Two-phase: a symbolic pass counts each output row, a prefix sum
//     sizes the result exactly, and the numeric pass writes in place.
//
// Kernels receive a tid to index per-worker accumulator scratch.

// rowNumericFn computes output row i into out slices (capacity ≥ the
// row's bound) and returns the entry count.
type rowNumericFn[T any] func(tid, i int, outIdx []int32, outVal []T) int

// rowSymbolicFn counts output row i without computing values.
type rowSymbolicFn func(tid, i int) int

// findRun returns the index of the run containing row i: the first
// run whose exclusive end exceeds i (binary search; runEnds is
// strictly increasing and covers every row).
func findRun(runEnds []int32, i int) int {
	lo, hi := 0, len(runEnds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(runEnds[mid]) <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// numericSegment returns the end of the longest prefix of [lo, hi)
// whose rows share one numeric kernel, together with that kernel.
// Uniform plans return the whole range; poly plans split at the run
// boundaries of the plan's per-row family binding, so dispatch is
// amortized per run ∩ block, never per row.
func (k *kernels[T]) numericSegment(lo, hi int) (int, rowNumericFn[T]) {
	if k.runEnds == nil {
		return hi, k.numeric
	}
	r := findRun(k.runEnds, lo)
	end := int(k.runEnds[r])
	if end > hi {
		end = hi
	}
	return end, k.numFam[k.runFam[r]]
}

// symbolicSegment is numericSegment for the symbolic pass.
func (k *kernels[T]) symbolicSegment(lo, hi int) (int, rowSymbolicFn) {
	if k.runEnds == nil {
		return hi, k.symbolic
	}
	r := findRun(k.runEnds, lo)
	end := int(k.runEnds[r])
	if end > hi {
		end = hi
	}
	return end, k.symFam[k.runFam[r]]
}

// onePhase runs the numeric kernel once per row into a slab laid out by
// offsets (len rows+1, offsets[i+1]-offsets[i] ≥ row i's worst case),
// then compacts. Row passes are scheduled by sch (fixed-grain,
// cost-partitioned, or work-stealing — DESIGN.md §9) and follow the
// kernel binding's run boundaries. es supplies pooled scratch; nil
// allocates fresh. Cancellation (sch.cancel) is checked at pass
// checkpoints and block claims; an interrupted execution returns
// *CanceledError and no partial result.
func onePhase[T any](rows, cols int, offsets []int64, sch rowSched, k kernels[T], es *engineScratch[T]) (*sparse.CSR[T], error) {
	if err := sch.enterPass(faultinject.PassNumeric); err != nil {
		return nil, err
	}
	slab := offsets[rows]
	tmpIdx, tmpVal := es.slab(slab)
	counts := es.rowPtrBuf(rows + 1)
	fi := sch.fi
	sch.run(rows, func(lo, hi, tid int) {
		for lo < hi {
			seg, numeric := k.numericSegment(lo, hi)
			for i := lo; i < seg; i++ {
				if fi != nil {
					fi.Row(faultinject.PassNumeric, i)
				}
				base, end := offsets[i], offsets[i+1]
				counts[i] = int64(numeric(tid, i, tmpIdx[base:end], tmpVal[base:end]))
			}
			lo = seg
		}
	})
	if err := sch.passCanceled(faultinject.PassNumeric); err != nil {
		return nil, err
	}
	return compact(rows, cols, offsets, counts, tmpIdx, tmpVal, sch, es)
}

// compact gathers per-row segments (counts[i] entries starting at
// offsets[i]) into a tight CSR result.
func compact[T any](rows, cols int, offsets, counts []int64, tmpIdx []int32, tmpVal []T, sch rowSched, es *engineScratch[T]) (*sparse.CSR[T], error) {
	if err := sch.enterPass(faultinject.PassCompact); err != nil {
		return nil, err
	}
	rowPtr := counts // reuse: becomes the exclusive prefix sum
	parallel.PrefixSumParallel(rowPtr[:rows+1], sch.threads)
	colIdx, val := es.outBufs(rowPtr[rows])
	out := &sparse.CSR[T]{
		Pattern: sparse.Pattern{
			Rows:   rows,
			Cols:   cols,
			RowPtr: rowPtr,
			ColIdx: colIdx,
		},
		Val: val,
	}
	sch.run(rows, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			n := rowPtr[i+1] - rowPtr[i]
			src := offsets[i]
			copy(out.ColIdx[rowPtr[i]:rowPtr[i+1]], tmpIdx[src:src+n])
			copy(out.Val[rowPtr[i]:rowPtr[i+1]], tmpVal[src:src+n])
		}
	})
	if err := sch.passCanceled(faultinject.PassCompact); err != nil {
		return nil, err
	}
	return out, nil
}

// twoPhase runs the symbolic kernel to size every row, prefix-sums, and
// lets the numeric kernel write directly into the exact-size result.
// Both passes are scheduled by sch and follow the kernel binding's run
// boundaries. es supplies pooled output buffers; nil allocates fresh.
// Cancellation follows the onePhase contract.
func twoPhase[T any](rows, cols int, sch rowSched, k kernels[T], es *engineScratch[T]) (*sparse.CSR[T], error) {
	if err := sch.enterPass(faultinject.PassSymbolic); err != nil {
		return nil, err
	}
	rowPtr := es.rowPtrBuf(rows + 1)
	fi := sch.fi
	sch.run(rows, func(lo, hi, tid int) {
		for lo < hi {
			seg, symbolic := k.symbolicSegment(lo, hi)
			for i := lo; i < seg; i++ {
				if fi != nil {
					fi.Row(faultinject.PassSymbolic, i)
				}
				rowPtr[i] = int64(symbolic(tid, i))
			}
			lo = seg
		}
	})
	if err := sch.passCanceled(faultinject.PassSymbolic); err != nil {
		return nil, err
	}
	rowPtr[rows] = 0
	parallel.PrefixSumParallel(rowPtr, sch.threads)
	colIdx, val := es.outBufs(rowPtr[rows])
	out := &sparse.CSR[T]{
		Pattern: sparse.Pattern{
			Rows:   rows,
			Cols:   cols,
			RowPtr: rowPtr,
			ColIdx: colIdx,
		},
		Val: val,
	}
	if err := sch.enterPass(faultinject.PassNumeric); err != nil {
		return nil, err
	}
	sch.run(rows, func(lo, hi, tid int) {
		for lo < hi {
			seg, numeric := k.numericSegment(lo, hi)
			for i := lo; i < seg; i++ {
				if fi != nil {
					fi.Row(faultinject.PassNumeric, i)
				}
				numeric(tid, i, out.ColIdx[rowPtr[i]:rowPtr[i+1]], out.Val[rowPtr[i]:rowPtr[i+1]])
			}
			lo = seg
		}
	})
	if err := sch.passCanceled(faultinject.PassNumeric); err != nil {
		return nil, err
	}
	return out, nil
}

// lazySlots hands out one lazily-constructed scratch value per worker.
type lazySlots[A any] struct {
	slots []*A
	make  func() *A
}

func newLazySlots[A any](threads int, mk func() *A) *lazySlots[A] {
	return &lazySlots[A]{slots: make([]*A, threads), make: mk}
}

// get returns worker tid's scratch, constructing it on first use. Safe
// without synchronization because each tid is owned by one goroutine.
func (l *lazySlots[A]) get(tid int) *A {
	if l.slots[tid] == nil {
		l.slots[tid] = l.make()
	}
	return l.slots[tid]
}

// complementBounds computes, for every output row, the §5.2 upper bound
// on a complemented-mask output row: min(cols − nnz(m_i),
// Σ_{k : A_ik ≠ 0} nnz(B_k*)), returned as exclusive prefix offsets
// (len rows+1). The second term also bounds the accumulator population.
func complementBounds[T any](mask *sparse.Pattern, a, b *sparse.CSR[T], threads, grain int) []int64 {
	rows := mask.Rows
	offsets := make([]int64, rows+1)
	parallel.ForEachBlock(rows, threads, grain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			var gen int64
			for _, k := range a.Row(i) {
				gen += b.RowPtr[k+1] - b.RowPtr[k]
			}
			free := int64(mask.Cols) - int64(mask.RowNNZ(i))
			if gen > free {
				gen = free
			}
			offsets[i] = gen
		}
	})
	parallel.PrefixSumParallel(offsets, threads)
	return offsets
}
