package core

import (
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// The hybrid algorithm the paper sketches as future work (§9:
// "hybrid algorithms that can use different accumulators in the same
// Masked SpGEMM depending on the density of the mask and parts of
// matrices being processed"). Every row independently picks pull
// (inner products) or push (MSA) using the §4.3 cost model:
//
//   pull cost  ≈ nnz(m_i) · (nnz(A_i*) + d̄_B)   one merge-dot per
//                                                 admitted mask entry
//   push cost  ≈ nnz(m_i) + Σ_k nnz(B_k*)        Gustavson flops
//                                                 (+ gather)
//
// where d̄_B is B's average column size. When the mask row is much
// sparser than the row's flops, pull wins (§4.3's asymptotic
// argument); when the inputs are sparse relative to the mask, push
// wins. The crossover is per row, which is exactly what a single
// global algorithm choice cannot express — R-MAT's skewed rows mix
// both regimes in one matrix.

// hybridChooser precomputes what the per-row decision needs.
type hybridChooser struct {
	avgBCol float64
	bRowPtr []int64
}

// pullWins applies the cost model to row i.
func (h *hybridChooser) pullWins(maskRow, aCols []int32) bool {
	if len(maskRow) == 0 || len(aCols) == 0 {
		return false // trivial either way; push path avoids the CSC touch
	}
	var pushFlops int64
	for _, k := range aCols {
		pushFlops += h.bRowPtr[k+1] - h.bRowPtr[k]
	}
	pullCost := float64(len(maskRow)) * (float64(len(aCols)) + h.avgBCol)
	pushCost := float64(len(maskRow)) + float64(pushFlops)
	return pullCost < pushCost
}

// bindHybrid registers the per-row hybrid scheme. The cost-model
// decisions and B's CSC view are precomputed by the plan (exactly the
// per-(mask, A, B) analysis a plan exists to amortize); each worker
// keeps one MSA in its pooled workspace for the push rows.
func bindHybrid[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	sr, exec, mask, pull, ncols := p.sr, e, p.mask, p.pull, b.Cols
	return kernels[T]{
		numeric: func(tid, i int, outIdx []int32, outVal []T) int {
			maskRow := mask.Row(i)
			aCols := a.Row(i)
			if pull[i] {
				return innerRowNumeric(sr, maskRow, aCols, a.RowVals(i), exec.bt, outIdx, outVal)
			}
			return pushRowNumeric[T](exec.worker(tid).MSA(ncols), maskRow, aCols, a.RowVals(i), b, outIdx, outVal)
		},
		symbolic: func(tid, i int) int {
			maskRow := mask.Row(i)
			aCols := a.Row(i)
			if pull[i] {
				return innerRowSymbolic(maskRow, aCols, exec.bt.ColPtr, exec.bt.RowIdx)
			}
			return pushRowSymbolic[T](exec.worker(tid).MSA(ncols), maskRow, aCols, b)
		},
	}
}

// HybridRowStats reports how the hybrid cost model would split a
// workload's rows, for diagnostics and the ablation bench.
func HybridRowStats[T any](mask *sparse.Pattern, a, b *sparse.CSR[T]) (pullRows, pushRows int) {
	chooser := &hybridChooser{bRowPtr: b.RowPtr}
	if b.Cols > 0 {
		chooser.avgBCol = float64(b.NNZ()) / float64(b.Cols)
	}
	for i := 0; i < mask.Rows; i++ {
		if chooser.pullWins(mask.Row(i), a.Row(i)) {
			pullRows++
		} else {
			pushRows++
		}
	}
	return pullRows, pushRows
}
