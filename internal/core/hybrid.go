package core

import (
	"fmt"
	"math"

	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Per-row poly-algorithm execution — the hybrid §9 sketches ("hybrid
// algorithms that can use different accumulators in the same Masked
// SpGEMM depending on the density of the mask and parts of matrices
// being processed"), generalized from the original pull-vs-push
// choice to the full accumulator menu. During plan analysis every
// output row is scored under the registry's per-family cost models
// (SchemeInfo.RowCost) on the same structural inputs the scheduler's
// masked-flops profile uses, and bound to the cheapest admissible
// family. The decisions are stored in the immutable plan as *runs* —
// maximal stretches of consecutive rows sharing one binding — so the
// engine drivers dispatch once per run, not once per row, and cached
// plans replay their mixed bindings for free (DESIGN.md §10).

// Family identifies one accumulator family the per-row selector can
// bind (DESIGN.md §10). FamPull is the pull-based inner-product
// algorithm; the others are the push families of §5.
type Family uint8

const (
	// FamMSA is the masked sparse accumulator family (§5.2) — the
	// universal fallback: admissible for every mask mode.
	FamMSA Family = iota
	// FamHash is the open-addressing hash family (§5.3).
	FamHash
	// FamMCA is the mask-compressed accumulator family (§5.4). MCA has
	// no complemented form, so it is inadmissible for complemented
	// rows — enforced at selection time, never by a kernel crash.
	FamMCA
	// FamHeap is the multi-way merge family (§5.5), NInspect resolved
	// exactly as for AlgoHeap.
	FamHeap
	// FamPull is the pull-based inner-product algorithm (§4.1); rows
	// bound to it read B through the plan's CSC structure.
	FamPull
	// FamMaskedBit is the bitmap-state masked accumulator family
	// (DESIGN.md §12): MSA's state bytes collapsed into allowed/set
	// bitsets over a zero-kept values array. Appended after FamPull so
	// the bit positions of the preexisting families — serialized by
	// clients through WithHybridFamilies — never renumber
	// (TestFamilyBitPositionsPinned).
	FamMaskedBit
	// NumFamilies is the number of bindable families — the length of
	// per-family tables such as HybridFamilyRows' result.
	NumFamilies
)

// String names the family as in DESIGN.md §10's admissibility table.
func (f Family) String() string {
	switch f {
	case FamMSA:
		return "MSA"
	case FamHash:
		return "Hash"
	case FamMCA:
		return "MCA"
	case FamHeap:
		return "Heap"
	case FamPull:
		return "Pull"
	case FamMaskedBit:
		return "MaskedBit"
	}
	// Out-of-range values (a decoded run from newer code, a corrupted
	// plan) render as a distinct diagnostic name rather than colliding
	// or panicking — stats renderers aggregate by this string.
	return fmt.Sprintf("Family(%d)", uint8(f))
}

// FamilySet is a bitmask of accumulator families, used by
// Options.HybridFamilies to restrict the per-row selector.
type FamilySet uint8

// famAll admits every family.
const famAll FamilySet = 1<<NumFamilies - 1

// Families builds a FamilySet from individual families. Out-of-range
// values panic: a typo'd family silently vanishing from the set would
// otherwise degrade to the MSA-only fallback with no signal.
func Families(fams ...Family) FamilySet {
	var s FamilySet
	for _, f := range fams {
		if f >= NumFamilies {
			panic(fmt.Sprintf("core: Families: invalid family %d", f))
		}
		s = s.with(f)
	}
	return s
}

// Has reports whether f is in the set.
func (s FamilySet) Has(f Family) bool { return s&(1<<f) != 0 }

// with returns s with f added.
func (s FamilySet) with(f Family) FamilySet { return s | 1<<f }

// famAlgo maps each family to the registry scheme that carries its
// cost model and display name.
var famAlgo = [NumFamilies]Algorithm{AlgoMSA, AlgoHash, AlgoMCA, AlgoHeap, AlgoInner, AlgoMaskedBit}

// FamilyAlgorithm maps an accumulator family to the registry scheme
// that carries its cost model and standalone kernels (AlgoInner for
// FamPull). ok is false for out-of-range values.
func FamilyAlgorithm(f Family) (Algorithm, bool) {
	if f >= NumFamilies {
		return 0, false
	}
	return famAlgo[f], true
}

// CostCoeffs scales each family's RowCost model by a measured
// per-host coefficient, indexed by Family. The zero value means
// uncalibrated: a non-positive entry reads as 1.0, and multiplying by
// 1.0 is bit-for-bit identity, so uncalibrated sessions reproduce the
// DESIGN.md §10 literals exactly. Calibrated arrays come from
// internal/calibrate's startup micro-benchmark, normalized so FamMSA
// stays 1.0 — selection and partitioning only compare costs, so only
// relative scale matters. CostCoeffs is a comparable array: it rides
// inside Options and therefore inside plan-cache keys, making a
// calibrated binding a distinct cached analysis from a literal one.
type CostCoeffs [NumFamilies]float64

// IsZero reports the uncalibrated zero value.
func (c CostCoeffs) IsZero() bool { return c == CostCoeffs{} }

// famAny marks a row with no work under any family (empty mask row,
// empty A row, or no admitted positions): the run encoder folds such
// rows into the surrounding run instead of fragmenting dispatch.
const famAny = uint8(255)

// RowCostContext carries the per-row structural quantities every
// family cost model reads. Flops is the row's Gustavson term of the
// masked-flops vector (DESIGN.md §9) — the shared input of selection
// and scheduling. Absolute cost scale cancels in selection; only the
// crossovers between families matter.
type RowCostContext struct {
	// MaskNNZ is nnz(m_i).
	MaskNNZ int
	// ARowNNZ is nnz(A_i*).
	ARowNNZ int
	// Flops is Σ_{k∈A_i*} nnz(B_k*), the row's push-generation work.
	Flops int64
	// AvgBCol is B's mean column population d̄_B, the §4.3 dot-cost
	// term.
	AvgBCol float64
	// Cols is the output width n.
	Cols int
	// Complement marks a complemented mask, which flips the admitted
	// set to the mask row's complement.
	Complement bool
	// HeapNInspect is the resolved mask-inspection depth the heap
	// kernels would run with (resolveHeapNInspect) — the heap model
	// must price what would actually execute, including the
	// Options.HeapNInspect override.
	HeapNInspect int
	// Coeffs, when non-nil, scales each family's model by its
	// calibrated per-host coefficient (CostCoeffs); nil — or a
	// non-positive entry — means the DESIGN.md §10 literal.
	Coeffs *CostCoeffs
}

// coeff resolves the calibrated scale for family f: 1.0 when no
// coefficients ride on the context or the family was never fitted.
func (c RowCostContext) coeff(f Family) float64 {
	if c.Coeffs == nil {
		return 1
	}
	if v := c.Coeffs[f]; v > 0 {
		return v
	}
	return 1
}

// admitted returns the number of admitted mask positions.
func (c RowCostContext) admitted() float64 {
	if c.Complement {
		return float64(c.Cols - c.MaskNNZ)
	}
	return float64(c.MaskNNZ)
}

// outBound returns the §5.2-style bound on the output row population:
// min(admitted, flops).
func (c RowCostContext) outBound() float64 {
	if f := float64(c.Flops); f < c.admitted() {
		return f
	}
	return c.admitted()
}

// Cost-model constants (DESIGN.md §10). Units are one multiply-add on
// cache-resident data.
const (
	// hashOpFactor prices a hash-table probe against an MSA
	// direct-address insert.
	hashOpFactor = 2.0
	// msaCacheCols is the output width beyond which MSA's dense
	// width-n arrays outgrow cache, so sparse rows pay a cold line per
	// scattered touch.
	msaCacheCols = 1 << 16
	// msaColdMax caps the cold-line factor.
	msaColdMax = 3.0
	// heapPushCost prices one heap push/pop round trip against a
	// direct insert.
	heapPushCost = 2.5
	// heapWalk prices the inspect-skip walk per streamed B candidate —
	// a pointer bump and compare, cheaper than any accumulator touch.
	heapWalk = 0.6
	// heapMaskNear scales the probability that a streamed candidate
	// finds a mask element at or past its column during the NInspect=1
	// inspection and therefore takes a full heap round trip instead of
	// a cheap skip: ≈ min(1, heapMaskNear·m/n). Calibrated on the
	// hybridmix sweep — at 8·m/n the model reproduces the measured
	// order-of-magnitude gap between Heap on dense masks (every
	// candidate round-trips) and tiny masks (iterators die at insert).
	heapMaskNear = 8.0
	// maskedBitWalkFactor prices MaskedBit's Begin mask walk against
	// MSA's: the bitset fill reads every mask entry but flushes one
	// word store per 64-column word instead of one byte store per
	// entry.
	maskedBitWalkFactor = 0.5
	// maskedBitGatherWord prices one word of the Gather/EndSymbolic
	// word walk, which spans the row's column range at 64 columns per
	// word: the per-row cleanup term is (Cols/64)·maskedBitGatherWord
	// rather than a second O(nnz(mask row)) walk. It is what makes
	// MaskedBit cheap on dense rows (range/64 ≪ nnz) and dear on very
	// sparse ones (range/64 ≫ nnz), independent of the flop balance.
	maskedBitGatherWord = 1.0
	// maskedBitInsertFactor prices the fused bit-test add against
	// MSA's state-byte automaton step: the unconditional set-bit store
	// makes the accumulate path slightly dearer per flop, which is why
	// flops-dominated rows (flops ≫ nnz(mask row)) stay with MSA.
	maskedBitInsertFactor = 1.1
	// maskedBitColdScale softens the cold-line penalty relative to
	// MSA: the values array is as wide as MSA's, but the state traffic
	// shrinks 8×, keeping the bitset cache-resident long after MSA's
	// state bytes spill.
	maskedBitColdScale = 0.75
)

// msaRowCost models MSA (§5.2): mask-row walks for Begin and Gather
// plus one direct-address insert per flop. The touches scatter over
// width-n arrays, so once the row is sparse (touch spacing beyond a
// cache line) and the arrays outgrow cache, each touch pays a cold
// line — the regime where Hash overtakes MSA.
func msaRowCost(c RowCostContext) float64 {
	m, f := float64(c.MaskNNZ), float64(c.Flops)
	touch := 1.0
	if spacing := float64(c.Cols) / (m + 1); spacing > 8 {
		touch += math.Min(msaColdMax, float64(c.Cols)/msaCacheCols)
	}
	if c.Complement {
		// MSAC tracks inserted keys and sorts them at gather.
		out := c.outBound()
		return c.coeff(FamMSA) * (1 + (m+f)*touch + 0.5*out*math.Log2(out+2))
	}
	return c.coeff(FamMSA) * (1 + (2*m+f+c.outBound())*touch)
}

// maskedBitRowCost models MaskedBit (DESIGN.md §12): MSA's row shape
// with the state byte per column collapsed to two bits. The Begin fill
// (maskedBitWalkFactor), Gather's cleanup is a word walk over the
// row's column range (maskedBitGatherWord) rather than a second mask
// walk, the fused insert pays a small premium for its unconditional
// set-bit store (maskedBitInsertFactor), and the cold-line regime is
// softened because only the width-n values array — not the states —
// outgrows cache (maskedBitColdScale). The crossover against MSA
// therefore sits where mask rows are dense relative to the flops that
// land on them: walks dominate → MaskedBit; flops dominate → MSA.
func maskedBitRowCost(c RowCostContext) float64 {
	m, f := float64(c.MaskNNZ), float64(c.Flops)
	words := maskedBitGatherWord * (float64(c.Cols)/64 + 1)
	touch := 1.0
	if spacing := float64(c.Cols) / (m + 1); spacing > 8 {
		touch += maskedBitColdScale * math.Min(msaColdMax, float64(c.Cols)/msaCacheCols)
	}
	if c.Complement {
		// MaskedBitC tracks inserted keys and sorts them at gather,
		// like MSAC; only the banned-bit fill and cleanup are word-wide.
		out := c.outBound()
		return c.coeff(FamMaskedBit) * (1 + (maskedBitWalkFactor*m+f)*touch + 0.5*out*math.Log2(out+2))
	}
	return c.coeff(FamMaskedBit) * (1 + (maskedBitWalkFactor*m+words+maskedBitInsertFactor*f+c.outBound())*touch)
}

// hashRowCost models Hash (§5.3): the same row shape as MSA but every
// operation is a probe into a table compressed to O(nnz(m_i)) — hot
// lines at a constant per-op premium, insensitive to n.
func hashRowCost(c RowCostContext) float64 {
	m, f := float64(c.MaskNNZ), float64(c.Flops)
	if c.Complement {
		out := c.outBound()
		return c.coeff(FamHash) * (1 + hashOpFactor*(m+f) + 0.5*out*math.Log2(out+2))
	}
	return c.coeff(FamHash) * (1 + hashOpFactor*(2*m+f) + c.outBound())
}

// mcaRowCost models MCA (§5.4): each selected B row is two-pointer
// merged against the mask row (F + a·m steps) into arrays compressed
// to nnz(m_i). Never called for complemented rows — MCA is
// inadmissible there (famAdmissible).
func mcaRowCost(c RowCostContext) float64 {
	m, a, f := float64(c.MaskNNZ), float64(c.ARowNNZ), float64(c.Flops)
	return c.coeff(FamMCA) * (1 + f + 0.5*a*m + m + c.outBound())
}

// heapRowCost models Heap (§5.5, NInspect=1): a·log a heap setup plus
// one of two fates per streamed B candidate — a cheap inspect-skip
// (the candidate's column is below the mask cursor, or the iterator
// dies) or a full heap round trip (a mask element sits at or past the
// column, probability ≈ min(1, heapMaskNear·m/n)). No accumulator is
// ever touched, which is why Heap wins exactly when A rows are short
// and the mask is tiny: the stream is all skips and the heap stays
// a-small.
func heapRowCost(c RowCostContext) float64 {
	m, a, f := float64(c.MaskNNZ), float64(c.ARowNNZ), float64(c.Flops)
	lg := math.Log2(a + 2)
	if c.Complement || c.HeapNInspect == 0 {
		// No inspection (complemented heaps always, plain heaps under
		// the HeapInspectNone override): every candidate takes a full
		// heap round trip.
		return c.coeff(FamHeap) * (1 + heapPushCost*(a+f)*lg + m)
	}
	near := heapMaskNear * m / float64(c.Cols)
	if near > 1 {
		near = 1
	}
	return c.coeff(FamHeap) * (1 + heapPushCost*a*lg + f*(heapWalk+heapPushCost*lg*near) + 0.5*m)
}

// pullRowCost models the pull-based inner products (§4.1): one
// merge-dot of cost a + d̄_B per admitted position — the §4.3 model.
// Under a complemented mask that is Θ(n) dots, which is why pull
// practically never wins there (§8.4) but stays admissible.
func pullRowCost(c RowCostContext) float64 {
	return c.coeff(FamPull) * (1 + c.admitted()*(float64(c.ARowNNZ)+c.AvgBCol))
}

// famAdmissible reports whether a family may be bound under the given
// mask mode. The one hard rule: MCA has no complemented form
// (DESIGN.md §4) — enforced here, at selection time.
func famAdmissible(f Family, complement bool) bool {
	return !(complement && f == FamMCA)
}

// polyCandidates resolves Options.HybridFamilies against
// admissibility: zero means every admissible family; an explicit set
// is filtered, and if nothing admissible remains the selector falls
// back to MSA, the universal family.
func polyCandidates(opt Options) []Family {
	req := opt.HybridFamilies
	if req == 0 {
		req = famAll
	}
	var out []Family
	for f := Family(0); f < NumFamilies; f++ {
		if !req.Has(f) || !famAdmissible(f, opt.Complement) {
			continue
		}
		if s, ok := LookupScheme(famAlgo[f]); ok && s.RowCost != nil {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = []Family{FamMSA}
	}
	return out
}

// polyScan evaluates the candidate cost models on every row and
// writes each row's cheapest admissible family into fam (famAny for
// rows with no work under any family) and, when cost is non-nil, the
// chosen cost — the scheduling profile planSchedule reuses. prof,
// when non-nil, additionally captures the structural model inputs
// (per-row flops and A-row populations, d̄_B) the replanner needs to
// re-run this selection later without touching A or B (DESIGN.md
// §14); its rowFlops/rowANNZ slices must be pre-sized to mask.Rows.
// opt must be normalized.
func polyScan[T any](mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options, fam []uint8, cost []int64, prof *costProfile) {
	fams := polyCandidates(opt)
	models := make([]func(RowCostContext) float64, len(fams))
	for i, f := range fams {
		s, _ := LookupScheme(famAlgo[f])
		models[i] = s.RowCost
	}
	var avgBCol float64
	if b.Cols > 0 {
		avgBCol = float64(b.NNZ()) / float64(b.Cols)
	}
	coeffs := opt.coeffs()
	cols, complement := mask.Cols, opt.Complement
	nInspect := resolveHeapNInspect(opt)
	if prof != nil {
		prof.avgBCol = avgBCol
	}
	parallel.ForEachBlock(mask.Rows, opt.Threads, opt.Grain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			maskRow := mask.Row(i)
			aRow := a.Row(i)
			var flops int64
			for _, k := range aRow {
				flops += b.RowPtr[k+1] - b.RowPtr[k]
			}
			if prof != nil {
				prof.rowFlops[i] = flops
				prof.rowANNZ[i] = int32(len(aRow))
			}
			admitted := len(maskRow)
			if complement {
				admitted = cols - len(maskRow)
			}
			if admitted == 0 || flops == 0 {
				fam[i] = famAny
				if cost != nil {
					cost[i] = 1
				}
				continue
			}
			ctx := RowCostContext{
				MaskNNZ: len(maskRow), ARowNNZ: len(aRow), Flops: flops,
				AvgBCol: avgBCol, Cols: cols, Complement: complement,
				HeapNInspect: nInspect, Coeffs: coeffs,
			}
			best, bestCost := fams[0], models[0](ctx)
			for j := 1; j < len(models); j++ {
				if c := models[j](ctx); c < bestCost {
					best, bestCost = fams[j], c
				}
			}
			fam[i] = uint8(best)
			if cost != nil {
				cost[i] = 1 + int64(bestCost)
			}
		}
	})
}

// PredictedRowCost sums family f's RowCost model over every output
// row of M ⊙ (A·B), priced exactly as plan analysis would (trivial
// rows cost 1) — the model-side x that internal/calibrate regresses
// measured execution times against. Coefficients ride in via
// opt.CostCoeffs; the zero value prices with the DESIGN.md §10
// literals.
func PredictedRowCost[T any](mask *sparse.Pattern, a, b *sparse.CSR[T], f Family, opt Options) float64 {
	opt.normalize()
	s, ok := LookupScheme(famAlgo[f])
	if !ok || s.RowCost == nil {
		return 0
	}
	var avgBCol float64
	if b.Cols > 0 {
		avgBCol = float64(b.NNZ()) / float64(b.Cols)
	}
	coeffs := opt.coeffs()
	cols, complement := mask.Cols, opt.Complement
	nInspect := resolveHeapNInspect(opt)
	var total float64
	for i := 0; i < mask.Rows; i++ {
		maskRow := mask.Row(i)
		aRow := a.Row(i)
		var flops int64
		for _, k := range aRow {
			flops += b.RowPtr[k+1] - b.RowPtr[k]
		}
		admitted := len(maskRow)
		if complement {
			admitted = cols - len(maskRow)
		}
		if admitted == 0 || flops == 0 {
			total++
			continue
		}
		total += s.RowCost(RowCostContext{
			MaskNNZ: len(maskRow), ARowNNZ: len(aRow), Flops: flops,
			AvgBCol: avgBCol, Cols: cols, Complement: complement,
			HeapNInspect: nInspect, Coeffs: coeffs,
		})
	}
	return total
}

// resolveTrivial rewrites famAny rows in place so every row carries a
// concrete family: a leading stretch of don't-cares joins the first
// concrete family (MSA if the whole workload is trivial), later ones
// join the run in progress. Trivial rows execute correctly under any
// family, so folding them maximizes run length.
func resolveTrivial(fam []uint8) {
	cur := uint8(FamMSA)
	for _, f := range fam {
		if f != famAny {
			cur = f
			break
		}
	}
	for i, f := range fam {
		if f == famAny {
			fam[i] = cur
		} else {
			cur = f
		}
	}
}

// planHybrid runs the per-row selector and stores the decisions in
// the immutable plan as runs. With needCost it also returns the
// per-row chosen costs, which planSchedule uses as its scheduling
// profile — selection and scheduling read one shared cost picture;
// plans whose schedule ignores the profile (explicitly cost-blind,
// or serial on a small structure) skip the O(rows) vector entirely.
// Profiled plans additionally retain the selector's structural
// inputs (p.profile) so the replanner can re-bind them later without
// re-reading A or B.
//
//mspgemm:planwrite
func (p *Plan[T, S]) planHybrid(a, b *sparse.CSR[T], needCost bool) []int64 {
	rowFam := make([]uint8, p.mask.Rows)
	var cost []int64
	var prof *costProfile
	if needCost {
		cost = make([]int64, p.mask.Rows)
		prof = &costProfile{
			rowFlops: make([]int64, p.mask.Rows),
			rowANNZ:  make([]int32, p.mask.Rows),
		}
		p.profile = prof
	}
	polyScan(p.mask, a, b, p.opt, rowFam, cost, prof)
	p.encodeRuns(rowFam)
	return cost
}

// encodeRuns compresses the resolved per-row families into the plan's
// run encoding: run r covers rows [runEnds[r-1], runEnds[r]) (with
// runEnds[-1] = 0) and executes family runFam[r]. polyFams collects
// the families bound by at least one run — exactly the accumulators
// the executor will materialize.
//
//mspgemm:planwrite
func (p *Plan[T, S]) encodeRuns(rowFam []uint8) {
	resolveTrivial(rowFam)
	rows := len(rowFam)
	cur := uint8(FamMSA)
	if rows > 0 {
		cur = rowFam[0]
	}
	ends := make([]int32, 0, 8)
	fams := make([]uint8, 0, 8)
	for i := 1; i < rows; i++ {
		if rowFam[i] != cur {
			ends = append(ends, int32(i))
			fams = append(fams, cur)
			cur = rowFam[i]
		}
	}
	ends = append(ends, int32(rows))
	fams = append(fams, cur)
	p.runEnds, p.runFam = ends, fams
	var set FamilySet
	for _, f := range fams {
		set = set.with(Family(f))
	}
	p.polyFams = set
}

// bindPoly builds the poly plan's kernel tables: one kernel pair per
// family the run encoding actually uses, each delegated to that
// family's own scheme binder so poly rows execute exactly the
// registered kernels. Families without a run get no kernels — and,
// downstream, no accumulators: the per-worker workspaces construct
// lazily on first row, so a single-family poly plan allocates exactly
// what the plain scheme would.
func bindPoly[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T], complement bool) kernels[T] {
	numFam := make([]rowNumericFn[T], NumFamilies)
	symFam := make([]rowSymbolicFn, NumFamilies)
	for f := Family(0); f < NumFamilies; f++ {
		if !p.polyFams.Has(f) {
			continue
		}
		fk := bindFamily(f, p, e, a, b, complement)
		numFam[f], symFam[f] = fk.numeric, fk.symbolic
	}
	return kernels[T]{runEnds: p.runEnds, runFam: p.runFam, numFam: numFam, symFam: symFam}
}

// bindFamily maps a family to its scheme binder for the given mask
// mode.
func bindFamily[T any, S semiring.Semiring[T]](f Family, p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T], complement bool) kernels[T] {
	switch f {
	case FamMSA:
		if complement {
			return bindMSAC(p, e, a, b)
		}
		return bindMSA(p, e, a, b)
	case FamHash:
		if complement {
			return bindHashC(p, e, a, b)
		}
		return bindHash(p, e, a, b)
	case FamHeap:
		if complement {
			return bindHeapComplement(p, e, a, b)
		}
		return bindHeap(p, e, a, b)
	case FamPull:
		if complement {
			return bindInnerComplement(p, e, a, b)
		}
		return bindInner(p, e, a, b)
	case FamMaskedBit:
		if complement {
			return bindMaskedBitC(p, e, a, b)
		}
		return bindMaskedBit(p, e, a, b)
	case FamMCA:
		if complement {
			// famAdmissible keeps MCA out of complemented run
			// encodings; reaching this is a selector bug.
			panic("core: MCA bound under a complemented mask")
		}
		return bindMCA(p, e, a, b)
	}
	panic("core: unknown accumulator family")
}

// bindHybrid registers the poly scheme's plain-mask kernels.
func bindHybrid[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	return bindPoly(p, e, a, b, false)
}

// bindHybridComplement registers the complemented-mask kernels; MCA
// never appears in the runs (selection-time admissibility).
func bindHybridComplement[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	return bindPoly(p, e, a, b, true)
}

// FamilyRows reports the per-family row counts of the plan's run
// encoding — what this plan's executions actually dispatch, decoded
// straight from the stored runs. All zeros for non-poly plans.
func (p *Plan[T, S]) FamilyRows() [NumFamilies]int {
	var out [NumFamilies]int
	prev := int32(0)
	for r, end := range p.runEnds {
		out[p.runFam[r]] += int(end - prev)
		prev = end
	}
	return out
}

// HybridFamilyRows reports how AlgoHybrid's per-row selector would
// bind a workload's rows under the given options: one row count per
// family, indexed by Family. Trivial rows are folded into their
// surrounding run and counted under the family they execute as —
// the counts sum to mask.Rows.
func HybridFamilyRows[T any](mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) [NumFamilies]int {
	opt.Algorithm = AlgoHybrid
	opt.normalize()
	fam := make([]uint8, mask.Rows)
	polyScan(mask, a, b, opt, fam, nil, nil)
	resolveTrivial(fam)
	var out [NumFamilies]int
	for _, f := range fam {
		out[f]++
	}
	return out
}

// HybridRowStats reports the pull/push split of the per-row selector
// (pull = rows bound to FamPull, push = everything else), for
// diagnostics and the ablation bench.
func HybridRowStats[T any](mask *sparse.Pattern, a, b *sparse.CSR[T]) (pullRows, pushRows int) {
	counts := HybridFamilyRows(mask, a, b, Options{})
	for f, c := range counts {
		if Family(f) == FamPull {
			pullRows += c
		} else {
			pushRows += c
		}
	}
	return pullRows, pushRows
}
