package core

import (
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// TestCapabilityMatrix asserts that every Algorithm × {plain,
// complement} × {1P, 2P} combination either succeeds (and matches the
// dense oracle) or fails with exactly the registry's documented error.
// Because both the expectation and the dispatch derive from the same
// scheme table, the capability set can no longer drift from dispatch.
func TestCapabilityMatrix(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 48, 48, 48, 6, 6, 6, 90})
	for _, info := range Schemes() {
		for _, complement := range []bool{false, true} {
			want := oracle(mask, a, b, complement)
			for _, ph := range []Phases{OnePhase, TwoPhase} {
				opt := Options{Algorithm: info.Algo, Phases: ph, Complement: complement}
				got, err := MaskedSpGEMM(sr, mask, a, b, opt)
				name := opt.SchemeName()
				if complement && !info.Complement {
					if err == nil {
						t.Errorf("%s complement: want documented error, got success", name)
					} else if err.Error() != info.ComplementNote {
						t.Errorf("%s complement: error %q, want documented %q", name, err, info.ComplementNote)
					}
					continue
				}
				if err != nil {
					t.Errorf("%s complement=%v: %v", name, complement, err)
					continue
				}
				if err := got.Validate(); err != nil {
					t.Errorf("%s complement=%v: invalid output: %v", name, complement, err)
					continue
				}
				if d := sparse.Diff(want, got, floatEq); d != "" {
					t.Errorf("%s complement=%v: %s", name, complement, d)
				}
			}
		}
	}
}

// kernelRegistry materializes the full Algorithm → kernels table for
// one (T, S) instantiation, one entry per schemeTable row, so the
// consistency test can sweep it. Execution paths use kernelsForAlgo
// directly.
func kernelRegistry[T any, S semiring.Semiring[T]]() map[Algorithm]schemeKernels[T, S] {
	m := make(map[Algorithm]schemeKernels[T, S], len(schemeTable))
	for _, s := range schemeTable {
		m[s.Algo] = kernelsForAlgo[T, S](s.Algo)
	}
	return m
}

// TestSchemeRegistryConsistency pins the registry's internal
// invariants: the generic kernel table covers exactly the scheme
// table, complement kernels exist iff the capability is declared, and
// unsupported capabilities carry a documented reason.
func TestSchemeRegistryConsistency(t *testing.T) {
	reg := kernelRegistry[float64, semiring.PlusTimes[float64]]()
	if len(reg) != len(schemeTable) {
		t.Errorf("kernel registry has %d entries, scheme table %d", len(reg), len(schemeTable))
	}
	seenNames := map[string]bool{}
	for _, info := range Schemes() {
		k, ok := reg[info.Algo]
		if !ok {
			t.Errorf("%s: no kernel registry entry", info.Name)
			continue
		}
		if info.Name == "" || seenNames[info.Name] {
			t.Errorf("%v: empty or duplicate name %q", info.Algo, info.Name)
		}
		seenNames[info.Name] = true
		if info.Algo.String() != info.Name {
			t.Errorf("%v.String() = %q, want registry name %q", info.Algo, info.Algo.String(), info.Name)
		}
		if k.direct != nil {
			if k.plain != nil || k.complement != nil {
				t.Errorf("%s: direct schemes must not also register row kernels", info.Name)
			}
			continue
		}
		if k.plain == nil {
			t.Errorf("%s: missing plain kernels", info.Name)
		}
		if info.Complement != (k.complement != nil) {
			t.Errorf("%s: Complement=%v but complement kernels present=%v",
				info.Name, info.Complement, k.complement != nil)
		}
		if !info.Complement && info.ComplementNote == "" {
			t.Errorf("%s: unsupported complement must document a reason", info.Name)
		}
		if SupportsComplement(info.Algo) != info.Complement {
			t.Errorf("%s: SupportsComplement disagrees with registry", info.Name)
		}
	}
	if _, err := MaskedSpGEMM(semiring.PlusTimes[float64]{},
		gen.Random(4, 4, 2, 1).PatternView(), gen.Random(4, 4, 2, 2), gen.Random(4, 4, 2, 3),
		Options{Algorithm: Algorithm(200)}); err == nil {
		t.Error("unregistered algorithm must fail")
	}
}
