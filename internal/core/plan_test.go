package core

import (
	"fmt"
	"strings"
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// TestPlanMatchesMultiply asserts the acceptance criterion: for every
// supported algorithm/phase/complement combination, NewPlan + Execute
// produces bit-identical results to the one-shot MaskedSpGEMM — on the
// first execution, on a repeated execution, and on an execution with
// the same structure but different values.
func TestPlanMatchesMultiply(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 56, 48, 64, 7, 7, 7, 91})
	// b2: identical structure, different values — the plan must refresh
	// any cached transpose.
	b2 := b.Clone()
	for i := range b2.Val {
		b2.Val[i] = -2 * b2.Val[i]
	}
	bitEq := func(x, y float64) bool { return x == y }
	for _, info := range Schemes() {
		for _, complement := range []bool{false, true} {
			if complement && !info.Complement {
				continue
			}
			for _, ph := range []Phases{OnePhase, TwoPhase} {
				opt := Options{Algorithm: info.Algo, Phases: ph, Complement: complement}
				name := fmt.Sprintf("%s/complement=%v", opt.SchemeName(), complement)
				t.Run(name, func(t *testing.T) {
					plan, err := NewPlan(sr, mask, a, b, opt, nil)
					if err != nil {
						t.Fatalf("NewPlan: %v", err)
					}
					want, err := MaskedSpGEMM(sr, mask, a, b, opt)
					if err != nil {
						t.Fatalf("MaskedSpGEMM: %v", err)
					}
					for rep := 0; rep < 2; rep++ {
						got, err := plan.Execute(a, b)
						if err != nil {
							t.Fatalf("Execute #%d: %v", rep+1, err)
						}
						if !sparse.EqualFunc(want, got, bitEq) {
							t.Fatalf("Execute #%d differs from Multiply", rep+1)
						}
					}
					want2, err := MaskedSpGEMM(sr, mask, a, b2, opt)
					if err != nil {
						t.Fatal(err)
					}
					got2, err := plan.Execute(a, b2)
					if err != nil {
						t.Fatalf("Execute with new B values: %v", err)
					}
					if !sparse.EqualFunc(want2, got2, bitEq) {
						t.Fatal("Execute with new B values differs from Multiply")
					}
				})
			}
		}
	}
}

// TestPlanInPlaceValueMutation pins the Execute contract for the
// pull-based schemes: mutating B's values in place (same *CSR pointer)
// between executions must be reflected in the next result — the cached
// CSC view is value-refreshed every call, never skipped on pointer
// identity.
func TestPlanInPlaceValueMutation(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 48, 48, 48, 6, 6, 6, 98})
	for _, tc := range []struct {
		algo       Algorithm
		complement bool
	}{
		{AlgoInner, false}, {AlgoInner, true}, {AlgoHybrid, false}, {AlgoDotTranspose, false},
	} {
		opt := Options{Algorithm: tc.algo, Complement: tc.complement}
		plan, err := NewPlan(sr, mask, a, b, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plan.Execute(a, b); err != nil {
			t.Fatal(err)
		}
		for i := range b.Val {
			b.Val[i] *= 3
		}
		want, err := MaskedSpGEMM(sr, mask, a, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Execute(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.EqualFunc(want, got, func(x, y float64) bool { return x == y }) {
			t.Errorf("%v complement=%v: stale result after in-place mutation of B", tc.algo, tc.complement)
		}
	}
}

// TestPlanStructureMismatch checks Execute rejects operands that do
// not match the planned structure.
func TestPlanStructureMismatch(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 32, 32, 32, 4, 4, 4, 92})
	plan, err := NewPlan(sr, mask, a, b, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	otherShape := gen.Random(32, 40, 4, 93)
	if _, err := plan.Execute(otherShape, b); err == nil {
		t.Error("want error for A shape mismatch")
	}
	otherNNZ := gen.Random(32, 32, 9, 94)
	if _, err := plan.Execute(a, otherNNZ); err == nil {
		t.Error("want error for B nnz mismatch")
	}
	if !strings.Contains(fmt.Sprint(plan.checkArgs(otherShape, b)), "plan expects A") {
		t.Error("mismatch error should name the operand")
	}
}

// TestPlanExecutorShared checks that plans over different structures
// can share one executor sequentially — the k-truss/betweenness usage
// pattern — without corrupting results.
func TestPlanExecutorShared(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	exec := NewExecutor[float64](sr)
	for _, algo := range []Algorithm{AlgoMSA, AlgoHash, AlgoMCA, AlgoHeap, AlgoInner, AlgoHybrid} {
		for seed := uint64(0); seed < 3; seed++ {
			// Different sizes per round force the pooled workspaces to
			// grow and shrink usage.
			n := 24 + int(seed)*17
			mask, a, b := buildCase(caseSpec{"", n, n, n, 5, 5, 5, 95 + seed})
			opt := Options{Algorithm: algo, ReuseOutput: true}
			plan, err := NewPlan(sr, mask, a, b, opt, exec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Execute(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle(mask, a, b, false)
			if d := sparse.Diff(want, got, floatEq); d != "" {
				t.Fatalf("%v round %d: %s", algo, seed, d)
			}
		}
	}
}

// TestPlanExecuteAllocs is the allocation regression demanded by the
// issue: after the warm-up execution, repeated Execute calls on
// identical structure with pooled output perform (near-)zero heap
// allocations. Threads is pinned to 1 so scheduler goroutines do not
// count.
func TestPlanExecuteAllocs(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 128, 128, 128, 8, 8, 8, 96})
	for _, algo := range []Algorithm{AlgoMSA, AlgoHash, AlgoMCA, AlgoHeap, AlgoInner} {
		for _, ph := range []Phases{OnePhase, TwoPhase} {
			opt := Options{Algorithm: algo, Phases: ph, Threads: 1, ReuseOutput: true}
			plan, err := NewPlan(sr, mask, a, b, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := plan.Execute(a, b); err != nil { // warm-up
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := plan.Execute(a, b); err != nil {
					t.Fatal(err)
				}
			})
			// A constant handful is tolerated — the engine drivers'
			// closure headers and the *CSR result header. What must
			// never appear again are the O(rows)/O(nnz) slab, counts,
			// accumulator, and output allocations of the one-shot
			// path, so the bound is small and size-independent.
			if allocs > 6 {
				t.Errorf("%s-%s: %.1f allocs per warm Execute, want ≤ 6",
					algo, ph, allocs)
			}
		}
	}
}

// TestPlanReuseOutputAliases pins the documented aliasing contract:
// with ReuseOutput the next execution recycles the previous result's
// buffers, without it each result is independent.
func TestPlanReuseOutputAliases(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 40, 40, 40, 5, 5, 5, 97})
	pooled, err := NewPlan(sr, mask, a, b, Options{ReuseOutput: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pooled.Execute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	keep := r1.Clone()
	if _, err := pooled.Execute(a, b); err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(keep, r1, func(x, y float64) bool { return x == y }) {
		// Same inputs → same values even in recycled buffers; this only
		// fails if pooling corrupts data.
		t.Fatal("pooled re-execution corrupted values")
	}
	fresh, err := NewPlan(sr, mask, a, b, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := fresh.Execute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fresh.Execute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f1.NNZ() > 0 && &f1.ColIdx[0] == &f2.ColIdx[0] {
		t.Fatal("without ReuseOutput results must not share buffers")
	}
}

// BenchmarkPlanReuseVsMultiply compares one-shot Multiply against plan
// reuse on a k-truss-shaped loop: the same masked product C = M ⊙
// (A·A) executed repeatedly over one structure. Run with -benchmem to
// see the allocation gap the Plan/Executor layer exists for.
func BenchmarkPlanReuseVsMultiply(b *testing.B) {
	sr := semiring.PlusPair[int64]{}
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 7})
	l := &sparse.CSR[int64]{Pattern: g.Pattern, Val: make([]int64, len(g.Val))}
	for i := range l.Val {
		l.Val[i] = 1
	}
	mask := l.PatternView()
	for _, algo := range []Algorithm{AlgoMSA, AlgoHash} {
		opt := Options{Algorithm: algo}
		b.Run(algo.String()+"/multiply", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MaskedSpGEMM(sr, mask, l, l, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(algo.String()+"/plan-reuse", func(b *testing.B) {
			ropt := opt
			ropt.ReuseOutput = true
			plan, err := NewPlan(sr, mask, l, l, ropt, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Execute(l, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
