package core

import (
	"sync"
	"sync/atomic"
)

// MemBudget is one byte budget shared by several LRU caches — in the
// serving stack, the plan cache and the operand store draw from a
// single budget, so analysis memory and resident operands exert
// eviction pressure on each other instead of each hoarding a private
// bound (DESIGN.md §13).
//
// Members register once and then account their bytes with Reserve and
// Release (lock-free atomics, safe to call while holding the member's
// own lock). When the total exceeds the budget, Rebalance evicts the
// globally least-recently-used entry across all members — each member
// exposes the age of its LRU tail via stamps drawn from the budget's
// shared clock — until the total fits or no member will yield.
//
// Lock ordering: the budget's rebalance lock is taken strictly above
// member locks (Rebalance calls into members; members never call
// Rebalance while holding their own lock). Reserve, Release, and
// Stamp take no locks at all, so members may account from anywhere.
type MemBudget struct {
	max   int64
	used  atomic.Int64
	clock atomic.Uint64

	// mu guards the member registry and serializes rebalances (a
	// thundering herd of over-budget inserts should evict once, not
	// race each other over the same tails).
	mu      sync.Mutex
	members []BudgetMember
}

// BudgetMember is one cache participating in a shared MemBudget. Its
// methods are called by Rebalance with the budget's rebalance lock
// held and the member's own lock not held; implementations take their
// own lock internally and must not call Rebalance.
type BudgetMember interface {
	// BudgetTail reports the stamp of the member's least-recently-used
	// evictable entry; ok is false when the member has nothing it is
	// willing to evict (empty, or down to an entry it protects).
	BudgetTail() (stamp uint64, ok bool)
	// BudgetEvict evicts the member's least-recently-used evictable
	// entry, releases its bytes from the budget, and returns the bytes
	// freed (0 when nothing was evictable — e.g. a racing lookup just
	// emptied the member).
	BudgetEvict() int64
}

// DefaultMemoryBudgetBytes is the shared budget used when none is
// configured: 1 GiB across cached plans and stored operands.
const DefaultMemoryBudgetBytes = 1 << 30

// NewMemBudget returns a budget of max bytes (<= 0 means
// DefaultMemoryBudgetBytes) with no members.
func NewMemBudget(max int64) *MemBudget {
	if max <= 0 {
		max = DefaultMemoryBudgetBytes
	}
	return &MemBudget{max: max}
}

// Register adds a member. Members are never unregistered: budgets and
// their members share a lifetime (one serving session).
func (b *MemBudget) Register(m BudgetMember) {
	b.mu.Lock()
	b.members = append(b.members, m)
	b.mu.Unlock()
}

// Stamp returns the next tick of the shared LRU clock. Members stamp
// entries on insert and on hit, so stamps order recency globally
// across every member.
func (b *MemBudget) Stamp() uint64 { return b.clock.Add(1) }

// Reserve accounts n bytes against the budget. It never blocks and
// never evicts — call Rebalance afterwards, outside any member lock.
func (b *MemBudget) Reserve(n int64) { b.used.Add(n) }

// Release returns n bytes to the budget.
func (b *MemBudget) Release(n int64) { b.used.Add(-n) }

// Used returns the bytes currently accounted by all members.
func (b *MemBudget) Used() int64 { return b.used.Load() }

// Max returns the budget bound.
func (b *MemBudget) Max() int64 { return b.max }

// Rebalance evicts globally least-recently-used entries across the
// members until the accounted total fits the budget or no member
// yields. Callers must not hold any member lock.
func (b *MemBudget) Rebalance() {
	if b.used.Load() <= b.max {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.used.Load() > b.max {
		var victim BudgetMember
		var oldest uint64
		for _, m := range b.members {
			if stamp, ok := m.BudgetTail(); ok && (victim == nil || stamp < oldest) {
				victim, oldest = m, stamp
			}
		}
		if victim == nil || victim.BudgetEvict() == 0 {
			// Nothing anyone will yield: every member is empty or down
			// to its protected newest entry. Over-budget but stable —
			// the alternative is evicting entries mid-use.
			return
		}
	}
}
