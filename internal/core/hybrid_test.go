package core

import (
	"fmt"
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// polyDensities spans the §7 evaluation range of mask densities the
// parity sweep exercises (1e-4 is floored to one entry per row at
// small test dimensions).
var polyDensities = []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5}

// polyTestPlan builds a hybrid plan directly (same package), so tests
// can inspect the run encoding.
func polyTestPlan(t *testing.T, mask *sparse.Pattern, a, b *sparse.CSR[float64], opt Options) *Plan[float64, semiring.PlusTimes[float64]] {
	t.Helper()
	opt.Algorithm = AlgoHybrid
	p, err := NewPlan(semiring.PlusTimes[float64]{}, mask, a, b, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHybridPolyParity cross-validates mixed-family execution against
// the dense oracle across the mask-density sweep, plain and
// complemented, one-phase and two-phase — the parity guarantee for
// every family crossover the selector can take.
func TestHybridPolyParity(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	const n = 120
	a := gen.Random(n, n, 12, 301)
	b := gen.Random(n, n, 12, 302)
	for _, density := range polyDensities {
		deg := int(density * n)
		if deg < 1 {
			deg = 1
		}
		mask := gen.Random(n, n, deg, 303+uint64(deg)).PatternView()
		for _, complement := range []bool{false, true} {
			want := oracle(mask, a, b, complement)
			for _, ph := range []Phases{OnePhase, TwoPhase} {
				name := fmt.Sprintf("density=%g/complement=%v/%v", density, complement, ph)
				t.Run(name, func(t *testing.T) {
					got, err := MaskedSpGEMM(sr, mask, a, b, Options{
						Algorithm: AlgoHybrid, Phases: ph, Complement: complement, Threads: 3,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := got.Validate(); err != nil {
						t.Fatalf("invalid output: %v", err)
					}
					if d := sparse.Diff(want, got, floatEq); d != "" {
						t.Fatalf("mismatch vs oracle: %s", d)
					}
				})
			}
		}
	}
}

// TestHybridMixedRunsParity forces a genuinely mixed run encoding (a
// banded mask sweeping sparse to dense) and checks parity plus that
// more than one family was actually bound — the per-run dispatch must
// hand every row to its own family's kernels across run boundaries,
// whatever the scheduler's block layout.
func TestHybridMixedRunsParity(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	const n = 160
	coo := sparse.NewCOO[float64](n, n, 0)
	rng := gen.NewRNG(65)
	for i := 0; i < n; i++ {
		deg := 1 // sparse band: pull territory
		if i >= n/2 {
			deg = n / 3 // dense band: push territory
		}
		for d := 0; d < deg; d++ {
			coo.Append(int32(i), int32(rng.Intn(n)), 1)
		}
	}
	maskM, err := coo.ToCSR(func(x, y float64) float64 { return x })
	if err != nil {
		t.Fatal(err)
	}
	mask := maskM.PatternView()
	a := gen.Random(n, n, 24, 66)
	b := gen.Random(n, n, 24, 67)
	p := polyTestPlan(t, mask, a, b, Options{})
	if len(p.runFam) < 2 {
		t.Fatalf("banded workload bound %d run(s) %v, want a mixed encoding", len(p.runFam), p.runFam)
	}
	want := oracle(mask, a, b, false)
	for _, ph := range []Phases{OnePhase, TwoPhase} {
		for _, threads := range []int{1, 4} {
			for _, grain := range []int{1, 7, 1024} {
				got, err := MaskedSpGEMM(sr, mask, a, b, Options{
					Algorithm: AlgoHybrid, Phases: ph, Threads: threads, Grain: grain,
				})
				if err != nil {
					t.Fatal(err)
				}
				if d := sparse.Diff(want, got, floatEq); d != "" {
					t.Fatalf("%v threads=%d grain=%d: %s", ph, threads, grain, d)
				}
			}
		}
	}
}

// TestHybridComplementNeverBindsMCA is the selection-time
// admissibility guard: complemented plans must never carry an MCA
// run — including when the caller explicitly restricts the selector
// to MCA, which must fall back to MSA instead of crashing in a
// kernel.
func TestHybridComplementNeverBindsMCA(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	for _, c := range testCases() {
		mask, a, b := buildCase(c)
		p := polyTestPlan(t, mask, a, b, Options{Complement: true})
		for _, f := range p.runFam {
			if Family(f) == FamMCA {
				t.Fatalf("%s: complemented plan bound MCA (runs %v)", c.name, p.runFam)
			}
		}
		if p.polyFams.Has(FamMCA) {
			t.Fatalf("%s: polyFams includes MCA under complement", c.name)
		}
	}
	// Explicit MCA-only request under complement: admissibility empties
	// the candidate set, which falls back to MSA and stays correct.
	mask, a, b := buildCase(caseSpec{"", 64, 64, 64, 8, 8, 8, 310})
	opt := Options{Complement: true, HybridFamilies: Families(FamMCA)}
	p := polyTestPlan(t, mask, a, b, opt)
	if got := p.polyFams; got != Families(FamMSA) {
		t.Fatalf("MCA-only complement plan bound %v, want MSA fallback", got)
	}
	opt.Algorithm = AlgoHybrid
	got, err := MaskedSpGEMM(sr, mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.Diff(oracle(mask, a, b, true), got, floatEq); d != "" {
		t.Fatalf("fallback execution: %s", d)
	}
	// And the same restriction on a plain mask genuinely binds MCA.
	plain := polyTestPlan(t, mask, a, b, Options{HybridFamilies: Families(FamMCA)})
	if got := plain.polyFams; got != Families(FamMCA) {
		t.Fatalf("MCA-only plain plan bound %v, want MCA", got)
	}
}

// TestHybridSingleFamilyAllocs is the executor-pooling guard: a poly
// plan that binds one family must materialize only that family's
// accumulator — zero extra allocations against the plain scheme's
// pooling behavior — and must skip the CSC transpose when no row
// bound pull.
func TestHybridSingleFamilyAllocs(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 128, 128, 128, 8, 8, 8, 96})
	for _, ph := range []Phases{OnePhase, TwoPhase} {
		opt := Options{HybridFamilies: Families(FamMSA), Phases: ph, Threads: 1, ReuseOutput: true}
		p := polyTestPlan(t, mask, a, b, opt)
		if len(p.btPtr) != 0 {
			t.Errorf("%v: MSA-only poly plan built a CSC transpose", ph)
		}
		if _, err := p.Execute(a, b); err != nil { // warm-up
			t.Fatal(err)
		}
		w := p.exec.worker(0)
		if w.msa == nil {
			t.Errorf("%v: bound family's accumulator not materialized", ph)
		}
		if w.hash != nil || w.mca != nil || w.heap != nil || w.msaEpoch != nil || w.msac != nil || w.hashC != nil || w.maskedBit != nil || w.maskedBitC != nil {
			t.Errorf("%v: unbound families materialized accumulators", ph)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := p.Execute(a, b); err != nil {
				t.Fatal(err)
			}
		})
		// Same bound as TestPlanExecuteAllocs: the single-family poly
		// path must not allocate beyond the plain scheme's steady
		// state.
		if allocs > 6 {
			t.Errorf("%v: %.1f allocs per warm Execute, want ≤ 6", ph, allocs)
		}
	}
}

// TestHybridRunEncoding pins the run encoder: runs cover all rows in
// order, don't-care rows fold into their neighbors, and findRun
// agrees with the encoding.
func TestHybridRunEncoding(t *testing.T) {
	cases := []struct {
		fam      []uint8
		wantEnds []int32
		wantFams []uint8
	}{
		{[]uint8{0, 0, 1, 1, 1, 4}, []int32{2, 5, 6}, []uint8{0, 1, 4}},
		{[]uint8{famAny, famAny, 3, famAny, 0}, []int32{4, 5}, []uint8{3, 0}},
		{[]uint8{famAny, famAny}, []int32{2}, []uint8{uint8(FamMSA)}},
		{[]uint8{2}, []int32{1}, []uint8{2}},
	}
	for i, c := range cases {
		var p Plan[float64, semiring.PlusTimes[float64]]
		p.encodeRuns(append([]uint8(nil), c.fam...))
		if fmt.Sprint(p.runEnds) != fmt.Sprint(c.wantEnds) || fmt.Sprint(p.runFam) != fmt.Sprint(c.wantFams) {
			t.Errorf("case %d: runs (%v, %v), want (%v, %v)", i, p.runEnds, p.runFam, c.wantEnds, c.wantFams)
		}
		for row := 0; row < len(c.fam); row++ {
			r := findRun(p.runEnds, row)
			if r >= len(p.runEnds) || int(p.runEnds[r]) <= row || (r > 0 && int(p.runEnds[r-1]) > row) {
				t.Errorf("case %d: findRun(%d) = %d outside its run", i, row, r)
			}
		}
	}
}

// TestHybridFamilyRows checks the selector diagnostics: counts sum to
// the row count and reproduce the plan's actual binding.
func TestHybridFamilyRows(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 96, 96, 96, 10, 10, 4, 320})
	counts := HybridFamilyRows(mask, a, b, Options{})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != mask.Rows {
		t.Fatalf("family rows sum to %d, want %d", total, mask.Rows)
	}
	p := polyTestPlan(t, mask, a, b, Options{})
	if fromRuns := p.FamilyRows(); counts != fromRuns {
		t.Fatalf("HybridFamilyRows %v disagrees with plan runs %v", counts, fromRuns)
	}
}

// TestHeapRowCostHonorsNInspect pins the model/kernels consistency
// the selector depends on: with inspection disabled every candidate
// round-trips the heap, so the model must price NInspect=0 strictly
// above the NInspect=1 inspect-skip regime it would otherwise assume.
func TestHeapRowCostHonorsNInspect(t *testing.T) {
	ctx := RowCostContext{MaskNNZ: 4, ARowNNZ: 4, Flops: 4096, AvgBCol: 16, Cols: 4096, HeapNInspect: 1}
	withInspect := heapRowCost(ctx)
	ctx.HeapNInspect = 0
	withoutInspect := heapRowCost(ctx)
	if withoutInspect <= withInspect {
		t.Errorf("heapRowCost: NInspect=0 (%f) priced no higher than NInspect=1 (%f)", withoutInspect, withInspect)
	}
}

// TestFamiliesRejectsInvalid pins that a typo'd family panics instead
// of silently vanishing from the set (which would degrade to the
// MSA-only fallback with no signal).
func TestFamiliesRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Families(NumFamilies) did not panic")
		}
	}()
	Families(NumFamilies)
}

// TestHybridSchedProfileShared checks the poly selector's chosen
// costs feed the scheduler: a skewed poly plan still resolves the
// SchedAuto policy from a cost profile (non-zero skew).
func TestHybridSchedProfileShared(t *testing.T) {
	const n = 256
	coo := sparse.NewCOO[float64](n, n, 0)
	rng := gen.NewRNG(77)
	for i := 0; i < n; i++ {
		deg := 1
		if i >= n-8 {
			deg = n / 2 // a few hub mask rows dominate the cost
		}
		for d := 0; d < deg; d++ {
			coo.Append(int32(i), int32(rng.Intn(n)), 1)
		}
	}
	maskM, err := coo.ToCSR(func(x, y float64) float64 { return x })
	if err != nil {
		t.Fatal(err)
	}
	a := gen.Random(n, n, 16, 78)
	p := polyTestPlan(t, maskM.PatternView(), a, a, Options{Threads: 4})
	if p.CostSkew() == 0 {
		t.Error("poly plan measured no cost skew on a hub-dominated mask")
	}
}
