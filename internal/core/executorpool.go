package core

import (
	"sync"

	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
)

// ExecutorPool lends Executors to concurrent requests. Executors are
// deliberately not concurrency-safe — all accumulator, slab, and CSC
// scratch lives in them — so a serving front-end needs an ownership
// story: Get checks an executor out, the caller owns it exclusively
// until Put checks it back in, and the pool retains at most maxIdle
// executors between requests. Because each idle executor's grow-only
// workspaces are sized by the largest structure it has executed, the
// maxIdle bound is the pool's cap on total retained accumulator
// memory; executors returned beyond it are discarded to the garbage
// collector.
//
// The checkout contract (violations are races or use-after-return
// bugs, not detected beyond the double-Put panic):
//
//   - Only the goroutine that Got an executor may use it, and only
//     until it Puts it back.
//   - Results produced under Options.ReuseOutput alias executor-owned
//     buffers and die at Put; Clone them first.
//   - Put at most once per Get; a detected double return panics.
//   - An executor must not be used after Put — plans bound to it hold
//     no lease.
type ExecutorPool[T any, S semiring.Semiring[T]] struct {
	sr      S
	maxIdle int

	mu        sync.Mutex
	idle      []*Executor[T, S]
	created   uint64
	reused    uint64
	discarded uint64
	poisoned  uint64
}

// NewExecutorPool returns an empty pool over the given semiring
// retaining at most maxIdle idle executors (<= 0 means GOMAXPROCS,
// matching one executor per concurrently-serving goroutine at default
// parallelism).
func NewExecutorPool[T any, S semiring.Semiring[T]](sr S, maxIdle int) *ExecutorPool[T, S] {
	if maxIdle <= 0 {
		maxIdle = parallel.Threads(0)
	}
	return &ExecutorPool[T, S]{sr: sr, maxIdle: maxIdle}
}

// Get checks an executor out of the pool, constructing a fresh one
// when no idle executor is available. Get never blocks: the pool
// bounds retained memory, not concurrency — limiting in-flight
// requests is the caller's admission control.
func (p *ExecutorPool[T, S]) Get() *Executor[T, S] {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		e := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.reused++
		p.mu.Unlock()
		return e
	}
	p.created++
	p.mu.Unlock()
	return NewExecutor[T](p.sr)
}

// Put returns an executor to the pool, ending the caller's ownership.
// The executor's plan and operand references are dropped (so idle
// executors pin neither cache-evicted plans nor caller matrices) but
// its accumulators and buffers are kept — that reuse is the pool's
// point. Beyond maxIdle the executor is discarded. Putting the same
// executor twice panics. Put(nil) is a no-op.
func (p *ExecutorPool[T, S]) Put(e *Executor[T, S]) {
	if e == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// The duplicate check runs before any mutation of e: a detected
	// double Put must not first clobber state that the executor's
	// legitimate owner (still holding it idle in the pool) relies on.
	for _, x := range p.idle {
		if x == e {
			panic("core: executor returned to pool twice")
		}
	}
	e.releaseBindings()
	if len(p.idle) >= p.maxIdle {
		p.discarded++
		return
	}
	p.idle = append(p.idle, e)
}

// Discard drops a poisoned executor instead of returning it, ending
// the caller's ownership exactly like Put but without pooling: an
// execution interrupted mid-pass (kernel panic, cooperative
// cancellation) leaves accumulator scratch half-mutated, and the MSA
// family's correctness depends on scratch being clean between rows —
// a poisoned executor must never serve another request. The executor
// goes to the garbage collector; capacity refills lazily because Get
// constructs fresh executors on demand. Discard(nil) is a no-op.
func (p *ExecutorPool[T, S]) Discard(e *Executor[T, S]) {
	if e == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.poisoned++
}

// ExecutorPoolStats is a point-in-time snapshot of pool behaviour.
type ExecutorPoolStats struct {
	// Created counts executors constructed because the pool was empty.
	Created uint64
	// Reused counts checkouts served by an idle executor.
	Reused uint64
	// Discarded counts returns dropped because maxIdle was reached.
	Discarded uint64
	// Poisoned counts executors dropped via Discard after an
	// interrupted execution (kernel panic or cancellation) left their
	// scratch unsafe to reuse.
	Poisoned uint64
	// Idle is the current number of retained executors.
	Idle int
}

// Stats returns a snapshot of the pool counters.
func (p *ExecutorPool[T, S]) Stats() ExecutorPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ExecutorPoolStats{
		Created:   p.created,
		Reused:    p.reused,
		Discarded: p.discarded,
		Poisoned:  p.poisoned,
		Idle:      len(p.idle),
	}
}
