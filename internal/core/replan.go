package core

import (
	"time"

	"maskedspgemm/internal/semiring"
)

// Online plan re-binding (DESIGN.md §14). Every stat-collecting
// execution already measures the truth the §9/§10 cost models only
// predict: per-worker busy times (whose ratio is the imbalance
// factor) and the wall time of the whole product. ObserveExecution
// feeds that truth back into the plan-cache entry that produced it;
// a plan whose imbalance EWMA stays above threshold for K consecutive
// observed hits is re-bound in the background — re-partitioned from
// its retained cost profile, re-selected under calibrated
// coefficients, or handed to the work-stealing scheduler — and the
// new immutable Plan is swapped into the cache atomically. In-flight
// executions of the old plan finish on the old plan (it is immutable
// and they hold their own pointer); the next cache hit picks up the
// replacement. Cached plans get faster the more they're hit.

// Replan defaults; see ReplanPolicy.
const (
	// DefaultImbalanceThreshold is the measured-imbalance level
	// (busiest worker busy time over the mean; 1.0 = perfect balance)
	// above which a plan's EWMA counts toward re-binding.
	DefaultImbalanceThreshold = 1.5
	// DefaultReplanHits is K: consecutive over-threshold observations
	// before a background re-bind launches.
	DefaultReplanHits = 8
	// DefaultReplanAlpha is the EWMA smoothing factor for the per-plan
	// imbalance and wall-time trackers.
	DefaultReplanAlpha = 0.25
	// DefaultMaxPartsPerWorker caps the partition-slack escalation:
	// each re-partition doubles the partitions per worker (finer
	// splits absorb more cost-model error) until this ceiling, after
	// which the ladder falls through to work stealing.
	DefaultMaxPartsPerWorker = 16
)

// ReplanPolicy tunes the online feedback loop enabled by
// PlanCache.EnableReplan. The zero value means every default.
type ReplanPolicy struct {
	// ImbalanceThreshold is the EWMA imbalance level above which an
	// observation counts toward re-binding; <= 0 means
	// DefaultImbalanceThreshold.
	ImbalanceThreshold float64
	// ConsecutiveHits is K, the over-threshold streak that triggers a
	// re-bind; <= 0 means DefaultReplanHits.
	ConsecutiveHits int
	// Alpha is the EWMA smoothing factor in (0, 1]; out-of-range means
	// DefaultReplanAlpha.
	Alpha float64
	// MaxPartsPerWorker caps partition-slack escalation; <= 0 means
	// DefaultMaxPartsPerWorker.
	MaxPartsPerWorker int
	// Coeffs, when non-zero, is the calibrated coefficient set a full
	// Hybrid re-bind re-runs the per-row selector with — the startup
	// micro-benchmark's fit, applied online only to plans that keep
	// measuring imbalanced under their literal-cost binding.
	Coeffs CostCoeffs
}

// withDefaults resolves the zero values.
func (p ReplanPolicy) withDefaults() ReplanPolicy {
	if p.ImbalanceThreshold <= 0 {
		p.ImbalanceThreshold = DefaultImbalanceThreshold
	}
	if p.ConsecutiveHits <= 0 {
		p.ConsecutiveHits = DefaultReplanHits
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		p.Alpha = DefaultReplanAlpha
	}
	if p.MaxPartsPerWorker <= 0 {
		p.MaxPartsPerWorker = DefaultMaxPartsPerWorker
	}
	return p
}

// planFeedback is the per-entry measured record the replanner keys
// on. Guarded by the cache mutex.
type planFeedback struct {
	// ewmaImbalance / ewmaWall smooth the observed imbalance factors
	// and wall times (nanoseconds); seeded by the first sample.
	ewmaImbalance float64
	ewmaWall      float64
	// samples counts observations of the current plan (reset on swap:
	// the successor earns its own record).
	samples uint64
	// overStreak counts consecutive observations with the EWMA above
	// threshold.
	overStreak int
	// replans counts how many times this entry's plan was swapped.
	replans int
	// slack is the current partitions-per-worker of a re-partitioned
	// plan (0 = plan-time default).
	slack int
	// rebinding marks an in-flight background re-bind; at most one
	// per entry.
	rebinding bool
	// exhausted marks the ladder's end (work stealing, or nothing to
	// escalate): no further re-binds fire.
	exhausted bool
}

// rebindSpec names one rung of the escalation ladder: the target
// schedule, its partition slack, optionally a new thread width, and
// optionally a coefficient set to re-run the Hybrid selector with.
type rebindSpec struct {
	sched   Schedule
	slack   int
	threads int
	coeffs  *CostCoeffs
}

// EnableReplan turns on the online feedback loop: ObserveExecution
// calls start tracking per-plan EWMAs and re-binding plans that keep
// measuring imbalanced. Safe to call before or during concurrent use;
// the policy's zero fields resolve to the documented defaults.
func (c *PlanCache[T, S]) EnableReplan(pol ReplanPolicy) {
	p := pol.withDefaults()
	c.mu.Lock()
	c.replan = &p
	c.mu.Unlock()
}

// SetReplanLauncher overrides how background re-binds are started;
// the default launcher runs each job on a fresh goroutine. Tests
// inject a synchronous launcher to make the swap deterministic, and a
// serving layer could route jobs through a bounded worker. Must be
// set before observations flow.
func (c *PlanCache[T, S]) SetReplanLauncher(f func(func())) {
	c.mu.Lock()
	c.launch = f
	c.mu.Unlock()
}

// ObserveExecution feeds one execution's measured truth — the
// scheduler imbalance factor and the wall time — back into the cached
// entry holding plan. A no-op until EnableReplan, and for plans no
// longer in the cache (evicted, or already replaced by a re-bind:
// measurements of a predecessor must not poison the successor's
// record). When the imbalance EWMA has stayed above the policy
// threshold for K consecutive observations, the next ladder rung is
// re-bound in the background and the resulting plan atomically
// replaces the entry's; callers keep executing whichever plan their
// lookup returned — both are immutable — and subsequent hits get the
// replacement.
func (c *PlanCache[T, S]) ObserveExecution(plan *Plan[T, S], imbalance float64, wall time.Duration) {
	c.mu.Lock()
	pol := c.replan
	if pol == nil {
		c.mu.Unlock()
		return
	}
	el, ok := c.index[plan]
	if !ok {
		c.mu.Unlock()
		return
	}
	entry := el.Value.(*planEntry[T, S])
	fb := &entry.fb
	fb.samples++
	if fb.samples == 1 {
		fb.ewmaImbalance = imbalance
		fb.ewmaWall = float64(wall.Nanoseconds())
	} else {
		fb.ewmaImbalance += pol.Alpha * (imbalance - fb.ewmaImbalance)
		fb.ewmaWall += pol.Alpha * (float64(wall.Nanoseconds()) - fb.ewmaWall)
	}
	if fb.ewmaImbalance > pol.ImbalanceThreshold {
		fb.overStreak++
	} else {
		fb.overStreak = 0
	}
	if fb.overStreak < pol.ConsecutiveHits || fb.rebinding || fb.exhausted {
		c.mu.Unlock()
		return
	}
	spec, ok := nextRebind(entry, *pol)
	if !ok {
		fb.exhausted = true
		c.mu.Unlock()
		return
	}
	fb.rebinding = true
	fb.overStreak = 0
	launch := c.launch
	c.mu.Unlock()

	job := func() { c.rebindSwap(plan, spec) }
	if launch != nil {
		launch(job)
	} else {
		go job()
	}
}

// nextRebind picks the next escalation rung for an over-threshold
// entry, or reports none left. Ladder: a fixed-grain plan with a
// profile re-partitions at the default slack; a cost-partitioned
// Hybrid plan whose binding predates the calibrated coefficients is
// fully re-bound; a cost-partitioned plan otherwise doubles its
// partition slack up to the policy cap; past the cap the plan falls
// through to work stealing, the profile-free terminal rung. Serial
// plans have nothing to balance. Caller holds the cache mutex.
func nextRebind[T any, S semiring.Semiring[T]](entry *planEntry[T, S], pol ReplanPolicy) (rebindSpec, bool) {
	plan := entry.plan
	fb := &entry.fb
	if plan.opt.Threads <= 1 {
		return rebindSpec{}, false
	}
	switch plan.sched {
	case SchedFixedGrain:
		if plan.profile == nil || plan.profile.total == 0 {
			// No profile to split: work stealing is the only
			// skew absorber left.
			return rebindSpec{sched: SchedWorkSteal}, true
		}
		return rebindSpec{sched: SchedCostPartition, slack: costPartsPerWorker}, true
	case SchedCostPartition:
		if plan.opt.Algorithm == AlgoHybrid && !pol.Coeffs.IsZero() &&
			plan.opt.CostCoeffs != pol.Coeffs &&
			plan.profile != nil && plan.profile.rowFlops != nil {
			// The model itself may be wrong, not just the split: re-run
			// the selector with the measured coefficients before
			// grinding the partitions finer. After this rung the plan
			// carries pol.Coeffs, so it never refires.
			co := pol.Coeffs
			slack := fb.slack
			if slack < 1 {
				slack = costPartsPerWorker
			}
			return rebindSpec{sched: SchedCostPartition, slack: slack, coeffs: &co}, true
		}
		cur := fb.slack
		if cur < 1 {
			cur = costPartsPerWorker
		}
		if cur*2 <= pol.MaxPartsPerWorker {
			return rebindSpec{sched: SchedCostPartition, slack: cur * 2}, true
		}
		return rebindSpec{sched: SchedWorkSteal}, true
	}
	return rebindSpec{}, false
}

// rebindSwap builds the replacement plan outside the cache lock and
// swaps it into the entry still holding old. Runs on the replan
// launcher's goroutine. If the entry was evicted (or already swapped)
// while re-binding, the work is dropped — the cache never resurrects
// a plan the LRU let go.
func (c *PlanCache[T, S]) rebindSwap(old *Plan[T, S], spec rebindSpec) {
	// Re-binding reads only plan-retained immutable state (mask,
	// profile), so it is safe against callers mutating A/B and against
	// concurrent executions of old.
	next := old.rebind(spec)

	c.mu.Lock()
	el, ok := c.index[old]
	if !ok {
		c.mu.Unlock()
		return
	}
	entry := el.Value.(*planEntry[T, S])
	entry.fb.rebinding = false
	if next == nil {
		entry.fb.exhausted = true
		c.mu.Unlock()
		return
	}
	delete(c.index, old)
	c.index[next] = el
	entry.plan = next
	nb := next.footprintBytes()
	delta := nb - entry.bytes
	entry.bytes = nb
	c.bytes += delta
	if c.budget != nil {
		if delta > 0 {
			c.budget.Reserve(delta)
		} else if delta < 0 {
			c.budget.Release(-delta)
		}
	}
	entry.fb.replans++
	entry.fb.slack = spec.slack
	if next.sched == SchedWorkSteal {
		entry.fb.exhausted = true
	}
	// The successor earns its own record: stale EWMAs from the plan it
	// replaced must not re-trigger (or mask) its own behaviour.
	entry.fb.ewmaImbalance, entry.fb.ewmaWall = 0, 0
	entry.fb.samples, entry.fb.overStreak = 0, 0
	c.replans++
	budget := c.budget
	c.mu.Unlock()
	if budget != nil && delta > 0 {
		// Shared-budget pressure resolves outside the cache lock:
		// Rebalance may evict from any member, including this cache.
		budget.Rebalance()
	}
}

// rebind builds a new immutable plan from p's retained analysis under
// spec: same operands, same kernels registry, new schedule (and, with
// spec.coeffs, a re-selected Hybrid run encoding). Returns nil when
// the spec needs a profile p does not retain. The clone is built
// field by field — Plan embeds a sync.Once — and shares the immutable
// analysis arrays (mask, offsets, CSC structure) with p; both plans
// stay independently executable.
//
//mspgemm:planwrite
func (p *Plan[T, S]) rebind(spec rebindSpec) *Plan[T, S] {
	n := &Plan[T, S]{
		sr: p.sr, opt: p.opt, info: p.info, mask: p.mask,
		aRows: p.aRows, aCols: p.aCols, bRows: p.bRows, bCols: p.bCols,
		aNNZ: p.aNNZ, bNNZ: p.bNNZ,
		offsets: p.offsets,
		btPtr:   p.btPtr, btIdx: p.btIdx, btPerm: p.btPerm,
		runEnds: p.runEnds, runFam: p.runFam, polyFams: p.polyFams,
		sched: p.sched, partBounds: p.partBounds, costSkew: p.costSkew,
		profile:      p.profile,
		heapNInspect: p.heapNInspect, maxMaskRow: p.maxMaskRow, maxARow: p.maxARow,
		reg: p.reg,
	}
	if spec.threads > 1 {
		n.opt.Threads = spec.threads
	}
	if spec.coeffs != nil {
		if p.opt.Algorithm != AlgoHybrid || p.profile == nil || p.profile.rowFlops == nil {
			return nil
		}
		n.opt.CostCoeffs = *spec.coeffs
		n.rebindRuns()
	}
	switch spec.sched {
	case SchedCostPartition:
		prof := n.profile
		if prof == nil || prof.total == 0 {
			return nil
		}
		slack := spec.slack
		if slack < 1 {
			slack = costPartsPerWorker
		}
		n.sched = SchedCostPartition
		n.partBounds = costPartitions(prof.rowCost, prof.total, n.opt.Threads*slack)
	case SchedWorkSteal:
		n.sched = SchedWorkSteal
		n.partBounds = nil
	}
	return n
}

// rebindRuns re-runs the Hybrid per-row selector from the retained
// profile under n's (re-calibrated) coefficients: the RowCostContext
// inputs come from the plan's own mask and profile — never from A or
// B, which the §8 ownership contract lets callers mutate between
// executions — and the chosen costs become the new scheduling
// profile. Accumulator sizing hints are refreshed for the families
// the new encoding binds (maxARow from the profiled A-row
// populations). FamPull is only bindable if the original analysis
// built the CSC structure.
//
//mspgemm:planwrite
func (p *Plan[T, S]) rebindRuns() {
	prof := p.profile
	rows := p.mask.Rows
	opt := p.opt
	fams := polyCandidates(opt)
	if p.btPtr == nil {
		// No CSC structure was built at analysis time, so pull rows
		// could not execute; keep FamPull out of the re-selection.
		kept := fams[:0]
		for _, f := range fams {
			if f != FamPull {
				kept = append(kept, f)
			}
		}
		fams = kept
		if len(fams) == 0 {
			fams = []Family{FamMSA}
		}
	}
	models := make([]func(RowCostContext) float64, len(fams))
	for i, f := range fams {
		s, _ := LookupScheme(famAlgo[f])
		models[i] = s.RowCost
	}
	coeffs := opt.coeffs()
	cols, complement := p.mask.Cols, opt.Complement
	nInspect := resolveHeapNInspect(opt)
	rowFam := make([]uint8, rows)
	cost := make([]int64, rows)
	next := &costProfile{
		rowCost: cost, rowFlops: prof.rowFlops, rowANNZ: prof.rowANNZ,
		avgBCol: prof.avgBCol,
	}
	for i := 0; i < rows; i++ {
		m := p.mask.RowNNZ(i)
		flops := prof.rowFlops[i]
		admitted := m
		if complement {
			admitted = cols - m
		}
		if admitted == 0 || flops == 0 {
			rowFam[i] = famAny
			cost[i] = 1
			next.total++
			continue
		}
		ctx := RowCostContext{
			MaskNNZ: m, ARowNNZ: int(prof.rowANNZ[i]), Flops: flops,
			AvgBCol: prof.avgBCol, Cols: cols, Complement: complement,
			HeapNInspect: nInspect, Coeffs: coeffs,
		}
		best, bestCost := fams[0], models[0](ctx)
		for j := 1; j < len(models); j++ {
			if c := models[j](ctx); c < bestCost {
				best, bestCost = fams[j], c
			}
		}
		rowFam[i] = uint8(best)
		cost[i] = 1 + int64(bestCost)
		next.total += cost[i]
	}
	p.encodeRuns(rowFam)
	p.profile = next
	if !opt.Complement && (p.polyFams.Has(FamHash) || p.polyFams.Has(FamMCA)) {
		p.maxMaskRow = p.mask.MaxRowNNZ()
	}
	if p.polyFams.Has(FamHeap) {
		maxA := 0
		for _, a := range prof.rowANNZ {
			if int(a) > maxA {
				maxA = int(a)
			}
		}
		p.maxARow = maxA
		p.heapNInspect = nInspect
	}
}

// PlanDrift is one cached plan's measured record — the /stats view of
// how far runtime truth has drifted from the plan's cost model, and
// what the replanner did about it.
type PlanDrift struct {
	// Scheme is the plan's scheme name ("Hybrid-1P" style).
	Scheme string
	// Rows is the plan's output row count.
	Rows int
	// Schedule is the plan's current resolved scheduling strategy.
	Schedule string
	// EwmaImbalance is the smoothed measured imbalance factor of the
	// current plan (0 until the first post-swap observation).
	EwmaImbalance float64
	// EwmaWallNanos is the smoothed measured wall time in nanoseconds.
	EwmaWallNanos int64
	// Samples counts observations of the current plan.
	Samples uint64
	// Replans counts how many times this entry's plan was re-bound.
	Replans int
}
