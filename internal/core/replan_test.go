package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// syncLauncher runs re-bind jobs inline on the observing goroutine,
// making swaps deterministic for tests: the Kth ObserveExecution
// returns only after the swap completed.
func syncLauncher(job func()) { job() }

// observeN feeds n identical fake measurements for plan.
func observeN[T any, S semiring.Semiring[T]](c *PlanCache[T, S], p *Plan[T, S], n int, imbalance float64) {
	for i := 0; i < n; i++ {
		c.ObserveExecution(p, imbalance, time.Millisecond)
	}
}

// TestReplanKHitSwap pins the acceptance path end to end with fake
// measurements and no sleeps: a plan that measures imbalanced for K
// consecutive observed hits is re-bound in the background (here:
// synchronously, via the injected launcher), the cache entry swaps to
// the new immutable plan, subsequent hits return it, and the swapped
// plan still computes the same product.
func TestReplanKHitSwap(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	// Uniform structure + Threads=4 resolves to FixedGrain with a
	// retained profile — the ladder's first rung re-partitions it.
	mask, a, b := buildCase(caseSpec{"", 512, 512, 512, 8, 8, 8, 5})
	opt := Options{Algorithm: AlgoMSA, Threads: 4}

	c := NewPlanCache[float64](sr, 8, 0)
	c.SetReplanLauncher(syncLauncher)
	c.EnableReplan(ReplanPolicy{ImbalanceThreshold: 1.2, ConsecutiveHits: 3})

	p0, err := c.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p0.ResolvedSchedule() != SchedFixedGrain {
		t.Fatalf("precondition: uniform plan resolved %v, want FixedGrain", p0.ResolvedSchedule())
	}
	if p0.profile == nil {
		t.Fatal("precondition: profiled plan retained no profile")
	}
	want, err := p0.ExecuteOn(NewExecutor[float64](sr), a, b)
	if err != nil {
		t.Fatal(err)
	}

	// K-1 over-threshold observations: no swap yet.
	observeN(c, p0, 2, 2.0)
	if p1, _ := c.GetOrPlan(mask, a, b, opt); p1 != p0 {
		t.Fatal("plan swapped before K consecutive over-threshold hits")
	}
	// The Kth triggers the (synchronous) re-bind.
	observeN(c, p0, 1, 2.0)
	p1, err := c.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p0 {
		t.Fatal("plan not swapped after K over-threshold hits")
	}
	if p1.ResolvedSchedule() != SchedCostPartition {
		t.Errorf("first rung resolved %v, want CostPartition", p1.ResolvedSchedule())
	}
	if len(p1.partBounds) < 2 || p1.partBounds[0] != 0 || p1.partBounds[len(p1.partBounds)-1] != mask.Rows {
		t.Errorf("re-partitioned bounds do not tile rows: %v", p1.partBounds)
	}
	got, err := p1.ExecuteOn(NewExecutor[float64](sr), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Error("re-bound plan computes a different product")
	}
	st := c.Stats()
	if st.Replans != 1 {
		t.Errorf("Replans = %d, want 1", st.Replans)
	}
	if len(st.Drift) != 1 || st.Drift[0].Replans != 1 || st.Drift[0].Schedule != "CostPartition" {
		t.Errorf("drift record %+v, want one entry with Replans=1 Schedule=CostPartition", st.Drift)
	}

	// Observations against the replaced pointer are dropped: the
	// successor's fresh record must stay untouched.
	observeN(c, p0, 10, 9.9)
	if st := c.Stats(); st.Replans != 1 || st.Drift[0].Samples != 0 {
		t.Errorf("stale-plan observations leaked into the successor: %+v", st.Drift)
	}

	// Escalation: slack doubles (4→8→16 partitions per worker), then
	// the ladder terminates at WorkSteal and stays there.
	prev := p1
	for rung, wantSched := range []Schedule{SchedCostPartition, SchedCostPartition, SchedWorkSteal} {
		observeN(c, prev, 3, 2.0)
		next, _ := c.GetOrPlan(mask, a, b, opt)
		if next == prev {
			t.Fatalf("rung %d: no swap", rung)
		}
		if next.ResolvedSchedule() != wantSched {
			t.Fatalf("rung %d: resolved %v, want %v", rung, next.ResolvedSchedule(), wantSched)
		}
		got, err := next.ExecuteOn(NewExecutor[float64](sr), a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(want, got) {
			t.Fatalf("rung %d: wrong product", rung)
		}
		prev = next
	}
	// Terminal: further pressure never swaps again.
	observeN(c, prev, 10, 9.0)
	if final, _ := c.GetOrPlan(mask, a, b, opt); final != prev {
		t.Error("exhausted ladder still swapped")
	}
	if st := c.Stats(); st.Replans != 4 {
		t.Errorf("Replans = %d, want 4", st.Replans)
	}
}

// TestReplanBelowThresholdNeverFires: balanced measurements keep the
// plan, and a streak broken before K resets.
func TestReplanBelowThresholdNeverFires(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 256, 256, 256, 8, 8, 8, 6})
	c := NewPlanCache[float64](sr, 8, 0)
	c.SetReplanLauncher(syncLauncher)
	c.EnableReplan(ReplanPolicy{ImbalanceThreshold: 1.5, ConsecutiveHits: 3})
	opt := Options{Algorithm: AlgoMSA, Threads: 4}
	p0, err := c.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	observeN(c, p0, 50, 1.05)
	// Streak broken at 2: 2 over, 1 under, repeatedly. The EWMA is
	// dragged under threshold by the alternation, so no swap fires.
	for i := 0; i < 6; i++ {
		observeN(c, p0, 2, 1.6)
		observeN(c, p0, 2, 1.0)
	}
	if p1, _ := c.GetOrPlan(mask, a, b, opt); p1 != p0 {
		t.Error("balanced plan was re-bound")
	}
	if st := c.Stats(); st.Replans != 0 {
		t.Errorf("Replans = %d, want 0", st.Replans)
	}
}

// TestReplanSerialPlanExempt: a Threads==1 plan has nothing to
// balance — the ladder reports exhausted instead of churning.
func TestReplanSerialPlanExempt(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 512, 512, 512, 8, 8, 8, 7})
	c := NewPlanCache[float64](sr, 8, 0)
	c.SetReplanLauncher(syncLauncher)
	c.EnableReplan(ReplanPolicy{ImbalanceThreshold: 1.2, ConsecutiveHits: 2})
	opt := Options{Algorithm: AlgoMSA, Threads: 1}
	p0, err := c.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	observeN(c, p0, 10, 5.0)
	if p1, _ := c.GetOrPlan(mask, a, b, opt); p1 != p0 {
		t.Error("serial plan was re-bound")
	}
}

// TestReplanCoeffsRebind pins the full re-bind rung: a Hybrid plan
// bound under literal costs, measuring imbalanced, is re-selected
// with the policy's calibrated coefficients — the run encoding
// changes, the product does not, and the rung never refires once the
// plan carries the coefficients.
func TestReplanCoeffsRebind(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 512, 512, 512, 8, 8, 8, 320})
	// Explicit CostPartition: starts past the first rung, so the next
	// escalation for an un-calibrated Hybrid plan is the coeffs rebind.
	opt := Options{Algorithm: AlgoHybrid, Threads: 4, Schedule: SchedCostPartition}

	// Coefficients that make every family but Heap look expensive:
	// the re-bound encoding must shift rows toward Heap.
	coeffs := CostCoeffs{}
	for f := range coeffs {
		coeffs[f] = 50
	}
	coeffs[FamHeap] = 0.001

	c := NewPlanCache[float64](sr, 8, 0)
	c.SetReplanLauncher(syncLauncher)
	c.EnableReplan(ReplanPolicy{ImbalanceThreshold: 1.2, ConsecutiveHits: 2, Coeffs: coeffs})

	p0, err := c.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p0.profile == nil || p0.profile.rowFlops == nil {
		t.Fatal("precondition: hybrid plan retained no selector profile")
	}
	want, err := p0.ExecuteOn(NewExecutor[float64](sr), a, b)
	if err != nil {
		t.Fatal(err)
	}
	rows0 := p0.FamilyRows()

	observeN(c, p0, 2, 3.0)
	p1, _ := c.GetOrPlan(mask, a, b, opt)
	if p1 == p0 {
		t.Fatal("no swap after K hits")
	}
	if p1.opt.CostCoeffs != coeffs {
		t.Fatalf("re-bound plan carries coeffs %v, want the policy's", p1.opt.CostCoeffs)
	}
	rows1 := p1.FamilyRows()
	if rows1[FamHeap] <= rows0[FamHeap] {
		t.Errorf("heap-favoring coefficients did not move rows to Heap: before %v after %v", rows0, rows1)
	}
	got, err := p1.ExecuteOn(NewExecutor[float64](sr), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Error("coefficient re-bind changed the product")
	}

	// Once calibrated, the coeffs rung is spent: the next escalation
	// is slack doubling, not another re-selection.
	observeN(c, p1, 2, 3.0)
	p2, _ := c.GetOrPlan(mask, a, b, opt)
	if p2 == p1 {
		t.Fatal("no slack escalation after the coeffs rebind")
	}
	if p2.opt.CostCoeffs != coeffs || p2.ResolvedSchedule() != SchedCostPartition {
		t.Errorf("second rung: coeffs %v sched %v", p2.opt.CostCoeffs, p2.ResolvedSchedule())
	}
	if p2.FamilyRows() != rows1 {
		t.Error("slack escalation re-ran the selector")
	}
}

// TestRebindUnitCoeffsParity is the -calibrate=off criterion at the
// core level: an all-ones coefficient array multiplies every model by
// exactly 1.0, so the binding, the cost vector, and the partition
// bounds must be bit-for-bit identical to the uncalibrated plan's.
func TestRebindUnitCoeffsParity(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 512, 512, 512, 8, 8, 8, 321})
	base := Options{Algorithm: AlgoHybrid, Threads: 4, Schedule: SchedCostPartition}
	p0, err := NewPlan(sr, mask, a, b, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	unit := base
	for f := range unit.CostCoeffs {
		unit.CostCoeffs[f] = 1.0
	}
	p1, err := NewPlan(sr, mask, a, b, unit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(p0.runEnds) != fmt.Sprint(p1.runEnds) || fmt.Sprint(p0.runFam) != fmt.Sprint(p1.runFam) {
		t.Error("unit coefficients changed the run encoding")
	}
	if fmt.Sprint(p0.partBounds) != fmt.Sprint(p1.partBounds) {
		t.Errorf("unit coefficients changed partition bounds: %v vs %v", p0.partBounds, p1.partBounds)
	}
	if p0.profile != nil && p1.profile != nil {
		if fmt.Sprint(p0.profile.rowCost) != fmt.Sprint(p1.profile.rowCost) {
			t.Error("unit coefficients changed the cost vector")
		}
	}
}

// TestWarmThenWide pins the satellite fix: a Threads==1 plan over a
// large structure retains its cost profile (pre-fix it skipped the
// profile entirely), so re-binding it to more threads lays out cost
// partitions from the retained vector — without ever touching A or B
// again — and the wide plan computes the same product. Small serial
// plans still skip the profile (pure planning overhead).
func TestWarmThenWide(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := skewedCase(512, 512, 4)

	serial, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoMSA, Threads: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if serial.ResolvedSchedule() != SchedFixedGrain {
		t.Fatalf("serial plan resolved %v, want FixedGrain", serial.ResolvedSchedule())
	}
	if serial.profile == nil || serial.profile.total == 0 {
		t.Fatal("large serial plan retained no cost profile (warm-then-wide regression)")
	}
	want, err := serial.Execute(a, b)
	if err != nil {
		t.Fatal(err)
	}

	wide := serial.rebind(rebindSpec{sched: SchedCostPartition, slack: costPartsPerWorker, threads: 4})
	if wide == nil {
		t.Fatal("rebind returned nil despite a retained profile")
	}
	if wide.ResolvedSchedule() != SchedCostPartition {
		t.Fatalf("wide plan resolved %v, want CostPartition", wide.ResolvedSchedule())
	}
	if wide.opt.Threads != 4 {
		t.Fatalf("wide plan threads = %d, want 4", wide.opt.Threads)
	}
	if n := len(wide.partBounds) - 1; n < 2 || n > 4*costPartsPerWorker {
		t.Fatalf("wide plan laid out %d partitions, want in (1, %d]", n, 4*costPartsPerWorker)
	}
	got, err := wide.ExecuteOn(NewExecutor[float64](sr), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Error("warm-then-wide plan computes a different product")
	}

	// Hybrid serial plans retain the full selector profile too.
	hp, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoHybrid, Threads: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hp.profile == nil || hp.profile.rowFlops == nil {
		t.Fatal("large serial hybrid plan retained no selector profile")
	}

	// Small structures keep the old economy: no profile.
	smask, sa, sb := buildCase(caseSpec{"", 64, 64, 64, 8, 8, 8, 5})
	small, err := NewPlan(sr, smask, sa, sb, Options{Algorithm: AlgoMSA, Threads: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if small.profile != nil {
		t.Error("small serial plan measured a profile it can never use")
	}
}

// TestReplanSwapKeepsAccounting: a swap adjusts the cache's byte
// accounting to the new plan's footprint.
func TestReplanSwapKeepsAccounting(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 512, 512, 512, 8, 8, 8, 5})
	c := NewPlanCache[float64](sr, 8, 0)
	c.SetReplanLauncher(syncLauncher)
	c.EnableReplan(ReplanPolicy{ImbalanceThreshold: 1.2, ConsecutiveHits: 2})
	opt := Options{Algorithm: AlgoMSA, Threads: 4}
	p0, err := c.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	observeN(c, p0, 2, 3.0)
	p1, _ := c.GetOrPlan(mask, a, b, opt)
	if p1 == p0 {
		t.Fatal("no swap")
	}
	if got, want := c.Stats().Bytes, p1.footprintBytes(); got != want {
		t.Errorf("cache bytes %d after swap, want the new plan's footprint %d", got, want)
	}
}

// TestReplanConcurrentExecutions hammers a cache-shared plan with
// concurrent executions while background re-binds (real goroutines,
// default launcher) repeatedly swap the entry underneath them: every
// execution must see a consistent plan — old or new, never torn — and
// produce the exact product. Run with -race.
func TestReplanConcurrentExecutions(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 512, 512, 512, 8, 8, 8, 5})
	opt := Options{Algorithm: AlgoHybrid, Threads: 4, Schedule: SchedCostPartition}
	coeffs := CostCoeffs{10, 1, 1, 0.01, 1, 1}

	c := NewPlanCache[float64](sr, 8, 0)
	c.EnableReplan(ReplanPolicy{ImbalanceThreshold: 1.1, ConsecutiveHits: 2, Coeffs: coeffs})

	p0, err := c.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p0.ExecuteOn(NewExecutor[float64](sr), a, b)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exec := NewExecutor[float64](sr)
			for i := 0; i < iters; i++ {
				p, err := c.GetOrPlan(mask, a, b, opt)
				if err != nil {
					errs <- err
					return
				}
				got, err := p.ExecuteOnOpts(exec, a, b, ExecOptions{CollectSchedStats: true})
				if err != nil {
					errs <- err
					return
				}
				if !sparse.Equal(want, got) {
					errs <- fmt.Errorf("iteration %d: wrong product under concurrent re-bind", i)
					return
				}
				// Feed pressure so swaps keep firing mid-traffic.
				c.ObserveExecution(p, 5.0, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if c.Stats().Replans == 0 {
		t.Error("stress run never triggered a re-bind")
	}
}
