package core

import (
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// The pull-based inner-product algorithm (§4.1): for every admitted
// mask entry (i, j) compute the sparse dot product A_i* · B_*j. A is
// read in CSR, B in CSC (its transpose is taken once per call, or
// supplied pre-transposed by callers that reuse it). Parallelism is
// across mask rows, giving the ≥ O(nnz(M))-way parallelism the paper
// notes.

// dotNumeric computes the sorted-merge sparse dot product of one A row
// and one B column; hit is false when no index matched (no output
// entry).
func dotNumeric[T any, S semiring.Semiring[T]](sr S, aCols []int32, aVals []T, bRows []int32, bVals []T) (acc T, hit bool) {
	p, q := 0, 0
	for p < len(aCols) && q < len(bRows) {
		switch {
		case aCols[p] < bRows[q]:
			p++
		case aCols[p] > bRows[q]:
			q++
		default:
			prod := sr.Mul(aVals[p], bVals[q])
			if !hit {
				acc = prod
				hit = true
			} else {
				acc = sr.Add(acc, prod)
			}
			p++
			q++
		}
	}
	return acc, hit
}

// dotNumericGalloping is the skewed-length variant: when one operand
// is much shorter, binary-search (gallop) the longer one instead of
// stepping through it. The ablation BenchmarkInnerGallop measures the
// crossover; correctness is identical to dotNumeric.
func dotNumericGalloping[T any, S semiring.Semiring[T]](sr S, aCols []int32, aVals []T, bRows []int32, bVals []T) (acc T, hit bool) {
	// Keep the shorter list on the outside.
	if len(aCols) > len(bRows) {
		return dotNumericGalloping(sr, bRows, bVals, aCols, aVals)
	}
	lo := 0
	for p, key := range aCols {
		lo = gallopTo(bRows, key, lo)
		if lo >= len(bRows) {
			break
		}
		if bRows[lo] == key {
			prod := sr.Mul(aVals[p], bVals[lo])
			if !hit {
				acc = prod
				hit = true
			} else {
				acc = sr.Add(acc, prod)
			}
			lo++
		}
	}
	return acc, hit
}

// gallopTo returns the first index ≥ from whose value is ≥ key,
// doubling the step then binary-searching the bracket.
func gallopTo(s []int32, key int32, from int) int {
	if from >= len(s) || s[from] >= key {
		return from
	}
	step := 1
	lo := from
	hi := from + step
	for hi < len(s) && s[hi] < key {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > len(s) {
		hi = len(s)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// dotSymbolic reports whether the dot product has at least one matching
// index; it early-exits on the first match, which is what makes the
// Inner symbolic phase cheaper than its numeric phase.
func dotSymbolic(aCols, bRows []int32) bool {
	p, q := 0, 0
	for p < len(aCols) && q < len(bRows) {
		switch {
		case aCols[p] < bRows[q]:
			p++
		case aCols[p] > bRows[q]:
			q++
		default:
			return true
		}
	}
	return false
}

// innerRowNumeric computes output row i: one dot product per admitted
// mask entry.
func innerRowNumeric[T any, S semiring.Semiring[T]](sr S, maskRow []int32, aCols []int32, aVals []T, bt *sparse.CSC[T], outIdx []int32, outVal []T) int {
	n := 0
	for _, j := range maskRow {
		if v, hit := dotNumeric(sr, aCols, aVals, bt.Col(int(j)), bt.ColVals(int(j))); hit {
			outIdx[n] = j
			outVal[n] = v
			n++
		}
	}
	return n
}

// innerRowNumericGallop is innerRowNumeric over the galloping dot; the
// two are interchangeable, selected by Options.InnerGallop.
func innerRowNumericGallop[T any, S semiring.Semiring[T]](sr S, maskRow []int32, aCols []int32, aVals []T, bt *sparse.CSC[T], outIdx []int32, outVal []T) int {
	n := 0
	for _, j := range maskRow {
		if v, hit := dotNumericGalloping(sr, aCols, aVals, bt.Col(int(j)), bt.ColVals(int(j))); hit {
			outIdx[n] = j
			outVal[n] = v
			n++
		}
	}
	return n
}

// innerRowSymbolic counts output row i with early-exit dots.
func innerRowSymbolic(maskRow []int32, aCols []int32, btColPtr []int64, btRowIdx []int32) int {
	n := 0
	for _, j := range maskRow {
		lo, hi := btColPtr[j], btColPtr[j+1]
		if dotSymbolic(aCols, btRowIdx[lo:hi]) {
			n++
		}
	}
	return n
}

// bindInner registers the pull scheme. The CSC view of B lives on the
// executor (structure from the plan, values refreshed per execution;
// rebuilt wholesale per call for the SS:DOT baseline's
// TransposePerExecute) — which is why the kernels read e.bt at row
// time instead of capturing it.
func bindInner[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	sr, mask := p.sr, p.mask
	numeric := func(_, i int, outIdx []int32, outVal []T) int {
		return innerRowNumeric(sr, mask.Row(i), a.Row(i), a.RowVals(i), e.bt, outIdx, outVal)
	}
	if p.opt.InnerGallop {
		numeric = func(_, i int, outIdx []int32, outVal []T) int {
			return innerRowNumericGallop(sr, mask.Row(i), a.Row(i), a.RowVals(i), e.bt, outIdx, outVal)
		}
	}
	return kernels[T]{
		numeric: numeric,
		symbolic: func(_, i int) int {
			return innerRowSymbolic(mask.Row(i), a.Row(i), e.bt.ColPtr, e.bt.RowIdx)
		},
	}
}

// innerRowNumericComplement computes one complemented row: a dot
// product for every column *not* in the mask row. This is Θ(ncols) dots
// per row — the reason the paper excludes pull-based schemes from the
// complemented-mask benchmark (§8.4); provided for completeness and for
// cross-validation in tests.
func innerRowNumericComplement[T any, S semiring.Semiring[T]](sr S, cols int, maskRow []int32, aCols []int32, aVals []T, bt *sparse.CSC[T], outIdx []int32, outVal []T) int {
	n := 0
	q := 0
	for j := 0; j < cols; j++ {
		for q < len(maskRow) && int(maskRow[q]) < j {
			q++
		}
		if q < len(maskRow) && int(maskRow[q]) == j {
			continue
		}
		if v, hit := dotNumeric(sr, aCols, aVals, bt.Col(j), bt.ColVals(j)); hit {
			outIdx[n] = int32(j)
			outVal[n] = v
			n++
		}
	}
	return n
}

// innerRowSymbolicComplement counts one complemented row.
func innerRowSymbolicComplement(cols int, maskRow []int32, aCols []int32, btColPtr []int64, btRowIdx []int32) int {
	n := 0
	q := 0
	for j := 0; j < cols; j++ {
		for q < len(maskRow) && int(maskRow[q]) < j {
			q++
		}
		if q < len(maskRow) && int(maskRow[q]) == j {
			continue
		}
		lo, hi := btColPtr[j], btColPtr[j+1]
		if dotSymbolic(aCols, btRowIdx[lo:hi]) {
			n++
		}
	}
	return n
}

// bindInnerComplement registers the pull scheme for complemented
// masks.
func bindInnerComplement[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	sr, mask := p.sr, p.mask
	return kernels[T]{
		numeric: func(_, i int, outIdx []int32, outVal []T) int {
			return innerRowNumericComplement(sr, mask.Cols, mask.Row(i), a.Row(i), a.RowVals(i), e.bt, outIdx, outVal)
		},
		symbolic: func(_, i int) int {
			return innerRowSymbolicComplement(mask.Cols, mask.Row(i), a.Row(i), e.bt.ColPtr, e.bt.RowIdx)
		},
	}
}
