package core

import (
	"errors"
	"fmt"

	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Plan captures everything about a masked product C = M ⊙ (A·B) that
// depends only on the operands' *structure*: shape validation, the
// scheme's capability check, one-phase slab offsets (the mask's own
// layout for plain masks, the §5.2 bounds for complemented ones), B's
// CSC transpose for the pull-based schemes, the Hybrid per-row
// pull/push decisions, accumulator sizing hints, and the flops
// profile. Executing the plan then does only the numeric work.
//
// The applications the paper benchmarks are iterative — k-truss
// repeats C = M ⊙ (A·A) to a fixed point, betweenness runs one masked
// product per BFS level — and SuiteSparse-lineage libraries amortize
// exactly this symbolic analysis across repeated products. Plan is
// that amortization: analyze once with NewPlan, execute many times
// with Execute.
//
// A Plan (and the Executor behind it) is not safe for concurrent use.
type Plan[T any, S semiring.Semiring[T]] struct {
	sr   S
	opt  Options
	info SchemeInfo
	mask *sparse.Pattern

	// Planned operand structure, checked against Execute arguments.
	aRows, aCols int
	bRows, bCols int
	aNNZ, bNNZ   int64

	// offsets is the one-phase slab layout (nil under TwoPhase or for
	// direct schemes).
	offsets []int64
	// bt is B's cached CSC view for pull-based schemes; btPerm refreshes
	// its values in O(nnz) on every Execute, since callers may mutate B's
	// values in place between executions.
	bt     *sparse.CSC[T]
	btPerm []int64
	// pull is Hybrid's per-row §4.3 cost-model decision.
	pull []bool
	// heapNInspect is the resolved NInspect for the heap schemes.
	heapNInspect int
	// maxMaskRow / maxARow size the hash/MCA and heap accumulators.
	maxMaskRow, maxARow int
	// flops is the unmasked multiply–add count of A·B, the normalizer of
	// the paper's GFLOPS rates; computed on first use.
	flops     int64
	flopsDone bool

	exec *Executor[T, S]
	reg  schemeKernels[T, S]

	// Bound kernels are cached per (A, B) identity so steady-state
	// Execute calls allocate no closures.
	lastA, lastB *sparse.CSR[T]
	bound        kernels[T]
	haveBound    bool
}

// NewPlan validates and analyzes one masked product and returns a
// reusable execution plan. exec supplies the pooled workspaces; nil
// creates a private one. opt is normalized and frozen into the plan.
func NewPlan[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options, exec *Executor[T, S]) (*Plan[T, S], error) {
	if err := validate(mask, a, b); err != nil {
		return nil, err
	}
	opt.normalize()
	info, ok := LookupScheme(opt.Algorithm)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %v", opt.Algorithm)
	}
	if opt.Complement && !info.Complement {
		return nil, errors.New(info.ComplementNote)
	}
	if exec == nil {
		exec = NewExecutor[T](sr)
	}
	exec.ensureWorkers(opt.Threads)
	p := &Plan[T, S]{
		sr: sr, opt: opt, info: info, mask: mask,
		aRows: a.Rows, aCols: a.Cols, bRows: b.Rows, bCols: b.Cols,
		aNNZ: a.NNZ(), bNNZ: b.NNZ(),
		exec: exec, reg: kernelsForAlgo[T, S](opt.Algorithm),
	}
	if p.reg.direct == nil {
		if opt.Phases == OnePhase {
			if opt.Complement {
				p.offsets = complementBounds(mask, a, b, opt.Threads, opt.Grain)
			} else {
				p.offsets = mask.RowPtr
			}
		}
		if p.needsCSC() && !info.TransposePerExecute {
			p.bt, p.btPerm = sparse.ToCSCPerm(b)
		}
		switch opt.Algorithm {
		case AlgoHash, AlgoMCA:
			p.maxMaskRow = mask.MaxRowNNZ()
		case AlgoHeap, AlgoHeapDot:
			p.maxARow = a.MaxRowNNZ()
			p.heapNInspect = resolveHeapNInspect(opt)
		case AlgoHybrid:
			p.planHybrid(a, b)
		}
	}
	return p, nil
}

// needsCSC reports whether this plan's execution pulls from B by
// column.
func (p *Plan[T, S]) needsCSC() bool {
	if p.opt.Complement {
		return p.info.ComplementNeedsCSC
	}
	return p.info.NeedsCSC
}

// resolveHeapNInspect folds the HeapNInspect override into the
// per-algorithm default (1 for Heap, ∞ for HeapDot; §5.5).
func resolveHeapNInspect(opt Options) int {
	nInspect := 1
	if opt.Algorithm == AlgoHeapDot {
		nInspect = heapInspectInf
	}
	switch {
	case opt.HeapNInspect == HeapInspectNone:
		nInspect = 0
	case opt.HeapNInspect > 0:
		nInspect = opt.HeapNInspect
	}
	return nInspect
}

// planHybrid precomputes the §4.3 pull-vs-push decision for every
// output row. The decisions depend only on structure, so they are part
// of the plan, not of execution.
func (p *Plan[T, S]) planHybrid(a, b *sparse.CSR[T]) {
	chooser := &hybridChooser{bRowPtr: b.RowPtr}
	if b.Cols > 0 {
		chooser.avgBCol = float64(b.NNZ()) / float64(b.Cols)
	}
	p.pull = make([]bool, p.mask.Rows)
	parallel.ForEachBlock(p.mask.Rows, p.opt.Threads, p.opt.Grain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			p.pull[i] = chooser.pullWins(p.mask.Row(i), a.Row(i))
		}
	})
}

// Options returns the plan's normalized options.
func (p *Plan[T, S]) Options() Options { return p.opt }

// FlopsEstimate returns the unmasked multiply–add count of the planned
// product (cached after the first call). It needs the numeric A and B
// only for their structure, so any Execute-compatible pair works.
func (p *Plan[T, S]) FlopsEstimate(a, b *sparse.CSR[T]) int64 {
	if !p.flopsDone {
		p.flops = Flops(a, b)
		p.flopsDone = true
	}
	return p.flops
}

// checkArgs verifies an Execute argument pair matches the planned
// structure. The check is cheap (shapes and nnz); passing matrices
// with the same counts but different patterns is undefined behaviour,
// as documented on Execute.
func (p *Plan[T, S]) checkArgs(a, b *sparse.CSR[T]) error {
	if a.Rows != p.aRows || a.Cols != p.aCols || a.NNZ() != p.aNNZ {
		return fmt.Errorf("core: plan expects A %dx%d (nnz %d), got %dx%d (nnz %d)",
			p.aRows, p.aCols, p.aNNZ, a.Rows, a.Cols, a.NNZ())
	}
	if b.Rows != p.bRows || b.Cols != p.bCols || b.NNZ() != p.bNNZ {
		return fmt.Errorf("core: plan expects B %dx%d (nnz %d), got %dx%d (nnz %d)",
			p.bRows, p.bCols, p.bNNZ, b.Rows, b.Cols, b.NNZ())
	}
	return nil
}

// refreshCSC brings the cached CSC view of B up to date with the
// values of the matrix being executed. For the SS:DOT baseline the
// transpose is rebuilt wholesale every call — its defining overhead
// (§8.4); otherwise the cached transpose is value-refreshed through
// the recorded permutation on every call. The refresh cannot be
// skipped on pointer identity: the Execute contract lets callers
// mutate B's values in place between executions, so identity proves
// nothing about value freshness, and the O(nnz) copy is within every
// pull scheme's numeric work anyway.
func (p *Plan[T, S]) refreshCSC(b *sparse.CSR[T]) {
	if !p.needsCSC() {
		return
	}
	if p.info.TransposePerExecute {
		p.bt = sparse.ToCSC(b)
		return
	}
	for i, q := range p.btPerm {
		p.bt.Val[i] = b.Val[q]
	}
}

// kernelsFor returns the scheme's row kernels bound to (a, b), reusing
// the previous binding when the operands are the same matrices.
func (p *Plan[T, S]) kernelsFor(a, b *sparse.CSR[T]) kernels[T] {
	if p.haveBound && p.lastA == a && p.lastB == b {
		return p.bound
	}
	bind := p.reg.plain
	if p.opt.Complement {
		bind = p.reg.complement
	}
	p.bound = bind(p, a, b)
	p.lastA, p.lastB = a, b
	p.haveBound = true
	return p.bound
}

// Execute runs the planned product on (a, b), which must have the
// structure the plan was built from (values may differ — that is the
// point of reuse). Output rows are sorted.
//
// With Options.ReuseOutput set, the returned matrix is backed by
// executor-owned buffers and stays valid only until the next Execute
// on any plan sharing this executor; Clone it to retain. Without it
// (the default) the output is freshly allocated and only the internal
// scratch is pooled.
func (p *Plan[T, S]) Execute(a, b *sparse.CSR[T]) (*sparse.CSR[T], error) {
	if err := p.checkArgs(a, b); err != nil {
		return nil, err
	}
	if p.reg.direct != nil {
		return p.reg.direct(p, a, b)
	}
	p.refreshCSC(b)
	k := p.kernelsFor(a, b)
	es := &p.exec.scratch
	es.reuseOut = p.opt.ReuseOutput
	if p.opt.Phases == TwoPhase {
		return twoPhase(p.mask.Rows, p.mask.Cols, p.opt.Threads, p.opt.Grain, k.symbolic, k.numeric, es), nil
	}
	return onePhase(p.mask.Rows, p.mask.Cols, p.offsets, p.opt.Threads, p.opt.Grain, k.numeric, es), nil
}
