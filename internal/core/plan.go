package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"maskedspgemm/internal/faultinject"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Plan captures everything about a masked product C = M ⊙ (A·B) that
// depends only on the operands' *structure*: shape validation, the
// scheme's capability check, one-phase slab offsets (the mask's own
// layout for plain masks, the §5.2 bounds for complemented ones), the
// CSC structure of B for the pull-based schemes, the Hybrid per-row
// pull/push decisions, accumulator sizing hints, and the flops
// profile. Executing the plan then does only the numeric work.
//
// The applications the paper benchmarks are iterative — k-truss
// repeats C = M ⊙ (A·A) to a fixed point, betweenness runs one masked
// product per BFS level — and SuiteSparse-lineage libraries amortize
// exactly this symbolic analysis across repeated products. Plan is
// that amortization: analyze once with NewPlan, execute many times
// with Execute.
//
// A Plan is immutable after NewPlan and therefore safe to share across
// goroutines — this is what lets a PlanCache hand one plan to many
// concurrent requests. All mutable execution state (accumulators,
// slabs, the refreshed CSC values of B, bound kernels) lives in the
// Executor, which is NOT concurrency-safe: concurrent executions of a
// shared plan must each use their own executor (ExecuteOn), typically
// checked out of an ExecutorPool.
//
//mspgemm:immutable
type Plan[T any, S semiring.Semiring[T]] struct {
	sr   S
	opt  Options
	info SchemeInfo
	mask *sparse.Pattern

	// Planned operand structure, checked against Execute arguments.
	aRows, aCols int
	bRows, bCols int
	aNNZ, bNNZ   int64

	// offsets is the one-phase slab layout (nil under TwoPhase or for
	// direct schemes). For plain masks it aliases mask.RowPtr.
	offsets []int64
	// btPtr/btIdx/btPerm are the CSC *structure* of B for pull-based
	// schemes. Values are not part of the plan: every ExecuteOn
	// refreshes them through btPerm into an executor-owned buffer,
	// since callers may mutate B's values in place between executions.
	btPtr  []int64
	btIdx  []int32
	btPerm []int64
	// runEnds/runFam are AlgoHybrid's per-row poly-algorithm bindings
	// (DESIGN.md §10), encoded as runs of consecutive rows sharing one
	// accumulator family: run r covers rows [runEnds[r-1], runEnds[r])
	// and executes Family(runFam[r]). polyFams is the set of families
	// bound by at least one run — exactly the accumulators executions
	// of this plan materialize.
	runEnds  []int32
	runFam   []uint8
	polyFams FamilySet
	// sched is the resolved scheduling strategy (never SchedAuto) and
	// partBounds the equal-cost partition boundaries it uses under
	// SchedCostPartition; costSkew is the measured max/mean row-cost
	// ratio that drove the SchedAuto policy (DESIGN.md §9).
	sched      Schedule
	partBounds []int
	costSkew   float64
	// profile is the retained per-row cost picture the replanner
	// re-splits or re-binds from (DESIGN.md §14); nil when scheduling
	// analysis was skipped (cost-blind schedules, small serial plans,
	// direct schemes).
	profile *costProfile
	// heapNInspect is the resolved NInspect for the heap schemes.
	heapNInspect int
	// maxMaskRow / maxARow size the hash/MCA and heap accumulators.
	maxMaskRow, maxARow int
	// flops is the unmasked multiply–add count of A·B, the normalizer of
	// the paper's GFLOPS rates; computed on first use (flopsOnce makes
	// the lazy computation safe on shared plans).
	flops     int64
	flopsOnce sync.Once

	// exec is the plan's default executor, used by the single-owner
	// Execute path. Detached plans (built for a PlanCache) have none and
	// are executed via ExecuteOn.
	exec *Executor[T, S]
	reg  schemeKernels[T, S]
}

// NewPlan validates and analyzes one masked product and returns a
// reusable execution plan. exec supplies the pooled workspaces; nil
// creates a private one. opt is normalized and frozen into the plan.
//
//mspgemm:planwrite
func NewPlan[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options, exec *Executor[T, S]) (*Plan[T, S], error) {
	p, err := newDetachedPlan(sr, mask, a, b, opt)
	if err != nil {
		return nil, err
	}
	if exec == nil {
		exec = NewExecutor[T](sr)
	}
	exec.ensureWorkers(p.opt.Threads)
	p.exec = exec
	return p, nil
}

// newDetachedPlan builds the immutable analysis without binding an
// executor — the form a PlanCache stores and shares across goroutines.
//
//mspgemm:planwrite
func newDetachedPlan[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) (*Plan[T, S], error) {
	if err := validate(mask, a, b); err != nil {
		return nil, err
	}
	opt.normalize()
	info, ok := LookupScheme(opt.Algorithm)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %v", opt.Algorithm)
	}
	if opt.Complement && !info.Complement {
		return nil, errors.New(info.ComplementNote)
	}
	p := &Plan[T, S]{
		sr: sr, opt: opt, info: info, mask: mask,
		aRows: a.Rows, aCols: a.Cols, bRows: b.Rows, bCols: b.Cols,
		aNNZ: a.NNZ(), bNNZ: b.NNZ(),
		reg: kernelsForAlgo[T, S](opt.Algorithm),
	}
	if p.reg.direct == nil {
		if opt.Phases == OnePhase {
			if opt.Complement {
				p.offsets = complementBounds(mask, a, b, opt.Threads, opt.Grain)
			} else {
				p.offsets = mask.RowPtr
			}
		}
		var polyCost []int64
		switch opt.Algorithm {
		case AlgoHash, AlgoMCA:
			p.maxMaskRow = mask.MaxRowNNZ()
		case AlgoHeap, AlgoHeapDot:
			p.maxARow = a.MaxRowNNZ()
			p.heapNInspect = resolveHeapNInspect(opt)
		case AlgoHybrid:
			// The chosen costs feed planSchedule; skip the vector when
			// its early returns would discard it (mirrors its policy:
			// serial plans still profile once the structure is big
			// enough for a later re-bind to matter).
			needCost := opt.Schedule != SchedFixedGrain && opt.Schedule != SchedWorkSteal &&
				(opt.Threads > 1 || mask.Rows >= profileMinRows)
			polyCost = p.planHybrid(a, b, needCost)
			// Sizing hints only for the families some run actually
			// bound — unused families must stay costless. Only the
			// plain-mask Hash/MCA binders read maxMaskRow (the
			// complement hash sizes per row by the generation bound).
			if !opt.Complement && (p.polyFams.Has(FamHash) || p.polyFams.Has(FamMCA)) {
				p.maxMaskRow = mask.MaxRowNNZ()
			}
			if p.polyFams.Has(FamHeap) {
				p.maxARow = a.MaxRowNNZ()
				p.heapNInspect = resolveHeapNInspect(opt)
			}
		}
		// The CSC structure comes after the scheme analysis: a poly
		// plan pulls from B by column only when some run bound FamPull.
		if p.needsCSC() && !info.TransposePerExecute {
			p.btPtr, p.btIdx, p.btPerm = sparse.ToCSCStructure(b)
		}
		// Scheduling comes last: the per-row poly costs double as the
		// scheduling profile.
		p.planSchedule(a, b, polyCost)
	}
	return p, nil
}

// needsCSC reports whether this plan's execution pulls from B by
// column. For poly plans (AlgoHybrid) the registry capability is
// refined to whether any row actually bound the pull family.
func (p *Plan[T, S]) needsCSC() bool {
	if p.opt.Algorithm == AlgoHybrid {
		return p.polyFams.Has(FamPull)
	}
	if p.opt.Complement {
		return p.info.ComplementNeedsCSC
	}
	return p.info.NeedsCSC
}

// resolveHeapNInspect folds the HeapNInspect override into the
// per-algorithm default (1 for Heap, ∞ for HeapDot; §5.5).
func resolveHeapNInspect(opt Options) int {
	nInspect := 1
	if opt.Algorithm == AlgoHeapDot {
		nInspect = heapInspectInf
	}
	switch {
	case opt.HeapNInspect == HeapInspectNone:
		nInspect = 0
	case opt.HeapNInspect > 0:
		nInspect = opt.HeapNInspect
	}
	return nInspect
}

// Options returns the plan's normalized options.
func (p *Plan[T, S]) Options() Options { return p.opt }

// FlopsEstimate returns the unmasked multiply–add count of the planned
// product (cached after the first call; safe on shared plans). It
// needs the numeric A and B only for their structure, so any
// Execute-compatible pair works. The once-guarded write to p.flops is
// the one sanctioned post-construction mutation.
//
//mspgemm:planwrite
func (p *Plan[T, S]) FlopsEstimate(a, b *sparse.CSR[T]) int64 {
	p.flopsOnce.Do(func() {
		p.flops = Flops(a, b)
	})
	return p.flops
}

// footprintBytes estimates the retained memory of the plan's analysis
// arrays, the unit a PlanCache's byte bound meters. The mask is
// counted because cached plans own a private clone of it; one-phase
// plain offsets alias the mask's RowPtr and are not double-counted.
func (p *Plan[T, S]) footprintBytes() int64 {
	const structOverhead = 256
	bytes := int64(structOverhead)
	bytes += int64(len(p.mask.RowPtr))*8 + int64(len(p.mask.ColIdx))*4
	if len(p.offsets) > 0 && (len(p.mask.RowPtr) == 0 || &p.offsets[0] != &p.mask.RowPtr[0]) {
		bytes += int64(len(p.offsets)) * 8
	}
	bytes += int64(len(p.btPtr))*8 + int64(len(p.btIdx))*4 + int64(len(p.btPerm))*8
	bytes += int64(len(p.runEnds))*4 + int64(len(p.runFam))
	bytes += int64(len(p.partBounds)) * 8
	if p.profile != nil {
		bytes += int64(len(p.profile.rowCost))*8 + int64(len(p.profile.rowFlops))*8 +
			int64(len(p.profile.rowANNZ))*4
	}
	return bytes
}

// checkArgs verifies an Execute argument pair matches the planned
// structure. The check is cheap (shapes and nnz); passing matrices
// with the same counts but different patterns is undefined behaviour,
// as documented on Execute.
func (p *Plan[T, S]) checkArgs(a, b *sparse.CSR[T]) error {
	if a.Rows != p.aRows || a.Cols != p.aCols || a.NNZ() != p.aNNZ {
		return fmt.Errorf("core: plan expects A %dx%d (nnz %d), got %dx%d (nnz %d)",
			p.aRows, p.aCols, p.aNNZ, a.Rows, a.Cols, a.NNZ())
	}
	if b.Rows != p.bRows || b.Cols != p.bCols || b.NNZ() != p.bNNZ {
		return fmt.Errorf("core: plan expects B %dx%d (nnz %d), got %dx%d (nnz %d)",
			p.bRows, p.bCols, p.bNNZ, b.Rows, b.Cols, b.NNZ())
	}
	return nil
}

// Execute runs the planned product on (a, b) using the plan's default
// executor — the single-owner path. Plans built for a PlanCache have
// no default executor (they are shared, and an executor must not be);
// execute those with ExecuteOn.
func (p *Plan[T, S]) Execute(a, b *sparse.CSR[T]) (*sparse.CSR[T], error) {
	if p.exec == nil {
		return nil, errors.New("core: shared plan has no default executor; use ExecuteOn with an owned executor")
	}
	return p.ExecuteOn(p.exec, a, b)
}

// ExecuteOn runs the planned product on (a, b) drawing all mutable
// execution state from exec. (a, b) must have the structure the plan
// was built from (values may differ — that is the point of reuse).
// Output rows are sorted.
//
// The plan itself is read-only here, so any number of goroutines may
// ExecuteOn one shared plan concurrently, provided each uses its own
// executor that it owns exclusively for the duration of the call (the
// ExecutorPool checkout contract, DESIGN.md §8).
//
// With Options.ReuseOutput set at plan time, the returned matrix is
// backed by executor-owned buffers and stays valid only until the next
// execution on the same executor — for pooled executors that means
// until the executor is returned; Clone the result to retain it.
// Without it (the default) the output is freshly allocated and only
// the internal scratch is pooled.
//
// ExecuteOn applies the execution-only options frozen into the plan;
// cache-shared plans are built with those zeroed (plan identity never
// includes them), so serving layers that honor per-request telemetry
// or output-ownership choices use ExecuteOnOpts.
func (p *Plan[T, S]) ExecuteOn(exec *Executor[T, S], a, b *sparse.CSR[T]) (*sparse.CSR[T], error) {
	return p.ExecuteOnOpts(exec, a, b, p.opt.ExecOnly())
}

// ExecuteOnOpts is ExecuteOn with the execution-only options supplied
// per call instead of read from the plan. This is what lets one cached
// plan serve requests that differ only in telemetry (CollectSchedStats)
// or output ownership (ReuseOutput): those knobs never affect the
// analysis, so they are not part of plan identity — they are decided
// here, at execution time.
//
// Fault containment (DESIGN.md §15): a latched eo.Cancel token stops
// the execution at the next block claim or pass checkpoint and returns
// a *CanceledError naming the interrupted pass; a panic anywhere in
// the execution — kernel workers included — is recovered here and
// returned as a *KernelPanicError. In both cases the executor's
// scratch may be half-mutated, so pooled executors must be discarded
// (ExecutorPool.Discard), not returned.
func (p *Plan[T, S]) ExecuteOnOpts(exec *Executor[T, S], a, b *sparse.CSR[T], eo ExecOptions) (out *sparse.CSR[T], err error) {
	if exec == nil {
		return nil, errors.New("core: ExecuteOn requires an executor")
	}
	if eo.CollectSchedStats {
		// Reset before argument validation and the direct-scheme branch:
		// an execution that errors early or collects no telemetry (direct
		// schemes have no row passes) must read as empty, not replay the
		// previous execution's record.
		exec.schedStats.Reset(p.opt.Threads)
	}
	if err := p.checkArgs(a, b); err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, asKernelPanic(p.opt.SchemeName(), r)
		}
	}()
	fi := faultinject.Active()
	cancel := eo.Cancel
	if fi != nil && cancel == nil {
		// The cancel-at-checkpoint fault needs a token to latch even
		// when the caller supplied none.
		cancel = new(parallel.CancelToken)
	}
	if p.reg.direct != nil {
		return p.reg.direct(p, a, b)
	}
	exec.ensureWorkers(p.opt.Threads)
	exec.prepareCSC(p, b)
	k := exec.kernelsFor(p, a, b)
	es := &exec.scratch
	es.reuseOut = eo.ReuseOutput
	sch := rowSched{threads: p.opt.Threads, grain: p.opt.Grain, mode: p.sched, bounds: p.partBounds,
		cancel: cancel, fi: fi}
	if eo.CollectSchedStats {
		sch.stats = &exec.schedStats
	}
	if p.opt.Phases == TwoPhase {
		return twoPhase(p.mask.Rows, p.mask.Cols, sch, k, es)
	}
	return onePhase(p.mask.Rows, p.mask.Cols, p.offsets, sch, k, es)
}

// ExecuteOnCtx is ExecuteOnOpts bounded by a context: when ctx can be
// canceled, a watcher goroutine latches the execution's cancel token
// the moment ctx is done, and the execution returns *CanceledError at
// its next checkpoint. The watcher is torn down before returning. A
// caller-supplied eo.Cancel token is shared with the context watcher;
// otherwise a fresh token is created for the call.
func (p *Plan[T, S]) ExecuteOnCtx(ctx context.Context, exec *Executor[T, S], a, b *sparse.CSR[T], eo ExecOptions) (*sparse.CSR[T], error) {
	if done := ctx.Done(); done != nil {
		if eo.Cancel == nil {
			eo.Cancel = new(parallel.CancelToken)
		}
		token := eo.Cancel
		if ctx.Err() != nil {
			// Already canceled: latch synchronously so the execution
			// deterministically stops at its first checkpoint instead
			// of racing the watcher goroutine.
			token.Cancel()
		} else {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					token.Cancel()
				case <-stop:
				}
			}()
		}
	}
	return p.ExecuteOnOpts(exec, a, b, eo)
}

// SchedStats returns the default executor's scheduler telemetry from
// the most recent execution run with Options.CollectSchedStats (see
// Executor.SchedStats). Zero for detached (cache-built) plans, which
// have no default executor.
func (p *Plan[T, S]) SchedStats() parallel.SchedStats {
	if p.exec == nil {
		return parallel.SchedStats{}
	}
	return p.exec.SchedStats()
}
