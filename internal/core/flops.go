package core

import (
	"sync/atomic"

	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/sparse"
)

// flopsSerialCutoff is the nnz(A) bound below which the flop counters
// run inline on the calling goroutine: a straight loop with no
// goroutines, no closure, and zero heap allocations (asserted by
// TestFlopsAllocFree). Above it, per-block partial sums fold into one
// atomic total — one Add per scheduled block, never an O(rows) slice.
const flopsSerialCutoff = 1 << 15

// Flops returns the multiply–add count of the unmasked product A·B in
// Gustavson form: Σ_{(i,k) ∈ A} nnz(B_k*). The paper's GFLOPS figures
// (Figs 10, 14) use 2·Flops (one multiply + one add per partial
// product); see internal/bench.
func Flops[T any](a, b *sparse.CSR[T]) int64 {
	if a.NNZ() <= flopsSerialCutoff {
		return flopsRange(a, b, 0, a.Rows)
	}
	var total atomic.Int64
	parallel.ForEachBlock(a.Rows, 0, parallel.DefaultGrain, func(lo, hi, _ int) {
		total.Add(flopsRange(a, b, lo, hi))
	})
	return total.Load()
}

// flopsRange sums the Gustavson flops of rows [lo, hi).
func flopsRange[T any](a, b *sparse.CSR[T], lo, hi int) int64 {
	var f int64
	for i := lo; i < hi; i++ {
		for _, k := range a.Row(i) {
			f += b.RowPtr[k+1] - b.RowPtr[k]
		}
	}
	return f
}

// MaskedFlops returns the multiply–add count that actually lands on
// admitted mask positions: Σ over (i,k) ∈ A of |{j ∈ B_k* : M_ij
// admitted}|. This is the useful work of a masked multiply; the gap
// between Flops and MaskedFlops is the waste a mask-oblivious algorithm
// pays (Figure 1).
func MaskedFlops[T any](mask *sparse.Pattern, a, b *sparse.CSR[T], complement bool) int64 {
	if maskedFlopsSerialOK(mask, a, b) {
		return maskedFlopsRange(mask, a, b, complement, 0, a.Rows)
	}
	var total atomic.Int64
	parallel.ForEachBlock(a.Rows, 0, parallel.DefaultGrain, func(lo, hi, _ int) {
		total.Add(maskedFlopsRange(mask, a, b, complement, lo, hi))
	})
	return total.Load()
}

// maskedFlopsSerialOK reports whether the masked count is cheap enough
// to run inline. Unlike Flops, whose work is O(nnz(A)), the masked
// count merges each A entry's B row against its mask row, so the real
// work is Σ_i nnz(A_i*)·nnz(m_i) plus the generated flops — a
// small-nnz(A) matrix against dense B rows or masks must still go
// parallel. The bound is estimated in one O(rows + nnz(A)) sweep with
// early exit, allocation-free.
func maskedFlopsSerialOK[T any](mask *sparse.Pattern, a, b *sparse.CSR[T]) bool {
	var work int64
	for i := 0; i < a.Rows; i++ {
		aRow := a.Row(i)
		work += int64(len(aRow)) * int64(mask.RowNNZ(i))
		for _, k := range aRow {
			work += b.RowPtr[k+1] - b.RowPtr[k]
		}
		if work > flopsSerialCutoff {
			return false
		}
	}
	return true
}

// maskedFlopsRange counts the on-mask flops of rows [lo, hi).
func maskedFlopsRange[T any](mask *sparse.Pattern, a, b *sparse.CSR[T], complement bool, lo, hi int) int64 {
	var total int64
	for i := lo; i < hi; i++ {
		maskRow := mask.Row(i)
		var f int64
		for _, k := range a.Row(i) {
			bCols := b.ColIdx[b.RowPtr[k]:b.RowPtr[k+1]]
			if complement {
				q := 0
				for _, j := range bCols {
					for q < len(maskRow) && maskRow[q] < j {
						q++
					}
					if q >= len(maskRow) || maskRow[q] != j {
						f++
					}
				}
			} else {
				p, q := 0, 0
				for p < len(bCols) && q < len(maskRow) {
					switch {
					case bCols[p] < maskRow[q]:
						p++
					case bCols[p] > maskRow[q]:
						q++
					default:
						f++
						p++
						q++
					}
				}
			}
		}
		total += f
	}
	return total
}
