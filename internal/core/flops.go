package core

import (
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/sparse"
)

// Flops returns the multiply–add count of the unmasked product A·B in
// Gustavson form: Σ_{(i,k) ∈ A} nnz(B_k*). The paper's GFLOPS figures
// (Figs 10, 14) use 2·Flops (one multiply + one add per partial
// product); see internal/bench.
func Flops[T any](a, b *sparse.CSR[T]) int64 {
	rowFlops := make([]int64, a.Rows)
	parallel.ForEachBlock(a.Rows, 0, parallel.DefaultGrain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			var f int64
			for _, k := range a.Row(i) {
				f += b.RowPtr[k+1] - b.RowPtr[k]
			}
			rowFlops[i] = f
		}
	})
	var total int64
	for _, f := range rowFlops {
		total += f
	}
	return total
}

// MaskedFlops returns the multiply–add count that actually lands on
// admitted mask positions: Σ over (i,k) ∈ A of |{j ∈ B_k* : M_ij
// admitted}|. This is the useful work of a masked multiply; the gap
// between Flops and MaskedFlops is the waste a mask-oblivious algorithm
// pays (Figure 1).
func MaskedFlops[T any](mask *sparse.Pattern, a, b *sparse.CSR[T], complement bool) int64 {
	rowFlops := make([]int64, a.Rows)
	parallel.ForEachBlock(a.Rows, 0, parallel.DefaultGrain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			maskRow := mask.Row(i)
			var f int64
			for _, k := range a.Row(i) {
				bCols := b.ColIdx[b.RowPtr[k]:b.RowPtr[k+1]]
				if complement {
					q := 0
					for _, j := range bCols {
						for q < len(maskRow) && maskRow[q] < j {
							q++
						}
						if q >= len(maskRow) || maskRow[q] != j {
							f++
						}
					}
				} else {
					p, q := 0, 0
					for p < len(bCols) && q < len(maskRow) {
						switch {
						case bCols[p] < maskRow[q]:
							p++
						case bCols[p] > maskRow[q]:
							q++
						default:
							f++
							p++
							q++
						}
					}
				}
			}
			rowFlops[i] = f
		}
	})
	var total int64
	for _, f := range rowFlops {
		total += f
	}
	return total
}
