package core

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Complemented-mask push drivers (§5.2): C = ¬M ⊙ (A·B). The default
// accumulator state flips to ALLOWED, mask keys are excluded, and
// because the admitted key set is not enumerable the accumulators track
// inserted keys and sort them at gather. One-phase output slabs are
// sized by the per-row bound min(cols − nnz(m_i), Σ nnz(B_k*)).

// pushAccC is the complement accumulator protocol shared by MSAC and
// HashC.
type pushAccC[T any] interface {
	BeginSized(maskRow []int32, bound int)
	Insert(key int32, a, b T)
	Gather(outIdx []int32, outVal []T) int
	BeginSymbolicSized(maskRow []int32, bound int)
	InsertPattern(key int32)
	EndSymbolic() int
}

// rowGenBound returns Σ_{k : A_ik ≠ 0} nnz(B_k*), the population bound
// for row i's complement accumulator.
func rowGenBound[T any](aCols []int32, b *sparse.CSR[T]) int {
	rowPtr := b.RowPtr
	var gen int64
	for _, k := range aCols {
		c := int(uint32(k))
		rp := rowPtr[c : c+2]
		gen += rp[1] - rp[0]
	}
	return int(gen)
}

// pushRowNumericC computes one complemented output row. The body uses
// the same bounds-check-elimination hints as pushRowNumeric.
func pushRowNumericC[T any, A pushAccC[T]](acc A, maskRow []int32, aCols []int32, aVals []T, b *sparse.CSR[T], outIdx []int32, outVal []T) int {
	acc.BeginSized(maskRow, rowGenBound(aCols, b))
	aVals = aVals[:len(aCols)]
	rowPtr := b.RowPtr
	colIdx := b.ColIdx
	vals := b.Val[:len(colIdx)]
	for k, col := range aCols {
		c := int(uint32(col))
		rp := rowPtr[c : c+2]
		lo, hi := rp[0], rp[1]
		bCols := colIdx[lo:hi]
		bVals := vals[lo:hi]
		av := aVals[k]
		for t, j := range bCols {
			acc.Insert(j, av, bVals[t])
		}
	}
	return acc.Gather(outIdx, outVal)
}

// pushRowSymbolicC counts one complemented output row.
func pushRowSymbolicC[T any, A pushAccC[T]](acc A, maskRow []int32, aCols []int32, b *sparse.CSR[T]) int {
	acc.BeginSymbolicSized(maskRow, rowGenBound(aCols, b))
	rowPtr := b.RowPtr
	colIdx := b.ColIdx
	for _, col := range aCols {
		c := int(uint32(col))
		rp := rowPtr[c : c+2]
		lo, hi := rp[0], rp[1]
		for _, j := range colIdx[lo:hi] {
			acc.InsertPattern(j)
		}
	}
	return acc.EndSymbolic()
}

// pushKernelsC builds the row kernels of a complement push scheme over
// any accumulator obtained per worker from getAcc.
func pushKernelsC[T any, A pushAccC[T]](mask *sparse.Pattern, a, b *sparse.CSR[T], getAcc func(tid int) A) kernels[T] {
	return kernels[T]{
		numeric: func(tid, i int, outIdx []int32, outVal []T) int {
			return pushRowNumericC(getAcc(tid), mask.Row(i), a.Row(i), a.RowVals(i), b, outIdx, outVal)
		},
		symbolic: func(tid, i int) int {
			return pushRowSymbolicC[T](getAcc(tid), mask.Row(i), a.Row(i), b)
		},
	}
}

// bindMSAC registers complemented MSA (§5.2). It also serves as the
// MSAEpoch complement fallback — the epoch variant has no complement
// form of its own.
func bindMSAC[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	exec, ncols := e, b.Cols
	return pushKernelsC(p.mask, a, b, func(tid int) *accum.MSAC[T, S] {
		return exec.worker(tid).MSAC(ncols)
	})
}

// bindMaskedBitC registers the complemented bitmap-state variant
// (DESIGN.md §12). Like MSAC it is a dense-array accumulator, so the
// per-row bound only feeds the shared protocol, never a resize.
func bindMaskedBitC[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	exec, ncols := e, b.Cols
	return pushKernelsC(p.mask, a, b, func(tid int) *accum.MaskedBitC[T, S] {
		return exec.worker(tid).MaskedBitC(ncols)
	})
}

// bindHashC registers the complemented hash scheme. Tables grow per
// row to the row's population bound.
func bindHashC[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	exec, lf := e, p.opt.HashLoadFactor
	return pushKernelsC(p.mask, a, b, func(tid int) *accum.HashC[T, S] {
		return exec.worker(tid).HashC(lf)
	})
}
