package core

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Complemented-mask push drivers (§5.2): C = ¬M ⊙ (A·B). The default
// accumulator state flips to ALLOWED, mask keys are excluded, and
// because the admitted key set is not enumerable the accumulators track
// inserted keys and sort them at gather. One-phase output slabs are
// sized by the per-row bound min(cols − nnz(m_i), Σ nnz(B_k*)).

// pushAccC is the complement accumulator protocol shared by MSAC and
// HashC.
type pushAccC[T any] interface {
	BeginSized(maskRow []int32, bound int)
	Insert(key int32, a, b T)
	Gather(outIdx []int32, outVal []T) int
	BeginSymbolicSized(maskRow []int32, bound int)
	InsertPattern(key int32)
	EndSymbolic() int
}

// rowGenBound returns Σ_{k : A_ik ≠ 0} nnz(B_k*), the population bound
// for row i's complement accumulator.
func rowGenBound[T any](aCols []int32, b *sparse.CSR[T]) int {
	var gen int64
	for _, k := range aCols {
		gen += b.RowPtr[k+1] - b.RowPtr[k]
	}
	return int(gen)
}

// pushRowNumericC computes one complemented output row.
func pushRowNumericC[T any, A pushAccC[T]](acc A, maskRow []int32, aCols []int32, aVals []T, b *sparse.CSR[T], outIdx []int32, outVal []T) int {
	acc.BeginSized(maskRow, rowGenBound(aCols, b))
	for k, col := range aCols {
		lo, hi := b.RowPtr[col], b.RowPtr[col+1]
		bCols := b.ColIdx[lo:hi]
		bVals := b.Val[lo:hi]
		av := aVals[k]
		for t, j := range bCols {
			acc.Insert(j, av, bVals[t])
		}
	}
	return acc.Gather(outIdx, outVal)
}

// pushRowSymbolicC counts one complemented output row.
func pushRowSymbolicC[T any, A pushAccC[T]](acc A, maskRow []int32, aCols []int32, b *sparse.CSR[T]) int {
	acc.BeginSymbolicSized(maskRow, rowGenBound(aCols, b))
	for _, col := range aCols {
		lo, hi := b.RowPtr[col], b.RowPtr[col+1]
		for _, j := range b.ColIdx[lo:hi] {
			acc.InsertPattern(j)
		}
	}
	return acc.EndSymbolic()
}

// pushMultiplyComplement drives a complement push algorithm in either
// phase mode.
func pushMultiplyComplement[T any, A pushAccC[T]](mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options, newAcc func() A) *sparse.CSR[T] {
	slots := make([]A, opt.Threads)
	have := make([]bool, opt.Threads)
	get := func(tid int) A {
		if !have[tid] {
			slots[tid] = newAcc()
			have[tid] = true
		}
		return slots[tid]
	}
	numeric := func(tid, i int, outIdx []int32, outVal []T) int {
		return pushRowNumericC(get(tid), mask.Row(i), a.Row(i), a.RowVals(i), b, outIdx, outVal)
	}
	if opt.Phases == TwoPhase {
		symbolic := func(tid, i int) int {
			return pushRowSymbolicC[T](get(tid), mask.Row(i), a.Row(i), b)
		}
		return twoPhase(mask.Rows, mask.Cols, opt.Threads, opt.Grain, symbolic, numeric)
	}
	offsets := complementBounds(mask, a, b, opt.Threads, opt.Grain)
	return onePhase(mask.Rows, mask.Cols, offsets, opt.Threads, opt.Grain, numeric)
}

// multiplyMSAComplement runs complemented MSA (§5.2).
func multiplyMSAComplement[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) *sparse.CSR[T] {
	return pushMultiplyComplement(mask, a, b, opt, func() *accum.MSAC[T, S] {
		return accum.NewMSAC[T](sr, b.Cols)
	})
}

// multiplyHashComplement runs the complemented hash scheme. Tables grow
// per row to the row's population bound.
func multiplyHashComplement[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) *sparse.CSR[T] {
	return pushMultiplyComplement(mask, a, b, opt, func() *accum.HashC[T, S] {
		return accum.NewHashC[T](sr, 16, opt.HashLoadFactor)
	})
}
