// Package core implements the paper's masked SpGEMM algorithms: the
// push-based row-by-row family (MSA, Hash, MCA, Heap — §5) in one-phase
// and two-phase (symbolic+numeric, §6) forms, the pull-based
// inner-product algorithm (§4.1), the complemented-mask variants, and
// the SuiteSparse:GraphBLAS-style baselines used for comparison (§3,
// §8).
package core

import (
	"fmt"

	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/sparse"
)

// Algorithm selects the masked SpGEMM scheme. Names follow §8's
// evaluation: MSA, Hash, MCA, Heap (NInspect=1), HeapDot (NInspect=∞),
// Inner, plus the two baselines standing in for SS:SAXPY and SS:DOT.
type Algorithm uint8

const (
	// AlgoMSA is the push algorithm over the Masked Sparse Accumulator
	// (§5.2).
	AlgoMSA Algorithm = iota
	// AlgoMSAEpoch is MSA with epoch-stamped O(1)-reset states; the
	// reset-strategy ablation (DESIGN.md §6), not a paper scheme.
	AlgoMSAEpoch
	// AlgoHash is the push algorithm over the open-addressing hash
	// accumulator with load factor 0.25 (§5.3).
	AlgoHash
	// AlgoMCA is the push algorithm over the novel Mask Compressed
	// Accumulator (§5.4). MCA does not support complemented masks.
	AlgoMCA
	// AlgoHeap is the heap (multi-way merge) algorithm with NInspect=1
	// (§5.5).
	AlgoHeap
	// AlgoHeapDot is the heap algorithm with NInspect=∞: every iterator
	// is merged against the whole remaining mask before being pushed
	// (§5.5, §8: "HeapDot").
	AlgoHeapDot
	// AlgoInner is the pull-based inner-product algorithm: one sparse
	// dot product per admitted mask entry, with B accessed by column
	// (§4.1).
	AlgoInner
	// AlgoSaxpyThenMask is the naive baseline of Figure 1: a full
	// unmasked Gustavson SpGEMM followed by applying the mask to the
	// output. Stands in for the saxpy-family SS:GB path the paper
	// compares against.
	AlgoSaxpyThenMask
	// AlgoDotTranspose is the dot-product baseline that, like SS:DOT as
	// described in §8.4, re-transposes B on every call before running
	// inner products.
	AlgoDotTranspose
	// AlgoHybrid is the per-row poly-algorithm — the scheme §9 lists
	// as future work, in full: every output row is bound at plan time
	// to the cheapest admissible accumulator family (MSA, Hash, MCA,
	// Heap, pull-based Inner, or MaskedBit) under the registry's
	// per-family cost models, and consecutive rows sharing a binding
	// execute as one run (DESIGN.md §10). Complemented masks bind
	// among the complement-capable families (never MCA).
	AlgoHybrid
	// AlgoMaskedBit is the push algorithm over the bitmap-state masked
	// accumulator: the MSA's state byte per column collapsed into
	// allowed/set bits plus a values array kept at the semiring zero,
	// making insert a fused add gated by one bit test (DESIGN.md §12).
	// Appended after AlgoHybrid so existing Algorithm values — part of
	// plan-cache keys — keep their numbering.
	AlgoMaskedBit
)

// The Algorithm name, the evaluation-order enumerations, and the
// capability queries (String, Algorithms, PaperAlgorithms,
// SupportsComplement) all derive from the scheme registry in
// scheme.go.

// HeapNInspect sentinel values (§5.5's NInspect parameter).
const (
	// HeapInspectDefault keeps the algorithm's own NInspect (1 for
	// AlgoHeap, ∞ for AlgoHeapDot).
	HeapInspectDefault = 0
	// HeapInspectNone pushes iterators without inspecting the mask —
	// the paper's NInspect = 0 configuration.
	HeapInspectNone = -1
	// HeapInspectAll merges each iterator against the whole remaining
	// mask before pushing — the paper's NInspect = ∞ (AlgoHeapDot's
	// default).
	HeapInspectAll = int(^uint(0) >> 1)
)

// Phases selects between the one-phase and two-phase (symbolic +
// numeric) execution strategies (§6).
type Phases uint8

const (
	// OnePhase allocates output space from the mask (nnz(C) ≤ nnz(M)
	// row-wise) or a per-row upper bound, multiplies once, and compacts.
	OnePhase Phases = iota
	// TwoPhase first runs a symbolic multiplication to size the output
	// exactly, then the numeric multiplication writes in place.
	TwoPhase
)

// String returns the suffix used in the paper's plots ("1P"/"2P").
func (p Phases) String() string {
	if p == TwoPhase {
		return "2P"
	}
	return "1P"
}

// Schedule selects how the engine's parallel row passes divide work
// among workers (DESIGN.md §9). The default, SchedAuto, lets the plan
// choose from its measured per-row cost profile.
type Schedule uint8

const (
	// SchedAuto resolves per plan from the measured row-cost skew:
	// cost-partitioned scheduling when a few rows dominate the flops
	// profile (max row cost ≫ mean), fixed-grain blocks otherwise.
	// Paths without a cost profile (plain SpGEMM, direct baselines)
	// degrade to fixed grain.
	SchedAuto Schedule = iota
	// SchedFixedGrain claims fixed-size row blocks (Options.Grain) from
	// a shared atomic counter — the original §3 dynamic scheduler,
	// blind to row cost.
	SchedFixedGrain
	// SchedCostPartition drives workers over variable-width row
	// partitions of near-equal estimated cost, laid out at plan time
	// from the masked-flops profile; the partitions ship with cached
	// plans for free.
	SchedCostPartition
	// SchedWorkSteal gives each worker a contiguous deque of rows and
	// lets idle workers steal the back half of a loaded victim's
	// remaining range — absorbs skew without needing a cost profile.
	SchedWorkSteal
)

// String names the strategy ("Auto", "FixedGrain", ...).
func (s Schedule) String() string {
	switch s {
	case SchedFixedGrain:
		return "FixedGrain"
	case SchedCostPartition:
		return "CostPartition"
	case SchedWorkSteal:
		return "WorkSteal"
	}
	return "Auto"
}

// Options configures a masked multiplication.
type Options struct {
	// Algorithm picks the scheme; default AlgoMSA.
	Algorithm Algorithm
	// Phases picks 1P or 2P; default OnePhase (the paper's overall
	// winner).
	Phases Phases
	// Complement computes C = ¬M ⊙ (A·B) instead of C = M ⊙ (A·B).
	Complement bool
	// Threads is the worker count; < 1 means GOMAXPROCS.
	Threads int
	// Grain is the scheduler row-block size; < 1 means
	// parallel.DefaultGrain. Used by SchedFixedGrain and SchedWorkSteal;
	// SchedCostPartition derives its variable-width blocks from the
	// plan's cost profile instead.
	Grain int
	// Schedule picks the row-scheduling strategy; the default SchedAuto
	// chooses per plan from the measured row-cost skew (DESIGN.md §9).
	Schedule Schedule
	// CollectSchedStats records per-worker scheduler telemetry (busy
	// time, blocks claimed/stolen) on every execution, readable via
	// Executor.SchedStats. Costs two clock reads per scheduled block;
	// off by default.
	CollectSchedStats bool
	// HashLoadFactor overrides the hash accumulator load factor; ≤ 0
	// means the paper's 0.25.
	HashLoadFactor float64
	// HeapNInspect overrides NInspect for AlgoHeap/AlgoHeapDot:
	// HeapInspectDefault (0) keeps the per-algorithm default (1 for
	// Heap, ∞ for HeapDot, none for complemented heaps);
	// HeapInspectNone disables inspection (the paper's NInspect = 0);
	// positive values set the inspection window. Use with AlgoHeap for
	// the NInspect ablation.
	HeapNInspect int
	// HybridFamilies restricts AlgoHybrid's per-row selector to the
	// given accumulator families (build the set with Families); the
	// zero value means every admissible family. Families inadmissible
	// for the request — MCA under a complemented mask — are dropped
	// regardless, and if nothing admissible remains the selector falls
	// back to MSA, the universal family.
	HybridFamilies FamilySet
	// CostCoeffs scales the per-family RowCost models by measured
	// per-host coefficients (internal/calibrate's startup fit); the
	// zero value prices with the DESIGN.md §10 literals, bit for bit.
	// Plan-affecting: coefficients move the Hybrid per-row crossovers
	// and the §9 partition bounds, so they are part of plan identity —
	// a calibrated session's plans never alias an uncalibrated
	// client's.
	CostCoeffs CostCoeffs
	// InnerGallop switches AlgoInner's dot products from two-pointer
	// merges to galloping (exponential + binary search) — profitable
	// when A rows and B columns have very different lengths. Ablation:
	// BenchmarkInnerGallop.
	InnerGallop bool
	// ReuseOutput lets Plan.Execute back the result matrix with
	// executor-owned pooled buffers, making steady-state executions
	// allocation-free. The result is then valid only until the next
	// execution on the same executor; Clone it to retain. The one-shot
	// MaskedSpGEMM path clears this flag, since its result must outlive
	// the call — callers that take ownership of a plan's result should
	// likewise leave it off.
	ReuseOutput bool
}

// SchemeName formats "Algo-1P"/"Algo-2P" as in the paper's figures.
func (o Options) SchemeName() string {
	return o.Algorithm.String() + "-" + o.Phases.String()
}

// ExecOptions are the execution-only knobs of Options: they change
// what one execution does (telemetry collection, output ownership) but
// never the per-structure analysis, so two requests differing only
// here can share a cached plan. Plan.ExecuteOnOpts takes them per
// call; plans built directly via NewPlan default to the values frozen
// in at plan time.
type ExecOptions struct {
	// CollectSchedStats records per-worker scheduler telemetry for this
	// execution (see Options.CollectSchedStats).
	CollectSchedStats bool
	// ReuseOutput backs this execution's result with executor-owned
	// pooled buffers (see Options.ReuseOutput).
	ReuseOutput bool
	// Cancel, when non-nil, is the cooperative cancellation token this
	// execution polls at scheduler block claims and pass checkpoints: a
	// latched token stops the execution and ExecuteOnOpts returns a
	// *CanceledError. Execution-only by construction — a token never
	// affects the analysis, so it has no Options counterpart and never
	// enters plan identity. Plan.ExecuteOnCtx wires a context to this
	// token.
	Cancel *parallel.CancelToken
}

// ExecOnly extracts the execution-only fields of o — the defaults
// Plan.ExecuteOn applies when the caller does not override them per
// execution.
func (o Options) ExecOnly() ExecOptions {
	return ExecOptions{CollectSchedStats: o.CollectSchedStats, ReuseOutput: o.ReuseOutput}
}

// planIdentity returns o with the execution-only fields zeroed: the
// canonical form under which a PlanCache keys and builds plans, so
// requests differing only in telemetry or output ownership converge on
// one cached analysis.
func (o Options) planIdentity() Options {
	o.CollectSchedStats = false
	o.ReuseOutput = false
	return o
}

func (o *Options) normalize() {
	o.Threads = parallel.Threads(o.Threads)
	if o.Grain < 1 {
		o.Grain = parallel.DefaultGrain
	}
}

// coeffs returns the calibrated coefficient array for RowCostContext
// threading, or nil when uncalibrated — the nil fast path keeps the
// uncalibrated cost evaluation identical to pre-calibration builds.
func (o Options) coeffs() *CostCoeffs {
	if o.CostCoeffs.IsZero() {
		return nil
	}
	c := o.CostCoeffs
	return &c
}

// validate checks operand shapes: mask is m×n, A is m×k, B is k×n.
func validate[T any](mask *sparse.Pattern, a, b *sparse.CSR[T]) error {
	if a.Rows != mask.Rows || b.Cols != mask.Cols {
		return fmt.Errorf("core: mask is %dx%d but A·B is %dx%d", mask.Rows, mask.Cols, a.Rows, b.Cols)
	}
	if a.Cols != b.Rows {
		return fmt.Errorf("core: inner dimensions differ: A is %dx%d, B is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}
