package core

import (
	"fmt"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// The scheme registry: one table entry per algorithm, carrying the
// scheme's display name, its capability set, and (through the generic
// kernel registry below) its symbolic/numeric row kernels. Everything
// that used to be a hand-maintained switch — dispatch, capability
// errors, SupportsComplement, Algorithms() — derives from this table,
// so adding a scheme means adding one SchemeInfo entry plus one
// kernelRegistry entry and nothing else can drift.

// SchemeInfo is the static description of one registered algorithm.
type SchemeInfo struct {
	// Algo is the registered selector.
	Algo Algorithm
	// Name is the scheme name as used in the paper's plots.
	Name string
	// Paper marks the six schemes the paper proposes/evaluates as
	// "ours" (§8: Inner, MSA, Hash, MCA, Heap, HeapDot).
	Paper bool
	// Complement reports complemented-mask support (§5.2, §8.4).
	Complement bool
	// ComplementNote is the documented error returned when Complement
	// is false and a complemented mask is requested.
	ComplementNote string
	// NeedsCSC marks schemes whose plain-mask execution pulls from B by
	// column and therefore needs B's CSC transpose prepared (§4.1).
	NeedsCSC bool
	// ComplementNeedsCSC is NeedsCSC for the complemented-mask path.
	ComplementNeedsCSC bool
	// TransposePerExecute forces the CSC view to be rebuilt on every
	// execution instead of being cached by the plan — the SS:DOT
	// baseline's defining per-call overhead (§8.4).
	TransposePerExecute bool
	// RowCost estimates one output row's execution cost for this
	// scheme in multiply-add-flavored units (DESIGN.md §10). It is how
	// a scheme family enters AlgoHybrid's per-row poly-algorithm
	// selection; nil means the scheme has no per-row model and cannot
	// be bound per row.
	RowCost func(ctx RowCostContext) float64
}

// schemeTable lists every implemented scheme in evaluation order. The
// order is observable through Algorithms()/PaperAlgorithms().
var schemeTable = []SchemeInfo{
	{Algo: AlgoMSA, Name: "MSA", Paper: true, Complement: true, RowCost: msaRowCost},
	// The epoch variant has no complement form of its own; its
	// complement kernel registration falls back to MSAC.
	{Algo: AlgoMSAEpoch, Name: "MSA-Epoch", Complement: true},
	// The bitmap-state MSA variant (DESIGN.md §12); not a paper scheme.
	{Algo: AlgoMaskedBit, Name: "MaskedBit", Complement: true, RowCost: maskedBitRowCost},
	{Algo: AlgoHash, Name: "Hash", Paper: true, Complement: true, RowCost: hashRowCost},
	{Algo: AlgoMCA, Name: "MCA", Paper: true, RowCost: mcaRowCost,
		ComplementNote: "core: MCA does not support complemented masks (§5.4)"},
	{Algo: AlgoHeap, Name: "Heap", Paper: true, Complement: true, RowCost: heapRowCost},
	{Algo: AlgoHeapDot, Name: "HeapDot", Paper: true, Complement: true},
	{Algo: AlgoInner, Name: "Inner", Paper: true, Complement: true,
		NeedsCSC: true, ComplementNeedsCSC: true, RowCost: pullRowCost},
	{Algo: AlgoSaxpyThenMask, Name: "SS:SAXPY*", Complement: true},
	{Algo: AlgoDotTranspose, Name: "SS:DOT*", Complement: true,
		NeedsCSC: true, ComplementNeedsCSC: true, TransposePerExecute: true},
	// Hybrid's NeedsCSC flags are the static "may pull" capability; the
	// plan refines them to whether any row actually bound FamPull.
	{Algo: AlgoHybrid, Name: "Hybrid", Complement: true,
		NeedsCSC: true, ComplementNeedsCSC: true},
}

// LookupScheme returns the registry entry for an algorithm.
func LookupScheme(a Algorithm) (SchemeInfo, bool) {
	for _, s := range schemeTable {
		if s.Algo == a {
			return s, true
		}
	}
	return SchemeInfo{}, false
}

// Schemes returns a copy of the full registry in evaluation order.
func Schemes() []SchemeInfo {
	return append([]SchemeInfo(nil), schemeTable...)
}

// String returns the scheme name as used in the paper's plots.
func (a Algorithm) String() string {
	if s, ok := LookupScheme(a); ok {
		return s.Name
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// Algorithms lists every registered scheme in evaluation order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(schemeTable))
	for i, s := range schemeTable {
		out[i] = s.Algo
	}
	return out
}

// PaperAlgorithms lists the schemes the paper proposes/evaluates as
// "ours" (§8).
func PaperAlgorithms() []Algorithm {
	var out []Algorithm
	for _, s := range schemeTable {
		if s.Paper {
			out = append(out, s.Algo)
		}
	}
	return out
}

// SupportsComplement reports whether the algorithm implements
// complemented masks, straight from the registry.
func SupportsComplement(a Algorithm) bool {
	s, ok := LookupScheme(a)
	return ok && s.Complement
}

// kernels is one bound execution. Uniform plans carry one numeric row
// kernel (always present) and one symbolic row kernel for the
// two-phase strategy. Poly plans (AlgoHybrid) leave those nil and
// instead dispatch per run: runEnds/runFam mirror the plan's run
// encoding (DESIGN.md §10) and numFam/symFam hold one kernel pair per
// family actually bound (nil slots for unused families). The engine
// drivers split row blocks at run boundaries, so the family lookup is
// paid once per run ∩ block, never per row.
type kernels[T any] struct {
	numeric  rowNumericFn[T]
	symbolic rowSymbolicFn

	runEnds []int32
	runFam  []uint8
	numFam  []rowNumericFn[T]
	symFam  []rowSymbolicFn
}

// kernelBinder closes a scheme's row kernels over one (plan, executor,
// A, B) binding. Binders read precomputed analysis (CSC structure,
// hybrid row decisions, heap NInspect) from the immutable plan and
// draw all mutable scratch — accumulators, the refreshed CSC values of
// B — from the executor, so one plan can be bound on many executors.
type kernelBinder[T any, S semiring.Semiring[T]] func(p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T]

// schemeKernels is the generic half of a registry entry: how to build
// the scheme's kernels for plain and complemented masks, or — for
// schemes that do not decompose into row kernels (SaxpyThenMask runs a
// full unmasked SpGEMM first) — a direct whole-product executor.
type schemeKernels[T any, S semiring.Semiring[T]] struct {
	plain      kernelBinder[T, S]
	complement kernelBinder[T, S]
	direct     func(p *Plan[T, S], a, b *sparse.CSR[T]) (*sparse.CSR[T], error)
}

// kernelsForAlgo returns one scheme's kernel binders for a (T, S)
// instantiation. Go has no generic package-level variables, so this
// switch plays the role of the generic half of the registry; it is
// allocation-free, which matters because NewPlan runs once per
// iteration in the k-truss/betweenness loops. The zero value (no
// kernels at all) flags an algorithm missing from the switch —
// TestSchemeRegistryConsistency catches any schemeTable entry that
// hits it.
func kernelsForAlgo[T any, S semiring.Semiring[T]](a Algorithm) schemeKernels[T, S] {
	switch a {
	case AlgoMSA:
		return schemeKernels[T, S]{plain: bindMSA[T, S], complement: bindMSAC[T, S]}
	case AlgoMSAEpoch:
		return schemeKernels[T, S]{plain: bindMSAEpoch[T, S], complement: bindMSAC[T, S]}
	case AlgoMaskedBit:
		return schemeKernels[T, S]{plain: bindMaskedBit[T, S], complement: bindMaskedBitC[T, S]}
	case AlgoHash:
		return schemeKernels[T, S]{plain: bindHash[T, S], complement: bindHashC[T, S]}
	case AlgoMCA:
		return schemeKernels[T, S]{plain: bindMCA[T, S]}
	case AlgoHeap, AlgoHeapDot:
		return schemeKernels[T, S]{plain: bindHeap[T, S], complement: bindHeapComplement[T, S]}
	case AlgoInner, AlgoDotTranspose:
		// SS:DOT* shares Inner's kernels; its per-call transpose cost
		// comes from SchemeInfo.TransposePerExecute.
		return schemeKernels[T, S]{plain: bindInner[T, S], complement: bindInnerComplement[T, S]}
	case AlgoSaxpyThenMask:
		return schemeKernels[T, S]{direct: directSaxpyThenMask[T, S]}
	case AlgoHybrid:
		return schemeKernels[T, S]{plain: bindHybrid[T, S], complement: bindHybridComplement[T, S]}
	}
	return schemeKernels[T, S]{}
}
