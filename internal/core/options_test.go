package core

import (
	"strings"
	"testing"

	"maskedspgemm/internal/gen"
)

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		AlgoMSA:           "MSA",
		AlgoMSAEpoch:      "MSA-Epoch",
		AlgoHash:          "Hash",
		AlgoMCA:           "MCA",
		AlgoHeap:          "Heap",
		AlgoHeapDot:       "HeapDot",
		AlgoInner:         "Inner",
		AlgoSaxpyThenMask: "SS:SAXPY*",
		AlgoDotTranspose:  "SS:DOT*",
		AlgoHybrid:        "Hybrid",
	}
	for algo, name := range want {
		if algo.String() != name {
			t.Errorf("%d.String() = %q, want %q", algo, algo.String(), name)
		}
	}
	if !strings.HasPrefix(Algorithm(200).String(), "Algorithm(") {
		t.Error("unknown algorithm should format numerically")
	}
	if OnePhase.String() != "1P" || TwoPhase.String() != "2P" {
		t.Error("phase strings wrong")
	}
	opt := Options{Algorithm: AlgoHash, Phases: TwoPhase}
	if opt.SchemeName() != "Hash-2P" {
		t.Errorf("SchemeName = %q", opt.SchemeName())
	}
}

func TestAlgorithmEnumerations(t *testing.T) {
	all := Algorithms()
	if len(all) != 11 {
		t.Errorf("Algorithms() has %d entries", len(all))
	}
	seen := map[Algorithm]bool{}
	for _, a := range all {
		if seen[a] {
			t.Errorf("duplicate algorithm %v", a)
		}
		seen[a] = true
	}
	paper := PaperAlgorithms()
	if len(paper) != 6 {
		t.Errorf("PaperAlgorithms() has %d entries, want 6", len(paper))
	}
	for _, a := range paper {
		if a == AlgoMSAEpoch || a == AlgoSaxpyThenMask || a == AlgoDotTranspose || a == AlgoHybrid {
			t.Errorf("%v is not a paper scheme", a)
		}
	}
}

func TestSupportsComplement(t *testing.T) {
	// MCA is the only scheme without a complement form (§5.4); Hybrid
	// gained one with per-row poly selection (it binds among the
	// complement-capable families, never MCA — DESIGN.md §10).
	for _, a := range Algorithms() {
		want := a != AlgoMCA
		if SupportsComplement(a) != want {
			t.Errorf("SupportsComplement(%v) = %v", a, !want)
		}
	}
}

func TestComplementBounds(t *testing.T) {
	// bounds must never be exceeded by actual complemented outputs —
	// checked by construction in the oracle tests; here check the
	// formula against hand data.
	a := gen.Random(4, 8, 3, 1)
	b := gen.Random(8, 8, 4, 2)
	mask := gen.Random(4, 8, 2, 3).PatternView()
	offsets := complementBounds(mask, a, b, 1, 1)
	if len(offsets) != 5 || offsets[0] != 0 {
		t.Fatalf("offsets = %v", offsets)
	}
	for i := 0; i < 4; i++ {
		var gen64 int64
		for _, k := range a.Row(i) {
			gen64 += b.RowPtr[k+1] - b.RowPtr[k]
		}
		free := int64(8 - mask.RowNNZ(i))
		want := gen64
		if want > free {
			want = free
		}
		if got := offsets[i+1] - offsets[i]; got != want {
			t.Errorf("row %d bound = %d, want %d", i, got, want)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	var o Options
	o.normalize()
	if o.Threads < 1 {
		t.Error("normalize must set positive threads")
	}
	if o.Grain < 1 {
		t.Error("normalize must set positive grain")
	}
	o2 := Options{Threads: 3, Grain: 10}
	o2.normalize()
	if o2.Threads != 3 || o2.Grain != 10 {
		t.Error("normalize must keep explicit values")
	}
}
