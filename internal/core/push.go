package core

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// pushAcc is the combined numeric+symbolic accumulator protocol the
// generic push drivers need; MSA, MSAEpoch, and Hash all satisfy it.
type pushAcc[T any] interface {
	accum.Numeric[T]
	accum.Symbolic
}

// pushRowNumeric is Algorithm 2 generalized over the accumulator: scale
// and merge the rows B_k* selected by A_i*, filtered through the mask
// row, into one output row. The Insert call is where masked-out products
// are discarded before the multiplication happens (§5.1).
//
//mspgemm:hotpath
func pushRowNumeric[T any, A pushAcc[T]](acc A, maskRow []int32, aCols []int32, aVals []T, b *sparse.CSR[T], outIdx []int32, outVal []T) int {
	acc.Begin(maskRow)
	// Bounds-check elimination hints: aVals walks in lockstep with
	// aCols, and b.Val in lockstep with b.ColIdx, so reslicing each to
	// its partner's length lets one check per iteration cover both;
	// the two-element rowPtr window makes one check cover lo and hi.
	aVals = aVals[:len(aCols)]
	rowPtr := b.RowPtr
	colIdx := b.ColIdx
	vals := b.Val[:len(colIdx)]
	for k, col := range aCols {
		c := int(uint32(col))
		rp := rowPtr[c : c+2]
		lo, hi := rp[0], rp[1]
		bCols := colIdx[lo:hi]
		bVals := vals[lo:hi]
		av := aVals[k]
		for t, j := range bCols {
			acc.Insert(j, av, bVals[t])
		}
	}
	return acc.Gather(maskRow, outIdx, outVal)
}

// pushRowSymbolic is the pattern-only pass of the same computation,
// used by the two-phase variants (§6).
//
//mspgemm:hotpath
func pushRowSymbolic[T any, A pushAcc[T]](acc A, maskRow []int32, aCols []int32, b *sparse.CSR[T]) int {
	acc.BeginSymbolic(maskRow)
	rowPtr := b.RowPtr
	colIdx := b.ColIdx
	for _, col := range aCols {
		c := int(uint32(col))
		rp := rowPtr[c : c+2]
		lo, hi := rp[0], rp[1]
		for _, j := range colIdx[lo:hi] {
			acc.InsertPattern(j)
		}
	}
	return acc.EndSymbolic(maskRow)
}

// pushKernels builds the row kernels of a push-family scheme over any
// accumulator obtained per worker from getAcc (a pooled-workspace
// getter on the plan's executor).
func pushKernels[T any, A pushAcc[T]](mask *sparse.Pattern, a, b *sparse.CSR[T], getAcc func(tid int) A) kernels[T] {
	return kernels[T]{
		numeric: func(tid, i int, outIdx []int32, outVal []T) int {
			return pushRowNumeric(getAcc(tid), mask.Row(i), a.Row(i), a.RowVals(i), b, outIdx, outVal)
		},
		symbolic: func(tid, i int) int {
			return pushRowSymbolic[T](getAcc(tid), mask.Row(i), a.Row(i), b)
		},
	}
}

// bindMSA registers the MSA scheme (§5.2).
func bindMSA[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	exec, ncols := e, b.Cols
	return pushKernels(p.mask, a, b, func(tid int) *accum.MSA[T, S] {
		return exec.worker(tid).MSA(ncols)
	})
}

// bindMSAEpoch registers the epoch-reset MSA ablation variant.
func bindMSAEpoch[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	exec, ncols := e, b.Cols
	return pushKernels(p.mask, a, b, func(tid int) *accum.MSAEpoch[T, S] {
		return exec.worker(tid).MSAEpoch(ncols)
	})
}

// bindMaskedBit registers the bitmap-state MSA variant (DESIGN.md
// §12).
func bindMaskedBit[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	exec, ncols := e, b.Cols
	return pushKernels(p.mask, a, b, func(tid int) *accum.MaskedBit[T, S] {
		return exec.worker(tid).MaskedBit(ncols)
	})
}

// bindHash registers the hash scheme (§5.3). Tables are sized per
// worker by the densest mask row, precomputed at plan time.
func bindHash[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	exec, maxRow, lf := e, p.maxMaskRow, p.opt.HashLoadFactor
	return pushKernels(p.mask, a, b, func(tid int) *accum.Hash[T, S] {
		return exec.worker(tid).Hash(maxRow, lf)
	})
}
