package core

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// pushAcc is the combined numeric+symbolic accumulator protocol the
// generic push drivers need; MSA, MSAEpoch, and Hash all satisfy it.
type pushAcc[T any] interface {
	accum.Numeric[T]
	accum.Symbolic
}

// pushRowNumeric is Algorithm 2 generalized over the accumulator: scale
// and merge the rows B_k* selected by A_i*, filtered through the mask
// row, into one output row. The Insert call is where masked-out products
// are discarded before the multiplication happens (§5.1).
func pushRowNumeric[T any, A pushAcc[T]](acc A, maskRow []int32, aCols []int32, aVals []T, b *sparse.CSR[T], outIdx []int32, outVal []T) int {
	acc.Begin(maskRow)
	for k, col := range aCols {
		lo, hi := b.RowPtr[col], b.RowPtr[col+1]
		bCols := b.ColIdx[lo:hi]
		bVals := b.Val[lo:hi]
		av := aVals[k]
		for t, j := range bCols {
			acc.Insert(j, av, bVals[t])
		}
	}
	return acc.Gather(maskRow, outIdx, outVal)
}

// pushRowSymbolic is the pattern-only pass of the same computation,
// used by the two-phase variants (§6).
func pushRowSymbolic[T any, A pushAcc[T]](acc A, maskRow []int32, aCols []int32, b *sparse.CSR[T]) int {
	acc.BeginSymbolic(maskRow)
	for _, col := range aCols {
		lo, hi := b.RowPtr[col], b.RowPtr[col+1]
		for _, j := range b.ColIdx[lo:hi] {
			acc.InsertPattern(j)
		}
	}
	return acc.EndSymbolic(maskRow)
}

// pushMultiply drives a push-family algorithm (MSA/MSAEpoch/Hash) in
// either phase mode. newAcc constructs one per-worker accumulator.
func pushMultiply[T any, A pushAcc[T]](mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options, newAcc func() A) *sparse.CSR[T] {
	slots := make([]A, opt.Threads)
	have := make([]bool, opt.Threads)
	get := func(tid int) A {
		if !have[tid] {
			slots[tid] = newAcc()
			have[tid] = true
		}
		return slots[tid]
	}
	numeric := func(tid, i int, outIdx []int32, outVal []T) int {
		return pushRowNumeric(get(tid), mask.Row(i), a.Row(i), a.RowVals(i), b, outIdx, outVal)
	}
	if opt.Phases == TwoPhase {
		symbolic := func(tid, i int) int {
			return pushRowSymbolic[T](get(tid), mask.Row(i), a.Row(i), b)
		}
		return twoPhase(mask.Rows, mask.Cols, opt.Threads, opt.Grain, symbolic, numeric)
	}
	return onePhase(mask.Rows, mask.Cols, mask.RowPtr, opt.Threads, opt.Grain, numeric)
}

// multiplyMSA runs the MSA scheme (§5.2).
func multiplyMSA[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) *sparse.CSR[T] {
	return pushMultiply(mask, a, b, opt, func() *accum.MSA[T, S] {
		return accum.NewMSA[T](sr, b.Cols)
	})
}

// multiplyMSAEpoch runs the epoch-reset MSA ablation variant.
func multiplyMSAEpoch[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) *sparse.CSR[T] {
	return pushMultiply(mask, a, b, opt, func() *accum.MSAEpoch[T, S] {
		return accum.NewMSAEpoch[T](sr, b.Cols)
	})
}

// multiplyHash runs the hash scheme (§5.3). Tables are sized once per
// worker by the densest mask row.
func multiplyHash[T any, S semiring.Semiring[T]](sr S, mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) *sparse.CSR[T] {
	maxRow := mask.MaxRowNNZ()
	return pushMultiply(mask, a, b, opt, func() *accum.Hash[T, S] {
		return accum.NewHash[T](sr, maxRow, opt.HashLoadFactor)
	})
}
