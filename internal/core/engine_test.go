package core

import (
	"sync/atomic"
	"testing"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// TestOnePhaseEngine drives the one-phase driver with a synthetic row
// kernel to pin slab layout and compaction behaviour directly.
func TestOnePhaseEngine(t *testing.T) {
	// 4 rows; offsets give each row i a slab of i+1 slots; the kernel
	// writes k entries to row k (using its full slab).
	offsets := []int64{0, 1, 3, 6, 10}
	numeric := func(_, i int, outIdx []int32, outVal []float64) int {
		if len(outIdx) != i+1 {
			t.Errorf("row %d slab size %d, want %d", i, len(outIdx), i+1)
		}
		for k := 0; k <= i; k++ {
			outIdx[k] = int32(k)
			outVal[k] = float64(i*10 + k)
		}
		return i + 1
	}
	out, err := onePhase(4, 8, offsets, rowSched{threads: 2, grain: 1, mode: SchedFixedGrain}, kernels[float64]{numeric: numeric}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != 10 {
		t.Fatalf("nnz = %d, want 10", out.NNZ())
	}
	for i := 0; i < 4; i++ {
		if out.RowNNZ(i) != i+1 {
			t.Fatalf("row %d nnz = %d", i, out.RowNNZ(i))
		}
		if out.RowVals(i)[i] != float64(i*10+i) {
			t.Fatalf("row %d values misplaced: %v", i, out.RowVals(i))
		}
	}
}

// TestOnePhasePartialRows checks compaction when rows underfill their
// slabs (the normal masked case: nnz(C_i*) < slab).
func TestOnePhasePartialRows(t *testing.T) {
	offsets := []int64{0, 5, 10, 15}
	numeric := func(_, i int, outIdx []int32, outVal []float64) int {
		if i == 1 {
			return 0 // empty output row
		}
		outIdx[0] = 7
		outVal[0] = float64(i)
		return 1
	}
	out, err := onePhase(3, 8, offsets, rowSched{threads: 1, grain: 1, mode: SchedFixedGrain}, kernels[float64]{numeric: numeric}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != 2 || out.RowNNZ(1) != 0 {
		t.Fatalf("compaction wrong: nnz=%d row1=%d", out.NNZ(), out.RowNNZ(1))
	}
}

// TestTwoPhaseEngine checks symbolic sizing drives exact allocation.
func TestTwoPhaseEngine(t *testing.T) {
	symbolic := func(_, i int) int { return i % 3 }
	numeric := func(_, i int, outIdx []int32, outVal []float64) int {
		n := i % 3
		if len(outIdx) != n {
			t.Errorf("row %d given %d slots, want %d", i, len(outIdx), n)
		}
		for k := 0; k < n; k++ {
			outIdx[k] = int32(k)
			outVal[k] = 1
		}
		return n
	}
	out, err := twoPhase(7, 5, rowSched{threads: 2, grain: 2, mode: SchedFixedGrain}, kernels[float64]{numeric: numeric, symbolic: symbolic}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	want := int64(0 + 1 + 2 + 0 + 1 + 2 + 0)
	if out.NNZ() != want {
		t.Fatalf("nnz = %d, want %d", out.NNZ(), want)
	}
}

// TestLazySlots checks one scratch per worker, created on demand.
func TestLazySlots(t *testing.T) {
	var made atomic.Int32
	slots := newLazySlots(4, func() *int {
		made.Add(1)
		v := int(made.Load())
		return &v
	})
	a := slots.get(2)
	b := slots.get(2)
	if a != b {
		t.Error("same tid must reuse scratch")
	}
	_ = slots.get(0)
	if made.Load() != 2 {
		t.Errorf("made %d scratches, want 2", made.Load())
	}
}

// TestMaskedSpGEMMMinPlus exercises a non-arithmetic semiring whose
// additive identity is +inf (tropical): one-hop constrained shortest
// paths. Cross-checked against the dense oracle with the same algebra.
func TestMaskedSpGEMMMinPlus(t *testing.T) {
	sr := semiring.MinPlusF64{}
	a, _ := sparse.FromRows(3, 3, map[int]map[int]float64{
		0: {1: 1, 2: 5},
		1: {2: 1},
		2: {0: 2},
	})
	mask, _ := sparse.FromRows(3, 3, map[int]map[int]float64{
		0: {2: 1}, 1: {0: 1}, 2: {1: 1},
	})
	want := sparse.DenseMaskedMultiply(mask.PatternView(), a, a, false, sr.Add, sr.Mul, sr.Zero())
	// Path 0→1→2 costs 2; admitted at (0,2) by the mask.
	if v, ok := want.At(0, 2); !ok || v != 2 {
		t.Fatalf("oracle sanity: (0,2) = %v, %v", v, ok)
	}
	for _, algo := range []Algorithm{AlgoMSA, AlgoHash, AlgoMCA, AlgoHeap, AlgoInner} {
		got, err := MaskedSpGEMM(sr, mask.PatternView(), a, a, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if d := sparse.Diff(want, got, sparse.FloatEq(0)); d != "" {
			t.Fatalf("%v: %s", algo, d)
		}
	}
}

// TestMaskedSpGEMMBoolean runs the reachability semiring end to end.
func TestMaskedSpGEMMBoolean(t *testing.T) {
	sr := semiring.Boolean{}
	a, _ := sparse.FromRows(3, 3, map[int]map[int]bool{
		0: {1: true},
		1: {2: true},
	})
	mask, _ := sparse.FromRows(3, 3, map[int]map[int]bool{0: {2: true}, 2: {0: true}})
	want := sparse.DenseMaskedMultiply(mask.PatternView(), a, a, false, sr.Add, sr.Mul, sr.Zero())
	for _, algo := range []Algorithm{AlgoMSA, AlgoHash, AlgoHeap} {
		got, err := MaskedSpGEMM(sr, mask.PatternView(), a, a, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !sparse.Equal(want, got) {
			t.Fatalf("%v: boolean mismatch", algo)
		}
		if v, ok := got.At(0, 2); !ok || !v {
			t.Fatalf("%v: two-hop reachability missing", algo)
		}
	}
}
