package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"maskedspgemm/internal/faultinject"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
)

// The core half of the chaos suite (DESIGN.md §15): fault injection
// drives panics and cancellations through the engine's public surface
// and the tests assert the typed-error contract — no partial results,
// no dead process, correct pass attribution. Tests arm the process-
// wide faultinject seam, so none of them run in parallel.

// chaosFamilies are the six accumulator families the tentpole requires
// panic containment for.
var chaosFamilies = []Algorithm{AlgoMSA, AlgoHash, AlgoMCA, AlgoHeap, AlgoInner, AlgoMaskedBit}

// TestChaosPanicEachFamily injects a row panic into every accumulator
// family's numeric pass, serial and parallel, and checks the panic
// surfaces as *KernelPanicError naming the family — and that a fresh
// executor runs the same plan cleanly once disarmed.
func TestChaosPanicEachFamily(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 256, 256, 256, 8, 8, 8, 96})
	for _, algo := range chaosFamilies {
		for _, threads := range []int{1, 4} {
			faultinject.Disarm()
			plan, err := NewPlan(sr, mask, a, b, Options{Algorithm: algo, Threads: threads, Grain: 16}, nil)
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			if _, err := plan.Execute(a, b); err != nil {
				t.Fatalf("%v disarmed: %v", algo, err)
			}
			faultinject.Arm(faultinject.Hooks{PanicArmed: true, PanicRow: 3, PanicPass: faultinject.PassNumeric})
			out, err := plan.Execute(a, b)
			var kp *KernelPanicError
			if !errors.As(err, &kp) {
				t.Fatalf("%v/threads=%d: err = %v, want KernelPanicError", algo, threads, err)
			}
			if out != nil {
				t.Errorf("%v/threads=%d: partial result escaped alongside the panic", algo, threads)
			}
			if !strings.HasPrefix(kp.Family, algo.String()) {
				t.Errorf("%v: Family = %q", algo, kp.Family)
			}
			if len(kp.Stack) == 0 {
				t.Errorf("%v: no stack captured", algo)
			}
			// The panicking executor is poisoned; a fresh one must run
			// the same shared plan cleanly once the fault is disarmed.
			faultinject.Disarm()
			exec := NewExecutor[float64](sr)
			if _, err := plan.ExecuteOn(exec, a, b); err != nil {
				t.Fatalf("%v recovery run: %v", algo, err)
			}
		}
	}
}

// TestChaosCancelAtEveryPass arms the cancel-at-checkpoint fault at
// each of the engine's pass boundaries and checks the returned
// *CanceledError names exactly the interrupted pass, matches
// ErrCanceled, and lets no partial result escape.
func TestChaosCancelAtEveryPass(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 256, 256, 256, 8, 8, 8, 97})
	for _, tc := range []struct {
		phases Phases
		pass   faultinject.Pass
	}{
		{OnePhase, faultinject.PassNumeric},
		{OnePhase, faultinject.PassCompact},
		{TwoPhase, faultinject.PassSymbolic},
		{TwoPhase, faultinject.PassNumeric},
	} {
		for _, threads := range []int{1, 4} {
			faultinject.Disarm()
			plan, err := NewPlan(sr, mask, a, b, Options{Phases: tc.phases, Threads: threads}, nil)
			if err != nil {
				t.Fatal(err)
			}
			faultinject.Arm(faultinject.Hooks{CancelPass: tc.pass})
			out, err := plan.Execute(a, b)
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("%v@%s/threads=%d: err = %v, want CanceledError", tc.phases, tc.pass, threads, err)
			}
			if ce.Pass != string(tc.pass) {
				t.Errorf("%v@%s: interrupted pass reported as %q", tc.phases, tc.pass, ce.Pass)
			}
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("%v@%s: CanceledError does not match ErrCanceled", tc.phases, tc.pass)
			}
			if out != nil {
				t.Errorf("%v@%s: partial result escaped alongside cancellation", tc.phases, tc.pass)
			}
		}
	}
}

// TestCancelPreLatchedToken checks the ExecOptions.Cancel plumbing
// without fault injection: a pre-latched token stops the execution at
// its first checkpoint.
func TestCancelPreLatchedToken(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 128, 128, 128, 8, 8, 8, 98})
	plan, err := NewPlan(sr, mask, a, b, Options{Threads: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor[float64](sr)
	tok := new(parallel.CancelToken)
	tok.Cancel()
	out, err := plan.ExecuteOnOpts(exec, a, b, ExecOptions{Cancel: tok})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if out != nil {
		t.Error("result escaped a canceled execution")
	}
}

// TestCancelExecuteOnCtx checks the context wiring: a canceled context
// maps to ErrCanceled, an unobstructed context executes normally, and
// the watcher goroutine is torn down either way (asserted by the
// suite-wide goroutine checks under -race).
func TestCancelExecuteOnCtx(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 128, 128, 128, 8, 8, 8, 99})
	plan, err := NewPlan(sr, mask, a, b, Options{Threads: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor[float64](sr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.ExecuteOnCtx(ctx, exec, a, b, ExecOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want ErrCanceled", err)
	}
	exec2 := NewExecutor[float64](sr)
	out, err := plan.ExecuteOnCtx(context.Background(), exec2, a, b, ExecOptions{})
	if err != nil || out == nil {
		t.Fatalf("live ctx: out=%v err=%v", out, err)
	}
}

// TestExecutorPoolDiscard pins the poisoning rules: Discard ends
// ownership without pooling the executor, counts into Poisoned, and
// Get afterwards still serves (fresh construction — capacity refills
// lazily).
func TestExecutorPoolDiscard(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	pool := NewExecutorPool[float64](sr, 2)
	e := pool.Get()
	pool.Discard(e)
	st := pool.Stats()
	if st.Poisoned != 1 {
		t.Errorf("Poisoned = %d, want 1", st.Poisoned)
	}
	if st.Idle != 0 {
		t.Errorf("discarded executor was pooled (idle=%d)", st.Idle)
	}
	pool.Discard(nil) // no-op
	if pool.Stats().Poisoned != 1 {
		t.Error("Discard(nil) counted")
	}
	if e2 := pool.Get(); e2 == e {
		t.Error("Get returned a discarded executor")
	}
}
