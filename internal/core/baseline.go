package core

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Baselines standing in for the SuiteSparse:GraphBLAS comparison points
// (§3, §8). They are real, tuned implementations of the *strategies*
// SS:GB uses, so the paper's qualitative comparisons can be reproduced
// without linking the C library:
//
//   - SaxpyThenMask: the "plain SpGEMM, then apply the mask" flow of
//     Figure 1 — a hash-accumulator Gustavson multiply that ignores the
//     mask while computing and filters afterwards. It pays for every
//     masked-out flop, which is exactly the waste the paper's algorithms
//     avoid.
//   - DotTranspose: SS:DOT-style pull algorithm that re-transposes B on
//     every call (§8.4 notes "the matrix B is transposed in the library
//     before each Masked SpGEMM, increasing overhead").

// unmaskedRowNumeric computes one unmasked Gustavson row with the
// complement hash accumulator and an empty exclusion set.
func unmaskedRowNumeric[T any, S semiring.Semiring[T]](acc *accum.HashC[T, S], aCols []int32, aVals []T, b *sparse.CSR[T], outIdx []int32, outVal []T) int {
	acc.BeginSized(nil, rowGenBound(aCols, b))
	for k, col := range aCols {
		lo, hi := b.RowPtr[col], b.RowPtr[col+1]
		bCols := b.ColIdx[lo:hi]
		bVals := b.Val[lo:hi]
		av := aVals[k]
		for t, j := range bCols {
			acc.Insert(j, av, bVals[t])
		}
	}
	return acc.Gather(outIdx, outVal)
}

// unmaskedRowSymbolic counts one unmasked Gustavson row.
func unmaskedRowSymbolic[T any, S semiring.Semiring[T]](acc *accum.HashC[T, S], aCols []int32, b *sparse.CSR[T]) int {
	acc.BeginSymbolicSized(nil, rowGenBound(aCols, b))
	for _, col := range aCols {
		lo, hi := b.RowPtr[col], b.RowPtr[col+1]
		for _, j := range b.ColIdx[lo:hi] {
			acc.InsertPattern(j)
		}
	}
	return acc.EndSymbolic()
}

// SpGEMM computes the plain (unmasked) product A·B with a row-parallel
// hash-accumulator Gustavson algorithm. Exported because the
// applications and tests need an ordinary SpGEMM as a substrate, and it
// is the first half of the SaxpyThenMask baseline.
func SpGEMM[T any, S semiring.Semiring[T]](sr S, a, b *sparse.CSR[T], opt Options) (*sparse.CSR[T], error) {
	if a.Cols != b.Rows {
		return nil, errInnerDim(a, b)
	}
	opt.normalize()
	slots := newLazySlots(opt.Threads, func() *accum.HashC[T, S] {
		return accum.NewHashC[T](sr, 16, opt.HashLoadFactor)
	})
	numeric := func(tid, i int, outIdx []int32, outVal []T) int {
		return unmaskedRowNumeric(slots.get(tid), a.Row(i), a.RowVals(i), b, outIdx, outVal)
	}
	// No plan-time cost profile here, so Auto/CostPartition degrade to
	// their profile-free substitutes.
	sch := unprofiledSched(opt)
	if opt.Phases == TwoPhase {
		symbolic := func(tid, i int) int {
			return unmaskedRowSymbolic(slots.get(tid), a.Row(i), b)
		}
		return twoPhase(a.Rows, b.Cols, sch, kernels[T]{numeric: numeric, symbolic: symbolic}, nil)
	}
	// One-phase slab: per-row flops bound.
	offsets := make([]int64, a.Rows+1)
	for i := 0; i < a.Rows; i++ {
		offsets[i] = int64(rowGenBound(a.Row(i), b))
	}
	total := int64(0)
	for i := 0; i <= a.Rows; i++ {
		c := offsets[i]
		offsets[i] = total
		total += c
	}
	return onePhase(a.Rows, b.Cols, offsets, sch, kernels[T]{numeric: numeric}, nil)
}

func errInnerDim[T any](a, b *sparse.CSR[T]) error {
	return &dimError{ar: a.Rows, ac: a.Cols, br: b.Rows, bc: b.Cols}
}

type dimError struct{ ar, ac, br, bc int }

// Error implements the error interface.
func (e *dimError) Error() string {
	return "core: inner dimensions differ in SpGEMM"
}

// directSaxpyThenMask is the naive baseline as a registry direct
// executor: full SpGEMM, then mask. It does not decompose into masked
// row kernels — the mask only enters after the whole product exists,
// which is precisely the waste being measured.
func directSaxpyThenMask[T any, S semiring.Semiring[T]](p *Plan[T, S], a, b *sparse.CSR[T]) (*sparse.CSR[T], error) {
	full, err := SpGEMM(p.sr, a, b, p.opt)
	if err != nil {
		return nil, err
	}
	return sparse.ApplyMask(full, p.mask, p.opt.Complement)
}
