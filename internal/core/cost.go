package core

import (
	"maskedspgemm/internal/faultinject"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/sparse"
)

// Cost-guided scheduling (DESIGN.md §9). The paper parallelizes
// strictly across rows with dynamic scheduling to absorb skew (§2.2,
// §3), but a fixed row grain is blind to row cost: one R-MAT hub row
// serializes its whole 64-row block while trivial rows each pay a
// scheduling step for almost no work. The Plan layer already walks
// exactly the structures that determine per-row cost — A's rows and
// B's row pointers (complementBounds, planHybrid) — so the plan
// computes a masked-flops-flavored cost per output row, resolves the
// scheduling strategy from the measured skew, and lays out equal-cost
// partition boundaries that cached plans then ship to every execution
// for free. This is the flops-balanced scheduling of the
// Buluç–Gilbert SpGEMM lineage applied to the masked engine.

const (
	// costPartsPerWorker is the scheduling-slack factor: the plan lays
	// out up to threads×this partitions so that dynamic claiming can
	// still correct for cost-model error within a partitioned pass.
	costPartsPerWorker = 4
	// autoSkewFactor is the SchedAuto switch point: cost partitions are
	// chosen when the most expensive row exceeds this multiple of the
	// mean row cost. Below it, fixed-grain blocks already balance well
	// and their lower bookkeeping wins.
	autoSkewFactor = 8
	// profileMinRows is the row count beyond which even a serial
	// (Threads == 1) plan measures and retains its cost profile: a
	// serial sweep cannot use it, but the replanner can — a structure
	// warmed serially and later re-bound to more threads needs the
	// profile to cost-partition (DESIGN.md §14). Below it the profile
	// would be planning overhead on products too small to ever matter.
	profileMinRows = 256
)

// costProfile is the compact structural picture a plan retains so the
// replanner can re-partition or fully re-bind it later without
// touching the caller-owned A and B — which may be mutated, or gone,
// by then (plans only ever retain the mask; §8 ownership). rowCost
// and total alone re-split partition bounds; rowFlops, rowANNZ, and
// avgBCol — captured only by Hybrid plans — are the RowCostContext
// inputs a full per-row re-selection needs.
type costProfile struct {
	rowCost  []int64
	total    int64
	rowFlops []int64
	rowANNZ  []int32
	avgBCol  float64
}

// rowSched is the resolved descriptor the engine drivers schedule row
// passes with: a mode that is never SchedAuto, the partition bounds
// when cost-partitioned, an optional telemetry target, and the
// fault-containment hooks — the cancel token workers poll at block
// claims and the fault-injection hooks loaded for this execution
// (both usually nil; DESIGN.md §15).
type rowSched struct {
	threads, grain int
	mode           Schedule
	bounds         []int
	stats          *parallel.SchedStats
	cancel         *parallel.CancelToken
	fi             *faultinject.Hooks
}

// run executes fn over [0, n) under the descriptor's strategy.
func (s rowSched) run(n int, fn func(lo, hi, tid int)) {
	switch s.mode {
	case SchedCostPartition:
		parallel.ForEachPartition(s.bounds, s.threads, s.stats, s.cancel, fn)
	case SchedWorkSteal:
		parallel.ForEachChunked(n, s.threads, s.grain, s.stats, s.cancel, fn)
	default:
		parallel.ForEachBlockStats(n, s.threads, s.grain, s.stats, s.cancel, fn)
	}
}

// enterPass is the checkpoint at a pass's entry: it fires the armed
// pass-granularity fault hooks, then reports cancellation so a
// canceled execution stops before starting the pass at all.
func (s rowSched) enterPass(p faultinject.Pass) error {
	s.fi.AtPass(p, s.cancel)
	return s.passCanceled(p)
}

// passCanceled is the checkpoint after a pass's row sweep: a latched
// token means the schedulers broke out early and the pass's output is
// partial, so the driver must discard it and surface which pass was
// interrupted.
func (s rowSched) passCanceled(p faultinject.Pass) error {
	if s.cancel.Canceled() {
		return &CanceledError{Pass: string(p)}
	}
	return nil
}

// unprofiledSched resolves a schedule for row passes that have no
// plan-time cost profile (plain SpGEMM, the saxpy baseline's unmasked
// half): Auto degrades to fixed grain and CostPartition to work
// stealing, its profile-free substitute.
func unprofiledSched(opt Options) rowSched {
	mode := opt.Schedule
	switch mode {
	case SchedAuto:
		mode = SchedFixedGrain
	case SchedCostPartition:
		mode = SchedWorkSteal
	}
	return rowSched{threads: opt.Threads, grain: opt.Grain, mode: mode}
}

// planSchedule measures the plan's per-row cost profile, resolves the
// SchedAuto policy from its skew, and — when cost partitioning is
// chosen — lays out the equal-cost partition boundaries stored in the
// immutable plan. Runs once per structure; cached plans replay the
// result on every hit. rowCost, when non-nil, is a precomputed
// profile (the poly selector's per-row chosen costs); nil measures
// one here.
//
//mspgemm:planwrite
func (p *Plan[T, S]) planSchedule(a, b *sparse.CSR[T], rowCost []int64) {
	switch p.opt.Schedule {
	case SchedFixedGrain, SchedWorkSteal:
		// Explicitly cost-blind: skip the profile entirely.
		p.sched = p.opt.Schedule
		return
	}
	rows := p.mask.Rows
	if rows == 0 || (p.opt.Threads == 1 && rows < profileMinRows && rowCost == nil) {
		// Serial execution (Threads is normalized, so 1 means truly
		// one worker) of a small structure: every strategy degenerates
		// to the same in-order sweep and the product is too small for
		// a later re-bind to matter, so measuring a cost profile would
		// be pure planning overhead.
		p.sched = SchedFixedGrain
		return
	}
	cost := rowCost
	if cost == nil {
		cost = p.rowCosts(a, b)
	}
	var total, max int64
	for _, c := range cost {
		total += c
		if c > max {
			max = c
		}
	}
	if p.profile == nil {
		p.profile = &costProfile{}
	}
	p.profile.rowCost, p.profile.total = cost, total
	if total > 0 {
		p.costSkew = float64(max) * float64(rows) / float64(total)
	}
	if p.opt.Threads == 1 {
		// One worker schedules as one in-order sweep regardless of
		// strategy — but the profile above is retained, so a later
		// re-bind to more threads (warm serially, serve wide) lays out
		// cost partitions without re-analyzing A and B. Resolves to
		// FixedGrain even under an explicit SchedCostPartition request.
		p.sched = SchedFixedGrain
		return
	}
	if p.opt.Schedule == SchedAuto && (total == 0 || p.costSkew < autoSkewFactor) {
		p.sched = SchedFixedGrain
		return
	}
	p.sched = SchedCostPartition
	p.partBounds = costPartitions(cost, total, p.opt.Threads*costPartsPerWorker)
}

// rowCosts estimates every output row's execution cost in multiply-add
// flavored units, following the operative scheme's work model:
//
//   - push rows (MSA/Hash/MCA/Heap families): the Gustavson flops
//     Σ_{k ∈ A_i*} nnz(B_k*) plus the mask walk, with the output term
//     capped by the §5.2 complement bound when the mask is
//     complemented — the same quantities complementBounds walks.
//   - pull rows (Inner, SS:DOT): one merge-dot per admitted mask
//     entry, nnz(m_i)·(nnz(A_i*) + d̄_B), the §4.3 cost model.
//
// Poly plans (AlgoHybrid) never reach here — their selector's chosen
// per-row costs are handed to planSchedule directly, so selection and
// scheduling share one cost picture.
//
// Absolute scale does not matter — only proportions do, since the
// partitioner divides rows by cumulative share.
func (p *Plan[T, S]) rowCosts(a, b *sparse.CSR[T]) []int64 {
	rows := p.mask.Rows
	cost := make([]int64, rows)
	pullAll := p.opt.Algorithm == AlgoInner || p.opt.Algorithm == AlgoDotTranspose
	var avgBCol float64
	if b.Cols > 0 {
		avgBCol = float64(b.NNZ()) / float64(b.Cols)
	}
	complement := p.opt.Complement
	cols := int64(p.mask.Cols)
	parallel.ForEachBlock(rows, p.opt.Threads, p.opt.Grain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			m := int64(p.mask.RowNNZ(i))
			aRow := a.Row(i)
			if pullAll {
				adm := m
				if complement {
					adm = cols - m
				}
				cost[i] = 1 + adm*(int64(len(aRow))+int64(avgBCol))
				continue
			}
			var gen int64
			for _, k := range aRow {
				gen += b.RowPtr[k+1] - b.RowPtr[k]
			}
			out := m
			if complement {
				out = cols - m
				if gen < out {
					out = gen // the §5.2 bound caps the gather
				}
			}
			cost[i] = 1 + m + gen + out
		}
	})
	return cost
}

// costPartitions cuts rows into at most nparts contiguous partitions of
// near-equal cumulative cost: partition j ends at the first row where
// the running cost passes j/nparts of the total. A single row costlier
// than the ideal share gets a partition to itself (row formation is
// never split — §3); targets it overshoots are skipped rather than
// emitted as empty partitions. The returned bounds slice (first 0,
// last len(cost)) is what ForEachPartition consumes.
func costPartitions(cost []int64, total int64, nparts int) []int {
	rows := len(cost)
	if nparts > rows {
		nparts = rows
	}
	if nparts < 1 {
		nparts = 1
	}
	bounds := make([]int, 1, nparts+1)
	var run int64
	j := 1
	for i := 0; i < rows && j < nparts; i++ {
		run += cost[i]
		if float64(run) >= float64(total)*float64(j)/float64(nparts) {
			bounds = append(bounds, i+1)
			j++
			for j < nparts && float64(run) >= float64(total)*float64(j)/float64(nparts) {
				j++
			}
		}
	}
	if bounds[len(bounds)-1] != rows {
		bounds = append(bounds, rows)
	}
	return bounds
}

// ResolvedSchedule reports the plan's scheduling strategy after the
// SchedAuto policy ran — which of the concrete modes executions of
// this plan use.
func (p *Plan[T, S]) ResolvedSchedule() Schedule { return p.sched }

// CostSkew returns the plan's measured row-cost skew (max row cost
// over mean row cost), the quantity the SchedAuto policy thresholds.
// Zero when scheduling analysis was skipped (explicit cost-blind
// schedules, direct schemes, empty masks).
func (p *Plan[T, S]) CostSkew() float64 { return p.costSkew }
