package core

import (
	"testing"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// FuzzMaskedSpGEMM feeds byte-derived sparse operands through every
// algorithm and cross-checks against the dense oracle. The seed corpus
// runs as a normal test; `go test -fuzz=FuzzMaskedSpGEMM ./internal/core`
// explores further.
func FuzzMaskedSpGEMM(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(8), uint8(8), uint8(8))
	f.Add([]byte{0}, uint8(1), uint8(1), uint8(1))
	f.Add([]byte{255, 0, 255, 0, 13, 77, 200, 31, 8, 9}, uint8(12), uint8(5), uint8(9))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(16), uint8(3), uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, mRaw, kRaw, nRaw uint8) {
		m := int(mRaw%24) + 1
		k := int(kRaw%24) + 1
		n := int(nRaw%24) + 1
		a := matrixFromBytes(m, k, data, 0)
		b := matrixFromBytes(k, n, data, 1)
		mask := matrixFromBytes(m, n, data, 2).PatternView()
		sr := semiring.PlusTimes[float64]{}
		for _, complement := range []bool{false, true} {
			want := sparse.DenseMaskedMultiply(mask, a, b, complement, sr.Add, sr.Mul, sr.Zero())
			for _, algo := range Algorithms() {
				if complement && !SupportsComplement(algo) {
					continue
				}
				for _, ph := range []Phases{OnePhase, TwoPhase} {
					got, err := MaskedSpGEMM(sr, mask, a, b, Options{
						Algorithm: algo, Phases: ph, Complement: complement, Threads: 2,
					})
					if err != nil {
						t.Fatalf("%v-%v complement=%v: %v", algo, ph, complement, err)
					}
					if err := got.Validate(); err != nil {
						t.Fatalf("%v-%v complement=%v: invalid output: %v", algo, ph, complement, err)
					}
					if d := sparse.Diff(want, got, sparse.FloatEq(1e-9)); d != "" {
						t.Fatalf("%v-%v complement=%v: %s", algo, ph, complement, d)
					}
				}
			}
		}
	})
}

// matrixFromBytes deterministically derives an m×n sparse matrix from
// fuzz bytes: byte i decides presence and value of entry i (mod the
// matrix size), with a salt separating the three operands.
func matrixFromBytes(m, n int, data []byte, salt byte) *sparse.CSR[float64] {
	coo := sparse.NewCOO[float64](m, n, len(data))
	for i, raw := range data {
		x := raw ^ (salt * 97)
		if x%3 == 0 {
			continue // leave a hole
		}
		pos := (i*131 + int(x)) % (m * n)
		coo.Append(int32(pos/n), int32(pos%n), float64(x%16)-7)
	}
	out, err := coo.ToCSR(func(a, b float64) float64 { return a + b })
	if err != nil {
		panic(err)
	}
	return out
}
