package core

import (
	"fmt"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Masked SpGEVM — the single-row form v⊺ = m⊺ ⊙ (u⊺B) the paper uses
// to present all of §5's algorithms. It is exposed because masked
// vector-matrix products are the building block of frontier-style
// graph traversals (§4's push/pull motivation); internal/graph's
// direction-optimized BFS is built on it.

// MaskedSpVM computes v = m ⊙ (u⊺B) (complement: v = ¬m ⊙ (u⊺B))
// where mask holds the admitted (sorted) positions. Supported
// algorithms: AlgoMSA, AlgoHash, AlgoHeap, AlgoHeapDot (plain), and
// AlgoMSA/AlgoHash/AlgoHeap for complemented masks. The call is
// serial — a single row has no row-level parallelism to exploit
// (§3: the paper deliberately does not parallelize single-row
// formation).
func MaskedSpVM[T any, S semiring.Semiring[T]](sr S, mask []int32, u *sparse.Vector[T], b *sparse.CSR[T], opt Options) (*sparse.Vector[T], error) {
	if u.N != b.Rows {
		return nil, fmt.Errorf("core: vector has dimension %d but B has %d rows", u.N, b.Rows)
	}
	if opt.Complement {
		return maskedSpVMComplement(sr, mask, u, b, opt)
	}
	out := sparse.NewVector[T](b.Cols)
	outIdx := make([]int32, len(mask))
	outVal := make([]T, len(mask))
	var n int
	switch opt.Algorithm {
	case AlgoMSA, AlgoMSAEpoch, AlgoHybrid:
		acc := accum.NewMSA[T](sr, b.Cols)
		n = pushRowNumeric[T](acc, mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHash:
		acc := accum.NewHash[T](sr, len(mask), opt.HashLoadFactor)
		n = pushRowNumeric[T](acc, mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoMCA:
		acc := accum.NewMCA[T](sr, len(mask))
		n = mcaRowNumeric(acc, mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHeap:
		pq := accum.NewIterHeap(u.NNZ())
		n = heapRowNumeric(sr, pq, 1, mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHeapDot:
		pq := accum.NewIterHeap(u.NNZ())
		n = heapRowNumeric(sr, pq, heapInspectInf, mask, u.Idx, u.Val, b, outIdx, outVal)
	default:
		return nil, fmt.Errorf("core: MaskedSpVM does not support %v", opt.Algorithm)
	}
	out.Idx = outIdx[:n]
	out.Val = outVal[:n]
	return out, nil
}

// maskedSpVMComplement is the ¬m ⊙ (u⊺B) form.
func maskedSpVMComplement[T any, S semiring.Semiring[T]](sr S, mask []int32, u *sparse.Vector[T], b *sparse.CSR[T], opt Options) (*sparse.Vector[T], error) {
	bound := rowGenBound(u.Idx, b)
	if free := b.Cols - len(mask); bound > free {
		bound = free
	}
	outIdx := make([]int32, bound)
	outVal := make([]T, bound)
	var n int
	switch opt.Algorithm {
	case AlgoMSA, AlgoMSAEpoch:
		acc := accum.NewMSAC[T](sr, b.Cols)
		n = pushRowNumericC[T](acc, mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHash:
		acc := accum.NewHashC[T](sr, 16, opt.HashLoadFactor)
		n = pushRowNumericC[T](acc, mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHeap, AlgoHeapDot:
		pq := accum.NewIterHeap(u.NNZ())
		n = heapRowNumericComplement(sr, pq, mask, u.Idx, u.Val, b, outIdx, outVal)
	default:
		return nil, fmt.Errorf("core: complemented MaskedSpVM does not support %v", opt.Algorithm)
	}
	out := sparse.NewVector[T](b.Cols)
	out.Idx = outIdx[:n]
	out.Val = outVal[:n]
	return out, nil
}
