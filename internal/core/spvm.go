package core

import (
	"fmt"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Masked SpGEVM — the single-row form v⊺ = m⊺ ⊙ (u⊺B) the paper uses
// to present all of §5's algorithms. It is exposed because masked
// vector-matrix products are the building block of frontier-style
// graph traversals (§4's push/pull motivation); internal/graph's
// direction-optimized BFS is built on it.

// MaskedSpVM computes v = m ⊙ (u⊺B) (complement: v = ¬m ⊙ (u⊺B))
// where mask holds the admitted (sorted) positions. Supported
// algorithms: AlgoMSA, AlgoMSAEpoch, AlgoHash, AlgoMCA, AlgoHeap,
// AlgoHeapDot, and AlgoHybrid (treated as MSA — a single row has no
// per-row scheme choice to make) for plain masks, and AlgoMSA/
// AlgoMSAEpoch/AlgoHash/AlgoHeap/AlgoHeapDot for complemented masks. The call is serial — a single
// row has no row-level parallelism to exploit (§3: the paper
// deliberately does not parallelize single-row formation).
func MaskedSpVM[T any, S semiring.Semiring[T]](sr S, mask []int32, u *sparse.Vector[T], b *sparse.CSR[T], opt Options) (*sparse.Vector[T], error) {
	return MaskedSpVMWith(NewExecutor[T](sr), mask, u, b, opt)
}

// MaskedSpVMWith is MaskedSpVM drawing its accumulator and output
// scratch from exec's worker-0 workspace, so a traversal loop (one
// masked SpVM per BFS level) allocates only the exact-size result
// vectors after warm-up. exec must not be used concurrently.
func MaskedSpVMWith[T any, S semiring.Semiring[T]](exec *Executor[T, S], mask []int32, u *sparse.Vector[T], b *sparse.CSR[T], opt Options) (*sparse.Vector[T], error) {
	if u.N != b.Rows {
		return nil, fmt.Errorf("core: vector has dimension %d but B has %d rows", u.N, b.Rows)
	}
	exec.ensureWorkers(1)
	ws := exec.worker(0)
	if opt.Complement {
		return maskedSpVMComplement(exec, ws, mask, u, b, opt)
	}
	outIdx, outVal := exec.scratch.slab(int64(len(mask)))
	var n int
	switch opt.Algorithm {
	case AlgoMSA, AlgoHybrid:
		n = pushRowNumeric[T](ws.MSA(b.Cols), mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoMSAEpoch:
		n = pushRowNumeric[T](ws.MSAEpoch(b.Cols), mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHash:
		n = pushRowNumeric[T](ws.Hash(len(mask), opt.HashLoadFactor), mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoMCA:
		n = mcaRowNumeric(ws.MCA(len(mask)), mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHeap:
		n = heapRowNumeric(exec.sr, ws.Heap(u.NNZ()), 1, mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHeapDot:
		n = heapRowNumeric(exec.sr, ws.Heap(u.NNZ()), heapInspectInf, mask, u.Idx, u.Val, b, outIdx, outVal)
	default:
		return nil, fmt.Errorf("core: MaskedSpVM does not support %v", opt.Algorithm)
	}
	return vectorFromScratch(b.Cols, outIdx, outVal, n), nil
}

// maskedSpVMComplement is the ¬m ⊙ (u⊺B) form.
func maskedSpVMComplement[T any, S semiring.Semiring[T]](exec *Executor[T, S], ws *workspace[T, S], mask []int32, u *sparse.Vector[T], b *sparse.CSR[T], opt Options) (*sparse.Vector[T], error) {
	bound := rowGenBound(u.Idx, b)
	if free := b.Cols - len(mask); bound > free {
		bound = free
	}
	outIdx, outVal := exec.scratch.slab(int64(bound))
	var n int
	switch opt.Algorithm {
	case AlgoMSA, AlgoMSAEpoch:
		n = pushRowNumericC[T](ws.MSAC(b.Cols), mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHash:
		n = pushRowNumericC[T](ws.HashC(opt.HashLoadFactor), mask, u.Idx, u.Val, b, outIdx, outVal)
	case AlgoHeap, AlgoHeapDot:
		n = heapRowNumericComplement(exec.sr, ws.Heap(u.NNZ()), mask, u.Idx, u.Val, b, outIdx, outVal)
	default:
		return nil, fmt.Errorf("core: complemented MaskedSpVM does not support %v", opt.Algorithm)
	}
	return vectorFromScratch(b.Cols, outIdx, outVal, n), nil
}

// vectorFromScratch copies the first n scratch entries into an
// exact-size result vector. The copy is what lets the scratch slab be
// pooled: results never alias executor memory, so a BFS loop can feed
// one level's output back in as the next level's frontier.
func vectorFromScratch[T any](n64 int, outIdx []int32, outVal []T, n int) *sparse.Vector[T] {
	out := sparse.NewVector[T](n64)
	out.Idx = append(make([]int32, 0, n), outIdx[:n]...)
	out.Val = append(make([]T, 0, n), outVal[:n]...)
	return out
}
