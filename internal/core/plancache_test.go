package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

var ptSR = semiring.PlusTimes[float64]{}

// TestPlanCacheValueMutationHits pins the fingerprint contract: values
// are not structure, so re-looking-up the same matrices after mutating
// every value in place must return the SAME cached plan — and the plan
// must still compute correct results for the new values.
func TestPlanCacheValueMutationHits(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 48, 48, 48, 6, 6, 8, 11})
	cache := NewPlanCache(ptSR, 0, 0)
	opt := Options{Algorithm: AlgoInner}
	p1, err := cache.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Val {
		a.Val[i] *= -3
	}
	for i := range b.Val {
		b.Val[i] += 0.5
	}
	p2, err := cache.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("value mutation changed the cache key; structure fingerprints must ignore values")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	exec := NewExecutor[float64](ptSR)
	got, err := p2.ExecuteOn(exec, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.Diff(oracle(mask, a, b, false), got, floatEq); d != "" {
		t.Fatalf("cached plan stale after value mutation: %s", d)
	}
}

// TestPlanCacheStructureMutationMisses is the other half of the
// contract: mutating column indices in place — same pointers, new
// structure — must miss and re-plan, and the new plan must be correct
// for the new structure.
func TestPlanCacheStructureMutationMisses(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 48, 48, 48, 6, 6, 8, 12})
	cache := NewPlanCache(ptSR, 0, 0)
	opt := Options{Algorithm: AlgoMSA}
	p1, err := cache.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Shift one B column index to a structurally-valid neighbour (keeps
	// rows sorted and in range): same nnz, same pointers, new pattern.
	mutated := false
	for i := 0; i < b.Rows && !mutated; i++ {
		row := b.Row(i)
		for k := range row {
			next := int32(b.Cols) // exclusive upper bound for this slot
			if k+1 < len(row) {
				next = row[k+1]
			}
			if row[k]+1 < next {
				row[k]++
				mutated = true
				break
			}
		}
	}
	if !mutated {
		t.Fatal("test graph too dense to nudge a column index")
	}
	p2, err := cache.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("in-place structure mutation did not change the cache key")
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses", st)
	}
	exec := NewExecutor[float64](ptSR)
	got, err := p2.ExecuteOn(exec, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.Diff(oracle(mask, a, b, false), got, floatEq); d != "" {
		t.Fatalf("re-planned result wrong after structure mutation: %s", d)
	}
}

// TestPlanCacheMaskCloneSafety: an entry must stay correct for genuine
// re-occurrences of its structure even after the ORIGINAL mask object
// used to build it was mutated in place (cached plans own a clone).
func TestPlanCacheMaskCloneSafety(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 48, 48, 48, 6, 6, 8, 13})
	snapshot := mask.Clone() // same structure, different object
	cache := NewPlanCache(ptSR, 0, 0)
	opt := Options{Algorithm: AlgoMSA}
	if _, err := cache.GetOrPlan(mask, a, b, opt); err != nil {
		t.Fatal(err)
	}
	// Vandalize the original mask's structure in place.
	for i := range mask.ColIdx {
		mask.ColIdx[i] = 0
	}
	// A structurally-identical pattern (the snapshot) must hit the old
	// entry and execute against the entry's private clone, not the
	// vandalized original.
	p, err := cache.GetOrPlan(snapshot, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want the snapshot lookup to hit", st)
	}
	got, err := p.ExecuteOn(NewExecutor[float64](ptSR), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.Diff(oracle(snapshot, a, b, false), got, floatEq); d != "" {
		t.Fatalf("cached plan read the mutated caller mask: %s", d)
	}
}

// TestPlanCacheOptionsInKey: the same structure under different
// options is a different plan.
func TestPlanCacheOptionsInKey(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 32, 32, 32, 4, 4, 6, 14})
	cache := NewPlanCache(ptSR, 0, 0)
	p1, err := cache.GetOrPlan(mask, a, b, Options{Algorithm: AlgoMSA})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cache.GetOrPlan(mask, a, b, Options{Algorithm: AlgoHash})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := cache.GetOrPlan(mask, a, b, Options{Algorithm: AlgoMSA, Phases: TwoPhase})
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 || p1 == p3 || p2 == p3 {
		t.Fatal("options must be part of the cache key")
	}
	if st := cache.Stats(); st.Misses != 3 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 distinct entries", st)
	}
}

// TestPlanCacheEviction exercises the LRU entry bound: the
// least-recently-used entry goes first, and a re-request of an evicted
// structure re-plans.
func TestPlanCacheEviction(t *testing.T) {
	cache := NewPlanCache(ptSR, 2, 0)
	masks := make([]*sparse.Pattern, 3)
	var as, bs [3]*sparse.CSR[float64]
	for i := range masks {
		masks[i], as[i], bs[i] = buildCase(caseSpec{"", 24 + 8*i, 24 + 8*i, 24 + 8*i, 4, 4, 4, uint64(20 + i)})
	}
	plans := make([]*Plan[float64, semiring.PlusTimes[float64]], 3)
	for i := range masks {
		p, err := cache.GetOrPlan(masks[i], as[i], bs[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = p
	}
	st := cache.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	// Structure 0 was LRU and evicted: this lookup must re-plan.
	p0, err := cache.GetOrPlan(masks[0], as[0], bs[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p0 == plans[0] {
		t.Fatal("evicted entry was returned")
	}
	// Structure 2 is still resident.
	p2, err := cache.GetOrPlan(masks[2], as[2], bs[2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p2 != plans[2] {
		t.Fatal("resident entry was lost")
	}
}

// TestPlanCacheByteBound exercises the byte bound: entries evict once
// the estimated analysis footprint exceeds the cap, but the newest
// entry always stays.
func TestPlanCacheByteBound(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 64, 64, 64, 6, 6, 8, 30})
	probe, err := newDetachedPlan(ptSR, mask.Clone(), a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perEntry := probe.footprintBytes()
	// Room for two entries, not three.
	cache := NewPlanCache(ptSR, 0, 2*perEntry+perEntry/2)
	for i := 0; i < 3; i++ {
		m, ai, bi := buildCase(caseSpec{"", 64, 64, 64, 6, 6, 8, uint64(30 + i)})
		if _, err := cache.GetOrPlan(m, ai, bi, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want byte-bound evictions", st)
	}
	if st.Bytes > 2*perEntry+perEntry/2 {
		t.Fatalf("retained bytes %d exceed bound", st.Bytes)
	}
	if st.Entries == 0 {
		t.Fatal("byte bound must never evict the newest entry")
	}
}

// TestPlanCacheHitAllocs asserts the serving-path property the cache
// exists for: a repeat-structure lookup allocates nothing.
func TestPlanCacheHitAllocs(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 96, 96, 96, 8, 8, 8, 40})
	cache := NewPlanCache(ptSR, 0, 0)
	opt := Options{Algorithm: AlgoInner}
	if _, err := cache.GetOrPlan(mask, a, b, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := cache.GetOrPlan(mask, a, b, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f objects, want 0", allocs)
	}
}

// TestPlanCacheSharedPlanConcurrent executes ONE shared cached plan
// from many goroutines, each with its own pooled executor, and checks
// every result. Inner is used deliberately: it exercises the
// executor-owned CSC value refresh, the piece of per-execution state
// that used to live (mutably) on the plan. Run under -race this is the
// plan-immutability proof.
func TestPlanCacheSharedPlanConcurrent(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 96, 96, 96, 8, 8, 10, 41})
	want := oracle(mask, a, b, false)
	cache := NewPlanCache(ptSR, 0, 0)
	pool := NewExecutorPool(ptSR, 4)
	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				plan, err := cache.GetOrPlan(mask, a, b, Options{Algorithm: AlgoInner})
				if err != nil {
					errs <- err
					return
				}
				exec := pool.Get()
				got, err := plan.ExecuteOn(exec, a, b)
				pool.Put(exec)
				if err != nil {
					errs <- err
					return
				}
				if d := sparse.Diff(want, got, floatEq); d != "" {
					errs <- fmt.Errorf("concurrent result differs: %s", d)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits+st.Misses != goroutines*rounds {
		t.Fatalf("lookup count %d, want %d", st.Hits+st.Misses, goroutines*rounds)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 shared plan", st.Entries)
	}
}

// TestSharedPlanHasNoDefaultExecutor pins the ownership rule: a cached
// plan cannot be executed without the caller supplying an executor.
func TestSharedPlanHasNoDefaultExecutor(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 24, 24, 24, 4, 4, 4, 50})
	cache := NewPlanCache(ptSR, 0, 0)
	plan, err := cache.GetOrPlan(mask, a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(a, b); err == nil {
		t.Fatal("Execute on a shared plan must error; ExecuteOn is required")
	}
}

// TestExecutorPool covers the checkout/return lifecycle: reuse of the
// returned executor, the maxIdle discard bound, the double-Put panic,
// and the counters.
func TestExecutorPool(t *testing.T) {
	pool := NewExecutorPool(ptSR, 1)
	e1 := pool.Get()
	e2 := pool.Get()
	pool.Put(e1)
	if got := pool.Get(); got != e1 {
		t.Fatal("pool did not reuse the idle executor")
	}
	pool.Put(e1)
	pool.Put(e2) // beyond maxIdle: discarded
	st := pool.Stats()
	if st.Created != 2 || st.Reused != 1 || st.Discarded != 1 || st.Idle != 1 {
		t.Fatalf("stats = %+v", st)
	}
	pool.Put(nil) // no-op
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Put must panic")
			}
		}()
		pool.Put(e1)
	}()
}

// TestExecutorPoolReleasesBindings: a returned executor must not pin
// the last plan or operands (they may be cache-evicted or huge).
func TestExecutorPoolReleasesBindings(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 24, 24, 24, 4, 4, 4, 51})
	plan, err := NewPlan(ptSR, mask, a, b, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewExecutorPool(ptSR, 1)
	exec := pool.Get()
	if _, err := plan.ExecuteOn(exec, a, b); err != nil {
		t.Fatal(err)
	}
	if !exec.haveBound {
		t.Fatal("expected a cached binding after execution")
	}
	pool.Put(exec)
	if exec.haveBound || exec.lastPlan != nil || exec.lastA != nil || exec.lastB != nil {
		t.Fatal("Put must release plan/operand references")
	}
}

// BenchmarkPlanCache is the issue's acceptance benchmark: repeated
// NewPlan over a recurring structure through the cache must be ~
// allocation-free and >= 10x faster than uncached planning. The
// workload is triangle-counting-shaped (mask = A = B = L of an R-MAT
// graph), the recurring-structure case a server sees; Inner and Hybrid
// carry real analysis (CSC transposition, per-row cost model), Hash
// carries the cheapest (a max-row scan), bounding the win from below.
func BenchmarkPlanCache(b *testing.B) {
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: 13, EdgeFactor: 16, Seed: 9})
	l := sparse.Tril(g)
	mask := l.PatternView()
	exec := NewExecutor[float64](ptSR)
	for _, algo := range []Algorithm{AlgoInner, AlgoHybrid, AlgoHash} {
		opt := Options{Algorithm: algo}
		b.Run(algo.String()+"/uncached", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewPlan(ptSR, mask, l, l, opt, exec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(algo.String()+"/cached", func(b *testing.B) {
			cache := NewPlanCache(ptSR, 0, 0)
			if _, err := cache.GetOrPlan(mask, l, l, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cache.GetOrPlan(mask, l, l, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPlanCacheSingleflight pins the miss-coalescing contract: a burst
// of N concurrent first requests for one structure runs the analysis
// exactly once — one true planner, N−1 coalesced waiters — and every
// caller receives the same shared plan.
func TestPlanCacheSingleflight(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 96, 96, 96, 6, 6, 8, 23})
	cache := NewPlanCache(ptSR, 0, 0)
	opt := Options{Algorithm: AlgoInner}

	const goroutines = 16
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	plans := make([]*Plan[float64, semiring.PlusTimes[float64]], goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			plans[g], errs[g] = cache.GetOrPlan(mask, a, b, opt)
		}(g)
	}
	start.Done()
	done.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if plans[g] != plans[0] {
			t.Fatalf("goroutine %d received a different plan", g)
		}
	}
	st := cache.Stats()
	if st.Hits+st.Misses != goroutines {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, goroutines)
	}
	// Exactly one goroutine planned; every other miss coalesced onto it
	// (latecomers may hit instead, which is equally plan-free).
	if st.Misses < 1 || st.CoalescedMisses != st.Misses-1 {
		t.Fatalf("misses = %d coalesced = %d, want coalesced = misses−1", st.Misses, st.CoalescedMisses)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestPlanCacheSingleflightError checks failed plannings propagate to
// every coalesced waiter and are not cached.
func TestPlanCacheSingleflightError(t *testing.T) {
	mask, a, _ := buildCase(caseSpec{"", 40, 40, 40, 4, 4, 4, 29})
	bad := gen.Random(41, 40, 4, 30) // wrong inner dimension
	cache := NewPlanCache(ptSR, 0, 0)

	const goroutines = 8
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			_, errs[g] = cache.GetOrPlan(mask, a, bad, Options{})
		}(g)
	}
	start.Done()
	done.Wait()
	for g, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d: expected dimension error", g)
		}
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("failed planning cached: %d entries", st.Entries)
	}
	// The key must not be stuck in-flight: a later valid-shape lookup
	// with the same options still works.
	if _, err := cache.GetOrPlan(mask, a, a, Options{}); err != nil {
		t.Fatalf("cache stuck after failed planning: %v", err)
	}
}

// TestPlanCacheSingleflightPanic pins the panic path: a planner that
// panics on malformed operand structure must propagate the panic to
// its own caller but unregister the in-flight key, so later lookups
// re-plan (and re-panic) instead of blocking forever on a wedged key.
func TestPlanCacheSingleflightPanic(t *testing.T) {
	// Structurally malformed A: a column index far past B's rows makes
	// the plan-time cost walk index out of range. Shapes are valid, so
	// validation passes and the panic happens mid-analysis. Rows stay
	// under the grain so the analysis runs on the calling goroutine.
	const n = 40
	badA := &sparse.CSR[float64]{
		Pattern: sparse.Pattern{Rows: n, Cols: n, RowPtr: make([]int64, n+1), ColIdx: []int32{90}},
		Val:     []float64{1},
	}
	for i := 1; i <= n; i++ {
		badA.RowPtr[i] = 1
	}
	_, _, b := buildCase(caseSpec{"", n, n, n, 4, 4, 4, 31})
	mask := gen.Random(n, n, 4, 32).PatternView()
	cache := NewPlanCache(ptSR, 0, 0)
	opt := Options{Algorithm: AlgoMSA, Threads: 2}

	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		_, _ = cache.GetOrPlan(mask, badA, b, opt)
		return
	}
	if !panicked() {
		t.Fatal("malformed structure did not panic (test premise broken)")
	}
	done := make(chan bool, 1)
	go func() { done <- panicked() }()
	select {
	case again := <-done:
		if !again {
			t.Fatal("second lookup neither panicked nor planned")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("key wedged: second lookup blocked on a dead in-flight call")
	}
}

// TestPlanCacheHybridMixedBindings pins the cache-hygiene contract of
// per-row poly plans (DESIGN.md §10): mixed bindings enter the cache
// key only through Options — structure fingerprints are untouched —
// so a Hybrid plan cached under the default (zero-value) options
// keeps hitting with zero allocations and replays its run encoding on
// every hit, while a different HybridFamilies restriction is a
// distinct entry.
func TestPlanCacheHybridMixedBindings(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 96, 96, 96, 8, 8, 8, 50})
	cache := NewPlanCache(ptSR, 0, 0)
	opt := Options{Algorithm: AlgoHybrid}
	first, err := cache.GetOrPlan(mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.runEnds) == 0 || len(first.runFam) == 0 {
		t.Fatal("cached poly plan ships no run encoding")
	}
	allocs := testing.AllocsPerRun(20, func() {
		p, err := cache.GetOrPlan(mask, a, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		if p != first {
			t.Fatal("repeat-structure lookup did not hit the cached plan")
		}
	})
	if allocs != 0 {
		t.Errorf("hybrid cache hit allocates %.1f objects, want 0", allocs)
	}
	restricted, err := cache.GetOrPlan(mask, a, b, Options{
		Algorithm: AlgoHybrid, HybridFamilies: Families(FamMSA),
	})
	if err != nil {
		t.Fatal(err)
	}
	if restricted == first {
		t.Error("HybridFamilies must participate in the cache key")
	}
	if n := cache.Len(); n != 2 {
		t.Errorf("cache holds %d entries, want 2", n)
	}
}

// TestPlanCacheStatsHybridFamilyRows checks the operator view: Stats()
// aggregates per-family bound row counts across cached hybrid plans,
// keyed by family name, with family-restricted plans counted under
// their actual binding — and reports nothing for uniform-scheme plans.
func TestPlanCacheStatsHybridFamilyRows(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 96, 96, 96, 8, 8, 8, 51})
	cache := NewPlanCache(ptSR, 0, 0)
	if _, err := cache.GetOrPlan(mask, a, b, Options{Algorithm: AlgoMSA}); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.HybridFamilyRows != nil {
		t.Fatalf("uniform plan reported family rows %v", st.HybridFamilyRows)
	}
	if _, err := cache.GetOrPlan(mask, a, b, Options{
		Algorithm: AlgoHybrid, HybridFamilies: Families(FamMaskedBit),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.GetOrPlan(mask, a, b, Options{Algorithm: AlgoHybrid}); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.HybridFamilyRows == nil {
		t.Fatal("cached hybrid plans reported no family rows")
	}
	if got := st.HybridFamilyRows[FamMaskedBit.String()]; got < int64(mask.Rows) {
		t.Errorf("MaskedBit rows = %d, want at least the restricted plan's %d", got, mask.Rows)
	}
	var total int64
	for _, n := range st.HybridFamilyRows {
		total += n
	}
	if total != 2*int64(mask.Rows) {
		t.Errorf("family rows sum to %d, want %d across two hybrid plans", total, 2*mask.Rows)
	}
}

// TestPlanCacheExecOnlyOptionsShareKey pins the serving regression the
// key normalization fixes: execution-only options (CollectSchedStats,
// ReuseOutput) must not fragment cache keys. Warming a structure
// without telemetry and then requesting it with telemetry on — the
// Session.Warm → Multiply(WithSchedStats()) pattern — must hit.
func TestPlanCacheExecOnlyOptionsShareKey(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 48, 48, 48, 6, 6, 8, 21})
	cache := NewPlanCache(ptSR, 0, 0)

	// Warm: plan without any execution-only options.
	warm, err := cache.GetOrPlan(mask, a, b, Options{Algorithm: AlgoMSA})
	if err != nil {
		t.Fatal(err)
	}
	// Serve: same structure, telemetry and pooled output requested.
	served, hit, err := cache.GetOrPlanObserved(mask, a, b, Options{
		Algorithm: AlgoMSA, CollectSchedStats: true, ReuseOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || served != warm {
		t.Fatal("execution-only options fragmented the plan-cache key; warm → multiply must hit")
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 hit / 1 miss", st)
	}

	// The canonical cached plan carries no execution-only options, so
	// telemetry must be honored per execution via ExecuteOnOpts.
	exec := NewExecutor[float64](ptSR)
	got, err := served.ExecuteOnOpts(exec, a, b, ExecOptions{CollectSchedStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.Diff(oracle(mask, a, b, false), got, floatEq); d != "" {
		t.Fatalf("shared plan wrong under per-execution options: %s", d)
	}
	if exec.SchedStats().Claimed() == 0 {
		t.Fatal("per-execution CollectSchedStats on a warm-planted plan recorded nothing")
	}
}

// TestPlanCacheObservedReportsMiss pins GetOrPlanObserved's hit signal:
// the first lookup of a structure reports a miss, the second a hit.
func TestPlanCacheObservedReportsMiss(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 32, 32, 32, 4, 4, 6, 22})
	cache := NewPlanCache(ptSR, 0, 0)
	if _, hit, err := cache.GetOrPlanObserved(mask, a, b, Options{}); err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := cache.GetOrPlanObserved(mask, a, b, Options{}); err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v, want hit", hit, err)
	}
}
