package core

import (
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// spvmOracle computes the masked vector product via the dense matrix
// oracle on a 1×k "matrix" u.
func spvmOracle(mask []int32, u *sparse.Vector[float64], b *sparse.CSR[float64], complement bool) *sparse.Vector[float64] {
	um := &sparse.CSR[float64]{
		Pattern: sparse.Pattern{Rows: 1, Cols: u.N, RowPtr: []int64{0, int64(u.NNZ())}, ColIdx: u.Idx},
		Val:     u.Val,
	}
	mm := &sparse.Pattern{Rows: 1, Cols: b.Cols, RowPtr: []int64{0, int64(len(mask))}, ColIdx: mask}
	sr := semiring.PlusTimes[float64]{}
	c := sparse.DenseMaskedMultiply(mm, um, b, complement, sr.Add, sr.Mul, sr.Zero())
	return &sparse.Vector[float64]{N: b.Cols, Idx: c.Row(0), Val: c.RowVals(0)}
}

func vecEqual(a, b *sparse.Vector[float64]) bool {
	if a.N != b.N || a.NNZ() != b.NNZ() {
		return false
	}
	eq := sparse.FloatEq(1e-9)
	for k := range a.Idx {
		if a.Idx[k] != b.Idx[k] || !eq(a.Val[k], b.Val[k]) {
			return false
		}
	}
	return true
}

func TestMaskedSpVMAgainstOracle(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	b := gen.Random(60, 60, 8, 51)
	uRow := gen.Random(1, 60, 12, 52)
	u := sparse.RowVector(uRow, 0)
	maskRow := gen.Random(1, 60, 10, 53)
	mask := maskRow.Row(0)

	plainAlgos := []Algorithm{AlgoMSA, AlgoHash, AlgoMCA, AlgoHeap, AlgoHeapDot}
	want := spvmOracle(mask, u, b, false)
	for _, algo := range plainAlgos {
		got, err := MaskedSpVM(sr, mask, u, b, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !vecEqual(want, got) {
			t.Errorf("%v: mismatch (got %v/%v, want %v/%v)", algo, got.Idx, got.Val, want.Idx, want.Val)
		}
	}

	compAlgos := []Algorithm{AlgoMSA, AlgoHash, AlgoHeap}
	wantC := spvmOracle(mask, u, b, true)
	for _, algo := range compAlgos {
		got, err := MaskedSpVM(sr, mask, u, b, Options{Algorithm: algo, Complement: true})
		if err != nil {
			t.Fatalf("%v complement: %v", algo, err)
		}
		if !vecEqual(wantC, got) {
			t.Errorf("%v complement: mismatch", algo)
		}
	}
}

func TestMaskedSpVMErrors(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	b := gen.Random(10, 10, 3, 1)
	u := sparse.NewVector[float64](11) // wrong dimension
	if _, err := MaskedSpVM(sr, nil, u, b, Options{}); err == nil {
		t.Error("want dimension error")
	}
	u2 := sparse.NewVector[float64](10)
	if _, err := MaskedSpVM(sr, nil, u2, b, Options{Algorithm: AlgoInner}); err == nil {
		t.Error("want unsupported-algorithm error for Inner")
	}
	if _, err := MaskedSpVM(sr, nil, u2, b, Options{Algorithm: AlgoMCA, Complement: true}); err == nil {
		t.Error("want unsupported-algorithm error for complemented MCA")
	}
}

func TestMaskedSpVMEmpty(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	b := gen.Random(10, 10, 3, 2)
	u := sparse.NewVector[float64](10)
	got, err := MaskedSpVM(sr, []int32{0, 5}, u, b, Options{Algorithm: AlgoMSA})
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Error("empty vector times matrix must be empty")
	}
	got, err = MaskedSpVM(sr, nil, sparse.RowVector(gen.Random(1, 10, 5, 3), 0), b, Options{Algorithm: AlgoMSA})
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Error("empty mask must produce empty output")
	}
}

func TestHybridRowStats(t *testing.T) {
	// Dense inputs + sparse mask → mostly pull rows.
	aD := gen.Random(64, 64, 32, 61)
	mSparse := gen.Random(64, 64, 1, 62).PatternView()
	pull, push := HybridRowStats(mSparse, aD, aD)
	if pull+push != 64 {
		t.Fatalf("rows don't add up: %d+%d", pull, push)
	}
	if pull == 0 {
		t.Error("dense inputs + sparse mask should produce pull rows")
	}
	// Sparse inputs + dense mask → mostly push rows.
	aS := gen.Random(64, 64, 2, 63)
	mDense := gen.Random(64, 64, 48, 64).PatternView()
	pull2, push2 := HybridRowStats(mDense, aS, aS)
	if push2 == 0 {
		t.Error("sparse inputs + dense mask should produce push rows")
	}
	_ = pull2
}

// TestHybridMixedRegime builds a matrix whose rows straddle the
// crossover and checks Hybrid still matches the oracle (the per-row
// switch must not corrupt boundaries).
func TestHybridMixedRegime(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	n := 100
	// Mask: first half rows dense, second half nearly empty.
	coo := sparse.NewCOO[float64](n, n, 0)
	rng := gen.NewRNG(65)
	for i := 0; i < n; i++ {
		deg := 40
		if i >= n/2 {
			deg = 1
		}
		for d := 0; d < deg; d++ {
			coo.Append(int32(i), int32(rng.Intn(n)), 1)
		}
	}
	maskM, err := coo.ToCSR(nil)
	if err != nil {
		t.Fatal(err)
	}
	mask := maskM.PatternView()
	a := gen.Random(n, n, 20, 66)
	b := gen.Random(n, n, 20, 67)
	want := sparse.DenseMaskedMultiply(mask, a, b, false, sr.Add, sr.Mul, sr.Zero())
	for _, ph := range []Phases{OnePhase, TwoPhase} {
		got, err := MaskedSpGEMM(sr, mask, a, b, Options{Algorithm: AlgoHybrid, Phases: ph})
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.Diff(want, got, sparse.FloatEq(1e-9)); d != "" {
			t.Fatalf("hybrid %v: %s", ph, d)
		}
	}
	pull, push := HybridRowStats(mask, a, b)
	if pull == 0 || push == 0 {
		t.Errorf("mixed regime should use both paths (pull=%d push=%d)", pull, push)
	}
}
