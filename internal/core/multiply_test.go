package core

import (
	"fmt"
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

var floatEq = sparse.FloatEq(1e-9)

// allOptions enumerates every algorithm × phase combination.
func allOptions() []Options {
	var opts []Options
	for _, algo := range Algorithms() {
		for _, ph := range []Phases{OnePhase, TwoPhase} {
			opts = append(opts, Options{Algorithm: algo, Phases: ph})
		}
	}
	return opts
}

// oracle computes the ground truth with the dense reference.
func oracle(mask *sparse.Pattern, a, b *sparse.CSR[float64], complement bool) *sparse.CSR[float64] {
	sr := semiring.PlusTimes[float64]{}
	return sparse.DenseMaskedMultiply(mask, a, b, complement, sr.Add, sr.Mul, sr.Zero())
}

type caseSpec struct {
	name       string
	m, k, n    int
	dA, dB, dM int
	seed       uint64
}

func testCases() []caseSpec {
	return []caseSpec{
		{"square-balanced", 64, 64, 64, 8, 8, 8, 1},
		{"square-dense-mask", 48, 48, 48, 4, 4, 24, 2},
		{"square-sparse-mask", 80, 80, 80, 16, 16, 2, 3},
		{"rect-wide", 40, 96, 160, 6, 12, 10, 4},
		{"rect-tall", 160, 48, 32, 5, 7, 6, 5},
		{"tiny", 3, 4, 5, 2, 2, 2, 6},
		{"dense-inputs", 32, 32, 32, 24, 24, 8, 7},
		{"single-row", 1, 50, 50, 10, 5, 10, 8},
		{"single-col", 50, 50, 1, 5, 1, 1, 9},
	}
}

func buildCase(c caseSpec) (*sparse.Pattern, *sparse.CSR[float64], *sparse.CSR[float64]) {
	a := gen.Random(c.m, c.k, c.dA, c.seed*1000+1)
	b := gen.Random(c.k, c.n, c.dB, c.seed*1000+2)
	mask := gen.Random(c.m, c.n, c.dM, c.seed*1000+3).PatternView()
	return mask, a, b
}

// TestMaskedSpGEMMAgainstOracle cross-validates every algorithm and
// phase combination, plain and complemented, on a spread of shapes and
// densities.
func TestMaskedSpGEMMAgainstOracle(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	for _, c := range testCases() {
		mask, a, b := buildCase(c)
		for _, complement := range []bool{false, true} {
			want := oracle(mask, a, b, complement)
			for _, opt := range allOptions() {
				opt.Complement = complement
				if complement && !SupportsComplement(opt.Algorithm) {
					continue
				}
				name := fmt.Sprintf("%s/%s/complement=%v", c.name, opt.SchemeName(), complement)
				t.Run(name, func(t *testing.T) {
					got, err := MaskedSpGEMM(sr, mask, a, b, opt)
					if err != nil {
						t.Fatalf("MaskedSpGEMM: %v", err)
					}
					if err := got.Validate(); err != nil {
						t.Fatalf("invalid output: %v", err)
					}
					if d := sparse.Diff(want, got, floatEq); d != "" {
						t.Fatalf("mismatch vs oracle: %s", d)
					}
				})
			}
		}
	}
}

// TestMaskedSpGEMMThreadInvariance checks results are identical across
// thread counts and grain sizes (rows are independent, so outputs must
// be bit-for-bit equal).
func TestMaskedSpGEMMThreadInvariance(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 128, 128, 128, 8, 8, 8, 42})
	for _, algo := range Algorithms() {
		for _, complement := range []bool{false, true} {
			if complement && !SupportsComplement(algo) {
				continue
			}
			base, err := MaskedSpGEMM(sr, mask, a, b, Options{Algorithm: algo, Threads: 1, Complement: complement})
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			for _, threads := range []int{2, 3, 7} {
				for _, grain := range []int{1, 5, 1024} {
					got, err := MaskedSpGEMM(sr, mask, a, b, Options{
						Algorithm: algo, Threads: threads, Grain: grain, Complement: complement,
					})
					if err != nil {
						t.Fatalf("%v threads=%d: %v", algo, threads, err)
					}
					if !sparse.EqualFunc(base, got, func(x, y float64) bool { return x == y }) {
						t.Fatalf("%v complement=%v: result differs at threads=%d grain=%d",
							algo, complement, threads, grain)
					}
				}
			}
		}
	}
}

// TestMaskedSpGEMMEmptyOperands exercises empty masks, empty inputs,
// and empty intersections.
func TestMaskedSpGEMMEmptyOperands(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	a := gen.Random(20, 30, 4, 11)
	b := gen.Random(30, 25, 4, 12)
	emptyMask := &sparse.Pattern{Rows: 20, Cols: 25, RowPtr: make([]int64, 21)}
	emptyA := sparse.NewCSR[float64](20, 30)
	emptyB := sparse.NewCSR[float64](30, 25)
	fullMask := gen.Random(20, 25, 25, 13).PatternView()

	for _, opt := range allOptions() {
		t.Run(opt.SchemeName(), func(t *testing.T) {
			got, err := MaskedSpGEMM(sr, emptyMask, a, b, opt)
			if err != nil {
				t.Fatalf("empty mask: %v", err)
			}
			if got.NNZ() != 0 {
				t.Errorf("empty mask: want 0 nnz, got %d", got.NNZ())
			}
			got, err = MaskedSpGEMM(sr, fullMask, emptyA, b, opt)
			if err != nil {
				t.Fatalf("empty A: %v", err)
			}
			if got.NNZ() != 0 {
				t.Errorf("empty A: want 0 nnz, got %d", got.NNZ())
			}
			got, err = MaskedSpGEMM(sr, fullMask, a, emptyB, opt)
			if err != nil {
				t.Fatalf("empty B: %v", err)
			}
			if got.NNZ() != 0 {
				t.Errorf("empty B: want 0 nnz, got %d", got.NNZ())
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("invalid empty result: %v", err)
			}
		})
	}
}

// TestMaskedSpGEMMDimensionErrors verifies shape validation.
func TestMaskedSpGEMMDimensionErrors(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	a := gen.Random(10, 20, 3, 1)
	b := gen.Random(20, 15, 3, 2)
	badMask := gen.Random(10, 14, 3, 3).PatternView() // wrong cols
	if _, err := MaskedSpGEMM(sr, badMask, a, b, Options{}); err == nil {
		t.Error("want error for mask shape mismatch")
	}
	badB := gen.Random(21, 15, 3, 4) // wrong inner dim
	mask := gen.Random(10, 15, 3, 5).PatternView()
	if _, err := MaskedSpGEMM(sr, mask, a, badB, Options{}); err == nil {
		t.Error("want error for inner dimension mismatch")
	}
}

// TestMCARejectsComplement checks MCA reports the documented
// limitation.
func TestMCARejectsComplement(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	a := gen.Random(10, 10, 3, 1)
	mask := gen.Random(10, 10, 3, 2).PatternView()
	_, err := MaskedSpGEMM(sr, mask, a, a, Options{Algorithm: AlgoMCA, Complement: true})
	if err == nil {
		t.Fatal("want error: MCA does not support complemented masks")
	}
}

// TestMaskedSpGEMMSemirings validates a non-arithmetic semiring
// (plus-pair) against a dense oracle using the same algebra.
func TestMaskedSpGEMMSemirings(t *testing.T) {
	sr := semiring.PlusPair[int64]{}
	af := gen.Random(40, 40, 6, 21)
	a := &sparse.CSR[int64]{Pattern: af.Pattern, Val: make([]int64, len(af.Val))}
	for i := range a.Val {
		a.Val[i] = 7 // arbitrary: PlusPair must ignore values
	}
	mask := gen.Random(40, 40, 6, 22).PatternView()
	want := sparse.DenseMaskedMultiply(mask, a, a, false, sr.Add, sr.Mul, sr.Zero())
	for _, opt := range allOptions() {
		got, err := MaskedSpGEMM(sr, mask, a, a, opt)
		if err != nil {
			t.Fatalf("%s: %v", opt.SchemeName(), err)
		}
		if !sparse.Equal(want, got) {
			t.Fatalf("%s: plus-pair mismatch: %s", opt.SchemeName(),
				sparse.Diff(want, got, func(x, y int64) bool { return x == y }))
		}
	}
}

// TestHeapNInspectVariants checks the NInspect override produces
// identical results for none, default, 1, 2, 16 and ∞.
func TestHeapNInspectVariants(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 60, 60, 60, 10, 10, 6, 77})
	want := oracle(mask, a, b, false)
	for _, nInspect := range []int{HeapInspectNone, HeapInspectDefault, 1, 2, 16, HeapInspectAll} {
		got, err := MaskedSpGEMM(sr, mask, a, b, Options{Algorithm: AlgoHeap, HeapNInspect: nInspect})
		if err != nil {
			t.Fatalf("NInspect=%d: %v", nInspect, err)
		}
		if d := sparse.Diff(want, got, floatEq); d != "" {
			t.Fatalf("NInspect=%d: %s", nInspect, d)
		}
	}
}

// TestHeapVsHeapDotDiffer pins the HeapNInspect sentinel semantics:
// the default options must leave Heap (NInspect=1) and HeapDot
// (NInspect=∞) on *different* code paths. This is a regression test
// for the zero-value-means-override bug.
func TestHeapVsHeapDotDiffer(t *testing.T) {
	// Construct a case where inspection provably drops iterators:
	// mask admits only low columns; B rows extend far beyond. Both
	// algorithms must be correct; the test asserts correctness under
	// both defaults and under explicit sentinel values matching them.
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 50, 50, 50, 12, 12, 3, 79})
	want := oracle(mask, a, b, false)
	for _, opt := range []Options{
		{Algorithm: AlgoHeap},
		{Algorithm: AlgoHeapDot},
		{Algorithm: AlgoHeap, HeapNInspect: 1},
		{Algorithm: AlgoHeapDot, HeapNInspect: HeapInspectAll},
	} {
		got, err := MaskedSpGEMM(sr, mask, a, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.Diff(want, got, floatEq); d != "" {
			t.Fatalf("%s: %s", opt.SchemeName(), d)
		}
	}
}

// TestInnerGallop checks the galloping dot produces identical results.
func TestInnerGallop(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	// Skewed: long A rows, short B columns — galloping's target shape.
	a := gen.Random(40, 200, 64, 81)
	b := gen.Random(200, 40, 2, 82)
	mask := gen.Random(40, 40, 12, 83).PatternView()
	want := oracle(mask, a, b, false)
	for _, ph := range []Phases{OnePhase, TwoPhase} {
		got, err := MaskedSpGEMM(sr, mask, a, b, Options{Algorithm: AlgoInner, InnerGallop: true, Phases: ph})
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.Diff(want, got, floatEq); d != "" {
			t.Fatalf("gallop %v: %s", ph, d)
		}
	}
}

// TestGallopTo pins the gallop search helper.
func TestGallopTo(t *testing.T) {
	s := []int32{2, 4, 4, 8, 16, 32}
	cases := []struct {
		key        int32
		from, want int
	}{
		{1, 0, 0}, {2, 0, 0}, {3, 0, 1}, {4, 0, 1}, {5, 0, 3},
		{16, 2, 4}, {33, 0, 6}, {8, 4, 4}, {2, 5, 5},
	}
	for _, c := range cases {
		if got := gallopTo(s, c.key, c.from); got != c.want {
			t.Errorf("gallopTo(%v, %d, %d) = %d, want %d", s, c.key, c.from, got, c.want)
		}
	}
	if got := gallopTo(nil, 5, 0); got != 0 {
		t.Errorf("gallopTo(empty) = %d", got)
	}
}

// TestHashLoadFactors checks the hash accumulator across load factors
// (the ablation axis) for correctness.
func TestHashLoadFactors(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 60, 60, 60, 10, 10, 10, 78})
	want := oracle(mask, a, b, false)
	for _, lf := range []float64{0.125, 0.25, 0.5, 0.75, 1.0} {
		got, err := MaskedSpGEMM(sr, mask, a, b, Options{Algorithm: AlgoHash, HashLoadFactor: lf})
		if err != nil {
			t.Fatalf("lf=%v: %v", lf, err)
		}
		if d := sparse.Diff(want, got, floatEq); d != "" {
			t.Fatalf("lf=%v: %s", lf, d)
		}
	}
}

// TestSpGEMMUnmasked validates the plain SpGEMM substrate against a
// dense multiply (via a full mask, which admits everything).
func TestSpGEMMUnmasked(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	a := gen.Random(50, 60, 8, 31)
	b := gen.Random(60, 40, 8, 32)
	// A full mask makes DenseMaskedMultiply compute the plain product.
	full := &sparse.Pattern{Rows: 50, Cols: 40, RowPtr: make([]int64, 51)}
	for i := 0; i < 50; i++ {
		for j := 0; j < 40; j++ {
			full.ColIdx = append(full.ColIdx, int32(j))
		}
		full.RowPtr[i+1] = int64(len(full.ColIdx))
	}
	want := sparse.DenseMaskedMultiply(full, a, b, false, sr.Add, sr.Mul, sr.Zero())
	for _, ph := range []Phases{OnePhase, TwoPhase} {
		got, err := SpGEMM(sr, a, b, Options{Phases: ph})
		if err != nil {
			t.Fatalf("SpGEMM: %v", err)
		}
		if d := sparse.Diff(want, got, floatEq); d != "" {
			t.Fatalf("phases=%v: %s", ph, d)
		}
	}
	if _, err := SpGEMM(sr, a, gen.Random(61, 40, 3, 33), Options{}); err == nil {
		t.Error("want inner-dimension error")
	}
}

// TestExplicitZerosKept pins GraphBLAS semantics: an output entry
// exists when products were accumulated there, even if they cancel to
// numeric zero (§5.1's SET state is about insertion, not value).
func TestExplicitZerosKept(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	// A = [1 -1], B = [[1],[1]] → (A·B)₀₀ = 0 via cancellation.
	a, _ := sparse.FromRows(1, 2, map[int]map[int]float64{0: {0: 1, 1: -1}})
	b, _ := sparse.FromRows(2, 1, map[int]map[int]float64{0: {0: 1}, 1: {0: 1}})
	mask, _ := sparse.FromRows(1, 1, map[int]map[int]float64{0: {0: 1}})
	for _, opt := range allOptions() {
		got, err := MaskedSpGEMM(sr, mask.PatternView(), a, b, opt)
		if err != nil {
			t.Fatalf("%s: %v", opt.SchemeName(), err)
		}
		if got.NNZ() != 1 {
			t.Errorf("%s: cancelled entry dropped (nnz=%d, want explicit zero kept)", opt.SchemeName(), got.NNZ())
			continue
		}
		if v, ok := got.At(0, 0); !ok || v != 0 {
			t.Errorf("%s: entry = %v, %v; want explicit 0", opt.SchemeName(), v, ok)
		}
	}
}

// TestFlopsCounts checks the flop counters on a hand-computable case.
func TestFlopsCounts(t *testing.T) {
	// A = [[1,1],[0,1]], B = [[1,0],[1,1]] (as patterns with values 1).
	a, _ := sparse.FromRows(2, 2, map[int]map[int]float64{0: {0: 1, 1: 1}, 1: {1: 1}})
	b, _ := sparse.FromRows(2, 2, map[int]map[int]float64{0: {0: 1}, 1: {0: 1, 1: 1}})
	if got := Flops(a, b); got != 5 {
		t.Errorf("Flops = %d, want 5", got)
	}
	// Mask admitting only (0,0): A row 0 hits B rows 0 {0} and 1 {0,1};
	// products landing on (0,0): from B_00 and B_10 → 2 flops.
	mask, _ := sparse.FromRows(2, 2, map[int]map[int]float64{0: {0: 1}})
	if got := MaskedFlops(mask.PatternView(), a, b, false); got != 2 {
		t.Errorf("MaskedFlops = %d, want 2", got)
	}
	// Complement of that mask admits everything except (0,0): 5-2 = 3.
	if got := MaskedFlops(mask.PatternView(), a, b, true); got != 3 {
		t.Errorf("MaskedFlops complement = %d, want 3", got)
	}
}
