package core

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Executor owns ALL mutable execution state of masked products: one
// workspace of lazily-constructed accumulators per worker, the
// one-phase tmp slabs, the refreshed CSC values of B for pull-based
// plans, the bound-kernel cache, and (opt-in) pooled output buffers.
// Everything is grow-only, so after a warm-up execution on the largest
// structure, repeated executions allocate approximately nothing.
//
// One Executor may back many Plans — the iterative applications
// (k-truss pruning, betweenness levels) build a fresh Plan per
// iteration because the operand structure changes, while the
// accumulators and slabs carry over. Conversely, one immutable Plan
// may be executed on many Executors (ExecuteOn), which is how a
// PlanCache serves concurrent requests. An Executor is NOT safe for
// concurrent use: executions sharing one must be sequential, and a
// pooled executor belongs to exactly one goroutine between checkout
// and return (DESIGN.md §8).
type Executor[T any, S semiring.Semiring[T]] struct {
	sr      S
	workers []*workspace[T, S]
	scratch engineScratch[T]

	// bt is the executor's CSC view of the current execution's B: plan
	// structure, executor values. The pointee is updated in place by
	// prepareCSC so bound kernels can keep reading exec.bt across
	// executions without re-binding. btVal is the grow-only backing
	// value buffer.
	bt    *sparse.CSC[T]
	btVal []T

	// Bound kernels are cached per (plan, A, B) identity so steady-state
	// executions allocate no closures.
	lastPlan  *Plan[T, S]
	lastA     *sparse.CSR[T]
	lastB     *sparse.CSR[T]
	bound     kernels[T]
	haveBound bool

	// schedStats is the telemetry target of executions run with
	// Options.CollectSchedStats; reset at the start of each such
	// execution, accumulated across its row passes.
	schedStats parallel.SchedStats
}

// SchedStats returns a copy of the per-worker scheduler telemetry
// (busy time, blocks claimed/stolen) recorded by the most recent
// execution on this executor that ran with Options.CollectSchedStats.
// Executions without the option leave the previous record in place.
func (e *Executor[T, S]) SchedStats() parallel.SchedStats {
	return e.schedStats.Clone()
}

// NewExecutor returns an empty executor over the given semiring.
func NewExecutor[T any, S semiring.Semiring[T]](sr S) *Executor[T, S] {
	return &Executor[T, S]{sr: sr}
}

// ensureWorkers grows the per-worker workspace slice to threads slots.
func (e *Executor[T, S]) ensureWorkers(threads int) {
	for len(e.workers) < threads {
		e.workers = append(e.workers, &workspace[T, S]{sr: e.sr})
	}
}

// worker returns worker tid's workspace. Safe without synchronization
// because each tid is owned by one goroutine and the slice is sized
// before the parallel region starts.
func (e *Executor[T, S]) worker(tid int) *workspace[T, S] {
	return e.workers[tid]
}

// prepareCSC brings the executor's CSC view of B up to date for one
// execution of p. For the SS:DOT baseline the transpose is rebuilt
// wholesale every call — its defining overhead (§8.4); otherwise the
// plan's cached CSC structure is combined with the executor's pooled
// value buffer and the values are refreshed through the recorded
// permutation. The refresh cannot be skipped on pointer identity: the
// Execute contract lets callers mutate B's values in place between
// executions, so identity proves nothing about value freshness, and
// the O(nnz) copy is within every pull scheme's numeric work anyway.
func (e *Executor[T, S]) prepareCSC(p *Plan[T, S], b *sparse.CSR[T]) {
	if !p.needsCSC() {
		return
	}
	if p.info.TransposePerExecute {
		if e.bt == nil {
			e.bt = &sparse.CSC[T]{}
		}
		*e.bt = *sparse.ToCSC(b)
		return
	}
	nnz := len(p.btIdx)
	if cap(e.btVal) < nnz {
		e.btVal = make([]T, nnz)
	}
	if e.bt == nil {
		e.bt = &sparse.CSC[T]{}
	}
	*e.bt = sparse.CSC[T]{
		Rows: p.bRows, Cols: p.bCols,
		ColPtr: p.btPtr, RowIdx: p.btIdx, Val: e.btVal[:nnz],
	}
	for i, q := range p.btPerm {
		e.bt.Val[i] = b.Val[q]
	}
}

// kernelsFor returns p's row kernels bound to (a, b) on this executor,
// reusing the previous binding when plan and operands are unchanged.
// Rebinding is cheap (two closures); the cache only exists so
// steady-state repeated executions allocate nothing.
func (e *Executor[T, S]) kernelsFor(p *Plan[T, S], a, b *sparse.CSR[T]) kernels[T] {
	if e.haveBound && e.lastPlan == p && e.lastA == a && e.lastB == b {
		return e.bound
	}
	bind := p.reg.plain
	if p.opt.Complement {
		bind = p.reg.complement
	}
	e.bound = bind(p, e, a, b)
	e.lastPlan, e.lastA, e.lastB = p, a, b
	e.haveBound = true
	return e.bound
}

// releaseBindings drops the executor's references to the last plan and
// operands so a pooled idle executor does not pin cache-evicted plans
// or caller matrices in memory. Accumulators and buffers — the state
// worth pooling — are kept.
func (e *Executor[T, S]) releaseBindings() {
	e.lastPlan, e.lastA, e.lastB = nil, nil, nil
	e.bound = kernels[T]{}
	e.haveBound = false
}

// workspace is one worker's pooled accumulator set. Each accumulator
// family is constructed on first use by a scheme that needs it and
// grown in place when a later product is wider.
type workspace[T any, S semiring.Semiring[T]] struct {
	sr       S
	msa      *accum.MSA[T, S]
	msaEpoch *accum.MSAEpoch[T, S]
	hash     *accum.Hash[T, S]
	mca      *accum.MCA[T, S]
	heap     *accum.IterHeap
	msac     *accum.MSAC[T, S]
	hashC    *accum.HashC[T, S]

	maskedBit  *accum.MaskedBit[T, S]
	maskedBitC *accum.MaskedBitC[T, S]
}

// MSA returns the worker's MSA sized for rows of width ncols.
func (w *workspace[T, S]) MSA(ncols int) *accum.MSA[T, S] {
	if w.msa == nil {
		w.msa = accum.NewMSA[T](w.sr, ncols)
	} else {
		w.msa.EnsureCols(ncols)
	}
	return w.msa
}

// MSAEpoch returns the worker's epoch-stamped MSA.
func (w *workspace[T, S]) MSAEpoch(ncols int) *accum.MSAEpoch[T, S] {
	if w.msaEpoch == nil {
		w.msaEpoch = accum.NewMSAEpoch[T](w.sr, ncols)
	} else {
		w.msaEpoch.EnsureCols(ncols)
	}
	return w.msaEpoch
}

// Hash returns the worker's hash accumulator configured for the given
// densest-mask-row hint and load factor.
func (w *workspace[T, S]) Hash(maxMaskRow int, loadFactor float64) *accum.Hash[T, S] {
	if w.hash == nil {
		w.hash = accum.NewHash[T](w.sr, maxMaskRow, loadFactor)
	} else {
		w.hash.Reconfigure(maxMaskRow, loadFactor)
	}
	return w.hash
}

// MCA returns the worker's mask-compressed accumulator.
func (w *workspace[T, S]) MCA(maxMaskRow int) *accum.MCA[T, S] {
	if w.mca == nil {
		w.mca = accum.NewMCA[T](w.sr, maxMaskRow)
	} else {
		w.mca.Grow(maxMaskRow)
	}
	return w.mca
}

// Heap returns the worker's iterator heap sized for maxARow iterators.
func (w *workspace[T, S]) Heap(maxARow int) *accum.IterHeap {
	if w.heap == nil {
		w.heap = accum.NewIterHeap(maxARow)
	} else {
		w.heap.Grow(maxARow)
	}
	return w.heap
}

// MSAC returns the worker's complemented MSA.
func (w *workspace[T, S]) MSAC(ncols int) *accum.MSAC[T, S] {
	if w.msac == nil {
		w.msac = accum.NewMSAC[T](w.sr, ncols)
	} else {
		w.msac.EnsureCols(ncols)
	}
	return w.msac
}

// MaskedBit returns the worker's bitmap-state accumulator sized for
// rows of width ncols.
func (w *workspace[T, S]) MaskedBit(ncols int) *accum.MaskedBit[T, S] {
	if w.maskedBit == nil {
		w.maskedBit = accum.NewMaskedBit[T](w.sr, ncols)
	} else {
		w.maskedBit.EnsureCols(ncols)
	}
	return w.maskedBit
}

// MaskedBitC returns the worker's complemented bitmap-state
// accumulator.
func (w *workspace[T, S]) MaskedBitC(ncols int) *accum.MaskedBitC[T, S] {
	if w.maskedBitC == nil {
		w.maskedBitC = accum.NewMaskedBitC[T](w.sr, ncols)
	} else {
		w.maskedBitC.EnsureCols(ncols)
	}
	return w.maskedBitC
}

// HashC returns the worker's complemented hash accumulator.
func (w *workspace[T, S]) HashC(loadFactor float64) *accum.HashC[T, S] {
	if w.hashC == nil {
		w.hashC = accum.NewHashC[T](w.sr, 16, loadFactor)
	} else {
		w.hashC.Reconfigure(loadFactor)
	}
	return w.hashC
}

// engineScratch pools the engine drivers' transient arrays: the
// one-phase slab (tmpIdx/tmpVal) that never escapes, and — only when
// reuseOut is set — the output triple (RowPtr/ColIdx/Val) that the
// returned matrix is built from. All buffers are grow-only. Methods
// tolerate a nil receiver, which means "allocate fresh every time"
// (the behaviour of the pre-plan engine).
type engineScratch[T any] struct {
	tmpIdx   []int32
	tmpVal   []T
	rowPtr   []int64
	colIdx   []int32
	val      []T
	reuseOut bool
}

// slab returns an n-entry tmp slab (pooled when pooling is available).
func (es *engineScratch[T]) slab(n int64) ([]int32, []T) {
	if es == nil {
		return make([]int32, n), make([]T, n)
	}
	if int64(cap(es.tmpIdx)) < n {
		es.tmpIdx = make([]int32, n)
		es.tmpVal = make([]T, n)
	}
	return es.tmpIdx[:n], es.tmpVal[:n]
}

// rowPtrBuf returns the n-entry array that will become the output
// RowPtr. It is pooled only under reuseOut — otherwise it escapes into
// the result and must be fresh.
func (es *engineScratch[T]) rowPtrBuf(n int) []int64 {
	if es == nil || !es.reuseOut {
		return make([]int64, n)
	}
	if cap(es.rowPtr) < n {
		es.rowPtr = make([]int64, n)
	}
	return es.rowPtr[:n]
}

// outBufs returns the nnz-entry ColIdx/Val arrays of the output,
// pooled only under reuseOut.
func (es *engineScratch[T]) outBufs(nnz int64) ([]int32, []T) {
	if es == nil || !es.reuseOut {
		return make([]int32, nnz), make([]T, nnz)
	}
	if int64(cap(es.colIdx)) < nnz {
		es.colIdx = make([]int32, nnz)
		es.val = make([]T, nnz)
	}
	return es.colIdx[:nnz], es.val[:nnz]
}
