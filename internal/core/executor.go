package core

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
)

// Executor owns the reusable execution state of masked products: one
// workspace of lazily-constructed accumulators per worker, the
// one-phase tmp slabs, and (opt-in) pooled output buffers. Everything
// is grow-only, so after a warm-up execution on the largest structure,
// repeated executions allocate approximately nothing.
//
// One Executor may back many Plans — the iterative applications
// (k-truss pruning, betweenness levels) build a fresh Plan per
// iteration because the operand structure changes, while the
// accumulators and slabs carry over. An Executor is NOT safe for
// concurrent use: executions sharing one must be sequential.
type Executor[T any, S semiring.Semiring[T]] struct {
	sr      S
	workers []*workspace[T, S]
	scratch engineScratch[T]
}

// NewExecutor returns an empty executor over the given semiring.
func NewExecutor[T any, S semiring.Semiring[T]](sr S) *Executor[T, S] {
	return &Executor[T, S]{sr: sr}
}

// ensureWorkers grows the per-worker workspace slice to threads slots.
func (e *Executor[T, S]) ensureWorkers(threads int) {
	for len(e.workers) < threads {
		e.workers = append(e.workers, &workspace[T, S]{sr: e.sr})
	}
}

// worker returns worker tid's workspace. Safe without synchronization
// because each tid is owned by one goroutine and the slice is sized
// before the parallel region starts.
func (e *Executor[T, S]) worker(tid int) *workspace[T, S] {
	return e.workers[tid]
}

// workspace is one worker's pooled accumulator set. Each accumulator
// family is constructed on first use by a scheme that needs it and
// grown in place when a later product is wider.
type workspace[T any, S semiring.Semiring[T]] struct {
	sr       S
	msa      *accum.MSA[T, S]
	msaEpoch *accum.MSAEpoch[T, S]
	hash     *accum.Hash[T, S]
	mca      *accum.MCA[T, S]
	heap     *accum.IterHeap
	msac     *accum.MSAC[T, S]
	hashC    *accum.HashC[T, S]
}

// MSA returns the worker's MSA sized for rows of width ncols.
func (w *workspace[T, S]) MSA(ncols int) *accum.MSA[T, S] {
	if w.msa == nil {
		w.msa = accum.NewMSA[T](w.sr, ncols)
	} else {
		w.msa.EnsureCols(ncols)
	}
	return w.msa
}

// MSAEpoch returns the worker's epoch-stamped MSA.
func (w *workspace[T, S]) MSAEpoch(ncols int) *accum.MSAEpoch[T, S] {
	if w.msaEpoch == nil {
		w.msaEpoch = accum.NewMSAEpoch[T](w.sr, ncols)
	} else {
		w.msaEpoch.EnsureCols(ncols)
	}
	return w.msaEpoch
}

// Hash returns the worker's hash accumulator configured for the given
// densest-mask-row hint and load factor.
func (w *workspace[T, S]) Hash(maxMaskRow int, loadFactor float64) *accum.Hash[T, S] {
	if w.hash == nil {
		w.hash = accum.NewHash[T](w.sr, maxMaskRow, loadFactor)
	} else {
		w.hash.Reconfigure(maxMaskRow, loadFactor)
	}
	return w.hash
}

// MCA returns the worker's mask-compressed accumulator.
func (w *workspace[T, S]) MCA(maxMaskRow int) *accum.MCA[T, S] {
	if w.mca == nil {
		w.mca = accum.NewMCA[T](w.sr, maxMaskRow)
	} else {
		w.mca.Grow(maxMaskRow)
	}
	return w.mca
}

// Heap returns the worker's iterator heap sized for maxARow iterators.
func (w *workspace[T, S]) Heap(maxARow int) *accum.IterHeap {
	if w.heap == nil {
		w.heap = accum.NewIterHeap(maxARow)
	} else {
		w.heap.Grow(maxARow)
	}
	return w.heap
}

// MSAC returns the worker's complemented MSA.
func (w *workspace[T, S]) MSAC(ncols int) *accum.MSAC[T, S] {
	if w.msac == nil {
		w.msac = accum.NewMSAC[T](w.sr, ncols)
	} else {
		w.msac.EnsureCols(ncols)
	}
	return w.msac
}

// HashC returns the worker's complemented hash accumulator.
func (w *workspace[T, S]) HashC(loadFactor float64) *accum.HashC[T, S] {
	if w.hashC == nil {
		w.hashC = accum.NewHashC[T](w.sr, 16, loadFactor)
	} else {
		w.hashC.Reconfigure(loadFactor)
	}
	return w.hashC
}

// engineScratch pools the engine drivers' transient arrays: the
// one-phase slab (tmpIdx/tmpVal) that never escapes, and — only when
// reuseOut is set — the output triple (RowPtr/ColIdx/Val) that the
// returned matrix is built from. All buffers are grow-only. Methods
// tolerate a nil receiver, which means "allocate fresh every time"
// (the behaviour of the pre-plan engine).
type engineScratch[T any] struct {
	tmpIdx   []int32
	tmpVal   []T
	rowPtr   []int64
	colIdx   []int32
	val      []T
	reuseOut bool
}

// slab returns an n-entry tmp slab (pooled when pooling is available).
func (es *engineScratch[T]) slab(n int64) ([]int32, []T) {
	if es == nil {
		return make([]int32, n), make([]T, n)
	}
	if int64(cap(es.tmpIdx)) < n {
		es.tmpIdx = make([]int32, n)
		es.tmpVal = make([]T, n)
	}
	return es.tmpIdx[:n], es.tmpVal[:n]
}

// rowPtrBuf returns the n-entry array that will become the output
// RowPtr. It is pooled only under reuseOut — otherwise it escapes into
// the result and must be fresh.
func (es *engineScratch[T]) rowPtrBuf(n int) []int64 {
	if es == nil || !es.reuseOut {
		return make([]int64, n)
	}
	if cap(es.rowPtr) < n {
		es.rowPtr = make([]int64, n)
	}
	return es.rowPtr[:n]
}

// outBufs returns the nnz-entry ColIdx/Val arrays of the output,
// pooled only under reuseOut.
func (es *engineScratch[T]) outBufs(nnz int64) ([]int32, []T) {
	if es == nil || !es.reuseOut {
		return make([]int32, nnz), make([]T, nnz)
	}
	if int64(cap(es.colIdx)) < nnz {
		es.colIdx = make([]int32, nnz)
		es.val = make([]T, nnz)
	}
	return es.colIdx[:nnz], es.val[:nnz]
}
