package core

import (
	"fmt"
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// skewedCase builds a masked product with a planted hub cluster: the
// first hubRows rows of A are dense (cost ~cols each) while the rest
// carry a couple of entries — the adversarial shape for a fixed row
// grain, which lumps all the hubs into one block.
func skewedCase(rows, cols, hubRows int) (*sparse.Pattern, *sparse.CSR[float64], *sparse.CSR[float64]) {
	rowsSpec := map[int]map[int]float64{}
	for i := 0; i < rows; i++ {
		r := map[int]float64{}
		if i < hubRows {
			for j := 0; j < cols; j += 2 {
				r[j] = 1
			}
		} else {
			r[(i*7)%cols] = 1
			r[(i*13+5)%cols] = 1
		}
		rowsSpec[i] = r
	}
	a, err := sparse.FromRows(rows, cols, rowsSpec)
	if err != nil {
		panic(err)
	}
	return a.PatternView(), a, a
}

// TestScheduleAutoResolution pins the SchedAuto policy: a planted hub
// cluster resolves to cost partitions, a uniform product stays on
// fixed grain, and explicit choices are always honored.
func TestScheduleAutoResolution(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}

	mask, a, b := skewedCase(512, 512, 4)
	p, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoMSA, Threads: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ResolvedSchedule(); got != SchedCostPartition {
		t.Errorf("skewed auto: resolved %v (skew %.1f), want CostPartition", got, p.CostSkew())
	}
	if p.CostSkew() < autoSkewFactor {
		t.Errorf("skewed case measured skew %.2f, expected ≥ %d", p.CostSkew(), autoSkewFactor)
	}
	// Partition bounds must tile [0, rows] monotonically.
	bounds := p.partBounds
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != mask.Rows {
		t.Fatalf("bounds do not tile rows: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
	if len(bounds)-1 > 4*costPartsPerWorker {
		t.Errorf("%d partitions exceed threads×slack = %d", len(bounds)-1, 4*costPartsPerWorker)
	}

	um, ua, ub := buildCase(caseSpec{"", 512, 512, 512, 8, 8, 8, 5})
	p, err = NewPlan(sr, um, ua, ub, Options{Algorithm: AlgoMSA, Threads: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ResolvedSchedule(); got != SchedFixedGrain {
		t.Errorf("uniform auto: resolved %v (skew %.1f), want FixedGrain", got, p.CostSkew())
	}

	for _, mode := range []Schedule{SchedFixedGrain, SchedCostPartition, SchedWorkSteal} {
		p, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoMSA, Threads: 4, Schedule: mode}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.ResolvedSchedule() != mode {
			t.Errorf("explicit %v: resolved %v", mode, p.ResolvedSchedule())
		}
	}
}

// TestSchedulePartitionBalance checks the equal-cost property: under
// the planted hub cluster no partition holds more than a modest
// multiple of the ideal cost share (a fixed 64-row grain would put all
// four hubs — nearly all the flops — into one block).
func TestSchedulePartitionBalance(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := skewedCase(512, 512, 4)
	p, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoMSA, Threads: 4, Schedule: SchedCostPartition}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cost := p.rowCosts(a, b)
	var total int64
	for _, c := range cost {
		total += c
	}
	nparts := len(p.partBounds) - 1
	ideal := float64(total) / float64(nparts)
	var maxRow int64
	for _, c := range cost {
		if c > maxRow {
			maxRow = c
		}
	}
	for j := 0; j < nparts; j++ {
		var part int64
		for i := p.partBounds[j]; i < p.partBounds[j+1]; i++ {
			part += cost[i]
		}
		// A partition may exceed the ideal share by at most one row
		// (rows are never split).
		if float64(part) > ideal+float64(maxRow) {
			t.Errorf("partition %d cost %d exceeds ideal %.0f + max row %d", j, part, ideal, maxRow)
		}
	}
}

// TestScheduleParity asserts every scheduling strategy computes the
// same product: the scheduler only changes who computes which row.
func TestScheduleParity(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := skewedCase(300, 300, 3)
	want := oracle(mask, a, b, false)
	for _, algo := range []Algorithm{AlgoMSA, AlgoHash, AlgoInner, AlgoHybrid} {
		for _, ph := range []Phases{OnePhase, TwoPhase} {
			for _, mode := range []Schedule{SchedAuto, SchedFixedGrain, SchedCostPartition, SchedWorkSteal} {
				for _, threads := range []int{1, 3} {
					opt := Options{Algorithm: algo, Phases: ph, Schedule: mode, Threads: threads}
					name := fmt.Sprintf("%s/%v/t%d", opt.SchemeName(), mode, threads)
					got, err := MaskedSpGEMM(sr, mask, a, b, opt)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if d := sparse.Diff(want, got, sparse.FloatEq(1e-12)); d != "" {
						t.Fatalf("%s: %s", name, d)
					}
				}
			}
		}
	}
}

// TestScheduleParityComplement runs the complemented path through the
// cost-partitioned and work-stealing schedulers.
func TestScheduleParityComplement(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 120, 100, 110, 5, 5, 12, 17})
	want := oracle(mask, a, b, true)
	for _, mode := range []Schedule{SchedCostPartition, SchedWorkSteal} {
		got, err := MaskedSpGEMM(sr, mask, a, b, Options{Algorithm: AlgoMSA, Complement: true, Schedule: mode, Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if d := sparse.Diff(want, got, sparse.FloatEq(1e-12)); d != "" {
			t.Fatalf("%v: %s", mode, d)
		}
	}
}

// TestSchedStatsCollected checks the telemetry path end to end:
// CollectSchedStats populates the executor's stats with the blocks the
// engine actually scheduled, and the option off leaves them untouched.
func TestSchedStatsCollected(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := skewedCase(256, 256, 2)
	p, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoMSA, Threads: 2, CollectSchedStats: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(a, b); err != nil {
		t.Fatal(err)
	}
	st := p.SchedStats()
	if st.Claimed() == 0 {
		t.Fatal("no blocks recorded with CollectSchedStats set")
	}
	if len(st.Workers) != 2 {
		t.Fatalf("stats sized for %d workers, want 2", len(st.Workers))
	}

	// Two-phase doubles the row passes; the count must accumulate
	// within one execution but reset across executions.
	first := st.Claimed()
	if _, err := p.Execute(a, b); err != nil {
		t.Fatal(err)
	}
	if got := p.SchedStats().Claimed(); got != first {
		t.Errorf("stats leaked across executions: %d then %d", first, got)
	}

	off, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoMSA, Threads: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.Execute(a, b); err != nil {
		t.Fatal(err)
	}
	if got := off.SchedStats().Claimed(); got != 0 {
		t.Errorf("stats recorded without the option: %d blocks", got)
	}
}

// TestScheduleString covers the Schedule names used in bench output.
func TestScheduleString(t *testing.T) {
	for want, s := range map[string]Schedule{
		"Auto": SchedAuto, "FixedGrain": SchedFixedGrain,
		"CostPartition": SchedCostPartition, "WorkSteal": SchedWorkSteal,
	} {
		if s.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(s), s.String(), want)
		}
	}
}

// TestFlopsAllocFree pins the satellite rework: the flop counters no
// longer allocate a per-row slice. Below the serial cutoff they run a
// straight loop — zero allocations; above it the only allocations are
// the scheduler's per-call constants, independent of rows.
func TestFlopsAllocFree(t *testing.T) {
	a := gen.Random(256, 256, 4, 3)
	b := gen.Random(256, 256, 4, 4)
	mask := gen.Random(256, 256, 4, 5).PatternView()
	if got := testing.AllocsPerRun(20, func() { Flops(a, b) }); got != 0 {
		t.Errorf("Flops allocates %v objects per call, want 0", got)
	}
	if got := testing.AllocsPerRun(20, func() { MaskedFlops(mask, a, b, false) }); got != 0 {
		t.Errorf("MaskedFlops allocates %v objects per call, want 0", got)
	}

	// Parallel path: O(threads) bookkeeping, never O(rows).
	big := gen.Random(20000, 2000, 8, 6)
	bigB := gen.Random(2000, 2000, 8, 7)
	if got := testing.AllocsPerRun(5, func() { Flops(big, bigB) }); got > 64 {
		t.Errorf("parallel Flops allocates %v objects per call, want O(threads) (< 64)", got)
	}

	// Parity with the definition.
	var want int64
	for i := 0; i < big.Rows; i++ {
		for _, k := range big.Row(i) {
			want += bigB.RowPtr[k+1] - bigB.RowPtr[k]
		}
	}
	if got := Flops(big, bigB); got != want {
		t.Errorf("Flops = %d, want %d", got, want)
	}
}

// TestSchedStatsDirectSchemeResets pins the review fix: a direct
// scheme (no row passes) executed with CollectSchedStats must reset
// the executor's record, not replay the previous execution's numbers.
func TestSchedStatsDirectSchemeResets(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := skewedCase(128, 128, 2)
	exec := NewExecutor[float64](sr)
	msa, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoMSA, Threads: 2, CollectSchedStats: true}, exec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := msa.Execute(a, b); err != nil {
		t.Fatal(err)
	}
	if exec.SchedStats().Claimed() == 0 {
		t.Fatal("row-kernel execution recorded nothing")
	}
	direct, err := NewPlan(sr, mask, a, b, Options{Algorithm: AlgoSaxpyThenMask, Threads: 2, CollectSchedStats: true}, exec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Execute(a, b); err != nil {
		t.Fatal(err)
	}
	if got := exec.SchedStats().Claimed(); got != 0 {
		t.Errorf("direct scheme replayed stale stats: %d blocks", got)
	}
}

// TestMaskedFlopsDenseBParity pins the cutoff fix: a small-nnz(A)
// product against dense B rows takes the parallel path, and both paths
// agree with the definition.
func TestMaskedFlopsDenseBParity(t *testing.T) {
	a := gen.Random(64, 64, 2, 41)      // tiny nnz(A)
	b := gen.Random(64, 2000, 1200, 42) // dense B rows
	mask := gen.Random(64, 2000, 600, 43).PatternView()
	if maskedFlopsSerialOK(mask, a, b) {
		t.Fatal("dense-B workload should not be classified serial")
	}
	got := MaskedFlops(mask, a, b, false)
	want := maskedFlopsRange(mask, a, b, false, 0, a.Rows)
	if got != want {
		t.Fatalf("MaskedFlops = %d, want %d", got, want)
	}
}

// TestExecuteErroredPassResetsSchedStats pins the telemetry contract
// behind Session's record-even-on-error behaviour: ExecuteOnOpts
// resets the executor's stats before anything can fail, so an errored
// execution issued with CollectSchedStats reads as an empty pass
// rather than replaying the previous execution's record.
func TestExecuteErroredPassResetsSchedStats(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 128, 128, 128, 8, 8, 8, 31})
	exec := NewExecutor[float64](ptSR)
	p, err := NewPlan(ptSR, mask, a, b, Options{Algorithm: AlgoMSA, Threads: 2}, exec)
	if err != nil {
		t.Fatal(err)
	}
	eo := ExecOptions{CollectSchedStats: true}
	if _, err := p.ExecuteOnOpts(exec, a, b, eo); err != nil {
		t.Fatal(err)
	}
	if exec.SchedStats().Claimed() == 0 {
		t.Fatal("successful pass recorded no blocks")
	}
	// Mismatched operands: checkArgs fails after the stats reset.
	bad, _, _ := buildCase(caseSpec{"", 64, 64, 64, 4, 4, 4, 32})
	wrong := &sparse.CSR[float64]{Pattern: *bad, Val: make([]float64, int(bad.NNZ()))}
	if _, err := p.ExecuteOnOpts(exec, wrong, b, eo); err == nil {
		t.Fatal("mismatched operands must error")
	}
	if got := exec.SchedStats(); got.Claimed() != 0 {
		t.Fatalf("errored pass replayed stale telemetry: %d blocks claimed", got.Claimed())
	}
}
