package core

import (
	"fmt"
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// TestFamilyBitPositionsPinned pins every family's numeric value and
// therefore its FamilySet bit position. Options.HybridFamilies is part
// of the plan-cache key and is serialized by clients through
// WithHybridFamilies, so a new family must extend the enum — never
// renumber it. If this test fails, the fix is to move the new family
// to the end of the enum, not to update the expectations.
func TestFamilyBitPositionsPinned(t *testing.T) {
	pinned := map[Family]uint8{
		FamMSA:       0,
		FamHash:      1,
		FamMCA:       2,
		FamHeap:      3,
		FamPull:      4,
		FamMaskedBit: 5,
	}
	if int(NumFamilies) != len(pinned) {
		t.Fatalf("NumFamilies = %d, want %d", NumFamilies, len(pinned))
	}
	for f, want := range pinned {
		if uint8(f) != want {
			t.Errorf("%v = %d, want pinned value %d", f, uint8(f), want)
		}
		if got := Families(f); got != 1<<want {
			t.Errorf("Families(%v) = %#x, want bit %d", f, got, want)
		}
	}
	if famAll != 1<<len(pinned)-1 {
		t.Errorf("famAll = %#x, want %#x", famAll, 1<<len(pinned)-1)
	}
}

// TestMaskedBitDensityParity cross-validates AlgoMaskedBit against the
// dense oracle across the mask-density sweep, plain and complemented,
// one-phase and two-phase — the direct-scheme counterpart of the
// hybrid parity sweep.
func TestMaskedBitDensityParity(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	const n = 120
	a := gen.Random(n, n, 12, 501)
	b := gen.Random(n, n, 12, 502)
	for _, density := range polyDensities {
		deg := int(density * n)
		if deg < 1 {
			deg = 1
		}
		mask := gen.Random(n, n, deg, 503+uint64(deg)).PatternView()
		for _, complement := range []bool{false, true} {
			want := oracle(mask, a, b, complement)
			for _, ph := range []Phases{OnePhase, TwoPhase} {
				name := fmt.Sprintf("density=%g/complement=%v/%v", density, complement, ph)
				t.Run(name, func(t *testing.T) {
					got, err := MaskedSpGEMM(sr, mask, a, b, Options{
						Algorithm: AlgoMaskedBit, Phases: ph, Complement: complement, Threads: 3,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := got.Validate(); err != nil {
						t.Fatalf("invalid output: %v", err)
					}
					if d := sparse.Diff(want, got, floatEq); d != "" {
						t.Fatalf("mismatch vs oracle: %s", d)
					}
				})
			}
		}
	}
}

// TestHybridMaskedBitComplementBinding pins the complement-path rule:
// a complemented plan restricted to FamMaskedBit binds it (MaskedBit
// is complement-capable, so no MSA fallback fires), the executor
// materializes only the complemented variant — proof the binding went
// through bindMaskedBitC and not the plain kernels — and the result
// matches the oracle.
func TestHybridMaskedBitComplementBinding(t *testing.T) {
	sr := semiring.PlusTimes[float64]{}
	mask, a, b := buildCase(caseSpec{"", 96, 96, 96, 8, 8, 8, 510})
	opt := Options{Complement: true, HybridFamilies: Families(FamMaskedBit), Threads: 1}
	p := polyTestPlan(t, mask, a, b, opt)
	if got := p.polyFams; got != Families(FamMaskedBit) {
		t.Fatalf("MaskedBit-only complement plan bound %v, want MaskedBit", got)
	}
	rows := p.FamilyRows()
	if rows[FamMaskedBit] != mask.Rows {
		t.Fatalf("FamilyRows = %v, want all %d rows on MaskedBit", rows, mask.Rows)
	}
	if _, err := p.Execute(a, b); err != nil {
		t.Fatal(err)
	}
	w := p.exec.worker(0)
	if w.maskedBitC == nil {
		t.Error("complemented binding did not materialize MaskedBitC")
	}
	if w.maskedBit != nil {
		t.Error("complemented binding materialized the plain MaskedBit")
	}
	opt.Algorithm = AlgoHybrid
	got, err := MaskedSpGEMM(sr, mask, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.Diff(oracle(mask, a, b, true), got, floatEq); d != "" {
		t.Fatalf("complemented MaskedBit-only execution: %s", d)
	}
}

// TestMaskedBitSingleFamilyAllocs mirrors TestHybridSingleFamilyAllocs
// for the new family: a MaskedBit-only poly plan materializes only the
// MaskedBit accumulator, skips the CSC transpose, and stays within the
// plain scheme's steady-state allocation bound.
func TestMaskedBitSingleFamilyAllocs(t *testing.T) {
	mask, a, b := buildCase(caseSpec{"", 128, 128, 128, 8, 8, 8, 97})
	for _, ph := range []Phases{OnePhase, TwoPhase} {
		opt := Options{HybridFamilies: Families(FamMaskedBit), Phases: ph, Threads: 1, ReuseOutput: true}
		p := polyTestPlan(t, mask, a, b, opt)
		if len(p.btPtr) != 0 {
			t.Errorf("%v: MaskedBit-only poly plan built a CSC transpose", ph)
		}
		if _, err := p.Execute(a, b); err != nil { // warm-up
			t.Fatal(err)
		}
		w := p.exec.worker(0)
		if w.maskedBit == nil {
			t.Errorf("%v: bound family's accumulator not materialized", ph)
		}
		if w.msa != nil || w.hash != nil || w.mca != nil || w.heap != nil || w.msaEpoch != nil || w.msac != nil || w.hashC != nil || w.maskedBitC != nil {
			t.Errorf("%v: unbound families materialized accumulators", ph)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := p.Execute(a, b); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 6 {
			t.Errorf("%v: %.1f allocs per warm Execute, want ≤ 6", ph, allocs)
		}
	}
}

// TestMaskedBitRowCostCrossover pins the selector economics DESIGN.md
// §12 documents: on walk-dominated rows (dense mask, modest flops)
// MaskedBit must price below MSA; on flops-dominated rows (tiny mask,
// heavy generation) MSA must stay cheaper, so the bitmap family never
// simply shadows it.
func TestMaskedBitRowCostCrossover(t *testing.T) {
	dense := RowCostContext{MaskNNZ: 512, ARowNNZ: 8, Flops: 64, AvgBCol: 8, Cols: 4096}
	if mb, msa := maskedBitRowCost(dense), msaRowCost(dense); mb >= msa {
		t.Errorf("dense-mask row: MaskedBit %.1f not cheaper than MSA %.1f", mb, msa)
	}
	flopsHeavy := RowCostContext{MaskNNZ: 4, ARowNNZ: 64, Flops: 8192, AvgBCol: 128, Cols: 4096}
	if mb, msa := maskedBitRowCost(flopsHeavy), msaRowCost(flopsHeavy); mb <= msa {
		t.Errorf("flops-heavy row: MaskedBit %.1f not dearer than MSA %.1f", mb, msa)
	}
}
