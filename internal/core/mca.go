package core

import (
	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// mcaRowNumeric is Algorithm 3: for each nonzero u_k of the A row, merge
// the sorted row B_k* against the sorted mask row; matches are inserted
// into the MCA under their *position within the mask row*, which is what
// lets the accumulator arrays be compressed to nnz(mask row) (§5.4).
func mcaRowNumeric[T any, S semiring.Semiring[T]](acc *accum.MCA[T, S], maskRow []int32, aCols []int32, aVals []T, b *sparse.CSR[T], outIdx []int32, outVal []T) int {
	acc.Grow(len(maskRow))
	for k, col := range aCols {
		lo, hi := b.RowPtr[col], b.RowPtr[col+1]
		bCols := b.ColIdx[lo:hi]
		bVals := b.Val[lo:hi]
		av := aVals[k]
		p, q := 0, 0
		for p < len(bCols) && q < len(maskRow) {
			switch {
			case bCols[p] < maskRow[q]:
				p++
			case bCols[p] > maskRow[q]:
				q++
			default:
				acc.Insert(int32(q), av, bVals[p])
				p++
				q++
			}
		}
	}
	return acc.Gather(maskRow, outIdx, outVal)
}

// mcaRowSymbolic is the pattern-only variant of Algorithm 3.
func mcaRowSymbolic[T any, S semiring.Semiring[T]](acc *accum.MCA[T, S], maskRow []int32, aCols []int32, b *sparse.CSR[T]) int {
	acc.Grow(len(maskRow))
	for _, col := range aCols {
		lo, hi := b.RowPtr[col], b.RowPtr[col+1]
		bCols := b.ColIdx[lo:hi]
		p, q := 0, 0
		for p < len(bCols) && q < len(maskRow) {
			switch {
			case bCols[p] < maskRow[q]:
				p++
			case bCols[p] > maskRow[q]:
				q++
			default:
				acc.InsertPattern(int32(q))
				p++
				q++
			}
		}
	}
	return acc.EndSymbolic(maskRow)
}

// bindMCA registers the MCA scheme (§5.4). MCA requires sorted mask
// and B rows (guaranteed by the CSR invariant) and does not support
// complemented masks — with a complemented mask there is no compressed
// index space to map columns into (see its registry entry).
func bindMCA[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	exec, mask, maxRow := e, p.mask, p.maxMaskRow
	return kernels[T]{
		numeric: func(tid, i int, outIdx []int32, outVal []T) int {
			return mcaRowNumeric(exec.worker(tid).MCA(maxRow), mask.Row(i), a.Row(i), a.RowVals(i), b, outIdx, outVal)
		},
		symbolic: func(tid, i int) int {
			return mcaRowSymbolic(exec.worker(tid).MCA(maxRow), mask.Row(i), a.Row(i), b)
		},
	}
}
