package core

import (
	"math"

	"maskedspgemm/internal/accum"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// The heap (multi-way merge) masked SpGEVM of §5.5 / Algorithms 4–5.
// A min-heap holds one iterator per selected row B_k*, ordered by the
// column the iterator currently points at; popping in sequence streams
// the multiset S = {B_kj | u_k ≠ 0} in sorted column order, which is
// 2-way merged against the sorted mask row. NInspect controls how much
// of the mask the Insert procedure inspects before (re-)pushing an
// iterator: 0 = push blindly, 1 = check the current mask element
// ("Heap"), ∞ = scan until a provable match or the iterator dies
// ("HeapDot").

// heapInspectInf is the sentinel for NInspect = ∞.
const heapInspectInf = math.MaxInt

// heapInsert is Algorithm 5. it.Pos must be the next unread position of
// the iterator; mPos is the caller's current position in the mask row
// (inspected copy-by-value, so the caller's cursor is unaffected).
// Iterators that provably cannot contribute are dropped instead of
// pushed.
func heapInsert(pq *accum.IterHeap, it accum.RowIter, bCols []int32, maskRow []int32, mPos, nInspect int) {
	if it.Pos >= it.End {
		return
	}
	it.Col = bCols[it.Pos]
	if nInspect == 0 {
		pq.Push(it)
		return
	}
	toInspect := nInspect
	for it.Pos < it.End && mPos < len(maskRow) {
		it.Col = bCols[it.Pos]
		mc := maskRow[mPos]
		switch {
		case it.Col == mc:
			pq.Push(it)
			return
		case it.Col < mc:
			// This column is not in the remaining mask; skipping it here
			// saves a heap round trip.
			it.Pos++
		default:
			mPos++
			toInspect--
			if toInspect == 0 {
				pq.Push(it)
				return
			}
		}
	}
	// Either the iterator or the mask ran out: nothing this iterator
	// still points at can be admitted; drop it.
}

// heapRowNumeric is Algorithm 4: compute one output row by merging the
// heap stream against the mask row.
func heapRowNumeric[T any, S semiring.Semiring[T]](sr S, pq *accum.IterHeap, nInspect int, maskRow []int32, aCols []int32, aVals []T, b *sparse.CSR[T], outIdx []int32, outVal []T) int {
	pq.Reset()
	mPos := 0
	for k, col := range aCols {
		heapInsert(pq, accum.RowIter{AIdx: int32(k), Pos: b.RowPtr[col], End: b.RowPtr[col+1]}, b.ColIdx, maskRow, mPos, nInspect)
	}
	n := 0
	prevKey := int32(-1)
	for pq.Len() > 0 {
		it := pq.PopMin()
		for mPos < len(maskRow) && maskRow[mPos] < it.Col {
			mPos++
		}
		if mPos >= len(maskRow) {
			break // mask exhausted: no later column can match
		}
		if maskRow[mPos] == it.Col {
			prod := sr.Mul(aVals[it.AIdx], b.Val[it.Pos])
			if n > 0 && prevKey == it.Col {
				outVal[n-1] = sr.Add(outVal[n-1], prod)
			} else {
				outIdx[n] = it.Col
				outVal[n] = prod
				prevKey = it.Col
				n++
			}
		}
		it.Pos++
		heapInsert(pq, it, b.ColIdx, maskRow, mPos, nInspect)
	}
	return n
}

// heapRowSymbolic counts the distinct admitted columns of one row. It
// is generic-free: the symbolic pass needs only B's pattern arrays.
func heapRowSymbolic(pq *accum.IterHeap, nInspect int, maskRow []int32, aCols []int32, bCols []int32, bRowPtr []int64) int {
	pq.Reset()
	mPos := 0
	for k, col := range aCols {
		heapInsert(pq, accum.RowIter{AIdx: int32(k), Pos: bRowPtr[col], End: bRowPtr[col+1]}, bCols, maskRow, mPos, nInspect)
	}
	n := 0
	prevKey := int32(-1)
	for pq.Len() > 0 {
		it := pq.PopMin()
		for mPos < len(maskRow) && maskRow[mPos] < it.Col {
			mPos++
		}
		if mPos >= len(maskRow) {
			break
		}
		if maskRow[mPos] == it.Col && it.Col != prevKey {
			prevKey = it.Col
			n++
		}
		it.Pos++
		heapInsert(pq, it, bCols, maskRow, mPos, nInspect)
	}
	return n
}

// heapRowNumericComplement computes one row of ¬m ⊙ (uᵀB): the products
// for columns in S \ m (§5.5). NInspect is always 0 for complemented
// masks — there is no mask intersection to pre-check against.
func heapRowNumericComplement[T any, S semiring.Semiring[T]](sr S, pq *accum.IterHeap, maskRow []int32, aCols []int32, aVals []T, b *sparse.CSR[T], outIdx []int32, outVal []T) int {
	pq.Reset()
	for k, col := range aCols {
		if b.RowPtr[col] < b.RowPtr[col+1] {
			pq.Push(accum.RowIter{Col: b.ColIdx[b.RowPtr[col]], AIdx: int32(k), Pos: b.RowPtr[col], End: b.RowPtr[col+1]})
		}
	}
	n := 0
	prevKey := int32(-1)
	mPos := 0
	for pq.Len() > 0 {
		it := pq.PopMin()
		for mPos < len(maskRow) && maskRow[mPos] < it.Col {
			mPos++
		}
		if mPos >= len(maskRow) || maskRow[mPos] != it.Col {
			prod := sr.Mul(aVals[it.AIdx], b.Val[it.Pos])
			if n > 0 && prevKey == it.Col {
				outVal[n-1] = sr.Add(outVal[n-1], prod)
			} else {
				outIdx[n] = it.Col
				outVal[n] = prod
				prevKey = it.Col
				n++
			}
		}
		it.Pos++
		if it.Pos < it.End {
			it.Col = b.ColIdx[it.Pos]
			pq.Push(it)
		}
	}
	return n
}

// heapRowSymbolicComplement counts distinct columns of S \ m.
func heapRowSymbolicComplement(pq *accum.IterHeap, maskRow []int32, aCols []int32, bCols []int32, bRowPtr []int64) int {
	pq.Reset()
	for _, col := range aCols {
		if bRowPtr[col] < bRowPtr[col+1] {
			pq.Push(accum.RowIter{Col: bCols[bRowPtr[col]], Pos: bRowPtr[col], End: bRowPtr[col+1]})
		}
	}
	n := 0
	prevKey := int32(-1)
	mPos := 0
	for pq.Len() > 0 {
		it := pq.PopMin()
		for mPos < len(maskRow) && maskRow[mPos] < it.Col {
			mPos++
		}
		if (mPos >= len(maskRow) || maskRow[mPos] != it.Col) && it.Col != prevKey {
			prevKey = it.Col
			n++
		}
		it.Pos++
		if it.Pos < it.End {
			it.Col = bCols[it.Pos]
			pq.Push(it)
		}
	}
	return n
}

// bindHeap registers the heap scheme; the plan's resolved nInspect
// distinguishes Heap (1) from HeapDot (∞), with Options.HeapNInspect
// folded in for the ablation study.
func bindHeap[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	sr, exec, mask := p.sr, e, p.mask
	nInspect, maxARow := p.heapNInspect, p.maxARow
	return kernels[T]{
		numeric: func(tid, i int, outIdx []int32, outVal []T) int {
			return heapRowNumeric(sr, exec.worker(tid).Heap(maxARow), nInspect, mask.Row(i), a.Row(i), a.RowVals(i), b, outIdx, outVal)
		},
		symbolic: func(tid, i int) int {
			return heapRowSymbolic(exec.worker(tid).Heap(maxARow), nInspect, mask.Row(i), a.Row(i), b.ColIdx, b.RowPtr)
		},
	}
}

// bindHeapComplement registers the complemented heap scheme (NInspect
// fixed at 0, §5.5).
func bindHeapComplement[T any, S semiring.Semiring[T]](p *Plan[T, S], e *Executor[T, S], a, b *sparse.CSR[T]) kernels[T] {
	sr, exec, mask, maxARow := p.sr, e, p.mask, p.maxARow
	return kernels[T]{
		numeric: func(tid, i int, outIdx []int32, outVal []T) int {
			return heapRowNumericComplement(sr, exec.worker(tid).Heap(maxARow), mask.Row(i), a.Row(i), a.RowVals(i), b, outIdx, outVal)
		},
		symbolic: func(tid, i int) int {
			return heapRowSymbolicComplement(exec.worker(tid).Heap(maxARow), mask.Row(i), a.Row(i), b.ColIdx, b.RowPtr)
		},
	}
}
