package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"maskedspgemm/internal/parallel"
)

// Fault containment at the engine layer (DESIGN.md §15): the typed
// errors an interrupted execution surfaces instead of a partial result
// or a dead process.

// ErrCanceled is the errors.Is target for cooperative cancellation:
// every *CanceledError matches it, so callers that do not care which
// pass was interrupted test errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("core: execution canceled")

// CanceledError reports an execution stopped by cooperative
// cancellation — a latched CancelToken observed at a block claim or a
// pass checkpoint. The interrupted output was discarded; nothing
// partial escapes.
type CanceledError struct {
	// Pass names the interrupted pass: "symbolic", "numeric", or
	// "compact".
	Pass string
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: execution canceled during %s pass", e.Pass)
}

// Is matches ErrCanceled.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// KernelPanicError reports a panic recovered from inside an execution:
// a kernel worker (or the serial path) panicked, sibling workers were
// quiesced via the cancel latch, and the panic was converted to this
// error at the Plan.ExecuteOnOpts boundary. The executor that ran the
// multiply holds half-mutated accumulator scratch and must be
// discarded, not pooled (ExecutorPool.Discard).
type KernelPanicError struct {
	// Family is the plan's scheme name ("MSA", "Hash", "Hybrid", ...)
	// — which kernel family's code path panicked.
	Family string
	// Worker is the panicking worker's tid; 0 when the panic happened
	// on the calling goroutine (serial path or driver code).
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

// Error implements error. The stack is deliberately omitted — it is
// for the serving layer's rate-limited logger, not for every error
// string.
func (e *KernelPanicError) Error() string {
	return fmt.Sprintf("core: kernel panic in %s (worker %d): %v", e.Family, e.Worker, e.Value)
}

// asKernelPanic normalizes a recovered panic value into a
// KernelPanicError: a *parallel.PanicError keeps the worker id and the
// worker's stack; anything else (serial path, driver code) is wrapped
// with the current stack.
func asKernelPanic(family string, r any) *KernelPanicError {
	if pe, ok := r.(*parallel.PanicError); ok {
		return &KernelPanicError{Family: family, Worker: pe.Worker, Value: pe.Value, Stack: pe.Stack}
	}
	return &KernelPanicError{Family: family, Value: r, Stack: debug.Stack()}
}
