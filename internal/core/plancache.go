package core

import (
	"container/list"
	"errors"
	"sync"

	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// errPlanningPanicked is delivered to singleflight waiters whose
// planner goroutine panicked: the panic propagates on the planner's
// own stack, waiters get this error, and the key is unregistered so a
// retry plans afresh.
var errPlanningPanicked = errors.New("core: concurrent plan analysis panicked; retry")

// PlanCache is a concurrency-safe LRU cache of execution plans keyed
// by operand *structure*. A server answering many queries against a
// fixed graph — or an iterative algorithm whose mask structure
// recurs — repeats exactly the per-structure analysis NewPlan does
// (validation, slab layout, CSC transposition, hybrid cost modeling);
// the cache turns those repeats into a fingerprint pass plus a map
// lookup, which BenchmarkPlanCache shows is allocation-free and an
// order of magnitude cheaper than re-planning.
//
// Keys combine the structural fingerprints of mask, A, and B
// (sparse.Pattern.Fingerprint — values never enter, so matrices whose
// numbers change in place keep hitting) with the normalized
// *plan-affecting* Options. Execution-only options (CollectSchedStats,
// ReuseOutput) never enter the key — they change what one execution
// does, not the analysis — so warming a structure and later requesting
// it with telemetry on still hits; supply them per execution via
// Plan.ExecuteOnOpts. Cached plans are likewise built with those
// fields zeroed, making the stored plan canonical regardless of which
// request planted it.
//
// Fingerprints are recomputed on every lookup: the cache never trusts
// pointer identity, so mutating a matrix's structure in place simply
// misses and plans afresh. Cached plans own a private clone of the
// mask, making entries immune to callers mutating the original mask
// after insertion. Two different structures colliding on all three
// 64-bit fingerprints would alias an entry; the probability is ~2⁻⁶⁴
// per pair and is accepted (DESIGN.md §8).
//
// Plans returned by GetOrPlan are immutable and shared: any number of
// goroutines may hold and ExecuteOn one concurrently, each with its
// own executor. They have no default executor, so Plan.Execute errors;
// pair the cache with an ExecutorPool.
type PlanCache[T any, S semiring.Semiring[T]] struct {
	sr         S
	maxEntries int
	maxBytes   int64

	mu        sync.Mutex
	lru       *list.List // front = most recently used; values are *planEntry[T, S]
	table     map[planKey]*list.Element
	inflight  map[planKey]*planCall[T, S]
	bytes     int64
	hits      uint64
	misses    uint64
	coalesced uint64
	evicted   uint64
	replans   uint64

	// index maps each cached plan pointer to its entry, so
	// ObserveExecution resolves a plan a caller executed back to the
	// entry that handed it out in O(1) — and, because re-binding
	// removes the replaced pointer, observations of a swapped-out or
	// evicted plan fall through harmlessly.
	index map[*Plan[T, S]]*list.Element
	// replan, when non-nil, is the online feedback policy installed by
	// EnableReplan; launch overrides how background re-binds start
	// (nil = one goroutine per job).
	replan *ReplanPolicy
	launch func(func())

	// budget, when attached, is the shared byte budget this cache
	// accounts its footprint against; entries then carry stamps from
	// the budget's clock so cross-member eviction is globally LRU.
	budget *MemBudget
}

// planCall is one in-flight planning operation coalescing concurrent
// misses on the same key (singleflight): the first misser plans, later
// missers block on done and share the result. plan/err are written
// before done closes, so waiters read them race-free.
type planCall[T any, S semiring.Semiring[T]] struct {
	done chan struct{}
	plan *Plan[T, S]
	err  error
}

// planKey identifies one cached analysis: the three operand structure
// fingerprints plus the normalized plan-identity Options — execution-
// only fields zeroed (Options is a comparable all-scalar struct, so
// the key works as a map key without allocation).
type planKey struct {
	maskFP, aFP, bFP uint64
	opt              Options
}

type planEntry[T any, S semiring.Semiring[T]] struct {
	key   planKey
	plan  *Plan[T, S]
	bytes int64
	// stamp is the shared-budget LRU tick of the entry's last touch;
	// meaningful only while a MemBudget is attached.
	stamp uint64
	// fb is the replanner's measured record for the entry's current
	// plan (DESIGN.md §14); zero until observations flow.
	fb planFeedback
}

// DefaultPlanCacheEntries is the entry bound used when NewPlanCache is
// given maxEntries <= 0.
const DefaultPlanCacheEntries = 128

// NewPlanCache returns an empty cache over the given semiring holding
// at most maxEntries plans (<= 0 means DefaultPlanCacheEntries) and at
// most maxBytes of estimated analysis memory (<= 0 means unbounded).
// Both bounds evict least-recently-used entries.
func NewPlanCache[T any, S semiring.Semiring[T]](sr S, maxEntries int, maxBytes int64) *PlanCache[T, S] {
	if maxEntries <= 0 {
		maxEntries = DefaultPlanCacheEntries
	}
	return &PlanCache[T, S]{
		sr:         sr,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		lru:        list.New(),
		table:      make(map[planKey]*list.Element),
		inflight:   make(map[planKey]*planCall[T, S]),
		index:      make(map[*Plan[T, S]]*list.Element),
	}
}

// AttachBudget makes the cache account its retained bytes against the
// shared budget b (DESIGN.md §13): current and future entries are
// reserved from it, hits refresh their global-LRU stamps, and the
// cache yields its LRU tail to cross-member eviction pressure via the
// BudgetMember methods. Attach before concurrent use; the local
// maxEntries/maxBytes bounds keep applying on top of the shared one.
func (c *PlanCache[T, S]) AttachBudget(b *MemBudget) {
	c.mu.Lock()
	c.budget = b
	b.Reserve(c.bytes)
	c.mu.Unlock()
	b.Register(c)
	b.Rebalance()
}

// BudgetTail implements BudgetMember: the stamp of the LRU entry, if
// the cache holds more than one (the newest entry is never yielded,
// mirroring evictLocked's floor).
func (c *PlanCache[T, S]) BudgetTail() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru.Len() <= 1 {
		return 0, false
	}
	return c.lru.Back().Value.(*planEntry[T, S]).stamp, true
}

// BudgetEvict implements BudgetMember: drops the LRU entry, releases
// its bytes from the budget, and reports them.
func (c *PlanCache[T, S]) BudgetEvict() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru.Len() <= 1 {
		return 0
	}
	el := c.lru.Back()
	entry := el.Value.(*planEntry[T, S])
	c.removeLocked(el, entry)
	return entry.bytes
}

// removeLocked evicts one entry, maintaining counters and the shared
// budget's accounting.
func (c *PlanCache[T, S]) removeLocked(el *list.Element, entry *planEntry[T, S]) {
	c.lru.Remove(el)
	delete(c.table, entry.key)
	delete(c.index, entry.plan)
	c.bytes -= entry.bytes
	c.evicted++
	if c.budget != nil {
		c.budget.Release(entry.bytes)
	}
}

// keyFor fingerprints the operands, hashing each distinct Pattern
// object once (mask = A = B is the common case in the graph
// workloads: C = L ⊙ (L·L)). opt must already be in plan-identity
// form (normalized, execution-only fields zeroed).
func (c *PlanCache[T, S]) keyFor(mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) planKey {
	k := planKey{opt: opt}
	k.maskFP = mask.Fingerprint()
	switch {
	case &a.Pattern == mask:
		k.aFP = k.maskFP
	default:
		k.aFP = a.Pattern.Fingerprint()
	}
	switch {
	case &b.Pattern == mask:
		k.bFP = k.maskFP
	case &b.Pattern == &a.Pattern:
		k.bFP = k.aFP
	default:
		k.bFP = b.Pattern.Fingerprint()
	}
	return k
}

// GetOrPlan returns the cached plan for the operands' structure and
// options, building and inserting it on a miss. The returned plan is
// shared and immutable: execute it with ExecuteOn and an executor the
// caller owns. Lookups from concurrent goroutines are safe; concurrent
// misses on the same structure coalesce onto a single planner
// (singleflight) — the first misser runs the analysis, later missers
// block until it finishes and share the result, so a cold-start burst
// of identical requests plans exactly once (CoalescedMisses counts the
// waiters). A failed planning is not cached: every waiter receives the
// error and the next lookup plans afresh.
//
// Execution-only options are stripped from both the key and the built
// plan (see planIdentity): the cached plan is canonical, and callers
// wanting per-request telemetry or pooled output pass ExecOptions to
// Plan.ExecuteOnOpts.
func (c *PlanCache[T, S]) GetOrPlan(mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) (*Plan[T, S], error) {
	plan, _, err := c.GetOrPlanObserved(mask, a, b, opt)
	return plan, err
}

// GetOrPlanObserved is GetOrPlan, additionally reporting whether the
// lookup was answered from the cache — the signal a serving layer's
// warm-by-prediction hooks observe. A lookup that coalesced onto
// another goroutine's in-flight planning reports hit = false: the
// structure was not yet cached when the request arrived.
func (c *PlanCache[T, S]) GetOrPlanObserved(mask *sparse.Pattern, a, b *sparse.CSR[T], opt Options) (*Plan[T, S], bool, error) {
	opt.normalize()
	opt = opt.planIdentity()
	key := c.keyFor(mask, a, b, opt)

	c.mu.Lock()
	if el, ok := c.table[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		entry := el.Value.(*planEntry[T, S])
		if c.budget != nil {
			entry.stamp = c.budget.Stamp()
		}
		plan := entry.plan
		c.mu.Unlock()
		return plan, true, nil
	}
	c.misses++
	if call, ok := c.inflight[key]; ok {
		// Someone is already planning this structure: wait for them
		// instead of duplicating the analysis.
		c.coalesced++
		c.mu.Unlock()
		<-call.done
		return call.plan, false, call.err
	}
	call := &planCall[T, S]{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	// If planning panics (malformed operand structures), the key must
	// not stay wedged: unregister it and release every waiter with an
	// error before the panic continues unwinding. settled is set on the
	// normal return paths below, which perform their own cleanup.
	settled := false
	defer func() {
		if settled {
			return
		}
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		call.err = errPlanningPanicked
		close(call.done)
	}()

	// Plan outside the lock: analysis is the expensive part and must
	// not serialize concurrent lookups of other structures. The mask is
	// cloned so the cached plan survives callers later mutating the
	// original in place (such a mutation changes the fingerprint, so
	// the stale entry can never be returned for the mutated matrix —
	// but it must stay correct for genuine re-occurrences of the old
	// structure).
	plan, err := newDetachedPlan(c.sr, mask.Clone(), a, b, opt)
	if err != nil {
		settled = true
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		call.err = err
		close(call.done)
		return nil, false, err
	}
	entry := &planEntry[T, S]{key: key, plan: plan, bytes: plan.footprintBytes()}

	settled = true
	c.mu.Lock()
	delete(c.inflight, key)
	if el, ok := c.table[key]; ok {
		// An entry appeared while we planned (possible only around a
		// concurrent Clear); keep the incumbent so callers converge on
		// one shared plan.
		c.lru.MoveToFront(el)
		plan = el.Value.(*planEntry[T, S]).plan
		c.mu.Unlock()
	} else {
		if c.budget != nil {
			entry.stamp = c.budget.Stamp()
			c.budget.Reserve(entry.bytes)
		}
		el := c.lru.PushFront(entry)
		c.table[key] = el
		c.index[entry.plan] = el
		c.bytes += entry.bytes
		c.evictLocked()
		c.mu.Unlock()
		if c.budget != nil {
			// Shared-budget pressure is resolved outside the cache lock:
			// Rebalance may evict from any member, including this cache.
			c.budget.Rebalance()
		}
	}
	call.plan = plan
	close(call.done)
	return plan, false, nil
}

// evictLocked drops least-recently-used entries until both bounds
// hold. Always keeps the most recent entry, so a single plan larger
// than maxBytes still caches (and evicts everything else).
func (c *PlanCache[T, S]) evictLocked() {
	for c.lru.Len() > 1 && (c.lru.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		el := c.lru.Back()
		c.removeLocked(el, el.Value.(*planEntry[T, S]))
	}
}

// Len returns the number of cached plans.
func (c *PlanCache[T, S]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Clear empties the cache, keeping the counters. Plans already handed
// out stay valid — clearing only drops the cache's references.
func (c *PlanCache[T, S]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget != nil {
		c.budget.Release(c.bytes)
	}
	c.lru.Init()
	clear(c.table)
	clear(c.index)
	c.bytes = 0
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64
	// Misses counts lookups not answered from the cache, including
	// those that coalesced onto another goroutine's in-flight planning.
	Misses uint64
	// CoalescedMisses counts misses that waited on an in-flight planner
	// instead of planning themselves (singleflight): of a burst of N
	// concurrent first requests for one structure, N−1 coalesce.
	CoalescedMisses uint64
	// Evictions counts entries dropped by the entry or byte bound.
	Evictions uint64
	// Entries is the current number of cached plans.
	Entries int
	// Bytes is the estimated retained analysis memory of all entries.
	Bytes int64
	// HybridFamilyRows sums, across the currently cached hybrid plans,
	// how many output rows each accumulator family is bound to execute,
	// keyed by Family name ("MSA", "MaskedBit", ...) — the operator's
	// view of per-family adoption. Nil when no cached plan carries a
	// per-row binding.
	HybridFamilyRows map[string]int64
	// Replans counts background re-binds that swapped a cached plan
	// (DESIGN.md §14); zero until EnableReplan.
	Replans uint64
	// Drift lists the measured record of every cached plan the
	// replanner has observed — EWMA imbalance and wall time, sample
	// count, and how often the entry's plan was re-bound. Nil when no
	// observations have flowed.
	Drift []PlanDrift
}

// Stats returns a snapshot of the cache counters.
func (c *PlanCache[T, S]) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var famRows map[string]int64
	var drift []PlanDrift
	for el := c.lru.Front(); el != nil; el = el.Next() {
		entry := el.Value.(*planEntry[T, S])
		p := entry.plan
		if entry.fb.samples > 0 || entry.fb.replans > 0 {
			drift = append(drift, PlanDrift{
				Scheme:        p.opt.SchemeName(),
				Rows:          p.mask.Rows,
				Schedule:      p.sched.String(),
				EwmaImbalance: entry.fb.ewmaImbalance,
				EwmaWallNanos: int64(entry.fb.ewmaWall),
				Samples:       entry.fb.samples,
				Replans:       entry.fb.replans,
			})
		}
		if p.polyFams == 0 {
			continue
		}
		if famRows == nil {
			famRows = make(map[string]int64)
		}
		prev := int32(0)
		for r, end := range p.runEnds {
			// Family.String names out-of-range values defensively
			// ("Family(N)"), so a run decoded from newer or corrupted
			// state aggregates under a diagnostic key instead of
			// panicking an indexed table.
			famRows[Family(p.runFam[r]).String()] += int64(end - prev)
			prev = end
		}
	}
	return PlanCacheStats{
		Hits:             c.hits,
		Misses:           c.misses,
		CoalescedMisses:  c.coalesced,
		Evictions:        c.evicted,
		Entries:          c.lru.Len(),
		Bytes:            c.bytes,
		HybridFamilyRows: famRows,
		Replans:          c.replans,
		Drift:            drift,
	}
}
