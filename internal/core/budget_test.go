package core

import (
	"sync"
	"testing"
)

// fakeMember is a minimal BudgetMember: a stack of (stamp, bytes)
// entries that yields its oldest on demand.
type fakeMember struct {
	budget *MemBudget

	mu      sync.Mutex
	entries []fakeEntry // oldest first
	evicted int
}

type fakeEntry struct {
	stamp uint64
	bytes int64
}

func (f *fakeMember) add(bytes int64) {
	f.mu.Lock()
	f.entries = append(f.entries, fakeEntry{stamp: f.budget.Stamp(), bytes: bytes})
	f.mu.Unlock()
	f.budget.Reserve(bytes)
	f.budget.Rebalance()
}

func (f *fakeMember) BudgetTail() (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.entries) == 0 {
		return 0, false
	}
	return f.entries[0].stamp, true
}

func (f *fakeMember) BudgetEvict() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.entries) == 0 {
		return 0
	}
	freed := f.entries[0].bytes
	f.entries = f.entries[1:]
	f.evicted++
	f.budget.Release(freed)
	return freed
}

// TestMemBudgetAccounting pins the arithmetic: Reserve and Release
// move Used, the default applies, and Rebalance is a no-op under the
// ceiling.
func TestMemBudgetAccounting(t *testing.T) {
	b := NewMemBudget(0)
	if b.Max() != DefaultMemoryBudgetBytes {
		t.Fatalf("default max = %d", b.Max())
	}
	b = NewMemBudget(1000)
	b.Reserve(600)
	b.Reserve(300)
	b.Release(100)
	if b.Used() != 800 {
		t.Fatalf("Used = %d, want 800", b.Used())
	}
	b.Rebalance() // under budget: must not touch members (none registered anyway)
	if b.Used() != 800 {
		t.Fatalf("no-op Rebalance changed Used to %d", b.Used())
	}
}

// TestMemBudgetRebalanceGlobalLRU pins victim selection: with two
// members over one budget, Rebalance evicts strictly oldest-first
// across both, interleaved by stamp rather than by member.
func TestMemBudgetRebalanceGlobalLRU(t *testing.T) {
	b := NewMemBudget(250)
	m1 := &fakeMember{budget: b}
	m2 := &fakeMember{budget: b}
	b.Register(m1)
	b.Register(m2)

	// Stamps interleave: m1(1), m2(2), m1(3), m2(4). 4×100 bytes over a
	// 250-byte budget → the two oldest must go, one from each member.
	m1.add(100)
	m2.add(100)
	m1.add(100)
	m2.add(100)

	if b.Used() != 200 {
		t.Fatalf("Used = %d after rebalance, want 200", b.Used())
	}
	if m1.evicted != 1 || m2.evicted != 1 {
		t.Fatalf("evictions m1=%d m2=%d, want oldest-first across members (1 each)", m1.evicted, m2.evicted)
	}
	s1, _ := m1.BudgetTail()
	s2, _ := m2.BudgetTail()
	if s1 != 3 || s2 != 4 {
		t.Fatalf("surviving tails stamped %d,%d — the old entries should have yielded", s1, s2)
	}
}

// TestMemBudgetRebalanceTerminates pins the refusal path: when every
// member declines to yield, Rebalance returns over-budget rather than
// spinning.
func TestMemBudgetRebalanceTerminates(t *testing.T) {
	b := NewMemBudget(10)
	m := &fakeMember{budget: b}
	b.Register(m)
	b.Reserve(100) // bytes nobody owns an entry for
	b.Rebalance()  // must return: the member has no tail to offer
	if b.Used() != 100 {
		t.Fatalf("Used = %d, want the unyieldable 100", b.Used())
	}
}

// TestMemBudgetConcurrentRebalance pins thread-safety: concurrent
// over-budget inserts across two members settle to a consistent,
// under-budget state.
func TestMemBudgetConcurrentRebalance(t *testing.T) {
	b := NewMemBudget(1 << 10)
	m1 := &fakeMember{budget: b}
	m2 := &fakeMember{budget: b}
	b.Register(m1)
	b.Register(m2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := m1
			if w%2 == 1 {
				m = m2
			}
			for i := 0; i < 200; i++ {
				m.add(64)
			}
		}(w)
	}
	wg.Wait()
	if b.Used() > b.Max() {
		t.Fatalf("ended over budget: %d > %d", b.Used(), b.Max())
	}
	var held int64
	for _, m := range []*fakeMember{m1, m2} {
		m.mu.Lock()
		for _, e := range m.entries {
			held += e.bytes
		}
		m.mu.Unlock()
	}
	if held != b.Used() {
		t.Fatalf("members hold %d, budget accounts %d", held, b.Used())
	}
}
