package accum

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"maskedspgemm/internal/semiring"
)

var pt = semiring.PlusTimes[float64]{}

// numericAcc is the test-side view of the shared numeric protocol.
type numericAcc interface {
	Begin(maskRow []int32)
	Insert(key int32, a, b float64)
	Gather(maskRow []int32, outIdx []int32, outVal []float64) int
	BeginSymbolic(maskRow []int32)
	InsertPattern(key int32)
	EndSymbolic(maskRow []int32) int
}

func plainAccumulators(ncols, maxMask int) map[string]numericAcc {
	return map[string]numericAcc{
		"MSA":       NewMSA[float64](pt, ncols),
		"MSAEpoch":  NewMSAEpoch[float64](pt, ncols),
		"Hash":      NewHash[float64](pt, maxMask, 0),
		"Hash-lf1":  NewHash[float64](pt, maxMask, 1.0),
		"MaskedBit": NewMaskedBit[float64](pt, ncols),
	}
}

// refMaskedRow is the oracle: dense accumulation then mask filter.
type insertOp struct {
	key  int32
	a, b float64
}

func refMaskedRow(ncols int, mask []int32, ops []insertOp) (idx []int32, val []float64) {
	acc := make([]float64, ncols)
	hit := make([]bool, ncols)
	allowed := make([]bool, ncols)
	for _, j := range mask {
		allowed[j] = true
	}
	for _, op := range ops {
		if !allowed[op.key] {
			continue
		}
		if hit[op.key] {
			acc[op.key] += op.a * op.b
		} else {
			acc[op.key] = op.a * op.b
			hit[op.key] = true
		}
	}
	for _, j := range mask {
		if hit[j] {
			idx = append(idx, j)
			val = append(val, acc[j])
		}
	}
	return idx, val
}

func refComplementRow(ncols int, mask []int32, ops []insertOp) (idx []int32, val []float64) {
	acc := make([]float64, ncols)
	hit := make([]bool, ncols)
	blocked := make([]bool, ncols)
	for _, j := range mask {
		blocked[j] = true
	}
	for _, op := range ops {
		if blocked[op.key] {
			continue
		}
		if hit[op.key] {
			acc[op.key] += op.a * op.b
		} else {
			acc[op.key] = op.a * op.b
			hit[op.key] = true
		}
	}
	for j := 0; j < ncols; j++ {
		if hit[j] {
			idx = append(idx, int32(j))
			val = append(val, acc[j])
		}
	}
	return idx, val
}

type rowScenario struct {
	ncols int
	mask  []int32
	ops   []insertOp
}

func (rowScenario) Generate(r *rand.Rand, _ int) reflect.Value {
	ncols := 1 + r.Intn(64)
	maskSet := map[int32]bool{}
	for i := 0; i < r.Intn(ncols+1); i++ {
		maskSet[int32(r.Intn(ncols))] = true
	}
	mask := make([]int32, 0, len(maskSet))
	for j := range maskSet {
		mask = append(mask, j)
	}
	sort.Slice(mask, func(i, j int) bool { return mask[i] < mask[j] })
	ops := make([]insertOp, r.Intn(200))
	for i := range ops {
		ops[i] = insertOp{int32(r.Intn(ncols)), r.Float64(), r.Float64()}
	}
	return reflect.ValueOf(rowScenario{ncols, mask, ops})
}

func eqF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -1e-9 || d > 1e-9 {
			return false
		}
	}
	return true
}

func eqI(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPlainAccumulatorsQuick property-tests MSA, MSAEpoch, and Hash
// against the dense oracle across random insert streams, including
// reuse of the same accumulator across consecutive rows (reset
// correctness).
func TestPlainAccumulatorsQuick(t *testing.T) {
	for name := range plainAccumulators(1, 1) {
		name := name
		t.Run(name, func(t *testing.T) {
			acc := plainAccumulators(64, 64)[name]
			f := func(s rowScenario) bool {
				if s.ncols > 64 {
					return true
				}
				wantIdx, wantVal := refMaskedRow(s.ncols, s.mask, s.ops)
				outIdx := make([]int32, len(s.mask))
				outVal := make([]float64, len(s.mask))
				// Numeric pass (reusing acc across quick iterations
				// checks the reset path).
				acc.Begin(s.mask)
				for _, op := range s.ops {
					acc.Insert(op.key, op.a, op.b)
				}
				n := acc.Gather(s.mask, outIdx, outVal)
				if n != len(wantIdx) || !eqI(outIdx[:n], wantIdx) || !eqF(outVal[:n], wantVal) {
					return false
				}
				// Symbolic pass must agree on the count.
				acc.BeginSymbolic(s.mask)
				for _, op := range s.ops {
					acc.InsertPattern(op.key)
				}
				return acc.EndSymbolic(s.mask) == n
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestComplementAccumulatorsQuick property-tests MSAC and HashC.
func TestComplementAccumulatorsQuick(t *testing.T) {
	type cAcc interface {
		BeginSized(maskRow []int32, bound int)
		Insert(key int32, a, b float64)
		Gather(outIdx []int32, outVal []float64) int
		BeginSymbolicSized(maskRow []int32, bound int)
		InsertPattern(key int32)
		EndSymbolic() int
	}
	accs := map[string]cAcc{
		"MSAC":       NewMSAC[float64](pt, 64),
		"HashC":      NewHashC[float64](pt, 16, 0),
		"MaskedBitC": NewMaskedBitC[float64](pt, 64),
	}
	for name, acc := range accs {
		name, acc := name, acc
		t.Run(name, func(t *testing.T) {
			f := func(s rowScenario) bool {
				if s.ncols > 64 {
					return true
				}
				wantIdx, wantVal := refComplementRow(s.ncols, s.mask, s.ops)
				outIdx := make([]int32, s.ncols)
				outVal := make([]float64, s.ncols)
				acc.BeginSized(s.mask, len(s.ops))
				for _, op := range s.ops {
					acc.Insert(op.key, op.a, op.b)
				}
				n := acc.Gather(outIdx, outVal)
				if n != len(wantIdx) || !eqI(outIdx[:n], wantIdx) || !eqF(outVal[:n], wantVal) {
					return false
				}
				acc.BeginSymbolicSized(s.mask, len(s.ops))
				for _, op := range s.ops {
					acc.InsertPattern(op.key)
				}
				return acc.EndSymbolic() == n
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestMSAStateTransitions walks the §5.2 automaton explicitly.
func TestMSAStateTransitions(t *testing.T) {
	m := NewMSA[float64](pt, 8)
	mask := []int32{2, 5}
	m.Begin(mask)
	m.Insert(3, 10, 10) // NOTALLOWED: discarded
	m.Insert(2, 2, 3)   // ALLOWED → SET with 6
	m.Insert(2, 1, 4)   // SET: accumulate 10
	idx := make([]int32, 2)
	val := make([]float64, 2)
	n := m.Gather(mask, idx, val)
	if n != 1 || idx[0] != 2 || val[0] != 10 {
		t.Fatalf("gather = %d %v %v, want key 2 = 10", n, idx[:n], val[:n])
	}
	// After gather, everything is reset: inserting on key 2 without
	// Begin must be discarded (NOTALLOWED again).
	m.Begin(nil)
	m.Insert(2, 1, 1)
	if n := m.Gather(nil, idx, val); n != 0 {
		t.Fatalf("post-reset gather = %d, want 0", n)
	}
}

// TestMCADirect exercises the MCA protocol (mask positions, two-state
// automaton).
func TestMCADirect(t *testing.T) {
	m := NewMCA[float64](pt, 4)
	mask := []int32{1, 4, 7}
	m.Insert(0, 2, 5) // mask position 0 (col 1): 10
	m.Insert(2, 3, 2) // mask position 2 (col 7): 6
	m.Insert(2, 1, 1) // accumulate: 7
	idx := make([]int32, 3)
	val := make([]float64, 3)
	n := m.Gather(mask, idx, val)
	if n != 2 || idx[0] != 1 || val[0] != 10 || idx[1] != 7 || val[1] != 7 {
		t.Fatalf("MCA gather = %d %v %v", n, idx[:n], val[:n])
	}
	// Reset happened; a fresh symbolic round sees a clean accumulator.
	m.InsertPattern(1)
	if got := m.EndSymbolic(mask); got != 1 {
		t.Fatalf("symbolic = %d, want 1", got)
	}
	m.Grow(10)
	m.Insert(9, 1, 1)
	bigMask := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	idx = make([]int32, 10)
	val = make([]float64, 10)
	if n := m.Gather(bigMask, idx, val); n != 1 || idx[0] != 9 {
		t.Fatalf("after Grow: gather = %d %v", n, idx[:n])
	}
}

// TestIterHeapOrdering pushes shuffled iterators and checks pops come
// out column-sorted.
func TestIterHeapOrdering(t *testing.T) {
	f := func(colsRaw []uint16) bool {
		h := NewIterHeap(len(colsRaw))
		for _, c := range colsRaw {
			h.Push(RowIter{Col: int32(c)})
		}
		prev := int32(-1)
		for h.Len() > 0 {
			it := h.PopMin()
			if it.Col < prev {
				return false
			}
			prev = it.Col
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIterHeapReset(t *testing.T) {
	h := NewIterHeap(4)
	h.Push(RowIter{Col: 3})
	h.Push(RowIter{Col: 1})
	if h.Min().Col != 1 {
		t.Fatalf("Min = %d, want 1", h.Min().Col)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
}

// TestHashGrowth forces a row larger than the constructor hint.
func TestHashGrowth(t *testing.T) {
	h := NewHash[float64](pt, 2, 0.25)
	mask := make([]int32, 100)
	for i := range mask {
		mask[i] = int32(i)
	}
	h.Begin(mask)
	for i := range mask {
		h.Insert(int32(i), 1, float64(i))
	}
	idx := make([]int32, 100)
	val := make([]float64, 100)
	if n := h.Gather(mask, idx, val); n != 100 {
		t.Fatalf("gather = %d, want 100", n)
	}
	for i := range mask {
		if val[i] != float64(i) {
			t.Fatalf("val[%d] = %v", i, val[i])
		}
	}
}

// TestMaskedBitStateWalk walks the bitmap automaton explicitly: the
// discard path, the fused-add path, and the post-gather reset.
func TestMaskedBitStateWalk(t *testing.T) {
	m := NewMaskedBit[float64](pt, 130) // spans three bitset words
	mask := []int32{2, 65, 129}
	m.Begin(mask)
	m.Insert(3, 10, 10) // not allowed: discarded
	m.Insert(2, 2, 3)   // first touch: 6
	m.Insert(2, 1, 4)   // accumulate: 10
	m.Insert(129, 5, 5) // last word: 25
	m.Insert(128, 9, 9) // same word, not allowed: discarded
	idx := make([]int32, 3)
	val := make([]float64, 3)
	n := m.Gather(mask, idx, val)
	if n != 2 || idx[0] != 2 || val[0] != 10 || idx[1] != 129 || val[1] != 25 {
		t.Fatalf("gather = %d %v %v, want keys 2=10, 129=25", n, idx[:n], val[:n])
	}
	// After gather, everything is reset: inserting on key 2 without it
	// being in the new mask must be discarded.
	m.Begin([]int32{65})
	m.Insert(2, 1, 1)
	if n := m.Gather([]int32{65}, idx, val); n != 0 {
		t.Fatalf("post-reset gather = %d, want 0", n)
	}
}

// TestMaskedBitZeroSum pins pattern fidelity: products that cancel to
// the numeric zero still count as SET, exactly like the MSA — the
// emptiness test is the set bit, never the value.
func TestMaskedBitZeroSum(t *testing.T) {
	m := NewMaskedBit[float64](pt, 8)
	mask := []int32{4}
	m.Begin(mask)
	m.Insert(4, 2, 3)  // +6
	m.Insert(4, -2, 3) // −6: sums to 0.0
	idx := make([]int32, 1)
	val := make([]float64, 1)
	if n := m.Gather(mask, idx, val); n != 1 || val[0] != 0 {
		t.Fatalf("gather = %d %v, want one explicit zero entry", n, val[:n])
	}
	// And the accumulator is clean for the next row despite the zero
	// value having been "re-zeroed" to itself.
	m.Begin(mask)
	if n := m.Gather(mask, idx, val); n != 0 {
		t.Fatalf("next-row gather = %d, want 0", n)
	}
}

// TestMaskedBitEnsureColsGrowth grows both variants between rows and
// checks the fresh region behaves like a clean accumulator.
func TestMaskedBitEnsureColsGrowth(t *testing.T) {
	m := NewMaskedBit[float64](pt, 8)
	mask := []int32{1, 3}
	m.Begin(mask)
	m.Insert(1, 2, 2)
	idx := make([]int32, 4)
	val := make([]float64, 4)
	if n := m.Gather(mask, idx, val); n != 1 || idx[0] != 1 || val[0] != 4 {
		t.Fatalf("pre-growth gather = %d %v %v", n, idx[:n], val[:n])
	}
	m.EnsureCols(200) // new words must come up clean
	wide := []int32{1, 70, 199}
	m.Begin(wide)
	m.Insert(199, 3, 3)
	m.Insert(70, 1, 1)
	m.Insert(100, 1, 1) // not in mask
	if n := m.Gather(wide, idx, val); n != 2 || idx[0] != 70 || idx[1] != 199 || val[1] != 9 {
		t.Fatalf("post-growth gather = %d %v %v", n, idx[:n], val[:n])
	}

	c := NewMaskedBitC[float64](pt, 8)
	c.BeginSized(mask, 4)
	c.Insert(0, 2, 3)
	if n := c.Gather(idx, val); n != 1 || idx[0] != 0 || val[0] != 6 {
		t.Fatalf("complement pre-growth gather = %d %v %v", n, idx[:n], val[:n])
	}
	c.EnsureCols(200)
	c.BeginSized(wide, 4)
	c.Insert(199, 1, 1) // banned
	c.Insert(150, 2, 2)
	if n := c.Gather(idx, val); n != 1 || idx[0] != 150 || val[0] != 4 {
		t.Fatalf("complement post-growth gather = %d %v %v", n, idx[:n], val[:n])
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
