package accum

import (
	"sort"

	"maskedspgemm/internal/semiring"
)

// MSA is the Masked Sparse Accumulator (§5.2): two dense arrays of
// length ncols — values and states — where states follows the automaton
// NOTALLOWED → ALLOWED → SET. Initialization marks the mask's keys
// ALLOWED; inserts only land on ALLOWED/SET keys; the gather walks the
// mask in order (making output stable/sorted) and resets the touched
// states, so cleanup costs O(nnz(mask row)) rather than O(ncols).
type MSA[T any, S semiring.Semiring[T]] struct {
	sr     S
	states []uint8
	values []T
}

// NewMSA returns an MSA accumulator for output rows of width ncols.
func NewMSA[T any, S semiring.Semiring[T]](sr S, ncols int) *MSA[T, S] {
	return &MSA[T, S]{sr: sr, states: make([]uint8, ncols), values: make([]T, ncols)}
}

// EnsureCols grows the dense arrays to cover output rows of width
// ncols. Fresh slots start NOTALLOWED (the zero state), so growing
// between rows is always safe. Used by executor workspaces that keep
// one MSA per worker across products of different widths.
func (m *MSA[T, S]) EnsureCols(ncols int) {
	if ncols > len(m.states) {
		m.states = make([]uint8, ncols)
		m.values = make([]T, ncols)
	}
}

// Begin marks every key in maskRow ALLOWED. The scatter is unrolled
// 4-wide: the four stores are independent, so the CPU overlaps them,
// and the block's three extra index loads are bounds-check-free (the
// loop condition covers them).
//
//mspgemm:hotpath
func (m *MSA[T, S]) Begin(maskRow []int32) {
	states := m.states
	for ; len(maskRow) >= 4; maskRow = maskRow[4:] {
		j0, j1, j2, j3 := maskRow[0], maskRow[1], maskRow[2], maskRow[3]
		states[uint32(j0)] = stateAllowed
		states[uint32(j1)] = stateAllowed
		states[uint32(j2)] = stateAllowed
		states[uint32(j3)] = stateAllowed
	}
	for _, j := range maskRow {
		states[uint32(j)] = stateAllowed
	}
}

// Insert accumulates Mul(a, b) into key if the mask admits it. The
// product is not computed for NOTALLOWED keys (lazy evaluation, §5.1).
//
//mspgemm:hotpath
func (m *MSA[T, S]) Insert(key int32, a, b T) {
	// values shares states' length, so after the states[k] check every
	// values[k] access is provably in bounds (len-hint reslicing).
	states := m.states
	values := m.values[:len(states)]
	k := uint32(key)
	switch states[k] {
	case stateAllowed:
		values[k] = m.sr.Mul(a, b)
		states[k] = stateSet
	case stateSet:
		values[k] = m.sr.Add(values[k], m.sr.Mul(a, b))
	}
}

// Gather emits the SET entries in mask order and resets the mask's
// states to NOTALLOWED.
//
//mspgemm:hotpath
func (m *MSA[T, S]) Gather(maskRow []int32, outIdx []int32, outVal []T) int {
	states := m.states
	values := m.values[:len(states)]
	n := 0
	for _, j := range maskRow {
		k := uint32(j)
		if states[k] == stateSet {
			outIdx[n] = j
			outVal[n] = values[k]
			n++
		}
		states[k] = stateNotAllowed
	}
	return n
}

// BeginSymbolic prepares a pattern-only row.
func (m *MSA[T, S]) BeginSymbolic(maskRow []int32) { m.Begin(maskRow) }

// InsertPattern marks key SET if allowed, without touching values.
//
//mspgemm:hotpath
func (m *MSA[T, S]) InsertPattern(key int32) {
	states := m.states
	k := uint32(key)
	if states[k] == stateAllowed {
		states[k] = stateSet
	}
}

// EndSymbolic counts SET keys and resets the mask's states.
//
//mspgemm:hotpath
func (m *MSA[T, S]) EndSymbolic(maskRow []int32) int {
	states := m.states
	n := 0
	for _, j := range maskRow {
		k := uint32(j)
		if states[k] == stateSet {
			n++
		}
		states[k] = stateNotAllowed
	}
	return n
}

// MSAC is the complemented-mask MSA (§5.2): the default state is
// ALLOWED and Begin marks the mask's keys NOTALLOWED. Because admitted
// keys are no longer enumerable from the mask, inserted keys are tracked
// in a list (the paper credits this strategy to Gustavson) and sorted at
// gather time so output rows stay sorted.
//
// Internally the state byte meaning is flipped relative to MSA so that
// the zero value of the states array means ALLOWED and no O(ncols)
// initialization is needed per row.
type MSAC[T any, S semiring.Semiring[T]] struct {
	sr       S
	states   []uint8 // 0 = allowed (default), 1 = notallowed, 2 = set
	values   []T
	inserted []int32
	maskRow  []int32 // row passed to Begin, reset during Gather
}

// NewMSAC returns a complemented MSA for output rows of width ncols.
func NewMSAC[T any, S semiring.Semiring[T]](sr S, ncols int) *MSAC[T, S] {
	return &MSAC[T, S]{sr: sr, states: make([]uint8, ncols), values: make([]T, ncols), inserted: make([]int32, 0, 64)}
}

const (
	msacAllowed    uint8 = 0
	msacNotAllowed uint8 = 1
	msacSet        uint8 = 2
)

// EnsureCols grows the dense arrays to cover output rows of width
// ncols. Fresh slots start at the zero state, which for MSAC means
// ALLOWED — exactly the clean between-rows state.
func (m *MSAC[T, S]) EnsureCols(ncols int) {
	if ncols > len(m.states) {
		m.states = make([]uint8, ncols)
		m.values = make([]T, ncols)
	}
}

// Begin marks every key in maskRow NOTALLOWED; all other keys are
// admitted.
//
//mspgemm:hotpath
func (m *MSAC[T, S]) Begin(maskRow []int32) {
	states := m.states
	for _, j := range maskRow {
		states[uint32(j)] = msacNotAllowed
	}
	m.inserted = m.inserted[:0]
	m.maskRow = maskRow
}

// BeginSized is Begin; the bound is irrelevant for a dense-array
// accumulator. It exists so MSAC and HashC share the complement
// protocol.
func (m *MSAC[T, S]) BeginSized(maskRow []int32, _ int) { m.Begin(maskRow) }

// Insert accumulates Mul(a, b) into key unless the mask excludes it.
//
//mspgemm:hotpath
func (m *MSAC[T, S]) Insert(key int32, a, b T) {
	states := m.states
	values := m.values[:len(states)]
	k := uint32(key)
	switch states[k] {
	case msacAllowed:
		values[k] = m.sr.Mul(a, b)
		states[k] = msacSet
		m.inserted = append(m.inserted, key)
	case msacSet:
		values[k] = m.sr.Add(values[k], m.sr.Mul(a, b))
	}
}

// Gather sorts the inserted keys, emits them, and resets all touched
// state — both the inserted keys and the mask keys marked in Begin — so
// the accumulator is clean for the next row.
func (m *MSAC[T, S]) Gather(outIdx []int32, outVal []T) int {
	sort.Sort(int32Slice(m.inserted))
	states := m.states
	values := m.values[:len(states)]
	n := 0
	for _, j := range m.inserted {
		k := uint32(j)
		outIdx[n] = j
		outVal[n] = values[k]
		states[k] = msacAllowed
		n++
	}
	m.inserted = m.inserted[:0]
	for _, j := range m.maskRow {
		states[uint32(j)] = msacAllowed
	}
	m.maskRow = nil
	return n
}

// BeginSymbolicSized prepares a pattern-only row.
func (m *MSAC[T, S]) BeginSymbolicSized(maskRow []int32, _ int) { m.Begin(maskRow) }

// InsertPattern marks key SET unless excluded.
//
//mspgemm:hotpath
func (m *MSAC[T, S]) InsertPattern(key int32) {
	states := m.states
	k := uint32(key)
	if states[k] == msacAllowed {
		states[k] = msacSet
		m.inserted = append(m.inserted, key)
	}
}

// EndSymbolic counts inserted keys and resets all touched state.
//
//mspgemm:hotpath
func (m *MSAC[T, S]) EndSymbolic() int {
	states := m.states
	n := len(m.inserted)
	for _, j := range m.inserted {
		states[uint32(j)] = msacAllowed
	}
	m.inserted = m.inserted[:0]
	for _, j := range m.maskRow {
		states[uint32(j)] = msacAllowed
	}
	m.maskRow = nil
	return n
}

// int32Slice implements sort.Interface; avoids the allocation of
// sort.Slice's closure in the per-row gather path.
type int32Slice []int32

// Len implements sort.Interface.
func (s int32Slice) Len() int { return len(s) }

// Less implements sort.Interface.
func (s int32Slice) Less(i, j int) bool { return s[i] < s[j] }

// Swap implements sort.Interface.
func (s int32Slice) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
