package accum

import "maskedspgemm/internal/semiring"

// MSAEpoch is an alternative MSA implementation used by the reset-
// strategy ablation (DESIGN.md §6): instead of walking the mask row to
// reset states after each gather, every row gets a fresh epoch number
// and a state array of int64 stamps encodes ALLOWED as 2·epoch and SET
// as 2·epoch+1. Stale stamps from previous rows are simply ignored, so
// reset is O(1) at the cost of 8× wider state entries (and hence more
// accumulator cache traffic — the effect the ablation measures).
type MSAEpoch[T any, S semiring.Semiring[T]] struct {
	sr     S
	stamps []int64
	values []T
	epoch  int64
}

// NewMSAEpoch returns an epoch-stamped MSA for rows of width ncols.
func NewMSAEpoch[T any, S semiring.Semiring[T]](sr S, ncols int) *MSAEpoch[T, S] {
	return &MSAEpoch[T, S]{sr: sr, stamps: make([]int64, ncols), values: make([]T, ncols), epoch: 0}
}

// EnsureCols grows the stamp/value arrays to width ncols. Fresh stamps
// are 0, which no live epoch ever equals (Begin increments the epoch
// before use, so ALLOWED stamps are ≥ 2), so growth between rows is
// safe.
func (m *MSAEpoch[T, S]) EnsureCols(ncols int) {
	if ncols > len(m.stamps) {
		m.stamps = make([]int64, ncols)
		m.values = make([]T, ncols)
	}
}

// Begin starts a new row epoch and marks the mask keys ALLOWED.
//
//mspgemm:hotpath
func (m *MSAEpoch[T, S]) Begin(maskRow []int32) {
	m.epoch++
	allowed := 2 * m.epoch
	for _, j := range maskRow {
		m.stamps[j] = allowed
	}
}

// Insert accumulates Mul(a, b) into key if the current epoch admits it.
//
//mspgemm:hotpath
func (m *MSAEpoch[T, S]) Insert(key int32, a, b T) {
	switch m.stamps[key] {
	case 2 * m.epoch: // allowed
		m.values[key] = m.sr.Mul(a, b)
		m.stamps[key] = 2*m.epoch + 1
	case 2*m.epoch + 1: // set
		m.values[key] = m.sr.Add(m.values[key], m.sr.Mul(a, b))
	}
}

// Gather emits SET entries in mask order; no reset is required.
//
//mspgemm:hotpath
func (m *MSAEpoch[T, S]) Gather(maskRow []int32, outIdx []int32, outVal []T) int {
	set := 2*m.epoch + 1
	n := 0
	for _, j := range maskRow {
		if m.stamps[j] == set {
			outIdx[n] = j
			outVal[n] = m.values[j]
			n++
		}
	}
	return n
}

// BeginSymbolic starts a pattern-only row.
func (m *MSAEpoch[T, S]) BeginSymbolic(maskRow []int32) { m.Begin(maskRow) }

// InsertPattern marks key SET if allowed.
//
//mspgemm:hotpath
func (m *MSAEpoch[T, S]) InsertPattern(key int32) {
	if m.stamps[key] == 2*m.epoch {
		m.stamps[key] = 2*m.epoch + 1
	}
}

// EndSymbolic counts SET keys; no reset is required.
//
//mspgemm:hotpath
func (m *MSAEpoch[T, S]) EndSymbolic(maskRow []int32) int {
	set := 2*m.epoch + 1
	n := 0
	for _, j := range maskRow {
		if m.stamps[j] == set {
			n++
		}
	}
	return n
}
