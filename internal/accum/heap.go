package accum

// RowIter is a cursor over one sorted row B_k* used by the heap
// algorithm (§5.5). Pos/End index into the shared ColIdx/Val arrays of
// B, AIdx remembers which entry of the current A row produced this
// iterator (so the kernel can recover u_k).
type RowIter struct {
	Col  int32 // current column id, cached from ColIdx[Pos]
	AIdx int32 // index into the A row's nonzeros (identifies u_k)
	Pos  int64 // current position in B.ColIdx
	End  int64 // one past the row's last position
}

// IterHeap is a binary min-heap of row iterators ordered by current
// column id, the multi-way-merge structure of the masked heap SpGEVM
// algorithm (§5.5, after Buluç & Gilbert's column-column heap
// algorithm). Capacity never exceeds nnz(A row); the backing slice is
// reused across rows.
type IterHeap struct {
	items []RowIter
}

// NewIterHeap returns a heap with the given capacity hint.
func NewIterHeap(capHint int) *IterHeap {
	return &IterHeap{items: make([]RowIter, 0, capHint)}
}

// Grow pre-sizes the (empty) heap's backing array to hold capHint
// iterators, so pooled reuse across products never reallocates inside
// the row kernels.
func (h *IterHeap) Grow(capHint int) {
	if capHint > cap(h.items) {
		h.items = make([]RowIter, 0, capHint)
	}
}

// Len returns the number of iterators in the heap.
func (h *IterHeap) Len() int { return len(h.items) }

// Reset empties the heap.
func (h *IterHeap) Reset() { h.items = h.items[:0] }

// Push inserts an iterator.
//
//mspgemm:hotpath
func (h *IterHeap) Push(it RowIter) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Col <= h.items[i].Col {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// PopMin removes and returns the iterator with the smallest current
// column. Panics when empty (caller checks Len).
//
//mspgemm:hotpath
func (h *IterHeap) PopMin() RowIter {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	h.siftDown(0)
	return top
}

// Min returns the smallest iterator without removing it.
func (h *IterHeap) Min() RowIter { return h.items[0] }

//mspgemm:hotpath
func (h *IterHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].Col < h.items[small].Col {
			small = l
		}
		if r < n && h.items[r].Col < h.items[small].Col {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}
