package accum

import (
	"sort"

	"maskedspgemm/internal/semiring"
)

// hashMultiplier is Knuth's multiplicative constant (2654435761 =
// floor(2^32/φ)); with a power-of-two table the high bits spread well
// under linear probing.
const hashMultiplier uint32 = 2654435761

// DefaultLoadFactor is the paper's hash accumulator load factor: the
// table is sized so that nnz(mask row) fills at most a quarter of it,
// trading memory for collision-free probes (§5.3).
const DefaultLoadFactor = 0.25

// Hash is the hash accumulator (§5.3): an open-addressing, linear-probe
// table storing (key, state, value) with no resizing — the key set is
// known up front to be the mask row. Compared to MSA it has a smaller
// footprint (better cache behaviour on large matrices) at the cost of
// hashing on each access.
type Hash[T any, S semiring.Semiring[T]] struct {
	sr     S
	keys   []int32 // -1 = empty slot
	states []uint8 // stateAllowed or stateSet for occupied slots
	values []T
	cap    int // active power-of-two capacity for the current row
	lf     float64
}

// NewHash returns a hash accumulator able to handle mask rows of up to
// maxMaskRow entries at the given load factor (≤ 0 means the paper's
// 0.25).
func NewHash[T any, S semiring.Semiring[T]](sr S, maxMaskRow int, loadFactor float64) *Hash[T, S] {
	if loadFactor <= 0 || loadFactor > 1 {
		loadFactor = DefaultLoadFactor
	}
	h := &Hash[T, S]{sr: sr, lf: loadFactor}
	h.grow(tableCap(maxMaskRow, loadFactor))
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// tableCap is the one table-sizing rule: the power-of-two capacity for
// n keys at load factor lf, always leaving at least one empty slot so
// linear probing for absent keys terminates even at load factor 1.0
// (a row of exactly c keys would otherwise fill the table and make
// slot() spin forever).
func tableCap(n int, lf float64) int {
	c := nextPow2(maxInt(int(float64(n)/lf), 16))
	for c <= n {
		c <<= 1
	}
	return c
}

// grow reallocates the backing arrays to capacity c when they are
// smaller, leaving every slot empty.
func (h *Hash[T, S]) grow(c int) {
	if c <= len(h.keys) {
		return
	}
	h.keys = make([]int32, c)
	h.states = make([]uint8, c)
	h.values = make([]T, c)
	for i := range h.keys {
		h.keys[i] = -1
	}
}

// Reconfigure adjusts a pooled accumulator for a new product: it adopts
// the given load factor (≤ 0 means the paper's 0.25) and pre-grows the
// table for mask rows of up to maxMaskRow entries. Used by executor
// workspaces that keep one Hash per worker across many multiplications.
func (h *Hash[T, S]) Reconfigure(maxMaskRow int, loadFactor float64) {
	if loadFactor <= 0 || loadFactor > 1 {
		loadFactor = DefaultLoadFactor
	}
	h.lf = loadFactor
	h.grow(tableCap(maxMaskRow, h.lf))
}

// sizeFor picks the active capacity for a row with n mask entries and
// clears that region. Growing beyond the constructor hint is supported
// (it just reallocates), so callers may size optimistically.
func (h *Hash[T, S]) sizeFor(n int) {
	c := tableCap(n, h.lf)
	h.grow(c)
	h.cap = c
	for i := 0; i < c; i++ {
		h.keys[i] = -1
	}
}

// slot probes for key and returns its slot index, or the index of the
// empty slot where it would be inserted.
func (h *Hash[T, S]) slot(key int32) int {
	mask := uint32(h.cap - 1)
	p := (uint32(key) * hashMultiplier) & mask
	for {
		k := h.keys[p]
		if k == key || k == -1 {
			return int(p)
		}
		p = (p + 1) & mask
	}
}

// Begin sizes the table for the row and inserts the mask keys as
// ALLOWED.
func (h *Hash[T, S]) Begin(maskRow []int32) {
	h.sizeFor(len(maskRow))
	for _, j := range maskRow {
		p := h.slot(j)
		h.keys[p] = j
		h.states[p] = stateAllowed
	}
}

// Insert accumulates Mul(a, b) into key if it is present in the table
// (i.e. admitted by the mask). Probing that lands on an empty slot means
// the key is NOTALLOWED and the product is never computed.
func (h *Hash[T, S]) Insert(key int32, a, b T) {
	p := h.slot(key)
	if h.keys[p] == -1 {
		return // not in mask: discard without computing the product
	}
	if h.states[p] == stateAllowed {
		h.values[p] = h.sr.Mul(a, b)
		h.states[p] = stateSet
	} else {
		h.values[p] = h.sr.Add(h.values[p], h.sr.Mul(a, b))
	}
}

// Gather re-probes each mask key in order and emits the SET ones; output
// is therefore sorted exactly like the mask. The table needs no explicit
// reset — the next Begin clears its active region.
func (h *Hash[T, S]) Gather(maskRow []int32, outIdx []int32, outVal []T) int {
	n := 0
	for _, j := range maskRow {
		p := h.slot(j)
		if h.keys[p] != -1 && h.states[p] == stateSet {
			outIdx[n] = j
			outVal[n] = h.values[p]
			n++
		}
	}
	return n
}

// BeginSymbolic prepares a pattern-only row.
func (h *Hash[T, S]) BeginSymbolic(maskRow []int32) { h.Begin(maskRow) }

// InsertPattern marks key SET if admitted.
func (h *Hash[T, S]) InsertPattern(key int32) {
	p := h.slot(key)
	if h.keys[p] == -1 {
		return
	}
	if h.states[p] == stateAllowed {
		h.states[p] = stateSet
	}
}

// EndSymbolic counts SET keys.
func (h *Hash[T, S]) EndSymbolic(maskRow []int32) int {
	n := 0
	for _, j := range maskRow {
		p := h.slot(j)
		if h.keys[p] != -1 && h.states[p] == stateSet {
			n++
		}
	}
	return n
}

// HashC is the complemented-mask hash accumulator: mask keys are
// inserted as NOTALLOWED sentinels and any other key is admitted on
// first touch. Because admitted keys cannot be enumerated from the mask,
// the table must be sized by an upper bound on the row's output
// (min(ncols − nnz(mask row), Σ nnz(B_k*)) plus the mask sentinels) and
// inserted keys are tracked and sorted at gather time.
type HashC[T any, S semiring.Semiring[T]] struct {
	sr       S
	keys     []int32
	states   []uint8 // stateNotAllowed (sentinel) or stateSet
	values   []T
	cap      int
	lf       float64
	inserted []int32
}

// NewHashC returns a complemented hash accumulator able to hold
// maxEntries keys (mask sentinels + inserted outputs) per row.
func NewHashC[T any, S semiring.Semiring[T]](sr S, maxEntries int, loadFactor float64) *HashC[T, S] {
	if loadFactor <= 0 || loadFactor > 1 {
		loadFactor = 0.5 // complement rows can be large; be less wasteful
	}
	c := nextPow2(maxInt(int(float64(maxEntries)/loadFactor), 16))
	h := &HashC[T, S]{
		sr:     sr,
		keys:   make([]int32, c),
		states: make([]uint8, c),
		values: make([]T, c),
		lf:     loadFactor,
	}
	for i := range h.keys {
		h.keys[i] = -1
	}
	return h
}

// Reconfigure adopts a new load factor (≤ 0 means the complement
// default 0.5) on a pooled accumulator. Table growth is per-row
// (BeginSized), so no pre-sizing is needed here.
func (h *HashC[T, S]) Reconfigure(loadFactor float64) {
	if loadFactor <= 0 || loadFactor > 1 {
		loadFactor = 0.5
	}
	h.lf = loadFactor
}

// BeginSized prepares the table for a row whose mask has the given
// entries and whose output size is bounded by bound.
func (h *HashC[T, S]) BeginSized(maskRow []int32, bound int) {
	need := tableCap(bound+len(maskRow), h.lf)
	if need > len(h.keys) {
		h.keys = make([]int32, need)
		h.states = make([]uint8, need)
		h.values = make([]T, need)
	}
	h.cap = need
	for i := 0; i < need; i++ {
		h.keys[i] = -1
	}
	for _, j := range maskRow {
		p := h.slot(j)
		h.keys[p] = j
		h.states[p] = stateNotAllowed
	}
	h.inserted = h.inserted[:0]
}

func (h *HashC[T, S]) slot(key int32) int {
	mask := uint32(h.cap - 1)
	p := (uint32(key) * hashMultiplier) & mask
	for {
		k := h.keys[p]
		if k == key || k == -1 {
			return int(p)
		}
		p = (p + 1) & mask
	}
}

// Insert accumulates Mul(a, b) into key unless it is a mask sentinel.
func (h *HashC[T, S]) Insert(key int32, a, b T) {
	p := h.slot(key)
	switch {
	case h.keys[p] == -1:
		h.keys[p] = key
		h.states[p] = stateSet
		h.values[p] = h.sr.Mul(a, b)
		h.inserted = append(h.inserted, key)
	case h.states[p] == stateSet:
		h.values[p] = h.sr.Add(h.values[p], h.sr.Mul(a, b))
	}
	// stateNotAllowed: masked out; discard.
}

// Gather sorts and emits the inserted keys. The next BeginSized clears
// the table.
func (h *HashC[T, S]) Gather(outIdx []int32, outVal []T) int {
	sort.Sort(int32Slice(h.inserted))
	n := 0
	for _, j := range h.inserted {
		p := h.slot(j)
		outIdx[n] = j
		outVal[n] = h.values[p]
		n++
	}
	h.inserted = h.inserted[:0]
	return n
}

// BeginSymbolicSized prepares a pattern-only row.
func (h *HashC[T, S]) BeginSymbolicSized(maskRow []int32, bound int) {
	h.BeginSized(maskRow, bound)
}

// InsertPattern marks key SET unless it is a sentinel.
func (h *HashC[T, S]) InsertPattern(key int32) {
	p := h.slot(key)
	if h.keys[p] == -1 {
		h.keys[p] = key
		h.states[p] = stateSet
		h.inserted = append(h.inserted, key)
	}
}

// EndSymbolic counts inserted keys.
func (h *HashC[T, S]) EndSymbolic() int {
	n := len(h.inserted)
	h.inserted = h.inserted[:0]
	return n
}
