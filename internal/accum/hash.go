package accum

import (
	"sort"

	"maskedspgemm/internal/semiring"
)

// hashMultiplier is Knuth's multiplicative constant (2654435761 =
// floor(2^32/φ)); with a power-of-two table the high bits spread well
// under linear probing.
const hashMultiplier uint32 = 2654435761

// DefaultLoadFactor is the paper's hash accumulator load factor: the
// table is sized so that nnz(mask row) fills at most a quarter of it,
// trading memory for collision-free probes (§5.3).
const DefaultLoadFactor = 0.25

// Hash is the hash accumulator (§5.3): an open-addressing, linear-probe
// table storing (key, state, value) with no resizing — the key set is
// known up front to be the mask row. Compared to MSA it has a smaller
// footprint (better cache behaviour on large matrices) at the cost of
// hashing on each access.
type Hash[T any, S semiring.Semiring[T]] struct {
	sr     S
	keys   []int32 // -1 = empty slot
	states []uint8 // stateAllowed or stateSet for occupied slots
	values []T
	cap    int // active power-of-two capacity for the current row
	lf     float64
}

// NewHash returns a hash accumulator able to handle mask rows of up to
// maxMaskRow entries at the given load factor (≤ 0 means the paper's
// 0.25).
func NewHash[T any, S semiring.Semiring[T]](sr S, maxMaskRow int, loadFactor float64) *Hash[T, S] {
	if loadFactor <= 0 || loadFactor > 1 {
		loadFactor = DefaultLoadFactor
	}
	h := &Hash[T, S]{sr: sr, lf: loadFactor}
	h.grow(tableCap(maxMaskRow, loadFactor))
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// tableCap is the one table-sizing rule: the power-of-two capacity for
// n keys at load factor lf, always leaving at least one empty slot so
// linear probing for absent keys terminates even at load factor 1.0
// (a row of exactly c keys would otherwise fill the table and make
// slot() spin forever).
func tableCap(n int, lf float64) int {
	c := nextPow2(maxInt(int(float64(n)/lf), 16))
	for c <= n {
		c <<= 1
	}
	return c
}

// grow reallocates the backing arrays to capacity c when they are
// smaller, leaving every slot empty.
func (h *Hash[T, S]) grow(c int) {
	if c <= len(h.keys) {
		return
	}
	h.keys = make([]int32, c)
	h.states = make([]uint8, c)
	h.values = make([]T, c)
	for i := range h.keys {
		h.keys[i] = -1
	}
}

// Reconfigure adjusts a pooled accumulator for a new product: it adopts
// the given load factor (≤ 0 means the paper's 0.25) and pre-grows the
// table for mask rows of up to maxMaskRow entries. Used by executor
// workspaces that keep one Hash per worker across many multiplications.
func (h *Hash[T, S]) Reconfigure(maxMaskRow int, loadFactor float64) {
	if loadFactor <= 0 || loadFactor > 1 {
		loadFactor = DefaultLoadFactor
	}
	h.lf = loadFactor
	h.grow(tableCap(maxMaskRow, h.lf))
}

// sizeFor picks the active capacity for a row with n mask entries and
// clears that region. Growing beyond the constructor hint is supported
// (it just reallocates), so callers may size optimistically.
func (h *Hash[T, S]) sizeFor(n int) {
	c := tableCap(n, h.lf)
	h.grow(c)
	h.cap = c
	for i := 0; i < c; i++ {
		h.keys[i] = -1
	}
}

// probe linear-probes keys (a power-of-two-sized table using -1 for
// empty slots) for key and returns its slot, or the empty slot
// terminating its chain. A free function over the resliced active
// region rather than a method: the compiler sees the probe index is
// masked by len(keys)-1 and (after the len guard) eliminates the
// bounds check inside the loop, which a h.keys/h.cap formulation
// defeats.
//
//mspgemm:hotpath
func probe(keys []int32, key int32) int {
	if len(keys) == 0 {
		return 0
	}
	// mask stays an int expression over len(keys) so the prove pass can
	// see p&mask < len(keys); routing it through uint32 would lose that.
	mask := len(keys) - 1
	p := int(uint32(key)*hashMultiplier) & mask
	for {
		k := keys[p&mask]
		if k == key || k == -1 {
			return p & mask
		}
		p = (p + 1) & mask
	}
}

// Begin sizes the table for the row and inserts the mask keys as
// ALLOWED. The scatter is unrolled 4-wide; probes of distinct keys are
// independent chains the CPU can overlap, but each insert must land
// before the next probe starts (a later key may hash into the same
// chain), so probe/store pairs stay interleaved.
//
//mspgemm:hotpath
func (h *Hash[T, S]) Begin(maskRow []int32) {
	h.sizeFor(len(maskRow))
	keys := h.keys[:h.cap]
	states := h.states[:len(keys)]
	for ; len(maskRow) >= 4; maskRow = maskRow[4:] {
		j0, j1, j2, j3 := maskRow[0], maskRow[1], maskRow[2], maskRow[3]
		p0 := probe(keys, j0)
		keys[p0], states[p0] = j0, stateAllowed
		p1 := probe(keys, j1)
		keys[p1], states[p1] = j1, stateAllowed
		p2 := probe(keys, j2)
		keys[p2], states[p2] = j2, stateAllowed
		p3 := probe(keys, j3)
		keys[p3], states[p3] = j3, stateAllowed
	}
	for _, j := range maskRow {
		p := probe(keys, j)
		keys[p], states[p] = j, stateAllowed
	}
}

// Insert accumulates Mul(a, b) into key if it is present in the table
// (i.e. admitted by the mask). Probing that lands on an empty slot means
// the key is NOTALLOWED and the product is never computed.
//
//mspgemm:hotpath
func (h *Hash[T, S]) Insert(key int32, a, b T) {
	// states and values share keys' length, so after the keys[p] check
	// the remaining accesses are provably in bounds.
	keys := h.keys[:h.cap]
	p := probe(keys, key)
	if keys[p] == -1 {
		return // not in mask: discard without computing the product
	}
	states := h.states[:len(keys)]
	values := h.values[:len(keys)]
	if states[p] == stateAllowed {
		values[p] = h.sr.Mul(a, b)
		states[p] = stateSet
	} else {
		values[p] = h.sr.Add(values[p], h.sr.Mul(a, b))
	}
}

// Gather re-probes each mask key in order and emits the SET ones; output
// is therefore sorted exactly like the mask. The table needs no explicit
// reset — the next Begin clears its active region.
//
//mspgemm:hotpath
func (h *Hash[T, S]) Gather(maskRow []int32, outIdx []int32, outVal []T) int {
	keys := h.keys[:h.cap]
	states := h.states[:len(keys)]
	values := h.values[:len(keys)]
	n := 0
	for _, j := range maskRow {
		p := probe(keys, j)
		if keys[p] != -1 && states[p] == stateSet {
			outIdx[n] = j
			outVal[n] = values[p]
			n++
		}
	}
	return n
}

// BeginSymbolic prepares a pattern-only row.
func (h *Hash[T, S]) BeginSymbolic(maskRow []int32) { h.Begin(maskRow) }

// InsertPattern marks key SET if admitted.
//
//mspgemm:hotpath
func (h *Hash[T, S]) InsertPattern(key int32) {
	keys := h.keys[:h.cap]
	p := probe(keys, key)
	if keys[p] == -1 {
		return
	}
	states := h.states[:len(keys)]
	if states[p] == stateAllowed {
		states[p] = stateSet
	}
}

// EndSymbolic counts SET keys.
//
//mspgemm:hotpath
func (h *Hash[T, S]) EndSymbolic(maskRow []int32) int {
	keys := h.keys[:h.cap]
	states := h.states[:len(keys)]
	n := 0
	for _, j := range maskRow {
		p := probe(keys, j)
		if keys[p] != -1 && states[p] == stateSet {
			n++
		}
	}
	return n
}

// HashC is the complemented-mask hash accumulator: mask keys are
// inserted as NOTALLOWED sentinels and any other key is admitted on
// first touch. Because admitted keys cannot be enumerated from the mask,
// the table must be sized by an upper bound on the row's output
// (min(ncols − nnz(mask row), Σ nnz(B_k*)) plus the mask sentinels) and
// inserted keys are tracked and sorted at gather time.
type HashC[T any, S semiring.Semiring[T]] struct {
	sr       S
	keys     []int32
	states   []uint8 // stateNotAllowed (sentinel) or stateSet
	values   []T
	cap      int
	lf       float64
	inserted []int32
}

// NewHashC returns a complemented hash accumulator able to hold
// maxEntries keys (mask sentinels + inserted outputs) per row.
func NewHashC[T any, S semiring.Semiring[T]](sr S, maxEntries int, loadFactor float64) *HashC[T, S] {
	if loadFactor <= 0 || loadFactor > 1 {
		loadFactor = 0.5 // complement rows can be large; be less wasteful
	}
	c := nextPow2(maxInt(int(float64(maxEntries)/loadFactor), 16))
	h := &HashC[T, S]{
		sr:     sr,
		keys:   make([]int32, c),
		states: make([]uint8, c),
		values: make([]T, c),
		lf:     loadFactor,
	}
	for i := range h.keys {
		h.keys[i] = -1
	}
	return h
}

// Reconfigure adopts a new load factor (≤ 0 means the complement
// default 0.5) on a pooled accumulator. Table growth is per-row
// (BeginSized), so no pre-sizing is needed here.
func (h *HashC[T, S]) Reconfigure(loadFactor float64) {
	if loadFactor <= 0 || loadFactor > 1 {
		loadFactor = 0.5
	}
	h.lf = loadFactor
}

// BeginSized prepares the table for a row whose mask has the given
// entries and whose output size is bounded by bound.
//
//mspgemm:hotpath
func (h *HashC[T, S]) BeginSized(maskRow []int32, bound int) {
	need := tableCap(bound+len(maskRow), h.lf)
	if need > len(h.keys) {
		h.keys = make([]int32, need)
		h.states = make([]uint8, need)
		h.values = make([]T, need)
	}
	h.cap = need
	for i := 0; i < need; i++ {
		h.keys[i] = -1
	}
	keys := h.keys[:h.cap]
	states := h.states[:len(keys)]
	for _, j := range maskRow {
		p := probe(keys, j)
		keys[p], states[p] = j, stateNotAllowed
	}
	h.inserted = h.inserted[:0]
}

// Insert accumulates Mul(a, b) into key unless it is a mask sentinel.
//
//mspgemm:hotpath
func (h *HashC[T, S]) Insert(key int32, a, b T) {
	keys := h.keys[:h.cap]
	p := probe(keys, key)
	states := h.states[:len(keys)]
	values := h.values[:len(keys)]
	switch {
	case keys[p] == -1:
		keys[p] = key
		states[p] = stateSet
		values[p] = h.sr.Mul(a, b)
		h.inserted = append(h.inserted, key)
	case states[p] == stateSet:
		values[p] = h.sr.Add(values[p], h.sr.Mul(a, b))
	}
	// stateNotAllowed: masked out; discard.
}

// Gather sorts and emits the inserted keys. The next BeginSized clears
// the table.
func (h *HashC[T, S]) Gather(outIdx []int32, outVal []T) int {
	sort.Sort(int32Slice(h.inserted))
	keys := h.keys[:h.cap]
	values := h.values[:len(keys)]
	n := 0
	for _, j := range h.inserted {
		p := probe(keys, j)
		outIdx[n] = j
		outVal[n] = values[p]
		n++
	}
	h.inserted = h.inserted[:0]
	return n
}

// BeginSymbolicSized prepares a pattern-only row.
func (h *HashC[T, S]) BeginSymbolicSized(maskRow []int32, bound int) {
	h.BeginSized(maskRow, bound)
}

// InsertPattern marks key SET unless it is a sentinel.
//
//mspgemm:hotpath
func (h *HashC[T, S]) InsertPattern(key int32) {
	keys := h.keys[:h.cap]
	p := probe(keys, key)
	if keys[p] == -1 {
		keys[p] = key
		states := h.states[:len(keys)]
		states[p] = stateSet
		h.inserted = append(h.inserted, key)
	}
}

// EndSymbolic counts inserted keys.
//
//mspgemm:hotpath
func (h *HashC[T, S]) EndSymbolic() int {
	n := len(h.inserted)
	h.inserted = h.inserted[:0]
	return n
}
