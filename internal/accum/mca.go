package accum

import "maskedspgemm/internal/semiring"

// MCA is the Mask Compressed Accumulator (§5.4), the accumulator the
// paper introduces specifically for masked SpGEMM. The observation: an
// output row can never hold more than nnz(mask row) entries, so the
// values/states arrays need only that many slots — compressed to the
// mask — and are indexed by the *position* of a column within the mask
// row rather than by the column id. Because the mask pre-filters every
// key that reaches the accumulator, only two states are needed:
// ALLOWED (zero value) and SET.
//
// The key-to-position translation is done by the caller's merge loop
// (Algorithm 3 in the paper, implemented in internal/core): for each
// nonzero u_k the sorted row B_k* is merged against the sorted mask row,
// and matches are inserted under their mask position.
type MCA[T any, S semiring.Semiring[T]] struct {
	sr     S
	states []uint8
	values []T
}

// NewMCA returns an MCA able to handle mask rows of up to maxMaskRow
// entries.
func NewMCA[T any, S semiring.Semiring[T]](sr S, maxMaskRow int) *MCA[T, S] {
	return &MCA[T, S]{sr: sr, states: make([]uint8, maxMaskRow), values: make([]T, maxMaskRow)}
}

// Grow ensures capacity for mask rows of n entries.
func (m *MCA[T, S]) Grow(n int) {
	if n > len(m.states) {
		m.states = make([]uint8, n)
		m.values = make([]T, n)
	}
}

// Insert accumulates Mul(a, b) into mask position idx. The caller
// guarantees 0 ≤ idx < nnz(mask row), i.e. the key is admitted.
//
//mspgemm:hotpath
func (m *MCA[T, S]) Insert(idx int32, a, b T) {
	if m.states[idx] == stateNotAllowed { // zero value doubles as ALLOWED here
		m.values[idx] = m.sr.Mul(a, b)
		m.states[idx] = stateSet
	} else {
		m.values[idx] = m.sr.Add(m.values[idx], m.sr.Mul(a, b))
	}
}

// InsertPattern marks mask position idx SET (symbolic phase).
//
//mspgemm:hotpath
func (m *MCA[T, S]) InsertPattern(idx int32) {
	m.states[idx] = stateSet
}

// Gather emits the SET positions translated back to column ids via the
// mask row, resets the used prefix, and returns the output count.
// Output order follows the mask, so it is sorted whenever the mask is.
//
//mspgemm:hotpath
func (m *MCA[T, S]) Gather(maskRow []int32, outIdx []int32, outVal []T) int {
	n := 0
	for idx, j := range maskRow {
		if m.states[idx] == stateSet {
			outIdx[n] = j
			outVal[n] = m.values[idx]
			n++
		}
		m.states[idx] = stateNotAllowed
	}
	return n
}

// EndSymbolic counts SET positions among the first len(maskRow) slots
// and resets them.
//
//mspgemm:hotpath
func (m *MCA[T, S]) EndSymbolic(maskRow []int32) int {
	n := 0
	for idx := range maskRow {
		if m.states[idx] == stateSet {
			n++
		}
		m.states[idx] = stateNotAllowed
	}
	return n
}
