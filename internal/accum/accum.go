// Package accum implements the four accumulator data structures the
// paper builds masked SpGEMM on (§5): the Masked Sparse Accumulator
// (MSA), the hash accumulator, the novel Mask Compressed Accumulator
// (MCA), and the heap (multi-way merge) accumulator, plus the
// complemented-mask variants of MSA and hash (§5.2–5.5).
//
// An accumulator merges the scaled rows u_k·B_k* that contribute to one
// output row, while discarding (ideally never computing) products whose
// column is masked out. The paper's interface is
//
//	setAllowed(key) / insert(key, λ) / remove(key)
//
// with three states per key: NOTALLOWED → ALLOWED → SET. Here the
// insert lambda is realised without closure allocation by passing both
// multiplicands: Insert(key, a, b) multiplies only once the key is known
// to be allowed, preserving the lazy-evaluation semantics of §5.1.
//
// One accumulator instance is owned by one worker goroutine and reused
// across all rows that worker processes; Begin/Gather (or the symbolic
// Begin/EndSymbolic pair) bracket each row and leave the structure clean
// for the next row in O(row work) time.
package accum

// Key states shared by MSA and MCA. The hash accumulator encodes
// emptiness through its key slots instead.
const (
	stateNotAllowed uint8 = iota // default: masked out (plain) / untouched
	stateAllowed                 // admitted by the mask, nothing inserted yet
	stateSet                     // at least one product accumulated
)

// nextPow2 returns the smallest power of two ≥ n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Numeric is the per-row numeric protocol shared by the MSA and hash
// accumulators; the push kernels in internal/core are generic over it so
// each instantiation monomorphizes.
//
// Usage per output row i:
//
//	acc.Begin(maskRow)
//	for each A(i,k): for each B(k,j): acc.Insert(j, a, b)
//	n := acc.Gather(maskRow, outIdx, outVal)
type Numeric[T any] interface {
	// Begin prepares the accumulator for a new output row whose admitted
	// keys are the sorted column indices in maskRow.
	Begin(maskRow []int32)
	// Insert lazily accumulates Mul(a, b) into key, discarding the
	// product without computing it when key is not allowed.
	Insert(key int32, a, b T)
	// Gather writes the SET entries in mask order into outIdx/outVal,
	// returns how many were written, and resets the accumulator.
	Gather(maskRow []int32, outIdx []int32, outVal []T) int
}

// Symbolic is the per-row symbolic (pattern-only) protocol used by the
// two-phase algorithms' first pass (§6): like Numeric but without
// values.
type Symbolic interface {
	// BeginSymbolic prepares for a new row (pattern-only).
	BeginSymbolic(maskRow []int32)
	// InsertPattern marks key as SET if it is allowed.
	InsertPattern(key int32)
	// EndSymbolic returns the number of SET keys and resets.
	EndSymbolic(maskRow []int32) int
}

// ComplementNumeric is the numeric protocol for complemented masks
// (C = ¬M ⊙ AB): Begin marks the mask keys as NOTALLOWED, every other
// key is admitted, and gathering must sort because insertions arrive in
// arbitrary column order (§5.2, "Gustavson's strategy").
type ComplementNumeric[T any] interface {
	// Begin prepares for a new output row; keys in maskRow are excluded.
	Begin(maskRow []int32)
	// Insert lazily accumulates Mul(a, b) into key unless it is masked
	// out.
	Insert(key int32, a, b T)
	// Gather writes all SET entries in ascending key order, returns the
	// count, and resets. outIdx/outVal must have room for every inserted
	// key.
	Gather(outIdx []int32, outVal []T) int
}

// ComplementSymbolic is the symbolic counterpart of ComplementNumeric.
type ComplementSymbolic interface {
	// BeginSymbolic prepares for a new row (pattern-only).
	BeginSymbolic(maskRow []int32)
	// InsertPattern marks key as SET unless masked out.
	InsertPattern(key int32)
	// EndSymbolic returns the number of SET keys and resets.
	EndSymbolic() int
}
