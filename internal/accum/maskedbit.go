package accum

import (
	"math/bits"
	"sort"

	"maskedspgemm/internal/semiring"
)

// bitWords returns the number of 64-bit words covering ncols bit
// positions.
func bitWords(ncols int) int { return (ncols + 63) >> 6 }

// MaskedBit is a bitmap-state masked accumulator: the MSA's three-state
// byte automaton collapsed into two bitsets plus a values array that is
// kept at the semiring zero between rows. Because implementations of
// semiring.Semiring guarantee Add(x, Zero()) == x, "insert into an
// ALLOWED key" and "accumulate into a SET key" become the same fused
// operation — values[key] = Add(values[key], Mul(a, b)) — gated by a
// single word-indexed bit test. The state footprint per column drops
// from one byte to two bits (one allowed bit, one set bit), so on
// dense-mask rows the per-row walks (Begin's fill, Gather's cleanup)
// move an eighth of the memory the MSA does and the discard path of
// Insert touches only the bitset.
//
// The set bitset exists solely for pattern fidelity: an entry whose
// products cancel to the numeric zero is still present in the output,
// exactly as with the MSA, so the emptiness test is "was inserted at
// least once", never "value != 0".
type MaskedBit[T any, S semiring.Semiring[T]] struct {
	sr S
	// values is indexed by column and holds sr.Zero() everywhere except
	// the keys inserted since the last Begin; Gather restores the
	// invariant for the keys it emits.
	values []T
	// allowed holds one bit per column: set while the current row's mask
	// admits that column.
	allowed []uint64
	// set holds one bit per column: set once at least one product has
	// been accumulated into that column this row.
	set []uint64
}

// NewMaskedBit returns a MaskedBit accumulator for output rows of width
// ncols.
func NewMaskedBit[T any, S semiring.Semiring[T]](sr S, ncols int) *MaskedBit[T, S] {
	m := &MaskedBit[T, S]{sr: sr}
	m.EnsureCols(ncols)
	return m
}

// EnsureCols grows the dense arrays to cover output rows of width
// ncols. Fresh values slots are filled with the semiring zero and fresh
// bitset words are zero (NOTALLOWED), so growing between rows is always
// safe. Used by executor workspaces that keep one MaskedBit per worker
// across products of different widths.
func (m *MaskedBit[T, S]) EnsureCols(ncols int) {
	if ncols <= len(m.values) {
		return
	}
	m.values = make([]T, ncols)
	zero := m.sr.Zero()
	for i := range m.values {
		m.values[i] = zero
	}
	w := bitWords(ncols)
	m.allowed = make([]uint64, w)
	m.set = make([]uint64, w)
}

// Begin marks every key in maskRow allowed. Consecutive mask columns
// usually share a 64-column word, so the fill accumulates bits in a
// register and flushes once per word rather than storing per entry.
// The walk takes sorted entries four at a time: when the first and
// fourth share a word — the common case on the dense rows this
// accumulator targets — the group collapses into a parallel OR tree
// and a single word update. There is deliberately no loop-carried
// pending register: the groups' word updates are independent memory
// operations the CPU can overlap, where a flush-on-word-change walk
// serializes every iteration through the same two registers.
//
//mspgemm:hotpath
func (m *MaskedBit[T, S]) Begin(maskRow []int32) {
	allowed := m.allowed
	for ; len(maskRow) >= 4; maskRow = maskRow[4:] {
		k0 := uint(uint32(maskRow[0]))
		k1 := uint(uint32(maskRow[1]))
		k2 := uint(uint32(maskRow[2]))
		k3 := uint(uint32(maskRow[3]))
		if k0>>6 == k3>>6 {
			allowed[k0>>6] |= uint64(1)<<(k0&63) | uint64(1)<<(k1&63) | uint64(1)<<(k2&63) | uint64(1)<<(k3&63)
			continue
		}
		allowed[k0>>6] |= 1 << (k0 & 63)
		allowed[k1>>6] |= 1 << (k1 & 63)
		allowed[k2>>6] |= 1 << (k2 & 63)
		allowed[k3>>6] |= 1 << (k3 & 63)
	}
	for _, j := range maskRow {
		k := uint(uint32(j))
		allowed[k>>6] |= 1 << (k & 63)
	}
}

// Insert accumulates Mul(a, b) into key if the mask admits it; the
// product is not computed for masked-out keys. There is no three-way
// state dispatch: allowed and set-but-not-yet-inserted keys take the
// identical fused-add path because values start at the semiring zero.
//
//mspgemm:hotpath
func (m *MaskedBit[T, S]) Insert(key int32, a, b T) {
	k := uint(uint32(key))
	w := k >> 6
	bit := uint64(1) << (k & 63)
	allowed := m.allowed
	if allowed[w]&bit == 0 {
		return // not in mask: discard without computing the product
	}
	// set shares allowed's length, so after the allowed[w] check the
	// set[w] store is provably in bounds.
	set := m.set[:len(allowed)]
	values := m.values
	values[k] = m.sr.Add(values[k], m.sr.Mul(a, b))
	set[w] |= bit
}

// Gather emits the inserted entries in ascending column order —
// identical to mask order, since the set bits are a subset of the mask's
// — restores the emitted values slots to the semiring zero, and clears
// the touched bitset words. The walk is word-granular: it spans the
// words between the row's first and last mask column, popping set bits
// with TrailingZeros64, so on a dense mask row it touches ~nnz/64 words
// plus one operation per emitted entry instead of re-testing every mask
// entry. This word walk is where the bitmap representation pays off;
// the entry-granular alternative is three O(nnz(mask row)) passes and
// loses to the MSA outright. On a very sparse row the word range can
// exceed the entry count (it is still bounded by ncols/64); the row
// cost model charges for that, steering such rows to other families.
//
//mspgemm:hotpath
func (m *MaskedBit[T, S]) Gather(maskRow []int32, outIdx []int32, outVal []T) int {
	if len(maskRow) == 0 {
		return 0
	}
	w0 := uint(uint32(maskRow[0])) >> 6
	w1 := uint(uint32(maskRow[len(maskRow)-1])) >> 6
	zero := m.sr.Zero()
	values := m.values
	allowed := m.allowed
	set := m.set[:len(allowed)]
	n := 0
	for w := w0; w <= w1; w++ {
		for b := set[w]; b != 0; b &= b - 1 {
			k := w<<6 + uint(bits.TrailingZeros64(b))
			outIdx[n] = int32(k)
			outVal[n] = values[k]
			values[k] = zero
			n++
		}
		allowed[w] = 0
		set[w] = 0
	}
	return n
}

// BeginSymbolic prepares a pattern-only row.
func (m *MaskedBit[T, S]) BeginSymbolic(maskRow []int32) { m.Begin(maskRow) }

// InsertPattern marks key set if allowed, without touching values.
//
//mspgemm:hotpath
func (m *MaskedBit[T, S]) InsertPattern(key int32) {
	k := uint(uint32(key))
	w := k >> 6
	bit := uint64(1) << (k & 63)
	allowed := m.allowed
	if allowed[w]&bit != 0 {
		set := m.set[:len(allowed)]
		set[w] |= bit
	}
}

// EndSymbolic counts the set keys word-wide — one popcount per
// 64-column word across the row's word range instead of one branch per
// mask entry — and resets the touched words.
//
//mspgemm:hotpath
func (m *MaskedBit[T, S]) EndSymbolic(maskRow []int32) int {
	if len(maskRow) == 0 {
		return 0
	}
	w0 := uint(uint32(maskRow[0])) >> 6
	w1 := uint(uint32(maskRow[len(maskRow)-1])) >> 6
	allowed := m.allowed
	set := m.set[:len(allowed)]
	n := 0
	for w := w0; w <= w1; w++ {
		n += bits.OnesCount64(set[w])
		allowed[w] = 0
		set[w] = 0
	}
	return n
}

// MaskedBitC is the complemented-mask MaskedBit: Begin marks the mask's
// keys banned in a bitset and every other key is admitted on first
// touch. Admitted keys cannot be enumerated from the mask, so inserted
// keys are tracked in a list (as in MSAC/HashC) and sorted at gather
// time. Values stay at the semiring zero between rows, so Insert is the
// same fused add as the plain variant plus a first-touch append.
type MaskedBitC[T any, S semiring.Semiring[T]] struct {
	sr S
	// values is indexed by column and holds sr.Zero() everywhere except
	// the keys inserted since the last BeginSized.
	values []T
	// banned holds one bit per column excluded by the current row's mask.
	banned []uint64
	// set holds one bit per column inserted this row; it deduplicates
	// the inserted list.
	set []uint64
	// inserted lists the keys accumulated this row, in first-touch order
	// until Gather sorts them.
	inserted []int32
	// maskRow is the row passed to BeginSized, kept to clear the banned
	// words during Gather/EndSymbolic.
	maskRow []int32
}

// NewMaskedBitC returns a complemented MaskedBit for output rows of
// width ncols.
func NewMaskedBitC[T any, S semiring.Semiring[T]](sr S, ncols int) *MaskedBitC[T, S] {
	m := &MaskedBitC[T, S]{sr: sr, inserted: make([]int32, 0, 64)}
	m.EnsureCols(ncols)
	return m
}

// EnsureCols grows the dense arrays to cover output rows of width
// ncols. Fresh values slots are filled with the semiring zero and fresh
// bitset words are zero, which for the complement variant means
// "admitted, nothing inserted" — exactly the clean between-rows state.
func (m *MaskedBitC[T, S]) EnsureCols(ncols int) {
	if ncols <= len(m.values) {
		return
	}
	m.values = make([]T, ncols)
	zero := m.sr.Zero()
	for i := range m.values {
		m.values[i] = zero
	}
	w := bitWords(ncols)
	m.banned = make([]uint64, w)
	m.set = make([]uint64, w)
}

// BeginSized marks every key in maskRow banned; all other keys are
// admitted. The bound is irrelevant for a dense-array accumulator — the
// parameter exists so MaskedBitC shares the complement protocol with
// MSAC and HashC.
//
//mspgemm:hotpath
func (m *MaskedBitC[T, S]) BeginSized(maskRow []int32, _ int) {
	banned := m.banned
	for _, j := range maskRow {
		k := uint(uint32(j))
		banned[k>>6] |= 1 << (k & 63)
	}
	m.inserted = m.inserted[:0]
	m.maskRow = maskRow
}

// Insert accumulates Mul(a, b) into key unless the mask excludes it.
//
//mspgemm:hotpath
func (m *MaskedBitC[T, S]) Insert(key int32, a, b T) {
	k := uint(uint32(key))
	w := k >> 6
	bit := uint64(1) << (k & 63)
	banned := m.banned
	if banned[w]&bit != 0 {
		return // masked out: discard without computing the product
	}
	set := m.set[:len(banned)]
	values := m.values
	values[k] = m.sr.Add(values[k], m.sr.Mul(a, b))
	if set[w]&bit == 0 {
		set[w] |= bit
		m.inserted = append(m.inserted, key)
	}
}

// Gather sorts the inserted keys, emits them, and restores all touched
// state — emitted values back to the semiring zero, set words, and the
// banned words marked in BeginSized — so the accumulator is clean for
// the next row.
func (m *MaskedBitC[T, S]) Gather(outIdx []int32, outVal []T) int {
	sort.Sort(int32Slice(m.inserted))
	zero := m.sr.Zero()
	values, set := m.values, m.set
	n := 0
	for _, j := range m.inserted {
		k := uint(uint32(j))
		outIdx[n] = j
		outVal[n] = values[k]
		values[k] = zero
		set[k>>6] = 0
		n++
	}
	m.inserted = m.inserted[:0]
	m.clearBanned()
	return n
}

// clearBanned zeroes the banned words covering the saved mask row and
// drops the row reference.
//
//mspgemm:hotpath
func (m *MaskedBitC[T, S]) clearBanned() {
	banned := m.banned
	last := ^uint(0)
	for _, j := range m.maskRow {
		w := uint(uint32(j)) >> 6
		if w == last {
			continue
		}
		last = w
		banned[w] = 0
	}
	m.maskRow = nil
}

// BeginSymbolicSized prepares a pattern-only row.
func (m *MaskedBitC[T, S]) BeginSymbolicSized(maskRow []int32, bound int) {
	m.BeginSized(maskRow, bound)
}

// InsertPattern marks key set unless excluded, without touching values.
//
//mspgemm:hotpath
func (m *MaskedBitC[T, S]) InsertPattern(key int32) {
	k := uint(uint32(key))
	w := k >> 6
	bit := uint64(1) << (k & 63)
	banned := m.banned
	if banned[w]&bit != 0 {
		return
	}
	set := m.set[:len(banned)]
	if set[w]&bit == 0 {
		set[w] |= bit
		m.inserted = append(m.inserted, key)
	}
}

// EndSymbolic counts inserted keys and resets all touched state.
//
//mspgemm:hotpath
func (m *MaskedBitC[T, S]) EndSymbolic() int {
	n := len(m.inserted)
	for _, j := range m.inserted {
		m.set[uint(uint32(j))>>6] = 0
	}
	m.inserted = m.inserted[:0]
	m.clearBanned()
	return n
}
