package semiring

import (
	"math"
	"testing"
	"testing/quick"
)

// checkSemiringLaws verifies additive identity, commutativity of Add,
// and associativity of Add on float64 semirings.
func checkSemiringLaws(t *testing.T, name string, s Semiring[float64], eq func(a, b float64) bool) {
	t.Helper()
	f := func(x, y, z float64) bool {
		if !eq(s.Add(x, s.Zero()), x) {
			return false
		}
		if !eq(s.Add(x, y), s.Add(y, x)) {
			return false
		}
		return eq(s.Add(s.Add(x, y), z), s.Add(x, s.Add(y, z)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func approxEq(a, b float64) bool {
	if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1)) {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSemiringLaws(t *testing.T) {
	checkSemiringLaws(t, "PlusTimes", PlusTimes[float64]{}, approxEq)
	checkSemiringLaws(t, "PlusPair", PlusPair[float64]{}, approxEq)
	checkSemiringLaws(t, "PlusFirst", PlusFirst[float64]{}, approxEq)
	checkSemiringLaws(t, "PlusSecond", PlusSecond[float64]{}, approxEq)
	checkSemiringLaws(t, "MinPlus", MinPlusF64{}, func(a, b float64) bool { return a == b || approxEq(a, b) })
	checkSemiringLaws(t, "MaxPlus", MaxPlusF64{}, func(a, b float64) bool { return a == b || approxEq(a, b) })
	checkSemiringLaws(t, "MinMax", MinMaxF64{}, func(a, b float64) bool { return a == b || approxEq(a, b) })
}

func TestPlusTimesInt(t *testing.T) {
	s := PlusTimes[int64]{}
	if s.Add(2, 3) != 5 || s.Mul(2, 3) != 6 || s.Zero() != 0 {
		t.Error("PlusTimes[int64] arithmetic wrong")
	}
}

func TestPlusPairIgnoresOperands(t *testing.T) {
	s := PlusPair[int32]{}
	if s.Mul(17, -5) != 1 || s.Mul(0, 0) != 1 {
		t.Error("PlusPair.Mul must always return 1")
	}
	if s.Add(3, 4) != 7 {
		t.Error("PlusPair.Add wrong")
	}
}

func TestPlusFirstSecond(t *testing.T) {
	if (PlusFirst[float64]{}).Mul(3, 9) != 3 {
		t.Error("PlusFirst.Mul should return left operand")
	}
	if (PlusSecond[float64]{}).Mul(3, 9) != 9 {
		t.Error("PlusSecond.Mul should return right operand")
	}
}

func TestTropical(t *testing.T) {
	mp := MinPlusF64{}
	if mp.Add(3, 5) != 3 || mp.Mul(3, 5) != 8 || !math.IsInf(mp.Zero(), 1) {
		t.Error("MinPlus wrong")
	}
	if mp.Add(7, mp.Zero()) != 7 {
		t.Error("MinPlus identity wrong")
	}
	xp := MaxPlusF64{}
	if xp.Add(3, 5) != 5 || xp.Mul(3, 5) != 8 || !math.IsInf(xp.Zero(), -1) {
		t.Error("MaxPlus wrong")
	}
	mm := MinMaxF64{}
	if mm.Add(3, 5) != 3 || mm.Mul(3, 5) != 5 {
		t.Error("MinMax wrong")
	}
}

func TestBoolean(t *testing.T) {
	b := Boolean{}
	if !b.Add(true, false) || b.Add(false, false) || b.Zero() {
		t.Error("Boolean.Add/Zero wrong")
	}
	if b.Mul(true, false) || !b.Mul(true, true) {
		t.Error("Boolean.Mul wrong")
	}
}
