// Package semiring defines the algebraic structures masked SpGEMM
// operates over. GraphBLAS generalizes matrix multiplication to an
// arbitrary semiring (add, mul, additive identity); the paper's
// benchmark applications each pick a different one: arithmetic for the
// Fig-7 density sweeps, plus-pair for triangle counting and k-truss
// support, plus-times for the betweenness-centrality path counts (§2,
// §8).
//
// Semirings are zero-size structs implementing a tiny generic interface,
// so kernels instantiated with a concrete semiring monomorphize and the
// Add/Mul calls inline — there is no interface dispatch in the hot loops.
package semiring

import "math"

// Semiring is the algebra a masked product is computed over. Zero is the
// additive identity; implementations must satisfy Add(x, Zero()) == x.
// Masked SpGEMM never relies on a multiplicative identity.
type Semiring[T any] interface {
	// Add combines two partial products destined for the same output
	// coordinate.
	Add(x, y T) T
	// Mul forms the partial product of a left entry A(i,k) and a right
	// entry B(k,j).
	Mul(x, y T) T
	// Zero returns the additive identity.
	Zero() T
}

// Integer constrains to the built-in integer types.
type Integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// Float constrains to the built-in floating-point types.
type Float interface {
	~float32 | ~float64
}

// Number constrains to the numeric types the arithmetic semirings accept.
type Number interface {
	Integer | Float
}

// PlusTimes is the familiar arithmetic semiring (+, ×, 0).
type PlusTimes[T Number] struct{}

// Add returns x + y.
func (PlusTimes[T]) Add(x, y T) T { return x + y }

// Mul returns x × y.
func (PlusTimes[T]) Mul(x, y T) T { return x * y }

// Zero returns 0.
func (PlusTimes[T]) Zero() T { var z T; return z }

// PlusPair is the (+, pair, 0) semiring: every multiplication yields 1,
// so the product counts contributing (i,k,j) triples. C = L ⊙ (L·L) over
// PlusPair gives per-edge triangle/support counts (§8.2–8.3).
type PlusPair[T Number] struct{}

// Add returns x + y.
func (PlusPair[T]) Add(x, y T) T { return x + y }

// Mul returns 1 regardless of its operands.
func (PlusPair[T]) Mul(x, y T) T { return 1 }

// Zero returns 0.
func (PlusPair[T]) Zero() T { var z T; return z }

// PlusFirst is (+, first, 0): Mul returns its left operand. Useful when
// B is a pattern holding no meaningful values.
type PlusFirst[T Number] struct{}

// Add returns x + y.
func (PlusFirst[T]) Add(x, y T) T { return x + y }

// Mul returns x.
func (PlusFirst[T]) Mul(x, _ T) T { return x }

// Zero returns 0.
func (PlusFirst[T]) Zero() T { var z T; return z }

// PlusSecond is (+, second, 0): Mul returns its right operand.
type PlusSecond[T Number] struct{}

// Add returns x + y.
func (PlusSecond[T]) Add(x, y T) T { return x + y }

// Mul returns y.
func (PlusSecond[T]) Mul(_, y T) T { return y }

// Zero returns 0.
func (PlusSecond[T]) Zero() T { var z T; return z }

// MinPlusF64 is the float64 tropical semiring (min, +, +inf); masked
// products over it compute constrained one-hop shortest-path
// relaxations.
type MinPlusF64 struct{}

// Add returns min(x, y).
func (MinPlusF64) Add(x, y float64) float64 {
	if x < y {
		return x
	}
	return y
}

// Mul returns x + y.
func (MinPlusF64) Mul(x, y float64) float64 { return x + y }

// Zero returns +inf.
func (MinPlusF64) Zero() float64 { return math.Inf(1) }

// MaxPlusF64 is the (max, +, -inf) semiring.
type MaxPlusF64 struct{}

// Add returns max(x, y).
func (MaxPlusF64) Add(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}

// Mul returns x + y.
func (MaxPlusF64) Mul(x, y float64) float64 { return x + y }

// Zero returns -inf.
func (MaxPlusF64) Zero() float64 { return math.Inf(-1) }

// MinMaxF64 is the (min, max, +inf) semiring, the bottleneck-path
// algebra.
type MinMaxF64 struct{}

// Add returns min(x, y).
func (MinMaxF64) Add(x, y float64) float64 {
	if x < y {
		return x
	}
	return y
}

// Mul returns max(x, y).
func (MinMaxF64) Mul(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}

// Zero returns +inf.
func (MinMaxF64) Zero() float64 { return math.Inf(1) }

// Boolean is the (∨, ∧, false) semiring over bool; masked products over
// it compute reachability one hop at a time.
type Boolean struct{}

// Add returns x ∨ y.
func (Boolean) Add(x, y bool) bool { return x || y }

// Mul returns x ∧ y.
func (Boolean) Mul(x, y bool) bool { return x && y }

// Zero returns false.
func (Boolean) Zero() bool { return false }
