// Package faultinject is the deterministic fault-injection seam behind
// the chaos suite (DESIGN.md §15). Production code loads the armed
// hook set once per execution via Active — a single atomic pointer
// load that returns nil unless a test armed something — and calls the
// nil-safe hook methods at its fault sites:
//
//   - Row fires inside a pass's row loop (panic-on-row-N);
//   - AtPass fires at pass entry checkpoints (delay-at-pass,
//     cancel-at-checkpoint).
//
// Hooks are process-wide (one atomic slot, not per-execution) because
// the chaos tests drive whole requests through the public stack and
// need the fault to land inside whatever execution the request
// triggers. Tests must therefore arm/disarm around their own traffic
// and not run in parallel with other multiply-issuing tests.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"

	"maskedspgemm/internal/parallel"
)

// Pass names one engine checkpoint site: the symbolic, numeric, or
// compaction pass of a kernel driver.
type Pass string

// The engine's three pass sites. A two-phase execution visits
// PassSymbolic then PassNumeric; a one-phase execution visits
// PassNumeric then PassCompact.
const (
	// PassSymbolic is the two-phase size-counting pass.
	PassSymbolic Pass = "symbolic"
	// PassNumeric is the value-producing pass of either phase mode.
	PassNumeric Pass = "numeric"
	// PassCompact is the one-phase gather that squeezes over-allocated
	// row slabs into the final CSR.
	PassCompact Pass = "compact"
)

// Hooks describes the faults to inject. The zero value injects
// nothing; each site is armed independently.
//
//mspgemm:nilsafe
type Hooks struct {
	// PanicArmed enables the row-panic site: the row loop panics when
	// it reaches row PanicRow of pass PanicPass.
	PanicArmed bool
	// PanicRow is the 0-based row index the armed panic fires at.
	PanicRow int
	// PanicPass restricts the row panic to one pass; empty means any
	// row pass (symbolic or numeric).
	PanicPass Pass
	// Delay, when positive, sleeps at the entry checkpoint of pass
	// DelayPass. The sleep is cancellation-aware: it polls the
	// execution's cancel token every millisecond and returns early
	// once latched, so a delayed pass models a long-running kernel
	// that still honors cooperative cancellation.
	Delay time.Duration
	// DelayPass selects the checkpoint the delay fires at.
	DelayPass Pass
	// CancelPass, when non-empty, latches the execution's cancel token
	// at the entry checkpoint of the named pass — the deterministic
	// cancel-at-checkpoint fault.
	CancelPass Pass
}

// armed is the process-wide hook slot. Production reads it once per
// execution; only tests write it.
var armed atomic.Pointer[Hooks]

// Arm installs h process-wide until Disarm. The Hooks value is copied,
// so the caller may reuse h afterwards.
func Arm(h Hooks) { armed.Store(&h) }

// Disarm clears the armed hooks; pair every Arm with a deferred or
// t.Cleanup'd Disarm.
func Disarm() { armed.Store(nil) }

// Active returns the armed hooks, or nil when none are armed. Callers
// load once per execution and hold the pointer, so an execution sees
// one consistent hook set even if a test re-arms mid-flight.
func Active() *Hooks { return armed.Load() }

// Row is the row-granularity fault site: panics if the armed hooks
// call for a panic at row i of pass p. Nil-safe; the armed==nil fast
// path is one pointer comparison.
func (h *Hooks) Row(p Pass, i int) {
	if h == nil || !h.PanicArmed {
		return
	}
	if i == h.PanicRow && (h.PanicPass == "" || h.PanicPass == p) {
		panic(fmt.Sprintf("faultinject: injected panic at %s row %d", p, i))
	}
}

// AtPass is the pass-granularity fault site, called at pass entry
// checkpoints: applies the armed delay (interruptible by cancel) and
// then the armed cancel-at-checkpoint latch. Nil-safe on both
// receiver and token.
func (h *Hooks) AtPass(p Pass, cancel *parallel.CancelToken) {
	if h == nil {
		return
	}
	if h.DelayPass == p && h.Delay > 0 {
		deadline := time.Now().Add(h.Delay)
		for time.Now().Before(deadline) && !cancel.Canceled() {
			time.Sleep(time.Millisecond)
		}
	}
	if h.CancelPass == p && cancel != nil {
		cancel.Cancel()
	}
}
