package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/faultinject"
	"maskedspgemm/internal/serve/servetest"
)

// The HTTP half of the chaos suite (DESIGN.md §15): fault injection
// drives kernel panics, execution deadlines, and client disconnects
// through the full serving stack, and the tests assert the containment
// contract — the process survives, slot accounting stays exact, no
// goroutines leak, the pool refills, and the next request succeeds.
// All of it runs under -race in CI.

// chaosServeFamilies are the six accumulator families the tentpole
// requires end-to-end panic containment for.
var chaosServeFamilies = []core.Algorithm{
	core.AlgoMSA, core.AlgoHash, core.AlgoMCA, core.AlgoHeap, core.AlgoInner, core.AlgoMaskedBit,
}

// TestServeChaosPanicPerFamily injects a kernel panic into each
// family's numeric pass through the HTTP path: the request answers 500
// naming the containment, the server keeps serving (the same request
// succeeds once disarmed), /stats counts the panic and the discarded
// executor, and the rate-limited panic log sees exactly one full entry
// per family despite a retry.
func TestServeChaosPanicPerFamily(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	checkLeaks := servetest.AssertNoLeaks(t)
	srv := New(Config{MaxInFlight: 2})
	var logMu sync.Mutex
	var logged []string
	srv.panics.logf = func(format string, args ...any) {
		logMu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	h := servetest.Start(t, srv)
	g := maskedspgemm.ErdosRenyi(96, 6, 60)
	body := servetest.EncodeSerial(t, g)

	var wantPanics uint64
	for _, algo := range chaosServeFamilies {
		url := "/v1/multiply?algorithm=" + strings.ToLower(algo.String())
		faultinject.Arm(faultinject.Hooks{PanicArmed: true, PanicRow: 3, PanicPass: faultinject.PassNumeric})
		// Two identical failing requests: both must answer 500, but the
		// second's stack is rate-limited out of the log.
		for rep := 0; rep < 2; rep++ {
			resp := h.Post(url, body, nil)
			if resp.Status != http.StatusInternalServerError {
				t.Fatalf("%v rep %d: status %d, want 500: %s", algo, rep, resp.Status, resp.Body)
			}
			if !strings.Contains(string(resp.Body), "kernel panic contained") {
				t.Fatalf("%v: body does not name the containment: %s", algo, resp.Body)
			}
			wantPanics++
		}
		faultinject.Disarm()
		if resp := h.Post(url, body, nil); resp.Status != http.StatusOK {
			t.Fatalf("%v after disarm: status %d, want 200: %s", algo, resp.Status, resp.Body)
		}
	}

	st := getStats(t, h)
	if got := st.Session.Faults.KernelPanics; got != wantPanics {
		t.Errorf("kernel_panics = %d, want %d", got, wantPanics)
	}
	if got := st.Session.Faults.ExecutorsDiscarded; got != wantPanics {
		t.Errorf("executors_discarded = %d, want %d", got, wantPanics)
	}
	if st.Session.Faults.ExecCanceled != 0 {
		t.Errorf("exec_canceled = %d, want 0", st.Session.Faults.ExecCanceled)
	}
	logMu.Lock()
	nLogged := len(logged)
	logMu.Unlock()
	// One full log entry per family: the repeat within the interval is
	// suppressed, and each logged entry carries a stack and the request
	// operand fingerprints.
	if nLogged != len(chaosServeFamilies) {
		t.Errorf("panic log entries = %d, want %d (repeats must be rate-limited)", nLogged, len(chaosServeFamilies))
	}
	for _, entry := range logged {
		if !strings.Contains(entry, "goroutine") || !strings.Contains(entry, "mask=") {
			t.Errorf("log entry lacks stack or request refs: %.120s", entry)
		}
	}
	h.Close()
	checkLeaks()
}

// TestServeExecDeadline pins X-Exec-Deadline-Ms: a numeric pass held
// long past the budget answers 503 quickly (not after the full delay),
// the cancellation is counted, the slot accounting returns to zero, and
// the server serves the next request.
func TestServeExecDeadline(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	checkLeaks := servetest.AssertNoLeaks(t)
	srv := New(Config{MaxInFlight: 1})
	h := servetest.Start(t, srv)
	g := maskedspgemm.ErdosRenyi(96, 6, 61)
	body := servetest.EncodeSerial(t, g)

	if resp := h.Post("/v1/multiply", body, map[string]string{"X-Exec-Deadline-Ms": "soon"}); resp.Status != http.StatusBadRequest {
		t.Fatalf("bad deadline header: status %d, want 400", resp.Status)
	}

	faultinject.Arm(faultinject.Hooks{Delay: 5 * time.Second, DelayPass: faultinject.PassNumeric})
	start := time.Now()
	resp := h.Post("/v1/multiply", body, map[string]string{"X-Exec-Deadline-Ms": "30"})
	elapsed := time.Since(start)
	if resp.Status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.Status, resp.Body)
	}
	if !strings.Contains(string(resp.Body), "execution deadline exceeded") {
		t.Fatalf("body does not name the deadline: %s", resp.Body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	// The injected delay is 5s; answering fast proves the deadline
	// stopped the pass mid-flight rather than waiting it out.
	if elapsed > 2*time.Second {
		t.Errorf("deadline took %v to fire, want well under the 5s injected delay", elapsed)
	}
	faultinject.Disarm()

	st := getStats(t, h)
	if st.Session.Faults.ExecCanceled == 0 {
		t.Error("exec_canceled not counted")
	}
	if st.Admission.InFlight != 0 {
		t.Errorf("in_flight = %d after deadline, want 0", st.Admission.InFlight)
	}
	if resp := h.Post("/v1/multiply", body, nil); resp.Status != http.StatusOK {
		t.Fatalf("after deadline: status %d, want 200: %s", resp.Status, resp.Body)
	}
	h.Close()
	checkLeaks()
}

// TestServeDisconnectFreesSlot is the raw-socket disconnect pin: with
// one execution slot and a numeric pass held open by fault injection, a
// client that uploads a full request and drops the connection must have
// its execution canceled and its slot freed almost immediately — not
// held for the rest of the pass — so the next client gets served.
func TestServeDisconnectFreesSlot(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	checkLeaks := servetest.AssertNoLeaks(t)
	srv := New(Config{MaxInFlight: 1})
	h := servetest.Start(t, srv)
	g := maskedspgemm.ErdosRenyi(96, 6, 62)
	body := servetest.EncodeSerial(t, g)

	// Hold the numeric pass far longer than the test will wait: only
	// cancellation can free the slot in time.
	faultinject.Arm(faultinject.Hooks{Delay: 30 * time.Second, DelayPass: faultinject.PassNumeric})

	conn := h.Dial()
	req := fmt.Sprintf("POST /v1/multiply HTTP/1.1\r\nHost: servetest\r\nContent-Length: %d\r\n\r\n", len(body))
	if _, err := conn.Write(append([]byte(req), body...)); err != nil {
		t.Fatal(err)
	}
	servetest.WaitFor(t, func() bool { return srv.adm.stats().InFlight == 1 })

	// Drop the connection mid-execution and time how long the slot
	// stays held. The chain is: conn close → request context done →
	// cancel token latch → the delay hook's 1ms poll observes it →
	// CanceledError → release. Nominal single-digit milliseconds; the
	// bound leaves slack for race-instrumented CI.
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	servetest.WaitFor(t, func() bool { return srv.adm.stats().InFlight == 0 })
	if freed := time.Since(start); freed > time.Second {
		t.Errorf("slot held %v after disconnect, want near-immediate release", freed)
	}
	faultinject.Disarm()

	st := getStats(t, h)
	if st.Session.Faults.ExecCanceled != 1 {
		t.Errorf("exec_canceled = %d, want 1", st.Session.Faults.ExecCanceled)
	}
	if st.Session.Faults.ExecutorsDiscarded != 1 {
		t.Errorf("executors_discarded = %d, want 1", st.Session.Faults.ExecutorsDiscarded)
	}
	// The freed slot must actually serve: the follow-up request runs on
	// a fresh executor while the fault is disarmed.
	if resp := h.Post("/v1/multiply", body, nil); resp.Status != http.StatusOK {
		t.Fatalf("after disconnect: status %d, want 200: %s", resp.Status, resp.Body)
	}
	h.Close()
	checkLeaks()
}

// TestServeOperandsNoLeaks extends the goroutine-leak check to the
// upload endpoint: a mix of successful, idempotent, and failing PUTs
// must leave no goroutine behind once the listener closes.
func TestServeOperandsNoLeaks(t *testing.T) {
	checkLeaks := servetest.AssertNoLeaks(t)
	srv := New(Config{MaxInFlight: 2})
	h := servetest.Start(t, srv)
	g := maskedspgemm.ErdosRenyi(64, 4, 63)
	body := servetest.EncodeSerial(t, g)
	for i := 0; i < 3; i++ {
		if resp := h.Put("/v1/operands", body, nil); resp.Status != http.StatusOK {
			t.Fatalf("upload %d: status %d: %s", i, resp.Status, resp.Body)
		}
	}
	if resp := h.Put("/v1/operands", []byte("not a matrix"), nil); resp.Status != http.StatusBadRequest {
		t.Fatalf("bad upload: status %d, want 400", resp.Status)
	}
	h.Close()
	checkLeaks()
}

// TestServeWarmNoLeaks extends the goroutine-leak check to /v1/warm:
// successful and failing warms leave no goroutine behind.
func TestServeWarmNoLeaks(t *testing.T) {
	checkLeaks := servetest.AssertNoLeaks(t)
	srv := New(Config{MaxInFlight: 2})
	h := servetest.Start(t, srv)
	g := maskedspgemm.ErdosRenyi(64, 4, 64)
	body := servetest.EncodeSerial(t, g)
	for i := 0; i < 3; i++ {
		if resp := h.Post("/v1/warm", body, nil); resp.Status != http.StatusOK {
			t.Fatalf("warm %d: status %d: %s", i, resp.Status, resp.Body)
		}
	}
	if resp := h.Post("/v1/warm", []byte("not a matrix"), nil); resp.Status != http.StatusBadRequest {
		t.Fatalf("bad warm: status %d, want 400", resp.Status)
	}
	h.Close()
	checkLeaks()
}
