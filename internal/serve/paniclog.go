package serve

import (
	"fmt"
	"log"
	"sync"
	"time"

	maskedspgemm "maskedspgemm"
)

// panicLog rate-limits kernel-panic logging. A contained kernel panic
// is an operator-grade event — the full stack and the request's operand
// fingerprints belong in the log — but a client retrying the same
// poisoned request would otherwise emit the same stack once per retry.
// The log dedups by (family, panic value): the first occurrence logs in
// full, repeats within the interval are only counted, and the
// suppressed count rides on the next full entry so nothing disappears
// silently.
type panicLog struct {
	every time.Duration
	// logf is the output seam; tests swap it, production uses
	// log.Printf.
	logf func(format string, args ...any)

	mu         sync.Mutex
	last       map[string]time.Time
	suppressed map[string]uint64
}

// newPanicLog builds a logger deduping repeats within every (<= 0
// means one minute).
func newPanicLog(every time.Duration, logf func(string, ...any)) *panicLog {
	if every <= 0 {
		every = time.Minute
	}
	if logf == nil {
		logf = log.Printf
	}
	return &panicLog{
		every:      every,
		logf:       logf,
		last:       make(map[string]time.Time),
		suppressed: make(map[string]uint64),
	}
}

// observe logs one recovered kernel panic, or counts it when the same
// (family, value) was logged within the interval. refs carries the
// request's operand fingerprints so the offending inputs can be
// replayed from the operand store.
func (l *panicLog) observe(kp *maskedspgemm.KernelPanicError, refs string) {
	key := fmt.Sprintf("%s|%v", kp.Family, kp.Value)
	now := time.Now()
	l.mu.Lock()
	if t, ok := l.last[key]; ok && now.Sub(t) < l.every {
		l.suppressed[key]++
		l.mu.Unlock()
		return
	}
	l.last[key] = now
	n := l.suppressed[key]
	l.suppressed[key] = 0
	l.mu.Unlock()
	suffix := ""
	if n > 0 {
		suffix = fmt.Sprintf(" (%d repeats suppressed)", n)
	}
	l.logf("serve: kernel panic contained in %s (worker %d), request %s%s: %v\n%s",
		kp.Family, kp.Worker, refs, suffix, kp.Value, kp.Stack)
}
