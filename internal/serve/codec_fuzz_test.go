package serve

import (
	"bytes"
	"mime/multipart"
	"net/http"
	"testing"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/serve/servetest"
)

// fuzzSeeds are the corpus of body prefixes the sniffing codec must
// survive: both wire-format magics (whole and truncated), near-misses,
// and plain junk. Valid bodies are appended by the fuzz targets.
func fuzzSeeds() [][]byte {
	return [][]byte{
		[]byte("MSPG"),
		[]byte("MSPG\x01\x00\x00\x00"),
		[]byte("MSP"),
		[]byte("MSPX full of garbage"),
		[]byte("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n2 2 2.0\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n"),
		[]byte("%% almost a banner"),
		[]byte("%"),
		[]byte("junk body"),
		{},
		{0x00, 0xff, 0x00, 0xff},
	}
}

// fuzzStatusOK reports whether a decode failure mapped to a status the
// codec contract allows: client errors only — a malformed body must
// never surface as a 5xx.
func fuzzStatusOK(status int) bool {
	switch status {
	case http.StatusBadRequest, http.StatusRequestTimeout, http.StatusRequestEntityTooLarge:
		return true
	}
	return false
}

// FuzzDecodeMatrix drives the sniffing single-matrix decoder with
// arbitrary prefixes: it must never panic, and every failure must map
// to a client-error status.
func FuzzDecodeMatrix(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Add(servetest.EncodeSerial(f, maskedspgemm.ErdosRenyi(16, 3, 1)))
	f.Add(servetest.EncodeMTX(f, maskedspgemm.ErdosRenyi(16, 3, 2)))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMatrix(bytes.NewReader(data))
		if err != nil {
			if status := operandStatus(err, nil); !fuzzStatusOK(status) {
				t.Fatalf("decode error mapped to status %d: %v", status, err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil matrix without an error")
		}
	})
}

// FuzzDecodeOperands drives the full request decoder — content-type
// dispatch included, so the multipart path is in scope — with
// arbitrary bodies and content types. Same contract: no panic, client
// errors only.
func FuzzDecodeOperands(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add("", seed)
	}
	serialBody := servetest.EncodeSerial(f, maskedspgemm.ErdosRenyi(16, 3, 3))
	f.Add("application/x-mspgemm", serialBody)

	var mbody bytes.Buffer
	mw := multipart.NewWriter(&mbody)
	fw, err := mw.CreateFormField("a")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := fw.Write(serialBody); err != nil {
		f.Fatal(err)
	}
	mw.Close()
	f.Add(mw.FormDataContentType(), mbody.Bytes())
	f.Add(mw.FormDataContentType(), []byte("--not-the-boundary\r\njunk"))
	f.Add("multipart/form-data", []byte("missing boundary parameter"))
	f.Add("multipart/form-data; boundary=x", []byte("--x\r\nContent-Disposition: form-data; name=\"q\"\r\n\r\nMSPG\r\n--x--\r\n"))

	f.Fuzz(func(t *testing.T, contentType string, data []byte) {
		req, err := http.NewRequest(http.MethodPost, "/v1/multiply", bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		ops, err := decodeOperands(req)
		if err != nil {
			if status := operandStatus(err, nil); !fuzzStatusOK(status) {
				t.Fatalf("decode error mapped to status %d: %v", status, err)
			}
			return
		}
		if ops.a == nil || ops.b == nil || ops.mask == nil {
			t.Fatalf("decoded operands with a hole: %+v", ops)
		}
	})
}

// FuzzDecodeUploads covers the PUT /v1/operands decoder the same way:
// any-name multipart parts and raw bodies, never a panic, client
// errors only.
func FuzzDecodeUploads(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add("", seed)
	}
	f.Add("", servetest.EncodeMTX(f, maskedspgemm.ErdosRenyi(16, 3, 4)))
	f.Fuzz(func(t *testing.T, contentType string, data []byte) {
		req, err := http.NewRequest(http.MethodPut, "/v1/operands", bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		ups, err := decodeUploads(req)
		if err != nil {
			if status := operandStatus(err, nil); !fuzzStatusOK(status) {
				t.Fatalf("decode error mapped to status %d: %v", status, err)
			}
			return
		}
		for _, up := range ups {
			if up.m == nil {
				t.Fatal("nil upload without an error")
			}
		}
	})
}

// TestDecodeMatrixTruncations replays every prefix of a valid body
// through the decoder — the systematic version of what fuzzing samples:
// truncation at any byte is a clean client error, not a panic and not
// a phantom success.
func TestDecodeMatrixTruncations(t *testing.T) {
	for name, body := range map[string][]byte{
		"serial": servetest.EncodeSerial(t, maskedspgemm.ErdosRenyi(24, 4, 5)),
		"mtx":    servetest.EncodeMTX(t, maskedspgemm.ErdosRenyi(24, 4, 5)),
	} {
		for cut := 0; cut < len(body); cut++ {
			m, err := decodeMatrix(bytes.NewReader(body[:cut]))
			if err == nil {
				// Matrix Market tolerates a truncated final line only when
				// the entry count still matches; anything the decoder
				// accepts must at least be a well-formed matrix.
				if m == nil {
					t.Fatalf("%s cut at %d: nil matrix without error", name, cut)
				}
				continue
			}
			if status := operandStatus(err, nil); !fuzzStatusOK(status) {
				t.Fatalf("%s cut at %d: status %d: %v", name, cut, status, err)
			}
		}
	}
}

// TestDecodeMatrixOversizedHeader pins the decoder against a header
// that promises absurd sizes: the serial reader must refuse declared
// dimensions it cannot hold rather than attempt the allocation.
func TestDecodeMatrixOversizedHeader(t *testing.T) {
	// MSPG | version 1 | rows 2^60 | cols 2^60 | nnz 2^60.
	body := []byte("MSPG\x01\x00\x00\x00")
	huge := bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 0, 0x10}, 3)
	body = append(body, huge...)
	m, err := decodeMatrix(bytes.NewReader(body))
	if err == nil {
		t.Fatalf("oversized header decoded into %v", m)
	}
	if status := operandStatus(err, nil); status != http.StatusBadRequest {
		t.Fatalf("oversized header: status %d, want 400", status)
	}
}
