// Package servetest is the reusable harness behind the serve-layer
// tests: an in-process HTTP server with cleanup wired to the test, a
// tiny request client, matrix wire-format encoders, a dependency-free
// JSON path navigator (the in-test replacement for jq), and a
// raw-socket client that counts request bytes on the wire — the
// measurement tool behind the reference-form transfer-size pin.
//
// The harness takes an http.Handler, not a serve.Server: it must not
// import the package under test (serve's own internal tests import
// this package, and a cycle would follow), and staying
// handler-agnostic keeps it usable for any front-end the repo grows.
package servetest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/serial"
)

// Server wraps an in-process httptest server around a handler. Start
// registers shutdown with t.Cleanup; tests that need to observe the
// post-close state (goroutine counts) may call Close early.
type Server struct {
	t  testing.TB
	ts *httptest.Server

	// URL is the server's base URL ("http://127.0.0.1:port").
	URL string
	// Client is the server's HTTP client; tests may adjust its Timeout.
	Client *http.Client
}

// Start serves h on a loopback listener for the duration of the test.
func Start(t testing.TB, h http.Handler) *Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return &Server{t: t, ts: ts, URL: ts.URL, Client: ts.Client()}
}

// Close shuts the listener down now (httptest makes a later cleanup
// Close a no-op). For tests that assert on the post-close state.
func (s *Server) Close() { s.ts.Close() }

// Addr is the listener's host:port, for tests that speak raw TCP.
func (s *Server) Addr() string { return s.ts.Listener.Addr().String() }

// Dial opens a raw TCP connection to the server, closed with the test.
func (s *Server) Dial() net.Conn {
	s.t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		s.t.Fatal(err)
	}
	s.t.Cleanup(func() { conn.Close() })
	return conn
}

// Response is one exchange's outcome, body fully read.
type Response struct {
	// Status is the response status code.
	Status int
	// Header holds the response headers.
	Header http.Header
	// Body is the full response body.
	Body []byte
}

// JSON parses the body and returns the path navigator.
func (r Response) JSON(t testing.TB) *Doc {
	t.Helper()
	var v any
	if err := json.Unmarshal(r.Body, &v); err != nil {
		t.Fatalf("servetest: response is not JSON: %v\n%s", err, r.Body)
	}
	return &Doc{t: t, root: v}
}

// Do issues one request with an optional header map and returns the
// drained response. Transport failures fail the test.
func (s *Server) Do(method, path string, body []byte, hdr map[string]string) Response {
	s.t.Helper()
	req, err := http.NewRequest(method, s.URL+path, bytes.NewReader(body))
	if err != nil {
		s.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := s.Client.Do(req)
	if err != nil {
		s.t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		s.t.Fatal(err)
	}
	return Response{Status: resp.StatusCode, Header: resp.Header, Body: data}
}

// Post issues a POST.
func (s *Server) Post(path string, body []byte, hdr map[string]string) Response {
	s.t.Helper()
	return s.Do(http.MethodPost, path, body, hdr)
}

// Put issues a PUT.
func (s *Server) Put(path string, body []byte, hdr map[string]string) Response {
	s.t.Helper()
	return s.Do(http.MethodPut, path, body, hdr)
}

// Get issues a GET.
func (s *Server) Get(path string) Response {
	s.t.Helper()
	return s.Do(http.MethodGet, path, nil, nil)
}

// RawRequest hand-serializes one HTTP/1.1 request, writes it over a
// fresh TCP connection, and returns the exact number of request bytes
// that crossed the wire alongside the response — request-size ground
// truth no client library's hidden headers can distort.
func (s *Server) RawRequest(method, target string, hdr map[string]string, body []byte) (int, Response) {
	s.t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s HTTP/1.1\r\nHost: servetest\r\nContent-Length: %d\r\nConnection: close\r\n", method, target, len(body))
	for k, v := range hdr {
		fmt.Fprintf(&buf, "%s: %s\r\n", k, v)
	}
	buf.WriteString("\r\n")
	buf.Write(body)
	wire := buf.Len()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		s.t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		s.t.Fatal(err)
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		s.t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		s.t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		s.t.Fatal(err)
	}
	return wire, Response{Status: resp.StatusCode, Header: resp.Header, Body: data}
}

// EncodeSerial renders a matrix in the MSPG wire format.
func EncodeSerial(t testing.TB, m *maskedspgemm.Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := serial.Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// EncodeMTX renders a matrix in Matrix Market format.
func EncodeMTX(t testing.TB, m *maskedspgemm.Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mtx.Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Part is one named piece of a multipart request body.
type Part struct {
	// Name is the form-field name ("mask", "a", "b").
	Name string
	// Data is the part's payload.
	Data []byte
}

// Multipart assembles a multipart/form-data body from parts, returning
// the body and its Content-Type header value.
func Multipart(t testing.TB, parts ...Part) ([]byte, string) {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for _, p := range parts {
		fw, err := mw.CreateFormField(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(p.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return body.Bytes(), mw.FormDataContentType()
}

// AssertNoLeaks snapshots the goroutine count now and returns a check
// to run once the traffic under test is done (typically after closing
// the listener): it waits out stragglers and fails the test if the
// count does not settle back to the baseline, within a small slack for
// runtime-owned goroutines. Take the snapshot before starting the
// server so its own goroutines count as potential leaks too.
func AssertNoLeaks(t testing.TB) func() {
	t.Helper()
	baseline := runtime.NumGoroutine()
	return func() {
		t.Helper()
		WaitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+2 })
	}
}

// WaitFor polls cond until it holds or two seconds pass.
func WaitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("servetest: condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// Doc navigates parsed JSON by dotted path — "session.cache.hits",
// "operands.0.ref" — the jq of the test suite. Lookups that miss fail
// the test with the path that broke.
type Doc struct {
	t    testing.TB
	root any
}

// at walks the dotted path: map keys by name, array elements by index.
func (d *Doc) at(path string) (any, bool) {
	v := d.root
	if path == "" {
		return v, true
	}
	for _, seg := range strings.Split(path, ".") {
		switch node := v.(type) {
		case map[string]any:
			var ok bool
			if v, ok = node[seg]; !ok {
				return nil, false
			}
		case []any:
			i, err := strconv.Atoi(seg)
			if err != nil || i < 0 || i >= len(node) {
				return nil, false
			}
			v = node[i]
		default:
			return nil, false
		}
	}
	return v, true
}

// get resolves the path or fails the test.
func (d *Doc) get(path string) any {
	d.t.Helper()
	v, ok := d.at(path)
	if !ok {
		d.t.Fatalf("servetest: JSON path %q not found", path)
	}
	return v
}

// Has reports whether the path resolves.
func (d *Doc) Has(path string) bool {
	_, ok := d.at(path)
	return ok
}

// Num returns the number at path.
func (d *Doc) Num(path string) float64 {
	d.t.Helper()
	n, ok := d.get(path).(float64)
	if !ok {
		d.t.Fatalf("servetest: JSON path %q is not a number", path)
	}
	return n
}

// Int returns the number at path as an int64.
func (d *Doc) Int(path string) int64 {
	d.t.Helper()
	return int64(d.Num(path))
}

// Str returns the string at path.
func (d *Doc) Str(path string) string {
	d.t.Helper()
	s, ok := d.get(path).(string)
	if !ok {
		d.t.Fatalf("servetest: JSON path %q is not a string", path)
	}
	return s
}

// Bool returns the boolean at path.
func (d *Doc) Bool(path string) bool {
	d.t.Helper()
	b, ok := d.get(path).(bool)
	if !ok {
		d.t.Fatalf("servetest: JSON path %q is not a boolean", path)
	}
	return b
}

// Len returns the length of the array at path.
func (d *Doc) Len(path string) int {
	d.t.Helper()
	a, ok := d.get(path).([]any)
	if !ok {
		d.t.Fatalf("servetest: JSON path %q is not an array", path)
	}
	return len(a)
}
