// Package serve is the network front-end over the Session serving
// facade: an HTTP server that accepts masked-product requests with
// operands on the wire, serves them through the session's
// structure-keyed plan cache and bounded executor pool, and — the
// point — applies admission control so saturation degrades predictably
// (bounded concurrency, bounded queueing, load shedding) instead of
// queueing unboundedly. See DESIGN.md §11.
//
// Endpoints:
//
//	POST /v1/multiply  — compute C = M ⊙ (A·B); operands in the body
//	                     (MSPG binary or Matrix Market, raw single
//	                     matrix or multipart mask/a/b parts) or named
//	                     by reference (?a=, ?b=, ?mask= fingerprints
//	                     of stored operands; dangling refs → 404
//	                     naming what's missing), options as query
//	                     parameters, result as MSPG binary, Matrix
//	                     Market, or a JSON summary. Inline operands
//	                     are stored through; the response's
//	                     X-Operand-* headers carry their refs.
//	PUT  /v1/operands  — upload operands once for later reference;
//	                     idempotent, content-addressed. With
//	                     ?values_for=<pattern-fp>, a values-only
//	                     delta re-keys fresh numbers under a
//	                     resident structure.
//	POST /v1/warm      — plan the operands' structure without
//	                     executing, pre-populating the plan cache.
//	GET  /stats        — JSON session + admission counters and the
//	                     recent plan-miss log.
//	GET  /healthz      — liveness; 503 once draining begins.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/serial"
)

// Config sizes a Server. The zero value is serviceable: every field
// has a default chosen to match the session's executor pool.
type Config struct {
	// MaxInFlight bounds concurrent multiplications (default
	// GOMAXPROCS, matching the executor pool's idle bound, so
	// steady-state traffic reuses pooled executors instead of growing
	// new ones).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot (default
	// 4×MaxInFlight). Requests beyond it are shed with 429.
	MaxQueue int
	// QueueTimeout is the default per-request queue deadline (default
	// 2s); requests may lower it via the X-Queue-Deadline-Ms header.
	QueueTimeout time.Duration
	// RetryAfter is the hint attached to 429/503 responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds a request body (default 1 GiB). Bodies over
	// the cap are rejected with 413.
	MaxBodyBytes int64
	// BodyReadTimeout bounds how long one request may spend uploading
	// its body (default 1 minute). Operands are decoded while the
	// request holds its execution slot — that keeps decode concurrency
	// bounded by MaxInFlight — so without this deadline a slow-trickling
	// client would hold a slot for the duration of its upload; with it,
	// the slot is reclaimed and the client gets 408.
	BodyReadTimeout time.Duration
	// PanicLogEvery rate-limits kernel-panic logging (default 1
	// minute): the first contained panic of a given family and panic
	// value logs its full stack and request fingerprints, repeats
	// within the interval are counted instead of logged.
	PanicLogEvery time.Duration
	// MaxWarmInFlight bounds concurrent /v1/warm requests (default 2).
	// Warming bypasses the execution semaphore — it only plans — but
	// planning distinct structures is real CPU work, so it gets its own
	// small bound; warms that cannot start within QueueTimeout are shed
	// with 429.
	MaxWarmInFlight int
	// SessionOptions configures the session the server constructs
	// (cache bounds, executor-pool bound). The server installs its own
	// miss observer in addition — observers compose, so a caller-
	// provided WithMissObserver still fires.
	SessionOptions []maskedspgemm.SessionOption
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = parallel.Threads(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.BodyReadTimeout <= 0 {
		c.BodyReadTimeout = time.Minute
	}
	if c.MaxWarmInFlight <= 0 {
		c.MaxWarmInFlight = 2
	}
	return c
}

// Server is the HTTP front-end. Construct with New, mount as an
// http.Handler, and call Drain before shutting the listener down.
type Server struct {
	cfg     Config
	session *maskedspgemm.Session
	adm     *admission
	misses  *missLog
	panics  *panicLog
	mux     *http.ServeMux

	// warmGate is the planning semaphore /v1/warm requests hold: one
	// token per permitted concurrent warm (MaxWarmInFlight).
	warmGate chan struct{}

	// execGate, when non-nil, is invoked while an admitted request
	// holds its execution slot — a test seam for observing (and
	// widening) the concurrency window.
	execGate func()
	// planGate, when non-nil, is invoked while a warm request holds its
	// warmGate token — the analogous seam for the planning window.
	planGate func()
}

// New builds a Server and its Session from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	misses := newMissLog(missLogDepth)
	// The pool bound default may be overridden by caller options; miss
	// observers compose, so the server's own rides alongside any the
	// caller installed.
	sopts := append([]maskedspgemm.SessionOption{
		maskedspgemm.WithMaxIdleExecutors(cfg.MaxInFlight),
	}, cfg.SessionOptions...)
	sopts = append(sopts, maskedspgemm.WithMissObserver(misses.observe))
	s := &Server{
		cfg:      cfg,
		session:  maskedspgemm.NewSession(sopts...),
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		misses:   misses,
		panics:   newPanicLog(cfg.PanicLogEvery, nil),
		warmGate: make(chan struct{}, cfg.MaxWarmInFlight),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/multiply", s.handleMultiply)
	s.mux.HandleFunc("/v1/operands", s.handleOperands)
	s.mux.HandleFunc("/v1/warm", s.handleWarm)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Session exposes the server's session (for warming at startup).
func (s *Server) Session() *maskedspgemm.Session { return s.session }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain moves the server to the draining state — new and queued
// multiply requests are rejected with 503 — and returns a channel that
// closes once the last in-flight multiplication finishes. Pair with
// http.Server.Shutdown: Drain first (stop accepting work), then
// Shutdown (wait out the connections).
func (s *Server) Drain() <-chan struct{} {
	return s.adm.beginDrain()
}

// handleMultiply is the serving path: admission first (shedding is
// cheap and happens before the body is read), then decode, then the
// session's cached plan + pooled executor do the work.
func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	opts, err := parseOptions(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	format, err := parseFormat(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The reference form is recognized (and rejected if malformed)
	// before the request queues for a slot: a bad ref is a cheap 400.
	refs, err := parseRefForm(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	execWait, err := execDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	wait, err := queueDeadline(r, s.cfg.QueueTimeout)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// release frees the execution slot at most once: explicitly the
	// moment the multiplication returns — response writing happens off
	// the slot, so a slow reader never holds back the admission queue —
	// with the deferred call as the backstop for every error path.
	var release func()
	switch s.adm.acquire(r.Context(), wait) {
	case admitted:
		release = sync.OnceFunc(s.adm.release)
		defer release()
	case admitShed:
		s.retryAfter(w)
		httpError(w, http.StatusTooManyRequests, "admission queue full; retry later")
		return
	case admitExpired:
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "queue deadline expired before an execution slot freed")
		return
	case admitDraining:
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case admitCanceled:
		// The client is gone; nothing useful to write.
		return
	}
	if s.execGate != nil {
		s.execGate()
	}
	// Execution runs under the request context — a client disconnect
	// cancels the kernels cooperatively mid-pass — tightened by the
	// X-Exec-Deadline-Ms budget when the client set one. The timeout
	// starts here, after admission: queueing time does not eat the
	// execution budget.
	ctx := r.Context()
	if execWait > 0 {
		var cancelCtx context.CancelFunc
		ctx, cancelCtx = context.WithTimeout(ctx, execWait)
		defer cancelCtx()
	}
	if refs != nil {
		// Reference form: no body to read — the operands are already
		// resident, the request cost is the envelope. A dangling ref is
		// a 404 that names every missing operand.
		out, err := s.session.MultiplyRefsCtx(ctx, refs.maskFP, refs.aRef, refs.bRef, opts...)
		release()
		if err != nil {
			s.writeExecError(w, r, err, refs.describe())
			return
		}
		s.writeResult(w, format, out)
		return
	}
	// The body is decoded while holding the slot — deliberately, so at
	// most MaxInFlight bodies are ever in memory at once — but under
	// BodyReadTimeout, so a slow-trickling upload surrenders the slot at
	// the deadline (408) instead of starving the queue.
	ops, status, err := s.readOperands(w, r)
	if err != nil {
		httpError(w, status, err.Error())
		return
	}
	// Inline operands are stored through on the way in, and the refs
	// they landed under ride back on X-Operand-* headers: the upload a
	// client just paid buys its next request the reference form.
	s.storeThrough(w, ops)
	out, err := s.session.MultiplyCtx(ctx, ops.mask, ops.a, ops.b, opts...)
	release()
	if err != nil {
		// The store-through headers double as the panic log's request
		// fingerprints: the offending operands are resident and named.
		h := w.Header()
		s.writeExecError(w, r, err, fmt.Sprintf("mask=%s a=%s b=%s",
			h.Get("X-Operand-Mask"), h.Get("X-Operand-A"), h.Get("X-Operand-B")))
		return
	}
	s.writeResult(w, format, out)
}

// writeExecError maps a failed multiplication to its response. A
// contained kernel panic is a 500 — the server stays up, the poisoned
// executor is already discarded — logged through the rate-limited
// panic log with refs naming the request's operands. A cooperative
// cancellation is a 503 when the server's execution deadline fired, and
// nothing at all when the client itself is gone. Dangling references
// keep their 404, everything else its 422.
func (s *Server) writeExecError(w http.ResponseWriter, r *http.Request, err error, refs string) {
	var kp *maskedspgemm.KernelPanicError
	var ce *maskedspgemm.CanceledError
	var missing *maskedspgemm.MissingOperandsError
	switch {
	case errors.As(err, &kp):
		s.panics.observe(kp, refs)
		httpError(w, http.StatusInternalServerError,
			fmt.Sprintf("kernel panic contained in %s; the request was aborted, the server is healthy", kp.Family))
	case errors.As(err, &ce):
		if r.Context().Err() != nil {
			// The client disconnected; the cancellation is its own doing
			// and there is nobody to answer.
			return
		}
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("execution deadline exceeded during %s pass", ce.Pass))
	case errors.As(err, &missing):
		writeMissing(w, missing)
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

// handleWarm plans without executing. Warming bypasses the execution
// semaphore — it touches only the plan cache, never the executor pool
// the semaphore protects — so a deploy can pre-plan its corpus while
// traffic is being served. But singleflight only coalesces *identical*
// structures, and planning a distinct structure is real analysis CPU,
// so warms hold their own small semaphore (MaxWarmInFlight): the
// bounded-concurrency guarantee covers the planner too, and a burst of
// distinct-structure warms queues up to QueueTimeout then sheds with
// 429. Warming still honors drain: planning into a cache that is about
// to be discarded only delays shutdown.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.adm.stats().Draining {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	opts, err := parseOptions(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.warmGate <- struct{}{}:
		defer func() { <-s.warmGate }()
	case <-timer.C:
		s.retryAfter(w)
		httpError(w, http.StatusTooManyRequests, "warm concurrency limit reached; retry later")
		return
	case <-s.adm.drainCh:
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case <-r.Context().Done():
		return
	}
	if s.planGate != nil {
		s.planGate()
	}
	// Re-check after winning the token: a warm that raced a free token
	// against the drain signal must not start planning (the same
	// post-select re-check admission.acquire does for multiplies).
	if s.adm.stats().Draining {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ops, status, err := s.readOperands(w, r)
	if err != nil {
		httpError(w, status, err.Error())
		return
	}
	if err := s.session.Warm(ops.mask, ops.a, ops.b, opts...); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, map[string]any{"warmed": true, "cache": s.session.Stats().Cache})
}

// statsResponse is the /stats payload.
type statsResponse struct {
	// Session carries the plan-cache, executor-pool, and scheduler
	// counters (SessionStats).
	Session sessionStatsJSON `json:"session"`
	// Admission carries the front door's counters.
	Admission AdmissionStats `json:"admission"`
	// RecentMisses is the tail of the plan-miss log, newest last — the
	// structures a warm-by-prediction loop would pre-plan.
	RecentMisses []missRecord `json:"recent_misses"`
}

// sessionStatsJSON mirrors maskedspgemm.SessionStats with stable
// lowercase JSON names for external consumers.
type sessionStatsJSON struct {
	// Cache is the plan-cache snapshot.
	Cache cacheStatsJSON `json:"cache"`
	// Store is the operand-store snapshot.
	Store storeStatsJSON `json:"store"`
	// Budget is the shared memory budget the cache and store draw from.
	Budget budgetStatsJSON `json:"budget"`
	// Pool is the executor-pool snapshot.
	Pool poolStatsJSON `json:"pool"`
	// Sched is the cumulative scheduler telemetry.
	Sched schedStatsJSON `json:"sched"`
	// Faults is the fault-containment block (DESIGN.md §15).
	Faults faultStatsJSON `json:"faults"`
	// Calibration is the cost-model calibration block (DESIGN.md §14).
	Calibration calibrationStatsJSON `json:"calibration"`
}

// storeStatsJSON is the wire form of StoreStats.
type storeStatsJSON struct {
	// Hits counts reference resolutions answered by a resident operand.
	Hits uint64 `json:"hits"`
	// Misses counts resolutions of absent content — the dangling refs.
	Misses uint64 `json:"misses"`
	// Puts counts uploads that created a resident operand.
	Puts uint64 `json:"puts"`
	// Reputs counts idempotent re-uploads of resident content.
	Reputs uint64 `json:"reputs"`
	// Evictions counts operands dropped under budget pressure.
	Evictions uint64 `json:"evictions"`
	// Operands is the current number of resident matrices.
	Operands int `json:"operands"`
	// Patterns is the current number of resident structures (shared
	// across value sets, so Patterns ≤ Operands).
	Patterns int `json:"patterns"`
	// Bytes is the store's share of the memory budget.
	Bytes int64 `json:"bytes"`
}

// storeStatsWire converts a StoreStats snapshot to its wire form.
func storeStatsWire(st maskedspgemm.StoreStats) storeStatsJSON {
	return storeStatsJSON{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Puts:      st.Puts,
		Reputs:    st.Reputs,
		Evictions: st.Evictions,
		Operands:  st.Operands,
		Patterns:  st.Patterns,
		Bytes:     st.Bytes,
	}
}

// budgetStatsJSON is the wire form of BudgetStats.
type budgetStatsJSON struct {
	// UsedBytes is the budget's current charge (plan cache + store).
	UsedBytes int64 `json:"used_bytes"`
	// MaxBytes is the configured ceiling.
	MaxBytes int64 `json:"max_bytes"`
}

// cacheStatsJSON is the wire form of CacheStats.
type cacheStatsJSON struct {
	// Hits counts lookups answered from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that planned (or waited on planning).
	Misses uint64 `json:"misses"`
	// CoalescedMisses counts misses absorbed by singleflight.
	CoalescedMisses uint64 `json:"coalesced_misses"`
	// Evictions counts entries dropped by the cache bounds.
	Evictions uint64 `json:"evictions"`
	// Entries is the current number of cached plans.
	Entries int `json:"entries"`
	// Bytes is the estimated retained analysis memory.
	Bytes int64 `json:"bytes"`
	// HybridFamilyRows sums per-family bound row counts across the
	// cached hybrid plans, keyed by family name ("MSA", "MaskedBit",
	// ...); omitted when no cached plan carries a per-row binding.
	HybridFamilyRows map[string]int64 `json:"hybrid_family_rows,omitempty"`
}

// poolStatsJSON is the wire form of PoolStats.
type poolStatsJSON struct {
	// Created counts executors constructed on an empty pool.
	Created uint64 `json:"created"`
	// Reused counts checkouts served by an idle executor.
	Reused uint64 `json:"reused"`
	// Discarded counts returns dropped at the idle bound.
	Discarded uint64 `json:"discarded"`
	// Idle is the current number of retained executors.
	Idle int `json:"idle"`
}

// faultStatsJSON is the wire form of FaultStats: the counters an
// operator alerts on — a rising kernel_panics means a kernel bug is
// being contained, not absent.
type faultStatsJSON struct {
	// ExecCanceled counts executions stopped cooperatively (client
	// disconnect or X-Exec-Deadline-Ms).
	ExecCanceled uint64 `json:"exec_canceled"`
	// KernelPanics counts panics recovered inside parallel kernels.
	KernelPanics uint64 `json:"kernel_panics"`
	// ExecutorsDiscarded counts executors poisoned by either and
	// dropped un-pooled.
	ExecutorsDiscarded uint64 `json:"executors_discarded"`
}

// schedStatsJSON is the wire form of SchedSummary.
type schedStatsJSON struct {
	// Passes counts executions that recorded telemetry.
	Passes uint64 `json:"passes"`
	// BusyNanos is total worker busy time across recorded passes.
	BusyNanos int64 `json:"busy_nanos"`
	// BlocksClaimed counts scheduler blocks claimed normally.
	BlocksClaimed uint64 `json:"blocks_claimed"`
	// BlocksStolen counts blocks obtained by work stealing.
	BlocksStolen uint64 `json:"blocks_stolen"`
	// WorstImbalance is the worst per-pass busy-time imbalance.
	WorstImbalance float64 `json:"worst_imbalance"`
}

// calibrationStatsJSON is the wire form of CalibrationStats.
type calibrationStatsJSON struct {
	// Mode is the configured calibration mode: off, startup, online.
	Mode string `json:"mode"`
	// Coefficients maps family name → fitted cost coefficient (MSA is
	// the 1.0 anchor); omitted when uncalibrated.
	Coefficients map[string]float64 `json:"coefficients,omitempty"`
	// FitNanos is the startup fit's wall time; zero when no fit ran.
	FitNanos int64 `json:"fit_nanos"`
	// Replans counts background plan re-binds since server start.
	Replans uint64 `json:"replans"`
	// Drift lists per-plan feedback records, worst-EWMA plans included.
	Drift []planDriftJSON `json:"drift,omitempty"`
}

// planDriftJSON is the wire form of one core.PlanDrift record.
type planDriftJSON struct {
	// Scheme is the plan's scheme name ("MSA-2P" style).
	Scheme string `json:"scheme"`
	// Rows is the plan's mask row count.
	Rows int `json:"rows"`
	// Schedule is the plan's current resolved schedule.
	Schedule string `json:"schedule"`
	// EwmaImbalance is the plan's measured-imbalance EWMA.
	EwmaImbalance float64 `json:"ewma_imbalance"`
	// EwmaWallNanos is the plan's measured wall-time EWMA.
	EwmaWallNanos int64 `json:"ewma_wall_nanos"`
	// Samples counts the observations folded into the EWMAs since the
	// last re-bind.
	Samples uint64 `json:"samples"`
	// Replans counts how many times this entry has been re-bound.
	Replans int `json:"replans"`
}

// calibrationStatsWire converts CalibrationStats to its wire form.
func calibrationStatsWire(st maskedspgemm.CalibrationStats) calibrationStatsJSON {
	out := calibrationStatsJSON{
		Mode:         st.Mode,
		Coefficients: st.Coefficients,
		FitNanos:     st.FitNanos,
		Replans:      st.Replans,
	}
	for _, d := range st.Drift {
		out.Drift = append(out.Drift, planDriftJSON{
			Scheme:        d.Scheme,
			Rows:          d.Rows,
			Schedule:      d.Schedule,
			EwmaImbalance: d.EwmaImbalance,
			EwmaWallNanos: d.EwmaWallNanos,
			Samples:       d.Samples,
			Replans:       d.Replans,
		})
	}
	return out
}

// handleStats reports the counters a dashboard or autoscaler reads.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.session.Stats()
	writeJSON(w, statsResponse{
		Session: sessionStatsJSON{
			Cache: cacheStatsJSON{
				Hits:             st.Cache.Hits,
				Misses:           st.Cache.Misses,
				CoalescedMisses:  st.Cache.CoalescedMisses,
				Evictions:        st.Cache.Evictions,
				Entries:          st.Cache.Entries,
				Bytes:            st.Cache.Bytes,
				HybridFamilyRows: st.Cache.HybridFamilyRows,
			},
			Store: storeStatsWire(st.Store),
			Budget: budgetStatsJSON{
				UsedBytes: st.Budget.UsedBytes,
				MaxBytes:  st.Budget.MaxBytes,
			},
			Pool: poolStatsJSON{
				Created:   st.Pool.Created,
				Reused:    st.Pool.Reused,
				Discarded: st.Pool.Discarded,
				Idle:      st.Pool.Idle,
			},
			Sched: schedStatsJSON{
				Passes:         st.Sched.Passes,
				BusyNanos:      int64(st.Sched.Busy),
				BlocksClaimed:  st.Sched.BlocksClaimed,
				BlocksStolen:   st.Sched.BlocksStolen,
				WorstImbalance: st.Sched.WorstImbalance,
			},
			Faults: faultStatsJSON{
				ExecCanceled:       st.Faults.ExecCanceled,
				KernelPanics:       st.Faults.KernelPanics,
				ExecutorsDiscarded: st.Faults.ExecutorsDiscarded,
			},
			Calibration: calibrationStatsWire(st.Calibration),
		},
		Admission:    s.adm.stats(),
		RecentMisses: s.misses.recent(),
	})
}

// handleHealthz is the liveness/readiness probe: 200 while serving,
// 503 once draining begins (load balancers stop routing here first).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.adm.stats().Draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readGuarded decodes a request body under the configured size cap
// (over it → 413) and read deadline (a body still trickling in at
// BodyReadTimeout → 408, and the slot or warm token the caller holds
// frees). On failure the returned status is the HTTP code the caller
// should answer with. Every body-reading endpoint goes through here so
// the guards can't drift apart per handler.
func readGuarded[T any](s *Server, w http.ResponseWriter, r *http.Request, decode func(*http.Request) (T, error)) (T, int, error) {
	rc := http.NewResponseController(w)
	// SetReadDeadline is unsupported on some wrapped writers; a request
	// that can't be deadlined still gets the size cap.
	deadlined := rc.SetReadDeadline(time.Now().Add(s.cfg.BodyReadTimeout)) == nil
	// The tracker remembers the transport-level read failure (cap
	// tripped, deadline expired) independently of the decode error:
	// the decoders see truncated input and may report the resulting
	// parse confusion without wrapping the cause.
	body := &trackedBody{ReadCloser: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
	r.Body = body
	out, err := decode(r)
	if err != nil {
		var zero T
		return zero, operandStatus(err, body.readErr), err
	}
	if deadlined {
		// Decoded fully: stop the deadline from bleeding into the next
		// request on this kept-alive connection. On error the deadline
		// deliberately stays armed — net/http drains the unread body
		// after the handler returns, and that drain must time out too,
		// or a stalled upload would block the error response itself.
		_ = rc.SetReadDeadline(time.Time{})
	}
	return out, http.StatusOK, nil
}

// readOperands is readGuarded specialized to multiply/warm bodies.
func (s *Server) readOperands(w http.ResponseWriter, r *http.Request) (*operands, int, error) {
	return readGuarded(s, w, r, decodeOperands)
}

// trackedBody records the first non-EOF error a body read surfaces.
type trackedBody struct {
	io.ReadCloser
	readErr error
}

// Read delegates and remembers the first real failure.
func (b *trackedBody) Read(p []byte) (int, error) {
	n, err := b.ReadCloser.Read(p)
	if err != nil && err != io.EOF && b.readErr == nil {
		b.readErr = err
	}
	return n, err
}

// operandStatus maps a body-decode failure to its HTTP status,
// consulting both the decoder's error and the underlying read error:
// the size cap surfaces as 413 (so clients learn the limit exists), an
// expired read deadline as 408, anything else — a malformed body — as
// 400.
func operandStatus(decodeErr, readErr error) int {
	var tooBig *http.MaxBytesError
	for _, err := range []error{decodeErr, readErr} {
		switch {
		case err == nil:
		case errors.As(err, &tooBig):
			return http.StatusRequestEntityTooLarge
		case errors.Is(err, os.ErrDeadlineExceeded):
			return http.StatusRequestTimeout
		}
	}
	return http.StatusBadRequest
}

// writeResult encodes a product in the requested format: MSPG binary
// (default), Matrix Market (?format=mtx), or a JSON summary
// (?format=summary). format was validated by parseFormat before the
// request was admitted.
func (s *Server) writeResult(w http.ResponseWriter, format string, out *maskedspgemm.Matrix) {
	switch format {
	case "", "serial":
		w.Header().Set("Content-Type", "application/x-mspgemm")
		// A failed write means the client is gone; nothing to recover.
		_ = serial.Write(w, out)
	case "mtx":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = mtx.Write(w, out)
	case "summary":
		writeJSON(w, summarize(out))
	}
}

// retryAfter attaches the backoff hint to a shed response.
func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// queueDeadline resolves the per-request queue deadline: the
// X-Queue-Deadline-Ms header when present (capped at the server
// default — a client may ask for less patience, not more), else the
// server default. An explicit 0 means exactly what it says — no
// patience: the request is served only if a slot is free right now,
// and shed (429) instead of queued otherwise.
func queueDeadline(r *http.Request, def time.Duration) (time.Duration, error) {
	h := r.Header.Get("X-Queue-Deadline-Ms")
	if h == "" {
		return def, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms < 0 {
		return 0, fmt.Errorf("serve: X-Queue-Deadline-Ms must be a non-negative integer, got %q", h)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > def {
		return def, nil
	}
	return d, nil
}

// execDeadline parses the X-Exec-Deadline-Ms header: the client's
// budget for the execution itself, started once the request is
// admitted (queueing time is budgeted separately by
// X-Queue-Deadline-Ms). When the budget expires the kernels stop
// cooperatively at their next checkpoint and the request answers 503.
// Absent or 0 means no execution deadline.
func execDeadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get("X-Exec-Deadline-Ms")
	if h == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms < 0 {
		return 0, fmt.Errorf("serve: X-Exec-Deadline-Ms must be a non-negative integer, got %q", h)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// httpError writes a plain-text error response.
func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, msg, code)
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus writes v as an indented JSON response under an
// explicit status code.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// algorithmByName resolves a scheme by its registry name,
// case-insensitively ("hash" → AlgoHash).
func algorithmByName(name string) (maskedspgemm.Algorithm, bool) {
	for _, a := range core.Algorithms() {
		if strings.EqualFold(a.String(), name) {
			return a, true
		}
	}
	return 0, false
}

// algorithmNames lists the registry's scheme names for error messages.
func algorithmNames() string {
	var names []string
	for _, a := range core.Algorithms() {
		names = append(names, a.String())
	}
	return strings.Join(names, ", ")
}

// missLogDepth bounds the recent-miss ring exposed by /stats.
const missLogDepth = 32

// missRecord is one observed plan-cache miss as /stats reports it —
// the raw material of the ROADMAP's warm-by-prediction loop: a
// recurring fingerprint in this log is a structure worth pre-planning.
type missRecord struct {
	// MaskFP, AFP, BFP are the operands' structural fingerprints, hex.
	MaskFP string `json:"mask_fp"`
	AFP    string `json:"a_fp"`
	BFP    string `json:"b_fp"`
	// Scheme is the plan's scheme name ("MSA-1P").
	Scheme string `json:"scheme"`
	// Complement marks complemented-mask requests.
	Complement bool `json:"complement,omitempty"`
	// Warm marks misses planted by /v1/warm rather than live traffic.
	Warm bool `json:"warm,omitempty"`
}

// missLog is a bounded ring of recent plan-cache misses fed by the
// session's miss observer.
type missLog struct {
	mu   sync.Mutex
	ring []missRecord
	next int
}

// newMissLog returns a ring holding the last depth misses.
func newMissLog(depth int) *missLog {
	return &missLog{ring: make([]missRecord, 0, depth)}
}

// observe is the maskedspgemm.PlanMiss observer wired into the
// session.
func (l *missLog) observe(ev maskedspgemm.PlanMiss) {
	rec := missRecord{
		MaskFP:     fmt.Sprintf("%016x", ev.MaskFingerprint),
		AFP:        fmt.Sprintf("%016x", ev.AFingerprint),
		BFP:        fmt.Sprintf("%016x", ev.BFingerprint),
		Scheme:     ev.Scheme,
		Complement: ev.Complement,
		Warm:       ev.Warm,
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
	} else {
		l.ring[l.next] = rec
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.mu.Unlock()
}

// recent returns the logged misses oldest-first.
func (l *missLog) recent() []missRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]missRecord, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}
