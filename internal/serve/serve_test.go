package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/serial"
	"maskedspgemm/internal/serve/servetest"
	"maskedspgemm/internal/sparse"
)

// getStats fetches and decodes /stats into the typed response.
func getStats(t testing.TB, h *servetest.Server) statsResponse {
	t.Helper()
	resp := h.Get("/stats")
	if resp.Status != http.StatusOK {
		t.Fatalf("/stats: status %d: %s", resp.Status, resp.Body)
	}
	var st statsResponse
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAdmissionStateMachine unit-tests the front door: capacity,
// queueing, shedding, deadline expiry, and cancellation.
func TestAdmissionStateMachine(t *testing.T) {
	a := newAdmission(2, 1)
	ctx := context.Background()

	if got := a.acquire(ctx, 0); got != admitted {
		t.Fatalf("slot 1: %v", got)
	}
	if got := a.acquire(ctx, 0); got != admitted {
		t.Fatalf("slot 2: %v", got)
	}

	// Third request queues; it should be admitted once a slot frees.
	admittedCh := make(chan admitOutcome, 1)
	go func() { admittedCh <- a.acquire(ctx, time.Minute) }()
	servetest.WaitFor(t, func() bool { return a.stats().QueueDepth == 1 })

	// Fourth request finds the queue full: shed.
	if got := a.acquire(ctx, 0); got != admitShed {
		t.Fatalf("queue-full request: got %v, want shed", got)
	}

	a.release()
	if got := <-admittedCh; got != admitted {
		t.Fatalf("queued request after release: %v", got)
	}

	// A queued request with a short deadline expires.
	if got := a.acquire(ctx, 10*time.Millisecond); got != admitExpired {
		t.Fatalf("deadline request: got %v, want expired", got)
	}

	// A zero deadline is now-or-never: with slots full but the queue
	// empty, the request is shed instead of queued.
	if got := a.acquire(ctx, 0); got != admitShed {
		t.Fatalf("zero-deadline request: got %v, want shed", got)
	}

	// A queued request whose context ends is dropped as canceled.
	cctx, cancel := context.WithCancel(ctx)
	outcomeCh := make(chan admitOutcome, 1)
	go func() { outcomeCh <- a.acquire(cctx, time.Minute) }()
	servetest.WaitFor(t, func() bool { return a.stats().QueueDepth == 1 })
	cancel()
	if got := <-outcomeCh; got != admitCanceled {
		t.Fatalf("canceled request: %v", got)
	}

	st := a.stats()
	if st.Admitted != 3 || st.Shed != 2 || st.DeadlineExpired != 1 || st.Canceled != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

// TestAdmissionDrain pins drain semantics: queued waiters are rejected,
// in-flight work finishes, the drain channel closes only after the last
// release, and later arrivals bounce immediately.
func TestAdmissionDrain(t *testing.T) {
	a := newAdmission(1, 4)
	ctx := context.Background()
	if got := a.acquire(ctx, 0); got != admitted {
		t.Fatal(got)
	}
	queuedCh := make(chan admitOutcome, 1)
	go func() { queuedCh <- a.acquire(ctx, time.Minute) }()
	servetest.WaitFor(t, func() bool { return a.stats().QueueDepth == 1 })

	done := a.beginDrain()
	if got := <-queuedCh; got != admitDraining {
		t.Fatalf("queued waiter during drain: %v", got)
	}
	select {
	case <-done:
		t.Fatal("drain completed with a request still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	if got := a.acquire(ctx, 0); got != admitDraining {
		t.Fatalf("arrival during drain: %v", got)
	}
	a.release()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("drain did not complete after the last release")
	}
	if !a.stats().Draining {
		t.Fatal("stats must report draining")
	}
}

// TestServeMultiplyFormats checks the wire contract end to end: raw
// serial and Matrix Market bodies, multipart operands, and all three
// response formats agree with the library computed locally.
func TestServeMultiplyFormats(t *testing.T) {
	g := maskedspgemm.ErdosRenyi(96, 6, 42)
	want, err := maskedspgemm.Multiply(g.PatternView(), g, g, maskedspgemm.WithAlgorithm(maskedspgemm.Hash))
	if err != nil {
		t.Fatal(err)
	}
	h := servetest.Start(t, New(Config{}))

	// Raw serial body, serial response.
	resp := h.Post("/v1/multiply?algorithm=hash", servetest.EncodeSerial(t, g), nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("serial: status %d: %s", resp.Status, resp.Body)
	}
	got, err := serial.Read(bytes.NewReader(resp.Body))
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(want, got) {
		t.Fatal("serial round trip: result differs from local Multiply")
	}

	// Raw Matrix Market body, mtx response.
	resp = h.Post("/v1/multiply?algorithm=hash&format=mtx", servetest.EncodeMTX(t, g), nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("mtx: status %d: %s", resp.Status, resp.Body)
	}
	got, _, err = mtx.Read(bytes.NewReader(resp.Body))
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(want, got, func(x, y float64) bool { return x == y }) {
		t.Fatal("mtx round trip: result differs from local Multiply")
	}

	// Summary response: shape, nnz, and value sum.
	resp = h.Post("/v1/multiply?algorithm=hash&format=summary", servetest.EncodeSerial(t, g), nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("summary: status %d: %s", resp.Status, resp.Body)
	}
	var sum resultSummary
	if err := json.Unmarshal(resp.Body, &sum); err != nil {
		t.Fatal(err)
	}
	wantSum := summarize(want)
	if sum != wantSum {
		t.Fatalf("summary = %+v, want %+v", sum, wantSum)
	}

	// Multipart operands in mixed formats: mask as Matrix Market, a and
	// b as serial. Use an asymmetric product so operand routing matters.
	hm := maskedspgemm.ErdosRenyi(96, 4, 43)
	wantMulti, err := maskedspgemm.Multiply(hm.PatternView(), g, hm)
	if err != nil {
		t.Fatal(err)
	}
	mbody, ctype := servetest.Multipart(t,
		servetest.Part{Name: "mask", Data: servetest.EncodeMTX(t, hm)},
		servetest.Part{Name: "a", Data: servetest.EncodeSerial(t, g)},
		servetest.Part{Name: "b", Data: servetest.EncodeSerial(t, hm)},
	)
	resp = h.Post("/v1/multiply", mbody, map[string]string{"Content-Type": ctype})
	if resp.Status != http.StatusOK {
		t.Fatalf("multipart: status %d: %s", resp.Status, resp.Body)
	}
	got, err = serial.Read(bytes.NewReader(resp.Body))
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(wantMulti, got) {
		t.Fatal("multipart: result differs from local Multiply")
	}
}

// TestServeWarmThenMultiplyHits drives the headline bugfix through the
// wire: /v1/warm plants the plan, a later /v1/multiply with telemetry
// on must hit it — one miss, one hit, one cache entry.
func TestServeWarmThenMultiplyHits(t *testing.T) {
	g := maskedspgemm.ErdosRenyi(80, 6, 44)
	h := servetest.Start(t, New(Config{}))
	body := servetest.EncodeSerial(t, g)

	resp := h.Post("/v1/warm?algorithm=msa", body, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.Status, resp.Body)
	}
	murl := "/v1/multiply?algorithm=msa&sched_stats=1"
	if runtime.GOMAXPROCS(0) > 1 {
		// threads is clamped to the host's parallelism; only widen where
		// the host allows it.
		murl += "&threads=2"
	}
	resp = h.Post(murl, body, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("multiply: status %d: %s", resp.Status, resp.Body)
	}
	st := getStats(t, h)
	c := st.Session.Cache
	if c.Hits != 1 || c.Misses != 2 || c.Entries != 2 {
		// threads=2 is plan-affecting (partition layout), so the warmed
		// threads-default plan and the threads=2 request are distinct
		// entries; re-issue with matching plan options to pin the
		// normalization claim precisely below.
		t.Logf("cache after mixed-thread requests: %+v", c)
	}

	// The precise regression: identical plan-affecting options, telemetry
	// differing. Fresh server for clean counters.
	h2 := servetest.Start(t, New(Config{}))
	if resp := h2.Post("/v1/warm", body, nil); resp.Status != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.Status, resp.Body)
	}
	if resp := h2.Post("/v1/multiply?sched_stats=1", body, nil); resp.Status != http.StatusOK {
		t.Fatalf("multiply: status %d: %s", resp.Status, resp.Body)
	}
	st2 := getStats(t, h2)
	if c := st2.Session.Cache; c.Hits != 1 || c.Misses != 1 || c.Entries != 1 {
		t.Fatalf("cache = %+v, want Hits == 1, Misses == 1, Entries == 1 (warm → stats-multiply must hit)", c)
	}
	if len(st2.RecentMisses) != 1 || !st2.RecentMisses[0].Warm {
		t.Fatalf("recent misses = %+v, want the single warm plant", st2.RecentMisses)
	}
}

// TestServeStatsHybridFamilyRows checks the operator view of per-row
// family adoption: after a hybrid multiply, /stats carries
// hybrid_family_rows summing to the mask's row count; uniform-scheme
// traffic reports none.
func TestServeStatsHybridFamilyRows(t *testing.T) {
	g := maskedspgemm.ErdosRenyi(80, 6, 45)
	h := servetest.Start(t, New(Config{}))
	body := servetest.EncodeSerial(t, g)

	resp := h.Post("/v1/multiply?algorithm=msa", body, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("msa multiply: status %d: %s", resp.Status, resp.Body)
	}
	if rows := getStats(t, h).Session.Cache.HybridFamilyRows; rows != nil {
		t.Fatalf("uniform traffic reported family rows %v", rows)
	}
	resp = h.Post("/v1/multiply?algorithm=hybrid", body, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("hybrid multiply: status %d: %s", resp.Status, resp.Body)
	}
	rows := getStats(t, h).Session.Cache.HybridFamilyRows
	if len(rows) == 0 {
		t.Fatal("hybrid plan reported no family rows")
	}
	var total int64
	for _, n := range rows {
		total += n
	}
	if total != 80 {
		t.Fatalf("family rows %v sum to %d, want the mask's 80", rows, total)
	}
}

// TestServeStatsCalibrationBlock pins the /stats calibration block
// shape (DESIGN.md §14): a default server reports an inert "off"
// block; a server booted with online calibration reports the mode,
// the fitted coefficients (MSA anchored at 1.0), and the fit timing.
func TestServeStatsCalibrationBlock(t *testing.T) {
	h := servetest.Start(t, New(Config{}))
	cal := getStats(t, h).Session.Calibration
	if cal.Mode != "off" || cal.FitNanos != 0 || cal.Replans != 0 || cal.Coefficients != nil || cal.Drift != nil {
		t.Fatalf("default server calibration block = %+v, want inert off", cal)
	}

	hc := servetest.Start(t, New(Config{
		SessionOptions: []maskedspgemm.SessionOption{
			maskedspgemm.WithCalibration(maskedspgemm.CalibrationConfig{
				Mode:        maskedspgemm.CalibrateOnline,
				MaxDuration: 5 * time.Second,
			}),
		},
	}))
	g := maskedspgemm.ErdosRenyi(80, 6, 46)
	body := servetest.EncodeSerial(t, g)
	if resp := hc.Post("/v1/multiply", body, nil); resp.Status != http.StatusOK {
		t.Fatalf("multiply: status %d: %s", resp.Status, resp.Body)
	}
	cal = getStats(t, hc).Session.Calibration
	if cal.Mode != "online" {
		t.Fatalf("mode = %q, want online", cal.Mode)
	}
	if cal.FitNanos <= 0 {
		t.Errorf("fit_nanos = %d, want > 0 (the startup fit ran)", cal.FitNanos)
	}
	if len(cal.Coefficients) > 0 {
		if msa := cal.Coefficients["MSA"]; msa != 1.0 {
			t.Errorf("MSA coefficient = %v, want the 1.0 anchor", msa)
		}
	}
	// Drift records surface for observed plans: the multiply above ran
	// under online feedback, so the (serial, hence never re-bound) plan
	// still reports its samples.
	if len(cal.Drift) == 0 {
		t.Error("online server reports no drift records after traffic")
	}
}

// TestServeSaturation is the admission-control acceptance test: with
// pool size P and 8·P concurrent clients, at most P products execute
// concurrently, excess queues up to the bound, everything beyond is
// shed with 429 + Retry-After, and draining bounces new requests with
// 503 while leaking no goroutines. Run under -race in CI.
func TestServeSaturation(t *testing.T) {
	const (
		pool    = 2
		queue   = 2
		clients = 8 * pool
	)
	checkLeaks := servetest.AssertNoLeaks(t)

	srv := New(Config{MaxInFlight: pool, MaxQueue: queue, QueueTimeout: 30 * time.Second})
	gate := make(chan struct{})
	var cur, peak atomic.Int64
	srv.execGate = func() {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		<-gate
		cur.Add(-1)
	}
	h := servetest.Start(t, srv)
	h.Client.Timeout = time.Minute

	g := maskedspgemm.ErdosRenyi(64, 4, 45)
	body := servetest.EncodeSerial(t, g)

	// Fill every execution slot, then every queue seat.
	var wg sync.WaitGroup
	codes := make(chan int, clients)
	launch := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp := h.Post("/v1/multiply", body, nil)
				if resp.Status == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				codes <- resp.Status
			}()
		}
	}
	launch(pool)
	servetest.WaitFor(t, func() bool { return srv.adm.stats().InFlight == pool })

	// With slots full but queue room free, a request with its own short
	// deadline queues, expires, and gets 503.
	resp := h.Post("/v1/multiply", body, map[string]string{"X-Queue-Deadline-Ms": "1"})
	if resp.Status != http.StatusServiceUnavailable {
		t.Fatalf("expired request: status %d, want 503", resp.Status)
	}

	launch(queue)
	servetest.WaitFor(t, func() bool { return srv.adm.stats().QueueDepth == queue })

	// Every further client must be shed immediately: slots and queue are
	// both full and nothing can free while the gate is closed.
	launch(clients - pool - queue)
	servetest.WaitFor(t, func() bool { return srv.adm.stats().Shed == clients-pool-queue })

	// Open the gate: the P in-flight and Q queued requests all finish.
	close(gate)
	wg.Wait()
	close(codes)
	var ok200, shed429 int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if ok200 != pool+queue || shed429 != clients-pool-queue {
		t.Fatalf("outcomes: %d ok / %d shed, want %d / %d", ok200, shed429, pool+queue, clients-pool-queue)
	}
	if p := peak.Load(); p > pool {
		t.Fatalf("%d products executed concurrently, bound is %d", p, pool)
	}

	st := srv.adm.stats()
	if st.Shed != uint64(clients-pool-queue) || st.DeadlineExpired != 1 {
		t.Fatalf("admission counters = %+v", st)
	}

	// Drain: in-flight is zero, so it completes at once and later
	// requests bounce with 503.
	select {
	case <-srv.Drain():
	case <-time.After(time.Second):
		t.Fatal("drain did not complete with no requests in flight")
	}
	resp = h.Post("/v1/multiply", body, nil)
	if resp.Status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", resp.Status)
	}
	resp = h.Post("/v1/warm", body, nil)
	if resp.Status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain warm: status %d, want 503 (warming must not delay shutdown)", resp.Status)
	}
	if hresp := h.Get("/healthz"); hresp.Status != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", hresp.Status)
	}

	// Zero goroutine leak once the listener closes: every queued waiter,
	// timer, and handler goroutine must be gone.
	h.Close()
	checkLeaks()
}

// TestServeBadRequests pins the failure-mode statuses: bad options,
// undecodable bodies, wrong methods, and invalid operand shapes.
func TestServeBadRequests(t *testing.T) {
	h := servetest.Start(t, New(Config{}))
	g := maskedspgemm.ErdosRenyi(32, 4, 46)

	resp := h.Post("/v1/multiply?algorithm=nope", servetest.EncodeSerial(t, g), nil)
	if resp.Status != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: %d", resp.Status)
	}
	// A typo'd format is rejected up front, before a slot or a
	// multiplication is spent on it.
	resp = h.Post("/v1/multiply?format=json", servetest.EncodeSerial(t, g), nil)
	if resp.Status != http.StatusBadRequest {
		t.Fatalf("unknown format: %d", resp.Status)
	}
	resp = h.Post("/v1/multiply", []byte("junk body"), nil)
	if resp.Status != http.StatusBadRequest {
		t.Fatalf("junk body: %d", resp.Status)
	}
	// threads is clamped to the host's parallelism: a giant value must
	// be a 400, not a per-thread allocation storm (and not a fresh
	// plan-cache key per count).
	resp = h.Post("/v1/multiply?threads=1000000000", servetest.EncodeSerial(t, g), nil)
	if resp.Status != http.StatusBadRequest {
		t.Fatalf("oversized threads: %d: %s", resp.Status, resp.Body)
	}
	// Trailing garbage no longer parses (Sscanf would have taken "2x" as 2).
	resp = h.Post("/v1/multiply?threads=2x", servetest.EncodeSerial(t, g), nil)
	if resp.Status != http.StatusBadRequest {
		t.Fatalf("malformed threads: %d", resp.Status)
	}
	if hresp := h.Get("/v1/multiply"); hresp.Status != http.StatusMethodNotAllowed {
		t.Fatalf("GET multiply: %d", hresp.Status)
	}

	// Shape mismatch (mask 32×32, A 16×16) is a planning error: 422.
	small := maskedspgemm.ErdosRenyi(16, 4, 47)
	mbody, ctype := servetest.Multipart(t,
		servetest.Part{Name: "mask", Data: servetest.EncodeSerial(t, g)},
		servetest.Part{Name: "a", Data: servetest.EncodeSerial(t, small)},
	)
	resp = h.Post("/v1/multiply", mbody, map[string]string{"Content-Type": ctype})
	if resp.Status != http.StatusUnprocessableEntity {
		t.Fatalf("shape mismatch: %d: %s", resp.Status, resp.Body)
	}
	if !strings.Contains(string(resp.Body), "mask is") {
		t.Fatalf("shape mismatch error lost: %s", resp.Body)
	}
}

// TestServeBodyTooLarge pins the size-cap status: a body over
// MaxBodyBytes is 413 Content Too Large on all body-reading endpoints,
// not a generic 400 that hides the cap from clients.
func TestServeBodyTooLarge(t *testing.T) {
	h := servetest.Start(t, New(Config{MaxBodyBytes: 64}))
	g := maskedspgemm.ErdosRenyi(64, 4, 48)
	// Both wire formats: the Matrix Market decoder reports truncation as
	// a parse error without wrapping the cause, so the 413 must come
	// from the tracked transport error, not the decoder's message.
	for name, body := range map[string][]byte{"serial": servetest.EncodeSerial(t, g), "mtx": servetest.EncodeMTX(t, g)} {
		if len(body) <= 64 {
			t.Fatalf("%s test body must exceed the 64-byte cap, got %d bytes", name, len(body))
		}
		for _, ep := range []string{"/v1/multiply", "/v1/warm"} {
			resp := h.Post(ep, body, nil)
			if resp.Status != http.StatusRequestEntityTooLarge {
				t.Fatalf("%s %s oversized body: status %d: %s", name, ep, resp.Status, resp.Body)
			}
		}
		if resp := h.Put("/v1/operands", body, nil); resp.Status != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s PUT /v1/operands oversized body: status %d: %s", name, resp.Status, resp.Body)
		}
	}
}

// TestServeZeroQueueDeadline pins the now-or-never contract: an
// explicit X-Queue-Deadline-Ms: 0 with every slot busy is shed with
// 429 immediately — even with queue room free — rather than coerced to
// the server's default patience.
func TestServeZeroQueueDeadline(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 30 * time.Second})
	gate := make(chan struct{})
	srv.execGate = func() { <-gate }
	h := servetest.Start(t, srv)
	body := servetest.EncodeSerial(t, maskedspgemm.ErdosRenyi(64, 4, 49))

	done := make(chan int, 1)
	go func() {
		done <- h.Post("/v1/multiply", body, nil).Status
	}()
	servetest.WaitFor(t, func() bool { return srv.adm.stats().InFlight == 1 })

	resp := h.Post("/v1/multiply", body, map[string]string{"X-Queue-Deadline-Ms": "0"})
	if resp.Status != http.StatusTooManyRequests {
		t.Fatalf("zero-deadline request: status %d: %s (want immediate 429)", resp.Status, resp.Body)
	}
	if st := srv.adm.stats(); st.Shed != 1 || st.QueueDepth != 0 {
		t.Fatalf("admission stats = %+v, want one shed and nothing queued", st)
	}
	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("slot-holding request: status %d", code)
	}
}

// TestServeWarmBounded pins the planning bound: /v1/warm no longer
// bypasses admission wholesale — at most MaxWarmInFlight warms plan
// concurrently, and a warm that cannot start within QueueTimeout is
// shed with 429 + Retry-After.
func TestServeWarmBounded(t *testing.T) {
	srv := New(Config{MaxWarmInFlight: 1, QueueTimeout: 30 * time.Millisecond})
	gate := make(chan struct{})
	srv.planGate = func() { <-gate }
	h := servetest.Start(t, srv)
	body := servetest.EncodeSerial(t, maskedspgemm.ErdosRenyi(64, 4, 52))

	done := make(chan int, 1)
	go func() {
		done <- h.Post("/v1/warm", body, nil).Status
	}()
	servetest.WaitFor(t, func() bool { return len(srv.warmGate) == 1 })

	resp := h.Post("/v1/warm", body, nil)
	if resp.Status != http.StatusTooManyRequests {
		t.Fatalf("second warm: status %d: %s (want 429 at the planning bound)", resp.Status, resp.Body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed warm missing Retry-After")
	}
	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("gated warm: status %d", code)
	}
}

// TestServeWarmDrainRace pins the post-token drain re-check: a warm
// that wins its warmGate token concurrently with Drain beginning must
// be rejected with 503 before it starts reading or planning, not
// silently plan into a cache that is being discarded.
func TestServeWarmDrainRace(t *testing.T) {
	srv := New(Config{MaxWarmInFlight: 1})
	gate := make(chan struct{})
	srv.planGate = func() { <-gate }
	h := servetest.Start(t, srv)
	body := servetest.EncodeSerial(t, maskedspgemm.ErdosRenyi(64, 4, 54))

	done := make(chan int, 1)
	go func() {
		done <- h.Post("/v1/warm", body, nil).Status
	}()
	// The warm holds its token and is paused just before the re-check;
	// drain begins, then the warm resumes.
	servetest.WaitFor(t, func() bool { return len(srv.warmGate) == 1 })
	srv.Drain()
	close(gate)
	if code := <-done; code != http.StatusServiceUnavailable {
		t.Fatalf("warm that raced drain: status %d, want 503", code)
	}
}

// TestServeSlowBodyTimeout pins the slot-starvation fix: a client that
// sends headers and then trickles its body cannot hold an execution
// slot past BodyReadTimeout — the read deadline fires, the request
// gets 408, and the slot frees for the waiting request.
func TestServeSlowBodyTimeout(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, BodyReadTimeout: 100 * time.Millisecond})
	h := servetest.Start(t, srv)

	conn := h.Dial()
	// Headers complete, body stalls after the format sniff bytes.
	fmt.Fprintf(conn, "POST /v1/multiply HTTP/1.1\r\nHost: x\r\nContent-Length: 100000\r\n\r\nMSPG")
	reply := make([]byte, 64)
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, err := conn.Read(reply)
	if err != nil {
		t.Fatalf("no response to the stalled upload: %v", err)
	}
	if line := string(reply[:n]); !strings.Contains(line, "408") {
		t.Fatalf("stalled upload answered %q, want 408", line)
	}
	// The slot freed: a healthy request is served.
	g := maskedspgemm.ErdosRenyi(64, 4, 53)
	resp := h.Post("/v1/multiply?format=summary", servetest.EncodeSerial(t, g), nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("request after stalled upload: status %d: %s", resp.Status, resp.Body)
	}
}

// TestServeConcurrentMixedTraffic hammers one server with recurring
// structures from many clients and verifies every payload — the
// network-level analogue of TestSessionConcurrent. Run under -race.
func TestServeConcurrentMixedTraffic(t *testing.T) {
	graphs := []*maskedspgemm.Matrix{
		maskedspgemm.ErdosRenyi(64, 6, 50),
		maskedspgemm.ErdosRenyi(96, 4, 51),
	}
	algos := []string{"msa", "hash", "inner"}
	type query struct {
		body []byte
		url  string
		want resultSummary
	}
	h := servetest.Start(t, New(Config{MaxInFlight: 4, MaxQueue: 64, QueueTimeout: 30 * time.Second}))
	var queries []query
	for _, g := range graphs {
		for _, algo := range algos {
			want, err := maskedspgemm.Multiply(g.PatternView(), g, g, mustAlgo(t, algo))
			if err != nil {
				t.Fatal(err)
			}
			queries = append(queries, query{
				body: servetest.EncodeSerial(t, g),
				url:  fmt.Sprintf("/v1/multiply?algorithm=%s&format=summary", algo),
				want: summarize(want),
			})
		}
	}
	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := queries[(worker+r)%len(queries)]
				resp := h.Post(q.url, q.body, nil)
				if resp.Status != http.StatusOK {
					t.Errorf("worker %d: status %d: %s", worker, resp.Status, resp.Body)
					return
				}
				var got resultSummary
				if err := json.Unmarshal(resp.Body, &got); err != nil {
					t.Error(err)
					return
				}
				if got != q.want {
					t.Errorf("worker %d: summary %+v, want %+v", worker, got, q.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := getStats(t, h)
	if st.Session.Cache.Hits == 0 {
		t.Fatal("recurring traffic produced no cache hits")
	}
	if lookups := st.Session.Cache.Hits + st.Session.Cache.Misses; lookups != workers*rounds {
		t.Fatalf("cache saw %d lookups, want %d", lookups, workers*rounds)
	}
}

// mustAlgo resolves a query-parameter algorithm name to a facade
// option, failing the test on registry drift.
func mustAlgo(t testing.TB, name string) maskedspgemm.Option {
	t.Helper()
	a, ok := algorithmByName(name)
	if !ok {
		t.Fatalf("algorithm %q missing from registry", name)
	}
	return maskedspgemm.WithAlgorithm(a)
}
