package serve

import (
	"bufio"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/serial"
)

// operands are one request's decoded matrices. Omitted operands
// default along the graph-workload diagonal: one matrix means
// C = A ⊙ (A·A) (the triangle-counting shape), mask without b means
// B = A.
type operands struct {
	mask *maskedspgemm.Pattern
	a, b *maskedspgemm.Matrix
	// maskM is the matrix the mask part decoded from, when it was a
	// distinct upload (nil when the mask defaulted to A's pattern); the
	// store-through path files it so later requests can reference the
	// mask structure by fingerprint.
	maskM *maskedspgemm.Matrix
}

// decodeMatrix reads one matrix in either wire format, sniffing the
// leading bytes: the serial codec's "MSPG" magic or Matrix Market's
// "%%MatrixMarket" banner. Sniffing (rather than trusting the request
// Content-Type) is what makes the endpoint curl-able — a .mtx file and
// a binary dump both just work.
func decodeMatrix(r io.Reader) (*maskedspgemm.Matrix, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("serve: operand too short to sniff: %w", err)
	}
	switch {
	case string(head) == "MSPG":
		return serial.Read(br)
	case head[0] == '%':
		m, _, err := mtx.Read(br)
		return m, err
	default:
		return nil, fmt.Errorf("serve: operand is neither MSPG binary nor Matrix Market (leading bytes %q)", head)
	}
}

// decodeOperands parses a multiply/warm request body. Two shapes are
// accepted:
//
//   - a raw body holding one matrix (either format): A, with
//     mask = A and B = A — the self-product every graph kernel uses;
//   - multipart/form-data with parts named "mask", "a", "b" (each in
//     either format); "a" is required, omitted "b" defaults to A,
//     omitted "mask" defaults to A's pattern.
func decodeOperands(r *http.Request) (*operands, error) {
	ct := r.Header.Get("Content-Type")
	mediaType, params, err := mime.ParseMediaType(ct)
	if ct != "" && err == nil && strings.HasPrefix(mediaType, "multipart/") {
		return decodeMultipart(multipart.NewReader(r.Body, params["boundary"]))
	}
	a, err := decodeMatrix(r.Body)
	if err != nil {
		return nil, err
	}
	return &operands{mask: a.PatternView(), a: a, b: a}, nil
}

// decodeMultipart reads the named operand parts in order.
func decodeMultipart(mr *multipart.Reader) (*operands, error) {
	var ops operands
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("serve: bad multipart body: %w", err)
		}
		name := part.FormName()
		m, err := decodeMatrix(part)
		part.Close()
		if err != nil {
			return nil, fmt.Errorf("serve: part %q: %w", name, err)
		}
		switch name {
		case "mask":
			ops.mask = m.PatternView()
			ops.maskM = m
		case "a":
			ops.a = m
		case "b":
			ops.b = m
		default:
			return nil, fmt.Errorf("serve: unknown operand part %q (want mask, a, b)", name)
		}
	}
	if ops.a == nil {
		return nil, fmt.Errorf("serve: multipart request is missing operand part %q", "a")
	}
	if ops.b == nil {
		ops.b = ops.a
	}
	if ops.mask == nil {
		ops.mask = ops.a.PatternView()
	}
	return &ops, nil
}

// parseOptions turns query parameters into facade options; every knob
// is optional. Recognized: algorithm (scheme name, case-insensitive),
// phases (1|2), complement (bool), sched_stats (bool), threads (int,
// at most GOMAXPROCS — the parameter picks a width within the host's
// parallelism, it must not size allocations).
func parseOptions(r *http.Request) ([]maskedspgemm.Option, error) {
	q := r.URL.Query()
	var opts []maskedspgemm.Option
	if name := q.Get("algorithm"); name != "" {
		algo, ok := algorithmByName(name)
		if !ok {
			return nil, fmt.Errorf("serve: unknown algorithm %q (want one of %s)", name, algorithmNames())
		}
		opts = append(opts, maskedspgemm.WithAlgorithm(algo))
	}
	switch q.Get("phases") {
	case "", "1":
	case "2":
		opts = append(opts, maskedspgemm.WithTwoPhase())
	default:
		return nil, fmt.Errorf("serve: phases must be 1 or 2, got %q", q.Get("phases"))
	}
	if isTrue(q.Get("complement")) {
		opts = append(opts, maskedspgemm.WithComplement())
	}
	if isTrue(q.Get("sched_stats")) {
		opts = append(opts, maskedspgemm.WithSchedStats())
	}
	if t := q.Get("threads"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("serve: threads must be a positive integer, got %q", t)
		}
		// Clamp hard: worker counts size per-thread scratch allocations
		// (scheduler state, telemetry), so an unauthenticated
		// ?threads=1e9 would be a one-request OOM — and every distinct
		// count is a distinct plan-cache key.
		if max := runtime.GOMAXPROCS(0); n > max {
			return nil, fmt.Errorf("serve: threads=%d exceeds this server's parallelism (max %d)", n, max)
		}
		opts = append(opts, maskedspgemm.WithThreads(n))
	}
	return opts, nil
}

// parseFormat validates the response format up front — before a
// request takes an execution slot — so a typo'd ?format= is a cheap
// 400, not a full multiplication thrown away.
func parseFormat(r *http.Request) (string, error) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "serial", "mtx", "summary":
		return format, nil
	default:
		return "", fmt.Errorf("serve: unknown format %q (want serial, mtx, or summary)", format)
	}
}

// isTrue parses query-parameter booleans permissively.
func isTrue(v string) bool {
	switch strings.ToLower(v) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// resultSummary is the ?format=summary response: enough to assert a
// product without shipping it — shape, nnz, and the value sum (an
// order-independent checksum; for triangle-count style requests the
// masked sum is itself the answer).
type resultSummary struct {
	// Rows and Cols are the result shape.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// NNZ is the result's stored-entry count.
	NNZ int64 `json:"nnz"`
	// Sum is the sum of all stored values.
	Sum float64 `json:"sum"`
}

// summarize computes the ?format=summary payload for a result.
func summarize(m *maskedspgemm.Matrix) resultSummary {
	s := resultSummary{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
	for _, v := range m.Val {
		s.Sum += v
	}
	return s
}
