// The store-facing half of the serve codec (DESIGN.md §13): where
// codec.go decodes wire formats, this file resolves operands through
// the session's content-addressed store — the PUT /v1/operands upload
// endpoint (full matrices or a values-only delta), the reference form
// of /v1/multiply (operands named by fingerprint, nothing on the wire
// but the envelope), and the store-through that files every inline
// operand so the next request can reference it.

package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"mime/multipart"
	"net/http"
	"net/url"
	"strings"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/store"
)

// refRequest is the parsed reference form of a multiply: operands
// named by fingerprint instead of carried in the body.
type refRequest struct {
	maskFP     uint64
	aRef, bRef store.Ref
}

// describe renders the request's operand fingerprints for the panic
// log — the same hex forms the store addresses them by.
func (r *refRequest) describe() string {
	return fmt.Sprintf("mask=%016x a=%s b=%s", r.maskFP, r.aRef.String(), r.bRef.String())
}

// parseRefForm recognizes the reference form of /v1/multiply: ?a=
// names A by content ref ("patternhex:valueshex"), optional ?b= a
// second ref (default A), optional ?mask= a structure fingerprint
// (default A's pattern — the self-mask graph shape). Returns (nil,
// nil) for inline requests (no reference parameters at all).
func parseRefForm(q url.Values) (*refRequest, error) {
	aStr := q.Get("a")
	if aStr == "" {
		if q.Get("b") != "" || q.Get("mask") != "" {
			return nil, fmt.Errorf("serve: reference form requires a= (b= and mask= only qualify it)")
		}
		return nil, nil
	}
	aRef, err := store.ParseRef(aStr)
	if err != nil {
		return nil, fmt.Errorf("serve: bad a reference: %w", err)
	}
	req := &refRequest{aRef: aRef, bRef: aRef, maskFP: aRef.Pattern}
	if bStr := q.Get("b"); bStr != "" {
		if req.bRef, err = store.ParseRef(bStr); err != nil {
			return nil, fmt.Errorf("serve: bad b reference: %w", err)
		}
	}
	if mStr := q.Get("mask"); mStr != "" {
		if req.maskFP, err = store.ParseFingerprint(mStr); err != nil {
			return nil, fmt.Errorf("serve: bad mask fingerprint: %w", err)
		}
	}
	return req, nil
}

// namedUpload is one matrix received by PUT /v1/operands.
type namedUpload struct {
	name string
	m    *maskedspgemm.Matrix
}

// decodeUploads parses a PUT /v1/operands body: one raw matrix
// (either wire format), or multipart/form-data whose every part is a
// matrix — part names are echoed back but carry no meaning, so
// clients may label uploads mask/a/b or anything else.
func decodeUploads(r *http.Request) ([]namedUpload, error) {
	ct := r.Header.Get("Content-Type")
	mediaType, params, err := mime.ParseMediaType(ct)
	if ct != "" && err == nil && strings.HasPrefix(mediaType, "multipart/") {
		mr := multipart.NewReader(r.Body, params["boundary"])
		var ups []namedUpload
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("serve: bad multipart body: %w", err)
			}
			m, err := decodeMatrix(part)
			part.Close()
			if err != nil {
				return nil, fmt.Errorf("serve: part %q: %w", part.FormName(), err)
			}
			ups = append(ups, namedUpload{name: part.FormName(), m: m})
		}
		if len(ups) == 0 {
			return nil, fmt.Errorf("serve: multipart upload holds no operands")
		}
		return ups, nil
	}
	m, err := decodeMatrix(r.Body)
	if err != nil {
		return nil, err
	}
	return []namedUpload{{m: m}}, nil
}

// decodeValuesBody parses a values-only delta: raw little-endian
// float64 words, nothing else — the minimal wire form for refreshing
// the numbers of a resident structure.
func decodeValuesBody(r *http.Request) ([]float64, error) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 || len(data)%8 != 0 {
		return nil, fmt.Errorf("serve: values body must be a non-empty multiple of 8 bytes (little-endian float64 words), got %d", len(data))
	}
	vals := make([]float64, len(data)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return vals, nil
}

// operandReceipt is one stored operand as PUT /v1/operands reports it.
type operandReceipt struct {
	// Name echoes the multipart part name; empty for raw bodies.
	Name string `json:"name,omitempty"`
	// Pattern and Values are the fingerprint halves, hex.
	Pattern string `json:"pattern"`
	Values  string `json:"values"`
	// Ref is the combined "pattern:values" form /v1/multiply accepts.
	Ref string `json:"ref"`
	// Created is false when the content was already resident (the
	// idempotent re-PUT).
	Created bool `json:"created"`
	// NNZ is the operand's stored-entry count.
	NNZ int64 `json:"nnz"`
}

// receiptFor files m in the session store and describes the result.
func (s *Server) receiptFor(name string, m *maskedspgemm.Matrix) operandReceipt {
	nnz := m.NNZ()
	ref, created := s.session.PutOperand(m)
	return operandReceipt{
		Name:    name,
		Pattern: fmt.Sprintf("%016x", ref.Pattern),
		Values:  fmt.Sprintf("%016x", ref.Values),
		Ref:     ref.String(),
		Created: created,
		NNZ:     nnz,
	}
}

// handleOperands is PUT /v1/operands: upload operands once, multiply
// by reference afterwards. Two bodies are accepted — full matrices
// (raw or multipart, stored under their content address; re-PUT of
// resident content is a cheap idempotent 200) and, with
// ?values_for=<pattern-fp>, a values-only delta that re-keys fresh
// numbers under a resident structure (404 when the structure is not
// resident). Uploads pass the same admission gate as multiplies:
// decoding and hashing bodies is real memory and CPU, so at most
// MaxInFlight bodies are in flight, drain rejects uploads with 503,
// and saturation sheds them with 429.
func (s *Server) handleOperands(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "PUT required")
		return
	}
	valuesFor := r.URL.Query().Get("values_for")
	var patternFP uint64
	if valuesFor != "" {
		var err error
		if patternFP, err = store.ParseFingerprint(valuesFor); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	wait, err := queueDeadline(r, s.cfg.QueueTimeout)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	switch s.adm.acquire(r.Context(), wait) {
	case admitted:
		defer s.adm.release()
	case admitShed:
		s.retryAfter(w)
		httpError(w, http.StatusTooManyRequests, "admission queue full; retry later")
		return
	case admitExpired:
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "queue deadline expired before an upload slot freed")
		return
	case admitDraining:
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case admitCanceled:
		return
	}

	var receipts []operandReceipt
	if valuesFor != "" {
		vals, status, err := readGuarded(s, w, r, decodeValuesBody)
		if err != nil {
			httpError(w, status, err.Error())
			return
		}
		ref, created, err := s.session.PutOperandValues(patternFP, vals)
		var unknown *store.ErrUnknownPattern
		switch {
		case errors.As(err, &unknown):
			writeJSONStatus(w, http.StatusNotFound, missingResponse{
				Error:   err.Error(),
				Missing: []missingOperandJSON{{Operand: "pattern", Pattern: fmt.Sprintf("%016x", unknown.Fingerprint)}},
			})
			return
		case err != nil:
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		receipts = append(receipts, operandReceipt{
			Pattern: fmt.Sprintf("%016x", ref.Pattern),
			Values:  fmt.Sprintf("%016x", ref.Values),
			Ref:     ref.String(),
			Created: created,
			NNZ:     int64(len(vals)),
		})
	} else {
		ups, status, err := readGuarded(s, w, r, decodeUploads)
		if err != nil {
			httpError(w, status, err.Error())
			return
		}
		for _, up := range ups {
			receipts = append(receipts, s.receiptFor(up.name, up.m))
		}
	}
	writeJSON(w, operandsResponse{Operands: receipts, Store: storeStatsWire(s.session.Stats().Store)})
}

// operandsResponse is the PUT /v1/operands payload.
type operandsResponse struct {
	// Operands describes each stored upload, in body order.
	Operands []operandReceipt `json:"operands"`
	// Store is the post-upload store snapshot.
	Store storeStatsJSON `json:"store"`
}

// missingOperandJSON names one unresolved operand in a 404.
type missingOperandJSON struct {
	// Operand is the request role: "mask", "a", "b" (or "pattern" for
	// a values delta against a non-resident structure).
	Operand string `json:"operand"`
	// Pattern is the unresolved structure fingerprint, hex.
	Pattern string `json:"pattern"`
	// Values is the unresolved values fingerprint, hex; omitted for
	// structure-only references.
	Values string `json:"values,omitempty"`
}

// missingResponse is the 404 payload of a dangling reference: every
// missing operand is named, so one round trip tells the client
// exactly what to re-upload.
type missingResponse struct {
	// Error is the human-readable summary.
	Error string `json:"error"`
	// Missing lists the unresolved operands.
	Missing []missingOperandJSON `json:"missing"`
}

// writeMissing maps a MissingOperandsError to its 404 payload.
func writeMissing(w http.ResponseWriter, err *maskedspgemm.MissingOperandsError) {
	resp := missingResponse{Error: err.Error()}
	for _, m := range err.Missing {
		mj := missingOperandJSON{Operand: m.Operand, Pattern: fmt.Sprintf("%016x", m.Pattern)}
		if m.Operand != "mask" {
			mj.Values = fmt.Sprintf("%016x", m.Values)
		}
		resp.Missing = append(resp.Missing, mj)
	}
	writeJSONStatus(w, http.StatusNotFound, resp)
}

// storeThrough files an inline request's operands in the session
// store and answers with their refs in response headers
// (X-Operand-Mask / X-Operand-A / X-Operand-B), so a client that just
// paid the upload learns the references that make its next request
// free. Ownership of the decoded matrices passes to the store; the
// request keeps using them read-only, which the ownership contract
// permits (DESIGN.md §8).
func (s *Server) storeThrough(w http.ResponseWriter, ops *operands) {
	aRef, _ := s.session.PutOperand(ops.a)
	bRef := aRef
	if ops.b != ops.a {
		bRef, _ = s.session.PutOperand(ops.b)
	}
	maskFP := aRef.Pattern
	switch {
	case ops.maskM == nil || ops.maskM == ops.a:
		// mask defaulted to (or was uploaded as) A's structure.
	case ops.maskM == ops.b:
		maskFP = bRef.Pattern
	default:
		mRef, _ := s.session.PutOperand(ops.maskM)
		maskFP = mRef.Pattern
	}
	h := w.Header()
	h.Set("X-Operand-Mask", fmt.Sprintf("%016x", maskFP))
	h.Set("X-Operand-A", aRef.String())
	h.Set("X-Operand-B", bRef.String())
}
