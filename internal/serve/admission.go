package serve

import (
	"context"
	"sync"
	"time"
)

// admission is the server's bounded-concurrency front door, the piece
// that reconciles ExecutorPool's "Get never blocks" contract with real
// network backpressure. The pool bounds retained memory, deliberately
// not concurrency — so without admission control a traffic burst would
// create an executor (and run a full multiplication) per in-flight
// request, and saturation would degrade into unbounded memory growth
// and queueing. admission makes the degradation predictable instead:
//
//   - at most maxInFlight requests execute concurrently (a semaphore
//     sized to the executor pool, so steady-state traffic reuses pooled
//     executors instead of growing new ones);
//   - at most maxQueue further requests wait for a slot, each bounded
//     by a per-request deadline (a zero deadline refuses to queue at
//     all: now-or-never);
//   - everything beyond that is shed immediately (HTTP 429 with
//     Retry-After), and queued requests whose deadline passes are
//     dropped (503) rather than served stale;
//   - draining rejects new and queued work (503) while in-flight
//     requests run to completion.
//
// The state machine per request, with the admitOutcome each transition
// reports:
//
//	arrive ── slot free ──────────────▶ admitted ──▶ release
//	   │
//	   ├─ draining ───────────────────▶ admitDraining (503)
//	   ├─ queue full ─────────────────▶ admitShed (429)
//	   └─ enqueue ──┬─ slot freed ────▶ admitted ──▶ release
//	                ├─ deadline ──────▶ admitExpired (503)
//	                ├─ drain begins ──▶ admitDraining (503)
//	                └─ client gone ───▶ admitCanceled
type admission struct {
	// slots holds one token per permitted concurrent execution; a
	// request owns a slot from acquire to release.
	slots       chan struct{}
	maxInFlight int
	maxQueue    int

	mu       sync.Mutex
	queued   int  // requests currently waiting for a slot
	inFlight int  // requests currently holding a slot
	draining bool // beginDrain called; drainCh closed

	// drainCh is closed by beginDrain, waking every queued waiter.
	drainCh chan struct{}
	// idleCh is closed when draining and the last in-flight request
	// releases its slot (created lazily by beginDrain).
	idleCh chan struct{}

	c admissionCounters
}

// admissionCounters are the monotonic totals /stats exposes (guarded
// by admission.mu).
type admissionCounters struct {
	admitted        uint64 // granted a slot (immediately or after queueing)
	enqueued        uint64 // had to wait for a slot
	shed            uint64 // rejected because the queue was full
	deadlineExpired uint64 // dropped from the queue at their deadline
	canceled        uint64 // dropped from the queue because the client went away
	rejectedDrain   uint64 // rejected because the server was draining
}

// admitOutcome is the result of one pass through the admission state
// machine.
type admitOutcome int

const (
	// admitted means the request owns an execution slot and must
	// release() it when done.
	admitted admitOutcome = iota
	// admitShed means the wait queue was full; shed immediately.
	admitShed
	// admitExpired means the per-request deadline passed while queued.
	admitExpired
	// admitDraining means the server is shutting down.
	admitDraining
	// admitCanceled means the client's context ended while queued.
	admitCanceled
)

// newAdmission sizes the front door: maxInFlight concurrent
// executions, maxQueue waiters.
func newAdmission(maxInFlight, maxQueue int) *admission {
	a := &admission{
		slots:       make(chan struct{}, maxInFlight),
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		drainCh:     make(chan struct{}),
	}
	for i := 0; i < maxInFlight; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire runs one request through the admission state machine. wait
// bounds the time spent queued; wait <= 0 means the request refuses to
// queue — it is admitted only if a slot is free right now, shed
// otherwise. On admitted the caller owns a slot and must release()
// exactly once.
func (a *admission) acquire(ctx context.Context, wait time.Duration) admitOutcome {
	a.mu.Lock()
	if a.draining {
		a.c.rejectedDrain++
		a.mu.Unlock()
		return admitDraining
	}
	// Fast path: a free slot admits without queueing. Taken under mu so
	// the draining check and the token grab are one atomic step.
	select {
	case <-a.slots:
		a.c.admitted++
		a.inFlight++
		a.mu.Unlock()
		return admitted
	default:
	}
	if wait <= 0 || a.queued >= a.maxQueue {
		a.c.shed++
		a.mu.Unlock()
		return admitShed
	}
	a.queued++
	a.c.enqueued++
	a.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	var out admitOutcome
	select {
	case <-a.slots:
		out = admitted
	case <-timer.C:
		out = admitExpired
	case <-a.drainCh:
		out = admitDraining
	case <-ctx.Done():
		out = admitCanceled
	}
	a.mu.Lock()
	a.queued--
	if out == admitted && a.draining {
		// The waiter raced a freed slot against the drain signal and the
		// slot won the select; drain policy still rejects it — no new
		// execution starts after beginDrain. The token goes back (the
		// channel has room: this request holds one of its tokens).
		a.slots <- struct{}{}
		out = admitDraining
	}
	switch out {
	case admitted:
		a.c.admitted++
		a.inFlight++
	case admitExpired:
		a.c.deadlineExpired++
	case admitDraining:
		a.c.rejectedDrain++
	case admitCanceled:
		a.c.canceled++
	}
	a.mu.Unlock()
	return out
}

// release returns an admitted request's slot. When the last in-flight
// request of a draining server releases, the drain completes. The
// gauge is decremented before the token frees so stats never read more
// than maxInFlight concurrent executions.
func (a *admission) release() {
	a.mu.Lock()
	a.inFlight--
	if a.draining && a.inFlight == 0 && a.idleCh != nil {
		close(a.idleCh)
		a.idleCh = nil
	}
	a.mu.Unlock()
	a.slots <- struct{}{}
}

// beginDrain moves the front door to the draining state: new arrivals
// and queued waiters are rejected with admitDraining, in-flight work
// keeps its slots. Returns a channel closed once the last in-flight
// request releases (immediately-closed when already idle). Safe to
// call more than once; later calls observe the same drain.
func (a *admission) beginDrain() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.draining {
		a.draining = true
		close(a.drainCh)
		a.idleCh = make(chan struct{})
		if a.inFlight == 0 {
			close(a.idleCh)
		}
	}
	ch := a.idleCh
	if ch == nil {
		// Drain already completed; hand back a closed channel.
		done := make(chan struct{})
		close(done)
		ch = done
	}
	return ch
}

// AdmissionStats is a point-in-time snapshot of the front door, the
// admission half of the /stats payload.
type AdmissionStats struct {
	// MaxInFlight is the execution concurrency bound (semaphore size).
	MaxInFlight int `json:"max_in_flight"`
	// MaxQueue is the wait-queue bound.
	MaxQueue int `json:"max_queue"`
	// InFlight is the number of requests currently executing.
	InFlight int `json:"in_flight"`
	// QueueDepth is the number of requests currently waiting.
	QueueDepth int `json:"queue_depth"`
	// Admitted counts requests granted an execution slot.
	Admitted uint64 `json:"admitted"`
	// Queued counts admitted-or-dropped requests that had to wait.
	Queued uint64 `json:"queued"`
	// Shed counts requests rejected because the queue was full (429).
	Shed uint64 `json:"shed"`
	// DeadlineExpired counts queued requests dropped at their deadline.
	DeadlineExpired uint64 `json:"deadline_expired"`
	// Canceled counts queued requests whose client went away.
	Canceled uint64 `json:"canceled"`
	// RejectedDraining counts requests rejected during shutdown.
	RejectedDraining uint64 `json:"rejected_draining"`
	// Draining reports whether the server is shutting down.
	Draining bool `json:"draining"`
}

// stats snapshots the admission counters.
func (a *admission) stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		MaxInFlight:      a.maxInFlight,
		MaxQueue:         a.maxQueue,
		InFlight:         a.inFlight,
		QueueDepth:       a.queued,
		Admitted:         a.c.admitted,
		Queued:           a.c.enqueued,
		Shed:             a.c.shed,
		DeadlineExpired:  a.c.deadlineExpired,
		Canceled:         a.c.canceled,
		RejectedDraining: a.c.rejectedDrain,
		Draining:         a.draining,
	}
}
