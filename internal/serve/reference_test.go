package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/serve/servetest"
)

// encodeValues renders a values-only delta body: raw little-endian
// float64 words.
func encodeValues(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// TestServeReferenceLifecycle walks the full operand-store contract
// over the wire: PUT stores and is idempotent, multiply-by-reference
// resolves and hits the plan cache, budget pressure evicts the
// operand, the dangling reference 404s naming exactly what is
// missing, and a re-PUT heals it.
func TestServeReferenceLifecycle(t *testing.T) {
	// Budget sized to hold one working set but not the filler flood:
	// the lifecycle's eviction is forced, not simulated.
	h := servetest.Start(t, New(Config{
		SessionOptions: []maskedspgemm.SessionOption{maskedspgemm.WithMemoryBudget(64 << 10)},
	}))
	g := maskedspgemm.ErdosRenyi(128, 6, 60)
	body := servetest.EncodeSerial(t, g)

	// PUT: stored, created.
	resp := h.Put("/v1/operands", body, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("put: status %d: %s", resp.Status, resp.Body)
	}
	doc := resp.JSON(t)
	if !doc.Bool("operands.0.created") {
		t.Fatal("first PUT must report created")
	}
	ref := doc.Str("operands.0.ref")
	pattern := doc.Str("operands.0.pattern")
	if doc.Int("store.puts") != 1 || doc.Int("store.operands") != 1 {
		t.Fatalf("store after first PUT: %s", resp.Body)
	}

	// Idempotent re-PUT: cheap 200, not a second resident copy.
	doc = h.Put("/v1/operands", body, nil).JSON(t)
	if doc.Bool("operands.0.created") {
		t.Fatal("re-PUT of resident content must not report created")
	}
	if doc.Str("operands.0.ref") != ref {
		t.Fatal("re-PUT changed the content address")
	}
	if doc.Int("store.reputs") != 1 || doc.Int("store.operands") != 1 {
		t.Fatalf("store after re-PUT: %s", resp.Body)
	}

	// Multiply by reference: the body is empty, the result matches the
	// library, and the second request hits the plan the first planted.
	want, err := maskedspgemm.Multiply(g.PatternView(), g, g)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := summarize(want)
	for round, wantHits := range []int64{0, 1} {
		resp = h.Post("/v1/multiply?a="+ref+"&format=summary", nil, nil)
		if resp.Status != http.StatusOK {
			t.Fatalf("by-ref round %d: status %d: %s", round, resp.Status, resp.Body)
		}
		var sum resultSummary
		if err := json.Unmarshal(resp.Body, &sum); err != nil {
			t.Fatal(err)
		}
		if sum != wantSum {
			t.Fatalf("by-ref round %d: summary %+v, want %+v", round, sum, wantSum)
		}
		stats := h.Get("/stats").JSON(t)
		if got := stats.Int("session.cache.hits"); got != wantHits {
			t.Fatalf("by-ref round %d: cache hits = %d, want %d", round, got, wantHits)
		}
		if got := stats.Int("session.cache.misses"); got != 1 {
			t.Fatalf("by-ref round %d: cache misses = %d, want 1", round, got)
		}
	}

	// Flood the budget with distinct structures: the shared budget
	// rebalances by global LRU, so the oldest content — g — is evicted.
	for seed := uint64(70); seed < 78; seed++ {
		filler := servetest.EncodeSerial(t, maskedspgemm.ErdosRenyi(128, 6, seed))
		if resp := h.Put("/v1/operands", filler, nil); resp.Status != http.StatusOK {
			t.Fatalf("filler put: status %d: %s", resp.Status, resp.Body)
		}
	}
	stats := h.Get("/stats").JSON(t)
	if stats.Int("session.store.evictions") == 0 {
		t.Fatalf("filler flood did not force eviction: %s", h.Get("/stats").Body)
	}
	if used, max := stats.Int("session.budget.used_bytes"), stats.Int("session.budget.max_bytes"); used > max {
		t.Fatalf("budget over its ceiling after rebalance: used %d > max %d", used, max)
	}

	// The dangling reference is a 404 that names the missing operands —
	// the self-mask default means both the mask structure and A.
	resp = h.Post("/v1/multiply?a="+ref+"&format=summary", nil, nil)
	if resp.Status != http.StatusNotFound {
		t.Fatalf("dangling ref: status %d, want 404: %s", resp.Status, resp.Body)
	}
	doc = resp.JSON(t)
	found := false
	for i := 0; i < doc.Len("missing"); i++ {
		p := fmt.Sprintf("missing.%d", i)
		if doc.Str(p+".operand") == "a" {
			found = true
			if got := doc.Str(p+".pattern") + ":" + doc.Str(p+".values"); got != ref {
				t.Fatalf("404 names %q, want the dangling ref %q", got, ref)
			}
		}
	}
	if !found {
		t.Fatalf("404 did not name operand a: %s", resp.Body)
	}

	// Re-PUT heals: the same bytes land under the same address and the
	// reference works again.
	doc = h.Put("/v1/operands", body, nil).JSON(t)
	if !doc.Bool("operands.0.created") || doc.Str("operands.0.ref") != ref {
		t.Fatalf("healing re-PUT: %s", resp.Body)
	}
	resp = h.Post("/v1/multiply?a="+ref+"&format=summary", nil, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("healed by-ref: status %d: %s", resp.Status, resp.Body)
	}
	_ = pattern
}

// TestServeValuesDelta pins the iterative-workload fast path: a
// values-only upload re-keys fresh numbers under the resident
// structure, and because the structure (hence every plan key) is
// unchanged, the multiply through the new reference is a guaranteed
// plan-cache hit — Hits increments, Misses does not.
func TestServeValuesDelta(t *testing.T) {
	h := servetest.Start(t, New(Config{}))
	g := maskedspgemm.ErdosRenyi(96, 6, 62)

	doc := h.Put("/v1/operands", servetest.EncodeSerial(t, g), nil).JSON(t)
	ref := doc.Str("operands.0.ref")
	pattern := doc.Str("operands.0.pattern")

	// Plant the plan through the original reference.
	resp := h.Post("/v1/multiply?a="+ref+"&format=summary", nil, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("initial by-ref: status %d: %s", resp.Status, resp.Body)
	}
	var base resultSummary
	if err := json.Unmarshal(resp.Body, &base); err != nil {
		t.Fatal(err)
	}
	before := h.Get("/stats").JSON(t)
	misses := before.Int("session.cache.misses")
	hits := before.Int("session.cache.hits")

	// Values delta: the same structure, every value doubled.
	scaled := make([]float64, len(g.Val))
	for i, v := range g.Val {
		scaled[i] = 2 * v
	}
	resp = h.Put("/v1/operands?values_for="+pattern, encodeValues(scaled), nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("values delta: status %d: %s", resp.Status, resp.Body)
	}
	doc = resp.JSON(t)
	if !doc.Bool("operands.0.created") {
		t.Fatal("fresh values must report created")
	}
	if doc.Str("operands.0.pattern") != pattern {
		t.Fatal("values delta changed the structure fingerprint")
	}
	ref2 := doc.Str("operands.0.ref")
	if ref2 == ref {
		t.Fatal("doubled values landed under the original reference")
	}

	// The multiply through the delta'd reference: correct numbers
	// (doubling A scales A·A by exactly 4) and a plan-cache hit.
	resp = h.Post("/v1/multiply?a="+ref2+"&format=summary", nil, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("delta by-ref: status %d: %s", resp.Status, resp.Body)
	}
	var got resultSummary
	if err := json.Unmarshal(resp.Body, &got); err != nil {
		t.Fatal(err)
	}
	if got.NNZ != base.NNZ || got.Sum != 4*base.Sum {
		t.Fatalf("delta summary %+v, want nnz %d and sum %g (4× the base)", got, base.NNZ, 4*base.Sum)
	}
	after := h.Get("/stats").JSON(t)
	if got := after.Int("session.cache.misses"); got != misses {
		t.Fatalf("cache misses went %d → %d; the values delta must not re-plan", misses, got)
	}
	if got := after.Int("session.cache.hits"); got != hits+1 {
		t.Fatalf("cache hits went %d → %d, want %d (delta multiply must hit)", hits, got, hits+1)
	}

	// A delta against a structure that was never uploaded is a 404
	// naming the pattern; a wrong-length delta is a 422.
	resp = h.Put("/v1/operands?values_for=00000000deadbeef", encodeValues(scaled), nil)
	if resp.Status != http.StatusNotFound {
		t.Fatalf("delta for unknown pattern: status %d, want 404: %s", resp.Status, resp.Body)
	}
	if doc := resp.JSON(t); doc.Str("missing.0.pattern") != "00000000deadbeef" {
		t.Fatalf("unknown-pattern 404 names %q", doc.Str("missing.0.pattern"))
	}
	resp = h.Put("/v1/operands?values_for="+pattern, encodeValues(scaled[:len(scaled)-1]), nil)
	if resp.Status != http.StatusUnprocessableEntity {
		t.Fatalf("wrong-length delta: status %d, want 422: %s", resp.Status, resp.Body)
	}
}

// TestServeReferenceWireBytes is the transfer-size acceptance pin: on
// the triangle-counting workload shape (the k-truss example's inner
// loop — self-masked A·A over a fixed graph), a by-reference multiply
// of warm operands must put less than 1% of the inline request's bytes
// on the wire. Both request sizes are measured on a raw socket, so the
// ratio is wire truth, not client-library accounting.
func TestServeReferenceWireBytes(t *testing.T) {
	h := servetest.Start(t, New(Config{}))
	g := maskedspgemm.ErdosRenyi(512, 8, 61)
	body := servetest.EncodeSerial(t, g)

	// Inline request: the operand rides the body; the response's
	// X-Operand-* headers hand back the references store-through filed.
	inlineBytes, resp := h.RawRequest(http.MethodPost, "/v1/multiply?format=summary", nil, body)
	if resp.Status != http.StatusOK {
		t.Fatalf("inline multiply: status %d: %s", resp.Status, resp.Body)
	}
	aRef := resp.Header.Get("X-Operand-A")
	if aRef == "" || resp.Header.Get("X-Operand-Mask") == "" || resp.Header.Get("X-Operand-B") == "" {
		t.Fatalf("inline multiply missing X-Operand-* headers: %v", resp.Header)
	}

	// Reference request: the envelope is the entire transfer.
	refBytes, resp := h.RawRequest(http.MethodPost, "/v1/multiply?format=summary&a="+aRef, nil, nil)
	if resp.Status != http.StatusOK {
		t.Fatalf("by-ref multiply: status %d: %s", resp.Status, resp.Body)
	}
	if 100*refBytes >= inlineBytes {
		t.Fatalf("reference request is %d bytes vs %d inline — not under 1%%", refBytes, inlineBytes)
	}

	// Warm-path guarantees: the by-ref request hit the plan the inline
	// request planted, and resolved its operand from the store.
	stats := h.Get("/stats").JSON(t)
	if got := stats.Int("session.cache.hits"); got < 1 {
		t.Fatalf("by-ref multiply missed the plan cache: hits = %d", got)
	}
	if got := stats.Int("session.cache.misses"); got != 1 {
		t.Fatalf("cache misses = %d, want only the inline request's plan", got)
	}
	if got := stats.Int("session.store.hits"); got < 1 {
		t.Fatalf("store hits = %d, want the by-ref resolution", got)
	}
	t.Logf("inline %d bytes, by-ref %d bytes (%.3f%%)", inlineBytes, refBytes, 100*float64(refBytes)/float64(inlineBytes))
}
