package graph

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// KTrussResult reports the outcome of the iterative k-truss pruning.
type KTrussResult struct {
	// Truss is the adjacency matrix of the k-truss subgraph (symmetric,
	// unit values).
	Truss *sparse.CSR[int64]
	// Iterations is the number of masked SpGEMM rounds until fixpoint.
	Iterations int
	// Flops is the summed unmasked multiply–add count of every masked
	// SpGEMM performed — the numerator of the paper's k-truss GFLOPS
	// metric ("sum of flops required to perform all Masked SpGEMM
	// operations divided by total time", §8.3).
	Flops int64
	// PlansReused counts iterations whose execution plan came from the
	// workload's structure-keyed cache instead of fresh analysis —
	// nonzero whenever a mask structure recurs, within or across runs.
	PlansReused int
}

// trussSR is the k-truss counting semiring.
type trussSR = semiring.PlusPair[int64]

// KTrussWorkload is a prepared graph served for k-truss queries. The
// paper's server scenario — many queries against one fixed graph —
// applies directly: every run of every k starts from the full edge
// set, so the first-iteration plan (usually the most expensive: the
// whole graph) is shared by all runs, and re-running any k replays all
// of its iterations from cache. The workload owns a structure-keyed
// plan cache and one executor; Run re-plans only when a pruned edge
// structure has genuinely never been seen.
//
// A workload is single-owner: Runs on one workload must be sequential
// (the executor is not concurrency-safe).
type KTrussWorkload struct {
	c     *sparse.CSR[int64]
	cache *core.PlanCache[int64, trussSR]
	exec  *core.Executor[int64, trussSR]
}

// ktrussCacheEntries bounds the workload's plan cache. Each pruning
// sequence contributes one entry per distinct surviving edge
// structure; 64 comfortably covers the paper's k=5 style runs while
// bounding memory on adversarial pruning chains.
const ktrussCacheEntries = 64

// PrepareKTruss validates the adjacency and returns a reusable
// workload for k-truss queries against it.
func PrepareKTruss(a *sparse.CSR[float64]) (*KTrussWorkload, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", a.Rows, a.Cols)
	}
	sr := trussSR{}
	return &KTrussWorkload{
		c:     asInt64(a),
		cache: core.NewPlanCache[int64](sr, ktrussCacheEntries, 0),
		exec:  core.NewExecutor[int64](sr),
	}, nil
}

// CacheStats reports the workload's plan-cache counters; across
// repeated Runs the hit count shows how much analysis the cache is
// absorbing.
func (w *KTrussWorkload) CacheStats() core.PlanCacheStats {
	return w.cache.Stats()
}

// Run computes the k-truss of the prepared graph: the maximal subgraph
// in which every edge is supported by at least k−2 triangles (§8.3,
// run with k=5 in the paper). Each iteration computes per-edge support
// with one masked SpGEMM, S = C ⊙ (C·C) over plus-pair, prunes
// under-supported edges, and repeats until the edge set is stable.
// Plans are drawn from the workload's cache keyed by the surviving
// edge structure, so structures already analyzed — by an earlier
// iteration, an earlier Run, or a Run with different k — execute
// without re-planning.
func (w *KTrussWorkload) Run(k int, opt core.Options) (*KTrussResult, error) {
	if k < 3 {
		return nil, fmt.Errorf("graph: k-truss needs k ≥ 3, got %d", k)
	}
	res := &KTrussResult{}
	minSupport := int64(k - 2)
	// The workload executor carries the accumulator workspaces and
	// output buffers across iterations and runs. The support matrix is
	// consumed by Select before the next execution, so pooled output
	// (ReuseOutput) is safe — requested per execution, since cached
	// plans are canonical and carry no execution-only options.
	execOpt := opt.ExecOnly()
	execOpt.ReuseOutput = true
	c := w.c
	for {
		res.Iterations++
		plan, hit, err := w.cache.GetOrPlanObserved(c.PatternView(), c, c, opt)
		if err != nil {
			return nil, err
		}
		if hit {
			res.PlansReused++
		}
		res.Flops += plan.FlopsEstimate(c, c)
		s, err := plan.ExecuteOnOpts(w.exec, c, c, execOpt)
		if err != nil {
			return nil, err
		}
		kept := sparse.Select(s, func(_ int, _ int32, support int64) bool {
			return support >= minSupport
		})
		// Edges absent from s (zero support) are pruned implicitly:
		// kept's pattern is a subset of s's, which is a subset of c's.
		for i := range kept.Val {
			kept.Val[i] = 1
		}
		if kept.NNZ() == c.NNZ() {
			res.Truss = kept
			return res, nil
		}
		// Support counting may leave the edge set asymmetric only if the
		// input was asymmetric; symmetric inputs stay symmetric because
		// support is symmetric. No re-symmetrization needed.
		c = kept
	}
}

// KTruss is the one-shot convenience form: prepare a workload, run one
// k. Iterative callers and servers should keep the workload and call
// Run, which is where the plan-cache amortization pays off.
func KTruss(a *sparse.CSR[float64], k int, opt core.Options) (*KTrussResult, error) {
	w, err := PrepareKTruss(a)
	if err != nil {
		return nil, err
	}
	return w.Run(k, opt)
}
