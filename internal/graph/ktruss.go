package graph

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// KTrussResult reports the outcome of the iterative k-truss pruning.
type KTrussResult struct {
	// Truss is the adjacency matrix of the k-truss subgraph (symmetric,
	// unit values).
	Truss *sparse.CSR[int64]
	// Iterations is the number of masked SpGEMM rounds until fixpoint.
	Iterations int
	// Flops is the summed unmasked multiply–add count of every masked
	// SpGEMM performed — the numerator of the paper's k-truss GFLOPS
	// metric ("sum of flops required to perform all Masked SpGEMM
	// operations divided by total time", §8.3).
	Flops int64
}

// KTruss computes the k-truss of an undirected graph: the maximal
// subgraph in which every edge is supported by at least k−2 triangles
// (§8.3, run with k=5 in the paper). Each iteration computes per-edge
// support with one masked SpGEMM, S = C ⊙ (C·C) over plus-pair, prunes
// under-supported edges, and repeats until the edge set is stable.
func KTruss(a *sparse.CSR[float64], k int, opt core.Options) (*KTrussResult, error) {
	if k < 3 {
		return nil, fmt.Errorf("graph: k-truss needs k ≥ 3, got %d", k)
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", a.Rows, a.Cols)
	}
	c := asInt64(a)
	res := &KTrussResult{}
	minSupport := int64(k - 2)
	// One executor carries the accumulator workspaces and output
	// buffers across iterations; the pruned edge set changes structure
	// every round, so each iteration gets its own (cheap) plan on top.
	// The support matrix is consumed by Select before the next
	// execution, so pooled output (ReuseOutput) is safe.
	sr := semiring.PlusPair[int64]{}
	exec := core.NewExecutor[int64](sr)
	iterOpt := opt
	iterOpt.ReuseOutput = true
	for {
		res.Iterations++
		plan, err := core.NewPlan(sr, c.PatternView(), c, c, iterOpt, exec)
		if err != nil {
			return nil, err
		}
		res.Flops += plan.FlopsEstimate(c, c)
		s, err := plan.Execute(c, c)
		if err != nil {
			return nil, err
		}
		kept := sparse.Select(s, func(_ int, _ int32, support int64) bool {
			return support >= minSupport
		})
		// Edges absent from s (zero support) are pruned implicitly:
		// kept's pattern is a subset of s's, which is a subset of c's.
		for i := range kept.Val {
			kept.Val[i] = 1
		}
		if kept.NNZ() == c.NNZ() {
			res.Truss = kept
			return res, nil
		}
		// Support counting may leave the edge set asymmetric only if the
		// input was asymmetric; symmetric inputs stay symmetric because
		// support is symmetric. No re-symmetrization needed.
		c = kept
	}
}
