package graph

import (
	"maskedspgemm/internal/sparse"
)

// Serial reference implementations used as test oracles. They share no
// code with the masked-SpGEMM paths they validate.

// RefTriangleCount counts triangles by summing |N⁺(i) ∩ N⁺(j)| over
// edges (i, j) with i > j > k ordering via sorted-adjacency merges.
func RefTriangleCount(a *sparse.CSR[float64]) int64 {
	var count int64
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		for _, j := range ri {
			if int(j) >= i {
				break // only edges j < i; rows are sorted
			}
			rj := a.Row(int(j))
			// Count common neighbors k with k < j (< i): each triangle
			// {k < j < i} counted exactly once.
			p, q := 0, 0
			for p < len(ri) && q < len(rj) && ri[p] < j && rj[q] < j {
				switch {
				case ri[p] < rj[q]:
					p++
				case ri[p] > rj[q]:
					q++
				default:
					count++
					p++
					q++
				}
			}
		}
	}
	return count
}

// RefEdgeSupport returns the per-edge triangle count (support) of an
// undirected graph by sorted adjacency intersection.
func RefEdgeSupport(a *sparse.CSR[float64]) *sparse.CSR[int64] {
	out := &sparse.CSR[int64]{
		Pattern: *a.Pattern.Clone(),
		Val:     make([]int64, a.NNZ()),
	}
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		base := a.RowPtr[i]
		for k, j := range ri {
			rj := a.Row(int(j))
			var support int64
			p, q := 0, 0
			for p < len(ri) && q < len(rj) {
				switch {
				case ri[p] < rj[q]:
					p++
				case ri[p] > rj[q]:
					q++
				default:
					support++
					p++
					q++
				}
			}
			out.Val[base+int64(k)] = support
		}
	}
	return out
}

// RefKTruss computes the k-truss by direct iterative support pruning.
func RefKTruss(a *sparse.CSR[float64], k int) *sparse.CSR[float64] {
	c := a.Clone()
	minSupport := int64(k - 2)
	for {
		support := RefEdgeSupport(c)
		kept := sparse.Select(c, func(i int, j int32, _ float64) bool {
			v, _ := support.At(i, j)
			return v >= minSupport
		})
		if kept.NNZ() == c.NNZ() {
			return kept
		}
		c = kept
	}
}

// RefBrandesBC runs textbook serial Brandes from each source and
// returns the summed dependencies (directed accumulation, sources'
// self-dependency excluded), matching Betweenness's convention.
func RefBrandesBC(a *sparse.CSR[float64], sources []int32) []float64 {
	n := a.Rows
	bc := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int, n)
	delta := make([]float64, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for _, s := range sources {
		for v := 0; v < n; v++ {
			sigma[v] = 0
			dist[v] = -1
			delta[v] = 0
		}
		stack = stack[:0]
		queue = queue[:0]
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range a.Row(int(v)) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range a.Row(int(w)) {
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}
