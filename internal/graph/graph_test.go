package graph

import (
	"fmt"
	"math"
	"testing"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/sparse"
)

// appAlgorithms are the schemes exercised through the applications
// (every paper scheme plus baselines; MCA is skipped where complement
// is required).
func appAlgorithms(needComplement bool) []core.Options {
	var opts []core.Options
	for _, algo := range core.Algorithms() {
		if needComplement && !core.SupportsComplement(algo) {
			continue
		}
		for _, ph := range []core.Phases{core.OnePhase, core.TwoPhase} {
			opts = append(opts, core.Options{Algorithm: algo, Phases: ph})
		}
	}
	return opts
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *sparse.CSR[float64]
		want int64
	}{
		{"K4", gen.Complete(4), 4},
		{"K5", gen.Complete(5), 10},
		{"K10", gen.Complete(10), 120},
		{"C5-ring", gen.Ring(5), 0},
		{"C3-ring", gen.Ring(3), 1},
		{"grid-8x8", gen.Grid2D(8, 8), 0},
	}
	for _, c := range cases {
		w := PrepareTriangleCount(c.g)
		for _, opt := range appAlgorithms(false) {
			got, err := w.Count(opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, opt.SchemeName(), err)
			}
			if got != c.want {
				t.Errorf("%s/%s: triangles = %d, want %d", c.name, opt.SchemeName(), got, c.want)
			}
		}
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	graphs := []struct {
		name string
		g    *sparse.CSR[float64]
	}{
		{"rmat-s8", gen.RMATSymmetric(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 9})},
		{"er-1k-d12", gen.Symmetrize(gen.ErdosRenyi(1024, 12, 10))},
		{"ba-1k-m6", gen.BarabasiAlbert(1024, 6, 11)},
	}
	for _, g := range graphs {
		want := RefTriangleCount(g.g)
		w := PrepareTriangleCount(g.g)
		for _, opt := range appAlgorithms(false) {
			got, err := w.Count(opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.name, opt.SchemeName(), err)
			}
			if got != want {
				t.Errorf("%s/%s: triangles = %d, want %d", g.name, opt.SchemeName(), got, want)
			}
		}
	}
}

func TestDegreeSortPerm(t *testing.T) {
	g := gen.BarabasiAlbert(256, 4, 5)
	perm := DegreeSortPerm(g)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("perm not a bijection: %d repeated", p)
		}
		seen[p] = true
	}
	// Degrees must be non-increasing in the new ordering.
	inv := make([]int32, len(perm))
	for old, p := range perm {
		inv[p] = int32(old)
	}
	for newID := 1; newID < len(inv); newID++ {
		if g.RowNNZ(int(inv[newID-1])) < g.RowNNZ(int(inv[newID])) {
			t.Fatalf("degree order violated at position %d", newID)
		}
	}
}

func TestKTrussKnownGraphs(t *testing.T) {
	// K5: every edge supported by 3 triangles → 5-truss is all of K5;
	// 6-truss (needs support ≥ 4) is empty.
	k5 := gen.Complete(5)
	res, err := KTruss(k5, 5, core.Options{Algorithm: core.AlgoMSA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truss.NNZ() != k5.NNZ() {
		t.Errorf("K5 5-truss: nnz = %d, want %d", res.Truss.NNZ(), k5.NNZ())
	}
	res, err = KTruss(k5, 6, core.Options{Algorithm: core.AlgoMSA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truss.NNZ() != 0 {
		t.Errorf("K5 6-truss: nnz = %d, want 0", res.Truss.NNZ())
	}
	// A ring has no triangles: 3-truss is empty.
	res, err = KTruss(gen.Ring(10), 3, core.Options{Algorithm: core.AlgoHash})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truss.NNZ() != 0 {
		t.Errorf("ring 3-truss: nnz = %d, want 0", res.Truss.NNZ())
	}
	if _, err := KTruss(k5, 2, core.Options{}); err == nil {
		t.Error("want error for k < 3")
	}
	if _, err := KTruss(gen.Random(3, 4, 2, 1), 3, core.Options{}); err == nil {
		t.Error("want error for rectangular adjacency")
	}
}

// TestKTrussWorkloadPlanReuse pins the serving fix: a persistent
// workload reuses cached plans whenever a mask structure recurs.
// Re-running the same k must replay every iteration's plan from
// cache; running a different k must at least reuse the full-graph
// first-iteration plan. Results must be identical to one-shot runs.
func TestKTrussWorkloadPlanReuse(t *testing.T) {
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 31})
	opt := core.Options{Algorithm: core.AlgoMSA}
	w, err := PrepareKTruss(g)
	if err != nil {
		t.Fatal(err)
	}
	first, err := w.Run(5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.PlansReused != 0 {
		t.Fatalf("cold run reused %d plans, want 0", first.PlansReused)
	}
	again, err := w.Run(5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.PlansReused != again.Iterations {
		t.Fatalf("repeat run reused %d/%d plans, want all", again.PlansReused, again.Iterations)
	}
	if !sparse.PatternEqual(&first.Truss.Pattern, &again.Truss.Pattern) {
		t.Fatal("repeat run changed the truss")
	}
	other, err := w.Run(4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if other.PlansReused < 1 {
		t.Fatal("different k should reuse at least the full-graph plan")
	}
	oneShot, err := KTruss(g, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.PatternEqual(&oneShot.Truss.Pattern, &other.Truss.Pattern) {
		t.Fatal("workload run differs from one-shot run")
	}
	if st := w.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("implausible cache stats %+v", st)
	}
}

func TestPrepareTriangleCountRejectsRectangular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for rectangular adjacency")
		}
	}()
	PrepareTriangleCount(gen.Random(3, 4, 2, 1))
}

func TestKTrussMatchesReference(t *testing.T) {
	graphs := []struct {
		name string
		g    *sparse.CSR[float64]
	}{
		{"rmat-s7", gen.RMATSymmetric(gen.RMATConfig{Scale: 7, EdgeFactor: 8, Seed: 21})},
		{"ba-512-m8", gen.BarabasiAlbert(512, 8, 22)},
		{"er-512-d16", gen.Symmetrize(gen.ErdosRenyi(512, 16, 23))},
	}
	for _, g := range graphs {
		for _, k := range []int{3, 4, 5} {
			want := RefKTruss(g.g, k)
			for _, opt := range appAlgorithms(false) {
				res, err := KTruss(g.g, k, opt)
				if err != nil {
					t.Fatalf("%s k=%d %s: %v", g.name, k, opt.SchemeName(), err)
				}
				if !sparse.PatternEqual(&want.Pattern, &res.Truss.Pattern) {
					t.Errorf("%s k=%d %s: truss pattern differs (nnz %d vs %d)",
						g.name, k, opt.SchemeName(), res.Truss.NNZ(), want.NNZ())
				}
				if res.Iterations < 1 || res.Flops < 0 {
					t.Errorf("%s k=%d: implausible stats %+v", g.name, k, res)
				}
			}
		}
	}
}

func bcClose(a, b []float64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > 1e-6*math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i]))) {
			return fmt.Sprintf("vertex %d: %g vs %g", i, a[i], b[i])
		}
	}
	return ""
}

func TestBetweennessMatchesBrandes(t *testing.T) {
	graphs := []struct {
		name string
		g    *sparse.CSR[float64]
	}{
		{"path-5", pathGraph(5)},
		{"ring-12", gen.Ring(12)},
		{"k6", gen.Complete(6)},
		{"grid-6x6", gen.Grid2D(6, 6)},
		{"rmat-s7", gen.RMATSymmetric(gen.RMATConfig{Scale: 7, EdgeFactor: 4, Seed: 31})},
		{"ba-200-m4", gen.BarabasiAlbert(200, 4, 32)},
	}
	for _, g := range graphs {
		n := g.g.Rows
		batch := n
		if batch > 64 {
			batch = 64
		}
		sources := BatchSources(n, batch)
		want := RefBrandesBC(g.g, sources)
		for _, opt := range appAlgorithms(true) {
			if opt.Algorithm == core.AlgoInner || opt.Algorithm == core.AlgoDotTranspose {
				// Complemented Inner is Θ(n) dots per row; keep only the
				// smallest graphs to hold test time down.
				if n > 64 {
					continue
				}
			}
			res, err := Betweenness(g.g, sources, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.name, opt.SchemeName(), err)
			}
			if d := bcClose(want, res.Centrality); d != "" {
				t.Errorf("%s/%s: centrality mismatch: %s", g.name, opt.SchemeName(), d)
			}
			if res.Depth < 1 {
				t.Errorf("%s/%s: depth = %d", g.name, opt.SchemeName(), res.Depth)
			}
		}
	}
}

// TestBetweennessCallerReuseOutput pins that a caller opting into
// pooled output buffers cannot corrupt the forward sweep, whose level
// outputs persist across executions: Betweenness must force the flag
// off there.
func TestBetweennessCallerReuseOutput(t *testing.T) {
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: 7, EdgeFactor: 4, Seed: 31})
	sources := BatchSources(g.Rows, 64)
	want := RefBrandesBC(g, sources)
	res, err := Betweenness(g, sources, core.Options{ReuseOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := bcClose(want, res.Centrality); d != "" {
		t.Errorf("ReuseOutput caller: centrality mismatch: %s", d)
	}
}

func TestBetweennessEdgeCases(t *testing.T) {
	g := gen.Ring(8)
	res, err := Betweenness(g, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Centrality {
		if v != 0 {
			t.Fatal("empty batch must give zero centrality")
		}
	}
	if _, err := Betweenness(g, []int32{99}, core.Options{}); err == nil {
		t.Error("want error for out-of-range source")
	}
	rect := gen.Random(4, 5, 2, 1)
	if _, err := Betweenness(rect, []int32{0}, core.Options{}); err == nil {
		t.Error("want error for non-square adjacency")
	}
	// Disconnected graph: two rings; sources only in the first.
	two := disjointUnion(gen.Ring(5), gen.Ring(5))
	res, err = Betweenness(two, BatchSources(5, 5), core.Options{Algorithm: core.AlgoMSA})
	if err != nil {
		t.Fatal(err)
	}
	want := RefBrandesBC(two, BatchSources(5, 5))
	if d := bcClose(want, res.Centrality); d != "" {
		t.Errorf("disconnected: %s", d)
	}
}

// pathGraph returns the path 0-1-2-…-(n-1); interior vertices have
// easily computed centrality.
func pathGraph(n int) *sparse.CSR[float64] {
	coo := sparse.NewCOO[float64](n, n, 2*(n-1))
	for i := 0; i < n-1; i++ {
		coo.Append(int32(i), int32(i+1), 1)
		coo.Append(int32(i+1), int32(i), 1)
	}
	g, err := coo.ToCSR(nil)
	if err != nil {
		panic(err)
	}
	return g
}

// disjointUnion places two graphs on disjoint vertex sets.
func disjointUnion(a, b *sparse.CSR[float64]) *sparse.CSR[float64] {
	n := a.Rows + b.Rows
	coo := sparse.NewCOO[float64](n, n, int(a.NNZ()+b.NNZ()))
	for i := 0; i < a.Rows; i++ {
		for _, j := range a.Row(i) {
			coo.Append(int32(i), j, 1)
		}
	}
	off := int32(a.Rows)
	for i := 0; i < b.Rows; i++ {
		for _, j := range b.Row(i) {
			coo.Append(int32(i)+off, j+off, 1)
		}
	}
	g, err := coo.ToCSR(nil)
	if err != nil {
		panic(err)
	}
	return g
}

func TestBetweennessPathCentrality(t *testing.T) {
	// On path 0-1-2-3-4 with all 5 sources, directed-accumulation BC of
	// vertex v is 2·(#s<v)·(#t>v) summed over orientations: interior
	// vertex 2 lies on s-t paths for (s,t) ∈ {0,1}×{3,4} both ways → 8;
	// but Brandes per-source dependency sums pair contributions once per
	// source: δ over all sources = Σ_s |{t : v on s→t path}| = for v=2:
	// s∈{0,1}: 2 each; s∈{3,4}: 2 each → 8.
	g := pathGraph(5)
	res, err := Betweenness(g, BatchSources(5, 5), core.Options{Algorithm: core.AlgoMSA})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 6, 8, 6, 0}
	if d := bcClose(want, res.Centrality); d != "" {
		t.Fatalf("path centrality: %s (got %v)", d, res.Centrality)
	}
}
