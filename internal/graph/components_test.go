package graph

import (
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/sparse"
)

func TestConnectedComponents(t *testing.T) {
	cases := []struct {
		name string
		g    *sparse.CSR[float64]
		want int
	}{
		{"ring", gen.Ring(10), 1},
		{"two-rings", disjointUnion(gen.Ring(5), gen.Ring(7)), 2},
		{"isolated", sparse.NewCSR[float64](5, 5), 5},
		{"grid", gen.Grid2D(6, 6), 1},
		{"three", disjointUnion(disjointUnion(gen.Ring(3), gen.Complete(4)), gen.Grid2D(2, 2)), 3},
	}
	for _, c := range cases {
		comp, count, err := ConnectedComponents(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if count != c.want {
			t.Errorf("%s: components = %d, want %d", c.name, count, c.want)
		}
		wantComp, wantCount := RefConnectedComponents(c.g)
		if wantCount != count {
			t.Errorf("%s: oracle count %d != %d", c.name, wantCount, count)
		}
		for v := range comp {
			if comp[v] != wantComp[v] {
				t.Errorf("%s: vertex %d labeled %d, oracle %d", c.name, v, comp[v], wantComp[v])
				break
			}
		}
	}
}

func TestConnectedComponentsRandom(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		// Sparse ER graphs at this density fragment into many
		// components.
		g := gen.Symmetrize(gen.ErdosRenyi(300, 1, seed))
		comp, count, err := ConnectedComponents(g)
		if err != nil {
			t.Fatal(err)
		}
		wantComp, wantCount := RefConnectedComponents(g)
		if count != wantCount {
			t.Fatalf("seed %d: count %d != oracle %d", seed, count, wantCount)
		}
		for v := range comp {
			if comp[v] != wantComp[v] {
				t.Fatalf("seed %d: label mismatch at %d", seed, v)
			}
		}
		// Every edge must stay within one component.
		for i := 0; i < g.Rows; i++ {
			for _, j := range g.Row(i) {
				if comp[i] != comp[j] {
					t.Fatalf("seed %d: edge (%d,%d) crosses components", seed, i, j)
				}
			}
		}
	}
}

func TestConnectedComponentsErrors(t *testing.T) {
	if _, _, err := ConnectedComponents(gen.Random(3, 4, 2, 1)); err == nil {
		t.Error("want error for rectangular adjacency")
	}
}
