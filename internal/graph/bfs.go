package graph

import (
	"fmt"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Direction-optimized breadth-first search, the application where
// masking entered sparse linear algebra (§4: "the concept of masking
// has been first applied to sparse-matrix-vector multiplication to
// implement the direction-optimized graph traversal"). The frontier is
// a sparse vector; each step computes
//
//	next = ¬visited ⊙ (frontier⊺ · A)
//
// either by *pushing* (complemented masked SpVM over the MSAC
// accumulator — scatter from frontier rows) or by *pulling* (for each
// unvisited vertex, intersect its adjacency with the frontier —
// inner-product style). The optimizer switches per level on frontier
// size, after Beamer et al.

// BFSStrategy selects the traversal mode.
type BFSStrategy int

const (
	// BFSAuto switches push/pull per level (direction optimization).
	BFSAuto BFSStrategy = iota
	// BFSPush always scatters from the frontier.
	BFSPush
	// BFSPull always gathers into unvisited vertices.
	BFSPull
)

// String names the strategy.
func (s BFSStrategy) String() string {
	switch s {
	case BFSPush:
		return "push"
	case BFSPull:
		return "pull"
	default:
		return "auto"
	}
}

// BFSResult reports levels and traversal statistics.
type BFSResult struct {
	// Level[v] is the BFS depth of v, or -1 if unreached.
	Level []int32
	// Depth is the number of levels traversed (max level + 1).
	Depth int
	// PushLevels and PullLevels count how each level was executed —
	// the observable effect of direction optimization.
	PushLevels, PullLevels int
}

// BFS runs (direction-optimized) breadth-first search from the given
// sources over a square adjacency matrix. For directed graphs the
// traversal follows out-edges in push mode; pull mode requires a
// symmetric adjacency (the usual case for the benchmarks) and the
// function rejects asymmetric inputs when pulling could be selected.
func BFS(a *sparse.CSR[float64], sources []int32, strategy BFSStrategy) (*BFSResult, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", a.Rows, a.Cols)
	}
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	frontier := sparse.NewVector[float64](n)
	visited := make([]int32, 0, n) // sorted visited set = the mask
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", s, n)
		}
		if level[s] < 0 {
			level[s] = 0
			frontier.Idx = append(frontier.Idx, s)
			frontier.Val = append(frontier.Val, 1)
		}
	}
	sortInt32(frontier.Idx)
	frontier.Val = frontier.Val[:len(frontier.Idx)]
	visited = append(visited, frontier.Idx...)

	res := &BFSResult{Level: level}
	sr := semiring.PlusTimes[float64]{}
	// One executor pools the push-step accumulator (the O(n) MSAC
	// arrays) and scratch across levels instead of reallocating per
	// level.
	exec := core.NewExecutor[float64](sr)
	depth := int32(0)
	var edgesFromVisited int64
	for _, v := range visited {
		edgesFromVisited += int64(a.RowNNZ(int(v)))
	}
	totalEdges := a.NNZ()
	for frontier.NNZ() > 0 {
		depth++
		// Direction choice, Beamer-style: pull when the frontier's
		// out-edges are a large fraction of the unexplored edges.
		usePull := strategy == BFSPull
		if strategy == BFSAuto {
			var frontierEdges int64
			for _, v := range frontier.Idx {
				frontierEdges += int64(a.RowNNZ(int(v)))
			}
			remaining := totalEdges - edgesFromVisited
			usePull = remaining > 0 && frontierEdges*14 > remaining
		}
		var next *sparse.Vector[float64]
		if usePull {
			res.PullLevels++
			next = bfsPullStep(a, frontier, visited)
		} else {
			res.PushLevels++
			var err error
			next, err = core.MaskedSpVMWith(exec, visited, frontier, a,
				core.Options{Algorithm: core.AlgoMSA, Complement: true})
			if err != nil {
				return nil, err
			}
		}
		if next.NNZ() == 0 {
			break
		}
		for _, v := range next.Idx {
			level[v] = depth
			edgesFromVisited += int64(a.RowNNZ(int(v)))
		}
		visited = mergeSorted(visited, next.Idx)
		frontier = next
	}
	res.Depth = int(depth)
	if res.Depth == 0 && len(sources) > 0 {
		res.Depth = 1 // sources alone form level 0
	} else {
		res.Depth++
	}
	return res, nil
}

// bfsPullStep finds unvisited vertices adjacent to the frontier by
// intersecting each candidate's adjacency with the frontier — the
// pull direction, an inner-product per unvisited vertex (§4.1's
// access pattern). Assumes a symmetric adjacency.
func bfsPullStep(a *sparse.CSR[float64], frontier *sparse.Vector[float64], visited []int32) *sparse.Vector[float64] {
	next := sparse.NewVector[float64](a.Rows)
	vi := 0
	for v := 0; v < a.Rows; v++ {
		for vi < len(visited) && int(visited[vi]) < v {
			vi++
		}
		if vi < len(visited) && int(visited[vi]) == v {
			continue // already visited
		}
		if intersectsSorted(a.Row(v), frontier.Idx) {
			next.Idx = append(next.Idx, int32(v))
			next.Val = append(next.Val, 1)
		}
	}
	return next
}

// intersectsSorted reports whether two sorted index sets share an
// element (early exit on first hit, like the symbolic dot product).
func intersectsSorted(a, b []int32) bool {
	p, q := 0, 0
	for p < len(a) && q < len(b) {
		switch {
		case a[p] < b[q]:
			p++
		case a[p] > b[q]:
			q++
		default:
			return true
		}
	}
	return false
}

// mergeSorted merges two sorted duplicate-free sets (the second
// disjoint from the first by construction).
func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	p, q := 0, 0
	for p < len(a) && q < len(b) {
		if a[p] <= b[q] {
			out = append(out, a[p])
			p++
		} else {
			out = append(out, b[q])
			q++
		}
	}
	out = append(out, a[p:]...)
	out = append(out, b[q:]...)
	return out
}

// sortInt32 sorts a small slice in place (insertion sort; BFS source
// lists are short).
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// RefBFS is the queue-based oracle.
func RefBFS(a *sparse.CSR[float64], sources []int32) []int32 {
	n := a.Rows
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	queue := make([]int32, 0, n)
	for _, s := range sources {
		if level[s] < 0 {
			level[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range a.Row(int(v)) {
			if level[w] < 0 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return level
}
