package graph

import (
	"fmt"

	"maskedspgemm/internal/sparse"
)

// ConnectedComponents labels the connected components of an undirected
// graph by sweeping direction-optimized BFS over unvisited vertices —
// a composite consumer of the masked-SpVM traversal machinery.
// Returns the component id of each vertex (ids are dense, assigned in
// discovery order) and the component count.
func ConnectedComponents(a *sparse.CSR[float64]) ([]int32, int, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, 0, fmt.Errorf("graph: adjacency must be square, got %dx%d", a.Rows, a.Cols)
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	id := int32(0)
	for {
		// Find the next unlabeled vertex.
		for next < n && comp[next] >= 0 {
			next++
		}
		if next >= n {
			break
		}
		res, err := BFS(a, []int32{int32(next)}, BFSAuto)
		if err != nil {
			return nil, 0, err
		}
		for v, l := range res.Level {
			if l >= 0 {
				comp[v] = id
			}
		}
		id++
	}
	return comp, int(id), nil
}

// RefConnectedComponents is the union-find oracle.
func RefConnectedComponents(a *sparse.CSR[float64]) ([]int32, int) {
	n := a.Rows
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for _, j := range a.Row(i) {
			ri, rj := find(int32(i)), find(j)
			if ri != rj {
				parent[ri] = rj
			}
		}
	}
	// Relabel roots densely in first-seen order to match
	// ConnectedComponents' discovery-order ids.
	label := make(map[int32]int32)
	comp := make([]int32, n)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		if _, ok := label[r]; !ok {
			label[r] = int32(len(label))
		}
		comp[i] = label[r]
	}
	return comp, len(label)
}
