package graph

import (
	"fmt"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// BCResult is the outcome of a batched betweenness-centrality run.
type BCResult struct {
	// Centrality[v] is the accumulated dependency of v over the source
	// batch (directed Brandes accumulation on the given adjacency; for
	// undirected graphs, conventional BC is half of this when summed
	// over all sources).
	Centrality []float64
	// Depth is the number of BFS levels of the deepest source.
	Depth int
	// MaskedTime is the time spent inside masked SpGEMM calls only —
	// the quantity the paper's §8.4 benchmark measures.
	MaskedTime time.Duration
	// Flops is the summed unmasked flop count of those masked products.
	Flops int64
}

// Betweenness runs the two-stage batched Brandes algorithm of §8.4
// (after Brandes and the GraphBLAS multi-source formulation): a forward
// sweep counting shortest paths with a *complemented* masked SpGEMM per
// level, and a backward sweep accumulating dependencies with a plain
// masked SpGEMM per level. sources is the batch (the paper uses 512).
func Betweenness(a *sparse.CSR[float64], sources []int32, opt core.Options) (*BCResult, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", a.Rows, a.Cols)
	}
	b := len(sources)
	if b == 0 {
		return &BCResult{Centrality: make([]float64, n)}, nil
	}
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", s, n)
		}
	}
	sr := semiring.PlusTimes[float64]{}
	res := &BCResult{}

	// Frontier F and path counts NumSP are b×n: row r tracks source
	// sources[r].
	frontier := frontierFromSources(n, sources)
	numSP := frontier.Clone()
	// levels[d] is the frontier at depth d (σ values on its pattern).
	levels := []*sparse.CSR[float64]{frontier}

	// One executor pools the accumulator workspaces across every level
	// of both sweeps; the frontier/mask structure changes per level, so
	// each level builds a fresh plan on top. Plan construction is timed
	// with the execution: it is part of the masked product's cost (the
	// analysis the one-shot path would do internally).
	exec := core.NewExecutor[float64](sr)

	// Forward: F ← ¬NumSP ⊙ (F · A); NumSP += F. The output of each
	// level persists (as the next frontier and in levels), so the
	// forward sweep must not use pooled output buffers — force the flag
	// off in case the caller opted in for the consumed-per-level parts.
	fwdOpt := withComplement(opt, true)
	fwdOpt.ReuseOutput = false
	at := sparse.Transpose(a) // backward sweep multiplies by Aᵀ
	for {
		start := time.Now()
		plan, err := core.NewPlan(sr, numSP.PatternView(), frontier, a, fwdOpt, exec)
		if err != nil {
			return nil, err
		}
		next, err := plan.Execute(frontier, a)
		res.MaskedTime += time.Since(start)
		if err != nil {
			return nil, err
		}
		res.Flops += plan.FlopsEstimate(frontier, a)
		if next.NNZ() == 0 {
			break
		}
		numSP, err = sparse.EWiseAddParallel(numSP, next, func(x, y float64) float64 { return x + y }, opt.Threads)
		if err != nil {
			return nil, err
		}
		levels = append(levels, next)
		frontier = next
	}
	res.Depth = len(levels)

	// Backward: dependency accumulation, deepest level first.
	//   t1 = S_d ⊙ (1 + BCU) ⊘ NumSP     (sparse, pattern exactly S_d)
	//   t2 = S_{d-1} ⊙ (t1 · Aᵀ)          (plain masked SpGEMM)
	//   t3 = t2 ⊗ NumSP
	//   BCU += t3
	// t2 is consumed by the element-wise ops before the next level's
	// execution, so the backward sweep can use pooled output buffers.
	backOpt := withComplement(opt, false)
	backOpt.ReuseOutput = true
	bcu := sparse.NewCSR[float64](b, n)
	for d := len(levels) - 1; d >= 1; d-- {
		t1 := buildT1(levels[d], bcu, numSP)
		start := time.Now()
		plan, err := core.NewPlan(sr, levels[d-1].PatternView(), t1, at, backOpt, exec)
		if err != nil {
			return nil, err
		}
		t2, err := plan.Execute(t1, at)
		res.MaskedTime += time.Since(start)
		if err != nil {
			return nil, err
		}
		res.Flops += plan.FlopsEstimate(t1, at)
		t3, err := sparse.EWiseMultParallel(t2, numSP, func(x, y float64) float64 { return x * y }, opt.Threads)
		if err != nil {
			return nil, err
		}
		bcu, err = sparse.EWiseAddParallel(bcu, t3, func(x, y float64) float64 { return x + y }, opt.Threads)
		if err != nil {
			return nil, err
		}
	}

	// Sources must not accumulate their own dependency (Brandes adds
	// δ(w) to BC(w) only for w ≠ s).
	for r, s := range sources {
		zeroEntry(bcu, r, s)
	}
	res.Centrality = sparse.ReduceCols(bcu, 0, func(x, y float64) float64 { return x + y })
	return res, nil
}

// withComplement returns opt with the complement flag forced, guarding
// against callers pre-setting it.
func withComplement(opt core.Options, complement bool) core.Options {
	opt.Complement = complement
	return opt
}

// frontierFromSources builds the initial b×n frontier with F[r,
// sources[r]] = 1.
func frontierFromSources(n int, sources []int32) *sparse.CSR[float64] {
	b := len(sources)
	f := &sparse.CSR[float64]{
		Pattern: sparse.Pattern{Rows: b, Cols: n, RowPtr: make([]int64, b+1)},
		Val:     make([]float64, b),
	}
	f.ColIdx = make([]int32, b)
	for r, s := range sources {
		f.ColIdx[r] = s
		f.Val[r] = 1
		f.RowPtr[r+1] = int64(r + 1)
	}
	return f
}

// buildT1 computes t1 = S_d ⊙ (1 + BCU) ⊘ NumSP: the pattern is exactly
// level's, BCU entries default to 0 when absent, and NumSP is
// guaranteed to cover level's pattern (every discovered vertex has a
// path count). A three-way sorted merge per row, parallel over rows.
func buildT1(level, bcu, numSP *sparse.CSR[float64]) *sparse.CSR[float64] {
	out := &sparse.CSR[float64]{
		Pattern: *level.Pattern.Clone(),
		Val:     make([]float64, level.NNZ()),
	}
	parallel.ForEachRow(level.Rows, 0, parallel.DefaultGrain, func(r, _ int) {
		lc := level.Row(r)
		bc, bv := bcu.Row(r), bcu.RowVals(r)
		nc, nv := numSP.Row(r), numSP.RowVals(r)
		bi, ni := 0, 0
		base := level.RowPtr[r]
		for k, j := range lc {
			for bi < len(bc) && bc[bi] < j {
				bi++
			}
			delta := 0.0
			if bi < len(bc) && bc[bi] == j {
				delta = bv[bi]
			}
			for ni < len(nc) && nc[ni] < j {
				ni++
			}
			sigma := 1.0
			if ni < len(nc) && nc[ni] == j {
				sigma = nv[ni]
			}
			out.Val[base+int64(k)] = (1 + delta) / sigma
		}
	})
	return out
}

// zeroEntry sets the stored value at (i, j) to zero if present.
func zeroEntry(a *sparse.CSR[float64], i int, j int32) {
	row := a.Row(i)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == j {
		a.RowVals(i)[lo] = 0
	}
}

// BatchSources returns batch sources 0..batch-1 (clamped to n),
// matching the paper's fixed-batch benchmarking setup.
func BatchSources(n, batch int) []int32 {
	if batch > n {
		batch = n
	}
	s := make([]int32, batch)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}
