package graph

import (
	"fmt"
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/sparse"
)

func levelsEqual(a, b []int32) string {
	if len(a) != len(b) {
		return fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("vertex %d: level %d vs %d", i, a[i], b[i])
		}
	}
	return ""
}

func TestBFSMatchesReference(t *testing.T) {
	graphs := []struct {
		name string
		g    *sparse.CSR[float64]
	}{
		{"path", pathGraph(20)},
		{"ring", gen.Ring(17)},
		{"grid", gen.Grid2D(12, 12)},
		{"rmat", gen.RMATSymmetric(gen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 41})},
		{"ba", gen.BarabasiAlbert(400, 4, 42)},
		{"two-components", disjointUnion(gen.Ring(7), gen.Grid2D(5, 5))},
	}
	for _, g := range graphs {
		for _, sources := range [][]int32{{0}, {0, 3}, {int32(g.g.Rows - 1)}} {
			want := RefBFS(g.g, sources)
			for _, strat := range []BFSStrategy{BFSAuto, BFSPush, BFSPull} {
				res, err := BFS(g.g, sources, strat)
				if err != nil {
					t.Fatalf("%s/%v: %v", g.name, strat, err)
				}
				if d := levelsEqual(want, res.Level); d != "" {
					t.Errorf("%s/%v sources=%v: %s", g.name, strat, sources, d)
				}
			}
		}
	}
}

func TestBFSDirectionSwitching(t *testing.T) {
	// On a dense-ish small-diameter graph, auto mode should pull at
	// least once after the frontier explodes.
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: 10, EdgeFactor: 16, Seed: 43})
	res, err := BFS(g, []int32{0}, BFSAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.PullLevels == 0 {
		t.Log("auto BFS never pulled (acceptable on this topology, but unexpected)")
	}
	push, err := BFS(g, []int32{0}, BFSPush)
	if err != nil {
		t.Fatal(err)
	}
	if push.PullLevels != 0 {
		t.Error("BFSPush must not pull")
	}
	pull, err := BFS(g, []int32{0}, BFSPull)
	if err != nil {
		t.Fatal(err)
	}
	if pull.PushLevels != 0 {
		t.Error("BFSPull must not push")
	}
	if d := levelsEqual(push.Level, pull.Level); d != "" {
		t.Errorf("push and pull disagree: %s", d)
	}
}

func TestBFSEdgeCases(t *testing.T) {
	g := gen.Ring(8)
	// No sources: nothing reached.
	res, err := BFS(g, nil, BFSAuto)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Level {
		if l != -1 {
			t.Fatal("vertex reached without sources")
		}
	}
	// Duplicate sources are fine.
	res, err = BFS(g, []int32{2, 2, 2}, BFSAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level[2] != 0 {
		t.Error("source level must be 0")
	}
	if _, err := BFS(g, []int32{-1}, BFSAuto); err == nil {
		t.Error("want error for negative source")
	}
	if _, err := BFS(gen.Random(3, 4, 2, 1), []int32{0}, BFSAuto); err == nil {
		t.Error("want error for rectangular adjacency")
	}
	// Isolated source: depth 1, only itself at level 0.
	iso := disjointUnion(gen.Ring(5), ringless(1))
	res, err = BFS(iso, []int32{5}, BFSAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level[5] != 0 || res.Level[0] != -1 {
		t.Errorf("isolated-source levels wrong: %v", res.Level)
	}
}

// ringless returns n isolated vertices.
func ringless(n int) *sparse.CSR[float64] {
	return sparse.NewCSR[float64](n, n)
}

func TestMergeSortedAndHelpers(t *testing.T) {
	got := mergeSorted([]int32{1, 4, 9}, []int32{2, 3, 10})
	want := []int32{1, 2, 3, 4, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeSorted = %v", got)
		}
	}
	if !intersectsSorted([]int32{1, 5, 9}, []int32{2, 5}) {
		t.Error("intersectsSorted missed a hit")
	}
	if intersectsSorted([]int32{1, 3}, []int32{2, 4}) {
		t.Error("intersectsSorted false positive")
	}
	s := []int32{5, 1, 3}
	sortInt32(s)
	if s[0] != 1 || s[1] != 3 || s[2] != 5 {
		t.Errorf("sortInt32 = %v", s)
	}
}
