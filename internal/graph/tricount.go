// Package graph implements the paper's three benchmark applications
// (§8): triangle counting, k-truss, and batched betweenness centrality,
// each expressed GraphBLAS-style with masked SpGEMM at the core, plus
// serial reference implementations used as test oracles.
package graph

import (
	"fmt"
	"sort"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// DegreeSortPerm returns the relabeling permutation that orders vertices
// by non-increasing degree (ties by original id), which §8.2 notes is
// required for optimal triangle-counting performance. perm[v] is the new
// id of vertex v.
func DegreeSortPerm(a *sparse.CSR[float64]) []int32 {
	n := a.Rows
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(x, y int) bool {
		dx := a.RowNNZ(int(order[x]))
		dy := a.RowNNZ(int(order[y]))
		if dx != dy {
			return dx > dy
		}
		return order[x] < order[y]
	})
	perm := make([]int32, n)
	for newID, old := range order {
		perm[old] = int32(newID)
	}
	return perm
}

// TCWorkload is a prepared triangle-counting input: the strictly lower
// triangular part L of the degree-relabeled adjacency matrix. Preparing
// once lets benchmarks time only the masked multiplication, as the
// paper does ("we only report the Masked SpGEMM execution time", §8.2).
type TCWorkload struct {
	// L is tril(P·A·Pᵀ) for the degree-sorting permutation P, with unit
	// int64 values for the counting semiring.
	L *sparse.CSR[int64]
}

// PrepareTriangleCount relabels the graph by non-increasing degree and
// extracts the lower triangle. The adjacency must be square; triangle
// counts are meaningful when it is also symmetric (undirected).
func PrepareTriangleCount(a *sparse.CSR[float64]) *TCWorkload {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("graph: triangle counting needs a square adjacency, got %dx%d", a.Rows, a.Cols))
	}
	perm := DegreeSortPerm(a)
	relabeled := sparse.PermuteSym(a, perm)
	return &TCWorkload{L: asInt64(sparse.Tril(relabeled))}
}

// Count runs the masked multiplication C = L ⊙ (L·L) over the plus-pair
// semiring and reduces: sum(C) is the triangle count (§8.2).
func (w *TCWorkload) Count(opt core.Options) (int64, error) {
	c, err := core.MaskedSpGEMM(semiring.PlusPair[int64]{}, w.L.PatternView(), w.L, w.L, opt)
	if err != nil {
		return 0, err
	}
	return sparse.Reduce(c, 0, func(x, y int64) int64 { return x + y }), nil
}

// TCPlan is a prepared execution plan for the workload's masked
// product; TCExecutor is the matching pooled-workspace executor.
type (
	TCPlan     = core.Plan[int64, semiring.PlusPair[int64]]
	TCExecutor = core.Executor[int64, semiring.PlusPair[int64]]
)

// NewPlan analyzes the workload's masked product once so repeated
// counts (benchmark repetitions, served traffic) skip re-validation,
// re-analysis, and — with exec's pooled workspaces — steady-state
// allocation. exec may be nil for a private executor. opt is passed
// through unmodified; CountWith consumes the product before returning,
// so callers that only count may set opt.ReuseOutput for pooled output
// buffers.
func (w *TCWorkload) NewPlan(opt core.Options, exec *TCExecutor) (*TCPlan, error) {
	return core.NewPlan(semiring.PlusPair[int64]{}, w.L.PatternView(), w.L, w.L, opt, exec)
}

// CountWith executes a prepared plan and reduces to the triangle
// count.
func (w *TCWorkload) CountWith(p *TCPlan) (int64, error) {
	c, err := p.Execute(w.L, w.L)
	if err != nil {
		return 0, err
	}
	return sparse.Reduce(c, 0, func(x, y int64) int64 { return x + y }), nil
}

// Flops returns the multiply–add count of the unmasked L·L product, the
// normalizer for the paper's GFLOPS rates (Fig 10).
func (w *TCWorkload) Flops() int64 {
	return core.Flops(w.L, w.L)
}

// asInt64 reinterprets a unit-valued float adjacency as int64 pattern
// values; counting semirings never read the input values (PlusPair's
// Mul ignores them), so only the pattern must be preserved.
func asInt64(a *sparse.CSR[float64]) *sparse.CSR[int64] {
	out := &sparse.CSR[int64]{Pattern: a.Pattern, Val: make([]int64, len(a.Val))}
	for i := range out.Val {
		out.Val[i] = 1
	}
	return out
}

// TriangleCount is the convenience one-shot: prepare + count.
func TriangleCount(a *sparse.CSR[float64], opt core.Options) (int64, error) {
	return PrepareTriangleCount(a).Count(opt)
}
