package serial

import (
	"bytes"
	"path/filepath"
	"testing"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/sparse"
)

func TestRoundTrip(t *testing.T) {
	matrices := []*sparse.CSR[float64]{
		gen.ErdosRenyi(100, 8, 1),
		gen.RMATSymmetric(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 2}),
		sparse.NewCSR[float64](5, 7), // empty
		gen.Random(1, 1, 1, 3),       // 1x1
	}
	for i, m := range matrices {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("matrix %d: %v", i, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("matrix %d: %v", i, err)
		}
		if !sparse.EqualFunc(m, back, func(x, y float64) bool { return x == y }) {
			t.Fatalf("matrix %d: round trip mismatch", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	// Bad magic.
	if _, err := Read(bytes.NewReader([]byte("XXXX12345678901234567890123456789"))); err == nil {
		t.Error("want error for bad magic")
	}
	// Truncated header.
	if _, err := Read(bytes.NewReader([]byte("MS"))); err == nil {
		t.Error("want error for short header")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := Write(&buf, gen.ErdosRenyi(20, 4, 4)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Error("want error for truncated body")
	}
	// Wrong version.
	bad := append([]byte(nil), full...)
	bad[4] = 99
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("want error for wrong version")
	}
	// Corrupt structure (unsorted column indices) must fail validation.
	corrupt := append([]byte(nil), full...)
	// ColIdx starts after magic+header+rowptr; swap the first two
	// column entries of a row with ≥ 2 entries by brute force: flip
	// bytes until Validate fails or we run out — simplest: corrupt one
	// colidx byte to a huge value.
	off := 4 + 4 + 24 + 8*21 // magic+ver+dims + rowptr(21 entries)
	corrupt[off+3] = 0x7f    // column index becomes enormous
	if _, err := Read(bytes.NewReader(corrupt)); err == nil {
		t.Error("want error for corrupt column index")
	}
}

func TestFileAndCached(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.bin")
	m := gen.ErdosRenyi(50, 6, 5)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(m, back, func(x, y float64) bool { return x == y }) {
		t.Fatal("file round trip mismatch")
	}

	builds := 0
	cachePath := filepath.Join(dir, "cache.bin")
	build := func() *sparse.CSR[float64] {
		builds++
		return gen.ErdosRenyi(30, 4, 6)
	}
	c1, err := Cached(cachePath, build)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Cached(cachePath, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Errorf("build called %d times, want 1", builds)
	}
	if !sparse.EqualFunc(c1, c2, func(x, y float64) bool { return x == y }) {
		t.Error("cached copies differ")
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.bin")); err == nil {
		t.Error("want error for missing file")
	}
}
