// Package serial provides a fast little-endian binary codec for CSR
// matrices — the cache format for large generated benchmark inputs,
// where Matrix Market's decimal round trip costs more than the graph
// generation itself. The format is versioned and self-describing:
//
//	magic "MSPG" | version u32 | rows u64 | cols u64 | nnz u64
//	rowptr [rows+1]u64 | colidx [nnz]u32 | val [nnz]f64
package serial

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"maskedspgemm/internal/sparse"
)

const (
	magic   = "MSPG"
	version = 1
)

// Write encodes a float64 CSR matrix.
func Write(w io.Writer, m *sparse.CSR[float64]) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(m.Cols))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(m.NNZ()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [8]byte
	for _, p := range m.RowPtr {
		binary.LittleEndian.PutUint64(buf[:], uint64(p))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, j := range m.ColIdx {
		binary.LittleEndian.PutUint32(buf[:4], uint32(j))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a matrix written by Write, validating structure before
// returning.
func Read(r io.Reader) (*sparse.CSR[float64], error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, 4+4+8+8+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("serial: short header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("serial: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, fmt.Errorf("serial: unsupported version %d", v)
	}
	rows := binary.LittleEndian.Uint64(head[8:])
	cols := binary.LittleEndian.Uint64(head[16:])
	nnz := binary.LittleEndian.Uint64(head[24:])
	const sanity = 1 << 40
	if rows > sanity || cols > sanity || nnz > sanity {
		return nil, fmt.Errorf("serial: implausible header rows=%d cols=%d nnz=%d", rows, cols, nnz)
	}
	// The arrays are grown as bytes actually arrive, never allocated to
	// the header's declared size up front: a hostile (or fuzzed) header
	// promising 2^39 rows against a 40-byte body must fail with a short
	// read, not attempt a terabyte allocation.
	m := &sparse.CSR[float64]{
		Pattern: sparse.Pattern{
			Rows:   int(rows),
			Cols:   int(cols),
			RowPtr: make([]int64, 0, prealloc(rows+1)),
			ColIdx: make([]int32, 0, prealloc(nnz)),
		},
		Val: make([]float64, 0, prealloc(nnz)),
	}
	err := readChunked(br, rows+1, 8, "rowptr", func(chunk []byte) {
		for off := 0; off < len(chunk); off += 8 {
			m.RowPtr = append(m.RowPtr, int64(binary.LittleEndian.Uint64(chunk[off:])))
		}
	})
	if err != nil {
		return nil, err
	}
	err = readChunked(br, nnz, 4, "colidx", func(chunk []byte) {
		for off := 0; off < len(chunk); off += 4 {
			m.ColIdx = append(m.ColIdx, int32(binary.LittleEndian.Uint32(chunk[off:])))
		}
	})
	if err != nil {
		return nil, err
	}
	err = readChunked(br, nnz, 8, "values", func(chunk []byte) {
		for off := 0; off < len(chunk); off += 8 {
			m.Val = append(m.Val, math.Float64frombits(binary.LittleEndian.Uint64(chunk[off:])))
		}
	})
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("serial: corrupt matrix: %w", err)
	}
	return m, nil
}

// preallocWords caps how much array capacity a header's declared size
// may reserve before any payload bytes have been read (1 Mi words;
// larger matrices grow by append as their bytes arrive).
const preallocWords = 1 << 20

// prealloc clamps a declared element count to the pre-read capacity cap.
func prealloc(n uint64) int {
	if n > preallocWords {
		return preallocWords
	}
	return int(n)
}

// readChunked streams count fixed-width words through emit in bounded
// chunks, so decode memory tracks delivered bytes rather than declared
// counts. The chunk size is a multiple of every word width used here.
func readChunked(br io.Reader, count uint64, width int, what string, emit func(chunk []byte)) error {
	buf := make([]byte, 1<<16)
	remaining := count * uint64(width)
	for remaining > 0 {
		n := uint64(len(buf))
		if n > remaining {
			n = remaining
		}
		if _, err := io.ReadFull(br, buf[:n]); err != nil {
			return fmt.Errorf("serial: short %s: %w", what, err)
		}
		emit(buf[:n])
		remaining -= n
	}
	return nil
}

// WriteFile writes a matrix to disk.
func WriteFile(path string, m *sparse.CSR[float64]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a matrix from disk.
func ReadFile(path string) (*sparse.CSR[float64], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Cached returns the matrix stored at path, generating and caching it
// on a miss — the memoization helper the big benchmark sweeps use.
func Cached(path string, build func() *sparse.CSR[float64]) (*sparse.CSR[float64], error) {
	if m, err := ReadFile(path); err == nil {
		return m, nil
	}
	m := build()
	if err := WriteFile(path, m); err != nil {
		return nil, err
	}
	return m, nil
}
