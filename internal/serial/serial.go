// Package serial provides a fast little-endian binary codec for CSR
// matrices — the cache format for large generated benchmark inputs,
// where Matrix Market's decimal round trip costs more than the graph
// generation itself. The format is versioned and self-describing:
//
//	magic "MSPG" | version u32 | rows u64 | cols u64 | nnz u64
//	rowptr [rows+1]u64 | colidx [nnz]u32 | val [nnz]f64
package serial

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"maskedspgemm/internal/sparse"
)

const (
	magic   = "MSPG"
	version = 1
)

// Write encodes a float64 CSR matrix.
func Write(w io.Writer, m *sparse.CSR[float64]) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(m.Cols))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(m.NNZ()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [8]byte
	for _, p := range m.RowPtr {
		binary.LittleEndian.PutUint64(buf[:], uint64(p))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, j := range m.ColIdx {
		binary.LittleEndian.PutUint32(buf[:4], uint32(j))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a matrix written by Write, validating structure before
// returning.
func Read(r io.Reader) (*sparse.CSR[float64], error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, 4+4+8+8+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("serial: short header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("serial: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, fmt.Errorf("serial: unsupported version %d", v)
	}
	rows := binary.LittleEndian.Uint64(head[8:])
	cols := binary.LittleEndian.Uint64(head[16:])
	nnz := binary.LittleEndian.Uint64(head[24:])
	const sanity = 1 << 40
	if rows > sanity || cols > sanity || nnz > sanity {
		return nil, fmt.Errorf("serial: implausible header rows=%d cols=%d nnz=%d", rows, cols, nnz)
	}
	m := &sparse.CSR[float64]{
		Pattern: sparse.Pattern{
			Rows:   int(rows),
			Cols:   int(cols),
			RowPtr: make([]int64, rows+1),
			ColIdx: make([]int32, nnz),
		},
		Val: make([]float64, nnz),
	}
	buf := make([]byte, 8*(rows+1))
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("serial: short rowptr: %w", err)
	}
	for i := range m.RowPtr {
		m.RowPtr[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	buf = make([]byte, 4*nnz)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("serial: short colidx: %w", err)
	}
	for i := range m.ColIdx {
		m.ColIdx[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	buf = make([]byte, 8*nnz)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("serial: short values: %w", err)
	}
	for i := range m.Val {
		m.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("serial: corrupt matrix: %w", err)
	}
	return m, nil
}

// WriteFile writes a matrix to disk.
func WriteFile(path string, m *sparse.CSR[float64]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a matrix from disk.
func ReadFile(path string) (*sparse.CSR[float64], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Cached returns the matrix stored at path, generating and caching it
// on a miss — the memoization helper the big benchmark sweeps use.
func Cached(path string, build func() *sparse.CSR[float64]) (*sparse.CSR[float64], error) {
	if m, err := ReadFile(path); err == nil {
		return m, nil
	}
	m := build()
	if err := WriteFile(path, m); err != nil {
		return nil, err
	}
	return m, nil
}
