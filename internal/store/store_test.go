package store

import (
	"errors"
	"testing"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/sparse"
)

// TestRefWireRoundTrip pins the reference wire form: String and
// ParseRef are inverses, and malformed refs are rejected.
func TestRefWireRoundTrip(t *testing.T) {
	m := gen.ErdosRenyi(32, 4, 1)
	ref := RefOf(m)
	if ref.Pattern != m.Pattern.Fingerprint() || ref.Values != sparse.ValuesFingerprint(m.Val) {
		t.Fatal("RefOf does not pair the two fingerprints")
	}
	s := ref.String()
	if len(s) != 33 {
		t.Fatalf("wire form %q, want 16+1+16 chars", s)
	}
	back, err := ParseRef(s)
	if err != nil || back != ref {
		t.Fatalf("round trip %q → %v, %v", s, back, err)
	}
	for _, bad := range []string{"", "0123", "xyz:0123", "0123:xyz", ":", "fffffffffffffffff:0"} {
		if _, err := ParseRef(bad); err == nil {
			t.Fatalf("ParseRef(%q) accepted", bad)
		}
	}
}

// TestStorePutIdempotent pins the content-address contract: identical
// bytes land on the resident entry, distinct content gets its own.
func TestStorePutIdempotent(t *testing.T) {
	s := New(nil)
	g := gen.ErdosRenyi(48, 4, 2)
	ref, created := s.Put(g)
	if !created {
		t.Fatal("first put must create")
	}
	// Same content, separately generated: same address, no new entry.
	ref2, created := s.Put(gen.ErdosRenyi(48, 4, 2))
	if created || ref2 != ref {
		t.Fatalf("re-put: created=%v ref=%v, want resident %v", created, ref2, ref)
	}
	// Distinct content: new entry.
	if _, created := s.Put(gen.ErdosRenyi(48, 4, 3)); !created {
		t.Fatal("distinct content must create")
	}
	st := s.StatsSnapshot()
	if st.Puts != 2 || st.Reputs != 1 || st.Operands != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if m, ok := s.Get(ref); !ok || m.NNZ() != g.NNZ() {
		t.Fatal("resident operand did not resolve")
	}
	if _, ok := s.Get(Ref{Pattern: 1, Values: 2}); ok {
		t.Fatal("absent ref resolved")
	}
	st = s.StatsSnapshot()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("resolution counters = %+v", st)
	}
}

// TestStorePatternSharing pins the structure-dedup contract: value
// sets with the same pattern share one resident structure, its bytes
// are charged once, and it stays resident until the last sharer goes.
func TestStorePatternSharing(t *testing.T) {
	budget := core.NewMemBudget(1 << 30)
	s := New(budget)
	g := gen.ErdosRenyi(48, 4, 4)
	patBytes := int64(len(g.RowPtr))*8 + int64(len(g.ColIdx))*4 + entryOverhead
	valBytes := int64(len(g.Val))*8 + entryOverhead

	ref1, _ := s.Put(g)
	after1 := s.StatsSnapshot().Bytes
	if after1 != patBytes+valBytes {
		t.Fatalf("first put charged %d, want %d", after1, patBytes+valBytes)
	}

	// Second value set under the same structure via the delta path.
	scaled := make([]float64, len(g.Val))
	for i, v := range g.Val {
		scaled[i] = 2 * v
	}
	ref2, created, err := s.PutValues(ref1.Pattern, scaled)
	if err != nil || !created {
		t.Fatalf("values put: %v created=%v", err, created)
	}
	if ref2.Pattern != ref1.Pattern || ref2.Values == ref1.Values {
		t.Fatalf("delta ref %v vs original %v", ref2, ref1)
	}
	st := s.StatsSnapshot()
	if st.Patterns != 1 || st.Operands != 2 {
		t.Fatalf("after delta: %+v", st)
	}
	if st.Bytes != after1+valBytes {
		t.Fatalf("delta charged %d, want values-only %d (structure must not double-charge)", st.Bytes-after1, valBytes)
	}
	// The stored delta matrix aliases the shared structure arrays.
	m2, ok := s.Get(ref2)
	if !ok {
		t.Fatal("delta operand did not resolve")
	}
	pat, ok := s.GetPattern(ref1.Pattern)
	if !ok || &m2.RowPtr[0] != &pat.RowPtr[0] {
		t.Fatal("delta operand does not alias the shared structure")
	}

	// Evicting one sharer keeps the structure; evicting the last frees
	// it. BudgetEvict drops the LRU entry (ref1 — ref2 is newer).
	if s.BudgetEvict() == 0 {
		t.Fatal("evict refused with two entries resident")
	}
	st = s.StatsSnapshot()
	if st.Operands != 1 || st.Patterns != 1 {
		t.Fatalf("after first evict: %+v", st)
	}
	if _, ok := s.Get(ref1); ok {
		t.Fatal("evicted LRU operand still resolves")
	}
	if _, ok := s.GetPattern(ref1.Pattern); !ok {
		t.Fatal("shared structure freed while a sharer remains")
	}
	// The last entry is never yielded to the budget.
	if s.BudgetEvict() != 0 {
		t.Fatal("evict must refuse the last resident entry")
	}
	if _, ok := s.BudgetTail(); ok {
		t.Fatal("tail must refuse with one entry")
	}
}

// TestStorePutValuesErrors pins the delta failure modes: unknown
// structure is a typed error naming the fingerprint; a wrong-length
// value slice is rejected.
func TestStorePutValuesErrors(t *testing.T) {
	s := New(nil)
	_, _, err := s.PutValues(0xdead, []float64{1, 2})
	var unknown *ErrUnknownPattern
	if !errors.As(err, &unknown) || unknown.Fingerprint != 0xdead {
		t.Fatalf("unknown pattern: %v", err)
	}
	g := gen.ErdosRenyi(32, 4, 5)
	ref, _ := s.Put(g)
	if _, _, err := s.PutValues(ref.Pattern, make([]float64, g.NNZ()+1)); err == nil {
		t.Fatal("wrong-length values accepted")
	}
	// Re-putting identical values is idempotent, like Put.
	vals := append([]float64(nil), g.Val...)
	ref2, created, err := s.PutValues(ref.Pattern, vals)
	if err != nil || created || ref2 != ref {
		t.Fatalf("identical values delta: ref=%v created=%v err=%v", ref2, created, err)
	}
}

// TestStoreBudgetEviction pins LRU under pressure: with a budget too
// small for the working set, inserts evict the least recently used
// operands, accounting stays exact, and the budget ends at or under
// its ceiling.
func TestStoreBudgetEviction(t *testing.T) {
	g0 := gen.ErdosRenyi(48, 4, 10)
	perOperand := int64(len(g0.RowPtr))*8 + int64(len(g0.ColIdx))*4 + int64(len(g0.Val))*8 + 2*entryOverhead
	budget := core.NewMemBudget(3 * perOperand)
	s := New(budget)

	var refs []Ref
	for seed := uint64(10); seed < 16; seed++ {
		ref, created := s.Put(gen.ErdosRenyi(48, 4, seed))
		if !created {
			t.Fatalf("seed %d content collided", seed)
		}
		refs = append(refs, ref)
	}
	st := s.StatsSnapshot()
	if st.Evictions == 0 {
		t.Fatalf("six operands under a three-operand budget evicted nothing: %+v", st)
	}
	if budget.Used() > budget.Max() {
		t.Fatalf("budget over ceiling after rebalance: %d > %d", budget.Used(), budget.Max())
	}
	if budget.Used() != st.Bytes {
		t.Fatalf("budget charge %d != store bytes %d", budget.Used(), st.Bytes)
	}
	// Oldest gone, newest resident.
	if _, ok := s.Get(refs[0]); ok {
		t.Fatal("oldest operand survived pressure that forced evictions")
	}
	if _, ok := s.Get(refs[len(refs)-1]); !ok {
		t.Fatal("newest operand was evicted")
	}
}

// TestStoreGetTouchesLRU pins recency: resolving an operand protects
// it from the next eviction.
func TestStoreGetTouchesLRU(t *testing.T) {
	s := New(core.NewMemBudget(1 << 30))
	ref1, _ := s.Put(gen.ErdosRenyi(32, 4, 20))
	ref2, _ := s.Put(gen.ErdosRenyi(32, 4, 21))
	// ref1 is older; touching it makes ref2 the LRU victim.
	if _, ok := s.Get(ref1); !ok {
		t.Fatal("ref1 not resident")
	}
	if s.BudgetEvict() == 0 {
		t.Fatal("evict refused")
	}
	if _, ok := s.Get(ref2); ok {
		t.Fatal("touched operand evicted instead of the stale one")
	}
	if _, ok := s.Get(ref1); !ok {
		t.Fatal("recently touched operand gone")
	}
}
