// Package store is the content-addressed operand store behind
// reference-based serving (DESIGN.md §13): CSR matrices keyed by
// (pattern fingerprint, values fingerprint), so a client uploads an
// operand once and later requests name it by fingerprint instead of
// re-shipping its bytes. The key reuses the plan cache's identity
// scheme — sparse.Pattern.Fingerprint for structure — extended with
// sparse.ValuesFingerprint for the numbers, making the pair a full
// content address: re-uploading identical bytes lands on the resident
// entry (idempotent), and a values-only delta re-keys fresh numbers
// under a resident structure without re-sending it.
//
// Patterns are shared across value sets: the k-truss/BC serving shape
// is one recurring graph structure multiplied under many value
// refreshes, so the store keeps one copy of each distinct structure
// (refcounted) and per-value-set entries that alias it.
//
// Eviction is LRU under a core.MemBudget shared with the plan cache:
// resident operands and cached plans draw from one byte budget, and
// whichever is globally least recently used yields first. Evicting an
// operand never invalidates plans cached for its structure (plans own
// a private mask clone), and evicting a plan never drops an operand —
// the two caches only compete for bytes.
package store

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/sparse"
)

// Ref content-addresses one stored operand: the structural fingerprint
// of its pattern and the fingerprint of its value words. The zero
// Values with a nonzero Pattern never occurs for stored matrices in
// practice, but no semantics hang on it — a Ref is just the pair.
type Ref struct {
	// Pattern is sparse.Pattern.Fingerprint of the operand's structure.
	Pattern uint64
	// Values is sparse.ValuesFingerprint of the operand's value slice.
	Values uint64
}

// RefOf computes the content address of a matrix.
func RefOf(m *sparse.CSR[float64]) Ref {
	return Ref{Pattern: m.Pattern.Fingerprint(), Values: sparse.ValuesFingerprint(m.Val)}
}

// String renders the ref in the wire form "ppppppppp:vvvvvvvvv" (two
// 16-digit hex fingerprints) that ParseRef reads back.
func (r Ref) String() string {
	return fmt.Sprintf("%016x:%016x", r.Pattern, r.Values)
}

// ParseRef parses the wire form written by Ref.String. Both halves are
// required; use ParseFingerprint for pattern-only references (masks).
func ParseRef(s string) (Ref, error) {
	p, v, ok := strings.Cut(s, ":")
	if !ok {
		return Ref{}, fmt.Errorf("store: operand ref %q is not pattern:values", s)
	}
	pf, err := ParseFingerprint(p)
	if err != nil {
		return Ref{}, err
	}
	vf, err := ParseFingerprint(v)
	if err != nil {
		return Ref{}, err
	}
	return Ref{Pattern: pf, Values: vf}, nil
}

// ParseFingerprint parses one hex fingerprint half.
func ParseFingerprint(s string) (uint64, error) {
	f, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("store: fingerprint %q is not 64-bit hex", s)
	}
	return f, nil
}

// Store is the fingerprint-keyed operand store. All methods are safe
// for concurrent use.
//
// Ownership contract (the §8 rules extended to resident operands):
// Put transfers ownership of the matrix to the store — the caller must
// not mutate it afterwards, and matrices returned by Get are shared
// with every other reader and with in-flight executions, so they are
// read-only. Mutating a resident operand would silently falsify its
// content address; nothing defends against it beyond this contract.
type Store struct {
	budget *core.MemBudget

	mu       sync.Mutex
	lru      *list.List // front = most recently used; values are *entry
	table    map[Ref]*list.Element
	patterns map[uint64]*patternEntry
	bytes    int64

	hits, misses, evictions uint64
	puts, reputs            uint64
}

// entry is one resident value set; its matrix aliases the refcounted
// shared pattern. bytes covers the values slice and fixed overhead;
// the pattern's bytes are accounted once on its patternEntry.
type entry struct {
	ref   Ref
	m     *sparse.CSR[float64]
	bytes int64
	stamp uint64
}

// patternEntry is one resident structure, shared by every value set
// whose pattern fingerprints to it.
type patternEntry struct {
	pat   *sparse.Pattern
	refs  int
	bytes int64
}

// entryOverhead is the fixed per-entry accounting charge (structs,
// map slot, list element).
const entryOverhead = 192

// New returns an empty store accounting against budget (nil means a
// private budget of core.DefaultMemoryBudgetBytes). The store
// registers itself as a budget member, so shared-budget pressure can
// evict operands and, symmetrically, operand inserts can evict
// whatever else the budget's members hold.
func New(budget *core.MemBudget) *Store {
	if budget == nil {
		budget = core.NewMemBudget(0)
	}
	s := &Store{
		budget:   budget,
		lru:      list.New(),
		table:    make(map[Ref]*list.Element),
		patterns: make(map[uint64]*patternEntry),
	}
	budget.Register(s)
	return s
}

// Put inserts a matrix under its content address, taking ownership of
// it. Re-putting resident content is idempotent and cheap: the ref is
// recomputed (two linear hashes), the resident entry is touched, and
// created reports false. When the pattern is already resident under
// another value set, the stored matrix aliases the shared structure
// instead of retaining a second copy.
func (s *Store) Put(m *sparse.CSR[float64]) (Ref, bool) {
	ref := RefOf(m)
	s.mu.Lock()
	if el, ok := s.table[ref]; ok {
		s.touchLocked(el)
		s.reputs++
		s.mu.Unlock()
		return ref, false
	}
	s.insertLocked(ref, m)
	s.mu.Unlock()
	s.budget.Rebalance()
	return ref, true
}

// ErrUnknownPattern reports a values-only put against a structure the
// store does not hold.
type ErrUnknownPattern struct {
	// Fingerprint is the pattern fingerprint the caller named.
	Fingerprint uint64
}

// Error implements error.
func (e *ErrUnknownPattern) Error() string {
	return fmt.Sprintf("store: no resident pattern %016x (upload the full operand first)", e.Fingerprint)
}

// PutValues inserts a new value set under an already-resident pattern
// — the values-only delta for iterative workloads whose structure is
// fixed. Only the values travel; the returned ref pairs the resident
// pattern fingerprint with the fresh values fingerprint, and because
// the structure is byte-identical to the resident one, a multiply
// through the new ref is a guaranteed plan-cache hit. Returns
// *ErrUnknownPattern when the structure is not resident, or a length
// error when vals does not match its nnz. vals ownership transfers to
// the store.
func (s *Store) PutValues(patternFP uint64, vals []float64) (Ref, bool, error) {
	ref := Ref{Pattern: patternFP, Values: sparse.ValuesFingerprint(vals)}
	s.mu.Lock()
	pe, ok := s.patterns[patternFP]
	if !ok {
		s.mu.Unlock()
		return Ref{}, false, &ErrUnknownPattern{Fingerprint: patternFP}
	}
	if nnz := pe.pat.NNZ(); int64(len(vals)) != nnz {
		s.mu.Unlock()
		return Ref{}, false, fmt.Errorf("store: %d values for pattern %016x, want its nnz %d", len(vals), patternFP, nnz)
	}
	if el, ok := s.table[ref]; ok {
		s.touchLocked(el)
		s.reputs++
		s.mu.Unlock()
		return ref, false, nil
	}
	m := &sparse.CSR[float64]{Pattern: *pe.pat, Val: vals}
	s.insertLocked(ref, m)
	s.mu.Unlock()
	s.budget.Rebalance()
	return ref, true, nil
}

// Get returns the resident matrix for ref, touching its LRU position.
// The result is shared and read-only.
func (s *Store) Get(ref Ref) (*sparse.CSR[float64], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.table[ref]
	if !ok {
		s.misses++
		return nil, false
	}
	s.touchLocked(el)
	s.hits++
	return el.Value.(*entry).m, true
}

// GetPattern returns the resident structure with the given
// fingerprint — the mask form of a reference: masks are patterns, so
// they resolve by structure alone and stay resident as long as any
// value set shares them. The result is shared and read-only.
func (s *Store) GetPattern(fp uint64) (*sparse.Pattern, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pe, ok := s.patterns[fp]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	return pe.pat, true
}

// insertLocked files a new entry, sharing or creating its pattern and
// reserving its bytes from the budget.
func (s *Store) insertLocked(ref Ref, m *sparse.CSR[float64]) {
	pe, ok := s.patterns[ref.Pattern]
	if ok {
		// Share the resident structure: the stored matrix's embedded
		// pattern copies the shared slice headers, so the second copy's
		// index arrays become garbage.
		m.Pattern = *pe.pat
	} else {
		// The shared pattern is a standalone copy of the struct header
		// (slices shared): pointing at the founding matrix's embedded
		// Pattern would keep that matrix — values included — reachable
		// after its entry is evicted.
		pat := m.Pattern
		pe = &patternEntry{
			pat:   &pat,
			bytes: int64(len(m.RowPtr))*8 + int64(len(m.ColIdx))*4 + entryOverhead,
		}
		s.patterns[ref.Pattern] = pe
		s.bytes += pe.bytes
		s.budget.Reserve(pe.bytes)
	}
	pe.refs++
	e := &entry{
		ref:   ref,
		m:     m,
		bytes: int64(len(m.Val))*8 + entryOverhead,
		stamp: s.budget.Stamp(),
	}
	s.table[ref] = s.lru.PushFront(e)
	s.bytes += e.bytes
	s.budget.Reserve(e.bytes)
	s.puts++
}

// touchLocked refreshes an entry's LRU position and global stamp.
func (s *Store) touchLocked(el *list.Element) {
	s.lru.MoveToFront(el)
	el.Value.(*entry).stamp = s.budget.Stamp()
}

// removeLocked evicts one entry, dropping its pattern when it was the
// last value set sharing it.
func (s *Store) removeLocked(el *list.Element) int64 {
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.table, e.ref)
	freed := e.bytes
	s.bytes -= e.bytes
	s.evictions++
	if pe := s.patterns[e.ref.Pattern]; pe != nil {
		pe.refs--
		if pe.refs == 0 {
			delete(s.patterns, e.ref.Pattern)
			s.bytes -= pe.bytes
			freed += pe.bytes
		}
	}
	s.budget.Release(freed)
	return freed
}

// BudgetTail implements core.BudgetMember: the stamp of the LRU
// operand, if more than one is resident (the newest entry is never
// yielded — an operand put a moment ago is about to be used).
func (s *Store) BudgetTail() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lru.Len() <= 1 {
		return 0, false
	}
	return s.lru.Back().Value.(*entry).stamp, true
}

// BudgetEvict implements core.BudgetMember: drops the LRU operand and
// reports the bytes freed (values plus any last-reference pattern).
func (s *Store) BudgetEvict() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lru.Len() <= 1 {
		return 0
	}
	return s.removeLocked(s.lru.Back())
}

// Stats is a point-in-time snapshot of store effectiveness.
type Stats struct {
	// Hits counts reference resolutions answered by a resident entry.
	Hits uint64
	// Misses counts resolutions of refs (or pattern fingerprints) not
	// resident — the 404s of the reference form.
	Misses uint64
	// Puts counts entries inserted (full uploads and values deltas).
	Puts uint64
	// Reputs counts idempotent re-uploads of already-resident content.
	Reputs uint64
	// Evictions counts entries dropped by budget pressure.
	Evictions uint64
	// Operands is the current number of resident value sets.
	Operands int
	// Patterns is the current number of distinct resident structures.
	Patterns int
	// Bytes is the accounted resident memory (values, shared patterns,
	// fixed overheads).
	Bytes int64
}

// StatsSnapshot returns the current counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Reputs:    s.reputs,
		Evictions: s.evictions,
		Operands:  s.lru.Len(),
		Patterns:  len(s.patterns),
		Bytes:     s.bytes,
	}
}

// Len returns the number of resident value sets.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
