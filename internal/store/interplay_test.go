package store

import (
	"fmt"
	"sync"
	"testing"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
)

// newSharedPair wires a store and a plan cache onto one budget — the
// serving session's shape (DESIGN.md §13).
func newSharedPair(maxBytes int64) (*core.MemBudget, *Store, *core.PlanCache[float64, semiring.PlusTimes[float64]]) {
	budget := core.NewMemBudget(maxBytes)
	st := New(budget)
	cache := core.NewPlanCache[float64](semiring.PlusTimes[float64]{}, 128, 0)
	cache.AttachBudget(budget)
	return budget, st, cache
}

// reconcile asserts the shared budget's accounted total is exactly the
// sum of what the two members report holding — the invariant that
// makes the single byte bound meaningful.
func reconcile(t *testing.T, budget *core.MemBudget, st *Store, cache *core.PlanCache[float64, semiring.PlusTimes[float64]]) {
	t.Helper()
	want := st.StatsSnapshot().Bytes + cache.Stats().Bytes
	if got := budget.Used(); got != want {
		t.Fatalf("budget.Used() = %d, members hold %d (store %d + cache %d)",
			got, want, st.StatsSnapshot().Bytes, cache.Stats().Bytes)
	}
}

// TestInterplayBudgetReconciles pins the shared accounting: after any
// mix of operand puts and plan builds, the budget's total is the exact
// sum of the members' bytes.
func TestInterplayBudgetReconciles(t *testing.T) {
	budget, st, cache := newSharedPair(1 << 30)
	reconcile(t, budget, st, cache)
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.ErdosRenyi(64, 4, seed)
		if _, created := st.Put(g); !created {
			t.Fatalf("seed %d not created", seed)
		}
		reconcile(t, budget, st, cache)
		if _, err := cache.GetOrPlan(g.PatternView(), g, g, core.Options{}); err != nil {
			t.Fatalf("plan seed %d: %v", seed, err)
		}
		reconcile(t, budget, st, cache)
	}
	if st.StatsSnapshot().Operands != 3 || cache.Stats().Entries != 3 {
		t.Fatalf("residency: %+v / %+v", st.StatsSnapshot(), cache.Stats())
	}
}

// TestInterplayEvictOperandKeepsPlan pins the no-orphaning direction
// store→cache: dropping a resident operand must not invalidate the
// plan cached for its structure, because plans own a private clone of
// the mask (§8 ownership). A re-request by the same structure is still
// a plan-cache hit.
func TestInterplayEvictOperandKeepsPlan(t *testing.T) {
	budget, st, cache := newSharedPair(1 << 30)
	g1 := gen.ErdosRenyi(64, 4, 10)
	g2 := gen.ErdosRenyi(64, 4, 11)
	ref1, _ := st.Put(g1)
	st.Put(g2)
	if _, err := cache.GetOrPlan(g1.PatternView(), g1, g1, core.Options{}); err != nil {
		t.Fatal(err)
	}

	// Touch g2 so g1 is the store's LRU victim, then evict it.
	if _, ok := st.Get(RefOf(g2)); !ok {
		t.Fatal("g2 not resident")
	}
	if st.BudgetEvict() == 0 {
		t.Fatal("store refused to evict")
	}
	if _, ok := st.Get(ref1); ok {
		t.Fatal("expected g1 evicted")
	}
	reconcile(t, budget, st, cache)

	// The plan for g1's structure survives the operand's eviction.
	before := cache.Stats()
	if _, err := cache.GetOrPlan(g1.PatternView(), g1, g1, core.Options{}); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("replan after operand eviction was not a hit: %+v → %+v", before, after)
	}
}

// TestInterplayEvictPlanKeepsOperand pins the other direction: evicting
// a cached plan leaves the operands resident and resolvable.
func TestInterplayEvictPlanKeepsOperand(t *testing.T) {
	budget, st, cache := newSharedPair(1 << 30)
	g1 := gen.ErdosRenyi(64, 4, 20)
	g2 := gen.ErdosRenyi(64, 4, 21)
	ref1, _ := st.Put(g1)
	if _, err := cache.GetOrPlan(g1.PatternView(), g1, g1, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.GetOrPlan(g2.PatternView(), g2, g2, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if cache.BudgetEvict() == 0 {
		t.Fatal("cache refused to evict")
	}
	if _, ok := st.Get(ref1); !ok {
		t.Fatal("operand lost to a plan eviction")
	}
	reconcile(t, budget, st, cache)
}

// TestInterplayGlobalLRUOrder pins cross-member LRU: under one budget,
// the globally oldest entry yields first, whichever member holds it.
// The test measures the working set against a roomy budget, then
// replays the same inserts against a budget one byte too small — the
// overflow must evict the first insert (an operand), not the plans
// that arrived after it.
func TestInterplayGlobalLRUOrder(t *testing.T) {
	build := func(maxBytes int64) (*core.MemBudget, *Store, *core.PlanCache[float64, semiring.PlusTimes[float64]], []Ref) {
		budget, st, cache := newSharedPair(maxBytes)
		var refs []Ref
		for seed := uint64(30); seed < 32; seed++ {
			g := gen.ErdosRenyi(64, 4, seed)
			ref, _ := st.Put(g)
			refs = append(refs, ref)
			if _, err := cache.GetOrPlan(g.PatternView(), g, g, core.Options{}); err != nil {
				t.Fatal(err)
			}
		}
		return budget, st, cache, refs
	}
	// Measure the exact working set.
	bigBudget, _, _, _ := build(1 << 30)
	total := bigBudget.Used()

	// Replay one byte short: the final insert overflows and the
	// globally oldest entry — the first operand — must yield.
	budget, st, cache, refs := build(total - 1)
	if budget.Used() > budget.Max() {
		t.Fatalf("still over budget: %d > %d", budget.Used(), budget.Max())
	}
	sstats := st.StatsSnapshot()
	if sstats.Evictions != 1 || sstats.Operands != 1 {
		t.Fatalf("store should have yielded exactly its oldest operand: %+v", sstats)
	}
	if cache.Stats().Entries != 2 {
		t.Fatalf("plan evicted instead of the older operand: %+v", cache.Stats())
	}
	if _, ok := st.Get(refs[0]); ok {
		t.Fatal("globally oldest entry survived")
	}
	if _, ok := st.Get(refs[1]); !ok {
		t.Fatal("newer operand evicted out of order")
	}
	reconcile(t, budget, st, cache)
}

// TestInterplayConcurrent hammers both members of a small shared
// budget from many goroutines and checks the accounting reconciles
// afterwards. Run with -race, this also pins the lock ordering:
// members never call Rebalance while holding their own lock.
func TestInterplayConcurrent(t *testing.T) {
	budget, st, cache := newSharedPair(96 << 10)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				seed := uint64(100 + (w*40+i)%10)
				g := gen.ErdosRenyi(96, 5, seed)
				ref, _ := st.Put(g)
				if m, ok := st.Get(ref); ok {
					if _, err := cache.GetOrPlan(m.PatternView(), m, m, core.Options{}); err != nil {
						panic(fmt.Sprintf("plan: %v", err))
					}
				}
				st.Get(Ref{Pattern: uint64(i), Values: uint64(w)}) // misses exercise the counters
			}
		}(w)
	}
	wg.Wait()
	budget.Rebalance()
	reconcile(t, budget, st, cache)
	sstats, cstats := st.StatsSnapshot(), cache.Stats()
	if sstats.Evictions == 0 && cstats.Evictions == 0 {
		t.Fatalf("small budget forced no evictions anywhere: store %+v cache %+v", sstats, cstats)
	}
	if budget.Used() > budget.Max() {
		t.Fatalf("ended over budget: %d > %d", budget.Used(), budget.Max())
	}
}
