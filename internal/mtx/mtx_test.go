package mtx

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"maskedspgemm/internal/sparse"
)

func randomCSR(seed int64, rows, cols, nnz int) *sparse.CSR[float64] {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO[float64](rows, cols, nnz)
	for k := 0; k < nnz; k++ {
		coo.Append(int32(r.Intn(rows)), int32(r.Intn(cols)), r.NormFloat64())
	}
	m, err := coo.ToCSR(func(a, b float64) float64 { return a + b })
	if err != nil {
		panic(err)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		m := randomCSR(seed, 17, 23, 60)
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, h, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if h.Field != "real" || h.Symmetry != "general" {
			t.Errorf("header = %+v", h)
		}
		if !sparse.EqualFunc(m, back, sparse.FloatEq(1e-15)) {
			t.Fatalf("round trip mismatch: %s", sparse.Diff(m, back, sparse.FloatEq(1e-15)))
		}
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 4 3
1 1
2 3
3 4
`
	m, h, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.Field != "pattern" {
		t.Errorf("field = %q", h.Field)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	if v, ok := m.At(1, 2); !ok || v != 1 {
		t.Errorf("pattern value = %v, %v", v, ok)
	}
}

func TestReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 5.0
2 1 2.0
3 2 -1.5
`
	m, _, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Off-diagonal entries expand to both triangles; diagonal stays
	// single.
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", m.NNZ())
	}
	if v, _ := m.At(0, 1); v != 2.0 {
		t.Errorf("mirrored (0,1) = %v", v)
	}
	if v, _ := m.At(1, 2); v != -1.5 {
		t.Errorf("mirrored (1,2) = %v", v)
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	m, _, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.At(0, 1); v != -3.0 {
		t.Errorf("skew mirror = %v, want -3", v)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no banner":     "1 1 0\n",
		"bad object":    "%%MatrixMarket vector coordinate real general\n1 1 0\n",
		"dense":         "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex":       "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":  "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"short banner":  "%%MatrixMarket matrix\n",
		"missing size":  "%%MatrixMarket matrix coordinate real general\n",
		"bad entry":     "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
		"out of range":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"missing entry": "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"pattern short": "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n",
		"bad value":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zzz\n",
	}
	for name, in := range cases {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := randomCSR(9, 10, 10, 30)
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(m, back, sparse.FloatEq(1e-15)) {
		t.Fatal("file round trip mismatch")
	}
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "absent.mtx")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestWritePattern(t *testing.T) {
	m := randomCSR(4, 6, 6, 12)
	var buf bytes.Buffer
	if err := WritePattern(&buf, m.PatternView()); err != nil {
		t.Fatal(err)
	}
	back, h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Field != "pattern" {
		t.Errorf("field = %q", h.Field)
	}
	if !sparse.PatternEqual(m.PatternView(), back.PatternView()) {
		t.Error("pattern round trip mismatch")
	}
}

func TestReadIntegerField(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 2
1 1 4
2 2 -7
`
	m, _, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.At(1, 1); v != -7 {
		t.Errorf("integer value = %v", v)
	}
}

func TestDuplicatesSummed(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.5
1 1 2.5
`
	m, _, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.At(0, 0); v != 4.0 {
		t.Errorf("duplicate sum = %v, want 4", v)
	}
}
