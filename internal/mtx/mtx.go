// Package mtx reads and writes the Matrix Market exchange format, the
// distribution format of the SuiteSparse Matrix Collection the paper's
// real-world inputs come from (§7). Supporting it means real graphs can
// be dropped into this reproduction in place of the synthetic suite.
//
// Supported: coordinate format, fields real/integer/pattern, symmetry
// general/symmetric/skew-symmetric. Dense ("array") files and complex
// fields are rejected with a clear error.
package mtx

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"maskedspgemm/internal/sparse"
)

const (
	// maxDim bounds declared matrix dimensions; beyond it the row-pointer
	// array alone exceeds a gigabyte, which no text-format input warrants.
	maxDim = 1 << 27
	// preallocEntries caps how much COO capacity the declared nnz may
	// reserve before any entry has parsed.
	preallocEntries = 1 << 20
)

// Header describes a Matrix Market file's declared type.
type Header struct {
	// Object is "matrix" (the only supported object).
	Object string
	// Format is "coordinate" (sparse) — "array" is rejected.
	Format string
	// Field is "real", "integer", or "pattern".
	Field string
	// Symmetry is "general", "symmetric", or "skew-symmetric".
	Symmetry string
}

// Read parses a Matrix Market stream into CSR. Symmetric inputs are
// expanded (both triangles populated); pattern inputs get unit values;
// duplicate coordinates are summed.
func Read(r io.Reader) (*sparse.CSR[float64], *Header, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	line, err := br.ReadString('\n')
	if err != nil && line == "" {
		return nil, nil, fmt.Errorf("mtx: empty input: %w", err)
	}
	if !strings.HasPrefix(line, "%%MatrixMarket") {
		return nil, nil, fmt.Errorf("mtx: missing %%%%MatrixMarket banner")
	}
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) < 5 {
		return nil, nil, fmt.Errorf("mtx: malformed banner %q", strings.TrimSpace(line))
	}
	h := &Header{Object: fields[1], Format: fields[2], Field: fields[3], Symmetry: fields[4]}
	if h.Object != "matrix" {
		return nil, nil, fmt.Errorf("mtx: unsupported object %q", h.Object)
	}
	if h.Format != "coordinate" {
		return nil, nil, fmt.Errorf("mtx: unsupported format %q (only coordinate)", h.Format)
	}
	switch h.Field {
	case "real", "integer", "pattern":
	default:
		return nil, nil, fmt.Errorf("mtx: unsupported field %q", h.Field)
	}
	switch h.Symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, nil, fmt.Errorf("mtx: unsupported symmetry %q", h.Symmetry)
	}

	// Size line (after comments).
	var rows, cols, nnz int
	for {
		line, err = br.ReadString('\n')
		if err != nil && line == "" {
			return nil, nil, fmt.Errorf("mtx: missing size line: %w", err)
		}
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "%") {
			continue
		}
		parts := strings.Fields(s)
		if len(parts) != 3 {
			return nil, nil, fmt.Errorf("mtx: bad size line %q: want rows cols nnz", s)
		}
		var err1, err2, err3 error
		rows, err1 = strconv.Atoi(parts[0])
		cols, err2 = strconv.Atoi(parts[1])
		nnz, err3 = strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("mtx: bad size line %q", s)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, nil, fmt.Errorf("mtx: negative dimensions in size line")
	}
	// The size line is untrusted input: CSR conversion allocates rows+1
	// row pointers up front, so an implausible declared dimension must be
	// rejected here rather than honoured with a multi-gigabyte make.
	if rows > maxDim || cols > maxDim {
		return nil, nil, fmt.Errorf("mtx: dimensions %dx%d exceed the %d limit", rows, cols, maxDim)
	}

	// The capacity hint is only a hint — clamp it so a hostile nnz can
	// reserve at most a bounded buffer; real entries grow it by append
	// as they actually parse.
	capHint := nnz
	if h.Symmetry != "general" {
		capHint *= 2
	}
	if capHint > preallocEntries {
		capHint = preallocEntries
	}
	coo := sparse.NewCOO[float64](rows, cols, capHint)
	read := 0
	for read < nnz {
		line, err = br.ReadString('\n')
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "%") {
			if err != nil {
				return nil, nil, fmt.Errorf("mtx: expected %d entries, got %d", nnz, read)
			}
			continue
		}
		parts := strings.Fields(s)
		want := 3
		if h.Field == "pattern" {
			want = 2
		}
		if len(parts) < want {
			return nil, nil, fmt.Errorf("mtx: entry %d malformed: %q", read+1, s)
		}
		i, err1 := strconv.Atoi(parts[0])
		j, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("mtx: entry %d has bad indices: %q", read+1, s)
		}
		v := 1.0
		if h.Field != "pattern" {
			v, err = strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("mtx: entry %d has bad value: %q", read+1, s)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, nil, fmt.Errorf("mtx: entry %d out of range: %q", read+1, s)
		}
		coo.Append(int32(i-1), int32(j-1), v)
		if h.Symmetry != "general" && i != j {
			mirror := v
			if h.Symmetry == "skew-symmetric" {
				mirror = -v
			}
			coo.Append(int32(j-1), int32(i-1), mirror)
		}
		read++
	}
	m, err := coo.ToCSR(func(a, b float64) float64 { return a + b })
	if err != nil {
		return nil, nil, fmt.Errorf("mtx: %v", err)
	}
	return m, h, nil
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*sparse.CSR[float64], *Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits a CSR matrix in coordinate/real/general form.
func Write(w io.Writer, m *sparse.CSR[float64]) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		vals := m.RowVals(i)
		for k, j := range m.Row(i) {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WritePattern emits only the structure in coordinate/pattern/general
// form.
func WritePattern(w io.Writer, p *sparse.Pattern) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", p.Rows, p.Cols, p.NNZ()); err != nil {
		return err
	}
	for i := 0; i < p.Rows; i++ {
		for _, j := range p.Row(i) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i+1, j+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes a matrix to disk in Matrix Market form.
func WriteFile(path string, m *sparse.CSR[float64]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
