package bench

import (
	"fmt"
	"io"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/perfprof"
)

// pooledOpt opts a benchmark plan into pooled output buffers: CountWith
// consumes the product inside the timed loop, so no result escapes an
// execution.
func pooledOpt(o core.Options) core.Options {
	o.ReuseOutput = true
	return o
}

// AppKind selects which benchmark application a profile run measures.
type AppKind int

const (
	// AppTriangleCount measures the masked product of §8.2.
	AppTriangleCount AppKind = iota
	// AppKTruss measures the iterative pruning of §8.3 (k = 5).
	AppKTruss
	// AppBetweenness measures the batched BC of §8.4.
	AppBetweenness
)

// String names the application.
func (a AppKind) String() string {
	switch a {
	case AppTriangleCount:
		return "triangle-count"
	case AppKTruss:
		return "k-truss"
	default:
		return "betweenness"
	}
}

// ProfileConfig parameterizes a performance-profile experiment (Figs 8,
// 9, 12, 13, 16).
type ProfileConfig struct {
	// App selects the measured application.
	App AppKind
	// Instances is the graph suite to sweep.
	Instances []gen.Instance
	// Schemes lists the schemes compared.
	Schemes []Scheme
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Reps is the best-of repetition count.
	Reps int
	// KTrussK is the truss order (paper: 5).
	KTrussK int
	// BCBatch is the betweenness source-batch size (paper: 512).
	BCBatch int
}

// RunProfile times every scheme on every instance and computes the
// Dolan–Moré profile.
func RunProfile(cfg ProfileConfig) (*perfprof.Profile, error) {
	if cfg.KTrussK == 0 {
		cfg.KTrussK = 5
	}
	if cfg.BCBatch == 0 {
		cfg.BCBatch = 64
	}
	var results []perfprof.Result
	for _, inst := range cfg.Instances {
		g := inst.Build()
		var tc *graph.TCWorkload
		if cfg.App == AppTriangleCount {
			tc = graph.PrepareTriangleCount(g)
		}
		for _, s := range cfg.Schemes {
			s = s.WithThreads(cfg.Threads)
			var sec float64
			switch cfg.App {
			case AppTriangleCount:
				// Plan once per (instance, scheme); repetitions then time
				// only the masked multiplication, per §8.2 ("we only
				// report the Masked SpGEMM execution time").
				plan, err := tc.NewPlan(pooledOpt(s.Opt), nil)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", s.Name, inst.Name, err)
				}
				d, err := TimeBest(cfg.Reps, func() error {
					_, err := tc.CountWith(plan)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", s.Name, inst.Name, err)
				}
				sec = d.Seconds()
			case AppKTruss:
				d, err := TimeBest(cfg.Reps, func() error {
					_, err := graph.KTruss(g, cfg.KTrussK, s.Opt)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", s.Name, inst.Name, err)
				}
				sec = d.Seconds()
			case AppBetweenness:
				sources := graph.BatchSources(g.Rows, cfg.BCBatch)
				var masked float64
				_, err := TimeBest(cfg.Reps, func() error {
					res, err := graph.Betweenness(g, sources, s.Opt)
					if err == nil {
						// Profile the masked-SpGEMM time only, per §8.4.
						if masked == 0 || res.MaskedTime.Seconds() < masked {
							masked = res.MaskedTime.Seconds()
						}
					}
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", s.Name, inst.Name, err)
				}
				sec = masked
			}
			results = append(results, perfprof.Result{Instance: inst.Name, Scheme: s.Name, Seconds: sec})
		}
	}
	return perfprof.Compute(results), nil
}

// WriteProfile renders the profile table with a figure caption.
func WriteProfile(w io.Writer, caption string, p *perfprof.Profile) {
	fmt.Fprintf(w, "%s\n", caption)
	fmt.Fprintf(w, "(fraction of test cases within factor x of the best; %d instances)\n", len(p.Instances))
	io.WriteString(w, p.Render(perfprof.DefaultXs()))
	fmt.Fprintf(w, "winner: %s (best on %.0f%% of cases)\n", p.Best(2.4), 100*p.WinFraction(p.Best(2.4)))
}

// ScalePoint is one (scale, scheme) measurement of the R-MAT sweeps
// (Figs 10, 14, 15).
type ScalePoint struct {
	// Scale is the R-MAT scale of the measured graph.
	Scale int
	// Scheme is the measured scheme's display name.
	Scheme string
	// Seconds is the best-of-reps runtime of the measured region.
	Seconds float64
	// Rate is the figure's y value: GFLOPS for TC/k-truss, MTEPS for
	// BC.
	Rate float64
}

// ScaleSweepConfig parameterizes Figures 10/14/15.
type ScaleSweepConfig struct {
	// App selects the measured application.
	App AppKind
	// Scales lists the R-MAT scales swept.
	Scales []int
	// EdgeFactor is the R-MAT edge factor.
	EdgeFactor int
	// Schemes lists the schemes compared.
	Schemes []Scheme
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Reps is the best-of repetition count.
	Reps int
	// KTrussK is the truss order (paper: 5).
	KTrussK int
	// BCBatch is the betweenness source-batch size.
	BCBatch int
	// Seed feeds the graph generator.
	Seed uint64
}

// RunScaleSweep measures rate-vs-scale series on R-MAT graphs.
func RunScaleSweep(cfg ScaleSweepConfig) ([]ScalePoint, error) {
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = gen.DefaultEdgeFactor
	}
	if cfg.KTrussK == 0 {
		cfg.KTrussK = 5
	}
	if cfg.BCBatch == 0 {
		cfg.BCBatch = 64
	}
	var points []ScalePoint
	for _, scale := range cfg.Scales {
		g := gen.RMATSymmetric(gen.RMATConfig{Scale: scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed + uint64(scale)})
		var tc *graph.TCWorkload
		if cfg.App == AppTriangleCount {
			tc = graph.PrepareTriangleCount(g)
		}
		for _, s := range cfg.Schemes {
			s = s.WithThreads(cfg.Threads)
			pt := ScalePoint{Scale: scale, Scheme: s.Name}
			switch cfg.App {
			case AppTriangleCount:
				plan, err := tc.NewPlan(pooledOpt(s.Opt), nil)
				if err != nil {
					return nil, err
				}
				d, err := TimeBest(cfg.Reps, func() error {
					_, err := tc.CountWith(plan)
					return err
				})
				if err != nil {
					return nil, err
				}
				pt.Seconds = d.Seconds()
				// 2 flops per multiply-add pair, as is conventional.
				pt.Rate = 2 * float64(tc.Flops()) / pt.Seconds / 1e9
			case AppKTruss:
				var flops int64
				d, err := TimeBest(cfg.Reps, func() error {
					res, err := graph.KTruss(g, cfg.KTrussK, s.Opt)
					if err == nil {
						flops = res.Flops
					}
					return err
				})
				if err != nil {
					return nil, err
				}
				pt.Seconds = d.Seconds()
				pt.Rate = 2 * float64(flops) / pt.Seconds / 1e9
			case AppBetweenness:
				sources := graph.BatchSources(g.Rows, cfg.BCBatch)
				var masked float64
				_, err := TimeBest(cfg.Reps, func() error {
					res, err := graph.Betweenness(g, sources, s.Opt)
					if err == nil && (masked == 0 || res.MaskedTime.Seconds() < masked) {
						masked = res.MaskedTime.Seconds()
					}
					return err
				})
				if err != nil {
					return nil, err
				}
				pt.Seconds = masked
				// TEPS = batch × edges / time (§8.4, HPCS SSCA#2).
				edges := float64(g.NNZ()) / 2
				pt.Rate = float64(len(sources)) * edges / pt.Seconds / 1e6
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// WriteScaleSweep renders the sweep as one series per scheme.
func WriteScaleSweep(w io.Writer, caption, rateName string, cfg ScaleSweepConfig, points []ScalePoint) {
	fmt.Fprintf(w, "%s\n", caption)
	fmt.Fprintf(w, "%-12s", "scheme\\scale")
	for _, s := range cfg.Scales {
		fmt.Fprintf(w, " %9d", s)
	}
	fmt.Fprintf(w, "   (%s)\n", rateName)
	for _, s := range cfg.Schemes {
		fmt.Fprintf(w, "%-12s", s.Name)
		for _, scale := range cfg.Scales {
			for _, pt := range points {
				if pt.Scheme == s.Name && pt.Scale == scale {
					fmt.Fprintf(w, " %9.3f", pt.Rate)
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// ThreadPoint is one (threads, scheme) measurement of the strong-
// scaling experiment (Fig 11).
type ThreadPoint struct {
	// Threads is the measured worker count.
	Threads int
	// Scheme is the measured scheme's display name.
	Scheme string
	// Seconds is the best-of-reps runtime.
	Seconds float64
	// Rate is TC GFLOPS at this thread count.
	Rate float64
}

// ThreadSweepConfig parameterizes Figure 11.
type ThreadSweepConfig struct {
	// Scale is the R-MAT scale of the fixed graph.
	Scale int
	// EdgeFactor is the R-MAT edge factor.
	EdgeFactor int
	// Threads lists the worker counts swept.
	Threads []int
	// Schemes lists the schemes compared.
	Schemes []Scheme
	// Reps is the best-of repetition count.
	Reps int
	// Seed feeds the graph generator.
	Seed uint64
}

// RunThreadSweep measures TC GFLOPS across thread counts on one R-MAT
// graph.
func RunThreadSweep(cfg ThreadSweepConfig) ([]ThreadPoint, error) {
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = gen.DefaultEdgeFactor
	}
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed + 1})
	tc := graph.PrepareTriangleCount(g)
	flops := 2 * float64(tc.Flops())
	var points []ThreadPoint
	for _, th := range cfg.Threads {
		for _, s := range cfg.Schemes {
			s = s.WithThreads(th)
			plan, err := tc.NewPlan(pooledOpt(s.Opt), nil)
			if err != nil {
				return nil, err
			}
			d, err := TimeBest(cfg.Reps, func() error {
				_, err := tc.CountWith(plan)
				return err
			})
			if err != nil {
				return nil, err
			}
			points = append(points, ThreadPoint{
				Threads: th,
				Scheme:  s.Name,
				Seconds: d.Seconds(),
				Rate:    flops / d.Seconds() / 1e9,
			})
		}
	}
	return points, nil
}

// WriteThreadSweep renders the strong-scaling series.
func WriteThreadSweep(w io.Writer, caption string, cfg ThreadSweepConfig, points []ThreadPoint) {
	fmt.Fprintf(w, "%s\n", caption)
	fmt.Fprintf(w, "%-12s", "scheme\\thr")
	for _, th := range cfg.Threads {
		fmt.Fprintf(w, " %9d", th)
	}
	fmt.Fprintln(w, "   (GFLOPS)")
	for _, s := range cfg.Schemes {
		fmt.Fprintf(w, "%-12s", s.Name)
		for _, th := range cfg.Threads {
			for _, pt := range points {
				if pt.Scheme == s.Name && pt.Threads == th {
					fmt.Fprintf(w, " %9.3f", pt.Rate)
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// CheckCorrectness cross-checks that every scheme in schemes produces
// the same triangle count on a small graph; harness self-test used by
// the CLI before long runs.
func CheckCorrectness(threads int) error {
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 5})
	tc := graph.PrepareTriangleCount(g)
	want, err := tc.Count(core.Options{Algorithm: core.AlgoMSA, Threads: threads})
	if err != nil {
		return err
	}
	for _, s := range append(OurSchemes(), BaselineSchemes()...) {
		s = s.WithThreads(threads)
		got, err := tc.Count(s.Opt)
		if err != nil {
			return fmt.Errorf("self-test %s: %w", s.Name, err)
		}
		if got != want {
			return fmt.Errorf("self-test %s: triangle count %d != %d", s.Name, got, want)
		}
	}
	return nil
}
