// Package bench is the experiment harness: it enumerates the paper's
// algorithm variants, times them on generated workloads, and emits the
// rows/series behind every evaluation figure (Figs 7–16). The
// cmd/mspgemm-bench binary and the repository-root testing.B benchmarks
// are thin wrappers over this package.
package bench

import (
	"time"

	"maskedspgemm/internal/core"
)

// Scheme is one named algorithm variant as plotted in the paper.
type Scheme struct {
	// Name as it appears in the figures ("MSA-1P", "SS:DOT*", ...).
	Name string
	// Opt configures core.MaskedSpGEMM.
	Opt core.Options
}

// scheme builds a Scheme from algorithm and phases.
func scheme(a core.Algorithm, p core.Phases) Scheme {
	opt := core.Options{Algorithm: a, Phases: p}
	return Scheme{Name: opt.SchemeName(), Opt: opt}
}

// OurSchemes returns the paper's 12 proposed variants (6 algorithms ×
// 1P/2P) in Figure 8's legend order.
func OurSchemes() []Scheme {
	var out []Scheme
	for _, a := range []core.Algorithm{core.AlgoMSA, core.AlgoHash, core.AlgoMCA, core.AlgoHeap, core.AlgoHeapDot, core.AlgoInner} {
		for _, p := range []core.Phases{core.OnePhase, core.TwoPhase} {
			out = append(out, scheme(a, p))
		}
	}
	return out
}

// BestThreeSchemes returns the top performers the paper carries into
// the baseline comparisons (Fig 9: MSA-1P, Hash-1P, MCA-1P).
func BestThreeSchemes() []Scheme {
	return []Scheme{
		scheme(core.AlgoMSA, core.OnePhase),
		scheme(core.AlgoHash, core.OnePhase),
		scheme(core.AlgoMCA, core.OnePhase),
	}
}

// BaselineSchemes returns the SS:GB stand-ins (§3; DESIGN.md §3).
func BaselineSchemes() []Scheme {
	return []Scheme{
		{Name: "SS:SAXPY*", Opt: core.Options{Algorithm: core.AlgoSaxpyThenMask}},
		{Name: "SS:DOT*", Opt: core.Options{Algorithm: core.AlgoDotTranspose}},
	}
}

// ComplementSchemes returns the variants evaluated on betweenness
// centrality (Fig 16: MSA/Hash in 1P/2P; MCA unsupported, Heap/Inner/
// SS:DOT prohibitively slow per §8.4).
func ComplementSchemes() []Scheme {
	return []Scheme{
		scheme(core.AlgoMSA, core.OnePhase),
		scheme(core.AlgoHash, core.OnePhase),
		scheme(core.AlgoMSA, core.TwoPhase),
		scheme(core.AlgoHash, core.TwoPhase),
	}
}

// Fig7Schemes returns the six algorithm families compared in the
// density sweep (one-phase forms).
func Fig7Schemes() []Scheme {
	return []Scheme{
		scheme(core.AlgoInner, core.OnePhase),
		scheme(core.AlgoHash, core.OnePhase),
		scheme(core.AlgoMSA, core.OnePhase),
		scheme(core.AlgoMCA, core.OnePhase),
		scheme(core.AlgoHeap, core.OnePhase),
		scheme(core.AlgoHeapDot, core.OnePhase),
	}
}

// WithThreads returns a copy of the scheme pinned to a thread count.
func (s Scheme) WithThreads(threads int) Scheme {
	s.Opt.Threads = threads
	return s
}

// TimeBest runs f reps times and returns the fastest wall-clock
// duration and the last error. reps < 1 is treated as 1. Taking the
// minimum over repetitions is the standard noise filter for
// shared-machine benchmarking.
func TimeBest(reps int, f func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(1<<63 - 1)
	var lastErr error
	for r := 0; r < reps; r++ {
		start := time.Now()
		err := f()
		d := time.Since(start)
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
		lastErr = err
	}
	return best, lastErr
}
