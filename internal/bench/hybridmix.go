package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// The per-row poly-algorithm experiment (DESIGN.md §10): the same
// masked product timed under every single accumulator family and
// under AlgoHybrid's mixed per-row bindings. The headline workloads
// sweep the mask density across row bands (1e-4 … 0.5) over the
// suite's input shapes (uniform ER, skewed R-MAT), where no single
// family wins every band and the mixed binding should beat the best
// single one; the uniform-density controls check the selector does
// not regress when one family is globally optimal.
// cmd/mspgemm-bench's "hybridmix" subcommand emits the results as
// BENCH_hybridmix.json.

// HybridMixConfig configures RunHybridMix.
type HybridMixConfig struct {
	// Scale sets the workload dimension (2^Scale rows).
	Scale int
	// EdgeFactor is edges per vertex for the generated inputs.
	EdgeFactor int
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Reps is timing repetitions per point (best-of, see TimeBest).
	Reps int
	// Seed drives the generators.
	Seed uint64
}

// DefaultHybridMixConfig returns the CI-scale configuration.
func DefaultHybridMixConfig() HybridMixConfig {
	return HybridMixConfig{Scale: 12, EdgeFactor: 32, Reps: 3, Seed: 7}
}

// SweepDensities is the mask-density ladder of the banded sweep
// workloads, spanning the §7 evaluation range.
var SweepDensities = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.5}

// BandedMask builds an n×n mask whose consecutive row bands sweep the
// given densities: rows of band j carry ~densities[j]·n random
// columns. This is the workload shape no single accumulator family
// wins end to end.
func BandedMask(n int, densities []float64, seed uint64) *sparse.Pattern {
	rng := gen.NewRNG(seed)
	coo := sparse.NewCOO[float64](n, n, 0)
	bands := len(densities)
	for i := 0; i < n; i++ {
		band := i * bands / n
		deg := int(densities[band] * float64(n))
		if deg < 1 {
			deg = 1
		}
		for d := 0; d < deg; d++ {
			coo.Append(int32(i), int32(rng.Intn(n)), 1)
		}
	}
	m, err := coo.ToCSR(func(a, b float64) float64 { return a })
	if err != nil {
		panic(err) // generator bug: indices are in range by construction
	}
	return m.PatternView()
}

// HybridMixPoint is one (workload, scheme) measurement.
type HybridMixPoint struct {
	// Workload names the input class ("er-sweep", "rmat-sweep",
	// "er-uniform-dense", "er-uniform-sparse").
	Workload string `json:"workload"`
	// Scheme is the algorithm ("MSA", ..., "Hybrid").
	Scheme string `json:"scheme"`
	// Seconds is the best-of-reps execution time.
	Seconds float64 `json:"seconds"`
	// VsBestSingle is the best single-family time on the same workload
	// divided by this point's time (> 1 on a Hybrid row means the
	// mixed binding beat every single family).
	VsBestSingle float64 `json:"vs_best_single"`
	// FamilyRows is the per-family row mix of the Hybrid plan (empty
	// for single-family rows).
	FamilyRows map[string]int `json:"family_rows,omitempty"`
}

// mixFamilies are the single-family schemes the mixed binding is
// compared against, in Family order.
var mixFamilies = []core.Algorithm{
	core.AlgoMSA, core.AlgoHash, core.AlgoMCA, core.AlgoHeap, core.AlgoInner,
	core.AlgoMaskedBit,
}

// mixWorkload is one named (mask, A, B) product.
type mixWorkload struct {
	name string
	mask *sparse.Pattern
	a, b *sparse.CSR[float64]
}

// hybridMixWorkloads builds the experiment inputs: two banded
// density sweeps over the suite's input shapes and two uniform
// controls bracketing the density range.
func hybridMixWorkloads(cfg HybridMixConfig) []mixWorkload {
	n := 1 << cfg.Scale
	er := gen.Symmetrize(gen.ErdosRenyi(n, cfg.EdgeFactor, cfg.Seed))
	rmat := gen.RMATSymmetric(gen.RMATConfig{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed + 1})
	uniformDense := gen.ErdosRenyiPattern(n, n/16, cfg.Seed+4)
	uniformSparse := gen.ErdosRenyiPattern(n, 2, cfg.Seed+5)
	return []mixWorkload{
		{"er-sweep", BandedMask(n, SweepDensities, cfg.Seed+2), er, er},
		{"rmat-sweep", BandedMask(n, SweepDensities, cfg.Seed+3), rmat, rmat},
		{"er-uniform-dense", uniformDense, er, er},
		{"er-uniform-sparse", uniformSparse, er, er},
	}
}

// RunHybridMix times every single accumulator family and the mixed
// per-row binding on each workload.
func RunHybridMix(cfg HybridMixConfig) ([]HybridMixPoint, error) {
	sr := semiring.PlusTimes[float64]{}
	var pts []HybridMixPoint
	for _, wl := range hybridMixWorkloads(cfg) {
		bestSingle := 0.0
		var wlPts []HybridMixPoint
		for _, algo := range append(append([]core.Algorithm{}, mixFamilies...), core.AlgoHybrid) {
			opt := core.Options{Algorithm: algo, Threads: cfg.Threads, ReuseOutput: true}
			plan, err := core.NewPlan(sr, wl.mask, wl.a, wl.b, opt, nil)
			if err != nil {
				return nil, err
			}
			d, err := TimeBest(cfg.Reps, func() error {
				_, err := plan.Execute(wl.a, wl.b)
				return err
			})
			if err != nil {
				return nil, err
			}
			pt := HybridMixPoint{Workload: wl.name, Scheme: algo.String(), Seconds: d.Seconds()}
			if algo == core.AlgoHybrid {
				// Straight from the plan's run encoding — exactly what
				// the timed executions dispatched.
				counts := plan.FamilyRows()
				pt.FamilyRows = make(map[string]int, len(counts))
				for f, c := range counts {
					if c > 0 {
						pt.FamilyRows[core.Family(f).String()] = c
					}
				}
			} else if bestSingle == 0 || d.Seconds() < bestSingle {
				bestSingle = d.Seconds()
			}
			wlPts = append(wlPts, pt)
		}
		for i := range wlPts {
			if wlPts[i].Seconds > 0 {
				wlPts[i].VsBestSingle = bestSingle / wlPts[i].Seconds
			}
		}
		pts = append(pts, wlPts...)
	}
	return pts, nil
}

// WriteHybridMix renders the experiment as an aligned table.
func WriteHybridMix(w io.Writer, cfg HybridMixConfig, pts []HybridMixPoint) {
	fmt.Fprintf(w, "Per-row poly-algorithm experiment — mask-density sweep, scale %d, ef %d\n", cfg.Scale, cfg.EdgeFactor)
	fmt.Fprintf(w, "%-18s %-8s %12s %14s  %s\n", "workload", "scheme", "seconds", "vs-best-single", "family mix")
	for _, p := range pts {
		mix := ""
		if len(p.FamilyRows) > 0 {
			keys := make([]string, 0, len(p.FamilyRows))
			for k := range p.FamilyRows {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				mix += fmt.Sprintf("%s:%d ", k, p.FamilyRows[k])
			}
		}
		fmt.Fprintf(w, "%-18s %-8s %12.6f %13.2fx  %s\n", p.Workload, p.Scheme, p.Seconds, p.VsBestSingle, mix)
	}
}

// hybridMixJSONDoc is the BENCH_hybridmix.json envelope.
type hybridMixJSONDoc struct {
	// Config echoes the experiment configuration.
	Config HybridMixConfig `json:"config"`
	// GOMAXPROCS records the host parallelism the numbers were taken
	// at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Points holds the measurements.
	Points []HybridMixPoint `json:"points"`
}

// WriteHybridMixJSON emits the experiment as the BENCH_hybridmix.json
// document consumed by the perf trajectory.
func WriteHybridMixJSON(w io.Writer, cfg HybridMixConfig, pts []HybridMixPoint) error {
	doc := hybridMixJSONDoc{Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0), Points: pts}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
