package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/sparse"
)

func TestSchemeEnumerations(t *testing.T) {
	ours := OurSchemes()
	if len(ours) != 12 {
		t.Fatalf("OurSchemes = %d, want 12 (6 algorithms × 2 phases)", len(ours))
	}
	seen := map[string]bool{}
	for _, s := range ours {
		if seen[s.Name] {
			t.Fatalf("duplicate scheme %q", s.Name)
		}
		seen[s.Name] = true
		if !strings.HasSuffix(s.Name, "-1P") && !strings.HasSuffix(s.Name, "-2P") {
			t.Errorf("scheme name %q missing phase suffix", s.Name)
		}
	}
	if len(BestThreeSchemes()) != 3 {
		t.Error("BestThreeSchemes should have 3 entries")
	}
	if len(BaselineSchemes()) != 2 {
		t.Error("BaselineSchemes should have 2 entries")
	}
	if len(Fig7Schemes()) != 6 {
		t.Error("Fig7Schemes should have 6 entries")
	}
	for _, s := range ComplementSchemes() {
		if strings.Contains(s.Name, "MCA") {
			t.Error("MCA cannot appear in complement schemes")
		}
	}
	s := OurSchemes()[0].WithThreads(3)
	if s.Opt.Threads != 3 {
		t.Error("WithThreads did not pin thread count")
	}
}

func TestTimeBest(t *testing.T) {
	calls := 0
	d, err := TimeBest(3, func() error {
		calls++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls = %d err = %v", calls, err)
	}
	if d < 500*time.Microsecond {
		t.Errorf("implausible best time %v", d)
	}
	// reps < 1 behaves as 1.
	calls = 0
	if _, err := TimeBest(0, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Errorf("reps=0: calls = %d", calls)
	}
}

func TestRunFig7Tiny(t *testing.T) {
	cfg := Fig7Config{
		Dim:          256,
		MaskDegrees:  []int{2, 16},
		InputDegrees: []int{2, 16},
		Reps:         1,
		Seed:         1,
	}
	cells, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Best == "" || len(c.Seconds) != 6 {
			t.Fatalf("cell incomplete: %+v", c)
		}
		bestT := c.Seconds[c.Best]
		for _, sec := range c.Seconds {
			if sec < bestT {
				t.Fatal("Best is not the minimum")
			}
		}
	}
	var buf bytes.Buffer
	WriteFig7(&buf, cfg, cells)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("WriteFig7 missing caption")
	}
}

func tinySuite() []gen.Instance {
	return []gen.Instance{
		{Name: "rmat-tiny", Build: func() *sparse.CSR[float64] {
			return gen.RMATSymmetric(gen.RMATConfig{Scale: 7, EdgeFactor: 8, Seed: 1})
		}},
		{Name: "er-tiny", Build: func() *sparse.CSR[float64] {
			return gen.Symmetrize(gen.ErdosRenyi(256, 8, 2))
		}},
	}
}

func TestRunProfileAllApps(t *testing.T) {
	schemes := []Scheme{OurSchemes()[0], OurSchemes()[2]} // MSA-1P, Hash-1P
	for _, app := range []AppKind{AppTriangleCount, AppKTruss, AppBetweenness} {
		p, err := RunProfile(ProfileConfig{
			App: app, Instances: tinySuite(), Schemes: schemes, Reps: 1, BCBatch: 8,
		})
		if err != nil {
			t.Fatalf("%v: %v", app, err)
		}
		if len(p.Instances) != 2 || len(p.Schemes) != 2 {
			t.Fatalf("%v: profile shape %d×%d", app, len(p.Instances), len(p.Schemes))
		}
		// Someone must be best on each instance.
		winners := 0.0
		for _, s := range p.Schemes {
			winners += p.WinFraction(s)
		}
		if winners < 1 {
			t.Errorf("%v: no winners recorded", app)
		}
		var buf bytes.Buffer
		WriteProfile(&buf, app.String(), p)
		if !strings.Contains(buf.String(), "winner:") {
			t.Error("WriteProfile missing winner line")
		}
	}
}

func TestRunScaleSweep(t *testing.T) {
	for _, app := range []AppKind{AppTriangleCount, AppKTruss, AppBetweenness} {
		cfg := ScaleSweepConfig{
			App: app, Scales: []int{7, 8}, EdgeFactor: 8,
			Schemes: []Scheme{OurSchemes()[0]}, Reps: 1, BCBatch: 8, Seed: 3,
		}
		pts, err := RunScaleSweep(cfg)
		if err != nil {
			t.Fatalf("%v: %v", app, err)
		}
		if len(pts) != 2 {
			t.Fatalf("%v: points = %d", app, len(pts))
		}
		for _, pt := range pts {
			if pt.Rate <= 0 || pt.Seconds <= 0 {
				t.Errorf("%v: non-positive rate/time %+v", app, pt)
			}
		}
		var buf bytes.Buffer
		WriteScaleSweep(&buf, "test", "RATE", cfg, pts)
		if !strings.Contains(buf.String(), "MSA-1P") {
			t.Error("WriteScaleSweep missing series")
		}
	}
}

func TestRunThreadSweep(t *testing.T) {
	cfg := ThreadSweepConfig{
		Scale: 7, EdgeFactor: 8, Threads: []int{1, 2},
		Schemes: []Scheme{OurSchemes()[0]}, Reps: 1, Seed: 4,
	}
	pts, err := RunThreadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	var buf bytes.Buffer
	WriteThreadSweep(&buf, "test", cfg, pts)
	if !strings.Contains(buf.String(), "GFLOPS") {
		t.Error("WriteThreadSweep missing rate name")
	}
}

func TestCheckCorrectness(t *testing.T) {
	if err := CheckCorrectness(2); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedSkewTiny(t *testing.T) {
	cfg := SchedSkewConfig{Scale: 8, EdgeFactor: 8, Threads: []int{1, 2}, Reps: 1, Seed: 5}
	pts, err := RunSchedSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads × 2 thread counts × 3 schedules.
	if len(pts) != 12 {
		t.Fatalf("points = %d, want 12", len(pts))
	}
	fixedSeen := map[string]bool{}
	for _, p := range pts {
		if p.Seconds <= 0 {
			t.Errorf("non-positive time: %+v", p)
		}
		if p.Schedule == "FixedGrain" {
			if p.SpeedupVsFixed != 1 {
				t.Errorf("fixed-grain speedup vs itself = %v", p.SpeedupVsFixed)
			}
			fixedSeen[p.Workload] = true
		}
	}
	if !fixedSeen["rmat-hubs"] || !fixedSeen["er-uniform"] {
		t.Error("missing workloads in sweep")
	}
	var buf bytes.Buffer
	WriteSchedSkew(&buf, cfg, pts)
	if !strings.Contains(buf.String(), "CostPartition") {
		t.Error("table missing schedule column")
	}
	buf.Reset()
	if err := WriteSchedJSON(&buf, cfg, pts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Points []SchedSkewPoint `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("BENCH_sched.json round-trip: %v", err)
	}
	if len(doc.Points) != len(pts) {
		t.Fatalf("JSON points = %d, want %d", len(doc.Points), len(pts))
	}
}

// TestRunBitmapMixTiny exercises the MaskedBit experiment end to end
// at a small scale: every workload carries all eight schemes, the
// Hybrid points expose their family mix, and the JSON document
// round-trips.
func TestRunBitmapMixTiny(t *testing.T) {
	cfg := BitmapMixConfig{Scale: 8, EdgeFactor: 4, Threads: 2, Reps: 1, Seed: 11}
	pts, err := RunBitmapMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × (6 single families + 2 Hybrid variants).
	if len(pts) != 32 {
		t.Fatalf("points = %d, want 32", len(pts))
	}
	workloads := map[string]bool{}
	for _, p := range pts {
		if p.Seconds <= 0 {
			t.Errorf("non-positive time: %+v", p)
		}
		workloads[p.Workload] = true
		switch p.Scheme {
		case "Hybrid", HybridNoMaskedBitScheme:
			if len(p.FamilyRows) == 0 {
				t.Errorf("%s/%s: missing family mix", p.Workload, p.Scheme)
			}
			if p.Scheme == HybridNoMaskedBitScheme {
				if _, ok := p.FamilyRows["MaskedBit"]; ok {
					t.Errorf("%s: ablated Hybrid bound MaskedBit rows", p.Workload)
				}
			}
		case "MSA":
			if p.VsMSA != 1 {
				t.Errorf("%s/MSA: vs_msa = %v, want 1", p.Workload, p.VsMSA)
			}
		}
	}
	for _, wl := range []string{"er-dense", "er-sweep", "rmat-sweep", "er-uniform-sparse"} {
		if !workloads[wl] {
			t.Errorf("missing workload %s", wl)
		}
	}
	var buf bytes.Buffer
	WriteBitmapMix(&buf, cfg, pts)
	if !strings.Contains(buf.String(), "MaskedBit") {
		t.Error("table missing MaskedBit rows")
	}
	buf.Reset()
	if err := WriteBitmapMixJSON(&buf, cfg, pts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Points []BitmapMixPoint `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("BENCH_bitmap.json round-trip: %v", err)
	}
	if len(doc.Points) != len(pts) {
		t.Fatalf("JSON points = %d, want %d", len(doc.Points), len(pts))
	}
}

// TestRunCancelOverheadTiny exercises the cancel-overhead experiment
// end to end at a small scale: both arms time positively, the ratio is
// their quotient, and the JSON document round-trips with the .ratio
// field the CI gate reads.
func TestRunCancelOverheadTiny(t *testing.T) {
	cfg := CancelOverheadConfig{Scale: 8, EdgeFactor: 4, Threads: 2, Reps: 2, Seed: 17}
	res, err := RunCancelOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineSeconds <= 0 || res.TokenSeconds <= 0 {
		t.Fatalf("non-positive arm times: %+v", res)
	}
	if want := res.TokenSeconds / res.BaselineSeconds; res.Ratio != want {
		t.Errorf("ratio = %v, want %v", res.Ratio, want)
	}
	var buf bytes.Buffer
	WriteCancelOverhead(&buf, cfg, res)
	if !strings.Contains(buf.String(), "token-never-latched") {
		t.Errorf("table missing token arm:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteCancelOverheadJSON(&buf, cfg, res); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Result struct {
			Ratio float64 `json:"ratio"`
		} `json:"result"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("BENCH_cancel.json round-trip: %v", err)
	}
	if doc.Result.Ratio != res.Ratio {
		t.Errorf("JSON ratio = %v, want %v", doc.Result.Ratio, res.Ratio)
	}
}

// TestSkewedGraphIsSkewed pins the adversarial construction: after the
// degree-ascending relabel the heaviest rows are adjacent at the tail,
// so the last DefaultGrain-row blocks hold a disproportionate share of
// the flops and are discovered last by fixed-grain claiming.
func TestSkewedGraphIsSkewed(t *testing.T) {
	g := SkewedGraph(10, 16, 3)
	for i := 1; i < g.Rows; i++ {
		if g.RowNNZ(i) < g.RowNNZ(i-1) {
			t.Fatalf("degrees not non-decreasing at row %d", i)
		}
	}
	if g.RowNNZ(g.Rows-1) < 8*int(g.NNZ())/g.Rows {
		t.Fatalf("tail row degree %d is not a hub (mean %d)", g.RowNNZ(g.Rows-1), int(g.NNZ())/g.Rows)
	}
}
