package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
)

// The cancellation-overhead experiment (DESIGN.md §15): the cooperative
// CancelToken is polled once per block claim plus at pass checkpoints,
// and the containment design is only free if that polling is invisible
// on the hot path. This experiment times the same plan on the same
// executor with and without a never-latched token and reports the
// ratio; cmd/mspgemm-bench's "cancel" subcommand emits it as
// BENCH_cancel.json, and CI gates the ratio (target ≤2% overhead plus a
// shared-runner noise band). The workload is the uniform ER self-mask
// control — flat row costs, so a fixed per-block cost has nowhere to
// hide behind skew.

// CancelOverheadConfig configures RunCancelOverhead.
type CancelOverheadConfig struct {
	// Scale sets the workload dimension (2^Scale rows).
	Scale int
	// EdgeFactor is edges per vertex for the generated input.
	EdgeFactor int
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Reps is timing repetitions per arm (best-of, see TimeBest).
	Reps int
	// Seed drives the generator.
	Seed uint64
}

// DefaultCancelOverheadConfig returns the CI-scale configuration.
func DefaultCancelOverheadConfig() CancelOverheadConfig {
	return CancelOverheadConfig{Scale: 12, EdgeFactor: 8, Reps: 5, Seed: 17}
}

// CancelOverheadResult holds the two timed arms and their ratio.
type CancelOverheadResult struct {
	// BaselineSeconds is the best-of-reps time with no cancel token
	// (ExecOptions.Cancel nil — the polling loads short-circuit on the
	// nil check).
	BaselineSeconds float64 `json:"baseline_seconds"`
	// TokenSeconds is the best-of-reps time with a live, never-latched
	// token — every block claim pays the real atomic load.
	TokenSeconds float64 `json:"token_seconds"`
	// Ratio is TokenSeconds / BaselineSeconds; the CI gate asserts it
	// stays within the checkpoint-overhead budget.
	Ratio float64 `json:"ratio"`
}

// RunCancelOverhead times one MSA one-phase execution of the uniform ER
// self-mask workload with and without a cancel token. Both arms share
// one plan and one executor, and the reps are interleaved round-robin
// (the same noise discipline as RunBitmapMix): the ratio is what the CI
// gate asserts, so each arm's k-th rep runs within milliseconds of the
// other's and ambient machine-load drift cancels out of the quotient.
func RunCancelOverhead(cfg CancelOverheadConfig) (CancelOverheadResult, error) {
	var res CancelOverheadResult
	sr := semiring.PlusTimes[float64]{}
	g := gen.Symmetrize(gen.ErdosRenyi(1<<cfg.Scale, cfg.EdgeFactor, cfg.Seed))
	opt := core.Options{Algorithm: core.AlgoMSA, Threads: cfg.Threads, ReuseOutput: true}
	plan, err := core.NewPlan(sr, g.PatternView(), g, g, opt, nil)
	if err != nil {
		return res, err
	}
	exec := core.NewExecutor[float64](sr)
	token := &parallel.CancelToken{}
	arms := []struct {
		eo   core.ExecOptions
		best *float64
	}{
		{core.ExecOptions{ReuseOutput: true}, &res.BaselineSeconds},
		{core.ExecOptions{ReuseOutput: true, Cancel: token}, &res.TokenSeconds},
	}
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		for _, arm := range arms {
			eo := arm.eo
			d, err := TimeBest(1, func() error {
				_, err := plan.ExecuteOnOpts(exec, g, g, eo)
				return err
			})
			if err != nil {
				return res, err
			}
			if rep == 0 || d.Seconds() < *arm.best {
				*arm.best = d.Seconds()
			}
		}
	}
	if res.BaselineSeconds > 0 {
		res.Ratio = res.TokenSeconds / res.BaselineSeconds
	}
	return res, nil
}

// WriteCancelOverhead renders the experiment as an aligned table.
func WriteCancelOverhead(w io.Writer, cfg CancelOverheadConfig, res CancelOverheadResult) {
	fmt.Fprintf(w, "cancel-token polling overhead — scale %d, ef %d, MSA-1P uniform ER self-mask\n", cfg.Scale, cfg.EdgeFactor)
	fmt.Fprintf(w, "%-22s %12s\n", "arm", "seconds")
	fmt.Fprintf(w, "%-22s %12.6f\n", "no-token", res.BaselineSeconds)
	fmt.Fprintf(w, "%-22s %12.6f\n", "token-never-latched", res.TokenSeconds)
	fmt.Fprintf(w, "ratio %.4f (token / no-token; 1.00 = free polling)\n", res.Ratio)
}

// cancelJSONDoc is the BENCH_cancel.json envelope.
type cancelJSONDoc struct {
	// Config echoes the experiment configuration.
	Config CancelOverheadConfig `json:"config"`
	// GOMAXPROCS records the host parallelism the numbers were taken
	// at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Result holds the measurement.
	Result CancelOverheadResult `json:"result"`
}

// WriteCancelOverheadJSON emits the experiment as the BENCH_cancel.json
// document consumed by the CI overhead gate.
func WriteCancelOverheadJSON(w io.Writer, cfg CancelOverheadConfig, res CancelOverheadResult) error {
	doc := cancelJSONDoc{Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0), Result: res}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
