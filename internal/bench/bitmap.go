package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
)

// The MaskedBit accumulator experiment (DESIGN.md §12): the bitmap-state
// accumulator against the byte-state MSA on the workload class it was
// built for — dense-mask rows whose cost is dominated by the Begin/Gather
// walks rather than by products — plus the banded density sweeps and a
// skewed R-MAT input, where the interesting question is whether adding
// MaskedBit to the Hybrid selector's menu helps or hurts the mixed
// binding. Every workload therefore times each single family, the
// default Hybrid (menu includes MaskedBit), and a Hybrid restricted to
// the pre-MaskedBit menu. cmd/mspgemm-bench's "bitmap" subcommand emits
// the results as BENCH_bitmap.json; CI gates on the er-dense MaskedBit
// point staying at least at MSA parity.

// HybridNoMaskedBitScheme names the ablation scheme: the Hybrid
// selector restricted to the five pre-MaskedBit families.
const HybridNoMaskedBitScheme = "Hybrid-noMaskedBit"

// BitmapMixConfig configures RunBitmapMix.
type BitmapMixConfig struct {
	// Scale sets the workload dimension (2^Scale rows).
	Scale int
	// EdgeFactor is edges per vertex for the generated inputs. The
	// dense-mask workload keeps inputs at this sparsity while the mask
	// carries n/4 entries per row, which is what makes its rows
	// walk-dominated.
	EdgeFactor int
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Reps is timing repetitions per point (best-of, see TimeBest).
	Reps int
	// Seed drives the generators.
	Seed uint64
}

// DefaultBitmapMixConfig returns the CI-scale configuration.
func DefaultBitmapMixConfig() BitmapMixConfig {
	return BitmapMixConfig{Scale: 12, EdgeFactor: 8, Reps: 3, Seed: 11}
}

// BitmapMixPoint is one (workload, scheme) measurement.
type BitmapMixPoint struct {
	// Workload names the input class ("er-dense", "er-sweep",
	// "rmat-sweep", "er-uniform-sparse").
	Workload string `json:"workload"`
	// Scheme is the algorithm ("MSA", ..., "MaskedBit", "Hybrid",
	// "Hybrid-noMaskedBit").
	Scheme string `json:"scheme"`
	// Seconds is the best-of-reps execution time.
	Seconds float64 `json:"seconds"`
	// VsMSA is the MSA time on the same workload divided by this
	// point's time (> 1 means faster than MSA). This is the ratio the
	// CI gate asserts for MaskedBit on the dense-mask workload.
	VsMSA float64 `json:"vs_msa"`
	// VsBestSingle is the best single-family time on the same workload
	// divided by this point's time.
	VsBestSingle float64 `json:"vs_best_single"`
	// FamilyRows is the per-family row mix of a Hybrid plan (empty for
	// single-family rows).
	FamilyRows map[string]int `json:"family_rows,omitempty"`
}

// bitmapWorkloads builds the experiment inputs. er-dense is the
// headline: a mask with n/4 entries per row over inputs with only
// EdgeFactor entries per row, so nnz(mask row) dwarfs the row's flops
// and the accumulator's per-row walks dominate. The sweeps and the
// uniform-sparse control reuse the hybridmix shapes so the two
// experiments stay comparable.
func bitmapWorkloads(cfg BitmapMixConfig) []mixWorkload {
	n := 1 << cfg.Scale
	er := gen.Symmetrize(gen.ErdosRenyi(n, cfg.EdgeFactor, cfg.Seed))
	rmat := gen.RMATSymmetric(gen.RMATConfig{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed + 1})
	dense := gen.ErdosRenyiPattern(n, n/4, cfg.Seed+2)
	uniformSparse := gen.ErdosRenyiPattern(n, 2, cfg.Seed+5)
	return []mixWorkload{
		{"er-dense", dense, er, er},
		{"er-sweep", BandedMask(n, SweepDensities, cfg.Seed+3), er, er},
		{"rmat-sweep", BandedMask(n, SweepDensities, cfg.Seed+4), rmat, rmat},
		{"er-uniform-sparse", uniformSparse, er, er},
	}
}

// bitmapSchemes enumerates the timed schemes: every single family, the
// default Hybrid, and the Hybrid ablated back to the pre-MaskedBit
// menu.
type bitmapScheme struct {
	name string
	opt  core.Options
}

func bitmapSchemes(threads int) []bitmapScheme {
	var schemes []bitmapScheme
	for _, algo := range mixFamilies {
		schemes = append(schemes, bitmapScheme{algo.String(), core.Options{Algorithm: algo, Threads: threads, ReuseOutput: true}})
	}
	schemes = append(schemes,
		bitmapScheme{core.AlgoHybrid.String(), core.Options{Algorithm: core.AlgoHybrid, Threads: threads, ReuseOutput: true}},
		bitmapScheme{HybridNoMaskedBitScheme, core.Options{
			Algorithm:      core.AlgoHybrid,
			HybridFamilies: core.Families(core.FamMSA, core.FamHash, core.FamMCA, core.FamHeap, core.FamPull),
			Threads:        threads,
			ReuseOutput:    true,
		}},
	)
	return schemes
}

// RunBitmapMix times every scheme on each workload. Unlike the other
// experiments, the reps are interleaved round-robin across schemes
// rather than taken back to back per scheme: the vs_msa ratio is what
// the CI gate asserts, and taking each scheme's reps minutes apart
// would let ambient machine-load drift land entirely on whichever
// scheme runs during a spike. Round-robin puts every scheme's k-th
// rep within milliseconds of its rivals', so the best-of minimum
// compares like with like.
func RunBitmapMix(cfg BitmapMixConfig) ([]BitmapMixPoint, error) {
	sr := semiring.PlusTimes[float64]{}
	var pts []BitmapMixPoint
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for _, wl := range bitmapWorkloads(cfg) {
		schemes := bitmapSchemes(cfg.Threads)
		plans := make([]*core.Plan[float64, semiring.PlusTimes[float64]], len(schemes))
		best := make([]float64, len(schemes))
		for i, sc := range schemes {
			plan, err := core.NewPlan(sr, wl.mask, wl.a, wl.b, sc.opt, nil)
			if err != nil {
				return nil, err
			}
			plans[i] = plan
		}
		for rep := 0; rep < reps; rep++ {
			for i := range schemes {
				plan := plans[i]
				d, err := TimeBest(1, func() error {
					_, err := plan.Execute(wl.a, wl.b)
					return err
				})
				if err != nil {
					return nil, err
				}
				if rep == 0 || d.Seconds() < best[i] {
					best[i] = d.Seconds()
				}
			}
		}
		msaTime, bestSingle := 0.0, 0.0
		for i, sc := range schemes {
			if sc.opt.Algorithm == core.AlgoHybrid {
				continue
			}
			if sc.opt.Algorithm == core.AlgoMSA {
				msaTime = best[i]
			}
			if bestSingle == 0 || best[i] < bestSingle {
				bestSingle = best[i]
			}
		}
		for i, sc := range schemes {
			pt := BitmapMixPoint{Workload: wl.name, Scheme: sc.name, Seconds: best[i]}
			if sc.opt.Algorithm == core.AlgoHybrid {
				counts := plans[i].FamilyRows()
				pt.FamilyRows = make(map[string]int, len(counts))
				for f, c := range counts {
					if c > 0 {
						pt.FamilyRows[core.Family(f).String()] = c
					}
				}
			}
			if pt.Seconds > 0 {
				pt.VsMSA = msaTime / pt.Seconds
				pt.VsBestSingle = bestSingle / pt.Seconds
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// WriteBitmapMix renders the experiment as an aligned table.
func WriteBitmapMix(w io.Writer, cfg BitmapMixConfig, pts []BitmapMixPoint) {
	fmt.Fprintf(w, "MaskedBit accumulator experiment — scale %d, ef %d\n", cfg.Scale, cfg.EdgeFactor)
	fmt.Fprintf(w, "%-18s %-18s %12s %8s %14s  %s\n", "workload", "scheme", "seconds", "vs-msa", "vs-best-single", "family mix")
	for _, p := range pts {
		mix := ""
		if len(p.FamilyRows) > 0 {
			keys := make([]string, 0, len(p.FamilyRows))
			for k := range p.FamilyRows {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				mix += fmt.Sprintf("%s:%d ", k, p.FamilyRows[k])
			}
		}
		fmt.Fprintf(w, "%-18s %-18s %12.6f %7.2fx %13.2fx  %s\n", p.Workload, p.Scheme, p.Seconds, p.VsMSA, p.VsBestSingle, mix)
	}
}

// bitmapJSONDoc is the BENCH_bitmap.json envelope.
type bitmapJSONDoc struct {
	// Config echoes the experiment configuration.
	Config BitmapMixConfig `json:"config"`
	// GOMAXPROCS records the host parallelism the numbers were taken
	// at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Points holds the measurements.
	Points []BitmapMixPoint `json:"points"`
}

// WriteBitmapMixJSON emits the experiment as the BENCH_bitmap.json
// document consumed by the perf trajectory and the CI gate.
func WriteBitmapMixJSON(w io.Writer, cfg BitmapMixConfig, pts []BitmapMixPoint) error {
	doc := bitmapJSONDoc{Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0), Points: pts}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
