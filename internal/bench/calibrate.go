package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"maskedspgemm/internal/calibrate"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
)

// The calibration experiment (DESIGN.md §14): does binding Hybrid
// plans under host-fitted cost coefficients help, and — the safety
// side the CI gate actually asserts — does it ever hurt? Each workload
// is planned twice, once under the literal cost models (static) and
// once under coefficients fitted by a real startup micro-benchmark
// (calibrated), and the two plans' executions are timed interleaved
// (see RunBitmapMix for why). Uniform ER controls are the do-no-harm
// set: a correct fit barely moves their binding, so calibrated must
// stay within noise of static there. The sweep workloads are where a
// scale error in the literal models would move the family crossovers;
// when the fit shifts their binding, the point records it so the
// trajectory can watch whether calibration wins follow.

// CalibrateBenchConfig configures RunCalibrate.
type CalibrateBenchConfig struct {
	// Scale sets the workload dimension (2^Scale rows).
	Scale int
	// EdgeFactor is edges per vertex for the generated inputs.
	EdgeFactor int
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Reps is timing repetitions per point (best-of, interleaved).
	Reps int
	// Seed drives the generators.
	Seed uint64
	// FitDuration bounds the startup fit (0 = calibrate's default).
	FitDuration time.Duration
}

// DefaultCalibrateBenchConfig returns the CI-scale configuration.
func DefaultCalibrateBenchConfig() CalibrateBenchConfig {
	return CalibrateBenchConfig{Scale: 12, EdgeFactor: 8, Reps: 5, Seed: 21}
}

// CalibratePoint is one workload's static-vs-calibrated measurement.
type CalibratePoint struct {
	// Workload names the input class; "er-uniform*" points are the
	// do-no-harm controls the CI gate asserts.
	Workload string `json:"workload"`
	// Control marks the uniform controls the gate bounds.
	Control bool `json:"control"`
	// StaticSeconds is the best-of-reps time under the literal models.
	StaticSeconds float64 `json:"static_seconds"`
	// CalibratedSeconds is the best-of-reps time under the fitted
	// coefficients.
	CalibratedSeconds float64 `json:"calibrated_seconds"`
	// Ratio is CalibratedSeconds / StaticSeconds: ≤ 1 means calibration
	// helped (or was free), the gate bounds how far above 1 controls
	// may drift.
	Ratio float64 `json:"ratio"`
	// BindingChanged reports whether the fitted coefficients moved any
	// row to a different family (or changed the partition layout).
	BindingChanged bool `json:"binding_changed"`
	// StaticRows is the per-family row mix of the literal-model plan.
	StaticRows map[string]int `json:"static_rows,omitempty"`
	// CalibratedRows is the per-family row mix of the calibrated plan.
	CalibratedRows map[string]int `json:"calibrated_rows,omitempty"`
}

// calibrateWorkloads builds the experiment inputs: two uniform ER
// controls (sparse and moderate masks, where the binding is near
// degenerate and calibration must be free) and the banded-mask sweeps
// over ER and R-MAT structure, the shapes whose mixed bindings the
// coefficients can actually move.
func calibrateWorkloads(cfg CalibrateBenchConfig) []mixWorkload {
	n := 1 << cfg.Scale
	er := gen.Symmetrize(gen.ErdosRenyi(n, cfg.EdgeFactor, cfg.Seed))
	rmat := gen.RMATSymmetric(gen.RMATConfig{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed + 1})
	return []mixWorkload{
		{"er-uniform-self", er.PatternView(), er, er},
		{"er-uniform-sparse", gen.ErdosRenyiPattern(n, 2, cfg.Seed+2), er, er},
		{"er-sweep", BandedMask(n, SweepDensities, cfg.Seed+3), er, er},
		{"rmat-sweep", BandedMask(n, SweepDensities, cfg.Seed+4), rmat, rmat},
	}
}

// familyRowMap renders a Hybrid plan's row mix.
func familyRowMap(counts [core.NumFamilies]int) map[string]int {
	out := make(map[string]int)
	for f, c := range counts {
		if c > 0 {
			out[core.Family(f).String()] = c
		}
	}
	return out
}

// RunCalibrate fits coefficients on this host, then times static vs
// calibrated Hybrid plans on each workload, reps interleaved so
// ambient load lands on both sides equally.
func RunCalibrate(cfg CalibrateBenchConfig) ([]CalibratePoint, core.CostCoeffs, error) {
	sr := semiring.PlusTimes[float64]{}
	fit := calibrate.Fit(calibrate.Config{MaxDuration: cfg.FitDuration})
	if fit.Coeffs.IsZero() {
		return nil, fit.Coeffs, fmt.Errorf("calibration fit produced no coefficients")
	}
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	var pts []CalibratePoint
	for _, wl := range calibrateWorkloads(cfg) {
		statOpt := core.Options{Algorithm: core.AlgoHybrid, Threads: cfg.Threads, ReuseOutput: true}
		calOpt := statOpt
		calOpt.CostCoeffs = fit.Coeffs
		statPlan, err := core.NewPlan(sr, wl.mask, wl.a, wl.b, statOpt, nil)
		if err != nil {
			return nil, fit.Coeffs, err
		}
		calPlan, err := core.NewPlan(sr, wl.mask, wl.a, wl.b, calOpt, nil)
		if err != nil {
			return nil, fit.Coeffs, err
		}
		plans := []*core.Plan[float64, semiring.PlusTimes[float64]]{statPlan, calPlan}
		best := [2]float64{}
		for rep := 0; rep < reps; rep++ {
			for i, plan := range plans {
				d, err := TimeBest(1, func() error {
					_, err := plan.Execute(wl.a, wl.b)
					return err
				})
				if err != nil {
					return nil, fit.Coeffs, err
				}
				if rep == 0 || d.Seconds() < best[i] {
					best[i] = d.Seconds()
				}
			}
		}
		pt := CalibratePoint{
			Workload:          wl.name,
			Control:           len(wl.name) >= 10 && wl.name[:10] == "er-uniform",
			StaticSeconds:     best[0],
			CalibratedSeconds: best[1],
			StaticRows:        familyRowMap(statPlan.FamilyRows()),
			CalibratedRows:    familyRowMap(calPlan.FamilyRows()),
		}
		if pt.StaticSeconds > 0 {
			pt.Ratio = pt.CalibratedSeconds / pt.StaticSeconds
		}
		pt.BindingChanged = fmt.Sprint(pt.StaticRows) != fmt.Sprint(pt.CalibratedRows)
		pts = append(pts, pt)
	}
	return pts, fit.Coeffs, nil
}

// WriteCalibrate renders the experiment as an aligned table.
func WriteCalibrate(w io.Writer, cfg CalibrateBenchConfig, coeffs core.CostCoeffs, pts []CalibratePoint) {
	fmt.Fprintf(w, "Cost-model calibration experiment — scale %d, ef %d\n", cfg.Scale, cfg.EdgeFactor)
	fmt.Fprintf(w, "fitted coefficients:")
	for f := core.Family(0); f < core.NumFamilies; f++ {
		fmt.Fprintf(w, " %s=%.3f", f, coeffs[f])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s %-8s %12s %12s %7s %s\n", "workload", "control", "static-s", "calibr-s", "ratio", "binding")
	for _, p := range pts {
		binding := "unchanged"
		if p.BindingChanged {
			binding = "CHANGED"
		}
		fmt.Fprintf(w, "%-18s %-8v %12.6f %12.6f %6.3fx %s\n", p.Workload, p.Control, p.StaticSeconds, p.CalibratedSeconds, p.Ratio, binding)
	}
}

// calibrateJSONDoc is the BENCH_calibrate.json envelope.
type calibrateJSONDoc struct {
	// Config echoes the experiment configuration.
	Config CalibrateBenchConfig `json:"config"`
	// GOMAXPROCS records the host parallelism.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Coefficients maps family name → fitted coefficient.
	Coefficients map[string]float64 `json:"coefficients"`
	// Points holds the measurements.
	Points []CalibratePoint `json:"points"`
}

// WriteCalibrateJSON emits the experiment as the BENCH_calibrate.json
// document consumed by the perf trajectory and the CI gate: every
// control point's ratio must stay under the gate bound (calibration
// does no harm where it has nothing to fix).
func WriteCalibrateJSON(w io.Writer, cfg CalibrateBenchConfig, coeffs core.CostCoeffs, pts []CalibratePoint) error {
	cm := make(map[string]float64, core.NumFamilies)
	for f := core.Family(0); f < core.NumFamilies; f++ {
		cm[f.String()] = coeffs[f]
	}
	doc := calibrateJSONDoc{Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0), Coefficients: cm, Points: pts}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
