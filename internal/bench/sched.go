package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// The scheduler-skew experiment (DESIGN.md §9): the same masked
// product timed under every scheduling strategy, on a workload built
// to break fixed-grain scheduling (an R-MAT graph relabeled so its
// hub rows sit adjacent at the tail — a few late 64-row blocks hold a
// huge share of the flops) and on a uniform Erdős-Rényi control where
// nothing should change. cmd/mspgemm-bench's "sched" subcommand emits
// the results as BENCH_sched.json for the performance trajectory.

// SchedSkewConfig configures RunSchedSkew.
type SchedSkewConfig struct {
	// Scale is the R-MAT scale of the skewed workload (2^Scale rows);
	// the uniform control matches its dimension.
	Scale int
	// EdgeFactor is edges per vertex for both workloads.
	EdgeFactor int
	// Threads lists the worker counts to sweep.
	Threads []int
	// Reps is timing repetitions per point (best-of, see TimeBest).
	Reps int
	// Seed drives both generators.
	Seed uint64
}

// DefaultSchedSkewConfig returns the CI-scale configuration.
func DefaultSchedSkewConfig() SchedSkewConfig {
	return SchedSkewConfig{Scale: 12, EdgeFactor: 16, Threads: []int{1, 2, 4, 8}, Reps: 3, Seed: 42}
}

// SchedSkewPoint is one (workload, schedule, threads) measurement.
type SchedSkewPoint struct {
	// Workload names the input class ("rmat-hubs" or "er-uniform").
	Workload string `json:"workload"`
	// Schedule names the strategy ("FixedGrain", "CostPartition",
	// "WorkSteal").
	Schedule string `json:"schedule"`
	// Threads is the worker count.
	Threads int `json:"threads"`
	// Seconds is the best-of-reps execution time.
	Seconds float64 `json:"seconds"`
	// SpeedupVsFixed is the fixed-grain time at the same workload and
	// thread count divided by this point's time (> 1 means faster than
	// fixed grain).
	SpeedupVsFixed float64 `json:"speedup_vs_fixed"`
	// Imbalance is the busiest worker's busy time over the mean, from
	// an untimed telemetry run of the same plan.
	Imbalance float64 `json:"imbalance"`
	// BlocksStolen counts steal events in the telemetry run (WorkSteal
	// only).
	BlocksStolen int `json:"blocks_stolen"`
	// CostSkew is the plan's measured max/mean row-cost ratio.
	CostSkew float64 `json:"cost_skew"`
}

// schedModes are the concrete strategies the experiment sweeps.
var schedModes = []core.Schedule{core.SchedFixedGrain, core.SchedCostPartition, core.SchedWorkSteal}

// SkewedGraph builds the adversarial input: a symmetric R-MAT graph
// relabeled by non-decreasing degree, so the hub rows an R-MAT degree
// distribution concentrates the flops in sit adjacent at the tail.
// That is the worst case for fixed-grain dynamic claiming: the heavy
// blocks are discovered last, when no other work remains to balance
// them against (the classic LPT argument — discovered first, they
// would be scheduled near-optimally by accident). A cost-partitioned
// schedule splits the hub cluster across workers regardless of where
// the labeling puts it.
func SkewedGraph(scale, edgeFactor int, seed uint64) *sparse.CSR[float64] {
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: scale, EdgeFactor: edgeFactor, Seed: seed})
	perm := graph.DegreeSortPerm(g) // perm[v] = new id, hubs first
	n := int32(g.Rows)
	for v := range perm {
		perm[v] = n - 1 - perm[v] // reverse: hubs last
	}
	return sparse.PermuteSym(g, perm)
}

// RunSchedSkew times the masked product M=A, C = A ⊙ (A·A) (MSA-1P)
// under every scheduling strategy on the skewed and uniform workloads,
// sweeping the configured thread counts.
func RunSchedSkew(cfg SchedSkewConfig) ([]SchedSkewPoint, error) {
	sr := semiring.PlusTimes[float64]{}
	type workload struct {
		name string
		g    *sparse.CSR[float64]
	}
	n := 1 << cfg.Scale
	workloads := []workload{
		{"rmat-hubs", SkewedGraph(cfg.Scale, cfg.EdgeFactor, cfg.Seed)},
		{"er-uniform", gen.Symmetrize(gen.ErdosRenyi(n, cfg.EdgeFactor, cfg.Seed+1))},
	}
	var pts []SchedSkewPoint
	for _, wl := range workloads {
		mask := wl.g.PatternView()
		for _, threads := range cfg.Threads {
			var fixedSec float64
			for _, mode := range schedModes {
				opt := core.Options{
					Algorithm: core.AlgoMSA, Threads: threads,
					Schedule: mode, ReuseOutput: true,
				}
				plan, err := core.NewPlan(sr, mask, wl.g, wl.g, opt, nil)
				if err != nil {
					return nil, err
				}
				d, err := TimeBest(cfg.Reps, func() error {
					_, err := plan.Execute(wl.g, wl.g)
					return err
				})
				if err != nil {
					return nil, err
				}
				// Telemetry from a separate, untimed plan so clock reads
				// never pollute the timing — block counts differ per mode,
				// which would bias the comparison.
				opt.CollectSchedStats = true
				statsPlan, err := core.NewPlan(sr, mask, wl.g, wl.g, opt, nil)
				if err != nil {
					return nil, err
				}
				if _, err := statsPlan.Execute(wl.g, wl.g); err != nil {
					return nil, err
				}
				st := statsPlan.SchedStats()
				pt := SchedSkewPoint{
					Workload: wl.name, Schedule: mode.String(), Threads: threads,
					Seconds: d.Seconds(), Imbalance: st.Imbalance(),
					BlocksStolen: st.Stolen(), CostSkew: plan.CostSkew(),
				}
				if mode == core.SchedFixedGrain {
					fixedSec = pt.Seconds
				}
				if fixedSec > 0 && pt.Seconds > 0 {
					pt.SpeedupVsFixed = fixedSec / pt.Seconds
				}
				pts = append(pts, pt)
			}
		}
	}
	return pts, nil
}

// WriteSchedSkew renders the experiment as an aligned table.
func WriteSchedSkew(w io.Writer, cfg SchedSkewConfig, pts []SchedSkewPoint) {
	fmt.Fprintf(w, "Scheduler skew experiment — masked A ⊙ (A·A), MSA-1P, scale %d, ef %d\n", cfg.Scale, cfg.EdgeFactor)
	fmt.Fprintf(w, "%-12s %-14s %8s %12s %10s %10s %8s\n",
		"workload", "schedule", "threads", "seconds", "vs-fixed", "imbalance", "stolen")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12s %-14s %8d %12.6f %9.2fx %10.2f %8d\n",
			p.Workload, p.Schedule, p.Threads, p.Seconds, p.SpeedupVsFixed, p.Imbalance, p.BlocksStolen)
	}
}

// schedJSONDoc is the BENCH_sched.json envelope.
type schedJSONDoc struct {
	// Config echoes the experiment configuration.
	Config SchedSkewConfig `json:"config"`
	// GOMAXPROCS records the host parallelism the numbers were taken at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Points holds the measurements.
	Points []SchedSkewPoint `json:"points"`
}

// WriteSchedJSON emits the experiment as the BENCH_sched.json document
// consumed by the perf trajectory.
func WriteSchedJSON(w io.Writer, cfg SchedSkewConfig, pts []SchedSkewPoint) error {
	doc := schedJSONDoc{Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0), Points: pts}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
