package bench

import (
	"fmt"
	"io"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Fig7Config parameterizes the density sweep of Figure 7: Erdős-Rényi
// inputs with the mask degree on one axis and the input degree on the
// other; each cell reports the fastest algorithm family.
type Fig7Config struct {
	// Dim is the square dimension (the paper sweeps 2^12…2^22; the
	// driver runs one panel per call).
	Dim int
	// MaskDegrees is the x axis (paper: 1…1024 in powers of two).
	MaskDegrees []int
	// InputDegrees is the y axis (paper: 1…128 in powers of two).
	InputDegrees []int
	// Threads pins the worker count (0 = GOMAXPROCS).
	Threads int
	// Reps is the timing repetitions per cell.
	Reps int
	// Seed drives the generators.
	Seed uint64
}

// DefaultFig7Config returns a laptop-scale panel (dim 2^12, full degree
// axes).
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Dim:          1 << 12,
		MaskDegrees:  []int{1, 4, 16, 64, 256, 1024},
		InputDegrees: []int{1, 4, 16, 64, 128},
		Reps:         3,
		Seed:         7,
	}
}

// Fig7Cell is one sweep cell result.
type Fig7Cell struct {
	// MaskDegree and InputDegree locate the cell in the density sweep.
	MaskDegree, InputDegree int
	// Best is the fastest scheme's name.
	Best string
	// Seconds maps scheme name → best-of-reps runtime.
	Seconds map[string]float64
}

// RunFig7 executes the sweep and returns the grid of winners
// (row-major: one row per input degree, one column per mask degree).
func RunFig7(cfg Fig7Config) ([]Fig7Cell, error) {
	sr := semiring.PlusTimes[float64]{}
	var cells []Fig7Cell
	for _, dIn := range cfg.InputDegrees {
		a := gen.ErdosRenyi(cfg.Dim, dIn, cfg.Seed+uint64(dIn)*13+1)
		b := gen.ErdosRenyi(cfg.Dim, dIn, cfg.Seed+uint64(dIn)*13+2)
		for _, dM := range cfg.MaskDegrees {
			mask := gen.ErdosRenyiPattern(cfg.Dim, dM, cfg.Seed+uint64(dIn)*13+uint64(dM)*31+3)
			cell := Fig7Cell{MaskDegree: dM, InputDegree: dIn, Seconds: map[string]float64{}}
			bestT := -1.0
			for _, s := range Fig7Schemes() {
				s = s.WithThreads(cfg.Threads)
				var out *sparse.CSR[float64]
				d, err := TimeBest(cfg.Reps, func() error {
					var err error
					out, err = core.MaskedSpGEMM(sr, mask, a, b, s.Opt)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("fig7 %s d_m=%d d_in=%d: %w", s.Name, dM, dIn, err)
				}
				_ = out
				sec := d.Seconds()
				cell.Seconds[s.Name] = sec
				if bestT < 0 || sec < bestT {
					bestT = sec
					cell.Best = s.Name
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// WriteFig7 renders the winner grid the way the paper's heat map reads:
// rows are input degrees (ascending), columns mask degrees.
func WriteFig7(w io.Writer, cfg Fig7Config, cells []Fig7Cell) {
	fmt.Fprintf(w, "Figure 7: best scheme per (mask degree, input degree), ER dim=%d\n", cfg.Dim)
	fmt.Fprintf(w, "%-12s", "deg(A,B) \\ deg(M)")
	for _, dM := range cfg.MaskDegrees {
		fmt.Fprintf(w, " %10d", dM)
	}
	fmt.Fprintln(w)
	i := 0
	for _, dIn := range cfg.InputDegrees {
		fmt.Fprintf(w, "%-12d", dIn)
		for range cfg.MaskDegrees {
			fmt.Fprintf(w, " %10s", cells[i].Best)
			i++
		}
		fmt.Fprintln(w)
	}
}
