package gen

import (
	"testing"

	"maskedspgemm/internal/sparse"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, buckets = 100000, 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d: %d (expected ≈%d)", b, c, want)
		}
	}
	r2 := NewRNG(8)
	var sum float64
	for i := 0; i < n; i++ {
		f := r2.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Errorf("Float64 mean = %v", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(3).Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("Perm repeated a value")
		}
		seen[v] = true
	}
}

func TestErdosRenyiShape(t *testing.T) {
	for _, deg := range []int{1, 4, 16, 64} {
		m := ErdosRenyi(256, deg, 5)
		if err := m.Validate(); err != nil {
			t.Fatalf("deg=%d: %v", deg, err)
		}
		avg := float64(m.NNZ()) / 256
		if avg < float64(deg)*0.7 || avg > float64(deg)*1.3 {
			t.Errorf("deg=%d: average row nnz = %v", deg, avg)
		}
	}
	// Degree clamped to n.
	m := ErdosRenyi(8, 100, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic per seed.
	if !sparse.Equal(ErdosRenyi(64, 8, 9), ErdosRenyi(64, 8, 9)) {
		t.Error("same seed produced different ER matrices")
	}
}

func TestRMATProperties(t *testing.T) {
	cfg := RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 11}
	m := RMAT(cfg)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	n := 1 << 9
	if m.Rows != n || m.Cols != n {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	// Self-loops removed.
	for i := 0; i < n; i++ {
		for _, j := range m.Row(i) {
			if int(j) == i {
				t.Fatal("self loop survived")
			}
		}
	}
	// Skewed: max degree should far exceed the mean.
	maxDeg := m.MaxRowNNZ()
	mean := float64(m.NNZ()) / float64(n)
	if float64(maxDeg) < 3*mean {
		t.Errorf("R-MAT not skewed: max=%d mean=%v", maxDeg, mean)
	}
	if !sparse.Equal(RMAT(cfg), RMAT(cfg)) {
		t.Error("same config produced different R-MAT graphs")
	}
}

func TestRMATNoise(t *testing.T) {
	cfg := RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 19, Noise: 0.1}
	m := RMAT(cfg)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(m, RMAT(cfg)) {
		t.Error("noisy R-MAT not deterministic per seed")
	}
	// Noise must not destroy the skew.
	mean := float64(m.NNZ()) / float64(m.Rows)
	if float64(m.MaxRowNNZ()) < 2*mean {
		t.Errorf("noisy R-MAT lost skew: max=%d mean=%v", m.MaxRowNNZ(), mean)
	}
	// Custom quadrant probabilities flow through.
	uniform := RMAT(RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 19, A: 0.25, B: 0.25, C: 0.25})
	if err := uniform.Validate(); err != nil {
		t.Fatal(err)
	}
	// Near-uniform quadrants produce ER-like (low-skew) graphs.
	umean := float64(uniform.NNZ()) / float64(uniform.Rows)
	if float64(uniform.MaxRowNNZ()) > 8*umean {
		t.Errorf("uniform quadrants still skewed: max=%d mean=%v", uniform.MaxRowNNZ(), umean)
	}
}

func TestSymmetrize(t *testing.T) {
	m := RMAT(RMATConfig{Scale: 7, EdgeFactor: 4, Seed: 13})
	s := Symmetrize(m)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := sparse.Transpose(s)
	if !sparse.Equal(s, st) {
		t.Fatal("Symmetrize result is not symmetric")
	}
	for i := 0; i < s.Rows; i++ {
		if s.Has(i, int32(i)) {
			t.Fatal("diagonal entry present")
		}
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Handshake: grid edges = rows*(cols-1) + (rows-1)*cols, doubled.
	wantNNZ := int64(2 * (4*4 + 3*5))
	if g.NNZ() != wantNNZ {
		t.Errorf("grid nnz = %d, want %d", g.NNZ(), wantNNZ)
	}
	if !sparse.Equal(g, sparse.Transpose(g)) {
		t.Error("grid not symmetric")
	}
	// Corner has degree 2, interior 4.
	if g.RowNNZ(0) != 2 {
		t.Errorf("corner degree = %d", g.RowNNZ(0))
	}
	if g.RowNNZ(1*5+1) != 4 {
		t.Errorf("interior degree = %d", g.RowNNZ(6))
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 5, 17)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(g, sparse.Transpose(g)) {
		t.Error("BA graph not symmetric")
	}
	// Every non-seed vertex has degree ≥ m.
	for v := 6; v < 500; v++ {
		if g.RowNNZ(v) < 5 {
			t.Fatalf("vertex %d degree %d < m", v, g.RowNNZ(v))
		}
	}
	// Heavy tail: someone should have much more than m.
	if g.MaxRowNNZ() < 20 {
		t.Errorf("BA max degree = %d, expected heavy tail", g.MaxRowNNZ())
	}
}

func TestCompleteAndRing(t *testing.T) {
	k := Complete(6)
	if k.NNZ() != 30 {
		t.Errorf("K6 nnz = %d, want 30", k.NNZ())
	}
	r := Ring(6)
	if r.NNZ() != 12 {
		t.Errorf("C6 nnz = %d, want 12", r.NNZ())
	}
	for _, g := range []*sparse.CSR[float64]{k, r} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSuiteBuilds(t *testing.T) {
	for _, inst := range SmallSuite() {
		g := inst.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if g.NNZ() == 0 {
			t.Fatalf("%s: empty graph", inst.Name)
		}
		if !sparse.Equal(g, sparse.Transpose(g)) {
			t.Fatalf("%s: not symmetric", inst.Name)
		}
	}
	if len(Suite(0)) < 12 {
		t.Error("full suite unexpectedly small")
	}
	// scaleCap actually caps.
	capped := Suite(8)
	g := capped[0].Build()
	if g.Rows > 1<<8 {
		t.Errorf("scaleCap ignored: %d rows", g.Rows)
	}
}
