package gen

import (
	"maskedspgemm/internal/sparse"
)

// Graph500 R-MAT parameters (§7: "parameters identical to those used in
// the Graph500 benchmark").
const (
	RMATA = 0.57
	RMATB = 0.19
	RMATC = 0.19
	// RMATD = 1 - a - b - c = 0.05
	// DefaultEdgeFactor is Graph500's edges-per-vertex ratio.
	DefaultEdgeFactor = 16
)

// RMATConfig configures the recursive matrix generator of Chakrabarti
// et al.
type RMATConfig struct {
	// Scale gives 2^Scale vertices.
	Scale int
	// EdgeFactor is edges per vertex; ≤ 0 means Graph500's 16.
	EdgeFactor int
	// A, B, C are the quadrant probabilities; zero values mean Graph500
	// defaults (0.57, 0.19, 0.19).
	A, B, C float64
	// Noise perturbs quadrant probabilities per level as in the
	// Graph500 reference implementation; 0 disables. A small value
	// (e.g. 0.1) avoids the degenerate diagonal concentration.
	Noise float64
	// Seed drives the splitmix64 stream.
	Seed uint64
}

func (c *RMATConfig) defaults() {
	if c.EdgeFactor <= 0 {
		c.EdgeFactor = DefaultEdgeFactor
	}
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = RMATA, RMATB, RMATC
	}
}

// RMAT generates a directed R-MAT graph as an n×n CSR matrix with unit
// values, where n = 2^Scale. Duplicate edges are combined (kept once)
// and self-loops removed, as the graph benchmarks require.
func RMAT(cfg RMATConfig) *sparse.CSR[float64] {
	cfg.defaults()
	n := 1 << cfg.Scale
	edges := n * cfg.EdgeFactor
	rng := NewRNG(cfg.Seed)
	coo := sparse.NewCOO[float64](n, n, edges)
	for e := 0; e < edges; e++ {
		i, j := rmatEdge(rng, cfg, n)
		if i == j {
			continue
		}
		coo.Append(int32(i), int32(j), 1)
	}
	out, err := coo.ToCSR(func(a, b float64) float64 { return 1 })
	if err != nil {
		panic(err) // generator produces in-range indices by construction
	}
	return out
}

// rmatEdge draws one edge by recursive quadrant descent.
func rmatEdge(rng *RNG, cfg RMATConfig, n int) (int, int) {
	i, j := 0, 0
	a, b, c := cfg.A, cfg.B, cfg.C
	for bit := n >> 1; bit > 0; bit >>= 1 {
		r := rng.Float64()
		switch {
		case r < a:
			// top-left: nothing to add
		case r < a+b:
			j += bit
		case r < a+b+c:
			i += bit
		default:
			i += bit
			j += bit
		}
		if cfg.Noise > 0 {
			// Jitter the quadrant probabilities ±Noise/2 relatively,
			// then renormalize a as the remainder like the Graph500
			// generator does.
			a *= 0.95 + cfg.Noise*rng.Float64()
			b *= 0.95 + cfg.Noise*rng.Float64()
			c *= 0.95 + cfg.Noise*rng.Float64()
			s := (a + b + c) / (cfg.A + cfg.B + cfg.C)
			a, b, c = a/s, b/s, c/s
		}
	}
	return i, j
}

// RMATSymmetric generates an undirected (symmetrized, zero-diagonal)
// R-MAT graph: A ∨ Aᵀ with unit values. The graph applications (TC,
// k-truss, BC) operate on undirected graphs.
func RMATSymmetric(cfg RMATConfig) *sparse.CSR[float64] {
	a := RMAT(cfg)
	return Symmetrize(a)
}

// Symmetrize returns A ∨ Aᵀ with unit values and no diagonal.
func Symmetrize(a *sparse.CSR[float64]) *sparse.CSR[float64] {
	at := sparse.Transpose(a)
	s, err := sparse.EWiseAdd(a, at, func(x, y float64) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	return sparse.Select(s, func(i int, j int32, _ float64) bool { return int(j) != i })
}
