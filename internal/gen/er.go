package gen

import (
	"maskedspgemm/internal/sparse"
)

// ErdosRenyi returns an n×n sparse float64 matrix with, in expectation,
// degree nonzeros per row, sampled uniformly (the G(n, m)-style model
// the Fig-7 density sweeps use: "Erdős-Rényi inputs by varying the
// degree"). Exactly degree distinct columns are drawn per row when
// degree < n (sampling without replacement via retry — cheap at the
// densities the experiments use); values are uniform in (0, 1].
func ErdosRenyi(n, degree int, seed uint64) *sparse.CSR[float64] {
	if degree > n {
		degree = n
	}
	rng := NewRNG(seed)
	out := &sparse.CSR[float64]{Pattern: sparse.Pattern{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}}
	out.ColIdx = make([]int32, 0, n*degree)
	out.Val = make([]float64, 0, n*degree)
	cols := make([]int32, 0, degree)
	for i := 0; i < n; i++ {
		cols = cols[:0]
		if degree*4 >= n {
			// Dense rows: Floyd-style selection would still need a set;
			// simplest correct path is a Bernoulli scan.
			p := float64(degree) / float64(n)
			for j := 0; j < n; j++ {
				if rng.Float64() < p {
					cols = append(cols, int32(j))
				}
			}
		} else {
			for len(cols) < degree {
				j := int32(rng.Intn(n))
				dup := false
				for _, c := range cols {
					if c == j {
						dup = true
						break
					}
				}
				if !dup {
					cols = append(cols, j)
				}
			}
			insertionSortInt32(cols)
		}
		for _, j := range cols {
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, 1-rng.Float64())
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// insertionSortInt32 sorts small slices in place; rows are short (the
// sweep uses degree ≤ 1024) so insertion sort beats the generic sort.
func insertionSortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// ErdosRenyiPattern returns only the pattern of an ER matrix — handy
// for synthesizing masks of a chosen density (Fig 7 varies mask degree
// independently of the inputs).
func ErdosRenyiPattern(n, degree int, seed uint64) *sparse.Pattern {
	m := ErdosRenyi(n, degree, seed)
	return &m.Pattern
}
