package gen

import (
	"maskedspgemm/internal/sparse"
)

// Grid2D returns the adjacency matrix of a 4-connected rows×cols grid
// graph with unit weights: a mesh-like, low-and-uniform-degree instance
// class, the opposite end of the degree-skew spectrum from R-MAT.
func Grid2D(rows, cols int) *sparse.CSR[float64] {
	n := rows * cols
	out := &sparse.CSR[float64]{Pattern: sparse.Pattern{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}}
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			// Emit neighbors in ascending column order: up, left, right,
			// down.
			if r > 0 {
				out.ColIdx = append(out.ColIdx, id(r-1, c))
				out.Val = append(out.Val, 1)
			}
			if c > 0 {
				out.ColIdx = append(out.ColIdx, id(r, c-1))
				out.Val = append(out.Val, 1)
			}
			if c+1 < cols {
				out.ColIdx = append(out.ColIdx, id(r, c+1))
				out.Val = append(out.Val, 1)
			}
			if r+1 < rows {
				out.ColIdx = append(out.ColIdx, id(r+1, c))
				out.Val = append(out.Val, 1)
			}
			out.RowPtr[v+1] = int64(len(out.ColIdx))
		}
	}
	return out
}

// BarabasiAlbert returns an undirected preferential-attachment graph of
// n vertices where each new vertex attaches to m existing vertices —
// heavy-tailed like R-MAT but with a different tail shape, broadening
// the synthetic suite.
func BarabasiAlbert(n, m int, seed uint64) *sparse.CSR[float64] {
	if m < 1 {
		m = 1
	}
	rng := NewRNG(seed)
	// Repeated-endpoint list: attachment proportional to degree.
	targets := make([]int32, 0, 2*n*m)
	coo := sparse.NewCOO[float64](n, n, 2*n*m)
	// Seed clique over the first m+1 vertices.
	for i := 0; i <= m && i < n; i++ {
		for j := 0; j < i; j++ {
			coo.Append(int32(i), int32(j), 1)
			coo.Append(int32(j), int32(i), 1)
			targets = append(targets, int32(i), int32(j))
		}
	}
	for v := m + 1; v < n; v++ {
		picked := make(map[int32]bool, m)
		for len(picked) < m {
			t := targets[rng.Intn(len(targets))]
			if int(t) != v {
				picked[t] = true
			}
		}
		for t := range picked {
			coo.Append(int32(v), t, 1)
			coo.Append(t, int32(v), 1)
			targets = append(targets, int32(v), t)
		}
	}
	out, err := coo.ToCSR(func(a, b float64) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	return out
}

// Complete returns the complete graph K_n (no self-loops), handy for
// exact-answer tests: K_n has C(n,3) triangles.
func Complete(n int) *sparse.CSR[float64] {
	out := &sparse.CSR[float64]{Pattern: sparse.Pattern{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out.ColIdx = append(out.ColIdx, int32(j))
				out.Val = append(out.Val, 1)
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Ring returns the cycle graph C_n.
func Ring(n int) *sparse.CSR[float64] {
	coo := sparse.NewCOO[float64](n, n, 2*n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		coo.Append(int32(i), int32(j), 1)
		coo.Append(int32(j), int32(i), 1)
	}
	out, err := coo.ToCSR(func(a, b float64) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	return out
}

// Random returns a rows×cols rectangular uniform sparse matrix with the
// given expected nonzeros per row; the general-shape workhorse for
// property tests.
func Random(rows, cols, degree int, seed uint64) *sparse.CSR[float64] {
	if degree > cols {
		degree = cols
	}
	rng := NewRNG(seed)
	coo := sparse.NewCOO[float64](rows, cols, rows*degree)
	for i := 0; i < rows; i++ {
		for d := 0; d < degree; d++ {
			coo.Append(int32(i), int32(rng.Intn(cols)), 1-rng.Float64())
		}
	}
	out, err := coo.ToCSR(func(a, b float64) float64 { return a })
	if err != nil {
		panic(err)
	}
	return out
}
