package gen

import "maskedspgemm/internal/sparse"

// Instance is one graph of the evaluation suite: a named, seeded,
// lazily generated undirected graph.
type Instance struct {
	// Name identifies the instance in performance profiles.
	Name string
	// Build generates the adjacency matrix (symmetric, zero diagonal,
	// unit values).
	Build func() *sparse.CSR[float64]
}

// Suite returns the synthetic stand-in for the paper's 26 SuiteSparse
// real-world graphs (§7; list from Nagasaka et al. Table 2). The
// substitution is documented in DESIGN.md §3: the suite spans skewed
// (R-MAT, Barabási–Albert) and uniform (Erdős-Rényi, grid) degree
// distributions across two decades of size, which is the structure the
// performance-profile experiments are sensitive to. scaleCap (≤ 0 means
// no cap) bounds the largest R-MAT/ER scale so the suite can shrink to
// CI hardware.
func Suite(scaleCap int) []Instance {
	cap := func(s int) int {
		if scaleCap > 0 && s > scaleCap {
			return scaleCap
		}
		return s
	}
	mk := func(name string, build func() *sparse.CSR[float64]) Instance {
		return Instance{Name: name, Build: build}
	}
	return []Instance{
		mk("rmat-s10-ef16", func() *sparse.CSR[float64] {
			return RMATSymmetric(RMATConfig{Scale: cap(10), EdgeFactor: 16, Seed: 101})
		}),
		mk("rmat-s11-ef8", func() *sparse.CSR[float64] {
			return RMATSymmetric(RMATConfig{Scale: cap(11), EdgeFactor: 8, Seed: 102})
		}),
		mk("rmat-s12-ef16", func() *sparse.CSR[float64] {
			return RMATSymmetric(RMATConfig{Scale: cap(12), EdgeFactor: 16, Seed: 103})
		}),
		mk("rmat-s13-ef8", func() *sparse.CSR[float64] {
			return RMATSymmetric(RMATConfig{Scale: cap(13), EdgeFactor: 8, Seed: 104})
		}),
		mk("rmat-s13-ef16", func() *sparse.CSR[float64] {
			return RMATSymmetric(RMATConfig{Scale: cap(13), EdgeFactor: 16, Seed: 105})
		}),
		mk("rmat-s14-ef8", func() *sparse.CSR[float64] {
			return RMATSymmetric(RMATConfig{Scale: cap(14), EdgeFactor: 8, Seed: 106})
		}),
		mk("er-s12-d4", func() *sparse.CSR[float64] {
			return Symmetrize(ErdosRenyi(1<<cap(12), 4, 201))
		}),
		mk("er-s12-d16", func() *sparse.CSR[float64] {
			return Symmetrize(ErdosRenyi(1<<cap(12), 16, 202))
		}),
		mk("er-s13-d8", func() *sparse.CSR[float64] {
			return Symmetrize(ErdosRenyi(1<<cap(13), 8, 203))
		}),
		mk("er-s14-d16", func() *sparse.CSR[float64] {
			return Symmetrize(ErdosRenyi(1<<cap(14), 16, 204))
		}),
		mk("er-s14-d32", func() *sparse.CSR[float64] {
			return Symmetrize(ErdosRenyi(1<<cap(14), 32, 205))
		}),
		mk("grid-64", func() *sparse.CSR[float64] { return Grid2D(64, 64) }),
		mk("grid-128", func() *sparse.CSR[float64] { return Grid2D(128, 128) }),
		mk("ba-4k-m8", func() *sparse.CSR[float64] { return BarabasiAlbert(4096, 8, 301) }),
		mk("ba-8k-m16", func() *sparse.CSR[float64] { return BarabasiAlbert(8192, 16, 302) }),
		mk("ba-16k-m8", func() *sparse.CSR[float64] { return BarabasiAlbert(16384, 8, 303) }),
	}
}

// SmallSuite returns a reduced suite for quick runs and CI.
func SmallSuite() []Instance {
	full := Suite(11)
	return []Instance{full[0], full[1], full[6], full[7], full[11], full[13]}
}
