// Package gen produces the synthetic inputs for the paper's controlled
// experiments (§7): Erdős-Rényi graphs, R-MAT graphs with Graph500
// parameters, and auxiliary generators (2-D grids, Barabási–Albert)
// used by the real-graph-suite substitution documented in DESIGN.md.
// All randomness flows from an explicit splitmix64 seed, so every
// experiment is reproducible bit-for-bit.
package gen

// RNG is a splitmix64 pseudo-random generator: tiny state, full 64-bit
// output, passes BigCrush — more than adequate for graph synthesis, and
// dependency-free.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free-enough reduction; the bias
	// for n ≪ 2^64 is immaterial for graph synthesis.
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Perm returns a random permutation of [0, n) as int32s
// (Fisher–Yates).
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
