package sparse

import "fmt"

// Vector is a sparse vector: sorted indices with parallel values. It
// is the operand type of the masked SpGEVM kernels (§5: each output
// row of a masked SpGEMM is computed as v⊺ = m⊺ ⊙ (u⊺B), so the
// vector form is the natural single-row API).
type Vector[T any] struct {
	// N is the dimension.
	N int
	// Idx holds the sorted, duplicate-free positions of the nonzeros.
	Idx []int32
	// Val runs parallel to Idx.
	Val []T
}

// NewVector returns an empty sparse vector of dimension n.
func NewVector[T any](n int) *Vector[T] {
	return &Vector[T]{N: n}
}

// NNZ returns the stored-entry count.
func (v *Vector[T]) NNZ() int { return len(v.Idx) }

// Validate checks the sorted/in-range invariants.
func (v *Vector[T]) Validate() error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("sparse: vector Idx/Val length mismatch %d/%d", len(v.Idx), len(v.Val))
	}
	prev := int32(-1)
	for _, i := range v.Idx {
		if i < 0 || int(i) >= v.N {
			return fmt.Errorf("sparse: vector index %d out of range [0,%d)", i, v.N)
		}
		if i <= prev {
			return fmt.Errorf("sparse: vector indices not strictly increasing (%d after %d)", i, prev)
		}
		prev = i
	}
	return nil
}

// At returns the stored value at position i and whether it is present.
func (v *Vector[T]) At(i int32) (T, bool) {
	lo, hi := 0, len(v.Idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Idx[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.Idx) && v.Idx[lo] == i {
		return v.Val[lo], true
	}
	var zero T
	return zero, false
}

// Clone returns a deep copy.
func (v *Vector[T]) Clone() *Vector[T] {
	return &Vector[T]{
		N:   v.N,
		Idx: append([]int32(nil), v.Idx...),
		Val: append([]T(nil), v.Val...),
	}
}

// VectorFromDense compresses a dense slice, keeping entries where keep
// reports true (pass nil to keep all).
func VectorFromDense[T any](dense []T, keep func(T) bool) *Vector[T] {
	v := NewVector[T](len(dense))
	for i, x := range dense {
		if keep == nil || keep(x) {
			v.Idx = append(v.Idx, int32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// ToDense expands the vector; absent positions hold the zero value.
func (v *Vector[T]) ToDense() []T {
	out := make([]T, v.N)
	for k, i := range v.Idx {
		out[i] = v.Val[k]
	}
	return out
}

// RowVector views row i of a CSR matrix as a sparse vector sharing
// storage.
func RowVector[T any](a *CSR[T], i int) *Vector[T] {
	return &Vector[T]{N: a.Cols, Idx: a.Row(i), Val: a.RowVals(i)}
}
