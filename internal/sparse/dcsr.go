package sparse

import "fmt"

// DCSR is the doubly compressed sparse row format of Buluç & Gilbert
// (paper §2.1/§3: the format SuiteSparse:GraphBLAS uses for its
// hypersparse case). Rows that hold no entries are not represented at
// all, so storage is O(nnz + nzr) instead of O(nnz + rows) — the right
// trade once nnz ≪ rows, which happens to the shrinking graphs of
// iterative algorithms like k-truss.
type DCSR[T any] struct {
	// Rows and Cols are the logical matrix dimensions.
	Rows, Cols int
	// RowID[r] is the original index of the r-th non-empty row,
	// strictly increasing.
	RowID []int32
	// RowPtr has len(RowID)+1 entries delimiting each stored row.
	RowPtr []int64
	// ColIdx and Val are as in CSR.
	ColIdx []int32
	// Val holds the stored values, parallel to ColIdx.
	Val []T
}

// NNZ returns the stored-entry count.
func (a *DCSR[T]) NNZ() int64 {
	if len(a.RowPtr) == 0 {
		return 0
	}
	return a.RowPtr[len(a.RowPtr)-1]
}

// NZR returns the number of non-empty rows.
func (a *DCSR[T]) NZR() int { return len(a.RowID) }

// Validate checks the DCSR invariants.
func (a *DCSR[T]) Validate() error {
	if len(a.RowPtr) != len(a.RowID)+1 {
		return fmt.Errorf("sparse: DCSR RowPtr length %d, want %d", len(a.RowPtr), len(a.RowID)+1)
	}
	if len(a.RowPtr) > 0 && a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: DCSR RowPtr[0] = %d", a.RowPtr[0])
	}
	prevRow := int32(-1)
	for r, id := range a.RowID {
		if id <= prevRow {
			return fmt.Errorf("sparse: DCSR row ids not strictly increasing at %d", r)
		}
		if int(id) >= a.Rows {
			return fmt.Errorf("sparse: DCSR row id %d out of range [0,%d)", id, a.Rows)
		}
		prevRow = id
		lo, hi := a.RowPtr[r], a.RowPtr[r+1]
		if lo >= hi {
			return fmt.Errorf("sparse: DCSR stores empty row %d (id %d)", r, id)
		}
		prevCol := int32(-1)
		for _, j := range a.ColIdx[lo:hi] {
			if j < 0 || int(j) >= a.Cols {
				return fmt.Errorf("sparse: DCSR column %d out of range", j)
			}
			if j <= prevCol {
				return fmt.Errorf("sparse: DCSR row %d columns not increasing", id)
			}
			prevCol = j
		}
	}
	if n := int64(len(a.ColIdx)); len(a.RowPtr) > 0 && a.RowPtr[len(a.RowPtr)-1] != n {
		return fmt.Errorf("sparse: DCSR RowPtr[last] = %d, want %d", a.RowPtr[len(a.RowPtr)-1], n)
	}
	if len(a.Val) != len(a.ColIdx) {
		return fmt.Errorf("sparse: DCSR Val length %d, want %d", len(a.Val), len(a.ColIdx))
	}
	return nil
}

// ToDCSR compresses away a CSR matrix's empty rows.
func ToDCSR[T any](a *CSR[T]) *DCSR[T] {
	out := &DCSR[T]{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColIdx: append([]int32(nil), a.ColIdx...),
		Val:    append([]T(nil), a.Val...),
	}
	out.RowPtr = append(out.RowPtr, 0)
	for i := 0; i < a.Rows; i++ {
		if a.RowNNZ(i) > 0 {
			out.RowID = append(out.RowID, int32(i))
			out.RowPtr = append(out.RowPtr, a.RowPtr[i+1])
		}
	}
	return out
}

// ToCSR expands a DCSR matrix back to CSR.
func (a *DCSR[T]) ToCSR() *CSR[T] {
	out := &CSR[T]{
		Pattern: Pattern{
			Rows:   a.Rows,
			Cols:   a.Cols,
			RowPtr: make([]int64, a.Rows+1),
			ColIdx: append([]int32(nil), a.ColIdx...),
		},
		Val: append([]T(nil), a.Val...),
	}
	for r, id := range a.RowID {
		out.RowPtr[id+1] = a.RowPtr[r+1] - a.RowPtr[r]
	}
	for i := 0; i < a.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// Row returns the column indices of original row i (empty when the row
// is not stored), via binary search over RowID.
func (a *DCSR[T]) Row(i int) []int32 {
	r := a.findRow(i)
	if r < 0 {
		return nil
	}
	return a.ColIdx[a.RowPtr[r]:a.RowPtr[r+1]]
}

// RowVals returns the values of original row i.
func (a *DCSR[T]) RowVals(i int) []T {
	r := a.findRow(i)
	if r < 0 {
		return nil
	}
	return a.Val[a.RowPtr[r]:a.RowPtr[r+1]]
}

func (a *DCSR[T]) findRow(i int) int {
	lo, hi := 0, len(a.RowID)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(a.RowID[mid]) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.RowID) && int(a.RowID[lo]) == i {
		return lo
	}
	return -1
}

// CompressionRatio reports the pointer-array saving of DCSR over CSR:
// (rows+1) / (2·nzr+1). Ratios above 1 favor DCSR.
func (a *DCSR[T]) CompressionRatio() float64 {
	den := float64(2*a.NZR() + 1)
	return float64(a.Rows+1) / den
}
