package sparse

import "fmt"

// Element-wise operations over CSR matrices. These are the GraphBLAS
// eWiseAdd/eWiseMult primitives the benchmark applications need around
// the masked products: k-truss filters supports, betweenness centrality
// accumulates dependencies (§8.3–8.4). All operate row-wise with sorted
// two-pointer merges, so outputs keep the sorted-CSR invariant.

func checkSameShape(ar, ac, br, bc int) error {
	if ar != br || ac != bc {
		return fmt.Errorf("sparse: shape mismatch %dx%d vs %dx%d", ar, ac, br, bc)
	}
	return nil
}

// EWiseAdd returns the union combination of a and b: entries present in
// only one operand are copied, entries present in both are combined with
// add.
func EWiseAdd[T any](a, b *CSR[T], add func(x, y T) T) (*CSR[T], error) {
	if err := checkSameShape(a.Rows, a.Cols, b.Rows, b.Cols); err != nil {
		return nil, err
	}
	out := &CSR[T]{Pattern: Pattern{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}}
	out.ColIdx = make([]int32, 0, a.NNZ()+b.NNZ())
	out.Val = make([]T, 0, a.NNZ()+b.NNZ())
	for i := 0; i < a.Rows; i++ {
		ra, va := a.Row(i), a.RowVals(i)
		rb, vb := b.Row(i), b.RowVals(i)
		p, q := 0, 0
		for p < len(ra) && q < len(rb) {
			switch {
			case ra[p] < rb[q]:
				out.ColIdx = append(out.ColIdx, ra[p])
				out.Val = append(out.Val, va[p])
				p++
			case ra[p] > rb[q]:
				out.ColIdx = append(out.ColIdx, rb[q])
				out.Val = append(out.Val, vb[q])
				q++
			default:
				out.ColIdx = append(out.ColIdx, ra[p])
				out.Val = append(out.Val, add(va[p], vb[q]))
				p++
				q++
			}
		}
		for ; p < len(ra); p++ {
			out.ColIdx = append(out.ColIdx, ra[p])
			out.Val = append(out.Val, va[p])
		}
		for ; q < len(rb); q++ {
			out.ColIdx = append(out.ColIdx, rb[q])
			out.Val = append(out.Val, vb[q])
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out, nil
}

// EWiseMult returns the intersection combination of a and b: only
// coordinates present in both survive, combined with mul.
func EWiseMult[T any](a, b *CSR[T], mul func(x, y T) T) (*CSR[T], error) {
	if err := checkSameShape(a.Rows, a.Cols, b.Rows, b.Cols); err != nil {
		return nil, err
	}
	out := &CSR[T]{Pattern: Pattern{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}}
	for i := 0; i < a.Rows; i++ {
		ra, va := a.Row(i), a.RowVals(i)
		rb, vb := b.Row(i), b.RowVals(i)
		p, q := 0, 0
		for p < len(ra) && q < len(rb) {
			switch {
			case ra[p] < rb[q]:
				p++
			case ra[p] > rb[q]:
				q++
			default:
				out.ColIdx = append(out.ColIdx, ra[p])
				out.Val = append(out.Val, mul(va[p], vb[q]))
				p++
				q++
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out, nil
}

// Apply returns a copy of a with f applied to every stored value.
func Apply[T, U any](a *CSR[T], f func(T) U) *CSR[U] {
	out := &CSR[U]{Pattern: *a.Pattern.Clone(), Val: make([]U, len(a.Val))}
	for k, v := range a.Val {
		out.Val[k] = f(v)
	}
	return out
}

// Select returns the entries of a for which keep returns true; the
// GraphBLAS GxB_select analogue. k-truss uses it to prune edges whose
// support falls below k−2.
func Select[T any](a *CSR[T], keep func(i int, j int32, v T) bool) *CSR[T] {
	out := &CSR[T]{Pattern: Pattern{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}}
	for i := 0; i < a.Rows; i++ {
		vals := a.RowVals(i)
		for k, j := range a.Row(i) {
			if keep(i, j, vals[k]) {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Reduce folds all stored values with add starting from init.
func Reduce[T any](a *CSR[T], init T, add func(x, y T) T) T {
	acc := init
	for _, v := range a.Val {
		acc = add(acc, v)
	}
	return acc
}

// ReduceRows folds each row's stored values, producing a dense vector of
// length Rows.
func ReduceRows[T any](a *CSR[T], init T, add func(x, y T) T) []T {
	out := make([]T, a.Rows)
	for i := range out {
		acc := init
		for _, v := range a.RowVals(i) {
			acc = add(acc, v)
		}
		out[i] = acc
	}
	return out
}

// ReduceCols folds each column's stored values, producing a dense vector
// of length Cols. Betweenness centrality sums the per-source dependency
// rows into one centrality vector this way.
func ReduceCols[T any](a *CSR[T], init T, add func(x, y T) T) []T {
	out := make([]T, a.Cols)
	for j := range out {
		out[j] = init
	}
	for i := 0; i < a.Rows; i++ {
		vals := a.RowVals(i)
		for k, j := range a.Row(i) {
			out[j] = add(out[j], vals[k])
		}
	}
	return out
}

// PatternUnion returns the union of two patterns of identical shape.
func PatternUnion(a, b *Pattern) (*Pattern, error) {
	if err := checkSameShape(a.Rows, a.Cols, b.Rows, b.Cols); err != nil {
		return nil, err
	}
	out := &Pattern{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		p, q := 0, 0
		for p < len(ra) && q < len(rb) {
			switch {
			case ra[p] < rb[q]:
				out.ColIdx = append(out.ColIdx, ra[p])
				p++
			case ra[p] > rb[q]:
				out.ColIdx = append(out.ColIdx, rb[q])
				q++
			default:
				out.ColIdx = append(out.ColIdx, ra[p])
				p++
				q++
			}
		}
		out.ColIdx = append(out.ColIdx, ra[p:]...)
		out.ColIdx = append(out.ColIdx, rb[q:]...)
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out, nil
}

// PatternIntersect returns the intersection of two patterns.
func PatternIntersect(a, b *Pattern) (*Pattern, error) {
	if err := checkSameShape(a.Rows, a.Cols, b.Rows, b.Cols); err != nil {
		return nil, err
	}
	out := &Pattern{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		p, q := 0, 0
		for p < len(ra) && q < len(rb) {
			switch {
			case ra[p] < rb[q]:
				p++
			case ra[p] > rb[q]:
				q++
			default:
				out.ColIdx = append(out.ColIdx, ra[p])
				p++
				q++
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out, nil
}

// ApplyMask filters a through a mask pattern: with complement == false
// only entries at mask positions survive; with complement == true only
// entries *off* the mask survive. This is the "multiply first, mask
// later" post-processing step the naive baseline uses (Figure 1).
func ApplyMask[T any](a *CSR[T], mask *Pattern, complement bool) (*CSR[T], error) {
	if err := checkSameShape(a.Rows, a.Cols, mask.Rows, mask.Cols); err != nil {
		return nil, err
	}
	out := &CSR[T]{Pattern: Pattern{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}}
	for i := 0; i < a.Rows; i++ {
		ra, va := a.Row(i), a.RowVals(i)
		rm := mask.Row(i)
		q := 0
		for p, j := range ra {
			for q < len(rm) && rm[q] < j {
				q++
			}
			onMask := q < len(rm) && rm[q] == j
			if onMask != complement {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, va[p])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out, nil
}
