package sparse

import "math"

// Structure fingerprints. A fingerprint is a 64-bit hash of everything
// that defines a pattern's *structure* — dimensions, row pointers, and
// column indices — and of nothing else: values never enter, so a matrix
// whose numbers change in place keeps its fingerprint, while inserting,
// removing, or moving a single stored entry changes it (with collision
// probability ~2⁻⁶⁴). Plan caches key on fingerprints because a plan
// depends only on operand structure (DESIGN.md §8).
//
// The hash is a word-at-a-time mixer in four independent lanes, so the
// per-word multiply chains overlap and a fingerprint costs one linear
// pass at near memory bandwidth — orders of magnitude cheaper than the
// analysis (CSC transposes, per-row cost models) whose re-execution it
// avoids. Fingerprints are deterministic within and across processes;
// they are a cache key, not a cryptographic digest.

// Multiplication/mixing constants borrowed from splitmix64/xxhash;
// any odd constants with good avalanche behaviour would do.
const (
	fpSeed uint64 = 0x9e3779b97f4a7c15
	fpMul1 uint64 = 0xff51afd7ed558ccd
	fpMul2 uint64 = 0xc4ceb9fe1a85ec53
	fpInc  uint64 = 0x165667b19e3779f9
)

// fpLanes is four running hash lanes plus the number of words absorbed.
type fpLanes struct {
	h0, h1, h2, h3 uint64
	n              uint64
}

func newFPLanes() fpLanes {
	return fpLanes{
		h0: fpSeed,
		h1: fpSeed ^ fpMul1,
		h2: fpSeed ^ fpMul2,
		h3: fpSeed ^ fpInc,
	}
}

// word folds one 64-bit word into lane (n mod 4).
func (l *fpLanes) word(x uint64) {
	x *= fpMul1
	x ^= x >> 29
	x *= fpMul2
	switch l.n & 3 {
	case 0:
		l.h0 = (l.h0 ^ x) * fpMul1
	case 1:
		l.h1 = (l.h1 ^ x) * fpMul1
	case 2:
		l.h2 = (l.h2 ^ x) * fpMul1
	default:
		l.h3 = (l.h3 ^ x) * fpMul1
	}
	l.n++
}

// int64s absorbs a slice of 64-bit words, four per iteration so the
// lane multiplies are independent (the slice-advance form compiles to
// a bounds-check-free loop).
func (l *fpLanes) int64s(s []int64) {
	h0, h1, h2, h3 := l.h0, l.h1, l.h2, l.h3
	l.n += uint64(len(s) &^ 3)
	for len(s) >= 4 {
		x0 := uint64(s[0]) * fpMul1
		x1 := uint64(s[1]) * fpMul1
		x2 := uint64(s[2]) * fpMul1
		x3 := uint64(s[3]) * fpMul1
		h0 = (h0 ^ (x0 ^ (x0 >> 29))) * fpMul2
		h1 = (h1 ^ (x1 ^ (x1 >> 29))) * fpMul2
		h2 = (h2 ^ (x2 ^ (x2 >> 29))) * fpMul2
		h3 = (h3 ^ (x3 ^ (x3 >> 29))) * fpMul2
		s = s[4:]
	}
	l.h0, l.h1, l.h2, l.h3 = h0, h1, h2, h3
	for _, w := range s {
		l.word(uint64(w))
	}
}

// int32s absorbs a slice of 32-bit words, packed two per 64-bit word.
// A trailing odd element is absorbed alone with an extra bump of the
// absorbed-word counter, so suffixes [v] and [v, 0] — which pack to
// the same final word — still reach distinct states.
func (l *fpLanes) int32s(s []int32) {
	h0, h1, h2, h3 := l.h0, l.h1, l.h2, l.h3
	l.n += uint64((len(s) &^ 7) / 2)
	for len(s) >= 8 {
		x0 := (uint64(uint32(s[0])) | uint64(uint32(s[1]))<<32) * fpMul1
		x1 := (uint64(uint32(s[2])) | uint64(uint32(s[3]))<<32) * fpMul1
		x2 := (uint64(uint32(s[4])) | uint64(uint32(s[5]))<<32) * fpMul1
		x3 := (uint64(uint32(s[6])) | uint64(uint32(s[7]))<<32) * fpMul1
		h0 = (h0 ^ (x0 ^ (x0 >> 29))) * fpMul2
		h1 = (h1 ^ (x1 ^ (x1 >> 29))) * fpMul2
		h2 = (h2 ^ (x2 ^ (x2 >> 29))) * fpMul2
		h3 = (h3 ^ (x3 ^ (x3 >> 29))) * fpMul2
		s = s[8:]
	}
	l.h0, l.h1, l.h2, l.h3 = h0, h1, h2, h3
	for len(s) >= 2 {
		l.word(uint64(uint32(s[0])) | uint64(uint32(s[1]))<<32)
		s = s[2:]
	}
	if len(s) > 0 {
		l.word(uint64(uint32(s[0])))
		l.n++
	}
}

// sum finalizes the lanes into one 64-bit fingerprint.
func (l *fpLanes) sum() uint64 {
	h := l.h0
	h = (h ^ l.h1) * fpMul1
	h = (h ^ l.h2) * fpMul2
	h = (h ^ l.h3) * fpMul1
	h ^= l.n * fpInc
	h ^= h >> 33
	h *= fpMul2
	h ^= h >> 29
	return h
}

// Fingerprint returns the 64-bit structural hash of the pattern:
// dimensions, row pointers, and column indices. Values play no part —
// a CSR matrix and its PatternView fingerprint identically, and
// mutating values in place does not change the fingerprint. The cost
// is one linear pass over RowPtr and ColIdx.
func (p *Pattern) Fingerprint() uint64 {
	l := newFPLanes()
	l.word(uint64(p.Rows))
	l.word(uint64(p.Cols))
	l.int64s(p.RowPtr)
	l.int32s(p.ColIdx)
	return l.sum()
}

// ValuesFingerprint returns the 64-bit hash of a float64 value slice —
// the complement of Pattern.Fingerprint: structure plays no part, so
// together the pair (pattern fingerprint, values fingerprint)
// content-addresses a CSR matrix (DESIGN.md §13). Values are absorbed
// by their IEEE-754 bit patterns, so +0 and −0 differ and every NaN
// payload is distinct — identity here means "same stored words", not
// numeric equality. The same four-lane mixer as the structural hash;
// one linear pass at near memory bandwidth.
func ValuesFingerprint(v []float64) uint64 {
	l := newFPLanes()
	h0, h1, h2, h3 := l.h0, l.h1, l.h2, l.h3
	l.n += uint64(len(v) &^ 3)
	for len(v) >= 4 {
		x0 := math.Float64bits(v[0]) * fpMul1
		x1 := math.Float64bits(v[1]) * fpMul1
		x2 := math.Float64bits(v[2]) * fpMul1
		x3 := math.Float64bits(v[3]) * fpMul1
		h0 = (h0 ^ (x0 ^ (x0 >> 29))) * fpMul2
		h1 = (h1 ^ (x1 ^ (x1 >> 29))) * fpMul2
		h2 = (h2 ^ (x2 ^ (x2 >> 29))) * fpMul2
		h3 = (h3 ^ (x3 ^ (x3 >> 29))) * fpMul2
		v = v[4:]
	}
	l.h0, l.h1, l.h2, l.h3 = h0, h1, h2, h3
	for _, x := range v {
		l.word(math.Float64bits(x))
	}
	return l.sum()
}
