package sparse

// Transpose returns Aᵀ as a new CSR matrix. The classic two-pass
// counting-sort transpose: count column occurrences, prefix-sum, scatter.
// Output rows come out sorted because input rows are scanned in order.
func Transpose[T any](a *CSR[T]) *CSR[T] {
	nnz := a.NNZ()
	t := &CSR[T]{
		Pattern: Pattern{
			Rows:   a.Cols,
			Cols:   a.Rows,
			RowPtr: make([]int64, a.Cols+1),
			ColIdx: make([]int32, nnz),
		},
		Val: make([]T, nnz),
	}
	for _, j := range a.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := append([]int64(nil), t.RowPtr...)
	for i := 0; i < a.Rows; i++ {
		vals := a.RowVals(i)
		for k, j := range a.Row(i) {
			p := next[j]
			t.ColIdx[p] = int32(i)
			t.Val[p] = vals[k]
			next[j]++
		}
	}
	return t
}

// TransposePattern returns the transpose of a pattern.
func TransposePattern(p *Pattern) *Pattern {
	nnz := p.NNZ()
	t := &Pattern{
		Rows:   p.Cols,
		Cols:   p.Rows,
		RowPtr: make([]int64, p.Cols+1),
		ColIdx: make([]int32, nnz),
	}
	for _, j := range p.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < p.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := append([]int64(nil), t.RowPtr...)
	for i := 0; i < p.Rows; i++ {
		for _, j := range p.Row(i) {
			t.ColIdx[next[j]] = int32(i)
			next[j]++
		}
	}
	return t
}

// ToCSC converts a CSR matrix to CSC. Structurally this is the transpose
// scatter with row/column roles swapped, so the result represents the
// same matrix.
func ToCSC[T any](a *CSR[T]) *CSC[T] {
	return cscScatter(a, nil)
}

// ToCSCPerm is ToCSC plus the scatter permutation it used: perm[p] is
// the position in a.Val whose value landed at c.Val[p]. Callers that
// cache the CSC view of a structurally-stable matrix (execution plans
// for the pull-based algorithms) use perm to refresh the cached values
// in one O(nnz) pass when the same structure arrives with new values.
func ToCSCPerm[T any](a *CSR[T]) (*CSC[T], []int64) {
	perm := make([]int64, a.NNZ())
	return cscScatter(a, perm), perm
}

// ToCSCStructure computes the CSC *structure* of a — column pointers,
// row indices, and the scatter permutation — without materializing
// values. Shareable execution plans cache exactly this: the structure
// is immutable for the plan's lifetime, while values are refreshed
// through perm into an executor-owned buffer on every execution
// (Val[p] = a.Val[perm[p]]).
func ToCSCStructure[T any](a *CSR[T]) (colPtr []int64, rowIdx []int32, perm []int64) {
	nnz := a.NNZ()
	colPtr = make([]int64, a.Cols+1)
	rowIdx = make([]int32, nnz)
	perm = make([]int64, nnz)
	for _, j := range a.ColIdx {
		colPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		colPtr[j+1] += colPtr[j]
	}
	next := append([]int64(nil), colPtr...)
	for i := 0; i < a.Rows; i++ {
		lo := a.RowPtr[i]
		for k, j := range a.Row(i) {
			p := next[j]
			rowIdx[p] = int32(i)
			perm[p] = lo + int64(k)
			next[j]++
		}
	}
	return colPtr, rowIdx, perm
}

// cscScatter is the counting-sort CSR→CSC conversion behind ToCSC and
// ToCSCPerm; a non-nil perm (length nnz) additionally records the
// scatter permutation.
func cscScatter[T any](a *CSR[T], perm []int64) *CSC[T] {
	nnz := a.NNZ()
	c := &CSC[T]{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: make([]int64, a.Cols+1),
		RowIdx: make([]int32, nnz),
		Val:    make([]T, nnz),
	}
	for _, j := range a.ColIdx {
		c.ColPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		c.ColPtr[j+1] += c.ColPtr[j]
	}
	next := append([]int64(nil), c.ColPtr...)
	for i := 0; i < a.Rows; i++ {
		vals := a.RowVals(i)
		lo := a.RowPtr[i]
		for k, j := range a.Row(i) {
			p := next[j]
			c.RowIdx[p] = int32(i)
			c.Val[p] = vals[k]
			if perm != nil {
				perm[p] = lo + int64(k)
			}
			next[j]++
		}
	}
	return c
}

// FromCSC converts a CSC matrix back to CSR.
func FromCSC[T any](c *CSC[T]) *CSR[T] {
	nnz := c.NNZ()
	a := &CSR[T]{
		Pattern: Pattern{
			Rows:   c.Rows,
			Cols:   c.Cols,
			RowPtr: make([]int64, c.Rows+1),
			ColIdx: make([]int32, nnz),
		},
		Val: make([]T, nnz),
	}
	for _, i := range c.RowIdx {
		a.RowPtr[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	next := append([]int64(nil), a.RowPtr...)
	for j := 0; j < c.Cols; j++ {
		vals := c.ColVals(j)
		for k, i := range c.Col(j) {
			p := next[i]
			a.ColIdx[p] = int32(j)
			a.Val[p] = vals[k]
			next[i]++
		}
	}
	return a
}

// Tril returns the strictly lower triangular part of a (entries with
// column < row). Triangle counting relabels by degree and then works on
// L = tril(A) (§8.2).
func Tril[T any](a *CSR[T]) *CSR[T] {
	out := &CSR[T]{Pattern: Pattern{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		vals := a.RowVals(i)
		for k, j := range row {
			if int(j) < i {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Triu returns the strictly upper triangular part of a (column > row).
func Triu[T any](a *CSR[T]) *CSR[T] {
	out := &CSR[T]{Pattern: Pattern{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		vals := a.RowVals(i)
		for k, j := range row {
			if int(j) > i {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// PermuteSym applies the symmetric permutation P·A·Pᵀ: entry (i,j) moves
// to (perm[i], perm[j]). perm must be a bijection on [0, Rows); the matrix
// must be square. Triangle counting uses this with a degree-sorting
// permutation (§8.2).
func PermuteSym[T any](a *CSR[T], perm []int32) *CSR[T] {
	coo := NewCOO[T](a.Rows, a.Cols, int(a.NNZ()))
	for i := 0; i < a.Rows; i++ {
		vals := a.RowVals(i)
		for k, j := range a.Row(i) {
			coo.Append(perm[i], perm[j], vals[k])
		}
	}
	out, err := coo.ToCSR(nil)
	if err != nil {
		// perm out of range is a programmer error on an internal path.
		panic(err)
	}
	return out
}
