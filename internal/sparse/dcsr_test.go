package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDCSRRoundTrip(t *testing.T) {
	f := func(q quickCSR) bool {
		d := ToDCSR(q.M)
		if d.Validate() != nil {
			return false
		}
		back := d.ToCSR()
		return Equal(q.M, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDCSRHypersparse(t *testing.T) {
	// 1000 rows, only 3 non-empty.
	m, _ := FromRows(1000, 1000, map[int]map[int]float64{
		5:   {1: 1, 7: 2},
		500: {0: 3},
		999: {999: 4},
	})
	d := ToDCSR(m)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NZR() != 3 {
		t.Fatalf("NZR = %d, want 3", d.NZR())
	}
	if d.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", d.NNZ())
	}
	if d.CompressionRatio() < 100 {
		t.Errorf("compression ratio = %v, expected large", d.CompressionRatio())
	}
	// Row access through the binary search.
	if row := d.Row(5); len(row) != 2 || row[0] != 1 || row[1] != 7 {
		t.Errorf("Row(5) = %v", row)
	}
	if vals := d.RowVals(500); len(vals) != 1 || vals[0] != 3 {
		t.Errorf("RowVals(500) = %v", vals)
	}
	if d.Row(6) != nil {
		t.Error("Row(6) should be nil (empty)")
	}
	if d.RowVals(0) != nil {
		t.Error("RowVals(0) should be nil (empty)")
	}
}

func TestDCSRValidateErrors(t *testing.T) {
	bad := &DCSR[float64]{
		Rows: 3, Cols: 3,
		RowID:  []int32{1, 1},
		RowPtr: []int64{0, 1, 2},
		ColIdx: []int32{0, 1},
		Val:    []float64{1, 2},
	}
	if bad.Validate() == nil {
		t.Error("want error for duplicate row ids")
	}
	badEmpty := &DCSR[float64]{
		Rows: 3, Cols: 3,
		RowID:  []int32{0},
		RowPtr: []int64{0, 0},
	}
	if badEmpty.Validate() == nil {
		t.Error("want error for stored empty row")
	}
	badCols := &DCSR[float64]{
		Rows: 2, Cols: 2,
		RowID:  []int32{0},
		RowPtr: []int64{0, 1},
		ColIdx: []int32{7},
		Val:    []float64{1},
	}
	if badCols.Validate() == nil {
		t.Error("want error for out-of-range column")
	}
}

func TestDCSREmptyAndDense(t *testing.T) {
	empty := NewCSR[float64](5, 5)
	d := ToDCSR(empty)
	if d.NZR() != 0 || d.NNZ() != 0 || d.Validate() != nil {
		t.Error("empty DCSR wrong")
	}
	if !Equal(empty, d.ToCSR()) {
		t.Error("empty round trip failed")
	}
	full := randomCSR(rand.New(rand.NewSource(3)), 10, 10, 200)
	df := ToDCSR(full)
	if !Equal(full, df.ToCSR()) {
		t.Error("dense round trip failed")
	}
}
