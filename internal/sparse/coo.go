package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format triple list, the interchange format used by
// the generators and Matrix Market I/O before compression to CSR.
// Entries may be unsorted and may contain duplicates until Compact is
// called; ToCSR handles both.
type COO[T any] struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// RowIdx holds each entry's row index, parallel to ColIdx and Val.
	RowIdx []int32
	// ColIdx holds each entry's column index.
	ColIdx []int32
	// Val holds each entry's value.
	Val []T
}

// NewCOO returns an empty triple list with the given shape and capacity
// hint.
func NewCOO[T any](rows, cols, capHint int) *COO[T] {
	return &COO[T]{
		Rows:   rows,
		Cols:   cols,
		RowIdx: make([]int32, 0, capHint),
		ColIdx: make([]int32, 0, capHint),
		Val:    make([]T, 0, capHint),
	}
}

// Append adds one triple.
func (c *COO[T]) Append(i, j int32, v T) {
	c.RowIdx = append(c.RowIdx, i)
	c.ColIdx = append(c.ColIdx, j)
	c.Val = append(c.Val, v)
}

// Len returns the number of stored triples (before deduplication).
func (c *COO[T]) Len() int { return len(c.RowIdx) }

// ToCSR compresses the triple list to CSR, sorting each row's columns and
// combining duplicate coordinates with the combine function (pass nil to
// keep the last occurrence). The COO is left unmodified.
func (c *COO[T]) ToCSR(combine func(a, b T) T) (*CSR[T], error) {
	for k := range c.RowIdx {
		if c.RowIdx[k] < 0 || int(c.RowIdx[k]) >= c.Rows {
			return nil, fmt.Errorf("sparse: COO row %d out of range [0,%d)", c.RowIdx[k], c.Rows)
		}
		if c.ColIdx[k] < 0 || int(c.ColIdx[k]) >= c.Cols {
			return nil, fmt.Errorf("sparse: COO col %d out of range [0,%d)", c.ColIdx[k], c.Cols)
		}
	}
	nnz := len(c.RowIdx)
	// Counting sort by row, stable on insertion order so that "keep last"
	// and commutative combines are well defined.
	counts := make([]int64, c.Rows+1)
	for _, i := range c.RowIdx {
		counts[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		counts[i+1] += counts[i]
	}
	perm := make([]int32, nnz)
	next := append([]int64(nil), counts...)
	for k := 0; k < nnz; k++ {
		i := c.RowIdx[k]
		perm[next[i]] = int32(k)
		next[i]++
	}
	out := &CSR[T]{
		Pattern: Pattern{
			Rows:   c.Rows,
			Cols:   c.Cols,
			RowPtr: make([]int64, c.Rows+1),
			ColIdx: make([]int32, 0, nnz),
		},
		Val: make([]T, 0, nnz),
	}
	type kv struct {
		j int32
		k int32 // original triple index, for stability
	}
	var scratch []kv
	for i := 0; i < c.Rows; i++ {
		lo, hi := counts[i], counts[i+1]
		scratch = scratch[:0]
		for _, k := range perm[lo:hi] {
			scratch = append(scratch, kv{c.ColIdx[k], k})
		}
		sort.Slice(scratch, func(a, b int) bool {
			if scratch[a].j != scratch[b].j {
				return scratch[a].j < scratch[b].j
			}
			return scratch[a].k < scratch[b].k
		})
		for t := 0; t < len(scratch); {
			j := scratch[t].j
			v := c.Val[scratch[t].k]
			t++
			for t < len(scratch) && scratch[t].j == j {
				if combine != nil {
					v = combine(v, c.Val[scratch[t].k])
				} else {
					v = c.Val[scratch[t].k]
				}
				t++
			}
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, v)
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out, nil
}

// FromTriples builds a CSR matrix from parallel index/value slices,
// combining duplicates with combine (nil keeps the last occurrence).
func FromTriples[T any](rows, cols int, ri, ci []int32, v []T, combine func(a, b T) T) (*CSR[T], error) {
	if len(ri) != len(ci) || len(ri) != len(v) {
		return nil, fmt.Errorf("sparse: triple slices have mismatched lengths %d/%d/%d", len(ri), len(ci), len(v))
	}
	c := &COO[T]{Rows: rows, Cols: cols, RowIdx: ri, ColIdx: ci, Val: v}
	return c.ToCSR(combine)
}

// FromRows builds a CSR matrix from dense-indexed row maps; convenient in
// tests. Rows are map[column]value.
func FromRows[T any](rows, cols int, data map[int]map[int]T) (*CSR[T], error) {
	coo := NewCOO[T](rows, cols, 0)
	for i, row := range data {
		for j, v := range row {
			coo.Append(int32(i), int32(j), v)
		}
	}
	return coo.ToCSR(nil)
}
