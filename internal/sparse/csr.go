// Package sparse provides the sparse-matrix substrate for masked SpGEMM:
// CSR/CSC/COO storage, pattern (structure-only) matrices, conversions,
// transposition, element-wise operations, and dense reference helpers.
//
// Conventions, following the paper (§2.1):
//
//   - CSR is the primary format. CSC appears only where the pull-based
//     inner-product algorithm needs column access to B.
//   - Column indices within a row are sorted ascending and duplicate-free.
//     All constructors either verify or establish this invariant.
//   - Row pointers are int64 (nnz may exceed 2^31); column indices are
//     int32 (dimensions stay below 2^31), which halves index traffic in
//     the accumulators.
package sparse

import (
	"fmt"
	"math"
)

// Pattern is the structure (sparsity pattern) of an m×n sparse matrix in
// CSR layout: RowPtr has length Rows+1 and ColIdx[RowPtr[i]:RowPtr[i+1]]
// holds the sorted column indices of row i. A Pattern is what a mask is:
// the paper's Masked SpGEMM uses only the positions of the mask, never
// its values (§2).
type Pattern struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// RowPtr has Rows+1 monotone entries; row i occupies
	// ColIdx[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int64
	// ColIdx holds sorted, duplicate-free column indices per row.
	ColIdx []int32
}

// NNZ returns the number of stored entries.
func (p *Pattern) NNZ() int64 {
	if len(p.RowPtr) == 0 {
		return 0
	}
	return p.RowPtr[p.Rows]
}

// Row returns the sorted column indices of row i. The returned slice
// aliases the pattern's storage.
func (p *Pattern) Row(i int) []int32 {
	return p.ColIdx[p.RowPtr[i]:p.RowPtr[i+1]]
}

// RowNNZ returns the number of stored entries in row i.
func (p *Pattern) RowNNZ(i int) int {
	return int(p.RowPtr[i+1] - p.RowPtr[i])
}

// MaxRowNNZ returns the maximum number of stored entries in any row, used
// to size per-thread accumulators (MCA arrays and hash tables are sized by
// the densest mask row).
func (p *Pattern) MaxRowNNZ() int {
	maxN := 0
	for i := 0; i < p.Rows; i++ {
		if n := p.RowNNZ(i); n > maxN {
			maxN = n
		}
	}
	return maxN
}

// Validate checks the CSR invariants: monotone row pointers, in-range and
// strictly increasing column indices per row.
func (p *Pattern) Validate() error {
	if p.Rows < 0 || p.Cols < 0 {
		return fmt.Errorf("sparse: negative dimension %dx%d", p.Rows, p.Cols)
	}
	if p.Cols > math.MaxInt32 {
		return fmt.Errorf("sparse: cols %d exceeds int32 index range", p.Cols)
	}
	if len(p.RowPtr) != p.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(p.RowPtr), p.Rows+1)
	}
	if p.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", p.RowPtr[0])
	}
	for i := 0; i < p.Rows; i++ {
		lo, hi := p.RowPtr[i], p.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d (%d > %d)", i, lo, hi)
		}
		// Range before slicing: a decoded RowPtr can point anywhere, and
		// Validate is the guard untrusted input crosses — it must report
		// corruption, never index by it.
		if lo < 0 || hi > int64(len(p.ColIdx)) {
			return fmt.Errorf("sparse: RowPtr range [%d,%d) at row %d exceeds %d stored entries", lo, hi, i, len(p.ColIdx))
		}
		prev := int32(-1)
		for _, j := range p.ColIdx[lo:hi] {
			if j < 0 || int(j) >= p.Cols {
				return fmt.Errorf("sparse: column %d out of range [0,%d) in row %d", j, p.Cols, i)
			}
			if j <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing (%d after %d)", i, j, prev)
			}
			prev = j
		}
	}
	if p.RowPtr[p.Rows] != int64(len(p.ColIdx)) {
		return fmt.Errorf("sparse: RowPtr[last] = %d, want len(ColIdx) = %d", p.RowPtr[p.Rows], len(p.ColIdx))
	}
	return nil
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	q := &Pattern{
		Rows:   p.Rows,
		Cols:   p.Cols,
		RowPtr: append([]int64(nil), p.RowPtr...),
		ColIdx: append([]int32(nil), p.ColIdx...),
	}
	return q
}

// Has reports whether entry (i, j) is stored, via binary search in row i.
func (p *Pattern) Has(i int, j int32) bool {
	row := p.Row(i)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == j
}

// CSR is an m×n sparse matrix over element type T in compressed sparse
// row format. Pattern invariants apply; Val runs parallel to ColIdx.
type CSR[T any] struct {
	Pattern
	// Val holds the stored values, parallel to Pattern.ColIdx.
	Val []T
}

// NewCSR constructs an empty (all-zero) rows×cols matrix.
func NewCSR[T any](rows, cols int) *CSR[T] {
	return &CSR[T]{Pattern: Pattern{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}}
}

// RowVals returns the values of row i, parallel to Row(i). The returned
// slice aliases the matrix storage.
func (a *CSR[T]) RowVals(i int) []T {
	return a.Val[a.RowPtr[i]:a.RowPtr[i+1]]
}

// Validate checks CSR invariants including value-array length.
func (a *CSR[T]) Validate() error {
	if err := a.Pattern.Validate(); err != nil {
		return err
	}
	if len(a.Val) != len(a.ColIdx) {
		return fmt.Errorf("sparse: Val length %d, want %d", len(a.Val), len(a.ColIdx))
	}
	return nil
}

// Clone returns a deep copy of the matrix.
func (a *CSR[T]) Clone() *CSR[T] {
	return &CSR[T]{
		Pattern: *a.Pattern.Clone(),
		Val:     append([]T(nil), a.Val...),
	}
}

// PatternView returns the structure of the matrix. The view shares
// storage with a; it is the natural way to use a matrix as a mask.
func (a *CSR[T]) PatternView() *Pattern { return &a.Pattern }

// At returns the stored value at (i, j) and whether it is present.
func (a *CSR[T]) At(i int, j int32) (T, bool) {
	row := a.Row(i)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == j {
		return a.RowVals(i)[lo], true
	}
	var zero T
	return zero, false
}

// CSC is an m×n sparse matrix in compressed sparse column format. It is
// used by the pull-based Inner algorithm, which walks columns of B
// (§4.1: "A stored in CSR and B in CSC").
type CSC[T any] struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// ColPtr has Cols+1 monotone entries; column j occupies
	// RowIdx[ColPtr[j]:ColPtr[j+1]].
	ColPtr []int64
	// RowIdx holds sorted, duplicate-free row indices per column.
	RowIdx []int32
	// Val holds the stored values, parallel to RowIdx.
	Val []T
}

// NNZ returns the number of stored entries.
func (a *CSC[T]) NNZ() int64 {
	if len(a.ColPtr) == 0 {
		return 0
	}
	return a.ColPtr[a.Cols]
}

// Col returns the sorted row indices of column j, aliasing storage.
func (a *CSC[T]) Col(j int) []int32 {
	return a.RowIdx[a.ColPtr[j]:a.ColPtr[j+1]]
}

// ColVals returns the values of column j, parallel to Col(j).
func (a *CSC[T]) ColVals(j int) []T {
	return a.Val[a.ColPtr[j]:a.ColPtr[j+1]]
}

// Validate checks the CSC invariants (mirror of Pattern.Validate).
func (a *CSC[T]) Validate() error {
	if len(a.ColPtr) != a.Cols+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(a.ColPtr), a.Cols+1)
	}
	if a.ColPtr[0] != 0 {
		return fmt.Errorf("sparse: ColPtr[0] = %d, want 0", a.ColPtr[0])
	}
	for j := 0; j < a.Cols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		if lo > hi {
			return fmt.Errorf("sparse: ColPtr not monotone at col %d", j)
		}
		prev := int32(-1)
		for _, i := range a.RowIdx[lo:hi] {
			if i < 0 || int(i) >= a.Rows {
				return fmt.Errorf("sparse: row %d out of range [0,%d) in col %d", i, a.Rows, j)
			}
			if i <= prev {
				return fmt.Errorf("sparse: col %d rows not strictly increasing", j)
			}
			prev = i
		}
	}
	if a.ColPtr[a.Cols] != int64(len(a.RowIdx)) {
		return fmt.Errorf("sparse: ColPtr[last] = %d, want %d", a.ColPtr[a.Cols], len(a.RowIdx))
	}
	if len(a.Val) != len(a.RowIdx) {
		return fmt.Errorf("sparse: Val length %d, want %d", len(a.Val), len(a.RowIdx))
	}
	return nil
}
