package sparse

import (
	"testing"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector[float64](10)
	if v.NNZ() != 0 || v.Validate() != nil {
		t.Fatal("empty vector invalid")
	}
	v.Idx = []int32{1, 4, 7}
	v.Val = []float64{1.5, -2, 3}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if x, ok := v.At(4); !ok || x != -2 {
		t.Errorf("At(4) = %v, %v", x, ok)
	}
	if _, ok := v.At(5); ok {
		t.Error("At(5) should be absent")
	}
	c := v.Clone()
	c.Val[0] = 99
	if v.Val[0] == 99 {
		t.Error("Clone aliases storage")
	}
}

func TestVectorValidateErrors(t *testing.T) {
	bad := &Vector[int]{N: 3, Idx: []int32{2, 1}, Val: []int{1, 2}}
	if bad.Validate() == nil {
		t.Error("want error for unsorted indices")
	}
	bad2 := &Vector[int]{N: 3, Idx: []int32{1, 1}, Val: []int{1, 2}}
	if bad2.Validate() == nil {
		t.Error("want error for duplicate indices")
	}
	bad3 := &Vector[int]{N: 3, Idx: []int32{5}, Val: []int{1}}
	if bad3.Validate() == nil {
		t.Error("want error for out-of-range index")
	}
	bad4 := &Vector[int]{N: 3, Idx: []int32{1}, Val: []int{}}
	if bad4.Validate() == nil {
		t.Error("want error for length mismatch")
	}
}

func TestVectorDenseRoundTrip(t *testing.T) {
	dense := []float64{0, 1, 0, 2.5, 0, -3}
	v := VectorFromDense(dense, func(x float64) bool { return x != 0 })
	if v.NNZ() != 3 {
		t.Fatalf("nnz = %d", v.NNZ())
	}
	back := v.ToDense()
	for i := range dense {
		if back[i] != dense[i] {
			t.Fatalf("dense round trip: %v vs %v", back, dense)
		}
	}
	all := VectorFromDense(dense, nil)
	if all.NNZ() != 6 {
		t.Errorf("keep-all nnz = %d", all.NNZ())
	}
}

func TestRowVector(t *testing.T) {
	m, _ := FromRows(2, 5, map[int]map[int]float64{1: {0: 4, 3: 5}})
	v := RowVector(m, 1)
	if v.N != 5 || v.NNZ() != 2 {
		t.Fatalf("RowVector shape: N=%d nnz=%d", v.N, v.NNZ())
	}
	if x, _ := v.At(3); x != 5 {
		t.Errorf("At(3) = %v", x)
	}
	// Shares storage with the matrix.
	v.Val[0] = 42
	if got, _ := m.At(1, 0); got != 42 {
		t.Error("RowVector should alias matrix storage")
	}
	empty := RowVector(m, 0)
	if empty.NNZ() != 0 {
		t.Error("empty row should give empty vector")
	}
}
