package sparse

import "maskedspgemm/internal/parallel"

// Parallel element-wise kernels. The serial forms in ewise.go are kept
// for small operands and as test oracles; these two-pass variants
// (count rows in parallel → prefix-sum → fill rows in parallel) are
// what betweenness centrality calls between its masked products, where
// the b×n operands grow with the batch size.

// EWiseAddParallel is EWiseAdd with row-parallel execution.
func EWiseAddParallel[T any](a, b *CSR[T], add func(x, y T) T, threads int) (*CSR[T], error) {
	if err := checkSameShape(a.Rows, a.Cols, b.Rows, b.Cols); err != nil {
		return nil, err
	}
	rows := a.Rows
	rowPtr := make([]int64, rows+1)
	parallel.ForEachBlock(rows, threads, parallel.DefaultGrain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			rowPtr[i] = int64(unionCount(a.Row(i), b.Row(i)))
		}
	})
	parallel.PrefixSumParallel(rowPtr, threads)
	out := &CSR[T]{
		Pattern: Pattern{Rows: rows, Cols: a.Cols, RowPtr: rowPtr, ColIdx: make([]int32, rowPtr[rows])},
		Val:     make([]T, rowPtr[rows]),
	}
	parallel.ForEachBlock(rows, threads, parallel.DefaultGrain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			fillUnionRow(out.ColIdx[rowPtr[i]:rowPtr[i+1]], out.Val[rowPtr[i]:rowPtr[i+1]],
				a.Row(i), a.RowVals(i), b.Row(i), b.RowVals(i), add)
		}
	})
	return out, nil
}

// EWiseMultParallel is EWiseMult with row-parallel execution.
func EWiseMultParallel[T any](a, b *CSR[T], mul func(x, y T) T, threads int) (*CSR[T], error) {
	if err := checkSameShape(a.Rows, a.Cols, b.Rows, b.Cols); err != nil {
		return nil, err
	}
	rows := a.Rows
	rowPtr := make([]int64, rows+1)
	parallel.ForEachBlock(rows, threads, parallel.DefaultGrain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			rowPtr[i] = int64(intersectCount(a.Row(i), b.Row(i)))
		}
	})
	parallel.PrefixSumParallel(rowPtr, threads)
	out := &CSR[T]{
		Pattern: Pattern{Rows: rows, Cols: a.Cols, RowPtr: rowPtr, ColIdx: make([]int32, rowPtr[rows])},
		Val:     make([]T, rowPtr[rows]),
	}
	parallel.ForEachBlock(rows, threads, parallel.DefaultGrain, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			fillIntersectRow(out.ColIdx[rowPtr[i]:rowPtr[i+1]], out.Val[rowPtr[i]:rowPtr[i+1]],
				a.Row(i), a.RowVals(i), b.Row(i), b.RowVals(i), mul)
		}
	})
	return out, nil
}

// unionCount returns |a ∪ b| for sorted sets.
func unionCount(a, b []int32) int {
	n, p, q := 0, 0, 0
	for p < len(a) && q < len(b) {
		switch {
		case a[p] < b[q]:
			p++
		case a[p] > b[q]:
			q++
		default:
			p++
			q++
		}
		n++
	}
	return n + (len(a) - p) + (len(b) - q)
}

// intersectCount returns |a ∩ b| for sorted sets.
func intersectCount(a, b []int32) int {
	n, p, q := 0, 0, 0
	for p < len(a) && q < len(b) {
		switch {
		case a[p] < b[q]:
			p++
		case a[p] > b[q]:
			q++
		default:
			n++
			p++
			q++
		}
	}
	return n
}

// fillUnionRow merges one row pair into pre-sized output slices.
func fillUnionRow[T any](outIdx []int32, outVal []T, ra []int32, va []T, rb []int32, vb []T, add func(x, y T) T) {
	n, p, q := 0, 0, 0
	for p < len(ra) && q < len(rb) {
		switch {
		case ra[p] < rb[q]:
			outIdx[n] = ra[p]
			outVal[n] = va[p]
			p++
		case ra[p] > rb[q]:
			outIdx[n] = rb[q]
			outVal[n] = vb[q]
			q++
		default:
			outIdx[n] = ra[p]
			outVal[n] = add(va[p], vb[q])
			p++
			q++
		}
		n++
	}
	for ; p < len(ra); p++ {
		outIdx[n] = ra[p]
		outVal[n] = va[p]
		n++
	}
	for ; q < len(rb); q++ {
		outIdx[n] = rb[q]
		outVal[n] = vb[q]
		n++
	}
}

// fillIntersectRow intersects one row pair into pre-sized output
// slices.
func fillIntersectRow[T any](outIdx []int32, outVal []T, ra []int32, va []T, rb []int32, vb []T, mul func(x, y T) T) {
	n, p, q := 0, 0, 0
	for p < len(ra) && q < len(rb) {
		switch {
		case ra[p] < rb[q]:
			p++
		case ra[p] > rb[q]:
			q++
		default:
			outIdx[n] = ra[p]
			outVal[n] = mul(va[p], vb[q])
			n++
			p++
			q++
		}
	}
}
