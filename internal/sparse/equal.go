package sparse

import (
	"fmt"
	"math"
)

// Equal reports whether two matrices have identical shape, pattern and
// values (compared with eq). A nil eq means comparable via ==, which only
// works for comparable T; prefer passing eq explicitly for floats.
func Equal[T comparable](a, b *CSR[T]) bool {
	return EqualFunc(a, b, func(x, y T) bool { return x == y })
}

// EqualFunc reports whether two matrices have identical shape, pattern,
// and values under eq.
func EqualFunc[T any](a, b *CSR[T], eq func(x, y T) bool) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i <= a.Rows; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] {
			return false
		}
	}
	for k := range a.Val {
		if !eq(a.Val[k], b.Val[k]) {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference
// between a and b, or "" if they are equal under eq. Intended for test
// failure messages.
func Diff[T any](a, b *CSR[T], eq func(x, y T) bool) string {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Sprintf("shape %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		va, vb := a.RowVals(i), b.RowVals(i)
		if len(ra) != len(rb) {
			return fmt.Sprintf("row %d: nnz %d vs %d (cols %v vs %v)", i, len(ra), len(rb), ra, rb)
		}
		for k := range ra {
			if ra[k] != rb[k] {
				return fmt.Sprintf("row %d entry %d: col %d vs %d", i, k, ra[k], rb[k])
			}
			if !eq(va[k], vb[k]) {
				return fmt.Sprintf("row %d col %d: value %v vs %v", i, ra[k], va[k], vb[k])
			}
		}
	}
	return ""
}

// FloatEq returns an approximate float64 comparison with relative
// tolerance tol, suitable for EqualFunc/Diff on arithmetic-semiring
// results whose summation order may differ between algorithms.
func FloatEq(tol float64) func(x, y float64) bool {
	return func(x, y float64) bool {
		if x == y {
			return true
		}
		d := math.Abs(x - y)
		m := math.Max(math.Abs(x), math.Abs(y))
		return d <= tol*math.Max(m, 1)
	}
}

// PatternEqual reports whether two patterns are identical.
func PatternEqual(a, b *Pattern) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i <= a.Rows; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] {
			return false
		}
	}
	return true
}
