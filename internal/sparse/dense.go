package sparse

// Dense reference helpers. These are deliberately simple O(m·n) oracles
// used by the test suite to validate every masked SpGEMM algorithm
// against an unoptimized ground truth.

// Dense is a row-major dense matrix used only as a test oracle.
type Dense[T any] struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Data holds the entries, len Rows*Cols, row-major.
	Data []T
}

// NewDense allocates a zeroed rows×cols dense matrix.
func NewDense[T any](rows, cols int) *Dense[T] {
	return &Dense[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// At returns element (i, j).
func (d *Dense[T]) At(i, j int) T { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense[T]) Set(i, j int, v T) { d.Data[i*d.Cols+j] = v }

// ToDense expands a CSR matrix, also returning a parallel occupancy map
// (sparse zero values are distinguishable from absent entries).
func ToDense[T any](a *CSR[T]) (*Dense[T], *Dense[bool]) {
	d := NewDense[T](a.Rows, a.Cols)
	occ := NewDense[bool](a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		vals := a.RowVals(i)
		for k, j := range a.Row(i) {
			d.Set(i, int(j), vals[k])
			occ.Set(i, int(j), true)
		}
	}
	return d, occ
}

// FromDense compresses a dense matrix + occupancy map into CSR.
func FromDense[T any](d *Dense[T], occ *Dense[bool]) *CSR[T] {
	out := &CSR[T]{Pattern: Pattern{Rows: d.Rows, Cols: d.Cols, RowPtr: make([]int64, d.Rows+1)}}
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if occ.At(i, j) {
				out.ColIdx = append(out.ColIdx, int32(j))
				out.Val = append(out.Val, d.At(i, j))
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// DenseMaskedMultiply computes M ⊙ (A·B) (or ¬M ⊙ (A·B) when complement
// is set) by brute force over the given add/mul/zero, producing the
// ground-truth CSR result: an output entry exists exactly when the mask
// admits position (i,j) and at least one product contributes to it —
// matching the accumulator semantics where SET requires an insertion
// (§5.1), regardless of the accumulated numeric value.
func DenseMaskedMultiply[T any](
	mask *Pattern, a, b *CSR[T], complement bool,
	add, mul func(x, y T) T, zero T,
) *CSR[T] {
	out := &CSR[T]{Pattern: Pattern{Rows: mask.Rows, Cols: mask.Cols, RowPtr: make([]int64, mask.Rows+1)}}
	bd, bocc := ToDense(b)
	for i := 0; i < mask.Rows; i++ {
		av, arow := a.RowVals(i), a.Row(i)
		maskRow := mask.Row(i)
		q := 0
		for j := 0; j < mask.Cols; j++ {
			for q < len(maskRow) && int(maskRow[q]) < j {
				q++
			}
			onMask := q < len(maskRow) && int(maskRow[q]) == j
			if onMask == complement {
				continue
			}
			acc := zero
			hit := false
			for k, aj := range arow {
				if bocc.At(int(aj), j) {
					p := mul(av[k], bd.At(int(aj), j))
					if !hit {
						acc = p
						hit = true
					} else {
						acc = add(acc, p)
					}
				}
			}
			if hit {
				out.ColIdx = append(out.ColIdx, int32(j))
				out.Val = append(out.Val, acc)
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}
