package sparse

import (
	"math"
	"testing"
)

// fpPattern builds a small pattern from per-row column lists.
func fpPattern(rows, cols int, rowCols [][]int32) *Pattern {
	p := &Pattern{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	for i, cs := range rowCols {
		p.ColIdx = append(p.ColIdx, cs...)
		p.RowPtr[i+1] = int64(len(p.ColIdx))
	}
	return p
}

// TestFingerprintDeterminism: equal structure — same object, a clone,
// or an independently-built equal pattern — fingerprints identically.
func TestFingerprintDeterminism(t *testing.T) {
	p := fpPattern(3, 4, [][]int32{{0, 2}, {1, 3}, {2}})
	if p.Fingerprint() != p.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if p.Fingerprint() != p.Clone().Fingerprint() {
		t.Fatal("clone fingerprints differently")
	}
	q := fpPattern(3, 4, [][]int32{{0, 2}, {1, 3}, {2}})
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("structurally equal patterns fingerprint differently")
	}
}

// TestFingerprintSensitivity: every structural degree of freedom —
// dimensions, entry positions, row layout — changes the fingerprint.
// (64-bit collisions exist in principle; these fixed cases document
// that none of the interesting near-misses collide.)
func TestFingerprintSensitivity(t *testing.T) {
	base := fpPattern(3, 4, [][]int32{{0, 2}, {1, 3}, {2}})
	variants := map[string]*Pattern{
		"wider":          fpPattern(3, 5, [][]int32{{0, 2}, {1, 3}, {2}}),
		"taller":         fpPattern(4, 4, [][]int32{{0, 2}, {1, 3}, {2}, {}}),
		"moved entry":    fpPattern(3, 4, [][]int32{{0, 3}, {1, 3}, {2}}),
		"extra entry":    fpPattern(3, 4, [][]int32{{0, 2}, {1, 3}, {2, 3}}),
		"missing entry":  fpPattern(3, 4, [][]int32{{0, 2}, {1}, {2}}),
		"rows reshuffle": fpPattern(3, 4, [][]int32{{1, 3}, {0, 2}, {2}}),
		// Same ColIdx stream, different row boundaries: only RowPtr
		// distinguishes these.
		"row boundary": fpPattern(3, 4, [][]int32{{0, 2, 1}, {3}, {2}}),
	}
	for name, v := range variants {
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
}

// TestFingerprintIgnoresValues: a CSR matrix fingerprints through its
// pattern; values play no part.
func TestFingerprintIgnoresValues(t *testing.T) {
	m := &CSR[float64]{
		Pattern: *fpPattern(2, 3, [][]int32{{0, 2}, {1}}),
		Val:     []float64{1, 2, 3},
	}
	before := m.PatternView().Fingerprint()
	for i := range m.Val {
		m.Val[i] *= -17
	}
	if m.PatternView().Fingerprint() != before {
		t.Fatal("value mutation changed the structural fingerprint")
	}
}

// TestFingerprintEmpty: degenerate shapes are distinguished.
func TestFingerprintEmpty(t *testing.T) {
	e1 := fpPattern(0, 0, nil)
	e2 := fpPattern(0, 5, nil)
	e3 := fpPattern(5, 0, [][]int32{{}, {}, {}, {}, {}})
	if e1.Fingerprint() == e2.Fingerprint() || e1.Fingerprint() == e3.Fingerprint() || e2.Fingerprint() == e3.Fingerprint() {
		t.Fatal("degenerate shapes collide")
	}
}

// TestFingerprintTailLanes walks column-index lengths across the
// 8-wide vectorized boundary so the packed tail paths (odd counts,
// sub-block counts) are all exercised and distinct.
func TestFingerprintTailLanes(t *testing.T) {
	seen := map[uint64]int{}
	for n := 0; n <= 20; n++ {
		cols := make([]int32, n)
		for i := range cols {
			cols[i] = int32(i)
		}
		p := fpPattern(1, 32, [][]int32{cols})
		fp := p.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[fp] = n
	}
}

// TestFingerprintOddTailDistinct exercises the absorber primitive
// directly: the int32 suffixes [v] and [v, 0] pack to the same final
// 64-bit word, and must still reach distinct states via the extra
// counter bump. (Unreachable through Pattern.Fingerprint, where
// RowPtr pins len(ColIdx), but future key components hash raw
// slices.)
func TestFingerprintOddTailDistinct(t *testing.T) {
	odd := newFPLanes()
	odd.int32s([]int32{5})
	padded := newFPLanes()
	padded.int32s([]int32{5, 0})
	if odd.sum() == padded.sum() {
		t.Fatal("odd tail [v] collides with padded [v, 0]")
	}
}

// BenchmarkFingerprint measures the linear-pass cost the plan cache
// pays per lookup.
func BenchmarkFingerprint(b *testing.B) {
	p := fpPattern(0, 0, nil)
	p.Rows, p.Cols = 4096, 4096
	p.RowPtr = make([]int64, p.Rows+1)
	nnzPerRow := 16
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < nnzPerRow; j++ {
			p.ColIdx = append(p.ColIdx, int32((i*7+j*131)%p.Cols))
		}
		p.RowPtr[i+1] = int64(len(p.ColIdx))
	}
	b.SetBytes(int64(len(p.RowPtr)*8 + len(p.ColIdx)*4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Fingerprint() == 0 {
			b.Fatal("implausible zero fingerprint")
		}
	}
}

// TestValuesFingerprintDeterminism: equal value slices — same backing
// array or an independent copy — fingerprint identically. This is the
// "values" half of the operand store's content address.
func TestValuesFingerprintDeterminism(t *testing.T) {
	v := []float64{1.5, -2.25, 0, 3e100, -0.0}
	if ValuesFingerprint(v) != ValuesFingerprint(v) {
		t.Fatal("not deterministic")
	}
	if ValuesFingerprint(v) != ValuesFingerprint(append([]float64(nil), v...)) {
		t.Fatal("copy fingerprints differently")
	}
}

// TestValuesFingerprintSensitivity: any element change, reorder, or
// length change re-keys the content address.
func TestValuesFingerprintSensitivity(t *testing.T) {
	base := []float64{1, 2, 3, 4, 5, 6, 7}
	fp := ValuesFingerprint(base)
	bumped := append([]float64(nil), base...)
	bumped[3] += 1e-12
	if ValuesFingerprint(bumped) == fp {
		t.Fatal("tiny value change did not re-key")
	}
	swapped := append([]float64(nil), base...)
	swapped[0], swapped[6] = swapped[6], swapped[0]
	if ValuesFingerprint(swapped) == fp {
		t.Fatal("reorder did not re-key")
	}
	if ValuesFingerprint(base[:6]) == fp {
		t.Fatal("truncation did not re-key")
	}
	// +0.0 and -0.0 have distinct bit patterns, so they are distinct
	// content — the fingerprint hashes bits, not numeric equality.
	if ValuesFingerprint([]float64{0.0}) == ValuesFingerprint([]float64{math.Copysign(0, -1)}) {
		t.Fatal("signed zeros collide")
	}
}

// TestValuesFingerprintTailLanes walks lengths across the 4-wide
// unrolled boundary so every tail path is exercised and distinct.
func TestValuesFingerprintTailLanes(t *testing.T) {
	seen := map[uint64]int{}
	for n := 0; n <= 12; n++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i + 1)
		}
		fp := ValuesFingerprint(v)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[fp] = n
	}
}
