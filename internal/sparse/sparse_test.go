package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomCSR builds a random valid CSR via COO for property tests.
func randomCSR(r *rand.Rand, rows, cols, nnz int) *CSR[float64] {
	coo := NewCOO[float64](rows, cols, nnz)
	for k := 0; k < nnz; k++ {
		coo.Append(int32(r.Intn(rows)), int32(r.Intn(cols)), r.Float64())
	}
	m, err := coo.ToCSR(func(a, b float64) float64 { return a + b })
	if err != nil {
		panic(err)
	}
	return m
}

// quickCSR adapts randomCSR to testing/quick's Generator protocol.
type quickCSR struct{ M *CSR[float64] }

func (quickCSR) Generate(r *rand.Rand, size int) reflect.Value {
	rows := 1 + r.Intn(20)
	cols := 1 + r.Intn(20)
	nnz := r.Intn(rows*cols + 1)
	return reflect.ValueOf(quickCSR{randomCSR(r, rows, cols, nnz)})
}

func TestCOOToCSRBasics(t *testing.T) {
	coo := NewCOO[float64](3, 4, 8)
	coo.Append(2, 1, 5)
	coo.Append(0, 3, 1)
	coo.Append(0, 0, 2)
	coo.Append(2, 1, 7) // duplicate
	m, err := coo.ToCSR(func(a, b float64) float64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	if v, ok := m.At(2, 1); !ok || v != 12 {
		t.Errorf("At(2,1) = %v,%v want 12,true", v, ok)
	}
	if v, ok := m.At(0, 0); !ok || v != 2 {
		t.Errorf("At(0,0) = %v,%v", v, ok)
	}
	if _, ok := m.At(1, 1); ok {
		t.Error("At(1,1) should be absent")
	}
	// keep-last combine
	coo2 := NewCOO[float64](1, 2, 2)
	coo2.Append(0, 1, 3)
	coo2.Append(0, 1, 9)
	m2, err := coo2.ToCSR(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m2.At(0, 1); v != 9 {
		t.Errorf("keep-last got %v, want 9", v)
	}
}

func TestCOOOutOfRange(t *testing.T) {
	coo := NewCOO[float64](2, 2, 1)
	coo.Append(2, 0, 1)
	if _, err := coo.ToCSR(nil); err == nil {
		t.Error("want error for out-of-range row")
	}
	coo2 := NewCOO[float64](2, 2, 1)
	coo2.Append(0, -1, 1)
	if _, err := coo2.ToCSR(nil); err == nil {
		t.Error("want error for negative column")
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	m := randomCSR(rand.New(rand.NewSource(1)), 5, 5, 10)
	bad := m.Clone()
	if len(bad.ColIdx) > 1 {
		bad.ColIdx[0], bad.ColIdx[1] = bad.ColIdx[1], bad.ColIdx[0]
	}
	// After the swap either ordering or range is broken in row 0 unless
	// row 0 had < 2 entries; construct an explicit corruption instead.
	explicit := &CSR[float64]{
		Pattern: Pattern{Rows: 1, Cols: 3, RowPtr: []int64{0, 2}, ColIdx: []int32{2, 1}},
		Val:     []float64{1, 2},
	}
	if err := explicit.Validate(); err == nil {
		t.Error("want error for unsorted columns")
	}
	badPtr := &CSR[float64]{
		Pattern: Pattern{Rows: 2, Cols: 3, RowPtr: []int64{0, 2, 1}, ColIdx: []int32{0, 1}},
		Val:     []float64{1, 2},
	}
	if err := badPtr.Validate(); err == nil {
		t.Error("want error for non-monotone RowPtr")
	}
	badCol := &CSR[float64]{
		Pattern: Pattern{Rows: 1, Cols: 2, RowPtr: []int64{0, 1}, ColIdx: []int32{5}},
		Val:     []float64{1},
	}
	if err := badCol.Validate(); err == nil {
		t.Error("want error for out-of-range column")
	}
	badVal := &CSR[float64]{
		Pattern: Pattern{Rows: 1, Cols: 2, RowPtr: []int64{0, 1}, ColIdx: []int32{1}},
	}
	if err := badVal.Validate(); err == nil {
		t.Error("want error for short value array")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(q quickCSR) bool {
		tt := Transpose(Transpose(q.M))
		return Equal(q.M, tt) && tt.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransposeMovesEntries(t *testing.T) {
	f := func(q quickCSR) bool {
		tr := Transpose(q.M)
		for i := 0; i < q.M.Rows; i++ {
			vals := q.M.RowVals(i)
			for k, j := range q.M.Row(i) {
				v, ok := tr.At(int(j), int32(i))
				if !ok || v != vals[k] {
					return false
				}
			}
		}
		return tr.NNZ() == q.M.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSCRoundTrip(t *testing.T) {
	f := func(q quickCSR) bool {
		csc := ToCSC(q.M)
		if csc.Validate() != nil {
			return false
		}
		back := FromCSC(csc)
		return Equal(q.M, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransposePatternAgrees(t *testing.T) {
	f := func(q quickCSR) bool {
		p := TransposePattern(&q.M.Pattern)
		tr := Transpose(q.M)
		return PatternEqual(p, &tr.Pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTrilTriu(t *testing.T) {
	f := func(q quickCSR) bool {
		l, u := Tril(q.M), Triu(q.M)
		for i := 0; i < l.Rows; i++ {
			for _, j := range l.Row(i) {
				if int(j) >= i {
					return false
				}
			}
			for _, j := range u.Row(i) {
				if int(j) <= i {
					return false
				}
			}
		}
		// tril + triu + diagonal = all entries
		var diag int64
		for i := 0; i < q.M.Rows; i++ {
			if q.M.Has(i, int32(i)) && i < q.M.Cols {
				diag++
			}
		}
		return l.NNZ()+u.NNZ()+diag == q.M.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPermuteSymRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := randomCSR(r, 12, 12, 40)
	perm := r.Perm(12)
	p32 := make([]int32, 12)
	for i, v := range perm {
		p32[i] = int32(v)
	}
	inv := make([]int32, 12)
	for i, v := range p32 {
		inv[v] = int32(i)
	}
	back := PermuteSym(PermuteSym(m, p32), inv)
	if !Equal(m, back) {
		t.Fatal("PermuteSym(inv ∘ perm) != identity")
	}
}

func TestEWiseAddMult(t *testing.T) {
	a, _ := FromRows(2, 3, map[int]map[int]float64{0: {0: 1, 2: 3}, 1: {1: 5}})
	b, _ := FromRows(2, 3, map[int]map[int]float64{0: {0: 10, 1: 20}, 1: {1: 2}})
	sum, err := EWiseAdd(a, b, func(x, y float64) float64 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows(2, 3, map[int]map[int]float64{0: {0: 11, 1: 20, 2: 3}, 1: {1: 7}})
	if !Equal(want, sum) {
		t.Errorf("EWiseAdd: %s", Diff(want, sum, func(x, y float64) bool { return x == y }))
	}
	prod, err := EWiseMult(a, b, func(x, y float64) float64 { return x * y })
	if err != nil {
		t.Fatal(err)
	}
	wantP, _ := FromRows(2, 3, map[int]map[int]float64{0: {0: 10}, 1: {1: 10}})
	if !Equal(wantP, prod) {
		t.Errorf("EWiseMult: %s", Diff(wantP, prod, func(x, y float64) bool { return x == y }))
	}
	if _, err := EWiseAdd(a, randomCSR(rand.New(rand.NewSource(1)), 3, 3, 2), nil); err == nil {
		t.Error("want shape error")
	}
}

func TestEWiseProperties(t *testing.T) {
	add := func(x, y float64) float64 { return x + y }
	f := func(q1, q2 quickCSR) bool {
		a := q1.M
		// Force same shape.
		b := randomCSR(rand.New(rand.NewSource(int64(q2.M.NNZ()))), a.Rows, a.Cols, int(q2.M.NNZ()))
		ab, err1 := EWiseAdd(a, b, add)
		ba, err2 := EWiseAdd(b, a, add)
		if err1 != nil || err2 != nil {
			return false
		}
		// Commutativity, nnz bounds, validity.
		if !EqualFunc(ab, ba, FloatEq(1e-12)) {
			return false
		}
		if ab.NNZ() > a.NNZ()+b.NNZ() {
			return false
		}
		inter, err := EWiseMult(a, b, func(x, y float64) float64 { return x * y })
		if err != nil || inter.Validate() != nil {
			return false
		}
		return inter.NNZ()+ab.NNZ() == a.NNZ()+b.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSelectApplyReduce(t *testing.T) {
	m, _ := FromRows(2, 4, map[int]map[int]float64{0: {0: -1, 1: 2}, 1: {2: -3, 3: 4}})
	pos := Select(m, func(_ int, _ int32, v float64) bool { return v > 0 })
	if pos.NNZ() != 2 {
		t.Fatalf("Select kept %d, want 2", pos.NNZ())
	}
	doubled := Apply(m, func(v float64) float64 { return 2 * v })
	if got := Reduce(doubled, 0, func(x, y float64) float64 { return x + y }); got != 4 {
		t.Errorf("Reduce = %v, want 4", got)
	}
	rows := ReduceRows(m, 0, func(x, y float64) float64 { return x + y })
	if rows[0] != 1 || rows[1] != 1 {
		t.Errorf("ReduceRows = %v", rows)
	}
	cols := ReduceCols(m, 0, func(x, y float64) float64 { return x + y })
	if cols[0] != -1 || cols[1] != 2 || cols[2] != -3 || cols[3] != 4 {
		t.Errorf("ReduceCols = %v", cols)
	}
	ints := Apply(m, func(v float64) int { return int(v) })
	if ints.Val[0] != -1 {
		t.Errorf("Apply type change failed: %v", ints.Val)
	}
}

func TestApplyMask(t *testing.T) {
	m, _ := FromRows(2, 3, map[int]map[int]float64{0: {0: 1, 1: 2, 2: 3}, 1: {0: 4}})
	mask, _ := FromRows(2, 3, map[int]map[int]float64{0: {1: 1}, 1: {0: 1, 2: 1}})
	kept, err := ApplyMask(m, mask.PatternView(), false)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows(2, 3, map[int]map[int]float64{0: {1: 2}, 1: {0: 4}})
	if !Equal(want, kept) {
		t.Errorf("ApplyMask: %s", Diff(want, kept, func(x, y float64) bool { return x == y }))
	}
	comp, err := ApplyMask(m, mask.PatternView(), true)
	if err != nil {
		t.Fatal(err)
	}
	wantC, _ := FromRows(2, 3, map[int]map[int]float64{0: {0: 1, 2: 3}})
	if !Equal(wantC, comp) {
		t.Errorf("ApplyMask complement: %s", Diff(wantC, comp, func(x, y float64) bool { return x == y }))
	}
}

func TestPatternSetOps(t *testing.T) {
	a, _ := FromRows(2, 4, map[int]map[int]float64{0: {0: 1, 2: 1}, 1: {1: 1}})
	b, _ := FromRows(2, 4, map[int]map[int]float64{0: {2: 1, 3: 1}, 1: {1: 1, 0: 1}})
	u, err := PatternUnion(a.PatternView(), b.PatternView())
	if err != nil {
		t.Fatal(err)
	}
	if u.NNZ() != 5 {
		t.Errorf("union nnz = %d, want 5", u.NNZ())
	}
	x, err := PatternIntersect(a.PatternView(), b.PatternView())
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 2 {
		t.Errorf("intersect nnz = %d, want 2", x.NNZ())
	}
	if u.NNZ()+x.NNZ() != a.NNZ()+b.NNZ() {
		t.Error("inclusion-exclusion violated")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	f := func(q quickCSR) bool {
		d, occ := ToDense(q.M)
		back := FromDense(d, occ)
		return Equal(q.M, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPatternHelpers(t *testing.T) {
	m, _ := FromRows(3, 5, map[int]map[int]float64{0: {1: 1, 3: 1}, 2: {0: 1, 1: 1, 4: 1}})
	p := m.PatternView()
	if p.MaxRowNNZ() != 3 {
		t.Errorf("MaxRowNNZ = %d, want 3", p.MaxRowNNZ())
	}
	if !p.Has(0, 3) || p.Has(0, 2) || p.Has(1, 0) {
		t.Error("Has gave wrong answers")
	}
	if p.RowNNZ(1) != 0 {
		t.Errorf("RowNNZ(1) = %d", p.RowNNZ(1))
	}
	c := p.Clone()
	c.ColIdx[0] = 2
	if p.ColIdx[0] == 2 {
		t.Error("Clone aliases storage")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, _ := FromRows(2, 2, map[int]map[int]float64{0: {0: 1}})
	b, _ := FromRows(2, 2, map[int]map[int]float64{0: {0: 1}})
	if !Equal(a, b) || Diff(a, b, FloatEq(0)) != "" {
		t.Error("identical matrices reported different")
	}
	c, _ := FromRows(2, 2, map[int]map[int]float64{0: {1: 1}})
	if Equal(a, c) || Diff(a, c, FloatEq(0)) == "" {
		t.Error("different matrices reported equal")
	}
	d, _ := FromRows(2, 2, map[int]map[int]float64{0: {0: 2}})
	if Diff(a, d, FloatEq(0)) == "" {
		t.Error("value difference not reported")
	}
	e, _ := FromRows(3, 2, map[int]map[int]float64{})
	if Diff(a, e, FloatEq(0)) == "" {
		t.Error("shape difference not reported")
	}
}

func TestFloatEq(t *testing.T) {
	eq := FloatEq(1e-9)
	if !eq(1, 1+1e-12) {
		t.Error("near-equal floats rejected")
	}
	if eq(1, 1.1) {
		t.Error("distant floats accepted")
	}
	if !eq(0, 0) {
		t.Error("zeros rejected")
	}
}
