package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParallelEWiseMatchesSerial cross-checks the two-pass parallel
// kernels against the serial oracles on random inputs and thread
// counts.
func TestParallelEWiseMatchesSerial(t *testing.T) {
	add := func(x, y float64) float64 { return x + y }
	mul := func(x, y float64) float64 { return x * y }
	f := func(seed int64, threadsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(50)
		cols := 1 + r.Intn(50)
		a := randomCSR(r, rows, cols, r.Intn(rows*cols+1))
		b := randomCSR(r, rows, cols, r.Intn(rows*cols+1))
		threads := int(threadsRaw%4) + 1
		wantAdd, err1 := EWiseAdd(a, b, add)
		gotAdd, err2 := EWiseAddParallel(a, b, add, threads)
		if err1 != nil || err2 != nil {
			return false
		}
		if !EqualFunc(wantAdd, gotAdd, FloatEq(0)) {
			return false
		}
		wantMul, err1 := EWiseMult(a, b, mul)
		gotMul, err2 := EWiseMultParallel(a, b, mul, threads)
		if err1 != nil || err2 != nil {
			return false
		}
		return EqualFunc(wantMul, gotMul, FloatEq(0)) &&
			gotAdd.Validate() == nil && gotMul.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParallelEWiseShapeErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randomCSR(r, 3, 3, 4)
	b := randomCSR(r, 4, 3, 4)
	if _, err := EWiseAddParallel(a, b, nil, 2); err == nil {
		t.Error("want shape error (add)")
	}
	if _, err := EWiseMultParallel(a, b, nil, 2); err == nil {
		t.Error("want shape error (mult)")
	}
}

func TestUnionIntersectCounts(t *testing.T) {
	cases := []struct {
		a, b         []int32
		union, inter int
	}{
		{nil, nil, 0, 0},
		{[]int32{1}, nil, 1, 0},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 4, 2},
		{[]int32{1, 3}, []int32{2, 4}, 4, 0},
		{[]int32{5}, []int32{5}, 1, 1},
	}
	for _, c := range cases {
		if got := unionCount(c.a, c.b); got != c.union {
			t.Errorf("unionCount(%v,%v) = %d, want %d", c.a, c.b, got, c.union)
		}
		if got := intersectCount(c.a, c.b); got != c.inter {
			t.Errorf("intersectCount(%v,%v) = %d, want %d", c.a, c.b, got, c.inter)
		}
	}
}
