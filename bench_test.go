// Benchmarks regenerating every evaluation figure of the paper
// (Figures 7–16) at CI scale, plus the design-choice ablations listed
// in DESIGN.md §6. The cmd/mspgemm-bench binary runs the same drivers
// at configurable (paper-sized) scales; these testing.B entry points
// keep each figure reproducible via `go test -bench=.`.
package maskedspgemm

import (
	"fmt"
	"testing"

	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// benchGraph memoizes the benchmark graphs across sub-benchmarks.
var benchGraphs = map[string]*sparse.CSR[float64]{}

func rmatGraph(scale, ef int, seed uint64) *sparse.CSR[float64] {
	key := fmt.Sprintf("rmat-%d-%d-%d", scale, ef, seed)
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	g := gen.RMATSymmetric(gen.RMATConfig{Scale: scale, EdgeFactor: ef, Seed: seed})
	benchGraphs[key] = g
	return g
}

// BenchmarkFig07 regenerates one Figure-7 panel cell class per
// sub-benchmark: the masked product on ER inputs at three
// characteristic density corners.
func BenchmarkFig07(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	corners := []struct {
		name    string
		dIn, dM int
	}{
		{"sparse-mask-dense-input/dM=2/dIn=64", 64, 2},
		{"balanced/dM=16/dIn=16", 16, 16},
		{"dense-mask-sparse-input/dM=256/dIn=4", 4, 256},
	}
	const dim = 1 << 12
	for _, c := range corners {
		a := gen.ErdosRenyi(dim, c.dIn, 1)
		bb := gen.ErdosRenyi(dim, c.dIn, 2)
		mask := gen.ErdosRenyiPattern(dim, c.dM, 3)
		for _, s := range bench.Fig7Schemes() {
			b.Run(c.name+"/"+s.Name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.MaskedSpGEMM(sr, mask, a, bb, s.Opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchTriangleCount shares the TC benchmark body for Figs 8–11. The
// plan is built outside the timed loop, matching §8.2's "we only
// report the Masked SpGEMM execution time" and exercising the pooled
// executor workspaces across iterations.
func benchTriangleCount(b *testing.B, g *sparse.CSR[float64], schemes []bench.Scheme) {
	w := graph.PrepareTriangleCount(g)
	flops := 2 * float64(w.Flops())
	for _, s := range schemes {
		b.Run(s.Name, func(b *testing.B) {
			// CountWith consumes each product inside the loop, so pooled
			// output buffers are safe.
			opt := s.Opt
			opt.ReuseOutput = true
			plan, err := w.NewPlan(opt, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var count int64
			for i := 0; i < b.N; i++ {
				count, err = w.CountWith(plan)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(flops/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOPS")
			_ = count
		})
	}
}

// BenchmarkFig08 — TC across our 12 variants (the performance-profile
// data of Figure 8) on one representative suite graph.
func BenchmarkFig08(b *testing.B) {
	benchTriangleCount(b, rmatGraph(12, 16, 101), bench.OurSchemes())
}

// BenchmarkFig09 — TC: our best three vs the SS:GB-style baselines
// (Figure 9).
func BenchmarkFig09(b *testing.B) {
	benchTriangleCount(b, rmatGraph(12, 16, 101),
		append(bench.BestThreeSchemes(), bench.BaselineSchemes()...))
}

// BenchmarkFig10 — TC GFLOPS vs R-MAT scale (Figure 10), MSA-1P series.
func BenchmarkFig10(b *testing.B) {
	for _, scale := range []int{8, 10, 12} {
		g := rmatGraph(scale, 16, 110+uint64(scale))
		w := graph.PrepareTriangleCount(g)
		flops := 2 * float64(w.Flops())
		b.Run(fmt.Sprintf("scale=%d/MSA-1P", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Count(core.Options{Algorithm: core.AlgoMSA}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(flops/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOPS")
		})
	}
}

// BenchmarkFig11 — TC strong scaling across thread counts (Figure 11).
func BenchmarkFig11(b *testing.B) {
	g := rmatGraph(12, 16, 111)
	w := graph.PrepareTriangleCount(g)
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d/MSA-1P", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Count(core.Options{Algorithm: core.AlgoMSA, Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchKTruss shares the k-truss body for Figs 12–14.
func benchKTruss(b *testing.B, g *sparse.CSR[float64], schemes []bench.Scheme) {
	for _, s := range schemes {
		b.Run(s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.KTruss(g, 5, s.Opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12 — k-truss across our variants (Figure 12 data).
func BenchmarkFig12(b *testing.B) {
	benchKTruss(b, rmatGraph(11, 8, 112), bench.OurSchemes())
}

// BenchmarkFig13 — k-truss: ours vs baselines (Figure 13).
func BenchmarkFig13(b *testing.B) {
	benchKTruss(b, rmatGraph(11, 8, 112),
		append(bench.BestThreeSchemes(), bench.BaselineSchemes()...))
}

// BenchmarkFig14 — k-truss GFLOPS vs scale (Figure 14), MSA-1P series.
func BenchmarkFig14(b *testing.B) {
	for _, scale := range []int{8, 10, 12} {
		g := rmatGraph(scale, 8, 114+uint64(scale))
		b.Run(fmt.Sprintf("scale=%d/MSA-1P", scale), func(b *testing.B) {
			var flops int64
			for i := 0; i < b.N; i++ {
				res, err := graph.KTruss(g, 5, core.Options{Algorithm: core.AlgoMSA})
				if err != nil {
					b.Fatal(err)
				}
				flops = res.Flops
			}
			b.ReportMetric(2*float64(flops)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOPS")
		})
	}
}

// BenchmarkFig15 — BC MTEPS vs scale (Figure 15), MSA-1P series.
func BenchmarkFig15(b *testing.B) {
	for _, scale := range []int{8, 10} {
		g := rmatGraph(scale, 16, 115+uint64(scale))
		sources := graph.BatchSources(g.Rows, 64)
		edges := float64(g.NNZ()) / 2
		b.Run(fmt.Sprintf("scale=%d/MSA-1P", scale), func(b *testing.B) {
			var masked float64
			for i := 0; i < b.N; i++ {
				res, err := graph.Betweenness(g, sources, core.Options{Algorithm: core.AlgoMSA})
				if err != nil {
					b.Fatal(err)
				}
				masked += res.MaskedTime.Seconds()
			}
			b.ReportMetric(float64(len(sources))*edges*float64(b.N)/masked/1e6, "MTEPS")
		})
	}
}

// BenchmarkFig16 — BC across the complement-capable variants and the
// saxpy baseline (Figure 16 data).
func BenchmarkFig16(b *testing.B) {
	g := rmatGraph(10, 16, 116)
	sources := graph.BatchSources(g.Rows, 64)
	schemes := append(bench.ComplementSchemes(), bench.BaselineSchemes()[0])
	for _, s := range schemes {
		b.Run(s.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.Betweenness(g, sources, s.Opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkPhases — 1P vs 2P for every algorithm on one workload: the
// paper's headline finding that one-phase wins for masked SpGEMM.
func BenchmarkPhases(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const dim = 1 << 12
	a := gen.ErdosRenyi(dim, 16, 21)
	bb := gen.ErdosRenyi(dim, 16, 22)
	mask := gen.ErdosRenyiPattern(dim, 16, 23)
	for _, algo := range core.PaperAlgorithms() {
		for _, ph := range []core.Phases{core.OnePhase, core.TwoPhase} {
			opt := core.Options{Algorithm: algo, Phases: ph}
			b.Run(opt.SchemeName(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.MaskedSpGEMM(sr, mask, a, bb, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHeapNInspect — the §5.5 NInspect parameter sweep.
func BenchmarkHeapNInspect(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const dim = 1 << 12
	a := gen.ErdosRenyi(dim, 8, 24)
	bb := gen.ErdosRenyi(dim, 8, 25)
	mask := gen.ErdosRenyiPattern(dim, 64, 26)
	for _, n := range []int{core.HeapInspectNone, 1, 4, core.HeapInspectAll} {
		name := fmt.Sprintf("NInspect=%d", n)
		switch n {
		case core.HeapInspectNone:
			name = "NInspect=none"
		case core.HeapInspectAll:
			name = "NInspect=inf"
		}
		opt := core.Options{Algorithm: core.AlgoHeap, HeapNInspect: n}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMM(sr, mask, a, bb, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInnerGallop — two-pointer merge vs galloping dot products
// under balanced and skewed operand lengths.
func BenchmarkInnerGallop(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	workloads := []struct {
		name  string
		a, bb *sparse.CSR[float64]
		mask  *sparse.Pattern
	}{
		{
			"balanced",
			gen.ErdosRenyi(1<<12, 16, 45), gen.ErdosRenyi(1<<12, 16, 46),
			gen.ErdosRenyiPattern(1<<12, 8, 47),
		},
		{
			"skewed",
			gen.ErdosRenyi(1<<12, 128, 48), gen.ErdosRenyi(1<<12, 2, 49),
			gen.ErdosRenyiPattern(1<<12, 8, 50),
		},
	}
	for _, wl := range workloads {
		for _, gallop := range []bool{false, true} {
			name := wl.name + "/merge"
			if gallop {
				name = wl.name + "/gallop"
			}
			opt := core.Options{Algorithm: core.AlgoInner, InnerGallop: gallop}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.MaskedSpGEMM(sr, wl.mask, wl.a, wl.bb, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHashLoadFactor — the §5.3 load-factor choice.
func BenchmarkHashLoadFactor(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const dim = 1 << 12
	a := gen.ErdosRenyi(dim, 16, 27)
	bb := gen.ErdosRenyi(dim, 16, 28)
	mask := gen.ErdosRenyiPattern(dim, 32, 29)
	for _, lf := range []float64{0.25, 0.5, 0.75} {
		opt := core.Options{Algorithm: core.AlgoHash, HashLoadFactor: lf}
		b.Run(fmt.Sprintf("lf=%.2f", lf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMM(sr, mask, a, bb, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMSAReset — mask-walk reset (paper §5.2) vs epoch stamps.
func BenchmarkMSAReset(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const dim = 1 << 13
	a := gen.ErdosRenyi(dim, 16, 30)
	bb := gen.ErdosRenyi(dim, 16, 31)
	mask := gen.ErdosRenyiPattern(dim, 16, 32)
	for _, algo := range []core.Algorithm{core.AlgoMSA, core.AlgoMSAEpoch} {
		opt := core.Options{Algorithm: algo}
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMM(sr, mask, a, bb, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGrain — scheduler chunk-size sensitivity on a skewed
// (R-MAT) workload.
func BenchmarkGrain(b *testing.B) {
	sr := semiring.PlusPair[int64]{}
	g := rmatGraph(12, 16, 33)
	w := graph.PrepareTriangleCount(g)
	for _, grain := range []int{1, 16, 64, 256, 4096} {
		opt := core.Options{Algorithm: core.AlgoMSA, Grain: grain}
		b.Run(fmt.Sprintf("grain=%d", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMM(sr, w.L.PatternView(), w.L, w.L, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnePhaseLayout — the mask-slab one-phase layout against the
// symbolic two-phase on a mask that wildly overestimates the output
// (worst case for 1P's extra memory) and one that matches it (best
// case).
func BenchmarkOnePhaseLayout(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const dim = 1 << 12
	a := gen.ErdosRenyi(dim, 4, 34)
	bb := gen.ErdosRenyi(dim, 4, 35)
	masks := map[string]*sparse.Pattern{
		"tight-mask": gen.ErdosRenyiPattern(dim, 4, 36),
		"loose-mask": gen.ErdosRenyiPattern(dim, 512, 37),
	}
	for name, mask := range masks {
		for _, ph := range []core.Phases{core.OnePhase, core.TwoPhase} {
			opt := core.Options{Algorithm: core.AlgoMSA, Phases: ph}
			b.Run(name+"/"+opt.SchemeName(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.MaskedSpGEMM(sr, mask, a, bb, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHybrid — the §9 future-work hybrid against its two
// ingredients on workloads chosen so each ingredient wins one: the
// hybrid should track the better of the two on both.
func BenchmarkHybrid(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const dim = 1 << 12
	workloads := []struct {
		name       string
		dIn, dMask int
	}{
		{"pull-friendly/denseIn-sparseMask", 64, 2},
		{"push-friendly/sparseIn-denseMask", 4, 128},
	}
	for _, wl := range workloads {
		a := gen.ErdosRenyi(dim, wl.dIn, 41)
		bb := gen.ErdosRenyi(dim, wl.dIn, 42)
		mask := gen.ErdosRenyiPattern(dim, wl.dMask, 43)
		for _, algo := range []core.Algorithm{core.AlgoMSA, core.AlgoInner, core.AlgoHybrid} {
			opt := core.Options{Algorithm: algo}
			b.Run(wl.name+"/"+algo.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.MaskedSpGEMM(sr, mask, a, bb, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHybridMix — the per-row poly-algorithm (DESIGN.md §10)
// against every single accumulator family. The acceptance targets: on
// the banded mask-density sweep (1e-4 … 0.5 across row bands — no
// single family wins every band) the mixed per-row binding must be
// ≥ 10% faster than the best single family; on the uniform-density
// controls, where one family is globally optimal, it must track that
// family within 3% (the selector binds ~every row to it, so only
// run-dispatch overhead remains). `mspgemm-bench hybridmix` runs the
// same experiment with a best-of-reps harness and emits
// BENCH_hybridmix.json.
func BenchmarkHybridMix(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const scale, ef = 12, 32
	n := 1 << scale
	g := gen.Symmetrize(gen.ErdosRenyi(n, ef, 7))
	workloads := []struct {
		name string
		mask *sparse.Pattern
	}{
		{"density-sweep", bench.BandedMask(n, bench.SweepDensities, 9)},
		{"uniform-dense", gen.ErdosRenyiPattern(n, n/16, 10)},
		{"uniform-sparse", gen.ErdosRenyiPattern(n, 2, 11)},
	}
	algos := []core.Algorithm{core.AlgoMSA, core.AlgoHash, core.AlgoMCA, core.AlgoHeap, core.AlgoInner, core.AlgoHybrid}
	for _, wl := range workloads {
		for _, algo := range algos {
			opt := core.Options{Algorithm: algo, ReuseOutput: true}
			plan, err := core.NewPlan(sr, wl.mask, g, g, opt, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(wl.name+"/"+algo.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Execute(g, g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBitmapMix — the MaskedBit bitmap-state accumulator
// (DESIGN.md §12) against the byte-state MSA and the Hybrid menu with
// and without it. The dense-mask workload (mask degree n/4 over
// edge-factor-8 inputs) is walk-dominated — the class MaskedBit's
// 8x-smaller state traffic targets; the density sweep checks the
// Hybrid selector only binds MaskedBit where it wins. `mspgemm-bench
// bitmap` runs the same comparison with a best-of-reps harness and
// emits BENCH_bitmap.json, which CI gates on.
func BenchmarkBitmapMix(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const scale, ef = 12, 8
	n := 1 << scale
	g := gen.Symmetrize(gen.ErdosRenyi(n, ef, 11))
	workloads := []struct {
		name string
		mask *sparse.Pattern
	}{
		{"dense-mask", gen.ErdosRenyiPattern(n, n/4, 13)},
		{"density-sweep", bench.BandedMask(n, bench.SweepDensities, 14)},
		{"uniform-sparse", gen.ErdosRenyiPattern(n, 2, 15)},
	}
	schemes := []struct {
		name string
		opt  core.Options
	}{
		{"MSA", core.Options{Algorithm: core.AlgoMSA, ReuseOutput: true}},
		{"MaskedBit", core.Options{Algorithm: core.AlgoMaskedBit, ReuseOutput: true}},
		{"Hybrid", core.Options{Algorithm: core.AlgoHybrid, ReuseOutput: true}},
		{"Hybrid-noMaskedBit", core.Options{
			Algorithm:      core.AlgoHybrid,
			HybridFamilies: core.Families(core.FamMSA, core.FamHash, core.FamMCA, core.FamHeap, core.FamPull),
			ReuseOutput:    true,
		}},
	}
	for _, wl := range workloads {
		for _, sc := range schemes {
			plan, err := core.NewPlan(sr, wl.mask, g, g, sc.opt, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(wl.name+"/"+sc.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Execute(g, g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCancelOverhead — the cost of cancellation-aware kernels
// (DESIGN.md §15): the same plan on the same executor with no cancel
// token versus a live, never-latched one, on the uniform ER self-mask
// control where a fixed per-block polling cost cannot hide behind row
// skew. `mspgemm-bench cancel` runs the same comparison with an
// interleaved best-of-reps harness and emits BENCH_cancel.json, whose
// ratio CI gates at the ≤2% checkpoint-overhead budget.
func BenchmarkCancelOverhead(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const scale, ef = 12, 8
	g := gen.Symmetrize(gen.ErdosRenyi(1<<scale, ef, 17))
	opt := core.Options{Algorithm: core.AlgoMSA, ReuseOutput: true}
	plan, err := core.NewPlan(sr, g.PatternView(), g, g, opt, nil)
	if err != nil {
		b.Fatal(err)
	}
	exec := core.NewExecutor[float64](sr)
	arms := []struct {
		name string
		eo   core.ExecOptions
	}{
		{"no-token", core.ExecOptions{ReuseOutput: true}},
		{"token", core.ExecOptions{ReuseOutput: true, Cancel: &parallel.CancelToken{}}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.ExecuteOnOpts(exec, g, g, arm.eo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBFSDirection — push vs pull vs direction-optimized BFS
// (§4's motivating application for masking).
func BenchmarkBFSDirection(b *testing.B) {
	g := rmatGraph(13, 16, 44)
	for _, strat := range []graph.BFSStrategy{graph.BFSPush, graph.BFSPull, graph.BFSAuto} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.BFS(g, []int32{0}, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComplement — complemented-mask variants head to head.
func BenchmarkComplement(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	const dim = 1 << 11
	a := gen.ErdosRenyi(dim, 8, 38)
	bb := gen.ErdosRenyi(dim, 8, 39)
	mask := gen.ErdosRenyiPattern(dim, 64, 40)
	for _, algo := range []core.Algorithm{core.AlgoMSA, core.AlgoHash, core.AlgoHeap} {
		opt := core.Options{Algorithm: algo, Complement: true}
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaskedSpGEMM(sr, mask, a, bb, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedSkew — the DESIGN.md §9 scheduling experiment: the same
// masked product under fixed-grain, cost-partitioned, and work-stealing
// scheduling, on a degree-ascending R-MAT graph whose tail-adjacent
// hub rows break a fixed 64-row grain (the heavy blocks are claimed
// last, with nothing left to balance them against), and on a uniform
// ER control where the strategies must tie. The acceptance target (cost-guided ≥ 1.3× over
// fixed grain on the skewed input at ≥ 4 threads, ≤ 5% regression on
// ER) needs real hardware parallelism; run with GOMAXPROCS ≥ 4.
func BenchmarkSchedSkew(b *testing.B) {
	sr := semiring.PlusTimes[float64]{}
	workloads := []struct {
		name string
		g    *sparse.CSR[float64]
	}{
		{"rmat-hubs", bench.SkewedGraph(12, 16, 33)},
		{"er-uniform", gen.Symmetrize(gen.ErdosRenyi(1<<12, 16, 34))},
	}
	for _, wl := range workloads {
		mask := wl.g.PatternView()
		for _, threads := range []int{2, 4, 8} {
			for _, mode := range []core.Schedule{core.SchedFixedGrain, core.SchedCostPartition, core.SchedWorkSteal} {
				opt := core.Options{Algorithm: core.AlgoMSA, Threads: threads, Schedule: mode, ReuseOutput: true}
				plan, err := core.NewPlan(sr, mask, wl.g, wl.g, opt, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("%s/threads=%d/%v", wl.name, threads, mode), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := plan.Execute(wl.g, wl.g); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFlops — the flop counters after the per-worker partial-sum
// rework: the serial path (small nnz) must report 0 allocs/op, and the
// parallel path's allocations are O(threads) scheduler bookkeeping,
// never O(rows).
func BenchmarkFlops(b *testing.B) {
	small := gen.ErdosRenyi(1<<10, 8, 61)  // below the serial cutoff
	large := gen.ErdosRenyi(1<<14, 16, 62) // parallel path
	mask := gen.ErdosRenyiPattern(1<<10, 8, 63)
	b.Run("Flops/serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Flops(small, small)
		}
	})
	b.Run("Flops/parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Flops(large, large)
		}
	})
	b.Run("MaskedFlops/serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.MaskedFlops(mask, small, small, false)
		}
	})
}
