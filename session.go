package maskedspgemm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/store"
)

// arith is the facade's fixed semiring: float64 ⟨+,×⟩.
type arith = semiring.PlusTimes[float64]

// Session is the serving facade for server-style workloads: many
// masked products, issued concurrently, against recurring structures
// (the paper's motivating scenario — §8's applications re-multiply
// over a fixed graph, and a query server does the same across
// requests). A Session wires together the two pieces that make that
// cheap:
//
//   - a structure-keyed plan cache, so a product whose mask/A/B
//     structure has been seen before skips all per-structure analysis
//     (validation, slab layout, CSC transposition, hybrid cost
//     modeling) — repeat-structure planning is allocation-free and an
//     order of magnitude cheaper than planning anew;
//   - a bounded executor pool, so the per-worker accumulators and
//     scratch buffers — deliberately not concurrency-safe — are checked
//     out per request and reused across requests, keeping steady-state
//     execution allocation near zero while capping retained memory.
//
// All Session methods are safe for concurrent use by multiple
// goroutines. Construct one Session per served dataset (or per
// process) and share it.
//
// For single-goroutine iterative loops the lower-level NewPlan /
// Executor API remains the sharper tool; see DESIGN.md §8 for how the
// pieces relate.
type Session struct {
	cache *core.PlanCache[float64, arith]
	pool  *core.ExecutorPool[float64, arith]
	// operands is the content-addressed operand store; it shares budget
	// with the plan cache, so resident operands and cached plans evict
	// under one global-LRU byte bound (DESIGN.md §13).
	operands *store.Store
	// budget is the shared byte budget cache and store draw from.
	budget *core.MemBudget
	// onMiss holds the observers installed via WithMissObserver, each
	// called after every plan-cache miss that planned successfully.
	onMiss []func(PlanMiss)
	// calib is the calibration state (WithCalibration): mode, fitted
	// coefficients, and fit timing. Immutable after NewSession.
	calib calibration

	schedMu sync.Mutex
	sched   parallel.SchedSummary

	// execCanceled and kernelPanics count executions retired early by
	// cooperative cancellation and by a recovered kernel panic; together
	// with the pool's poisoned count they make up FaultStats.
	execCanceled atomic.Uint64
	kernelPanics atomic.Uint64
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

// sessionConfig collects the tunables behind SessionOption.
type sessionConfig struct {
	cacheEntries int
	cacheBytes   int64
	budgetBytes  int64
	maxIdle      int
	onMiss       []func(PlanMiss)
	calib        CalibrationConfig
}

// PlanMiss describes one plan-cache miss a session observed: a request
// whose operand structure (under its plan-affecting options) had not
// been planned before. A serving layer can aggregate these — which
// structures keep missing, whether warming covered the live traffic —
// and feed a warm-by-prediction loop that pre-plans recurring shapes.
type PlanMiss struct {
	// MaskFingerprint, AFingerprint, BFingerprint are the structural
	// fingerprints of the missed operands (sparse.Pattern.Fingerprint) —
	// the same identities the plan cache keys on.
	MaskFingerprint, AFingerprint, BFingerprint uint64
	// Scheme is the plan's scheme name ("MSA-1P" style, as in the
	// paper's figures).
	Scheme string
	// Complement reports whether the missed request used a complemented
	// mask.
	Complement bool
	// Warm reports whether the miss came from Warm rather than Multiply:
	// warming misses are expected (they are the point of warming), serve
	// misses are the signal worth predicting away.
	Warm bool
}

// WithMissObserver installs f as a plan-miss observer: it is called
// synchronously after every cache miss that planned successfully, from
// the goroutine that issued the Multiply or Warm. The option may be
// given more than once; observers run in installation order. Keep them
// fast and non-blocking; they must not call back into the session.
// Every lookup not answered from the cache reports a miss, including
// requests that coalesced onto another goroutine's in-flight planning —
// observers see demand, not planning work.
func WithMissObserver(f func(PlanMiss)) SessionOption {
	return func(c *sessionConfig) { c.onMiss = append(c.onMiss, f) }
}

// WithPlanCacheEntries bounds the number of cached plans (default
// core's DefaultPlanCacheEntries, 128). Least-recently-used plans are
// evicted beyond the bound.
func WithPlanCacheEntries(n int) SessionOption {
	return func(c *sessionConfig) { c.cacheEntries = n }
}

// WithPlanCacheBytes bounds the estimated analysis memory retained by
// the plan cache (default unbounded). Least-recently-used plans are
// evicted beyond the bound.
func WithPlanCacheBytes(n int64) SessionOption {
	return func(c *sessionConfig) { c.cacheBytes = n }
}

// WithMemoryBudget bounds the one byte budget the plan cache and the
// operand store share (default core.DefaultMemoryBudgetBytes, 1 GiB):
// cached analyses and resident operands evict globally least recently
// used against it, so a burst of uploads squeezes cold plans out and
// vice versa. WithPlanCacheEntries/WithPlanCacheBytes remain local
// caps applied on top.
func WithMemoryBudget(n int64) SessionOption {
	return func(c *sessionConfig) { c.budgetBytes = n }
}

// WithMaxIdleExecutors bounds how many idle executors the session
// retains between requests (default GOMAXPROCS). Each idle executor
// holds accumulators sized by the largest product it has executed, so
// this bound caps the session's retained scratch memory.
func WithMaxIdleExecutors(n int) SessionOption {
	return func(c *sessionConfig) { c.maxIdle = n }
}

// NewSession returns an empty session: nothing is cached or pooled
// until the first Multiply.
func NewSession(opts ...SessionOption) *Session {
	var cfg sessionConfig
	for _, f := range opts {
		f(&cfg)
	}
	sr := arith{}
	budget := core.NewMemBudget(cfg.budgetBytes)
	s := &Session{
		cache:    core.NewPlanCache[float64](sr, cfg.cacheEntries, cfg.cacheBytes),
		pool:     core.NewExecutorPool[float64](sr, cfg.maxIdle),
		operands: store.New(budget),
		budget:   budget,
		onMiss:   cfg.onMiss,
	}
	s.cache.AttachBudget(budget)
	s.setupCalibration(cfg.calib)
	return s
}

// observeMiss reports a plan-cache miss to the installed observer. The
// fingerprint recomputation is cheap relative to the planning the miss
// just paid for, and hits — the steady state — never reach here.
func (s *Session) observeMiss(mask *Pattern, a, b *Matrix, o core.Options, warm bool) {
	if len(s.onMiss) == 0 {
		return
	}
	ev := PlanMiss{
		MaskFingerprint: mask.Fingerprint(),
		Scheme:          o.SchemeName(),
		Complement:      o.Complement,
		Warm:            warm,
	}
	if &a.Pattern == mask {
		ev.AFingerprint = ev.MaskFingerprint
	} else {
		ev.AFingerprint = a.Pattern.Fingerprint()
	}
	switch {
	case &b.Pattern == mask:
		ev.BFingerprint = ev.MaskFingerprint
	case &b.Pattern == &a.Pattern:
		ev.BFingerprint = ev.AFingerprint
	default:
		ev.BFingerprint = b.Pattern.Fingerprint()
	}
	for _, f := range s.onMiss {
		f(ev)
	}
}

// Multiply computes C = M ⊙ (A·B) like the package-level Multiply, but
// through the session's plan cache and executor pool: a product whose
// operand structure (and plan-affecting options) recur pays only the
// numeric work. Execution-only options never fragment the cache:
// WithSchedStats is honored per execution against the shared plan, so
// a structure warmed without telemetry still hits when requested with
// it. Safe for concurrent use.
//
// WithReuseOutput is ignored here — the result must outlive the pooled
// executor that produced it, so outputs are always freshly allocated.
func (s *Session) Multiply(mask *Pattern, a, b *Matrix, opts ...Option) (*Matrix, error) {
	return s.MultiplyCtx(context.Background(), mask, a, b, opts...)
}

// MultiplyCtx is Multiply under a context: when ctx is canceled — client
// disconnect, deadline — the execution stops cooperatively at its next
// checkpoint (scheduler block claim or pass boundary) and the error
// matches ErrCanceled. Interrupted executions leave accumulator scratch
// half-mutated, so their executors are discarded rather than pooled;
// FaultStats counts both outcomes. A kernel panic inside any worker is
// likewise contained: the session stays serviceable and the call returns
// a *KernelPanicError.
func (s *Session) MultiplyCtx(ctx context.Context, mask *Pattern, a, b *Matrix, opts ...Option) (*Matrix, error) {
	o := buildOptions(opts)
	// Startup calibration binds every plan under the fitted
	// coefficients; online calibration keeps keys literal and feeds
	// measurements back instead (see CalibrationMode).
	if s.calib.mode == CalibrateStartup {
		o.CostCoeffs = s.calib.coeffs
	}
	online := s.calib.mode == CalibrateOnline
	plan, hit, err := s.cache.GetOrPlanObserved(mask, a, b, o)
	if err != nil {
		return nil, err
	}
	if !hit {
		s.observeMiss(mask, a, b, o, false)
	}
	exec := s.pool.Get()
	// Retirement is outcome-dependent (Put clean executors, Discard
	// interrupted ones), so it runs explicitly after telemetry rather
	// than as a blanket deferred Put; the defer only covers panics that
	// escape past ExecuteOnCtx's own containment (nothing engine-side
	// does, but observeMiss callbacks and semiring code could).
	retired := false
	defer func() {
		if !retired {
			s.pool.Discard(exec)
		}
	}()
	// ReuseOutput stays off: the result must outlive the pooled executor.
	// Online calibration needs the scheduler telemetry every pass — the
	// imbalance feedback is what drives re-binding.
	eo := core.ExecOptions{CollectSchedStats: o.CollectSchedStats || online}
	start := time.Now()
	out, err := plan.ExecuteOnCtx(ctx, exec, a, b, eo)
	elapsed := time.Since(start)
	if eo.CollectSchedStats {
		// Record telemetry even when the execution errored: dashboards
		// must see the passes that misbehaved, not only the clean ones.
		// ExecuteOnOpts resets the stats before anything can fail, so an
		// errored pass reads as empty rather than replaying the previous
		// execution's record.
		st := exec.SchedStats()
		if o.CollectSchedStats {
			s.schedMu.Lock()
			s.sched.Record(st)
			s.schedMu.Unlock()
		}
		if online && err == nil {
			s.cache.ObserveExecution(plan, st.Imbalance(), elapsed)
		}
	}
	s.retire(exec, err)
	retired = true
	return out, err
}

// retire ends ownership of a checked-out executor according to how its
// execution finished: clean (or failed before touching scratch) goes
// back to the pool; interrupted mid-pass — kernel panic or cooperative
// cancellation — is poisoned and discarded, because half-mutated
// accumulator scratch must never serve another request. Fault counters
// are bumped here so FaultStats sees every containment event exactly
// once.
func (s *Session) retire(exec *core.Executor[float64, arith], err error) {
	var kp *core.KernelPanicError
	switch {
	case errors.As(err, &kp):
		s.kernelPanics.Add(1)
		s.pool.Discard(exec)
	case errors.Is(err, core.ErrCanceled):
		s.execCanceled.Add(1)
		s.pool.Discard(exec)
	default:
		s.pool.Put(exec)
	}
}

// Warm plans (or confirms a cached plan for) the given structure
// without executing, so a server can pre-populate its cache at startup
// and keep first-request latency flat. Warming is keyed like serving:
// execution-only options are normalized out, so a warmed structure hits
// for any telemetry or output-ownership choice a later request makes.
func (s *Session) Warm(mask *Pattern, a, b *Matrix, opts ...Option) error {
	o := buildOptions(opts)
	// Warming must key like serving, so startup calibration injects
	// the same coefficients here.
	if s.calib.mode == CalibrateStartup {
		o.CostCoeffs = s.calib.coeffs
	}
	_, hit, err := s.cache.GetOrPlanObserved(mask, a, b, o)
	if err != nil {
		return err
	}
	if !hit {
		s.observeMiss(mask, a, b, o, true)
	}
	return nil
}

// OperandRef content-addresses a stored operand: its structure
// fingerprint paired with its values fingerprint (store.Ref). Obtain
// one from PutOperand and spend it in MultiplyRefs.
type OperandRef = store.Ref

// PutOperand files a matrix in the session's content-addressed
// operand store and returns its reference, taking ownership of m: the
// caller must not mutate it afterwards (resident operands are shared
// with concurrent readers and executions). Re-putting identical
// content is idempotent — created reports false and the resident
// entry is refreshed, not duplicated. Resident operands are evicted
// least-recently-used under the session's shared memory budget.
func (s *Session) PutOperand(m *Matrix) (ref OperandRef, created bool) {
	return s.operands.Put(m)
}

// PutOperandValues files a fresh value set under an already-resident
// structure — the values-only delta for iterative workloads whose
// pattern is fixed. Only vals is supplied (ownership transfers); the
// structure is named by its fingerprint and must be resident, or a
// *store.ErrUnknownPattern is returned. Because the returned ref
// shares the resident structure byte for byte, a MultiplyRefs through
// it hits any plan the structure already has cached.
func (s *Session) PutOperandValues(patternFP uint64, vals []float64) (ref OperandRef, created bool, err error) {
	return s.operands.PutValues(patternFP, vals)
}

// Operand resolves a reference to its resident matrix (shared,
// read-only), refreshing its eviction recency. ok is false when the
// content is not (or no longer) resident.
func (s *Session) Operand(ref OperandRef) (*Matrix, bool) {
	return s.operands.Get(ref)
}

// OperandPattern resolves a structure fingerprint to its resident
// pattern — the mask form of a reference (masks are structure-only,
// so they resolve without a values half and stay resident while any
// value set shares the structure).
func (s *Session) OperandPattern(fp uint64) (*Pattern, bool) {
	return s.operands.GetPattern(fp)
}

// MissingOperand names one operand a reference-based multiply could
// not resolve.
type MissingOperand struct {
	// Operand is the request role: "mask", "a", or "b".
	Operand string
	// Pattern is the unresolved structure fingerprint.
	Pattern uint64
	// Values is the unresolved values fingerprint; zero for masks,
	// which are referenced by structure alone.
	Values uint64
}

// String renders "a 0123…:89ab…" / "mask 0123…" for error messages.
func (m MissingOperand) String() string {
	if m.Values == 0 && m.Operand == "mask" {
		return fmt.Sprintf("%s %016x", m.Operand, m.Pattern)
	}
	return fmt.Sprintf("%s %016x:%016x", m.Operand, m.Pattern, m.Values)
}

// MissingOperandsError reports which operands of a MultiplyRefs were
// not resident — the caller learns exactly what to re-upload. The
// serving layer maps it to 404 with the missing fingerprints named.
type MissingOperandsError struct {
	// Missing lists the unresolved operands in mask, a, b order.
	Missing []MissingOperand
}

// Error implements error.
func (e *MissingOperandsError) Error() string {
	parts := make([]string, len(e.Missing))
	for i, m := range e.Missing {
		parts[i] = m.String()
	}
	return "maskedspgemm: operands not resident: " + strings.Join(parts, ", ")
}

// MultiplyRefs is Multiply with every operand named by reference
// instead of carried by value: the mask by its structure fingerprint,
// A and B by full content references from PutOperand. Resolution
// failures return a *MissingOperandsError listing every dangling
// operand (not just the first), so one round trip tells the caller
// everything to re-upload. A resolved request proceeds exactly as
// Multiply — same plan cache, same pooled executors — and since
// resident operands have stable structure, warm traffic by reference
// is a guaranteed plan-cache hit.
func (s *Session) MultiplyRefs(maskFP uint64, aRef, bRef OperandRef, opts ...Option) (*Matrix, error) {
	return s.MultiplyRefsCtx(context.Background(), maskFP, aRef, bRef, opts...)
}

// MultiplyRefsCtx is MultiplyRefs under a context, with MultiplyCtx's
// cancellation semantics: operand resolution is instantaneous and never
// interrupted, the execution stops cooperatively when ctx is canceled.
func (s *Session) MultiplyRefsCtx(ctx context.Context, maskFP uint64, aRef, bRef OperandRef, opts ...Option) (*Matrix, error) {
	a, aOK := s.operands.Get(aRef)
	var b *Matrix
	bOK := true
	if bRef == aRef {
		b = a
	} else {
		b, bOK = s.operands.Get(bRef)
	}
	// Resolve the mask from A's own pattern when the fingerprints
	// agree (the self-mask graph shape): pointer identity lets the
	// plan-cache key hash one structure instead of three.
	var mask *Pattern
	maskOK := true
	if aOK && maskFP == aRef.Pattern {
		mask = a.PatternView()
	} else {
		mask, maskOK = s.operands.GetPattern(maskFP)
	}
	if !maskOK || !aOK || !bOK {
		err := &MissingOperandsError{}
		if !maskOK {
			err.Missing = append(err.Missing, MissingOperand{Operand: "mask", Pattern: maskFP})
		}
		if !aOK {
			err.Missing = append(err.Missing, MissingOperand{Operand: "a", Pattern: aRef.Pattern, Values: aRef.Values})
		}
		if !bOK {
			err.Missing = append(err.Missing, MissingOperand{Operand: "b", Pattern: bRef.Pattern, Values: bRef.Values})
		}
		return nil, err
	}
	return s.MultiplyCtx(ctx, mask, a, b, opts...)
}

// CacheStats re-exports the plan cache counters (see SessionStats).
type CacheStats = core.PlanCacheStats

// PoolStats re-exports the executor pool counters (see SessionStats).
type PoolStats = core.ExecutorPoolStats

// SchedSummary re-exports cumulative scheduler telemetry (see
// SessionStats): recorded passes, total worker busy time, blocks
// claimed and stolen, and the worst per-execution imbalance.
type SchedSummary = parallel.SchedSummary

// StoreStats re-exports the operand store counters (see SessionStats).
type StoreStats = store.Stats

// BudgetStats reports the shared memory budget cached plans and
// resident operands draw from.
type BudgetStats struct {
	// UsedBytes is the accounted total across cache and store.
	UsedBytes int64
	// MaxBytes is the configured budget (WithMemoryBudget).
	MaxBytes int64
}

// FaultStats counts the session's fault-containment events: executions
// retired early and the executors poisoned by them (DESIGN.md §15).
type FaultStats struct {
	// ExecCanceled counts executions stopped by cooperative
	// cancellation — a canceled MultiplyCtx context or a latched token —
	// before completing.
	ExecCanceled uint64
	// KernelPanics counts executions that ended in a recovered kernel
	// panic (*KernelPanicError).
	KernelPanics uint64
	// ExecutorsDiscarded counts executors dropped un-pooled because an
	// interrupted execution left their scratch unsafe to reuse; tracks
	// the pool's Poisoned counter.
	ExecutorsDiscarded uint64
}

// SessionStats is a point-in-time snapshot of a session's cache, pool,
// store, and scheduler behaviour, for dashboards and capacity tuning.
type SessionStats struct {
	// Cache reports plan-cache hits, misses (including coalesced
	// misses), evictions, and footprint.
	Cache CacheStats
	// Pool reports executor creations, reuses, discards, and idle count.
	Pool PoolStats
	// Store reports operand-store hits, misses, puts, evictions, and
	// residency.
	Store StoreStats
	// Budget reports the shared byte budget cache and store evict
	// against.
	Budget BudgetStats
	// Sched accumulates scheduler telemetry over every Multiply issued
	// with WithSchedStats; zero when the option is never used.
	Sched SchedSummary
	// Calibration reports the cost-model calibration state: mode,
	// fitted coefficients, fit timing, and — online mode — re-bind
	// counts and per-plan drift.
	Calibration CalibrationStats
	// Faults counts fault-containment events: canceled executions,
	// recovered kernel panics, and the executors poisoned by either.
	Faults FaultStats
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.schedMu.Lock()
	sched := s.sched
	s.schedMu.Unlock()
	cache := s.cache.Stats()
	pool := s.pool.Stats()
	return SessionStats{
		Cache:       cache,
		Pool:        pool,
		Store:       s.operands.StatsSnapshot(),
		Budget:      BudgetStats{UsedBytes: s.budget.Used(), MaxBytes: s.budget.Max()},
		Sched:       sched,
		Calibration: s.calibrationStats(cache),
		Faults: FaultStats{
			ExecCanceled:       s.execCanceled.Load(),
			KernelPanics:       s.kernelPanics.Load(),
			ExecutorsDiscarded: pool.Poisoned,
		},
	}
}
