package maskedspgemm

import (
	"sync"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
)

// arith is the facade's fixed semiring: float64 ⟨+,×⟩.
type arith = semiring.PlusTimes[float64]

// Session is the serving facade for server-style workloads: many
// masked products, issued concurrently, against recurring structures
// (the paper's motivating scenario — §8's applications re-multiply
// over a fixed graph, and a query server does the same across
// requests). A Session wires together the two pieces that make that
// cheap:
//
//   - a structure-keyed plan cache, so a product whose mask/A/B
//     structure has been seen before skips all per-structure analysis
//     (validation, slab layout, CSC transposition, hybrid cost
//     modeling) — repeat-structure planning is allocation-free and an
//     order of magnitude cheaper than planning anew;
//   - a bounded executor pool, so the per-worker accumulators and
//     scratch buffers — deliberately not concurrency-safe — are checked
//     out per request and reused across requests, keeping steady-state
//     execution allocation near zero while capping retained memory.
//
// All Session methods are safe for concurrent use by multiple
// goroutines. Construct one Session per served dataset (or per
// process) and share it.
//
// For single-goroutine iterative loops the lower-level NewPlan /
// Executor API remains the sharper tool; see DESIGN.md §8 for how the
// pieces relate.
type Session struct {
	cache *core.PlanCache[float64, arith]
	pool  *core.ExecutorPool[float64, arith]
	// onMiss holds the observers installed via WithMissObserver, each
	// called after every plan-cache miss that planned successfully.
	onMiss []func(PlanMiss)

	schedMu sync.Mutex
	sched   parallel.SchedSummary
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

// sessionConfig collects the tunables behind SessionOption.
type sessionConfig struct {
	cacheEntries int
	cacheBytes   int64
	maxIdle      int
	onMiss       []func(PlanMiss)
}

// PlanMiss describes one plan-cache miss a session observed: a request
// whose operand structure (under its plan-affecting options) had not
// been planned before. A serving layer can aggregate these — which
// structures keep missing, whether warming covered the live traffic —
// and feed a warm-by-prediction loop that pre-plans recurring shapes.
type PlanMiss struct {
	// MaskFingerprint, AFingerprint, BFingerprint are the structural
	// fingerprints of the missed operands (sparse.Pattern.Fingerprint) —
	// the same identities the plan cache keys on.
	MaskFingerprint, AFingerprint, BFingerprint uint64
	// Scheme is the plan's scheme name ("MSA-1P" style, as in the
	// paper's figures).
	Scheme string
	// Complement reports whether the missed request used a complemented
	// mask.
	Complement bool
	// Warm reports whether the miss came from Warm rather than Multiply:
	// warming misses are expected (they are the point of warming), serve
	// misses are the signal worth predicting away.
	Warm bool
}

// WithMissObserver installs f as a plan-miss observer: it is called
// synchronously after every cache miss that planned successfully, from
// the goroutine that issued the Multiply or Warm. The option may be
// given more than once; observers run in installation order. Keep them
// fast and non-blocking; they must not call back into the session.
// Every lookup not answered from the cache reports a miss, including
// requests that coalesced onto another goroutine's in-flight planning —
// observers see demand, not planning work.
func WithMissObserver(f func(PlanMiss)) SessionOption {
	return func(c *sessionConfig) { c.onMiss = append(c.onMiss, f) }
}

// WithPlanCacheEntries bounds the number of cached plans (default
// core's DefaultPlanCacheEntries, 128). Least-recently-used plans are
// evicted beyond the bound.
func WithPlanCacheEntries(n int) SessionOption {
	return func(c *sessionConfig) { c.cacheEntries = n }
}

// WithPlanCacheBytes bounds the estimated analysis memory retained by
// the plan cache (default unbounded). Least-recently-used plans are
// evicted beyond the bound.
func WithPlanCacheBytes(n int64) SessionOption {
	return func(c *sessionConfig) { c.cacheBytes = n }
}

// WithMaxIdleExecutors bounds how many idle executors the session
// retains between requests (default GOMAXPROCS). Each idle executor
// holds accumulators sized by the largest product it has executed, so
// this bound caps the session's retained scratch memory.
func WithMaxIdleExecutors(n int) SessionOption {
	return func(c *sessionConfig) { c.maxIdle = n }
}

// NewSession returns an empty session: nothing is cached or pooled
// until the first Multiply.
func NewSession(opts ...SessionOption) *Session {
	var cfg sessionConfig
	for _, f := range opts {
		f(&cfg)
	}
	sr := arith{}
	return &Session{
		cache:  core.NewPlanCache[float64](sr, cfg.cacheEntries, cfg.cacheBytes),
		pool:   core.NewExecutorPool[float64](sr, cfg.maxIdle),
		onMiss: cfg.onMiss,
	}
}

// observeMiss reports a plan-cache miss to the installed observer. The
// fingerprint recomputation is cheap relative to the planning the miss
// just paid for, and hits — the steady state — never reach here.
func (s *Session) observeMiss(mask *Pattern, a, b *Matrix, o core.Options, warm bool) {
	if len(s.onMiss) == 0 {
		return
	}
	ev := PlanMiss{
		MaskFingerprint: mask.Fingerprint(),
		Scheme:          o.SchemeName(),
		Complement:      o.Complement,
		Warm:            warm,
	}
	if &a.Pattern == mask {
		ev.AFingerprint = ev.MaskFingerprint
	} else {
		ev.AFingerprint = a.Pattern.Fingerprint()
	}
	switch {
	case &b.Pattern == mask:
		ev.BFingerprint = ev.MaskFingerprint
	case &b.Pattern == &a.Pattern:
		ev.BFingerprint = ev.AFingerprint
	default:
		ev.BFingerprint = b.Pattern.Fingerprint()
	}
	for _, f := range s.onMiss {
		f(ev)
	}
}

// Multiply computes C = M ⊙ (A·B) like the package-level Multiply, but
// through the session's plan cache and executor pool: a product whose
// operand structure (and plan-affecting options) recur pays only the
// numeric work. Execution-only options never fragment the cache:
// WithSchedStats is honored per execution against the shared plan, so
// a structure warmed without telemetry still hits when requested with
// it. Safe for concurrent use.
//
// WithReuseOutput is ignored here — the result must outlive the pooled
// executor that produced it, so outputs are always freshly allocated.
func (s *Session) Multiply(mask *Pattern, a, b *Matrix, opts ...Option) (*Matrix, error) {
	o := buildOptions(opts)
	plan, hit, err := s.cache.GetOrPlanObserved(mask, a, b, o)
	if err != nil {
		return nil, err
	}
	if !hit {
		s.observeMiss(mask, a, b, o, false)
	}
	exec := s.pool.Get()
	defer s.pool.Put(exec)
	// ReuseOutput stays off: the result must outlive the pooled executor.
	eo := core.ExecOptions{CollectSchedStats: o.CollectSchedStats}
	out, err := plan.ExecuteOnOpts(exec, a, b, eo)
	if eo.CollectSchedStats {
		// Record telemetry even when the execution errored: dashboards
		// must see the passes that misbehaved, not only the clean ones.
		// ExecuteOnOpts resets the stats before anything can fail, so an
		// errored pass reads as empty rather than replaying the previous
		// execution's record.
		st := exec.SchedStats()
		s.schedMu.Lock()
		s.sched.Record(st)
		s.schedMu.Unlock()
	}
	return out, err
}

// Warm plans (or confirms a cached plan for) the given structure
// without executing, so a server can pre-populate its cache at startup
// and keep first-request latency flat. Warming is keyed like serving:
// execution-only options are normalized out, so a warmed structure hits
// for any telemetry or output-ownership choice a later request makes.
func (s *Session) Warm(mask *Pattern, a, b *Matrix, opts ...Option) error {
	o := buildOptions(opts)
	_, hit, err := s.cache.GetOrPlanObserved(mask, a, b, o)
	if err != nil {
		return err
	}
	if !hit {
		s.observeMiss(mask, a, b, o, true)
	}
	return nil
}

// CacheStats re-exports the plan cache counters (see SessionStats).
type CacheStats = core.PlanCacheStats

// PoolStats re-exports the executor pool counters (see SessionStats).
type PoolStats = core.ExecutorPoolStats

// SchedSummary re-exports cumulative scheduler telemetry (see
// SessionStats): recorded passes, total worker busy time, blocks
// claimed and stolen, and the worst per-execution imbalance.
type SchedSummary = parallel.SchedSummary

// SessionStats is a point-in-time snapshot of a session's cache, pool,
// and scheduler behaviour, for dashboards and capacity tuning.
type SessionStats struct {
	// Cache reports plan-cache hits, misses (including coalesced
	// misses), evictions, and footprint.
	Cache CacheStats
	// Pool reports executor creations, reuses, discards, and idle count.
	Pool PoolStats
	// Sched accumulates scheduler telemetry over every Multiply issued
	// with WithSchedStats; zero when the option is never used.
	Sched SchedSummary
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.schedMu.Lock()
	sched := s.sched
	s.schedMu.Unlock()
	return SessionStats{Cache: s.cache.Stats(), Pool: s.pool.Stats(), Sched: sched}
}
