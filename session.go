package maskedspgemm

import (
	"sync"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
)

// arith is the facade's fixed semiring: float64 ⟨+,×⟩.
type arith = semiring.PlusTimes[float64]

// Session is the serving facade for server-style workloads: many
// masked products, issued concurrently, against recurring structures
// (the paper's motivating scenario — §8's applications re-multiply
// over a fixed graph, and a query server does the same across
// requests). A Session wires together the two pieces that make that
// cheap:
//
//   - a structure-keyed plan cache, so a product whose mask/A/B
//     structure has been seen before skips all per-structure analysis
//     (validation, slab layout, CSC transposition, hybrid cost
//     modeling) — repeat-structure planning is allocation-free and an
//     order of magnitude cheaper than planning anew;
//   - a bounded executor pool, so the per-worker accumulators and
//     scratch buffers — deliberately not concurrency-safe — are checked
//     out per request and reused across requests, keeping steady-state
//     execution allocation near zero while capping retained memory.
//
// All Session methods are safe for concurrent use by multiple
// goroutines. Construct one Session per served dataset (or per
// process) and share it.
//
// For single-goroutine iterative loops the lower-level NewPlan /
// Executor API remains the sharper tool; see DESIGN.md §8 for how the
// pieces relate.
type Session struct {
	cache *core.PlanCache[float64, arith]
	pool  *core.ExecutorPool[float64, arith]

	schedMu sync.Mutex
	sched   parallel.SchedSummary
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

// sessionConfig collects the tunables behind SessionOption.
type sessionConfig struct {
	cacheEntries int
	cacheBytes   int64
	maxIdle      int
}

// WithPlanCacheEntries bounds the number of cached plans (default
// core's DefaultPlanCacheEntries, 128). Least-recently-used plans are
// evicted beyond the bound.
func WithPlanCacheEntries(n int) SessionOption {
	return func(c *sessionConfig) { c.cacheEntries = n }
}

// WithPlanCacheBytes bounds the estimated analysis memory retained by
// the plan cache (default unbounded). Least-recently-used plans are
// evicted beyond the bound.
func WithPlanCacheBytes(n int64) SessionOption {
	return func(c *sessionConfig) { c.cacheBytes = n }
}

// WithMaxIdleExecutors bounds how many idle executors the session
// retains between requests (default GOMAXPROCS). Each idle executor
// holds accumulators sized by the largest product it has executed, so
// this bound caps the session's retained scratch memory.
func WithMaxIdleExecutors(n int) SessionOption {
	return func(c *sessionConfig) { c.maxIdle = n }
}

// NewSession returns an empty session: nothing is cached or pooled
// until the first Multiply.
func NewSession(opts ...SessionOption) *Session {
	var cfg sessionConfig
	for _, f := range opts {
		f(&cfg)
	}
	sr := arith{}
	return &Session{
		cache: core.NewPlanCache[float64](sr, cfg.cacheEntries, cfg.cacheBytes),
		pool:  core.NewExecutorPool[float64](sr, cfg.maxIdle),
	}
}

// Multiply computes C = M ⊙ (A·B) like the package-level Multiply, but
// through the session's plan cache and executor pool: a product whose
// operand structure (and options) recur pays only the numeric work.
// Safe for concurrent use.
//
// WithReuseOutput is ignored here — the result must outlive the pooled
// executor that produced it, so outputs are always freshly allocated.
func (s *Session) Multiply(mask *Pattern, a, b *Matrix, opts ...Option) (*Matrix, error) {
	o := buildOptions(opts)
	o.ReuseOutput = false
	plan, err := s.cache.GetOrPlan(mask, a, b, o)
	if err != nil {
		return nil, err
	}
	exec := s.pool.Get()
	defer s.pool.Put(exec)
	out, err := plan.ExecuteOn(exec, a, b)
	if err == nil && o.CollectSchedStats {
		st := exec.SchedStats()
		s.schedMu.Lock()
		s.sched.Record(st)
		s.schedMu.Unlock()
	}
	return out, err
}

// Warm plans (or confirms a cached plan for) the given structure
// without executing, so a server can pre-populate its cache at startup
// and keep first-request latency flat.
func (s *Session) Warm(mask *Pattern, a, b *Matrix, opts ...Option) error {
	o := buildOptions(opts)
	o.ReuseOutput = false
	_, err := s.cache.GetOrPlan(mask, a, b, o)
	return err
}

// CacheStats re-exports the plan cache counters (see SessionStats).
type CacheStats = core.PlanCacheStats

// PoolStats re-exports the executor pool counters (see SessionStats).
type PoolStats = core.ExecutorPoolStats

// SchedSummary re-exports cumulative scheduler telemetry (see
// SessionStats): recorded passes, total worker busy time, blocks
// claimed and stolen, and the worst per-execution imbalance.
type SchedSummary = parallel.SchedSummary

// SessionStats is a point-in-time snapshot of a session's cache, pool,
// and scheduler behaviour, for dashboards and capacity tuning.
type SessionStats struct {
	// Cache reports plan-cache hits, misses (including coalesced
	// misses), evictions, and footprint.
	Cache CacheStats
	// Pool reports executor creations, reuses, discards, and idle count.
	Pool PoolStats
	// Sched accumulates scheduler telemetry over every Multiply issued
	// with WithSchedStats; zero when the option is never used.
	Sched SchedSummary
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.schedMu.Lock()
	sched := s.sched
	s.schedMu.Unlock()
	return SessionStats{Cache: s.cache.Stats(), Pool: s.pool.Stats(), Sched: sched}
}
