module maskedspgemm

go 1.24
