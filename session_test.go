package maskedspgemm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"maskedspgemm/internal/sparse"
)

// sessionGraphs builds a few small recurring structures, the shape of
// traffic a session exists to serve.
func sessionGraphs() []*Matrix {
	return []*Matrix{
		ErdosRenyi(96, 8, 1),
		ErdosRenyi(128, 6, 2),
		RMAT(7, 8, 3),
	}
}

// TestSessionMatchesMultiply checks the serving path is just a cached
// route to the same numbers: Session.Multiply must equal Multiply for
// every algorithm, on first and repeat requests.
func TestSessionMatchesMultiply(t *testing.T) {
	s := NewSession()
	eq := func(x, y float64) bool { return x == y }
	for _, g := range sessionGraphs() {
		for _, algo := range []Algorithm{MSA, Hash, Inner, Hybrid} {
			want, err := Multiply(g.PatternView(), g, g, WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				got, err := s.Multiply(g.PatternView(), g, g, WithAlgorithm(algo))
				if err != nil {
					t.Fatal(err)
				}
				if !sparse.EqualFunc(want, got, eq) {
					t.Fatalf("algo %v rep %d: session result differs from Multiply", algo, rep)
				}
			}
		}
	}
	st := s.Stats()
	if st.Cache.Hits == 0 || st.Cache.Misses == 0 {
		t.Fatalf("stats = %+v: repeats should hit, first requests should miss", st.Cache)
	}
}

// TestSessionConcurrent hammers one session from many goroutines with
// a mix of recurring structures and algorithms, verifying every
// result. This is the serving-layer race test: shared immutable plans,
// concurrent cache lookups, pooled executors. Run under -race in CI.
func TestSessionConcurrent(t *testing.T) {
	graphs := sessionGraphs()
	algos := []Algorithm{MSA, Hash, Inner, Hybrid}
	type query struct {
		g    *Matrix
		algo Algorithm
	}
	var queries []query
	wants := make([]*Matrix, 0, len(graphs)*len(algos))
	for _, g := range graphs {
		for _, algo := range algos {
			want, err := Multiply(g.PatternView(), g, g, WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			queries = append(queries, query{g, algo})
			wants = append(wants, want)
		}
	}
	s := NewSession(WithMaxIdleExecutors(4))
	const goroutines = 8
	const rounds = 12
	eq := func(x, y float64) bool { return x == y }
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (worker + r*3) % len(queries)
				q := queries[qi]
				got, err := s.Multiply(q.g.PatternView(), q.g, q.g, WithAlgorithm(q.algo))
				if err != nil {
					errs <- err
					return
				}
				if !sparse.EqualFunc(wants[qi], got, eq) {
					errs <- fmt.Errorf("worker %d round %d: wrong result for query %d", worker, r, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if total := st.Cache.Hits + st.Cache.Misses; total != goroutines*rounds {
		t.Fatalf("cache saw %d lookups, want %d", total, goroutines*rounds)
	}
	if st.Pool.Idle > 4 {
		t.Fatalf("pool retained %d idle executors, bound is 4", st.Pool.Idle)
	}
}

// TestSessionWarm checks pre-planning populates the cache so the first
// real request hits.
func TestSessionWarm(t *testing.T) {
	g := ErdosRenyi(64, 6, 9)
	s := NewSession()
	if err := s.Warm(g.PatternView(), g, g, WithAlgorithm(Inner)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Multiply(g.PatternView(), g, g, WithAlgorithm(Inner)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats = %+v, want warm miss then request hit", st.Cache)
	}
}

// TestSessionIgnoresReuseOutput pins the ownership rule that makes
// Session results safe to retain: even when the caller asks for pooled
// output, the serving path must hand back an independent matrix (the
// executor that produced it is returned to the pool immediately).
func TestSessionIgnoresReuseOutput(t *testing.T) {
	g := ErdosRenyi(64, 6, 10)
	s := NewSession(WithMaxIdleExecutors(1))
	r1, err := s.Multiply(g.PatternView(), g, g, WithReuseOutput())
	if err != nil {
		t.Fatal(err)
	}
	keep := r1.Clone()
	// A second request through the same (reused) executor must not
	// overwrite the first result's buffers.
	if _, err := s.Multiply(g.PatternView(), g, g, WithReuseOutput()); err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(keep, r1, func(x, y float64) bool { return x == y }) {
		t.Fatal("session result was clobbered by a later request")
	}
}

// TestSessionEvictionBounds checks the session honors its cache
// bounds under structure churn.
func TestSessionEvictionBounds(t *testing.T) {
	s := NewSession(WithPlanCacheEntries(2))
	for seed := uint64(0); seed < 5; seed++ {
		g := ErdosRenyi(48, 5, 20+seed)
		if _, err := s.Multiply(g.PatternView(), g, g); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Cache.Entries > 2 {
		t.Fatalf("cache holds %d entries, bound is 2", st.Cache.Entries)
	}
	if st.Cache.Evictions == 0 {
		t.Fatal("expected evictions under churn")
	}
}

// BenchmarkSessionMultiply compares serving a recurring structure
// through a Session against the one-shot Multiply path — the
// facade-level view of what plan caching plus executor pooling buys.
func BenchmarkSessionMultiply(b *testing.B) {
	g := RMAT(11, 8, 5)
	mask := g.PatternView()
	for _, algo := range []Algorithm{MSA, Inner} {
		b.Run(fmt.Sprintf("%v/oneshot", algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Multiply(mask, g, g, WithAlgorithm(algo)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%v/session", algo), func(b *testing.B) {
			s := NewSession()
			if err := s.Warm(mask, g, g, WithAlgorithm(algo)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Multiply(mask, g, g, WithAlgorithm(algo)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSessionSchedStats checks the telemetry aggregation path: served
// multiplies issued with WithSchedStats accumulate into
// SessionStats.Sched, while plain multiplies record nothing.
func TestSessionSchedStats(t *testing.T) {
	s := NewSession()
	g := ErdosRenyi(256, 8, 9)
	mask := g.PatternView()

	if _, err := s.Multiply(mask, g, g, WithThreads(2)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Sched; got.Passes != 0 {
		t.Fatalf("plain multiply recorded sched stats: %+v", got)
	}

	const reqs = 3
	for i := 0; i < reqs; i++ {
		if _, err := s.Multiply(mask, g, g, WithThreads(2), WithSchedStats()); err != nil {
			t.Fatal(err)
		}
	}
	sched := s.Stats().Sched
	if sched.Passes != reqs {
		t.Fatalf("passes = %d, want %d", sched.Passes, reqs)
	}
	if sched.BlocksClaimed == 0 {
		t.Error("no blocks recorded")
	}
	if sched.WorstImbalance < 1 {
		t.Errorf("worst imbalance %v, want ≥ 1 once work was recorded", sched.WorstImbalance)
	}
}

// TestSessionScheduleOption pins that WithSchedule flows through the
// session's cache key: different schedules are distinct plans but all
// compute the same result.
func TestSessionScheduleOption(t *testing.T) {
	s := NewSession()
	g := ErdosRenyi(200, 8, 10)
	mask := g.PatternView()
	want, err := s.Multiply(mask, g, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Schedule{ScheduleFixedGrain, ScheduleCostPartition, ScheduleWorkSteal} {
		got, err := s.Multiply(mask, g, g, WithSchedule(mode), WithThreads(2))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !sparse.Equal(want, got) {
			t.Fatalf("%v: result differs", mode)
		}
	}
	if st := s.Stats().Cache; st.Entries < 4 {
		t.Errorf("schedules should be distinct cache entries, got %d", st.Entries)
	}
}

// TestSessionWarmThenSchedStatsHits is the headline serving regression
// for plan-key normalization: warming without telemetry and then
// multiplying with WithSchedStats must hit the warmed plan — and still
// collect the requested telemetry per execution. Before execution-only
// options were normalized out of the cache key this was a guaranteed
// miss, defeating warming exactly where a server needs it.
func TestSessionWarmThenSchedStatsHits(t *testing.T) {
	g := ErdosRenyi(128, 8, 15)
	s := NewSession()
	if err := s.Warm(g.PatternView(), g, g, WithThreads(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Multiply(g.PatternView(), g, g, WithThreads(2), WithSchedStats()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache = %+v, want Hits == 1, Misses == 1 (warm plants, stats-request hits)", st.Cache)
	}
	if st.Sched.Passes != 1 {
		t.Fatalf("sched passes = %d, want telemetry honored on the shared plan", st.Sched.Passes)
	}
	// The reverse order must share the same single entry too.
	if _, err := s.Multiply(g.PatternView(), g, g, WithThreads(2), WithReuseOutput()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Cache; st.Entries != 1 {
		t.Fatalf("execution-only options fragmented the cache into %d entries", st.Entries)
	}
}

// TestSessionMissObserver checks the warm-by-prediction hook: the
// observer sees every structure that planned fresh, tagged with its
// origin (warm vs serve), and hits stay silent.
func TestSessionMissObserver(t *testing.T) {
	var (
		mu     sync.Mutex
		misses []PlanMiss
	)
	s := NewSession(WithMissObserver(func(ev PlanMiss) {
		mu.Lock()
		misses = append(misses, ev)
		mu.Unlock()
	}))
	g := ErdosRenyi(96, 6, 16)
	h := ErdosRenyi(96, 6, 17)
	if err := s.Warm(g.PatternView(), g, g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Multiply(g.PatternView(), g, g); err != nil { // hit: silent
		t.Fatal(err)
	}
	if _, err := s.Multiply(h.PatternView(), h, h, WithAlgorithm(Hash)); err != nil { // fresh structure
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(misses) != 2 {
		t.Fatalf("observer saw %d misses, want 2 (one warm, one serve)", len(misses))
	}
	if !misses[0].Warm || misses[1].Warm {
		t.Fatalf("miss origins wrong: %+v", misses)
	}
	if misses[0].MaskFingerprint != misses[0].AFingerprint || misses[0].AFingerprint != misses[0].BFingerprint {
		t.Fatal("self-product miss should share one fingerprint across operands")
	}
	if misses[0].MaskFingerprint == misses[1].MaskFingerprint {
		t.Fatal("distinct structures reported identical fingerprints")
	}
	if misses[1].Scheme != "Hash-1P" {
		t.Fatalf("scheme = %q, want Hash-1P", misses[1].Scheme)
	}
}

// TestSessionMissObserversCompose pins that WithMissObserver stacks:
// the serve front-end adds its own observer on top of any the embedder
// installed, and both must fire.
func TestSessionMissObserversCompose(t *testing.T) {
	var first, second int
	s := NewSession(
		WithMissObserver(func(PlanMiss) { first++ }),
		WithMissObserver(func(PlanMiss) { second++ }),
	)
	g := ErdosRenyi(64, 4, 18)
	if _, err := s.Multiply(g.PatternView(), g, g); err != nil {
		t.Fatal(err)
	}
	if first != 1 || second != 1 {
		t.Fatalf("observers fired %d/%d times, want 1/1", first, second)
	}
}

// TestSessionOperandStore pins the facade's reference path end to end:
// PutOperand files content idempotently, MultiplyRefs resolves it and
// matches the by-value result, missing operands come back as one typed
// error naming every dangling reference, and a values-only delta is a
// guaranteed plan-cache hit.
func TestSessionOperandStore(t *testing.T) {
	s := NewSession()
	g := ErdosRenyi(96, 6, 40)
	want, err := Multiply(g.PatternView(), g, g)
	if err != nil {
		t.Fatal(err)
	}

	ref, created := s.PutOperand(g)
	if !created {
		t.Fatal("first PutOperand must create")
	}
	if ref2, created := s.PutOperand(ErdosRenyi(96, 6, 40)); created || ref2 != ref {
		t.Fatal("re-put of identical content must be idempotent")
	}

	got, err := s.MultiplyRefs(ref.Pattern, ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(want, got, func(x, y float64) bool { return x == y }) {
		t.Fatal("by-reference result differs from by-value Multiply")
	}

	// Every dangling operand is named, in mask, a, b order.
	bogus := OperandRef{Pattern: 0x1111, Values: 0x2222}
	_, err = s.MultiplyRefs(0x3333, bogus, ref)
	var missing *MissingOperandsError
	if !errors.As(err, &missing) {
		t.Fatalf("want MissingOperandsError, got %v", err)
	}
	if len(missing.Missing) != 2 ||
		missing.Missing[0] != (MissingOperand{Operand: "mask", Pattern: 0x3333}) ||
		missing.Missing[1] != (MissingOperand{Operand: "a", Pattern: 0x1111, Values: 0x2222}) {
		t.Fatalf("missing = %v", missing.Missing)
	}

	// Values delta: same structure, fresh numbers — plan already cached.
	scaled := make([]float64, len(g.Val))
	for i, v := range g.Val {
		scaled[i] = 3 * v
	}
	dref, created, err := s.PutOperandValues(ref.Pattern, scaled)
	if err != nil || !created {
		t.Fatalf("values delta: %v created=%v", err, created)
	}
	before := s.Stats().Cache
	if _, err := s.MultiplyRefs(dref.Pattern, dref, dref); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().Cache
	if after.Misses != before.Misses || after.Hits != before.Hits+1 {
		t.Fatalf("values-delta multiply must hit the cached plan: %+v → %+v", before, after)
	}
}

// TestSessionMemoryBudget pins WithMemoryBudget as the single bound
// over plans and operands: pressure from puts evicts, the budget never
// ends above its ceiling, and Stats reconciles the shared accounting.
func TestSessionMemoryBudget(t *testing.T) {
	s := NewSession(WithMemoryBudget(96 << 10))
	for seed := uint64(50); seed < 58; seed++ {
		g := ErdosRenyi(128, 6, seed)
		ref, _ := s.PutOperand(g)
		if _, err := s.MultiplyRefs(ref.Pattern, ref, ref); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	st := s.Stats()
	if st.Budget.MaxBytes != 96<<10 {
		t.Fatalf("budget max = %d", st.Budget.MaxBytes)
	}
	if st.Budget.UsedBytes > st.Budget.MaxBytes {
		t.Fatalf("over budget: %+v", st.Budget)
	}
	if st.Budget.UsedBytes != st.Store.Bytes+st.Cache.Bytes {
		t.Fatalf("budget %d != store %d + cache %d", st.Budget.UsedBytes, st.Store.Bytes, st.Cache.Bytes)
	}
	if st.Store.Evictions == 0 && st.Cache.Evictions == 0 {
		t.Fatalf("eight working sets under 96KiB evicted nothing: %+v", st)
	}
}
