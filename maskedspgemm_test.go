package maskedspgemm

import (
	"path/filepath"
	"testing"

	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/sparse"
)

func TestMultiplyFacade(t *testing.T) {
	a := ErdosRenyi(128, 8, 1)
	b := ErdosRenyi(128, 8, 2)
	mask := ErdosRenyi(128, 4, 3).PatternView()
	base, err := Multiply(mask, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{MSA, Hash, MCA, Heap, HeapDot, Inner, SaxpyThenMask, DotTranspose} {
		got, err := Multiply(mask, a, b, WithAlgorithm(algo), WithThreads(2))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !sparse.EqualFunc(base, got, sparse.FloatEq(1e-9)) {
			t.Fatalf("%v disagrees with default", algo)
		}
	}
	two, err := Multiply(mask, a, b, WithTwoPhase())
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(base, two, sparse.FloatEq(1e-9)) {
		t.Fatal("two-phase disagrees")
	}
	comp, err := Multiply(mask, a, b, WithComplement())
	if err != nil {
		t.Fatal(err)
	}
	full, err := MultiplyUnmasked(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// masked + complemented partitions the full product.
	if base.NNZ()+comp.NNZ() != full.NNZ() {
		t.Fatalf("partition violated: %d + %d != %d", base.NNZ(), comp.NNZ(), full.NNZ())
	}
}

func TestPlanFacade(t *testing.T) {
	a := ErdosRenyi(96, 6, 11)
	b := ErdosRenyi(96, 6, 12)
	mask := ErdosRenyi(96, 5, 13).PatternView()
	want, err := Multiply(mask, a, b, WithAlgorithm(Inner))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(mask, a, b, WithAlgorithm(Inner))
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		got, err := plan.Execute(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.EqualFunc(want, got, func(x, y float64) bool { return x == y }) {
			t.Fatalf("plan execution %d differs from Multiply", rep)
		}
	}
	// New values over the same structure must flow through the plan's
	// cached analysis (including Inner's cached transpose of B).
	b2 := b.Clone()
	for i := range b2.Val {
		b2.Val[i] *= 3
	}
	want2, err := Multiply(mask, a, b2, WithAlgorithm(Inner))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := plan.Execute(a, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(want2, got2, func(x, y float64) bool { return x == y }) {
		t.Fatal("plan with updated B values differs from Multiply")
	}
	// A shared executor serves plans over different structures, and
	// pooled output stays correct when consumed before the next run.
	exec := NewExecutor()
	for seed := uint64(20); seed < 23; seed++ {
		g := ErdosRenyi(64+int(seed), 4, seed)
		p, err := exec.NewPlan(g.PatternView(), g, g, WithAlgorithm(MSA), WithReuseOutput())
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := p.Execute(g, g)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Multiply(g.PatternView(), g, g, WithAlgorithm(MSA))
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.EqualFunc(ref, pooled, func(x, y float64) bool { return x == y }) {
			t.Fatalf("shared-executor plan (seed %d) differs from Multiply", seed)
		}
	}
	// Structure mismatch is rejected.
	if _, err := plan.Execute(a, ErdosRenyi(96, 12, 14)); err == nil {
		t.Error("want structure-mismatch error")
	}
}

func TestFacadeApplications(t *testing.T) {
	g := RMAT(9, 8, 5)
	count, err := TriangleCount(g)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.RefTriangleCount(g)
	if count != want {
		t.Fatalf("TriangleCount = %d, want %d", count, want)
	}
	truss, err := KTruss(g, 4, WithAlgorithm(Hash))
	if err != nil {
		t.Fatal(err)
	}
	wantTruss := graph.RefKTruss(g, 4)
	if truss.NNZ() != wantTruss.NNZ() {
		t.Fatalf("KTruss nnz = %d, want %d", truss.NNZ(), wantTruss.NNZ())
	}
	sources := graph.BatchSources(g.Rows, 16)
	bc, err := Betweenness(g, sources)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.RefBrandesBC(g, sources)
	for v := range bc {
		d := bc[v] - ref[v]
		if d > 1e-6 || d < -1e-6 {
			t.Fatalf("Betweenness[%d] = %v, want %v", v, bc[v], ref[v])
		}
	}
}

func TestFacadeIO(t *testing.T) {
	g := ErdosRenyi(32, 4, 9)
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := WriteMatrixMarket(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualFunc(g, back, sparse.FloatEq(1e-15)) {
		t.Fatal("matrix market round trip failed")
	}
	if _, err := ReadMatrixMarket(filepath.Join(t.TempDir(), "missing.mtx")); err == nil {
		t.Error("want error for missing file")
	}
}
