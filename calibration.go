package maskedspgemm

import (
	"fmt"
	"time"

	"maskedspgemm/internal/calibrate"
	"maskedspgemm/internal/core"
)

// CalibrationMode selects how a Session uses the fitted cost-model
// coefficients (DESIGN.md §14).
type CalibrationMode int

// Calibration modes.
const (
	// CalibrateOff disables calibration entirely: no startup fit, no
	// online feedback. Plans are keyed and bound exactly as the literal
	// cost models dictate — bit-for-bit the pre-calibration behaviour.
	CalibrateOff CalibrationMode = iota
	// CalibrateStartup fits coefficients once at session construction
	// and injects them into every request's plan options: plans are
	// bound calibrated from their first planning. The fit runs off the
	// request path, bounded by CalibrationConfig.MaxDuration.
	CalibrateStartup
	// CalibrateOnline fits at startup like CalibrateStartup, but keeps
	// plan keys literal: instead of pre-injecting, every execution
	// feeds measured imbalance and wall time back into the plan cache,
	// and a plan whose imbalance EWMA stays over threshold for K
	// consecutive hits is re-partitioned — or fully re-bound with the
	// calibrated coefficients — in the background, swapping the cache
	// entry atomically. Cached plans get faster the more they are hit.
	CalibrateOnline
)

// String renders the flag spelling: "off", "startup", "online".
func (m CalibrationMode) String() string {
	switch m {
	case CalibrateStartup:
		return "startup"
	case CalibrateOnline:
		return "online"
	default:
		return "off"
	}
}

// ParseCalibrationMode parses the -calibrate flag spellings "off",
// "startup", "online".
func ParseCalibrationMode(s string) (CalibrationMode, error) {
	switch s {
	case "off", "":
		return CalibrateOff, nil
	case "startup":
		return CalibrateStartup, nil
	case "online":
		return CalibrateOnline, nil
	}
	return CalibrateOff, fmt.Errorf("maskedspgemm: unknown calibration mode %q (want off, startup, or online)", s)
}

// CalibrationConfig tunes WithCalibration. The zero value of every
// field means its default.
type CalibrationConfig struct {
	// Mode selects off, startup, or online (default off).
	Mode CalibrationMode
	// MaxDuration bounds the startup fit's wall time (default
	// calibrate.DefaultMaxDuration, 2s). The fit runs once, during
	// NewSession, never on the request path.
	MaxDuration time.Duration
	// ImbalanceThreshold is the measured-imbalance EWMA level above
	// which an online session considers a plan misbehaving (default
	// core.DefaultImbalanceThreshold). Online mode only.
	ImbalanceThreshold float64
	// ConsecutiveHits is K: how many consecutive over-threshold
	// observations trigger a background re-bind (default
	// core.DefaultReplanHits). Online mode only.
	ConsecutiveHits int
}

// WithCalibration enables cost-model calibration for the session. See
// CalibrationMode for what each mode does; the default (no option) is
// CalibrateOff.
func WithCalibration(cfg CalibrationConfig) SessionOption {
	return func(c *sessionConfig) { c.calib = cfg }
}

// CalibrationStats reports a session's calibration state (see
// SessionStats): the mode, the fitted per-family coefficients, the
// startup fit's wall time, and — online mode — how many plans were
// re-bound and the drift records of the plans still under observation.
type CalibrationStats struct {
	// Mode is the configured mode ("off", "startup", "online").
	Mode string
	// Coefficients maps family name → fitted coefficient (MSA is the
	// 1.0 anchor). Empty when uncalibrated.
	Coefficients map[string]float64
	// FitNanos is the startup fit's wall time; zero when no fit ran.
	FitNanos int64
	// Replans counts background plan re-binds since session start.
	Replans uint64
	// Drift lists the per-plan feedback records (online mode).
	Drift []core.PlanDrift
}

// calibration is the session-side state: the mode and the fitted
// coefficients (zero when the fit was skipped or failed).
type calibration struct {
	mode     CalibrationMode
	coeffs   core.CostCoeffs
	fitNanos int64
}

// setup runs the startup fit (modes startup and online) and, for
// online mode, arms the plan cache's feedback loop.
func (s *Session) setupCalibration(cfg CalibrationConfig) {
	s.calib.mode = cfg.Mode
	if cfg.Mode == CalibrateOff {
		return
	}
	res := calibrate.Fit(calibrate.Config{MaxDuration: cfg.MaxDuration})
	s.calib.coeffs = res.Coeffs
	s.calib.fitNanos = res.Elapsed.Nanoseconds()
	if cfg.Mode == CalibrateOnline {
		s.cache.EnableReplan(core.ReplanPolicy{
			ImbalanceThreshold: cfg.ImbalanceThreshold,
			ConsecutiveHits:    cfg.ConsecutiveHits,
			Coeffs:             res.Coeffs,
		})
	}
}

// calibrationStats snapshots the calibration block for Stats.
func (s *Session) calibrationStats(cache core.PlanCacheStats) CalibrationStats {
	st := CalibrationStats{
		Mode:     s.calib.mode.String(),
		FitNanos: s.calib.fitNanos,
		Replans:  cache.Replans,
		Drift:    cache.Drift,
	}
	if !s.calib.coeffs.IsZero() {
		st.Coefficients = make(map[string]float64, core.NumFamilies)
		for f := core.Family(0); f < core.NumFamilies; f++ {
			st.Coefficients[f.String()] = s.calib.coeffs[f]
		}
	}
	return st
}
