package maskedspgemm

import (
	"context"
	"errors"
	"testing"

	"maskedspgemm/internal/faultinject"
)

// TestSessionMultiplyCtxCancel checks the session's cancellation
// containment: a canceled context stops the execution with ErrCanceled,
// the poisoned executor is discarded (never pooled), the fault counters
// record it, and the very next request on the same session succeeds.
func TestSessionMultiplyCtxCancel(t *testing.T) {
	s := NewSession()
	g := ErdosRenyi(128, 8, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := s.MultiplyCtx(ctx, g.PatternView(), g, g)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) || ce.Pass == "" {
		t.Fatalf("err = %#v, want *CanceledError naming a pass", err)
	}
	if out != nil {
		t.Error("partial result escaped a canceled execution")
	}
	st := s.Stats()
	if st.Faults.ExecCanceled != 1 || st.Faults.ExecutorsDiscarded != 1 {
		t.Errorf("Faults = %+v, want ExecCanceled=1 ExecutorsDiscarded=1", st.Faults)
	}
	if st.Pool.Idle != 0 {
		t.Errorf("poisoned executor was pooled (idle=%d)", st.Pool.Idle)
	}
	if _, err := s.MultiplyCtx(context.Background(), g.PatternView(), g, g); err != nil {
		t.Fatalf("session unserviceable after cancellation: %v", err)
	}
}

// TestSessionKernelPanicContained injects a kernel panic through the
// session path and checks containment end to end: typed error out, the
// panicking executor discarded, counters bumped, and clean service once
// the fault is disarmed.
func TestSessionKernelPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Disarm)
	s := NewSession()
	g := ErdosRenyi(128, 8, 12)
	faultinject.Arm(faultinject.Hooks{PanicArmed: true, PanicRow: 3, PanicPass: faultinject.PassNumeric})
	out, err := s.Multiply(g.PatternView(), g, g, WithThreads(4))
	var kp *KernelPanicError
	if !errors.As(err, &kp) {
		t.Fatalf("err = %v, want KernelPanicError", err)
	}
	if out != nil {
		t.Error("partial result escaped a kernel panic")
	}
	if len(kp.Stack) == 0 {
		t.Error("no stack captured")
	}
	st := s.Stats()
	if st.Faults.KernelPanics != 1 || st.Faults.ExecutorsDiscarded != 1 {
		t.Errorf("Faults = %+v, want KernelPanics=1 ExecutorsDiscarded=1", st.Faults)
	}
	faultinject.Disarm()
	if _, err := s.Multiply(g.PatternView(), g, g, WithThreads(4)); err != nil {
		t.Fatalf("session unserviceable after contained panic: %v", err)
	}
	if got := s.Stats().Pool.Created; got < 2 {
		t.Errorf("Created = %d, want >= 2 (pool refilled with a fresh executor)", got)
	}
}
