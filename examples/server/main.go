// Serving masked products: a Session — structure-keyed plan cache +
// bounded executor pool — answering concurrent query traffic against a
// fixed graph, the paper's server scenario. Simulated request workers
// issue masked products over a handful of recurring mask structures
// (the graph itself, its lower triangle, and a complemented-BFS-style
// sparse frontier pattern); the session plans each structure once and
// serves every later request with only numeric work. Prints latency
// percentiles and the cache/pool counters that say why: hits ≈
// requests, misses ≈ distinct structures, created executors ≈ peak
// concurrency.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	maskedspgemm "maskedspgemm"
)

func main() {
	var (
		scale    = flag.Int("scale", 11, "R-MAT graph scale (2^scale vertices)")
		workers  = flag.Int("workers", 4, "concurrent request workers")
		requests = flag.Int("requests", 200, "requests per worker")
	)
	flag.Parse()

	g := maskedspgemm.RMAT(*scale, 8, 7)
	fmt.Printf("graph: %d vertices, %d edges\n", g.Rows, g.NNZ()/2)

	// The recurring query shapes. A real server would derive these from
	// its query types; what matters to the cache is only that their
	// *structures* repeat across requests.
	type queryKind struct {
		name string
		mask *maskedspgemm.Pattern
		opts []maskedspgemm.Option
	}
	tri := triu(g)
	sparseMask := maskedspgemm.ErdosRenyi(g.Rows, 2, 99)
	kinds := []queryKind{
		{"self-mask/MSA", g.PatternView(), []maskedspgemm.Option{maskedspgemm.WithAlgorithm(maskedspgemm.MSA)}},
		{"upper-tri/Hash", tri.PatternView(), []maskedspgemm.Option{maskedspgemm.WithAlgorithm(maskedspgemm.Hash)}},
		{"sparse-mask/Inner", sparseMask.PatternView(), []maskedspgemm.Option{maskedspgemm.WithAlgorithm(maskedspgemm.Inner)}},
	}

	session := maskedspgemm.NewSession(maskedspgemm.WithMaxIdleExecutors(*workers))
	// Optional but typical: pre-plan the known shapes so even the first
	// requests are served from cache.
	for _, k := range kinds {
		if err := session.Warm(k.mask, g, g, k.opts...); err != nil {
			log.Fatal(err)
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			local := make([]time.Duration, 0, *requests)
			for r := 0; r < *requests; r++ {
				k := kinds[(worker+r)%len(kinds)]
				t0 := time.Now()
				if _, err := session.Multiply(k.mask, g, g, k.opts...); err != nil {
					log.Fatal(err)
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	total := len(latencies)
	fmt.Printf("served %d requests from %d workers in %v (%.0f req/s)\n",
		total, *workers, elapsed, float64(total)/elapsed.Seconds())
	if total > 0 {
		fmt.Printf("latency p50 %v  p95 %v  p99 %v  max %v\n",
			latencies[total/2], latencies[total*95/100], latencies[total*99/100], latencies[total-1])
	}

	st := session.Stats()
	fmt.Printf("plan cache: %d hits / %d misses (%d structures cached, ~%d KiB analysis)\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Cache.Bytes/1024)
	fmt.Printf("executor pool: %d created, %d reused, %d idle retained\n",
		st.Pool.Created, st.Pool.Reused, st.Pool.Idle)
}

// triu extracts the strictly-upper-triangular pattern of g as a
// matrix, one of the demo's recurring mask shapes.
func triu(g *maskedspgemm.Matrix) *maskedspgemm.Matrix {
	out := &maskedspgemm.Matrix{}
	out.Rows, out.Cols = g.Rows, g.Cols
	out.RowPtr = make([]int64, g.Rows+1)
	for i := 0; i < g.Rows; i++ {
		row := g.Row(i)
		vals := g.RowVals(i)
		for k, j := range row {
			if int(j) > i {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}
