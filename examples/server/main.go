// Serving masked products over the network: this example drives the
// real HTTP front-end (internal/serve, the same server mspgemm-serve
// runs) with concurrent clients issuing masked products over recurring
// structures — the paper's server scenario with actual requests on the
// wire instead of simulated traffic. It shows the full serving story:
//
//   - operands recur, so they are uploaded once (PUT /v1/operands) and
//     all multiply traffic names them by content reference — a few
//     dozen request bytes instead of megabytes — while the plan cache
//     answers everything after the first request per structure (warmed
//     via /v1/warm before traffic starts);
//   - admission control makes overload explicit: with more clients
//     than execution slots, excess requests queue and the rest are
//     shed with 429 + Retry-After, which the clients honor and retry;
//   - /stats reports the cache/pool/admission counters that explain
//     the latency distribution.
//
// By default the example hosts the server in-process on a loopback
// port; point -connect at a running mspgemm-serve to drive that
// instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/serial"
	"maskedspgemm/internal/serve"
)

func main() {
	var (
		scale    = flag.Int("scale", 11, "R-MAT graph scale (2^scale vertices)")
		workers  = flag.Int("workers", 8, "concurrent client workers")
		requests = flag.Int("requests", 100, "requests per worker")
		inflight = flag.Int("max-inflight", 2, "server execution slots (small to show shedding)")
		maxQueue = flag.Int("max-queue", 4, "server wait-queue bound")
		connect  = flag.String("connect", "", "drive an external server URL instead of self-hosting")
	)
	flag.Parse()

	base := *connect
	if base == "" {
		var stop func()
		var err error
		base, stop, err = selfHost(*inflight, *maxQueue)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	g := maskedspgemm.RMAT(*scale, 8, 7)
	fmt.Printf("graph: %d vertices, %d edges; server: %s\n", g.Rows, g.NNZ()/2, base)

	// The recurring query shapes, encoded once: the graph itself (the
	// triangle-counting self-product) posted raw, and its product under
	// a sparser mask posted as multipart. What matters to the server's
	// cache is only that the structures repeat across requests.
	queries := []struct {
		name   string
		params string
		body   []byte
		ref    string
	}{
		{name: "self-mask/MSA", params: "?algorithm=msa", body: encode(g)},
		{name: "self-mask/Hash", params: "?algorithm=hash", body: encode(g)},
		{name: "sparse-mask/Inner", params: "?algorithm=inner", body: encode(maskedspgemm.ErdosRenyi(g.Rows, 2, 99))},
	}

	// Pre-plan the known shapes so even the first requests hit. Warm and
	// multiply share the operands and options; the key normalization
	// guarantees the warmed plan serves them.
	client := &http.Client{Timeout: time.Minute}
	for _, q := range queries {
		resp, err := client.Post(base+"/v1/warm"+q.params, "", bytes.NewReader(q.body))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("warm %s: %d", q.name, resp.StatusCode)
		}
	}

	// Upload each recurring operand once; the traffic below names it by
	// content reference instead of re-shipping megabytes per request
	// (a= defaults both b and the mask to the same operand — the
	// self-mask shape every query here uses).
	for i := range queries {
		q := &queries[i]
		req, err := http.NewRequest(http.MethodPut, base+"/v1/operands", bytes.NewReader(q.body))
		if err != nil {
			log.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		var receipt struct {
			Operands []struct {
				Ref string `json:"ref"`
			} `json:"operands"`
		}
		err = json.NewDecoder(resp.Body).Decode(&receipt)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || len(receipt.Operands) != 1 {
			log.Fatalf("upload %s: status %d, %v", q.name, resp.StatusCode, err)
		}
		q.ref = receipt.Operands[0].Ref
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		sheds     int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			local := make([]time.Duration, 0, *requests)
			localSheds := 0
			for r := 0; r < *requests; r++ {
				q := queries[(worker+r)%len(queries)]
				t0 := time.Now()
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(base+"/v1/multiply"+q.params+"&a="+q.ref, "", nil)
					if err != nil {
						log.Fatal(err)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
						// Shed: honor the server's backoff hint (scaled
						// down: this is a demo, not production patience).
						localSheds++
						after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
						time.Sleep(time.Duration(after) * time.Second / 100)
						continue
					}
					log.Fatalf("%s: status %d", q.name, resp.StatusCode)
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			sheds += localSheds
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	total := len(latencies)
	fmt.Printf("served %d requests from %d workers in %v (%.0f req/s), %d sheds retried\n",
		total, *workers, elapsed, float64(total)/elapsed.Seconds(), sheds)
	if total > 0 {
		fmt.Printf("latency p50 %v  p95 %v  p99 %v  max %v\n",
			latencies[total/2], latencies[total*95/100], latencies[total*99/100], latencies[total-1])
	}

	// The server-side story: cache hits ≈ requests, misses ≈ structures,
	// admission counters show how overload was absorbed.
	resp, err := client.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Session struct {
			Cache struct {
				Hits    uint64 `json:"hits"`
				Misses  uint64 `json:"misses"`
				Entries int    `json:"entries"`
				Bytes   int64  `json:"bytes"`
			} `json:"cache"`
			Pool struct {
				Created uint64 `json:"created"`
				Reused  uint64 `json:"reused"`
				Idle    int    `json:"idle"`
			} `json:"pool"`
			Store struct {
				Hits     uint64 `json:"hits"`
				Operands int    `json:"operands"`
				Bytes    int64  `json:"bytes"`
			} `json:"store"`
			Faults struct {
				ExecCanceled       uint64 `json:"exec_canceled"`
				KernelPanics       uint64 `json:"kernel_panics"`
				ExecutorsDiscarded uint64 `json:"executors_discarded"`
			} `json:"faults"`
		} `json:"session"`
		Admission struct {
			Admitted uint64 `json:"admitted"`
			Queued   uint64 `json:"queued"`
			Shed     uint64 `json:"shed"`
		} `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan cache: %d hits / %d misses (%d structures cached, ~%d KiB analysis)\n",
		st.Session.Cache.Hits, st.Session.Cache.Misses, st.Session.Cache.Entries, st.Session.Cache.Bytes/1024)
	fmt.Printf("executor pool: %d created, %d reused, %d idle retained\n",
		st.Session.Pool.Created, st.Session.Pool.Reused, st.Session.Pool.Idle)
	fmt.Printf("admission: %d admitted, %d queued, %d shed\n",
		st.Admission.Admitted, st.Admission.Queued, st.Admission.Shed)
	// All zeros in a healthy run — the line is here because a nonzero
	// kernel_panics on a dashboard means containment is working, not
	// that the server is down.
	fmt.Printf("faults: %d canceled, %d kernel panics, %d executors discarded\n",
		st.Session.Faults.ExecCanceled, st.Session.Faults.KernelPanics, st.Session.Faults.ExecutorsDiscarded)
	var inlineBytes int64
	for _, q := range queries {
		inlineBytes += int64(len(q.body))
	}
	fmt.Printf("operand store: %d hits over %d resident operands (~%d KiB); by-reference traffic avoided re-sending ~%d KiB of request bodies\n",
		st.Session.Store.Hits, st.Session.Store.Operands, st.Session.Store.Bytes/1024,
		inlineBytes/int64(len(queries))*int64(total)/1024)
}

// encode renders a matrix in the MSPG wire format.
func encode(m *maskedspgemm.Matrix) []byte {
	var buf bytes.Buffer
	if err := serial.Write(&buf, m); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

// selfHost starts the front-end on a loopback port and returns its
// base URL and a graceful stop (drain, then close).
func selfHost(inflight, maxQueue int) (string, func(), error) {
	front := serve.New(serve.Config{MaxInFlight: inflight, MaxQueue: maxQueue, QueueTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: front}
	go srv.Serve(ln)
	stop := func() {
		<-front.Drain()
		srv.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}
