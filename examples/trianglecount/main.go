// Triangle counting (paper §8.2): count = sum(L ⊙ (L·L)) over the
// plus-pair semiring, where L is the lower triangle of the
// degree-relabeled adjacency matrix. Compares all masked-SpGEMM
// algorithm families on the same graph and reports rates.
package main

import (
	"fmt"
	"log"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/graph"
)

func main() {
	// A scale-13 R-MAT graph (8192 vertices) with Graph500 parameters.
	g := maskedspgemm.RMAT(13, 16, 42)
	fmt.Printf("graph: %d vertices, %d edges\n", g.Rows, g.NNZ()/2)

	// Prepare once (degree sort + lower triangle), then time only the
	// masked multiplication, exactly as the paper benchmarks it.
	w := graph.PrepareTriangleCount(g)
	flops := 2 * float64(w.Flops())

	schemes := []core.Options{
		{Algorithm: core.AlgoMSA},
		{Algorithm: core.AlgoHash},
		{Algorithm: core.AlgoMCA},
		{Algorithm: core.AlgoHeap},
		{Algorithm: core.AlgoHeapDot},
		{Algorithm: core.AlgoInner},
		{Algorithm: core.AlgoMSA, Phases: core.TwoPhase},
		{Algorithm: core.AlgoSaxpyThenMask},
		{Algorithm: core.AlgoDotTranspose},
	}
	var reference int64 = -1
	for _, opt := range schemes {
		start := time.Now()
		count, err := w.Count(opt)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		if reference < 0 {
			reference = count
		} else if count != reference {
			log.Fatalf("scheme %s disagrees: %d != %d", opt.SchemeName(), count, reference)
		}
		fmt.Printf("  %-14s %10d triangles  %8.2fms  %7.3f GFLOPS\n",
			opt.SchemeName(), count, float64(elapsed.Microseconds())/1000,
			flops/elapsed.Seconds()/1e9)
	}
}
