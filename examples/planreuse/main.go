// Plan/Executor reuse: analyze a masked product once with NewPlan,
// then execute it repeatedly — the amortization iterative workloads
// (k-truss rounds, betweenness levels, served query traffic) live on.
// Compares the one-shot Multiply path against plan reuse on the same
// triangle-counting-shaped product C = L ⊙ (L·L) and shows the
// cached-analysis contract: new values over the same structure flow
// through the existing plan.
package main

import (
	"fmt"
	"log"
	"time"

	maskedspgemm "maskedspgemm"
)

func main() {
	g := maskedspgemm.RMAT(10, 8, 3)
	mask := g.PatternView()
	fmt.Printf("graph: %d vertices, %d edges\n", g.Rows, g.NNZ()/2)

	const reps = 200

	// One-shot: every call re-validates, re-analyzes, re-allocates.
	start := time.Now()
	var c *maskedspgemm.Matrix
	var err error
	for i := 0; i < reps; i++ {
		c, err = maskedspgemm.Multiply(mask, g, g)
		if err != nil {
			log.Fatal(err)
		}
	}
	oneShot := time.Since(start)
	fmt.Printf("one-shot Multiply ×%d: %v  (nnz %d)\n", reps, oneShot, c.NNZ())

	// Planned: analyze once, execute many times. WithReuseOutput backs
	// results with pooled buffers (valid until the next Execute — fine
	// here because each result is consumed before the next call).
	plan, err := maskedspgemm.NewPlan(mask, g, g, maskedspgemm.WithReuseOutput())
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		c, err = plan.Execute(g, g)
		if err != nil {
			log.Fatal(err)
		}
	}
	planned := time.Since(start)
	fmt.Printf("plan.Execute   ×%d: %v  (nnz %d)\n", reps, planned, c.NNZ())
	fmt.Printf("speedup: %.2fx\n", oneShot.Seconds()/planned.Seconds())

	// Same structure, new values: the plan's cached analysis carries
	// over; only the numeric work runs. Read the old value first —
	// with ReuseOutput the next Execute recycles these buffers.
	j := c.ColIdx[0]
	v1, _ := c.At(0, j)
	g2 := g.Clone()
	for i := range g2.Val {
		g2.Val[i] = 2
	}
	c2, err := plan.Execute(g2, g2)
	if err != nil {
		log.Fatal(err)
	}
	v2, _ := c2.At(0, j)
	fmt.Printf("value refresh: C[0,%d] went %v -> %v with constant-2 inputs\n", j, v1, v2)

	// One executor can serve plans over different structures — the
	// pooled accumulators carry across, as in the k-truss loop.
	exec := maskedspgemm.NewExecutor()
	for _, scale := range []int{10, 11, 12} {
		h := maskedspgemm.RMAT(scale, 8, uint64(scale))
		p, err := exec.NewPlan(h.PatternView(), h, h, maskedspgemm.WithReuseOutput())
		if err != nil {
			log.Fatal(err)
		}
		r, err := p.Execute(h, h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shared executor, scale %d: nnz(C) = %d\n", scale, r.NNZ())
	}
}
