// Direction-optimized BFS (paper §4): the application that brought
// masking into sparse linear algebra. Each level computes
// next = ¬visited ⊙ (frontier⊺·A) either by pushing (complemented
// masked SpVM over the MSA-complement accumulator) or pulling
// (frontier-intersection per unvisited vertex), and the optimizer
// switches direction as the frontier grows and shrinks.
package main

import (
	"fmt"
	"log"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/graph"
)

func main() {
	g := maskedspgemm.RMAT(14, 16, 3)
	fmt.Printf("graph: %d vertices, %d edges\n", g.Rows, g.NNZ()/2)

	for _, strat := range []graph.BFSStrategy{graph.BFSPush, graph.BFSPull, graph.BFSAuto} {
		start := time.Now()
		res, err := graph.BFS(g, []int32{0}, strat)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		reached := 0
		for _, l := range res.Level {
			if l >= 0 {
				reached++
			}
		}
		fmt.Printf("  %-5s reached %6d vertices, depth %d, %2d push / %2d pull levels, %8.2fms\n",
			strat, reached, res.Depth, res.PushLevels, res.PullLevels,
			float64(elapsed.Microseconds())/1000)
	}

	// Connected components: a BFS sweep.
	comp, count, err := graph.ConnectedComponents(g)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int32]int{}
	for _, c := range comp {
		sizes[c]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("connected components: %d (largest holds %d vertices)\n", count, largest)
}
