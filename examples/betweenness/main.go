// Betweenness centrality (paper §8.4): batched two-stage Brandes where
// the forward sweep uses *complemented* masked SpGEMM (avoid re-
// discovering visited vertices) and the backward sweep uses plain
// masked SpGEMM (restrict dependency flow to the previous BFS level).
package main

import (
	"fmt"
	"log"
	"sort"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/graph"
)

func main() {
	g := maskedspgemm.RMAT(12, 16, 99)
	fmt.Printf("graph: %d vertices, %d edges\n", g.Rows, g.NNZ()/2)

	sources := graph.BatchSources(g.Rows, 128)
	res, err := graph.Betweenness(g, sources, core.Options{Algorithm: core.AlgoMSA})
	if err != nil {
		log.Fatal(err)
	}
	edges := float64(g.NNZ()) / 2
	fmt.Printf("batch: %d sources, BFS depth %d\n", len(sources), res.Depth)
	fmt.Printf("masked SpGEMM time: %v (%.2f MTEPS)\n", res.MaskedTime,
		float64(len(sources))*edges/res.MaskedTime.Seconds()/1e6)

	// Top-10 central vertices.
	type vc struct {
		v int
		c float64
	}
	ranked := make([]vc, len(res.Centrality))
	for v, c := range res.Centrality {
		ranked[v] = vc{v, c}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].c > ranked[j].c })
	fmt.Println("top central vertices:")
	for _, r := range ranked[:10] {
		fmt.Printf("  v%-6d %12.1f\n", r.v, r.c)
	}

	// The MSA and Hash complement variants must agree exactly.
	res2, err := graph.Betweenness(g, sources, core.Options{Algorithm: core.AlgoHash})
	if err != nil {
		log.Fatal(err)
	}
	for v := range res.Centrality {
		d := res.Centrality[v] - res2.Centrality[v]
		if d > 1e-6 || d < -1e-6 {
			log.Fatalf("MSA and Hash disagree at vertex %d", v)
		}
	}
	fmt.Println("MSA and Hash complement variants agree ✓")
}
