// Quickstart: compute a masked sparse product C = M ⊙ (A·B) with the
// public API and show how the mask suppresses both computation and
// output.
package main

import (
	"fmt"
	"log"

	maskedspgemm "maskedspgemm"
)

func main() {
	// Two random 2^12-vertex sparse matrices with ~16 nonzeros per row.
	a := maskedspgemm.ErdosRenyi(4096, 16, 1)
	b := maskedspgemm.ErdosRenyi(4096, 16, 2)

	// A sparse mask: only ~4 admitted positions per row.
	mask := maskedspgemm.ErdosRenyi(4096, 4, 3).PatternView()

	// Masked product with the default algorithm (MSA, one-phase).
	c, err := maskedspgemm.Multiply(mask, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A: %d nnz, B: %d nnz, mask: %d admitted positions\n",
		a.NNZ(), b.NNZ(), mask.NNZ())
	fmt.Printf("masked product: %d nnz (never exceeds the mask)\n", c.NNZ())

	// The same product with every algorithm family gives identical
	// results; pick per workload (see Figure 7's guidance).
	for _, algo := range []maskedspgemm.Algorithm{
		maskedspgemm.MSA, maskedspgemm.Hash, maskedspgemm.MCA,
		maskedspgemm.Heap, maskedspgemm.HeapDot, maskedspgemm.Inner,
	} {
		ci, err := maskedspgemm.Multiply(mask, a, b, maskedspgemm.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v -> %d nnz\n", algo, ci.NNZ())
	}

	// Complemented mask: compute everywhere the mask is zero.
	cc, err := maskedspgemm.Multiply(mask, a, b, maskedspgemm.WithComplement())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complemented product: %d nnz\n", cc.NNZ())

	// Unmasked product for comparison: the work the mask saved.
	full, err := maskedspgemm.MultiplyUnmasked(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unmasked product: %d nnz (%.1fx the masked output)\n",
		full.NNZ(), float64(full.NNZ())/float64(c.NNZ()))
}
