// Mask-density exploration (paper §8.1 / Figure 7): sweep the mask
// degree against the input degree on Erdős-Rényi matrices and print
// which algorithm family wins each cell — a miniature of the paper's
// heat map, runnable in seconds.
package main

import (
	"fmt"
	"log"
	"os"

	"maskedspgemm/internal/bench"
)

func main() {
	cfg := bench.Fig7Config{
		Dim:          1 << 11,
		MaskDegrees:  []int{1, 4, 16, 64, 256},
		InputDegrees: []int{1, 4, 16, 64},
		Reps:         3,
		Seed:         7,
	}
	cells, err := bench.RunFig7(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench.WriteFig7(os.Stdout, cfg, cells)

	fmt.Println("\nreading the grid (paper §8.1):")
	fmt.Println(" * sparse mask + dense inputs (bottom-left)  -> Inner (pull) wins")
	fmt.Println(" * dense mask + sparse inputs (top-right)    -> Heap family wins")
	fmt.Println(" * comparable densities (middle band)        -> MSA / Hash win")
}
