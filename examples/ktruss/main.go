// k-truss (paper §8.3): iteratively prune edges supported by fewer
// than k−2 triangles using masked SpGEMM for support counting. Shows
// the truss hierarchy of one graph and how the mask sparsifies across
// iterations (the effect that makes pull-based Inner competitive here).
package main

import (
	"fmt"
	"log"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/graph"
)

func main() {
	g := maskedspgemm.RMAT(12, 16, 7)
	fmt.Printf("graph: %d vertices, %d edges\n", g.Rows, g.NNZ()/2)

	// Truss decomposition: k = 3, 4, 5, ... until empty.
	fmt.Println("truss hierarchy (MSA-1P):")
	for k := 3; ; k++ {
		res, err := graph.KTruss(g, k, core.Options{Algorithm: core.AlgoMSA})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d-truss: %8d edges  (%d masked-SpGEMM iterations, %d Mflop)\n",
			k, res.Truss.NNZ()/2, res.Iterations, res.Flops/1e6)
		if res.Truss.NNZ() == 0 {
			break
		}
	}

	// The paper's benchmark point: k = 5 across algorithms.
	fmt.Println("\nk=5 across algorithms:")
	for _, algo := range []core.Algorithm{
		core.AlgoMSA, core.AlgoHash, core.AlgoMCA, core.AlgoInner,
	} {
		res, err := graph.KTruss(g, 5, core.Options{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v %8d edges in %d iterations\n",
			algo, res.Truss.NNZ()/2, res.Iterations)
	}
}
