// Package maskedspgemm is a parallel masked sparse matrix-matrix
// multiplication library, a from-scratch Go reproduction of
// "Parallel Algorithms for Masked Sparse Matrix-Matrix Products"
// (Milaković, Selvitopi, Nisa, Budimlić, Buluç — PPoPP 2022).
//
// Masked SpGEMM computes C = M ⊙ (A·B): the product of two sparse
// matrices restricted to the nonzero pattern of a mask M (or to its
// complement). The library implements the paper's four accumulator
// families (MSA, Hash, MCA, Heap), the pull-based inner-product
// algorithm, one-phase and two-phase execution, and complemented
// masks, plus the GraphBLAS-style applications built on them:
// triangle counting, k-truss, and betweenness centrality.
//
// This package is the convenience facade over the float64 arithmetic
// semiring. The full generic API (custom element types and semirings)
// lives in the internal packages and is exercised via the application
// wrappers here; see DESIGN.md for the architecture.
//
// Quick start:
//
//	a := maskedspgemm.RMAT(12, 16, 1)           // 4096-vertex graph
//	c, err := maskedspgemm.Multiply(a.PatternView(), a, a,
//	    maskedspgemm.WithAlgorithm(maskedspgemm.MSA))
package maskedspgemm

import (
	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/parallel"
	"maskedspgemm/internal/semiring"
	"maskedspgemm/internal/sparse"
)

// Matrix is a float64 CSR sparse matrix.
type Matrix = sparse.CSR[float64]

// Pattern is a sparsity structure; masks are Patterns.
type Pattern = sparse.Pattern

// Algorithm selects a masked SpGEMM scheme.
type Algorithm = core.Algorithm

// Exported algorithm selectors (see the paper's §5 and §8 for the
// trade-offs; MSA one-phase is the best all-rounder).
const (
	// MSA is the Masked Sparse Accumulator scheme (§5.2).
	MSA = core.AlgoMSA
	// Hash is the hash-accumulator scheme (§5.3).
	Hash = core.AlgoHash
	// MCA is the Mask Compressed Accumulator scheme (§5.4). No
	// complemented-mask support.
	MCA = core.AlgoMCA
	// Heap is the multi-way merge scheme with NInspect=1 (§5.5).
	Heap = core.AlgoHeap
	// HeapDot is the multi-way merge scheme with NInspect=∞ (§5.5).
	HeapDot = core.AlgoHeapDot
	// Inner is the pull-based dot-product scheme (§4.1).
	Inner = core.AlgoInner
	// SaxpyThenMask is the unmasked-multiply-then-filter baseline.
	SaxpyThenMask = core.AlgoSaxpyThenMask
	// DotTranspose is the transpose-per-call dot baseline.
	DotTranspose = core.AlgoDotTranspose
	// Hybrid is the per-row poly-algorithm (the paper's §9 future-work
	// scheme, in full): every output row is bound at plan time to the
	// cheapest admissible accumulator family — MSA, Hash, MCA, Heap,
	// or pull-based Inner — under per-family cost models, and
	// consecutive rows sharing a binding execute as one run.
	// Complemented masks bind among the complement-capable families
	// (never MCA). Restrict the menu with WithHybridFamilies.
	Hybrid = core.AlgoHybrid
	// MaskedBit is the bitmap-state MSA variant (DESIGN.md §12): the
	// state byte per column collapsed into allowed/set bits over a
	// values array kept at the semiring zero, making insert a fused
	// add gated by one bit test. Fastest where mask rows are dense.
	MaskedBit = core.AlgoMaskedBit
)

// Family identifies one accumulator family the Hybrid per-row
// selector can bind (DESIGN.md §10); see the Family* constants.
type Family = core.Family

// Exported family selectors for WithHybridFamilies.
const (
	// FamilyMSA is the masked sparse accumulator family (§5.2).
	FamilyMSA = core.FamMSA
	// FamilyHash is the hash accumulator family (§5.3).
	FamilyHash = core.FamHash
	// FamilyMCA is the mask compressed accumulator family (§5.4);
	// inadmissible under complemented masks.
	FamilyMCA = core.FamMCA
	// FamilyHeap is the multi-way merge family (§5.5).
	FamilyHeap = core.FamHeap
	// FamilyPull is the pull-based inner-product algorithm (§4.1).
	FamilyPull = core.FamPull
	// FamilyMaskedBit is the bitmap-state accumulator family
	// (DESIGN.md §12); preferred where mask rows are dense relative to
	// the flops that land on them.
	FamilyMaskedBit = core.FamMaskedBit
)

// Option configures Multiply.
type Option func(*core.Options)

// WithAlgorithm picks the scheme (default MSA).
func WithAlgorithm(a Algorithm) Option {
	return func(o *core.Options) { o.Algorithm = a }
}

// WithTwoPhase enables the symbolic+numeric strategy (§6); the default
// is one-phase, the paper's usual winner.
func WithTwoPhase() Option {
	return func(o *core.Options) { o.Phases = core.TwoPhase }
}

// WithComplement computes C = ¬M ⊙ (A·B).
func WithComplement() Option {
	return func(o *core.Options) { o.Complement = true }
}

// WithHybridFamilies restricts the Hybrid per-row selector to the
// given accumulator families; the default is every admissible family.
// Inadmissible families (FamilyMCA under WithComplement) are dropped
// regardless, and an empty admissible set falls back to FamilyMSA.
func WithHybridFamilies(fams ...Family) Option {
	return func(o *core.Options) { o.HybridFamilies = core.Families(fams...) }
}

// WithThreads pins the worker count (default GOMAXPROCS).
func WithThreads(threads int) Option {
	return func(o *core.Options) { o.Threads = threads }
}

// Schedule selects how parallel row passes divide work among workers;
// see the Schedule* constants.
type Schedule = core.Schedule

const (
	// ScheduleAuto (the default) picks the strategy per plan from the
	// measured row-cost skew: cost partitions when a few rows dominate,
	// fixed-grain blocks otherwise.
	ScheduleAuto = core.SchedAuto
	// ScheduleFixedGrain claims fixed-size row blocks from a shared
	// counter — dynamic, but blind to row cost.
	ScheduleFixedGrain = core.SchedFixedGrain
	// ScheduleCostPartition drives workers over equal-cost row
	// partitions laid out at plan time from the flops profile.
	ScheduleCostPartition = core.SchedCostPartition
	// ScheduleWorkSteal uses per-worker deques with range stealing —
	// absorbs skew without a cost profile.
	ScheduleWorkSteal = core.SchedWorkSteal
)

// WithSchedule picks the row-scheduling strategy (default
// ScheduleAuto).
func WithSchedule(s Schedule) Option {
	return func(o *core.Options) { o.Schedule = s }
}

// SchedStats is per-execution scheduler telemetry: one entry per
// worker with busy time and blocks claimed/stolen, plus aggregate
// accessors (Busy, Claimed, Stolen, Imbalance).
type SchedStats = parallel.SchedStats

// WithSchedStats records per-worker scheduler telemetry on every
// execution (two clock reads per scheduled row block), readable via
// Plan.SchedStats or Executor.SchedStats — and aggregated into
// Session.Stats for session traffic.
func WithSchedStats() Option {
	return func(o *core.Options) { o.CollectSchedStats = true }
}

// buildOptions folds Option values over the defaults.
func buildOptions(opts []Option) core.Options {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// WithReuseOutput backs Plan.Execute results with executor-owned
// pooled buffers: steady-state executions allocate nothing, but each
// result is valid only until the next execution on the same executor
// (Clone it to retain). Iterative consumers that fold the product into
// something else immediately — k-truss support counting, betweenness
// dependency accumulation — are the intended users.
func WithReuseOutput() Option {
	return func(o *core.Options) { o.ReuseOutput = true }
}

// ErrCanceled matches every error a cooperatively-canceled execution
// returns: errors.Is(err, ErrCanceled) is true exactly when a
// MultiplyCtx context was canceled (or an execution-layer cancel token
// latched) before the product completed. The concrete error is a
// *CanceledError naming the interrupted pass.
var ErrCanceled = core.ErrCanceled

// CanceledError reports an execution stopped by cooperative
// cancellation, naming the interrupted pass ("symbolic", "numeric" or
// "compact"). Matches ErrCanceled under errors.Is.
type CanceledError = core.CanceledError

// KernelPanicError reports a panic recovered inside a parallel kernel
// worker: the execution was contained (sibling workers quiesced, the
// process and session stay serviceable) and the poisoned executor was
// discarded. Family names the scheme ("MSA-1P" style), Worker the
// panicking worker index (-1 when serial), and Stack the captured
// goroutine stack.
type KernelPanicError = core.KernelPanicError

// Multiply computes C = M ⊙ (A·B) over the float64 arithmetic
// semiring. mask is m×n, a is m×k, b is k×n. Output rows are sorted.
//
// Multiply is the one-shot form: it plans, executes once, and discards
// the analysis. Callers repeating products over the same structure
// (iterative algorithms, served query traffic) should use NewPlan.
func Multiply(mask *Pattern, a, b *Matrix, opts ...Option) (*Matrix, error) {
	return core.MaskedSpGEMM(semiring.PlusTimes[float64]{}, mask, a, b, buildOptions(opts))
}

// Plan is a reusable masked multiplication: the per-structure analysis
// (validation, slab layout, B's transpose for pull-based schemes,
// hybrid row decisions) is done once by NewPlan, and Execute then runs
// only the numeric work, reusing pooled per-worker workspaces so
// repeated executions allocate approximately nothing after warm-up.
// Plans and executors are not safe for concurrent use.
type Plan struct {
	p *core.Plan[float64, semiring.PlusTimes[float64]]
}

// NewPlan analyzes C = M ⊙ (A·B) for the selected scheme and returns a
// plan bound to the operands' structure. Execute accepts any matrices
// with that structure, so values may change between executions.
func NewPlan(mask *Pattern, a, b *Matrix, opts ...Option) (*Plan, error) {
	return newPlan(nil, mask, a, b, opts)
}

// Execute runs the planned product on (a, b), which must match the
// planned structure. With WithReuseOutput the result aliases pooled
// buffers and is valid only until the next execution on this plan's
// executor.
func (p *Plan) Execute(a, b *Matrix) (*Matrix, error) {
	return p.p.Execute(a, b)
}

// SchedStats returns the scheduler telemetry of the plan's most recent
// execution run under WithSchedStats.
func (p *Plan) SchedStats() SchedStats {
	return p.p.SchedStats()
}

// Executor owns the pooled per-worker workspaces (accumulators, slab
// and output buffers) behind plan execution. Sharing one executor
// across plans — as the k-truss and betweenness loops do internally —
// lets workloads whose structure changes every iteration still reuse
// all scratch memory. An Executor must not be used concurrently.
type Executor struct {
	e *core.Executor[float64, semiring.PlusTimes[float64]]
}

// NewExecutor returns an empty executor over the float64 arithmetic
// semiring.
func NewExecutor() *Executor {
	return &Executor{e: core.NewExecutor[float64](semiring.PlusTimes[float64]{})}
}

// SchedStats returns the scheduler telemetry of the most recent
// execution on this executor that ran under WithSchedStats.
func (e *Executor) SchedStats() SchedStats {
	return e.e.SchedStats()
}

// NewPlan is NewPlan drawing workspaces from this executor instead of
// a private one.
func (e *Executor) NewPlan(mask *Pattern, a, b *Matrix, opts ...Option) (*Plan, error) {
	return newPlan(e.e, mask, a, b, opts)
}

func newPlan(exec *core.Executor[float64, semiring.PlusTimes[float64]], mask *Pattern, a, b *Matrix, opts []Option) (*Plan, error) {
	p, err := core.NewPlan(semiring.PlusTimes[float64]{}, mask, a, b, buildOptions(opts), exec)
	if err != nil {
		return nil, err
	}
	return &Plan{p: p}, nil
}

// MultiplyUnmasked computes the plain product A·B (the Gustavson hash
// SpGEMM substrate).
func MultiplyUnmasked(a, b *Matrix, opts ...Option) (*Matrix, error) {
	return core.SpGEMM(semiring.PlusTimes[float64]{}, a, b, buildOptions(opts))
}

// TriangleCount returns the number of triangles in the undirected
// graph (symmetric adjacency, zero diagonal), computed as
// sum(L ⊙ (L·L)) after degree relabeling (§8.2).
func TriangleCount(a *Matrix, opts ...Option) (int64, error) {
	return graph.TriangleCount(a, buildOptions(opts))
}

// KTruss returns the adjacency matrix of the graph's k-truss (§8.3).
func KTruss(a *Matrix, k int, opts ...Option) (*Matrix, error) {
	res, err := graph.KTruss(a, k, buildOptions(opts))
	if err != nil {
		return nil, err
	}
	return sparse.Apply(res.Truss, func(v int64) float64 { return float64(v) }), nil
}

// Betweenness returns per-vertex betweenness-centrality dependencies
// accumulated over the given source batch (§8.4).
func Betweenness(a *Matrix, sources []int32, opts ...Option) ([]float64, error) {
	res, err := graph.Betweenness(a, sources, buildOptions(opts))
	if err != nil {
		return nil, err
	}
	return res.Centrality, nil
}

// BFSLevels runs direction-optimized breadth-first search (push =
// complemented masked SpVM, pull = frontier intersection; §4's
// motivating application) and returns each vertex's depth, -1 when
// unreached.
func BFSLevels(a *Matrix, sources []int32) ([]int32, error) {
	res, err := graph.BFS(a, sources, graph.BFSAuto)
	if err != nil {
		return nil, err
	}
	return res.Level, nil
}

// RMAT generates a symmetrized Graph500-parameter R-MAT graph with
// 2^scale vertices.
func RMAT(scale, edgeFactor int, seed uint64) *Matrix {
	return gen.RMATSymmetric(gen.RMATConfig{Scale: scale, EdgeFactor: edgeFactor, Seed: seed})
}

// ErdosRenyi generates an n×n uniform random matrix with the given
// expected row degree.
func ErdosRenyi(n, degree int, seed uint64) *Matrix {
	return gen.ErdosRenyi(n, degree, seed)
}

// ReadMatrixMarket loads a Matrix Market file.
func ReadMatrixMarket(path string) (*Matrix, error) {
	m, _, err := mtx.ReadFile(path)
	return m, err
}

// WriteMatrixMarket stores a matrix as a Matrix Market file.
func WriteMatrixMarket(path string, m *Matrix) error {
	return mtx.WriteFile(path, m)
}
