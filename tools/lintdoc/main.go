// Command lintdoc fails when an exported identifier lacks a godoc
// comment. It is the CI tripwire behind the documentation rule: every
// exported const, var, type, function, method, and struct field in the
// checked packages must carry a doc comment (grouped declarations may
// document the group).
//
// Usage:
//
//	go run ./tools/lintdoc [-tests] DIR ...
//
// Each DIR is checked as one package directory (not recursively).
// Exit status 1 and one "file:line: identifier" diagnostic per missing
// comment.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	includeTests := flag.Bool("tests", false, "also check _test.go files")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc [-tests] DIR ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range flag.Args() {
		miss, err := checkDir(dir, *includeTests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdoc:", err)
			os.Exit(2)
		}
		for _, m := range miss {
			fmt.Println(m)
		}
		bad += len(miss)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns a diagnostic per
// undocumented exported identifier.
func checkDir(dir string, includeTests bool) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var miss []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		miss = append(miss, checkFile(fset, f)...)
	}
	return miss, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var miss []string
	report := func(pos token.Pos, what, name string) {
		miss = append(miss, fmt.Sprintf("%s: undocumented exported %s %s", fset.Position(pos), what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && !groupDoc {
						report(s.Pos(), "type", s.Name.Name)
					}
					if s.Name.IsExported() {
						miss = append(miss, checkFields(fset, s)...)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && s.Doc == nil && s.Comment == nil && !groupDoc {
							report(n.Pos(), declKind(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return miss
}

// declKind names a value declaration for diagnostics.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// checkFields reports undocumented exported fields of an exported
// struct type (embedded fields are exempt — they are documented at
// their own declaration).
func checkFields(fset *token.FileSet, s *ast.TypeSpec) []string {
	st, ok := s.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return nil
	}
	var miss []string
	for _, field := range st.Fields.List {
		if field.Doc != nil || field.Comment != nil {
			continue
		}
		for _, n := range field.Names {
			if n.IsExported() {
				miss = append(miss, fmt.Sprintf("%s: undocumented exported field %s.%s",
					fset.Position(n.Pos()), s.Name.Name, n.Name))
			}
		}
	}
	return miss
}
