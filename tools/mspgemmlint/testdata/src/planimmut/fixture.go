// Package planimmut is a deliberately-broken fixture for the
// plan-immutability analyzer: Plan stands in for core.Plan, and the
// violations mirror the stats-reset and cache-poke mistakes the
// contract exists to catch.
package planimmut

// Plan is the immutable analysis product.
//
//mspgemm:immutable
type Plan struct {
	sched      int
	partBounds []int
	exec       *Exec
}

// Exec is the plan's mutable execution state; writes through it are
// legal anywhere.
type Exec struct {
	n int
}

// newPlan is the sanctioned constructor: all writes allowed.
//
//mspgemm:planwrite
func newPlan() *Plan {
	p := &Plan{exec: &Exec{}}
	p.sched = 1
	p.partBounds = []int{0}
	p.partBounds[0] = 7
	return p
}

// resetStats pokes a published plan: every write is a violation.
func resetStats(p *Plan) {
	p.sched = 0         // want `write to field sched of //mspgemm:immutable type Plan`
	p.partBounds[0] = 2 // want `write to field partBounds of //mspgemm:immutable type Plan`
	p.sched++           // want `write to field sched of //mspgemm:immutable type Plan`
}

// resetInClosure hides the write inside a closure of an unannotated
// function; the closure inherits the enclosing function's standing.
func resetInClosure(p *Plan) func() {
	return func() {
		p.sched = 3 // want `write to field sched of //mspgemm:immutable type Plan`
	}
}

// touchExec mutates execution state, which is not annotated: legal.
func touchExec(p *Plan) {
	p.exec.n = 3
}

// readPlan only reads: legal.
func readPlan(p *Plan) int {
	return p.sched + len(p.partBounds)
}
