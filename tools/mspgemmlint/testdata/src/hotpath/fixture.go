// Package hotpath is a deliberately-broken fixture for the flat-loop
// analyzer: bad contains one of every banned construct, flat shows the
// compliant shape, and cold shows that unannotated functions may use
// anything.
package hotpath

// logger is a real interface, unlike the type parameters the live
// kernels dispatch through.
type logger interface {
	Log(string)
}

// sink accepts an interface parameter.
func sink(v any) {}

// global is an interface-typed assignment target.
var global any

// flat is a compliant hot loop: slices, arithmetic, concrete calls.
//
//mspgemm:hotpath
func flat(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// bad commits every banned construct once.
//
//mspgemm:hotpath
func bad(xs []int, m map[int]int, l logger, v any) {
	defer flat(xs)               // want `defer in //mspgemm:hotpath function bad`
	go flat(xs)                  // want `go statement in //mspgemm:hotpath function bad`
	f := func() int { return 1 } // want `closure in //mspgemm:hotpath function bad`
	_ = f
	for k := range m { // want `map iteration in //mspgemm:hotpath function bad`
		_ = k
	}
	_ = v.(int)    // want `type assertion in //mspgemm:hotpath function bad`
	l.Log("x")     // want `interface method call hotpath.logger.Log in //mspgemm:hotpath function bad`
	sink(xs[0])    // want `argument converts to interface type any in //mspgemm:hotpath function bad`
	global = xs[0] // want `assignment converts a concrete value to interface type any in //mspgemm:hotpath function bad`
	_ = any(xs)    // want `conversion to interface type any in //mspgemm:hotpath function bad`
}

//mspgemm:hotpaht // want `unknown directive //mspgemm:hotpaht`

// cold is unannotated: the same constructs are legal here.
func cold(m map[int]int, v any) {
	defer func() {}()
	for k := range m {
		sink(k)
	}
	_ = v
}
