// Package optkey is a deliberately-broken fixture for the
// options/plan-key analyzer: Verbose is a shared field that neither
// planIdentity nor ExecOnly handles, TraceLabel is zeroed into the
// void, and keyFor reads an exec-only option while building the key.
package optkey

// Options configures a multiply.
type Options struct {
	// Algorithm is plan-affecting.
	Algorithm int
	// CollectStats is execution-only and correctly handled.
	CollectStats bool
	// TraceLabel is zeroed by planIdentity but has no ExecOptions
	// counterpart.
	TraceLabel string
	// Verbose has an ExecOptions counterpart but is neither zeroed nor
	// forwarded.
	Verbose bool
}

// ExecOptions carries the execution-only settings.
type ExecOptions struct {
	// CollectStats mirrors Options.CollectStats.
	CollectStats bool
	// Verbose mirrors Options.Verbose.
	Verbose bool // want `Options.Verbose has an ExecOptions counterpart but planIdentity does not zero it` `ExecOptions.Verbose is not populated from Options.Verbose by ExecOnly`
	// Cancel has no Options counterpart: execution-only by construction.
	Cancel *int
}

// planIdentity strips execution-only fields from the cache identity.
func (o Options) planIdentity() Options {
	o.CollectStats = false
	o.TraceLabel = "" // want `planIdentity zeroes Options.TraceLabel but ExecOptions has no TraceLabel field`
	return o
}

// ExecOnly extracts the execution-only fields.
func (o Options) ExecOnly() ExecOptions {
	return ExecOptions{CollectStats: o.CollectStats}
}

// planKey is the cache key.
type planKey struct {
	fp  uint64
	opt Options
}

// keyFor builds the cache key and illegally consults an exec-only
// option while doing so.
func keyFor(o Options, eo ExecOptions) planKey {
	fp := uint64(1)
	if eo.CollectStats { // want `read of exec-only option ExecOptions.CollectStats in a function that constructs planKey`
		fp = 2
	}
	return planKey{fp: fp, opt: o.planIdentity()}
}

// lookup uses exec options away from the key path: legal.
func lookup(eo ExecOptions) bool {
	return eo.CollectStats
}
