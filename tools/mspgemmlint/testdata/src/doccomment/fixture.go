// Package doccomment is a deliberately-broken fixture for the
// doc-coverage analyzer. Trailing line comments count as
// documentation, so the firing cases are function declarations, where
// only a leading doc comment counts.
package doccomment

// Documented is fully covered and reports nothing.
type Documented struct {
	// N is documented.
	N int
	M int // a trailing comment documents a field
}

// documentedHelper is unexported: no comment required anywhere.
func documentedHelper() {}

func Exported() {} // want `undocumented exported function Exported`

func (d Documented) Method() {} // want `undocumented exported method Method`

// Grouped declarations may document the group.
var (
	// One is documented individually.
	One = 1
	Two = 2 // a trailing comment documents a var
)
