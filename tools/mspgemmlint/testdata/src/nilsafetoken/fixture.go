// Package nilsafetoken is a deliberately-broken fixture for the
// nil-safe receiver analyzer: Token stands in for
// parallel.CancelToken, and Cancel repeats the missing-guard bug the
// contract exists to catch.
package nilsafetoken

// Token is a flag documented as safe to use through a nil pointer.
//
//mspgemm:nilsafe
type Token struct {
	flag bool
}

// Cancel dereferences without the guard: the violation.
func (t *Token) Cancel() {
	t.flag = true // want `method \(\*Token\)\.Cancel dereferences the receiver without a nil check`
}

// Canceled uses the short-circuit form: comparison precedes the
// dereference, legal.
func (t *Token) Canceled() bool { return t != nil && t.flag }

// Reset uses the statement form: legal.
func (t *Token) Reset() {
	if t == nil {
		return
	}
	t.flag = false
}

// String never touches the receiver: legal without a guard.
func (t *Token) String() string { return "token" }

// plain is unannotated; its methods need no guard.
type plain struct{ n int }

// bump may dereference freely.
func (p *plain) bump() { p.n++ }
