// Package optkeybad is a fixture for the analyzer's planKey shape
// check: the cache key embeds ExecOptions wholesale, the structural
// form of the PR 5 cache-fragmentation bug.
package optkeybad

// Options configures a multiply.
type Options struct {
	// Algorithm is plan-affecting.
	Algorithm int
	// CollectStats is execution-only.
	CollectStats bool
}

// ExecOptions carries the execution-only settings.
type ExecOptions struct {
	// CollectStats mirrors Options.CollectStats.
	CollectStats bool
}

// planIdentity strips execution-only fields.
func (o Options) planIdentity() Options {
	o.CollectStats = false
	return o
}

// ExecOnly extracts the execution-only fields.
func (o Options) ExecOnly() ExecOptions {
	return ExecOptions{CollectStats: o.CollectStats}
}

// planKey illegally embeds the exec-only struct.
type planKey struct {
	fp uint64
	eo ExecOptions // want `planKey field eo is of type ExecOptions`
}
