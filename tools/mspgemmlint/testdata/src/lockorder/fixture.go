// Package lockorder is a deliberately-broken fixture for the budget
// lock-order analyzer: MemBudget stands in for core.MemBudget, and the
// violations call its locking entry points under a member mutex.
package lockorder

// mutex is a stand-in lock with the sync.Mutex method set.
type mutex struct{ held bool }

// Lock acquires the mutex.
func (m *mutex) Lock() { m.held = true }

// Unlock releases the mutex.
func (m *mutex) Unlock() { m.held = false }

// MemBudget is the stand-in budget arbiter.
type MemBudget struct{}

// Rebalance re-splits the budget; takes the budget mutex.
func (b *MemBudget) Rebalance() {}

// Register adds a member; takes the budget mutex.
func (b *MemBudget) Register() {}

// Reserve is lock-free and legal under member locks.
func (b *MemBudget) Reserve() {}

// member is a budget member guarding its state with mu.
type member struct {
	mu     mutex
	budget *MemBudget
}

// bad rebalances while holding the member lock.
func (m *member) bad() {
	m.mu.Lock()
	m.budget.Rebalance() // want `MemBudget.Rebalance called while m.mu is held`
	m.mu.Unlock()
}

// badDefer keeps the lock to the end of the body via defer.
func (m *member) badDefer() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget.Register() // want `MemBudget.Register called while m.mu is held`
}

// good releases the lock before rebalancing, and only makes lock-free
// budget calls while holding it.
func (m *member) good() {
	m.mu.Lock()
	m.budget.Reserve()
	m.mu.Unlock()
	m.budget.Rebalance()
}
