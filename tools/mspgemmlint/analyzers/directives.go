// Package analyzers holds the mspgemmlint invariant suite: one
// analyzer per repo contract (plan immutability, options/plan-key
// hygiene, budget lock order, hot-path shape, nil-safe tokens, doc
// coverage), all driven by the `//mspgemm:` annotation grammar defined
// in DESIGN.md §16.
package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"maskedspgemm/tools/mspgemmlint/analysis"
)

// Directive names understood by the suite. Anything else after
// "//mspgemm:" is flagged by the hotpath analyzer as a likely typo.
const (
	// DirHotpath marks a function whose body must stay flat: no defer,
	// closures, interface conversions, or map iteration.
	DirHotpath = "hotpath"
	// DirPlanwrite marks a function allowed to assign fields of
	// //mspgemm:immutable types (constructors and the rebind clone).
	DirPlanwrite = "planwrite"
	// DirImmutable marks a type whose fields may only be written inside
	// //mspgemm:planwrite functions.
	DirImmutable = "immutable"
	// DirNilsafe marks a type whose pointer-receiver methods must guard
	// against a nil receiver before using it.
	DirNilsafe = "nilsafe"
)

// knownDirectives is the full annotation vocabulary.
var knownDirectives = map[string]bool{
	DirHotpath:   true,
	DirPlanwrite: true,
	DirImmutable: true,
	DirNilsafe:   true,
}

// directivePrefix introduces every annotation. Go treats "//tool:rule"
// comments as directives, so gofmt keeps them attached.
const directivePrefix = "//mspgemm:"

// Directive is one parsed //mspgemm: annotation.
type Directive struct {
	// Name is the word after the colon ("hotpath").
	Name string
	// Pos locates the comment.
	Pos token.Pos
}

// parseDirectives extracts the //mspgemm: annotations from a comment
// group.
func parseDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var ds []Directive
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, directivePrefix) {
			continue
		}
		name := strings.TrimPrefix(c.Text, directivePrefix)
		// Tolerate trailing explanation after whitespace.
		if i := strings.IndexAny(name, " \t"); i >= 0 {
			name = name[:i]
		}
		ds = append(ds, Directive{Name: name, Pos: c.Pos()})
	}
	return ds
}

// hasDirective reports whether the comment group carries the named
// annotation.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	for _, d := range parseDirectives(doc) {
		if d.Name == name {
			return true
		}
	}
	return false
}

// annotatedTypes returns the names of package-level types annotated
// with the named directive, checking both the TypeSpec doc and the
// enclosing GenDecl doc (single-spec declarations attach the comment
// to the decl).
func annotatedTypes(files []*ast.File, name string) map[string]bool {
	out := make(map[string]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(ts.Doc, name) || (len(gd.Specs) == 1 && hasDirective(gd.Doc, name)) {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// forEachFunc walks every function declaration in the pass's non-test
// files, reporting whether its doc carries each directive of interest.
func forEachFunc(pass *analysis.Pass, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn(f, fd)
		}
	}
}
