package analyzers_test

import (
	"testing"

	"maskedspgemm/tools/mspgemmlint/analysis/analysistest"
	"maskedspgemm/tools/mspgemmlint/analyzers"
)

// testdata holds the deliberately-broken fixture packages, one per
// analyzer, under testdata/src/<name>.
const testdata = "../testdata"

func TestPlanimmut(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Planimmut, "planimmut")
}

func TestOptkey(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Optkey, "optkey")
}

func TestOptkeyPlanKeyShape(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Optkey, "optkeybad")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Lockorder, "lockorder")
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Hotpath, "hotpath")
}

func TestNilsafetoken(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Nilsafetoken, "nilsafetoken")
}

func TestDoccomment(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Doccomment, "doccomment")
}
