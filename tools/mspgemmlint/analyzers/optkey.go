package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"maskedspgemm/tools/mspgemmlint/analysis"
)

// Optkey pins PR 5's cache-fragmentation fix: Options fields are
// either plan-affecting (they feed planKey via the identity-normalized
// Options embedded in it) or execution-only (zeroed by planIdentity
// and carried to execution by ExecOnly). The analyzer keeps the two
// method bodies and the two struct definitions mutually consistent,
// and makes sure nothing ExecOptions-typed leaks into planKey.
var Optkey = &analysis.Analyzer{
	Name: "optkey",
	Doc: "keep Options/ExecOptions, planIdentity, ExecOnly, and planKey " +
		"consistent so exec-only options never fragment the plan cache (PR 5)",
	Run: runOptkey,
}

func runOptkey(pass *analysis.Pass) error {
	opts := structFields(pass, "Options")
	execOpts := structFields(pass, "ExecOptions")
	if opts == nil || execOpts == nil {
		return nil
	}
	identity := methodOn(pass, "Options", "planIdentity")
	execOnly := methodOn(pass, "Options", "ExecOnly")
	if identity == nil || execOnly == nil {
		return nil
	}
	zeroed := receiverFieldWrites(identity)
	consumed := receiverFieldReads(execOnly)

	// Every field present in both structs is execution-only: it must be
	// zeroed out of the plan identity and forwarded by ExecOnly.
	for name, pos := range execOpts {
		if _, shared := opts[name]; !shared {
			// Fields like Cancel exist only on ExecOptions: execution-only
			// by construction, nothing to cross-check.
			continue
		}
		if _, ok := zeroed[name]; !ok {
			pass.Reportf(pos,
				"Options.%s has an ExecOptions counterpart but planIdentity does not zero it; it would feed planKey and fragment the plan cache (PR 5)",
				name)
		}
		if _, ok := consumed[name]; !ok {
			pass.Reportf(pos,
				"ExecOptions.%s is not populated from Options.%s by ExecOnly; the execution layer would silently drop the setting",
				name, name)
		}
	}
	// A field zeroed by planIdentity with no ExecOptions counterpart is
	// lost entirely: neither the plan nor the execution sees it.
	for name, pos := range zeroed {
		if _, shared := execOpts[name]; !shared {
			pass.Reportf(pos,
				"planIdentity zeroes Options.%s but ExecOptions has no %s field; the setting is dropped before execution — add it to ExecOptions and ExecOnly",
				name, name)
		}
	}
	checkPlanKey(pass)
	return nil
}

// checkPlanKey flags ExecOptions data reaching planKey: a planKey
// field of type ExecOptions, or a read of an ExecOptions value inside
// a function that constructs a planKey literal.
func checkPlanKey(pass *analysis.Pass) {
	keyFields := structFieldTypes(pass, "planKey")
	for name, ft := range keyFields {
		if namedTypeName(ft.typ) == "ExecOptions" {
			pass.Reportf(ft.pos,
				"planKey field %s is of type ExecOptions; exec-only options must never feed the plan cache key (PR 5)", name)
		}
	}
	if keyFields == nil {
		return
	}
	forEachFunc(pass, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil || !buildsPlanKey(pass, fd.Body) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sel.X]
			if ok && namedTypeName(tv.Type) == "ExecOptions" {
				pass.Reportf(sel.Pos(),
					"read of exec-only option ExecOptions.%s in a function that constructs planKey; exec-only options must never feed the cache key (PR 5)",
					sel.Sel.Name)
			}
			return true
		})
	})
}

// buildsPlanKey reports whether the body contains a planKey composite
// literal.
func buildsPlanKey(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[cl]; ok && namedTypeName(tv.Type) == "planKey" {
			found = true
		}
		return !found
	})
	return found
}

// fieldType pairs a struct field's type with its declaration position.
type fieldType struct {
	// typ is the field's declared type.
	typ types.Type
	// pos locates the field for diagnostics.
	pos token.Pos
}

// structFields returns the named struct type's field positions by
// field name, or nil when the type is absent from the package.
func structFields(pass *analysis.Pass, typeName string) map[string]token.Pos {
	fts := structFieldTypes(pass, typeName)
	if fts == nil {
		return nil
	}
	out := make(map[string]token.Pos, len(fts))
	for name, ft := range fts {
		out[name] = ft.pos
	}
	return out
}

// structFieldTypes returns the named struct type's fields with types
// and positions, or nil when the type is absent.
func structFieldTypes(pass *analysis.Pass, typeName string) map[string]fieldType {
	obj := pass.Pkg.Scope().Lookup(typeName)
	if obj == nil {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := make(map[string]fieldType, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		out[f.Name()] = fieldType{typ: f.Type(), pos: f.Pos()}
	}
	return out
}

// namedTypeName returns t's named-type name (through one pointer
// layer), or "".
func namedTypeName(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Origin().Obj().Name()
}

// methodOn finds the declaration of the named method on the named
// receiver type (value or pointer receiver).
func methodOn(pass *analysis.Pass, recvType, method string) *ast.FuncDecl {
	var found *ast.FuncDecl
	forEachFunc(pass, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Name.Name != method {
			return
		}
		t := fd.Recv.List[0].Type
		if se, ok := t.(*ast.StarExpr); ok {
			t = se.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == recvType {
			found = fd
		}
	})
	return found
}

// receiverName returns the method's receiver identifier name, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// receiverFieldWrites collects the receiver fields assigned in the
// method body, keyed by field name.
func receiverFieldWrites(fd *ast.FuncDecl) map[string]token.Pos {
	recv := receiverName(fd)
	out := make(map[string]token.Pos)
	if recv == "" || fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
					out[sel.Sel.Name] = sel.Pos()
				}
			}
		}
		return true
	})
	return out
}

// receiverFieldReads collects the receiver fields read in the method
// body, keyed by field name.
func receiverFieldReads(fd *ast.FuncDecl) map[string]token.Pos {
	recv := receiverName(fd)
	out := make(map[string]token.Pos)
	if recv == "" || fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			out[sel.Sel.Name] = sel.Pos()
		}
		return true
	})
	return out
}
