package analyzers

import "maskedspgemm/tools/mspgemmlint/analysis"

// All is the full invariant suite in the order diagnostics group best:
// ownership, cache-key hygiene, locking, hot-path shape, nil safety,
// doc coverage.
var All = []*analysis.Analyzer{
	Planimmut,
	Optkey,
	Lockorder,
	Hotpath,
	Nilsafetoken,
	Doccomment,
}
